package repro

// One benchmark per table/figure of the paper's evaluation plus the
// ablations and extensions indexed in DESIGN.md §3. Each iteration
// regenerates the corresponding result on the paper's full grid; the
// headline schedulability numbers are attached as custom metrics so
// `go test -bench` output doubles as a miniature reproduction report.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/parsched"
)

// benchPerms keeps one bench iteration around a second; cmd/ftbench runs
// the paper's full 100 permutations per point.
const benchPerms = 20

func meanOf(points []experiments.Point, scheduler string) float64 {
	var sum float64
	n := 0
	for _, p := range points {
		if p.Scheduler == scheduler {
			sum += p.Ratio.Mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func benchFig9(b *testing.B, run func(int, int64) (*experiments.Fig9Result, error)) {
	b.Helper()
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := run(benchPerms, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(meanOf(last.Points, "Global"), "global-ratio")
	b.ReportMetric(meanOf(last.Points, "Local"), "local-ratio")
}

// BenchmarkFig9aTwoLevel regenerates Figure 9(a): two-level fat trees,
// 64–4096 nodes, Local vs Level-wise over random permutations.
func BenchmarkFig9aTwoLevel(b *testing.B) { benchFig9(b, experiments.Fig9a) }

// BenchmarkFig9bThreeLevel regenerates Figure 9(b): three-level fat trees.
func BenchmarkFig9bThreeLevel(b *testing.B) { benchFig9(b, experiments.Fig9b) }

// BenchmarkFig9cFourLevel regenerates Figure 9(c): four-level fat trees.
func BenchmarkFig9cFourLevel(b *testing.B) { benchFig9(b, experiments.Fig9c) }

// BenchmarkFig9dAverage regenerates Figure 9(d): the per-depth average
// schedulability bars aggregated from (a)–(c).
func BenchmarkFig9dAverage(b *testing.B) {
	var rows []experiments.Fig9dRow
	for i := 0; i < b.N; i++ {
		fa, err := experiments.Fig9a(benchPerms, 1)
		if err != nil {
			b.Fatal(err)
		}
		fb, err := experiments.Fig9b(benchPerms, 1)
		if err != nil {
			b.Fatal(err)
		}
		fc, err := experiments.Fig9c(benchPerms, 1)
		if err != nil {
			b.Fatal(err)
		}
		rows = experiments.Fig9d(fa, fb, fc)
	}
	for _, r := range rows {
		if r.Scheduler == "Global" && r.Levels == 3 {
			b.ReportMetric(r.Mean, "global-3lvl-ratio")
		}
	}
}

// BenchmarkTable1Hardware regenerates Table 1: the cycle-accurate FPGA
// pipeline scheduling full permutations on 64/512/4096-node trees.
func BenchmarkTable1Hardware(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		if r.Nodes == 4096 {
			b.ReportMetric(r.MakespanNS, "4096-makespan-ns")
		}
	}
}

// BenchmarkComplexityCounts regenerates the Section 4 operation-count
// comparison (O(l·log_l N) vs O(2l·log_l N)).
func BenchmarkComplexityCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ComplexityCounts(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPortPolicy regenerates ablation A1 (port policies).
func BenchmarkAblationPortPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPortPolicy(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRollback regenerates ablation A2 (rollback).
func BenchmarkAblationRollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRollback(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrdering regenerates ablation A3 (request order).
func BenchmarkAblationOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOrdering(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtOptimal regenerates extension E1 (optimal reference).
func BenchmarkExtOptimal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtOptimal(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTraffic regenerates extension E2 (traffic patterns).
func BenchmarkExtTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtTraffic(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSlim regenerates extension E3 (slimmed trees, m != w).
func BenchmarkExtSlim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtSlim(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDynamic regenerates extension E4 (connection churn).
func BenchmarkExtDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtDynamic(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSwitchSim regenerates extension E5 (distributed simulation
// cross-check).
func BenchmarkExtSwitchSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtSwitchSim(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTBWP regenerates extension E6 (Turn-Back-When-Possible
// baseline).
func BenchmarkExtTBWP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtTBWP(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtRounds regenerates extension E7 (rounds to completion).
func BenchmarkExtRounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtRounds(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtWormholeLoad regenerates extension E8 (wormhole
// load–latency sweep).
func BenchmarkExtWormholeLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtWormholeLoad(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBulkTransfer regenerates extension E9 (circuit vs wormhole
// phase time).
func BenchmarkExtBulkTransfer(b *testing.B) {
	var cells []experiments.BulkCell
	for i := 0; i < b.N; i++ {
		c, err := experiments.ExtBulkTransfer(1)
		if err != nil {
			b.Fatal(err)
		}
		cells = c
	}
	if len(cells) > 0 {
		b.ReportMetric(cells[len(cells)-1].Speedup, "circuit-speedup-1k")
	}
}

// BenchmarkExtFaults regenerates extension E10 (link-failure resilience).
func BenchmarkExtFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtFaults(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSuite runs everything end to end, as cmd/ftbench does.
func BenchmarkFullSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSuite(io.Discard, experiments.SuiteConfig{Permutations: benchPerms, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleLevelWise4096 measures the software scheduler's raw
// throughput on the largest Figure 9 system.
func BenchmarkScheduleLevelWise4096(b *testing.B) {
	tree, err := NewFatTree(2, 64, 64)
	if err != nil {
		b.Fatal(err)
	}
	reqs := Permutation(tree, 1)
	st := NewLinkState(tree)
	s := NewLevelWise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.Schedule(st, reqs)
	}
}

// BenchmarkFabricThroughput measures the serving layer's admission rate
// on FT(3,8): 64 closed-loop clients mixing Connect/Release across epoch
// flush thresholds. The admissions/s metric is the headline; epoch
// batching must beat the epoch-size-1 configuration by ≥2× (baseline
// recorded in BENCH_fabric.json).
func BenchmarkFabricThroughput(b *testing.B) {
	const clients = 64
	tree, err := NewFatTree(3, 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, epoch := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("epoch%d/clients%d", epoch, clients), func(b *testing.B) {
			fab, err := fabric.New(fabric.Config{Tree: tree, BatchSize: epoch, MaxWait: 500 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id) + 1))
					for next.Add(1) <= int64(b.N) {
						h, err := fab.Connect(context.Background(), rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
						if err == nil {
							if err := fab.Release(h); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admissions/s")
			if err := fab.Close(context.Background()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkParallelLevelWise compares the sequential zero-allocation
// scheduler against the parallel engine (internal/parsched) in both
// modes across worker counts and batch sizes; the requests/s metric is
// the headline (baseline recorded in BENCH_parallel.json). Speedup
// requires real cores: on a GOMAXPROCS=1 host the parallel variants
// measure pure coordination overhead.
func BenchmarkParallelLevelWise(b *testing.B) {
	shapes := []struct{ l, m, w int }{{3, 8, 8}, {4, 4, 4}}
	for _, sh := range shapes {
		tree, err := NewFatTree(sh.l, sh.m, sh.w)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range []int{256, 1024, 4096, 8192} {
			rng := rand.New(rand.NewSource(1))
			reqs := make([]core.Request, batch)
			for i := range reqs {
				reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
			}
			prefix := fmt.Sprintf("FT%dx%dx%d/batch%d", sh.l, sh.m, sh.w, batch)
			run := func(name string, schedule func(*LinkState, []core.Request)) {
				b.Run(prefix+"/"+name, func(b *testing.B) {
					st := NewLinkState(tree)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st.Reset()
						schedule(st, reqs)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "requests/s")
				})
			}
			opts := core.Options{Rollback: true}
			// The sequential baseline reuses a Scratch, exactly as the
			// fabric manager's hot path does.
			lw, sc := &core.LevelWise{Opts: opts}, core.NewScratch()
			run("sequential", func(st *LinkState, reqs []core.Request) { lw.ScheduleInto(st, reqs, sc) })
			for _, workers := range []int{2, 4, 8} {
				for _, mode := range []parsched.Mode{parsched.Deterministic, parsched.Racy} {
					eng := parsched.New(parsched.Config{Workers: workers, Mode: mode, Opts: opts})
					run(fmt.Sprintf("%s/w%d", mode, workers),
						func(st *LinkState, reqs []core.Request) { eng.Schedule(st, reqs) })
				}
			}
		}
	}
}

// scalingBatch builds a batch for the multi-core scaling study. With
// local=true every request is confined to one level-(l-2) subtree
// (cycling across subtrees so all shards are populated) — the traffic
// class the shard engine parallelizes without coordination; otherwise
// endpoints are uniform, so most requests cross the root.
func scalingBatch(tree *FatTree, n int, local bool, seed int64) []core.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]core.Request, n)
	if !local {
		for i := range reqs {
			reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
		}
		return reqs
	}
	subtrees := tree.Subtrees(tree.Levels() - 2)
	size := tree.Nodes() / subtrees
	for i := range reqs {
		base := (i % subtrees) * size
		reqs[i] = core.Request{Src: base + rng.Intn(size), Dst: base + rng.Intn(size)}
	}
	return reqs
}

// BenchmarkScalingEngines is the multi-core scaling study: sequential
// vs deterministic vs racy vs shard (± steal) with workers pinned to
// GOMAXPROCS, so `go test -bench ScalingEngines -cpu 1,2,4,8` sweeps
// core counts and each point uses exactly the cores the runtime gives
// it (baseline and acceptance notes recorded in BENCH_scaling.json).
// Uniform traffic mostly crosses the root and falls back to the
// two-phase engine; local traffic is fully subtree-confined, the shard
// engine's zero-coordination fast path.
func BenchmarkScalingEngines(b *testing.B) {
	shapes := []struct{ l, m, w int }{{3, 8, 8}, {4, 8, 8}}
	for _, sh := range shapes {
		tree, err := NewFatTree(sh.l, sh.m, sh.w)
		if err != nil {
			b.Fatal(err)
		}
		const batch = 4096
		for _, traffic := range []string{"uniform", "local"} {
			reqs := scalingBatch(tree, batch, traffic == "local", 1)
			prefix := fmt.Sprintf("FT%dx%dx%d/batch%d/%s", sh.l, sh.m, sh.w, batch, traffic)
			run := func(name string, schedule func(*LinkState, []core.Request)) {
				b.Run(prefix+"/"+name, func(b *testing.B) {
					st := NewLinkState(tree)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st.Reset()
						schedule(st, reqs)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "requests/s")
				})
			}
			opts := core.Options{Rollback: true}
			lw, sc := &core.LevelWise{Opts: opts}, core.NewScratch()
			run("sequential", func(st *LinkState, reqs []core.Request) { lw.ScheduleInto(st, reqs, sc) })
			// Workers track GOMAXPROCS so the -cpu flag is the scaling
			// axis; the engines are built per sub-benchmark because
			// GOMAXPROCS changes between -cpu points.
			for _, mk := range []struct {
				name string
				cfg  func(workers int) parsched.Config
			}{
				{"deterministic", func(w int) parsched.Config {
					return parsched.Config{Workers: w, Mode: parsched.Deterministic, Opts: opts}
				}},
				{"racy", func(w int) parsched.Config {
					return parsched.Config{Workers: w, Mode: parsched.Racy, Opts: opts}
				}},
				{"shard", func(w int) parsched.Config {
					return parsched.Config{Workers: w, Mode: parsched.Shard, Opts: opts}
				}},
				{"shard+steal", func(w int) parsched.Config {
					return parsched.Config{Workers: w, Mode: parsched.Shard, Steal: true, Opts: opts}
				}},
			} {
				cfg := mk.cfg
				b.Run(prefix+"/"+mk.name, func(b *testing.B) {
					eng := parsched.New(cfg(runtime.GOMAXPROCS(0)))
					st := NewLinkState(tree)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						st.Reset()
						eng.Schedule(st, reqs)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "requests/s")
				})
			}
		}
	}
}

// BenchmarkExtFailureLoci regenerates extension E11 (denial loci).
func BenchmarkExtFailureLoci(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtFailureLoci(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtStaleness regenerates extension E12 (global-view staleness).
func BenchmarkExtStaleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtStaleness(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtMulticast regenerates extension E13 (one-to-many trees).
func BenchmarkExtMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtMulticast(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBacktrack regenerates extension E14 (bounded search).
func BenchmarkExtBacktrack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtBacktrack(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAnalytic regenerates extension E15 (mean-field model).
func BenchmarkExtAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtAnalytic(benchPerms, 1); err != nil {
			b.Fatal(err)
		}
	}
}
