// Hardware pipeline: drive the cycle-accurate model of the paper's FPGA
// scheduler (Section 6) and reproduce Table 1 — per-request latency and
// whole-batch scheduling time for 64-, 512- and 4096-node systems.
//
//	go run ./examples/hardware_pipeline
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/hardware"
	"repro/internal/report"
	"repro/internal/traffic"
)

func main() {
	tb := report.NewTable("FPGA scheduler model vs paper Table 1 (three-level fat trees)",
		"nodes", "switch", "clock", "single req", "all (paper acct)", "makespan", "granted")
	for _, w := range []int{4, 8, 16} {
		tree, err := repro.NewFatTree(3, w, w)
		if err != nil {
			log.Fatal(err)
		}
		gen := traffic.NewGenerator(tree.Nodes(), 1)
		reqs := gen.MustBatch(traffic.RandomPermutation)
		pipe := hardware.New(tree)
		res, tm := pipe.Schedule(reqs)
		if err := repro.Verify(tree, res); err != nil {
			log.Fatal(err)
		}
		tb.AddRow(
			fmt.Sprint(tree.Nodes()),
			fmt.Sprintf("%dx%d", w, w),
			fmt.Sprintf("%.3f ns", tm.ClockNS),
			fmt.Sprintf("%.0f ns", tm.SingleRequestNS),
			fmt.Sprintf("%.0f ns", tm.PipelinedBatchNS),
			fmt.Sprintf("%.1f ns", tm.BatchNS),
			fmt.Sprintf("%d/%d", res.Granted, res.Total),
		)
	}
	tb.AddNote("paper Table 1: single 15/17/19 ns; all 480/4352/38912 ns; < 40 µs for 4096 nodes")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The pipeline and the software scheduler agree request for request.
	tree, _ := repro.NewFatTree(3, 8, 8)
	reqs := traffic.NewGenerator(tree.Nodes(), 2).MustBatch(traffic.RandomPermutation)
	hw, _ := hardware.New(tree).Schedule(reqs)
	sw, err := repro.Schedule(tree, repro.NewLevelWise(), reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check on FT(3,8): hardware granted %d, software granted %d (identical grant sets: %v)\n",
		hw.Granted, sw.Granted, identical(hw, sw))
}

func identical(a, b *repro.Result) bool {
	if a.Granted != b.Granted || a.Total != b.Total {
		return false
	}
	for i := range a.Outcomes {
		if a.Outcomes[i].Granted != b.Outcomes[i].Granted {
			return false
		}
	}
	return true
}
