// Collectives: schedule one-to-many connections (multicast trees) — the
// communication shape of broadcasts and barrier releases — with the
// Level-wise generalization, and watch the blind baseline collapse as
// fanout grows.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
)

func main() {
	tree, err := repro.NewFatTree(3, 8, 8) // 512 nodes
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	// A broadcast from node 0 to every other node costs one tree.
	all := make([]int, tree.Nodes()-1)
	for i := range all {
		all[i] = i + 1
	}
	res, err := repro.ScheduleMulticast(tree, []repro.MulticastRequest{{Src: 0, Dsts: all}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast 0 → all %d nodes: granted=%v using ports %v (one shared port per level)\n",
		len(all), res.Outcomes[0].Granted, res.Outcomes[0].Ports)

	// Batches of random multicasts: Level-wise vs blind local.
	rng := rand.New(rand.NewSource(3))
	tb := report.NewTable("Random multicast batches (32 trees), FT(3,8), 25 trials",
		"fanout", "local", "level-wise")
	for _, fanout := range []int{2, 4, 8} {
		var localSum, lwSum float64
		const trials = 25
		st := linkstate.New(tree)
		for trial := 0; trial < trials; trial++ {
			reqs := make([]core.MulticastRequest, 32)
			for i := range reqs {
				dsts := make([]int, fanout)
				for k := range dsts {
					dsts[k] = rng.Intn(tree.Nodes())
				}
				reqs[i] = core.MulticastRequest{Src: rng.Intn(tree.Nodes()), Dsts: dsts}
			}
			st.Reset()
			localSum += (&core.MulticastLocal{}).Schedule(st, reqs).Ratio()
			st.Reset()
			lwSum += (&core.MulticastLevelWise{}).Schedule(st, reqs).Ratio()
		}
		tb.AddRow(fmt.Sprint(fanout),
			report.Percent(localSum/trials), report.Percent(lwSum/trials))
	}
	tb.AddNote("one occupied branch kills a blind tree; the global AND checks every branch before committing")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
