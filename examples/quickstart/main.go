// Quickstart: build a fat tree, generate a random permutation, and
// compare the paper's Level-wise scheduler against the conventional
// local adaptive one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// FT(3,4): the paper's 64-node example topology (Figure 1c) — three
	// levels of 4x4 switches.
	tree, err := repro.NewFatTree(3, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	// One request per node to a random distinct destination — the
	// paper's workload.
	reqs := repro.Permutation(tree, 42)

	cmp, err := repro.Compare(tree, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local adaptive scheduler:   %3d/%d connections (%.1f%%)\n",
		cmp.Local.Granted, cmp.Local.Total, 100*cmp.Local.Ratio())
	fmt.Printf("level-wise global scheduler: %3d/%d connections (%.1f%%)\n",
		cmp.Global.Granted, cmp.Global.Total, 100*cmp.Global.Ratio())
	fmt.Printf("improvement: %+.1f percentage points\n", 100*cmp.Improvement())

	// Inspect one granted connection's port assignment: by Theorem 2 the
	// same port indices steer both the upward and the downward half.
	for _, o := range cmp.Global.Outcomes {
		if o.Granted && o.H == tree.Levels()-1 {
			fmt.Printf("example grant %d→%d: climbs to level %d via ports %v "+
				"(and descends through the same port numbers)\n", o.Src, o.Dst, o.H, o.Ports)
			break
		}
	}
}
