// Scheduler shootout: every scheduler in the repository — local greedy,
// local random, TBWP (with its top-level ring), Level-wise, and the
// rearrangeable optimal — on identical permutation workloads, plus the
// rounds each needs to deliver a full permutation and the resilience of
// the two main contenders to link failures.
//
//	go run ./examples/scheduler_shootout
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tbwp"
	"repro/internal/traffic"
)

const trials = 40

func main() {
	tree, err := repro.NewFatTree(3, 8, 8) // 512 nodes
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	gen := traffic.NewGenerator(tree.Nodes(), 21)
	batches := gen.Permutations(trials)

	tb := report.NewTable("Schedulability on FT(3,8), 40 random permutations",
		"scheduler", "mean", "min", "max", "")
	type contender struct {
		name string
		run  func(batch []core.Request, trial int) float64
	}
	st := linkstate.New(tree)
	contenders := []contender{
		{"local greedy", func(b []core.Request, _ int) float64 {
			st.Reset()
			return core.NewLocalGreedy().Schedule(st, b).Ratio()
		}},
		{"local random", func(b []core.Request, _ int) float64 {
			st.Reset()
			return core.NewLocalRandom().Schedule(st, b).Ratio()
		}},
		{"TBWP (ring)", func(b []core.Request, trial int) float64 {
			st.Reset()
			s := &tbwp.Scheduler{Policy: core.RandomFit, Seed: int64(trial)}
			return s.Schedule(st, b).Ratio()
		}},
		{"level-wise", func(b []core.Request, _ int) float64 {
			st.Reset()
			return core.NewLevelWise().Schedule(st, b).Ratio()
		}},
		{"optimal", func(b []core.Request, _ int) float64 {
			st.Reset()
			return repro.NewOptimal().Schedule(st, b).Ratio()
		}},
	}
	for _, c := range contenders {
		ratios := make([]float64, 0, trials)
		for trial, b := range batches {
			ratios = append(ratios, c.run(b, trial))
		}
		s := stats.Summarize(ratios)
		tb.AddRow(c.name, report.Percent(s.Mean), report.Percent(s.Min), report.Percent(s.Max),
			report.Bar(s.Mean, 24))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Resilience: fail 10% of links and rerun the two main contenders.
	stf := linkstate.New(tree)
	failEvery := 10
	count := 0
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for p := 0; p < tree.Parents(); p++ {
				count++
				if count%failEvery == 0 {
					stf.FailLink(linkstate.Up, h, idx, p)
					stf.FailLink(linkstate.Down, h, idx, p)
				}
			}
		}
	}
	var localSum, lwSum float64
	for _, b := range batches {
		stf.Reset()
		localSum += core.NewLocalRandom().Schedule(stf, b).Ratio()
		stf.Reset()
		lwSum += core.NewLevelWise().Schedule(stf, b).Ratio()
	}
	fmt.Printf("with 10%% of links failed: local %.1f%%, level-wise %.1f%% (still ahead)\n",
		100*localSum/trials, 100*lwSum/trials)
}
