// Dynamic connections through the serving path: long-lived circuits
// arriving and departing over time — the scenario the paper motivates
// ("especially beneficial to setup long-lived connections") — driven
// through the concurrent fabric API instead of the batch simulator.
// Concurrent clients call Connect/Release against one epoch-batched
// fabric manager; the sweep raises offered load (client count × held
// circuits) and reports blocking probability and admission throughput.
//
//	go run ./examples/dynamic_connections
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/report"
)

func main() {
	tree, err := repro.NewFatTree(3, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	tb := report.NewTable("Blocking probability vs offered load through the fabric serving path (epoch batch 32)",
		"clients", "held/client", "offered", "blocking", "admissions/sec", "mean epoch", "p95 admit ms")
	for _, load := range []struct{ clients, held int }{
		{8, 2}, {32, 4}, {64, 8}, {128, 8}, {256, 8},
	} {
		fab, err := repro.NewFabric(tree, repro.FabricConfig{
			BatchSize: 32,
			MaxWait:   500 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < load.clients; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				var held []*repro.FabricHandle
				for i := 0; i < 100; i++ {
					// Churn: retire the oldest circuit once the client
					// holds its quota, then request a fresh one.
					for len(held) >= load.held {
						if err := held[0].Release(); err != nil {
							log.Fatal(err)
						}
						held = held[1:]
					}
					h, err := fab.Connect(context.Background(), rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
					if err == nil {
						held = append(held, h)
					} else if !errors.Is(err, repro.ErrUnroutable) {
						log.Fatal(err)
					}
				}
				for _, h := range held {
					if err := h.Release(); err != nil {
						log.Fatal(err)
					}
				}
			}(int64(c) + 1)
		}
		start := time.Now()
		wg.Wait()
		elapsed := time.Since(start)
		if err := fab.Close(context.Background()); err != nil {
			log.Fatal(err)
		}
		s := fab.Stats()
		blocking := float64(s.Rejected) / float64(s.Offered)
		tb.AddRow(
			fmt.Sprint(load.clients),
			fmt.Sprint(load.held),
			fmt.Sprint(s.Offered),
			report.Percent(blocking),
			fmt.Sprintf("%.0f", float64(s.Offered)/elapsed.Seconds()),
			fmt.Sprintf("%.1f", s.EpochSize.Mean),
			fmt.Sprintf("%.3f", s.EpochLatencyMS.P95),
		)
	}
	tb.AddNote("a blocked circuit is lost; blocking rises with held circuits as the fabric saturates")
	tb.AddNote("all admissions run through the epoch-batched Level-wise engine (internal/fabric)")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
