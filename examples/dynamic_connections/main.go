// Dynamic connections: long-lived circuits arriving and departing over
// time — the scenario the paper motivates ("especially beneficial to
// setup long-lived connections"). Sweeps offered load and reports
// blocking probability per scheduler.
//
//	go run ./examples/dynamic_connections
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/report"
)

func main() {
	tree, err := repro.NewFatTree(3, 8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	tb := report.NewTable("Blocking probability vs offered load (Poisson arrivals, exp holding ~120 cycles)",
		"arrivals/cycle", "local blocking", "level-wise blocking", "level-wise mean active")
	for _, rate := range []float64{0.5, 1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%.1f", rate)}
		var lwActive float64
		for _, mk := range []func() core.Scheduler{
			func() core.Scheduler { return core.NewLocalRandom() },
			func() core.Scheduler { return &core.LevelWise{Opts: core.Options{Rollback: true}} },
		} {
			st, err := dynamic.Run(dynamic.Config{
				Tree:        tree,
				Scheduler:   mk(),
				ArrivalRate: rate,
				MeanHold:    120,
				Duration:    30000,
				WarmUp:      3000,
				Seed:        7,
			})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, report.Percent(st.BlockingProbability()))
			lwActive = st.MeanActive
		}
		row = append(row, fmt.Sprintf("%.1f", lwActive))
		tb.AddRow(row...)
	}
	tb.AddNote("a blocked circuit is lost; lower blocking at equal load = more usable bandwidth")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
