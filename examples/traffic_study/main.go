// Traffic study: how the schedulers behave under the structured
// communication patterns of parallel applications (FFT butterflies use
// bit reversal, matrix codes use transpose, stencil codes use neighbor
// exchange), not just the paper's random permutations.
//
//	go run ./examples/traffic_study
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func main() {
	// 256 nodes: power of two (bit patterns) and a perfect square
	// (transpose), two levels of 16x16 switches.
	tree, err := repro.NewFatTree(2, 16, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree)

	patterns := []traffic.Pattern{
		traffic.RandomPermutation, traffic.UniformRandom, traffic.Hotspot,
		traffic.BitReversal, traffic.BitComplement, traffic.Shuffle,
		traffic.Transpose, traffic.Tornado, traffic.Neighbor,
	}
	schedulers := []repro.Scheduler{repro.NewLocalRandom(), repro.NewLevelWise(), repro.NewOptimal()}

	tb := report.NewTable("Schedulability by traffic pattern (FT(2,16), 30 trials)",
		"pattern", "local", "level-wise", "optimal")
	const trials = 30
	for _, p := range patterns {
		row := []string{p.String()}
		for _, s := range schedulers {
			gen := traffic.NewGenerator(tree.Nodes(), int64(p)+1)
			st := linkstate.New(tree)
			ratios := make([]float64, 0, trials)
			for trial := 0; trial < trials; trial++ {
				batch, err := gen.Batch(p)
				if err != nil {
					log.Fatal(err)
				}
				st.Reset()
				res := s.Schedule(st, batch)
				if err := repro.Verify(tree, res); err != nil {
					log.Fatal(err)
				}
				ratios = append(ratios, res.Ratio())
			}
			row = append(row, report.Percent(stats.Summarize(ratios).Mean))
		}
		tb.AddRow(row...)
	}
	tb.AddNote("structured permutations are deterministic, so their 30 trials differ only for the random local scheduler")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
