package repro_test

import (
	"fmt"

	"repro"
)

// ExampleCompare runs the paper's head-to-head comparison on one random
// permutation.
func ExampleCompare() {
	tree, err := repro.NewFatTree(3, 4, 4) // the paper's 64-node example
	if err != nil {
		panic(err)
	}
	reqs := repro.Permutation(tree, 42)
	cmp, err := repro.Compare(tree, reqs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("local %d/%d, level-wise %d/%d\n",
		cmp.Local.Granted, cmp.Local.Total,
		cmp.Global.Granted, cmp.Global.Total)
	// Output: local 43/64, level-wise 57/64
}

// ExampleSchedule routes a single connection and shows Theorem 2's
// symmetric port assignment.
func ExampleSchedule() {
	tree, _ := repro.NewFatTree(3, 4, 4)
	res, err := repro.Schedule(tree, repro.NewLevelWise(), []repro.Request{{Src: 0, Dst: 63}})
	if err != nil {
		panic(err)
	}
	o := res.Outcomes[0]
	fmt.Printf("granted=%v ancestor level=%d ports=%v\n", o.Granted, o.H, o.Ports)
	// Output: granted=true ancestor level=2 ports=[0 0]
}

// ExampleNewOptimal shows that permutations are fully schedulable with
// global rearrangement (fat trees with w = m are rearrangeably
// non-blocking).
func ExampleNewOptimal() {
	tree, _ := repro.NewFatTree(3, 4, 4)
	res, err := repro.Schedule(tree, repro.NewOptimal(), repro.Permutation(tree, 7))
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal ratio: %.2f\n", res.Ratio())
	// Output: optimal ratio: 1.00
}
