package repro

import (
	"testing"

	"repro/internal/traffic"
)

func TestNewFatTree(t *testing.T) {
	tree, err := NewFatTree(3, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 64 {
		t.Fatalf("nodes = %d", tree.Nodes())
	}
	if _, err := NewFatTree(0, 4, 4); err == nil {
		t.Fatal("bad tree accepted")
	}
}

func TestPermutationAndSchedule(t *testing.T) {
	tree, _ := NewFatTree(3, 4, 4)
	reqs := Permutation(tree, 7)
	if !traffic.IsPermutation(reqs) {
		t.Fatal("not a permutation")
	}
	for _, s := range []Scheduler{NewLevelWise(), NewLocalRandom(), NewLocalGreedy(), NewOptimal()} {
		res, err := Schedule(tree, s, reqs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Ratio() <= 0 || res.Ratio() > 1 {
			t.Fatalf("%s: ratio %v", s.Name(), res.Ratio())
		}
	}
}

func TestCompare(t *testing.T) {
	tree, _ := NewFatTree(3, 4, 4)
	var sum float64
	for seed := int64(0); seed < 10; seed++ {
		cmp, err := Compare(tree, Permutation(tree, seed))
		if err != nil {
			t.Fatal(err)
		}
		sum += cmp.Improvement()
	}
	if sum <= 0 {
		t.Fatalf("level-wise not better on average: %v", sum)
	}
}

func TestLinkStatePersistsAcrossBatches(t *testing.T) {
	tree, _ := NewFatTree(3, 4, 4)
	st := NewLinkState(tree)
	s := NewLevelWiseWith(Options{Rollback: true})
	first := s.Schedule(st, Permutation(tree, 1))
	second := s.Schedule(st, Permutation(tree, 2))
	if second.Granted >= first.Granted {
		t.Fatalf("second batch on a loaded network granted %d >= %d", second.Granted, first.Granted)
	}
	if err := Verify(tree, first); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsExposed(t *testing.T) {
	tree, _ := NewFatTree(2, 8, 8)
	s := NewLevelWiseWith(Options{Rollback: true})
	res, err := Schedule(tree, s, Permutation(tree, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "level-wise/rollback" {
		t.Fatalf("scheduler = %q", res.Scheduler)
	}
}
