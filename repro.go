package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/linkstate"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// FatTree is a fat-tree topology FT(l, m, w); see NewFatTree.
type FatTree = topology.Tree

// Request is one connection request between two processing nodes.
type Request = core.Request

// Result is a scheduled batch with per-request outcomes; Result.Ratio()
// is the schedulability ratio.
type Result = core.Result

// Outcome records what the scheduler did with one request.
type Outcome = core.Outcome

// Scheduler routes request batches against a link state.
type Scheduler = core.Scheduler

// LinkState tracks per-channel availability; schedulers mutate it, so a
// sequence of batches on one LinkState models incremental allocation.
type LinkState = linkstate.State

// Options tunes a scheduler (port policy, ordering, rollback, retries).
type Options = core.Options

// NewFatTree constructs FT(l, m, w): l switch levels, m children and w
// parents per switch, m^l processing nodes. The paper's symmetric trees
// use m == w.
func NewFatTree(levels, children, parents int) (*FatTree, error) {
	return topology.New(levels, children, parents)
}

// NewLinkState returns a fresh all-available link state for the tree.
func NewLinkState(tree *FatTree) *LinkState { return linkstate.New(tree) }

// NewScheduler builds a scheduler from an internal/sched registry spec,
// e.g. "level-wise,policy=random,rollback", "backtrack,depth=4" or
// "parallel,mode=racy,workers=8". Unknown families and parameters are
// reported with the nearest valid alternatives. The named constructors
// below are shorthands for the most common specs.
func NewScheduler(spec string) (Scheduler, error) { return sched.Parse(spec) }

// NewLevelWise returns the paper's Level-wise global scheduler with its
// published defaults (first-fit port selection, level-major traversal) —
// spec "level-wise".
func NewLevelWise() Scheduler { return sched.MustParse("level-wise") }

// NewLevelWiseWith returns a Level-wise scheduler with custom options
// (for Options values specs cannot express, such as a caller-owned
// random source or a trace hook).
func NewLevelWiseWith(opts Options) Scheduler { return sched.Wrap(&core.LevelWise{Opts: opts}) }

// NewLocalRandom returns the conventional adaptive baseline: upward ports
// chosen randomly from the locally available set (the scheme the paper's
// Section 1 describes) — spec "local-random".
func NewLocalRandom() Scheduler { return sched.MustParse("local-random") }

// NewLocalGreedy returns the greedy (first-fit) local baseline — spec
// "local-greedy".
func NewLocalGreedy() Scheduler { return sched.MustParse("local-greedy") }

// NewOptimal returns the rearrangeable reference scheduler (recursive
// edge coloring): 100% schedulability for permutations when w >= m —
// spec "optimal".
func NewOptimal() Scheduler { return sched.MustParse("optimal") }

// Permutation generates a random permutation workload over the tree's
// nodes, deterministically from the seed.
func Permutation(tree *FatTree, seed int64) []Request {
	return traffic.NewGenerator(tree.Nodes(), seed).MustBatch(traffic.RandomPermutation)
}

// Schedule routes one batch on a fresh network and verifies the result's
// link-safety before returning it.
func Schedule(tree *FatTree, s Scheduler, reqs []Request) (*Result, error) {
	res := s.Schedule(linkstate.New(tree), reqs)
	if err := core.Verify(tree, res); err != nil {
		return nil, fmt.Errorf("repro: scheduler %q produced an inconsistent result: %w", s.Name(), err)
	}
	return res, nil
}

// Comparison is the outcome of one head-to-head batch.
type Comparison struct {
	Local  *Result
	Global *Result
}

// Improvement returns the absolute schedulability-ratio gain of the
// Level-wise scheduler over the local baseline on this batch.
func (c Comparison) Improvement() float64 { return c.Global.Ratio() - c.Local.Ratio() }

// Compare runs the paper's head-to-head — conventional local adaptive
// scheduling versus the Level-wise global scheduler — on one batch.
func Compare(tree *FatTree, reqs []Request) (Comparison, error) {
	local, err := Schedule(tree, NewLocalRandom(), reqs)
	if err != nil {
		return Comparison{}, err
	}
	global, err := Schedule(tree, NewLevelWise(), reqs)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Local: local, Global: global}, nil
}

// Verify replays a result against a fresh link state and reports the
// first inconsistency (nil if the result is link-safe and well formed).
func Verify(tree *FatTree, res *Result) error { return core.Verify(tree, res) }

// Fabric is the concurrent serving layer: a goroutine-safe manager that
// owns a live LinkState and admits long-lived connections from many
// clients, coalescing requests into atomically scheduled epochs. See
// internal/fabric for the full contract.
type Fabric = fabric.Manager

// FabricConfig tunes a Fabric (epoch batch size, flush timer, queue
// bound, admission timeout, scheduler).
type FabricConfig = fabric.Config

// FabricHandle is a granted connection; release it exactly once.
type FabricHandle = fabric.Handle

// ErrUnroutable is returned (wrapped, with the failing level attached)
// by Fabric.Connect when no conflict-free path exists at admission time;
// test with errors.Is. The circuit is lost, not queued — callers decide
// whether to retry.
var ErrUnroutable = fabric.ErrUnroutable

// FabricStats is a Fabric observability snapshot (counters, epoch size
// and latency distributions, live utilization).
type FabricStats = fabric.Stats

// NewFabric starts a fabric manager serving Connect/Release over the
// tree. Stop it with Close, which drains the admission queue.
func NewFabric(tree *FatTree, cfg FabricConfig) (*Fabric, error) {
	cfg.Tree = tree
	return fabric.New(cfg)
}

// MulticastRequest is a one-to-many connection request (extension E13).
type MulticastRequest = core.MulticastRequest

// MulticastResult is a scheduled multicast batch.
type MulticastResult = core.MulticastResult

// ScheduleMulticast routes one-to-many connections with the Level-wise
// generalization (the per-level AND spans every branch's mirror switch)
// on a fresh network, verifying the trees before returning.
func ScheduleMulticast(tree *FatTree, reqs []MulticastRequest) (*MulticastResult, error) {
	res := (&core.MulticastLevelWise{}).Schedule(linkstate.New(tree), reqs)
	if err := core.VerifyMulticast(tree, res); err != nil {
		return nil, fmt.Errorf("repro: multicast scheduling produced an inconsistent result: %w", err)
	}
	return res, nil
}
