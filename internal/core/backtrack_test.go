package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

func TestBacktrackZeroEqualsPlainLevelWise(t *testing.T) {
	// Backtracks == 0: same grants as the exact Level-wise scheduler
	// (request-major, rollback — the search always unwinds on denial).
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		reqs := permutation(tree, rng)
		a := (&BacktrackLevelWise{Backtracks: 0}).Schedule(linkstate.New(tree), reqs)
		b := (&LevelWise{Opts: Options{Traversal: RequestMajor, Rollback: true}}).Schedule(linkstate.New(tree), reqs)
		if a.Granted != b.Granted {
			t.Fatalf("trial %d: backtrack-0 %d vs exact %d", trial, a.Granted, b.Granted)
		}
		for i := range a.Outcomes {
			if a.Outcomes[i].Granted != b.Outcomes[i].Granted {
				t.Fatalf("trial %d outcome %d differs", trial, i)
			}
		}
		if err := Verify(tree, a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBacktrackImprovesMonotonically(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(73))
	sums := map[int]float64{}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		reqs := permutation(tree, rng)
		for _, b := range []int{0, 2, 8, 32} {
			r := (&BacktrackLevelWise{Backtracks: b}).Schedule(linkstate.New(tree), reqs)
			if err := Verify(tree, r); err != nil {
				t.Fatal(err)
			}
			sums[b] += r.Ratio()
		}
	}
	if !(sums[0] <= sums[2] && sums[2] <= sums[8] && sums[8] <= sums[32]) {
		t.Fatalf("not monotone: %v", sums)
	}
	if sums[32] <= sums[0] {
		t.Fatalf("backtracking never helped: %v", sums)
	}
}

func TestBacktrackNoLeaks(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(79))
	reqs := permutation(tree, rng)
	st := linkstate.New(tree)
	res := (&BacktrackLevelWise{Backtracks: 5}).Schedule(st, reqs)
	if got, want := st.OccupiedCount(), HeldChannels(res); got != want {
		t.Fatalf("occupancy %d != held %d", got, want)
	}
	for _, o := range res.Outcomes {
		if !o.Granted && len(o.Ports) != 0 {
			t.Fatal("failed request retained ports")
		}
	}
}

func TestBacktrackName(t *testing.T) {
	if (&BacktrackLevelWise{Backtracks: 3}).Name() != "level-wise/backtrack-3" {
		t.Fatal("name")
	}
}

// Property: bounded search always terminates with a verifiable result,
// never exceeding the optimal (100% per single request on an empty net).
func TestQuickBacktrackConsistent(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64, budget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 1
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Src: rng.Intn(64), Dst: rng.Intn(64)}
		}
		s := &BacktrackLevelWise{Backtracks: int(budget) % 20}
		res := s.Schedule(linkstate.New(tree), reqs)
		if err := Verify(tree, res); err != nil {
			t.Log(err)
			return false
		}
		return res.Granted <= res.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
