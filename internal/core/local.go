package core

import (
	"math/rand"

	"repro/internal/linkstate"
)

// Local is the conventional adaptive scheduler the paper compares against:
// upward ports are chosen using only the local switch's Ulink vector, so a
// request commits to an up-path before knowing whether the forced
// down-path (Theorem 2) is free. Conflicts surface while descending; a
// request that cannot complete is torn down (its channels released) and
// counted as failed.
//
// With Policy == FirstFit this is the paper's "greedy" local scheduler;
// with Policy == RandomFit it is the "random" adaptive one.
type Local struct {
	Opts Options
}

// NewLocalGreedy returns the greedy local baseline (first-fit ports).
func NewLocalGreedy() *Local { return &Local{} }

// NewLocalRandom returns the random adaptive baseline with a fixed seed.
func NewLocalRandom() *Local { return &Local{Opts: Options{Policy: RandomFit}} }

// Name identifies the scheduler in results and reports.
func (s *Local) Name() string {
	n := "local/" + s.Opts.Policy.String()
	if s.Opts.Retries > 0 {
		n += "/retry"
	}
	return n
}

// Schedule routes the batch, mutating st.
func (s *Local) Schedule(st *linkstate.State, reqs []Request) *Result {
	tree := st.Tree()
	rng := s.Opts.rng()
	outs := NewOutcomes(tree, reqs)
	order := OrderIndices(tree, reqs, s.Opts.Order, rng)
	var ops Counters
	for _, i := range order {
		o := &outs[i]
		if o.H == 0 {
			o.Granted = true
			continue
		}
		policy := s.Opts.Policy
		for attempt := 0; ; attempt++ {
			if s.tryOne(st, o, policy, rng, &ops) {
				break
			}
			if attempt >= s.Opts.Retries {
				break
			}
			// Deterministic retries would repeat the same failure, so
			// further attempts explore randomly.
			policy = RandomFit
			o.Ports = o.Ports[:0]
			o.FailLevel = -1
			o.FailDown = false
		}
	}
	return finish(s.Name(), outs, ops)
}

// tryOne makes one attempt to route o. On failure every channel the
// attempt claimed is released (the connection is not established, so it
// holds nothing) and false is returned.
func (s *Local) tryOne(st *linkstate.State, o *Outcome, policy PortPolicy, rng *rand.Rand, ops *Counters) bool {
	tree := st.Tree()

	// Climb: choose from the locally visible upward links only. The
	// cursor advances both sides in lockstep, so the mirror switch each
	// level forces (needed for the top-down descent) is recorded as the
	// climb passes it.
	var cur RouteCursor
	cur.Start(tree, o.Src, o.Dst)
	deltas := make([]int, o.H) // mirror switch at each level
	for h := 0; h < o.H; h++ {
		avail := st.ULink(h, cur.Sigma())
		ops.VectorReads++
		ops.Steps++
		p, ok := pickPort(st, policy, rng, h, cur.Sigma(), avail)
		ops.PortPicks++
		if s.Opts.Trace != nil {
			port := p
			if !ok {
				port = -1
			}
			s.Opts.Trace(TraceEvent{Scheduler: s.Name(), Src: o.Src, Dst: o.Dst, Level: h,
				Phase: "up", Sigma: cur.Sigma(), Delta: -1, Avail: avail.String(), Port: port})
		}
		if !ok {
			o.FailLevel = h
			s.teardown(st, o, -1, ops)
			return false
		}
		mustAllocate(st, linkstate.Up, h, cur.Sigma(), p)
		ops.Allocs++
		o.Ports = append(o.Ports, p)
		deltas[h] = cur.Delta()
		cur.Advance(p)
	}

	// Descend: the path is forced (Theorem 2 — same port index at the
	// mirror switches). Walk top-down, as the physical circuit would.
	for h := o.H - 1; h >= 0; h-- {
		ops.VectorReads++
		ops.Steps++
		if s.Opts.Trace != nil {
			port := o.Ports[h]
			if !st.Available(linkstate.Down, h, deltas[h], port) {
				port = -1
			}
			s.Opts.Trace(TraceEvent{Scheduler: s.Name(), Src: o.Src, Dst: o.Dst, Level: h,
				Phase: "down", Sigma: -1, Delta: deltas[h], Avail: st.DLink(h, deltas[h]).String(), Port: port})
		}
		if !st.Available(linkstate.Down, h, deltas[h], o.Ports[h]) {
			o.FailLevel = h
			o.FailDown = true
			s.teardown(st, o, h, ops)
			return false
		}
		mustAllocate(st, linkstate.Down, h, deltas[h], o.Ports[h])
		ops.Allocs++
	}
	o.Granted = true
	return true
}

// teardown releases an attempt's claims by replaying its climb with a
// route cursor: every upward channel the attempt took, and the downward
// channels at levels above failDown (the descent allocates from the top
// level downward, so levels at or below the failure were never claimed).
// failDown == -1 means the descent never started.
func (s *Local) teardown(st *linkstate.State, o *Outcome, failDown int, ops *Counters) {
	var c RouteCursor
	c.Start(st.Tree(), o.Src, o.Dst)
	c.Walk(o.Ports, func(h, sigma, delta, p int) {
		mustRelease(st, linkstate.Up, h, sigma, p)
		ops.Releases++
		if failDown >= 0 && h > failDown {
			mustRelease(st, linkstate.Down, h, delta, p)
			ops.Releases++
		}
	})
	o.Ports = o.Ports[:0]
}
