package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// permBatch builds a random permutation batch over the tree's nodes.
func permBatch(tree *topology.Tree, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(tree.Nodes())
	reqs := make([]Request, len(perm))
	for i, d := range perm {
		reqs[i] = Request{Src: i, Dst: d}
	}
	return reqs
}

// TestScheduleIntoZeroAllocs is the arena regression guard: once the
// Scratch has warmed up, the sequential Level-wise hot path must not
// allocate at all — zero allocations per request, per level, per epoch.
func TestScheduleIntoZeroAllocs(t *testing.T) {
	tree := topology.MustNew(3, 8, 8)
	reqs := permBatch(tree, 1)
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"level-major", Options{}},
		{"level-major/rollback", Options{Rollback: true}},
		{"request-major", Options{Traversal: RequestMajor}},
		{"deepest-first", Options{Order: DeepestFirst, Rollback: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			if cfg.opts.Order == DeepestFirst {
				// sort.SliceStable's reflection swapper allocates a
				// constant amount per batch; the guard below is per run,
				// so only the allocation-free orders are asserted to be
				// exactly zero.
				t.Skip("DeepestFirst sorts with sort.SliceStable, which allocates per batch")
			}
			st := linkstate.New(tree)
			s := &LevelWise{Opts: cfg.opts}
			sc := NewScratch()
			st.Reset()
			s.ScheduleInto(st, reqs, sc) // warm the scratch to its high-water mark
			allocs := testing.AllocsPerRun(10, func() {
				st.Reset()
				s.ScheduleInto(st, reqs, sc)
			})
			if allocs != 0 {
				t.Fatalf("ScheduleInto allocated %.1f times per %d-request batch, want 0", allocs, len(reqs))
			}
		})
	}

	// The incremental delta path must hold the same bar: a full epoch of
	// departures (every previously granted route torn down via the
	// fault-aware ReleaseSurviving walk) plus a fresh arrival sweep,
	// against warm scratch, allocates nothing. The departures are
	// captured once from a warm-up pass — FirstFit is deterministic, so
	// re-granting the same batch re-creates exactly those routes.
	t.Run("incremental-delta", func(t *testing.T) {
		st := linkstate.New(tree)
		s := &LevelWise{Opts: Options{Rollback: true, Incremental: true}}
		sc := NewScratch()
		res := s.ScheduleDeltaInto(st, reqs, nil, sc)
		var deps []Departure
		for _, o := range res.Outcomes {
			if o.Granted {
				deps = append(deps, Departure{Src: o.Src, Dst: o.Dst, Ports: append([]int(nil), o.Ports...)})
			}
		}
		s.ScheduleDeltaInto(st, nil, deps, sc) // drain; scratch is warm now
		allocs := testing.AllocsPerRun(10, func() {
			s.ScheduleDeltaInto(st, reqs, nil, sc)
			s.ScheduleDeltaInto(st, nil, deps, sc)
		})
		if allocs != 0 {
			t.Fatalf("ScheduleDeltaInto allocated %.1f times per grant+depart cycle, want 0", allocs)
		}
	})
}

// TestScheduleIntoMatchesSchedule pins ScheduleInto (scratch reuse) to
// Schedule (fresh buffers): identical grants, ports, fail levels, and
// final link state, batch after batch on the same scratch.
func TestScheduleIntoMatchesSchedule(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	s1 := &LevelWise{Opts: Options{Rollback: true}}
	s2 := &LevelWise{Opts: Options{Rollback: true}}
	stA, stB := linkstate.New(tree), linkstate.New(tree)
	sc := NewScratch()
	for round := 0; round < 5; round++ {
		reqs := permBatch(tree, int64(round+1))
		want := s1.Schedule(stA, reqs)
		got := s2.ScheduleInto(stB, reqs, sc)
		if got.Granted != want.Granted || got.Total != want.Total {
			t.Fatalf("round %d: granted/total %d/%d, want %d/%d", round, got.Granted, got.Total, want.Granted, want.Total)
		}
		for i := range want.Outcomes {
			w, g := &want.Outcomes[i], &got.Outcomes[i]
			if w.Granted != g.Granted || w.FailLevel != g.FailLevel || fmt.Sprint(w.Ports) != fmt.Sprint(g.Ports) {
				t.Fatalf("round %d outcome %d: got %+v want %+v", round, i, *g, *w)
			}
		}
		if !stA.Equal(stB) {
			t.Fatalf("round %d: link states diverged", round)
		}
	}
}

// BenchmarkLevelWiseAllocs measures the sequential hot path with a
// retained Scratch; run with -benchmem, allocs/op must stay 0 (the
// TestScheduleIntoZeroAllocs guard enforces it).
func BenchmarkLevelWiseAllocs(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	reqs := permBatch(tree, 1)
	st := linkstate.New(tree)
	s := &LevelWise{Opts: Options{Rollback: true}}
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.ScheduleInto(st, reqs, sc)
	}
	b.ReportMetric(float64(b.N)*float64(len(reqs))/b.Elapsed().Seconds(), "requests/s")
}
