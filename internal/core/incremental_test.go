package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// epochs splits a batch into fixed-size arrival epochs.
func epochs(reqs []Request, size int) [][]Request {
	var out [][]Request
	for len(reqs) > 0 {
		n := min(size, len(reqs))
		out = append(out, reqs[:n])
		reqs = reqs[n:]
	}
	return out
}

// TestIncrementalArrivalsOnlyGolden pins the bit-identity contract: over
// an arrivals-only workload (no departures), the incremental engine's
// delta epochs must match plain batch-replay epoch for epoch — same
// grants, same ports, same fail levels, same final link state. This is
// what makes turning Config.Incremental on safe for any workload that
// never releases.
func TestIncrementalArrivalsOnlyGolden(t *testing.T) {
	for _, shape := range []struct{ l, m, w int }{{3, 4, 4}, {2, 8, 8}, {3, 8, 8}} {
		for _, rollback := range []bool{false, true} {
			t.Run(fmt.Sprintf("FT%dx%dx%d/rollback=%v", shape.l, shape.m, shape.w, rollback), func(t *testing.T) {
				tree := topology.MustNew(shape.l, shape.m, shape.w)
				batch := &LevelWise{Opts: Options{Rollback: rollback}}
				inc := &LevelWise{Opts: Options{Rollback: rollback, Incremental: true}}
				stA, stB := linkstate.New(tree), linkstate.New(tree)
				scA, scB := NewScratch(), NewScratch()
				for e, arrivals := range epochs(permBatch(tree, 7), 16) {
					want := batch.ScheduleInto(stA, arrivals, scA)
					got := inc.ScheduleDeltaInto(stB, arrivals, nil, scB)
					if got.Granted != want.Granted || got.Torn != 0 {
						t.Fatalf("epoch %d: granted %d torn %d, want granted %d torn 0",
							e, got.Granted, got.Torn, want.Granted)
					}
					for i := range want.Outcomes {
						w, g := &want.Outcomes[i], &got.Outcomes[i]
						if w.Granted != g.Granted || w.FailLevel != g.FailLevel || fmt.Sprint(w.Ports) != fmt.Sprint(g.Ports) {
							t.Fatalf("epoch %d request %d: %+v, want %+v", e, i, g, w)
						}
					}
					if !stA.Equal(stB) {
						t.Fatalf("epoch %d: link states diverged", e)
					}
				}
			})
		}
	}
}

// TestScheduleDeltaReleasesToPristine grants a batch, then departs every
// granted circuit in one delta epoch with no arrivals: the link state
// must return exactly to pristine, and Torn must count the routes that
// held channels.
func TestScheduleDeltaReleasesToPristine(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	s := &LevelWise{Opts: Options{Rollback: true, Incremental: true}}
	st := linkstate.New(tree)
	sc := NewScratch()
	res := s.ScheduleDeltaInto(st, permBatch(tree, 3), nil, sc)
	var deps []Departure
	wantTorn := 0
	for _, o := range res.Outcomes {
		if !o.Granted {
			continue
		}
		deps = append(deps, Departure{Src: o.Src, Dst: o.Dst, Ports: append([]int(nil), o.Ports...)})
		if len(o.Ports) > 0 {
			wantTorn++
		}
	}
	out := s.ScheduleDeltaInto(st, nil, deps, sc)
	if out.Torn != wantTorn {
		t.Fatalf("Torn = %d, want %d", out.Torn, wantTorn)
	}
	if out.Ops.Releases == 0 {
		t.Fatalf("teardown releases not counted in Ops.Releases")
	}
	if !st.Equal(linkstate.New(tree)) {
		t.Fatalf("link state not pristine after departing every grant")
	}
}

// TestScheduleDeltaInterleavedVerifies runs a seeded arrival/departure
// churn sequence through the delta path and checks every epoch's grant
// set is conflict-free (Verify replays the routes against a fresh state)
// and that the fabric drains back to pristine at the end — for both the
// plain incremental engine and the reuse-cost variant.
func TestScheduleDeltaInterleavedVerifies(t *testing.T) {
	for _, reuse := range []int{0, 4} {
		t.Run(fmt.Sprintf("reuse-cost=%d", reuse), func(t *testing.T) {
			tree := topology.MustNew(3, 4, 4)
			s := &LevelWise{Opts: Options{Rollback: true, Incremental: true, ReuseCost: reuse}}
			st := linkstate.New(tree)
			sc := NewScratch()
			rng := rand.New(rand.NewSource(11))
			var held []Departure
			for epoch := 0; epoch < 40; epoch++ {
				// Depart a random third of the held circuits.
				var deps []Departure
				kept := held[:0]
				for _, d := range held {
					if rng.Intn(3) == 0 {
						deps = append(deps, d)
					} else {
						kept = append(kept, d)
					}
				}
				held = kept
				arrivals := make([]Request, 8)
				for i := range arrivals {
					arrivals[i] = Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
				}
				res := s.ScheduleDeltaInto(st, arrivals, deps, sc)
				if err := Verify(tree, res); err != nil {
					t.Fatalf("epoch %d: %v", epoch, err)
				}
				for _, o := range res.Outcomes {
					if o.Granted {
						held = append(held, Departure{Src: o.Src, Dst: o.Dst, Ports: append([]int(nil), o.Ports...)})
					}
				}
			}
			s.ScheduleDeltaInto(st, nil, held, sc)
			if !st.Equal(linkstate.New(tree)) {
				t.Fatalf("link state not pristine after final drain")
			}
		})
	}
}

// TestReleaseSurvivingSkipsFailed pins the fault interplay: a departure
// whose route crosses a failed channel releases only the surviving
// channels; the failed one stays masked and comes back (free) only
// through RepairLink.
func TestReleaseSurvivingSkipsFailed(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	s := &LevelWise{Opts: Options{Rollback: true, Incremental: true}}
	st := linkstate.New(tree)
	sc := NewScratch()
	// Route a seed batch and copy the grants out (the Result aliases the
	// scratch, which the later delta calls reuse): dep is one full-depth
	// circuit, rest is everything else.
	res := s.ScheduleDeltaInto(st, permBatch(tree, 5), nil, sc)
	var dep Departure
	var rest []Departure
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if !o.Granted {
			continue
		}
		d := Departure{Src: o.Src, Dst: o.Dst, Ports: append([]int(nil), o.Ports...)}
		if dep.Ports == nil && o.H == tree.LinkLevels() {
			dep = d
		} else {
			rest = append(rest, d)
		}
	}
	if dep.Ports == nil {
		t.Fatal("no full-depth grant in seed batch")
	}
	// Fail the route's level-0 up channel, then depart the circuit.
	var c RouteCursor
	c.Start(tree, dep.Src, dep.Dst)
	sigma, port := c.Sigma(), dep.Ports[0]
	if st.FailLink(linkstate.Up, 0, sigma, port) {
		t.Fatal("failed channel was reported free; expected it allocated")
	}
	s.ScheduleDeltaInto(st, nil, []Departure{dep}, sc)
	if !st.Failed(linkstate.Up, 0, sigma, port) {
		t.Fatal("departure resurrected a failed channel")
	}
	if st.Available(linkstate.Up, 0, sigma, port) {
		t.Fatal("failed channel became available without a repair")
	}
	// Drain the rest and repair: now the state must be fully pristine.
	s.ScheduleDeltaInto(st, nil, rest, sc)
	st.RepairLink(linkstate.Up, 0, sigma, port)
	if !st.Equal(linkstate.New(tree)) {
		t.Fatal("link state not pristine after drain + repair")
	}
}

// TestPickPortReuse pins the reconfiguration-cost scorer: the port whose
// parents carry the most held channels wins, the cap saturates the
// score, and saturated ties break low (first-fit-like).
func TestPickPortReuse(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	st := linkstate.New(tree)
	avail := bitvec.NewFull(tree.Parents())
	// Load port 2's σ-side parent with two held channels and port 1's
	// with one; ports 0 and 3 lead to idle parents.
	p2 := tree.UpParent(0, 0, 2)
	p1 := tree.UpParent(0, 0, 1)
	mustAllocate(st, linkstate.Up, 1, p2, 0)
	mustAllocate(st, linkstate.Up, 1, p2, 1)
	mustAllocate(st, linkstate.Up, 1, p1, 0)
	if got, ok := pickPortReuse(st, 0, 0, 0, avail, 8); !ok || got != 2 {
		t.Fatalf("uncapped pick = %d, %v; want port 2 (most loaded parent)", got, ok)
	}
	// Cap 1 saturates both loaded parents to the same score: tie breaks
	// low, so port 1 wins.
	if got, ok := pickPortReuse(st, 0, 0, 0, avail, 1); !ok || got != 1 {
		t.Fatalf("capped pick = %d, %v; want port 1 (saturated tie breaks low)", got, ok)
	}
	// Top link level has no parent rows: degrade to first-fit.
	if got, ok := pickPortReuse(st, tree.LinkLevels()-1, 0, 0, avail, 8); !ok || got != 0 {
		t.Fatalf("top-level pick = %d, %v; want first-fit port 0", got, ok)
	}
	// On an idle fabric every score is zero: first-fit again.
	if got, ok := pickPortReuse(linkstate.New(tree), 0, 0, 0, avail, 8); !ok || got != 0 {
		t.Fatalf("idle pick = %d, %v; want first-fit port 0", got, ok)
	}
}

// TestIncrementalName pins the engine-name grammar the registry and the
// fabric's LastEpochEngine surface.
func TestIncrementalName(t *testing.T) {
	s := &LevelWise{Opts: Options{Rollback: true, Incremental: true, ReuseCost: 3}}
	if got, want := s.Name(), "level-wise/rollback/incremental/reuse-cost=3"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
}
