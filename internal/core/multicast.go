package core

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// MulticastRequest is a one-to-many connection: the source streams the
// same data to every destination simultaneously, with switches
// replicating flits down a tree of channels. Collective operations
// (broadcast, barrier release, snoop invalidation) motivate it; the
// paper's Level-wise idea extends to it naturally (see MulticastLevelWise)
// because Theorem 2 applies per destination.
type MulticastRequest struct {
	Src  int
	Dsts []int
}

// MulticastOutcome records the scheduling of one multicast.
type MulticastOutcome struct {
	MulticastRequest
	// H is the tree height needed: the maximum ancestor level over
	// destinations (0 when every destination shares the source switch).
	H       int
	Granted bool
	// Ports holds the upward port per level 0..H-1 (Theorem 2: the same
	// index steers every destination's downward branch at that level).
	Ports     []int
	FailLevel int
}

// MulticastResult is the outcome of a multicast batch.
type MulticastResult struct {
	Scheduler string
	Outcomes  []MulticastOutcome
	Granted   int
	Total     int
}

// Ratio returns granted/total (1 for an empty batch).
func (r *MulticastResult) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Granted) / float64(r.Total)
}

// MulticastLevelWise schedules one-to-many connections with global
// information. At level h the up-port must be free at the source-side
// switch AND the corresponding downward channel must be free at the
// mirror switch of *every* destination whose branch is still above level
// h — a single AND across 1 + |distinct mirrors| vectors. Destinations
// sharing a mirror switch share the downward channel (the switch
// replicates), so the allocation is a proper tree.
type MulticastLevelWise struct {
	// Rollback releases a failed multicast's partial tree (default on:
	// multicast trees are large, leaking them would be pathological).
	NoRollback bool
}

// Name identifies the scheduler.
func (s *MulticastLevelWise) Name() string { return "multicast/level-wise" }

// MulticastLocal is the blind baseline: up-ports chosen from the local
// Ulink only; the forced downward tree is checked (and claimed) after the
// fact, failing on the first occupied branch channel.
type MulticastLocal struct{}

// Name identifies the scheduler.
func (s *MulticastLocal) Name() string { return "multicast/local" }

// multicastPlan computes, per level, the distinct mirror switches whose
// downward channel the tree needs at that level, given up-ports chosen so
// far. Branch b (destination d) needs the level-h channel only when
// h < AncestorLevel(src, d).
type mcBranch struct {
	dst int
	h   int // ancestor level for this destination
	// cur tracks this branch's mirror walk; only its delta side climbs
	// (AdvanceDelta) — the shared source spine is tracked separately.
	cur RouteCursor
}

func newBranches(tree *topology.Tree, req MulticastRequest) ([]mcBranch, int) {
	maxH := 0
	var branches []mcBranch
	seen := map[int]bool{}
	for _, d := range req.Dsts {
		if seen[d] {
			continue // duplicate destination: one branch suffices
		}
		seen[d] = true
		h := tree.AncestorLevel(req.Src, d)
		if h == 0 {
			continue // same switch: served by the crossbar
		}
		b := mcBranch{dst: d, h: h}
		b.cur.Start(tree, req.Src, d)
		branches = append(branches, b)
		if h > maxH {
			maxH = h
		}
	}
	return branches, maxH
}

// distinctMirrors returns the distinct delta switches of branches alive
// at level h, sorted for deterministic allocation order.
func distinctMirrors(branches []mcBranch, h int) []int {
	set := map[int]bool{}
	for _, b := range branches {
		if h < b.h {
			set[b.cur.Delta()] = true
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Schedule routes the batch, mutating st.
func (s *MulticastLevelWise) Schedule(st *linkstate.State, reqs []MulticastRequest) *MulticastResult {
	tree := st.Tree()
	res := &MulticastResult{Scheduler: s.Name(), Total: len(reqs)}
	avail := bitvec.New(tree.Parents())
	for _, req := range reqs {
		o := MulticastOutcome{MulticastRequest: req, FailLevel: -1}
		branches, maxH := newBranches(tree, req)
		o.H = maxH
		var spine RouteCursor
		spine.Start(tree, req.Src, req.Src)
		var claims []mcClaim
		ok := true
		for h := 0; h < maxH; h++ {
			mirrors := distinctMirrors(branches, h)
			avail.CopyFrom(st.ULink(h, spine.Sigma()))
			for _, d := range mirrors {
				avail.AndWith(st.DLink(h, d))
			}
			p, found := avail.FirstSet()
			if !found {
				ok = false
				o.FailLevel = h
				break
			}
			mustAllocate(st, linkstate.Up, h, spine.Sigma(), p)
			claims = append(claims, mcClaim{linkstate.Up, h, spine.Sigma(), p})
			for _, d := range mirrors {
				mustAllocate(st, linkstate.Down, h, d, p)
				claims = append(claims, mcClaim{linkstate.Down, h, d, p})
			}
			o.Ports = append(o.Ports, p)
			spine.Advance(p)
			for i := range branches {
				if h < branches[i].h {
					branches[i].cur.AdvanceDelta(p)
				}
			}
		}
		if ok {
			o.Granted = true
			res.Granted++
		} else if !s.NoRollback {
			for i := len(claims) - 1; i >= 0; i-- {
				c := claims[i]
				mustRelease(st, c.dir, c.h, c.idx, c.prt)
			}
			o.Ports = o.Ports[:0]
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res
}

// Schedule routes the batch blindly, mutating st.
func (s *MulticastLocal) Schedule(st *linkstate.State, reqs []MulticastRequest) *MulticastResult {
	tree := st.Tree()
	res := &MulticastResult{Scheduler: s.Name(), Total: len(reqs)}
	for _, req := range reqs {
		o := MulticastOutcome{MulticastRequest: req, FailLevel: -1}
		branches, maxH := newBranches(tree, req)
		o.H = maxH
		var spine RouteCursor
		spine.Start(tree, req.Src, req.Src)
		var claims []mcClaim
		ok := true
		// Climb using local information only.
		for h := 0; h < maxH && ok; h++ {
			p, found := st.ULink(h, spine.Sigma()).FirstSet()
			if !found {
				ok = false
				o.FailLevel = h
				break
			}
			mustAllocate(st, linkstate.Up, h, spine.Sigma(), p)
			claims = append(claims, mcClaim{linkstate.Up, h, spine.Sigma(), p})
			o.Ports = append(o.Ports, p)
			spine.Advance(p)
		}
		// Claim the forced downward tree.
		if ok {
			for i := range branches {
				c := branches[i].cur // value copy: each branch replays independently
				for h := 0; h < branches[i].h && ok; h++ {
					p := o.Ports[h]
					if st.Available(linkstate.Down, h, c.Delta(), p) {
						mustAllocate(st, linkstate.Down, h, c.Delta(), p)
						claims = append(claims, mcClaim{linkstate.Down, h, c.Delta(), p})
					} else if !claimedByUs(claims, h, c.Delta(), p) {
						ok = false
						o.FailLevel = h
					}
					c.AdvanceDelta(p)
				}
				if !ok {
					break
				}
			}
		}
		if ok {
			o.Granted = true
			res.Granted++
		} else {
			for i := len(claims) - 1; i >= 0; i-- {
				c := claims[i]
				mustRelease(st, c.dir, c.h, c.idx, c.prt)
			}
			o.Ports = o.Ports[:0]
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res
}

// mcClaim records one channel a multicast tree holds.
type mcClaim struct {
	dir         linkstate.Direction
	h, idx, prt int
}

// claimedByUs reports whether this multicast already claimed the down
// channel (branches sharing a mirror switch share the channel).
func claimedByUs(claims []mcClaim, h, idx, p int) bool {
	for _, c := range claims {
		if c.dir == linkstate.Down && c.h == h && c.idx == idx && c.prt == p {
			return true
		}
	}
	return false
}

// VerifyMulticast replays every granted multicast tree against a fresh
// link state: each tree's channels (one up per level, one down per
// distinct mirror per level) must be available and never shared between
// trees.
func VerifyMulticast(tree *topology.Tree, res *MulticastResult) error {
	st := linkstate.New(tree)
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if !o.Granted {
			if len(o.Ports) != 0 && o.FailLevel >= 0 && len(o.Ports) > o.FailLevel {
				return fmt.Errorf("core: multicast %d failed at level %d but holds %d ports", i, o.FailLevel, len(o.Ports))
			}
			continue
		}
		branches, maxH := newBranches(tree, o.MulticastRequest)
		if len(o.Ports) != maxH {
			return fmt.Errorf("core: multicast %d granted with %d ports, needs %d", i, len(o.Ports), maxH)
		}
		var spine RouteCursor
		spine.Start(tree, o.Src, o.Src)
		for h := 0; h < maxH; h++ {
			p := o.Ports[h]
			if err := st.Allocate(linkstate.Up, h, spine.Sigma(), p); err != nil {
				return fmt.Errorf("core: multicast %d: %v", i, err)
			}
			for _, d := range distinctMirrors(branches, h) {
				if err := st.Allocate(linkstate.Down, h, d, p); err != nil {
					return fmt.Errorf("core: multicast %d: %v", i, err)
				}
			}
			spine.Advance(p)
			for bi := range branches {
				if h < branches[bi].h {
					branches[bi].cur.AdvanceDelta(p)
				}
			}
		}
		// Every destination is reachable: a cursor started at (src, dst)
		// climbs both sides in lockstep with the shared ports, so after
		// b.h levels σ and δ must coincide at the common ancestor
		// (Theorem 2 per destination).
		for _, b := range branches {
			var bc RouteCursor
			bc.Start(tree, o.Src, b.dst)
			bc.Walk(o.Ports[:b.h], nil)
			if bc.Sigma() != bc.Delta() {
				return fmt.Errorf("core: multicast %d: branch to %d does not meet the source at level %d", i, b.dst, b.h)
			}
		}
	}
	granted := 0
	for i := range res.Outcomes {
		if res.Outcomes[i].Granted {
			granted++
		}
	}
	if granted != res.Granted {
		return fmt.Errorf("core: multicast result reports %d granted, outcomes show %d", res.Granted, granted)
	}
	return nil
}
