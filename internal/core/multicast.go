package core

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// MulticastRequest is a one-to-many connection: the source streams the
// same data to every destination simultaneously, with switches
// replicating flits down a tree of channels. Collective operations
// (broadcast, barrier release, snoop invalidation) motivate it; the
// paper's Level-wise idea extends to it naturally (see MulticastLevelWise)
// because Theorem 2 applies per destination.
type MulticastRequest struct {
	Src  int
	Dsts []int
}

// MulticastOutcome records the scheduling of one multicast.
type MulticastOutcome struct {
	MulticastRequest
	// H is the tree height needed: the maximum ancestor level over
	// destinations (0 when every destination shares the source switch).
	H       int
	Granted bool
	// Ports holds the upward port per level 0..H-1 (Theorem 2: the same
	// index steers every destination's downward branch at that level).
	Ports     []int
	FailLevel int
}

// MulticastResult is the outcome of a multicast batch.
type MulticastResult struct {
	Scheduler string
	Outcomes  []MulticastOutcome
	Granted   int
	Total     int
}

// Ratio returns granted/total (1 for an empty batch).
func (r *MulticastResult) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Granted) / float64(r.Total)
}

// MulticastLevelWise schedules one-to-many connections with global
// information. At level h the up-port must be free at the source-side
// switch AND the corresponding downward channel must be free at the
// mirror switch of *every* destination whose branch is still above level
// h — a single AND across 1 + |distinct mirrors| vectors. Destinations
// sharing a mirror switch share the downward channel (the switch
// replicates), so the allocation is a proper tree.
type MulticastLevelWise struct {
	// Rollback releases a failed multicast's partial tree (default on:
	// multicast trees are large, leaking them would be pathological).
	NoRollback bool
}

// Name identifies the scheduler.
func (s *MulticastLevelWise) Name() string { return "multicast/level-wise" }

// MulticastLocal is the blind baseline: up-ports chosen from the local
// Ulink only; the forced downward tree is checked (and claimed) after the
// fact, failing on the first occupied branch channel.
type MulticastLocal struct{}

// Name identifies the scheduler.
func (s *MulticastLocal) Name() string { return "multicast/local" }

// multicastPlan computes, per level, the distinct mirror switches whose
// downward channel the tree needs at that level, given up-ports chosen so
// far. Branch b (destination d) needs the level-h channel only when
// h < AncestorLevel(src, d).
type mcBranch struct {
	dst   int
	h     int // ancestor level for this destination
	delta int // current mirror switch index
}

func newBranches(tree *topology.Tree, req MulticastRequest) ([]mcBranch, int) {
	maxH := 0
	var branches []mcBranch
	seen := map[int]bool{}
	for _, d := range req.Dsts {
		if seen[d] {
			continue // duplicate destination: one branch suffices
		}
		seen[d] = true
		h := tree.AncestorLevel(req.Src, d)
		if h == 0 {
			continue // same switch: served by the crossbar
		}
		sw, _ := tree.NodeSwitch(d)
		branches = append(branches, mcBranch{dst: d, h: h, delta: sw})
		if h > maxH {
			maxH = h
		}
	}
	return branches, maxH
}

// distinctMirrors returns the distinct delta switches of branches alive
// at level h, sorted for deterministic allocation order.
func distinctMirrors(branches []mcBranch, h int) []int {
	set := map[int]bool{}
	for _, b := range branches {
		if h < b.h {
			set[b.delta] = true
		}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Schedule routes the batch, mutating st.
func (s *MulticastLevelWise) Schedule(st *linkstate.State, reqs []MulticastRequest) *MulticastResult {
	tree := st.Tree()
	res := &MulticastResult{Scheduler: s.Name(), Total: len(reqs)}
	avail := bitvec.New(tree.Parents())
	for _, req := range reqs {
		o := MulticastOutcome{MulticastRequest: req, FailLevel: -1}
		branches, maxH := newBranches(tree, req)
		o.H = maxH
		sigma, _ := tree.NodeSwitch(req.Src)
		var claims []mcClaim
		ok := true
		for h := 0; h < maxH; h++ {
			mirrors := distinctMirrors(branches, h)
			avail.CopyFrom(st.ULink(h, sigma))
			for _, d := range mirrors {
				avail.AndWith(st.DLink(h, d))
			}
			p, found := avail.FirstSet()
			if !found {
				ok = false
				o.FailLevel = h
				break
			}
			mustAllocate(st, linkstate.Up, h, sigma, p)
			claims = append(claims, mcClaim{linkstate.Up, h, sigma, p})
			for _, d := range mirrors {
				mustAllocate(st, linkstate.Down, h, d, p)
				claims = append(claims, mcClaim{linkstate.Down, h, d, p})
			}
			o.Ports = append(o.Ports, p)
			sigma = tree.UpParent(h, sigma, p)
			for i := range branches {
				if h < branches[i].h {
					branches[i].delta = tree.UpParent(h, branches[i].delta, p)
				}
			}
		}
		if ok {
			o.Granted = true
			res.Granted++
		} else if !s.NoRollback {
			for i := len(claims) - 1; i >= 0; i-- {
				c := claims[i]
				mustRelease(st, c.dir, c.h, c.idx, c.prt)
			}
			o.Ports = o.Ports[:0]
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res
}

// Schedule routes the batch blindly, mutating st.
func (s *MulticastLocal) Schedule(st *linkstate.State, reqs []MulticastRequest) *MulticastResult {
	tree := st.Tree()
	res := &MulticastResult{Scheduler: s.Name(), Total: len(reqs)}
	for _, req := range reqs {
		o := MulticastOutcome{MulticastRequest: req, FailLevel: -1}
		branches, maxH := newBranches(tree, req)
		o.H = maxH
		sigma, _ := tree.NodeSwitch(req.Src)
		var claims []mcClaim
		ok := true
		// Climb using local information only.
		for h := 0; h < maxH && ok; h++ {
			p, found := st.ULink(h, sigma).FirstSet()
			if !found {
				ok = false
				o.FailLevel = h
				break
			}
			mustAllocate(st, linkstate.Up, h, sigma, p)
			claims = append(claims, mcClaim{linkstate.Up, h, sigma, p})
			o.Ports = append(o.Ports, p)
			sigma = tree.UpParent(h, sigma, p)
		}
		// Claim the forced downward tree.
		if ok {
			for i := range branches {
				delta := branches[i].delta
				for h := 0; h < branches[i].h && ok; h++ {
					p := o.Ports[h]
					if st.Available(linkstate.Down, h, delta, p) {
						mustAllocate(st, linkstate.Down, h, delta, p)
						claims = append(claims, mcClaim{linkstate.Down, h, delta, p})
					} else if !claimedByUs(claims, h, delta, p) {
						ok = false
						o.FailLevel = h
					}
					delta = tree.UpParent(h, delta, p)
				}
				if !ok {
					break
				}
			}
		}
		if ok {
			o.Granted = true
			res.Granted++
		} else {
			for i := len(claims) - 1; i >= 0; i-- {
				c := claims[i]
				mustRelease(st, c.dir, c.h, c.idx, c.prt)
			}
			o.Ports = o.Ports[:0]
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res
}

// mcClaim records one channel a multicast tree holds.
type mcClaim struct {
	dir         linkstate.Direction
	h, idx, prt int
}

// claimedByUs reports whether this multicast already claimed the down
// channel (branches sharing a mirror switch share the channel).
func claimedByUs(claims []mcClaim, h, idx, p int) bool {
	for _, c := range claims {
		if c.dir == linkstate.Down && c.h == h && c.idx == idx && c.prt == p {
			return true
		}
	}
	return false
}

// VerifyMulticast replays every granted multicast tree against a fresh
// link state: each tree's channels (one up per level, one down per
// distinct mirror per level) must be available and never shared between
// trees.
func VerifyMulticast(tree *topology.Tree, res *MulticastResult) error {
	st := linkstate.New(tree)
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if !o.Granted {
			if len(o.Ports) != 0 && o.FailLevel >= 0 && len(o.Ports) > o.FailLevel {
				return fmt.Errorf("core: multicast %d failed at level %d but holds %d ports", i, o.FailLevel, len(o.Ports))
			}
			continue
		}
		branches, maxH := newBranches(tree, o.MulticastRequest)
		if len(o.Ports) != maxH {
			return fmt.Errorf("core: multicast %d granted with %d ports, needs %d", i, len(o.Ports), maxH)
		}
		sigma, _ := tree.NodeSwitch(o.Src)
		for h := 0; h < maxH; h++ {
			p := o.Ports[h]
			if err := st.Allocate(linkstate.Up, h, sigma, p); err != nil {
				return fmt.Errorf("core: multicast %d: %v", i, err)
			}
			for _, d := range distinctMirrors(branches, h) {
				if err := st.Allocate(linkstate.Down, h, d, p); err != nil {
					return fmt.Errorf("core: multicast %d: %v", i, err)
				}
			}
			sigma = tree.UpParent(h, sigma, p)
			for bi := range branches {
				if h < branches[bi].h {
					branches[bi].delta = tree.UpParent(h, branches[bi].delta, p)
				}
			}
		}
		// Every destination is reachable: replaying each branch's mirror
		// walk with the shared ports must land on its switch... which it
		// does by construction (Theorem 2 per destination); assert the
		// ancestor is common.
		for _, b := range branches {
			cur, _ := tree.NodeSwitch(b.dst)
			for h := 0; h < b.h; h++ {
				cur = tree.UpParent(h, cur, o.Ports[h])
			}
			top, _ := tree.NodeSwitch(o.Src)
			for h := 0; h < b.h; h++ {
				top = tree.UpParent(h, top, o.Ports[h])
			}
			if cur != top {
				return fmt.Errorf("core: multicast %d: branch to %d does not meet the source at level %d", i, b.dst, b.h)
			}
		}
	}
	granted := 0
	for i := range res.Outcomes {
		if res.Outcomes[i].Granted {
			granted++
		}
	}
	if granted != res.Granted {
		return fmt.Errorf("core: multicast result reports %d granted, outcomes show %d", res.Granted, granted)
	}
	return nil
}
