package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// permutation returns a random permutation expressed as requests
// (node i -> perm[i]).
func permutation(tree *topology.Tree, rng *rand.Rand) []Request {
	n := tree.Nodes()
	perm := rng.Perm(n)
	reqs := make([]Request, n)
	for i, d := range perm {
		reqs[i] = Request{Src: i, Dst: d}
	}
	return reqs
}

func TestPaperFigure4Scenario(t *testing.T) {
	// Figure 4: SW(0,0) and SW(0,1) both request a connection to SW(0,8)
	// in FT(2,4)-like conditions. We use FT(2,4): switches 0,1 -> switch 3
	// keeps both requests crossing the top. With local greedy both pick
	// up-port 0, forcing Dlink(0,3,0) twice -> one fails. Level-wise
	// detects the collision via the Dlink vector and grants both.
	tree := topology.MustNew(2, 4, 4)
	reqs := []Request{
		{Src: 0, Dst: 12}, // SW(0,0) -> SW(0,3)
		{Src: 4, Dst: 13}, // SW(0,1) -> SW(0,3)
	}

	local := NewLocalGreedy()
	resLocal := local.Schedule(linkstate.New(tree), reqs)
	if resLocal.Granted != 1 {
		t.Fatalf("local greedy granted %d, want 1 (down-path collision)", resLocal.Granted)
	}
	if !resLocal.Outcomes[1].FailDown {
		t.Fatalf("second request should fail on the downward path: %+v", resLocal.Outcomes[1])
	}

	lw := NewLevelWise()
	resLW := lw.Schedule(linkstate.New(tree), reqs)
	if resLW.Granted != 2 {
		t.Fatalf("level-wise granted %d, want 2", resLW.Granted)
	}
	// The two grants must use distinct ports (distinct down channels).
	if resLW.Outcomes[0].Ports[0] == resLW.Outcomes[1].Ports[0] {
		t.Fatalf("level-wise reused port %d for both requests", resLW.Outcomes[0].Ports[0])
	}
	for _, res := range []*Result{resLocal, resLW} {
		if err := Verify(tree, res); err != nil {
			t.Fatalf("%s: %v", res.Scheduler, err)
		}
	}
}

func TestSameSwitchRequestsAlwaysGranted(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	reqs := []Request{{Src: 0, Dst: 1}, {Src: 2, Dst: 2}, {Src: 5, Dst: 4}}
	for _, s := range []Scheduler{NewLevelWise(), NewLocalGreedy(), NewLocalRandom()} {
		st := linkstate.New(tree)
		res := s.Schedule(st, reqs)
		if res.Granted != 3 {
			t.Fatalf("%s granted %d/3 same-switch requests", s.Name(), res.Granted)
		}
		if st.OccupiedCount() != 0 {
			t.Fatalf("%s consumed links for same-switch requests", s.Name())
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	res := NewLevelWise().Schedule(linkstate.New(tree), nil)
	if res.Total != 0 || res.Granted != 0 || res.Ratio() != 1 {
		t.Fatalf("empty batch: %+v ratio %v", res, res.Ratio())
	}
}

func TestLevelWiseGrantsAllWhenUncontended(t *testing.T) {
	// A permutation where every source targets a distinct switch through
	// distinct ports cannot conflict at low load: a single request always
	// succeeds on an empty network.
	tree := topology.MustNew(3, 4, 4)
	for dst := 0; dst < tree.Nodes(); dst += 7 {
		st := linkstate.New(tree)
		res := NewLevelWise().Schedule(st, []Request{{Src: 0, Dst: dst}})
		if res.Granted != 1 {
			t.Fatalf("single request 0→%d denied on empty network", dst)
		}
		if err := Verify(tree, res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGrantedChannelsMatchOccupancy(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(11))
	reqs := permutation(tree, rng)
	for _, s := range []Scheduler{NewLevelWise(), NewLocalGreedy(), NewLocalRandom()} {
		st := linkstate.New(tree)
		res := s.Schedule(st, reqs)
		// HeldChannels counts granted paths plus the partial allocations
		// the paper's no-rollback pseudo-code leaves behind.
		if got, want := st.OccupiedCount(), HeldChannels(res); got != want {
			t.Fatalf("%s: occupancy %d, outcomes hold %d (leak or double-free)", s.Name(), got, want)
		}
		if err := Verify(tree, res); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestLevelWiseBeatsLocalOnPermutations(t *testing.T) {
	// The paper's headline claim, on a small grid. Averaged over several
	// permutations the global scheduler must dominate the local one.
	shapes := [][3]int{{2, 8, 8}, {3, 4, 4}, {4, 3, 3}}
	rng := rand.New(rand.NewSource(2))
	for _, sh := range shapes {
		tree := topology.MustNew(sh[0], sh[1], sh[2])
		var sumLW, sumLocal float64
		const trials = 20
		for trial := 0; trial < trials; trial++ {
			reqs := permutation(tree, rng)
			resLW := NewLevelWise().Schedule(linkstate.New(tree), reqs)
			resLocal := NewLocalGreedy().Schedule(linkstate.New(tree), reqs)
			sumLW += resLW.Ratio()
			sumLocal += resLocal.Ratio()
		}
		if sumLW <= sumLocal {
			t.Fatalf("FT(%v): level-wise avg %.3f not above local %.3f", sh, sumLW/trials, sumLocal/trials)
		}
	}
}

func TestLevelMajorEqualsRequestMajorWithoutRollback(t *testing.T) {
	// Without rollback the two traversals must produce identical grants
	// (allocation at level h by an earlier request is visible either way).
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		reqs := permutation(tree, rng)
		a := (&LevelWise{Opts: Options{Traversal: LevelMajor}}).Schedule(linkstate.New(tree), reqs)
		b := (&LevelWise{Opts: Options{Traversal: RequestMajor}}).Schedule(linkstate.New(tree), reqs)
		if a.Granted != b.Granted {
			t.Fatalf("trial %d: level-major %d vs request-major %d", trial, a.Granted, b.Granted)
		}
		for i := range a.Outcomes {
			if a.Outcomes[i].Granted != b.Outcomes[i].Granted {
				t.Fatalf("trial %d: outcome %d differs", trial, i)
			}
		}
	}
}

func TestRollbackNeverHurtsOccupancy(t *testing.T) {
	// With rollback, failed requests hold no channels.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(6))
	reqs := permutation(tree, rng)
	st := linkstate.New(tree)
	res := (&LevelWise{Opts: Options{Rollback: true}}).Schedule(st, reqs)
	want := 0
	for _, o := range res.Outcomes {
		if o.Granted {
			want += 2 * o.H
		} else if len(o.Ports) != 0 {
			t.Fatalf("failed request holds ports %v despite rollback", o.Ports)
		}
	}
	if st.OccupiedCount() != want {
		t.Fatalf("occupancy %d want %d", st.OccupiedCount(), want)
	}
	if err := Verify(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestWithoutRollbackFailedRequestsLeakChannels(t *testing.T) {
	// The paper's pseudo-code does not release a failed request's links.
	// Find a permutation where some request fails above level 0 and check
	// the channels stay occupied.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		reqs := permutation(tree, rng)
		st := linkstate.New(tree)
		res := NewLevelWise().Schedule(st, reqs)
		leaked := 0
		grantedNeed := 0
		for _, o := range res.Outcomes {
			if o.Granted {
				grantedNeed += 2 * o.H
			} else {
				leaked += 2 * len(o.Ports)
			}
		}
		if leaked > 0 {
			if st.OccupiedCount() != grantedNeed+leaked {
				t.Fatalf("occupancy %d want %d granted + %d leaked", st.OccupiedCount(), grantedNeed, leaked)
			}
			return // scenario found and verified
		}
	}
	t.Skip("no partial failure found in 50 permutations (unexpected but not wrong)")
}

func TestLocalRetriesImprove(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(8))
	var base, retried int
	for trial := 0; trial < 30; trial++ {
		reqs := permutation(tree, rng)
		b := (&Local{Opts: Options{Policy: RandomFit, Rand: rand.New(rand.NewSource(int64(trial)))}}).Schedule(linkstate.New(tree), reqs)
		r := (&Local{Opts: Options{Policy: RandomFit, Retries: 3, Rand: rand.New(rand.NewSource(int64(trial)))}}).Schedule(linkstate.New(tree), reqs)
		base += b.Granted
		retried += r.Granted
		if err := Verify(tree, r); err != nil {
			t.Fatal(err)
		}
	}
	if retried < base {
		t.Fatalf("retries made things worse: %d vs %d", retried, base)
	}
}

func TestPortPolicies(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(13))
	reqs := permutation(tree, rng)
	for _, pol := range []PortPolicy{FirstFit, RandomFit, LeastLoaded} {
		s := &LevelWise{Opts: Options{Policy: pol}}
		res := s.Schedule(linkstate.New(tree), reqs)
		if err := Verify(tree, res); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
		if res.Granted == 0 {
			t.Fatalf("policy %s granted nothing", pol)
		}
	}
}

func TestOrderings(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(17))
	reqs := permutation(tree, rng)
	for _, ord := range []Order{NaturalOrder, ShuffledOrder, DeepestFirst} {
		s := &LevelWise{Opts: Options{Order: ord}}
		res := s.Schedule(linkstate.New(tree), reqs)
		if err := Verify(tree, res); err != nil {
			t.Fatalf("order %s: %v", ord, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	// Same inputs, same options -> identical outcomes, including the
	// random policy (fixed default seed).
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(23))
	reqs := permutation(tree, rng)
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewLevelWise() },
		func() Scheduler { return NewLocalGreedy() },
		func() Scheduler { return NewLocalRandom() },
	} {
		a := mk().Schedule(linkstate.New(tree), reqs)
		b := mk().Schedule(linkstate.New(tree), reqs)
		if a.Granted != b.Granted {
			t.Fatalf("%s not deterministic: %d vs %d", a.Scheduler, a.Granted, b.Granted)
		}
	}
}

func TestCountersComplexityShape(t *testing.T) {
	// Per granted request the local scheduler reads roughly twice as many
	// vectors as the level-wise one (up + down vs combined): the paper's
	// O(2l log_l N) vs O(l log_l N) claim, observable in the counters.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(29))
	reqs := permutation(tree, rng)
	lw := NewLevelWise().Schedule(linkstate.New(tree), reqs)
	lg := NewLocalGreedy().Schedule(linkstate.New(tree), reqs)
	if lw.Ops.VectorANDs == 0 || lg.Ops.VectorReads == 0 {
		t.Fatal("counters not populated")
	}
	// Level-wise performs exactly one AND per (request, level) attempt.
	attempts := 0
	for _, o := range lw.Outcomes {
		attempts += len(o.Ports)
		if !o.Granted && o.FailLevel >= 0 {
			attempts++ // the failing level was attempted too
		}
	}
	if lw.Ops.VectorANDs != attempts {
		t.Fatalf("level-wise ANDs = %d, attempts = %d", lw.Ops.VectorANDs, attempts)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{1, 2, 3, 4, 5, 6}
	a.Add(Counters{10, 20, 30, 40, 50, 60})
	if a != (Counters{11, 22, 33, 44, 55, 66}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestStepsComplexityGap(t *testing.T) {
	// The paper's Section 4 claim: Level-wise settles a level in one step
	// (both directions via the AND), the local scheduler visits every
	// level twice. Per granted request: local steps ≈ 2 x global steps.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(37))
	reqs := permutation(tree, rng)
	lw := NewLevelWise().Schedule(linkstate.New(tree), reqs)
	lg := NewLocalGreedy().Schedule(linkstate.New(tree), reqs)
	gsteps := float64(lw.Ops.Steps) / float64(lw.Total)
	lsteps := float64(lg.Ops.Steps) / float64(lg.Total)
	if lsteps < 1.5*gsteps {
		t.Fatalf("local steps/req %.2f not ~2x global %.2f", lsteps, gsteps)
	}
}

func TestNames(t *testing.T) {
	if NewLevelWise().Name() != "level-wise" {
		t.Fatalf("Name = %q", NewLevelWise().Name())
	}
	if (&LevelWise{Opts: Options{Rollback: true, Policy: RandomFit, Traversal: RequestMajor}}).Name() !=
		"level-wise/request-major/random/rollback" {
		t.Fatalf("decorated name wrong: %q", (&LevelWise{Opts: Options{Rollback: true, Policy: RandomFit, Traversal: RequestMajor}}).Name())
	}
	if NewLocalGreedy().Name() != "local/first-fit" {
		t.Fatalf("Name = %q", NewLocalGreedy().Name())
	}
	if (&Local{Opts: Options{Retries: 2}}).Name() != "local/first-fit/retry" {
		t.Fatal("retry name wrong")
	}
}

func TestEnumStrings(t *testing.T) {
	if FirstFit.String() != "first-fit" || RandomFit.String() != "random" || LeastLoaded.String() != "least-loaded" {
		t.Fatal("policy strings")
	}
	if PortPolicy(9).String() == "" || Order(9).String() == "" || Traversal(9).String() == "" {
		t.Fatal("unknown enum strings empty")
	}
	if NaturalOrder.String() != "natural" || ShuffledOrder.String() != "shuffled" || DeepestFirst.String() != "deepest-first" {
		t.Fatal("order strings")
	}
	if LevelMajor.String() != "level-major" || RequestMajor.String() != "request-major" {
		t.Fatal("traversal strings")
	}
}

// Property: on any request multiset (not only permutations), every
// scheduler produces a verifiable result and never exceeds the batch size.
func TestQuickSchedulersAlwaysConsistent(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64, nReq uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nReq)%128 + 1
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Src: rng.Intn(64), Dst: rng.Intn(64)}
		}
		for _, s := range []Scheduler{
			NewLevelWise(),
			&LevelWise{Opts: Options{Rollback: true}},
			&LevelWise{Opts: Options{Traversal: RequestMajor, Policy: RandomFit}},
			NewLocalGreedy(),
			NewLocalRandom(),
			&Local{Opts: Options{Retries: 2}},
		} {
			res := s.Schedule(linkstate.New(tree), reqs)
			if res.Granted > res.Total {
				return false
			}
			if err := Verify(tree, res); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single request on an empty network is always granted (full
// path diversity exists), by every scheduler.
func TestQuickSingleRequestAlwaysGranted(t *testing.T) {
	tree := topology.MustNew(4, 3, 3)
	f := func(si, di uint16) bool {
		src, dst := int(si)%tree.Nodes(), int(di)%tree.Nodes()
		for _, s := range []Scheduler{NewLevelWise(), NewLocalGreedy(), NewLocalRandom()} {
			if s.Schedule(linkstate.New(tree), []Request{{src, dst}}).Granted != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruptedResults(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(31))
	reqs := permutation(tree, rng)
	res := NewLevelWise().Schedule(linkstate.New(tree), reqs)

	// Corrupt: duplicate a granted path.
	var granted *Outcome
	for i := range res.Outcomes {
		if res.Outcomes[i].Granted && res.Outcomes[i].H > 0 {
			granted = &res.Outcomes[i]
			break
		}
	}
	if granted == nil {
		t.Skip("no multi-level grant")
	}
	bad := *res
	bad.Outcomes = append(append([]Outcome(nil), res.Outcomes...), *granted)
	bad.Total++
	bad.Granted++
	if err := Verify(tree, &bad); err == nil {
		t.Fatal("Verify accepted a duplicated path")
	}

	// Corrupt: wrong port count.
	bad2 := *res
	bad2.Outcomes = append([]Outcome(nil), res.Outcomes...)
	for i := range bad2.Outcomes {
		if bad2.Outcomes[i].Granted && bad2.Outcomes[i].H > 0 {
			bad2.Outcomes[i].Ports = bad2.Outcomes[i].Ports[:bad2.Outcomes[i].H-1]
			break
		}
	}
	if err := Verify(tree, &bad2); err == nil {
		t.Fatal("Verify accepted truncated ports")
	}

	// Corrupt: counts.
	bad3 := *res
	bad3.Granted++
	if err := Verify(tree, &bad3); err == nil {
		t.Fatal("Verify accepted wrong granted count")
	}
}

func BenchmarkLevelWisePermutation(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	rng := rand.New(rand.NewSource(1))
	reqs := permutation(tree, rng)
	st := linkstate.New(tree)
	s := NewLevelWise()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.Schedule(st, reqs)
	}
}

func BenchmarkLocalGreedyPermutation(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	rng := rand.New(rand.NewSource(1))
	reqs := permutation(tree, rng)
	st := linkstate.New(tree)
	s := NewLocalGreedy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.Schedule(st, reqs)
	}
}
