package core

import (
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// RouteCursor re-exports the topology package's route cursor so scheduler
// code can walk σ/δ pairs without importing topology at every call site.
// The cursor lives in topology because linkstate (which core builds on)
// replays the same geometry for AllocatePath/ReleasePath.
type RouteCursor = topology.RouteCursor

// ReleaseRoute is the shared teardown replay: it re-walks a connection's
// climb from its endpoints with a route cursor and returns the up/down
// channel pair every held port claims. Every rollback path — the
// Level-wise scheduler's, the stale-view commit failure, the parallel
// engine's, and the fabric manager's retained-port cleanup — funnels
// through it, so the Theorem 1/2 walk is never re-derived at a release
// site. ops may be nil for callers that do not count operations; a
// release that fails is a scheduler invariant violation and panics.
func ReleaseRoute(st *linkstate.State, src, dst int, ports []int, ops *Counters) {
	var c RouteCursor
	c.Start(st.Tree(), src, dst)
	for _, p := range ports {
		mustRelease(st, linkstate.Up, c.Level(), c.Sigma(), p)
		mustRelease(st, linkstate.Down, c.Level(), c.Delta(), p)
		if ops != nil {
			ops.Releases += 2
		}
		c.Advance(p)
	}
}
