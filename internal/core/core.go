// Package core implements the paper's primary contribution — the
// Level-wise fat-tree scheduling algorithm — together with the
// conventional local (adaptive) schedulers it is evaluated against.
//
// All schedulers consume a batch of connection requests and a mutable
// link-availability state (package linkstate), and produce a Result
// recording which connections were granted and via which upward ports.
// The schedulability ratio of the batch — granted / total — is the
// paper's figure of merit.
//
// The Level-wise scheduler (Section 4 of the paper) uses global routing
// information: at each level h it ANDs the source-side switch's Ulink
// vector with the destination-side mirror switch's Dlink vector and picks
// an upward port available in both, allocating the upward and the forced
// downward channel simultaneously (Theorem 2). The local schedulers pick
// upward ports from the local Ulink vector only and discover downward
// conflicts after the fact, as adaptive distributed routing does.
package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Request is one connection request between two processing nodes.
type Request struct {
	Src int
	Dst int
}

// Outcome records what the scheduler did with one request.
type Outcome struct {
	Request
	H         int   // lowest-common-ancestor level; 0 means same switch
	Granted   bool  // whether the connection was fully established
	Ports     []int // upward port per level 0..H-1 when granted
	FailLevel int   // level of the first unresolvable conflict; -1 if granted
	FailDown  bool  // local schedulers: conflict found on the downward path
}

// Result is the outcome of scheduling one batch.
type Result struct {
	Scheduler string
	Outcomes  []Outcome
	Granted   int
	Total     int
	Ops       Counters
	// Torn is the number of departed routes whose channels this pass
	// returned to the fabric before sweeping the arrivals (delta epochs
	// only — see ScheduleDeltaInto; always 0 for plain batch scheduling).
	// Departures that held no channels (H == 0 circuits) do not count.
	Torn int
}

// Ratio returns the schedulability ratio granted/total (1 for an empty
// batch, matching "no request was denied").
func (r *Result) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Granted) / float64(r.Total)
}

// Counters tallies the elementary scheduling operations, used by the
// complexity comparison (the paper argues O(l·log_l N) for Level-wise
// versus O(2l·log_l N) for the conventional scheduler).
type Counters struct {
	VectorReads int // link-availability vector fetches
	VectorANDs  int // Ulink AND Dlink combinations
	PortPicks   int // priority-selector invocations
	Allocs      int // channel allocations
	Releases    int // channel releases (rollback / teardown)
	// Steps counts sequential decision steps (level visits): the
	// Level-wise scheduler settles both directions of a level in one
	// step (~l per request), while the local scheduler visits each level
	// once climbing and once descending (~2l) — the complexity gap the
	// paper states.
	Steps int
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.VectorReads += other.VectorReads
	c.VectorANDs += other.VectorANDs
	c.PortPicks += other.PortPicks
	c.Allocs += other.Allocs
	c.Releases += other.Releases
	c.Steps += other.Steps
}

// PortPolicy selects which available port a scheduler takes.
type PortPolicy int

// Port-selection policies.
const (
	// FirstFit takes the lowest-numbered available port (the paper:
	// "we select the first available port").
	FirstFit PortPolicy = iota
	// RandomFit takes a uniformly random available port.
	RandomFit
	// LeastLoaded takes the available port whose parent switch has the
	// most free upward capacity (one-level lookahead); ties break low.
	LeastLoaded
)

// String names the policy.
func (p PortPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("PortPolicy(%d)", int(p))
	}
}

// Order controls the sequence in which a batch's requests are processed.
type Order int

// Request processing orders.
const (
	// NaturalOrder processes requests as given.
	NaturalOrder Order = iota
	// ShuffledOrder processes requests in a random order.
	ShuffledOrder
	// DeepestFirst processes requests with the highest common-ancestor
	// level first (they have the most levels at which to conflict).
	DeepestFirst
)

// String names the order.
func (o Order) String() string {
	switch o {
	case NaturalOrder:
		return "natural"
	case ShuffledOrder:
		return "shuffled"
	case DeepestFirst:
		return "deepest-first"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Traversal controls the Level-wise scheduler's outer loop.
type Traversal int

// Traversal orders for the Level-wise scheduler.
const (
	// LevelMajor schedules every request at level 0, then every survivor
	// at level 1, and so on — the paper's Figure 7 pseudo-code.
	LevelMajor Traversal = iota
	// RequestMajor routes each request through all its levels before the
	// next request starts — the order the pipelined hardware realizes.
	RequestMajor
)

// String names the traversal.
func (tv Traversal) String() string {
	switch tv {
	case LevelMajor:
		return "level-major"
	case RequestMajor:
		return "request-major"
	default:
		return fmt.Sprintf("Traversal(%d)", int(tv))
	}
}

// Options tune a scheduler. The zero value reproduces the paper's
// configuration: first-fit ports, natural order, level-major traversal,
// no rollback, no retries.
type Options struct {
	Policy    PortPolicy
	Order     Order
	Traversal Traversal
	// Rollback releases a failed request's already-allocated channels so
	// later requests can use them (the paper's pseudo-code does not).
	Rollback bool
	// Retries re-attempts a failed request from scratch up to this many
	// extra times (local schedulers only; needs a random element to make
	// progress, so it forces RandomFit on retry attempts).
	Retries int
	// Rand drives RandomFit, ShuffledOrder and retries. Nil means a
	// fixed-seed source, keeping runs reproducible by default.
	Rand *rand.Rand
	// Trace, when non-nil, receives one event per scheduling decision:
	// which vectors were consulted at which level and which port was
	// taken (or that the request was denied). It explains outcomes —
	// "why did this request fail" — and costs nothing when nil.
	Trace func(TraceEvent)
	// Incremental marks the scheduler as serving delta epochs: granted
	// routes stay allocated in the link state across batches and callers
	// feed departures plus arrivals to ScheduleDeltaInto instead of
	// rebuilding state. The flag does not change how a single batch of
	// arrivals is swept — arrivals-only delta runs are bit-identical to
	// batch scheduling (pinned by TestIncrementalArrivalsOnlyGolden) —
	// it declares the carry-forward contract for the layers above
	// (internal/sched capability detection, internal/fabric epoch mode).
	Incremental bool
	// ReuseCost, when positive, replaces the port policy with the
	// reconfiguration-cost-aware pick (Costly Circuits, PAPERS.md): among
	// the available ports the one whose parent switches already carry the
	// most held circuits wins, with the marginal value of overlap capped
	// at ReuseCost (greedy submodular-style saturation). Ties break low,
	// so ReuseCost behaves like first-fit on an idle fabric. Only
	// meaningful with Incremental — reuse needs routes that persist.
	ReuseCost int
}

// TraceEvent describes one scheduling decision.
type TraceEvent struct {
	Scheduler string
	Src, Dst  int
	Level     int
	// Phase is "combined" for the Level-wise AND, "up" or "down" for the
	// local scheduler's separate passes.
	Phase string
	// Sigma and Delta are the source-side and destination-side switch
	// indices consulted; Delta is -1 when only the local Ulink was read.
	Sigma, Delta int
	// Avail renders the availability vector that drove the decision,
	// most significant port first.
	Avail string
	// Port is the selected port, or -1 when the request was denied here.
	Port int
}

// String renders the event for logs.
func (e TraceEvent) String() string {
	verdict := "denied"
	if e.Port >= 0 {
		verdict = fmt.Sprintf("port %d", e.Port)
	}
	return fmt.Sprintf("%s %d→%d level %d %s avail=%s: %s",
		e.Scheduler, e.Src, e.Dst, e.Level, e.Phase, e.Avail, verdict)
}

func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(1))
}

// Scheduler routes a batch of requests against a link state, mutating the
// state to reflect granted connections.
type Scheduler interface {
	Name() string
	Schedule(st *linkstate.State, reqs []Request) *Result
}

// OrderIndices returns processing indices for the batch under the given
// order. It is exported for internal/parsched, whose deterministic mode
// must sequence requests exactly as the sequential schedulers do.
func OrderIndices(tree *topology.Tree, reqs []Request, o Order, rng *rand.Rand) []int {
	return orderIndicesInto(make([]int, len(reqs)), tree, reqs, o, rng)
}

// orderIndicesInto fills idx (len(reqs)) with processing indices without
// allocating, except for the sort bookkeeping of DeepestFirst.
func orderIndicesInto(idx []int, tree *topology.Tree, reqs []Request, o Order, rng *rand.Rand) []int {
	for i := range idx {
		idx[i] = i
	}
	switch o {
	case ShuffledOrder:
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	case DeepestFirst:
		depth := make([]int, len(reqs))
		for i, r := range reqs {
			depth[i] = tree.AncestorLevel(r.Src, r.Dst)
		}
		sort.SliceStable(idx, func(a, b int) bool { return depth[idx[a]] > depth[idx[b]] })
	}
	return idx
}

// NewOutcomes returns the initial outcome records for a batch (exported
// for internal/parsched).
func NewOutcomes(tree *topology.Tree, reqs []Request) []Outcome {
	outs := make([]Outcome, len(reqs))
	for i, r := range reqs {
		outs[i] = Outcome{
			Request:   r,
			H:         tree.AncestorLevel(r.Src, r.Dst),
			FailLevel: -1,
		}
	}
	return outs
}

func finish(name string, outs []Outcome, ops Counters) *Result {
	res := &Result{Scheduler: name, Outcomes: outs, Total: len(outs), Ops: ops}
	for i := range outs {
		if outs[i].Granted {
			res.Granted++
		}
	}
	return res
}

// pickPort applies the policy to an availability vector (the paper's
// priority selector, generalized). h and sigma locate the chooser for the
// LeastLoaded one-level lookahead. It returns the selected port and true,
// or false if no port is available.
func pickPort(st *linkstate.State, policy PortPolicy, rng *rand.Rand, h, sigma int, avail bitvec.Vector) (int, bool) {
	switch policy {
	case RandomFit:
		n := avail.Count()
		if n == 0 {
			return 0, false
		}
		p, _ := avail.NthSet(rng.Intn(n))
		return p, true
	case LeastLoaded:
		tree := st.Tree()
		if h+1 >= tree.LinkLevels() {
			return avail.FirstSet()
		}
		best, bestFree := -1, -1
		for p := 0; p < avail.Width(); p++ {
			if !avail.Get(p) {
				continue
			}
			parent := tree.UpParent(h, sigma, p)
			free := st.ULink(h+1, parent).Count()
			if free > bestFree {
				best, bestFree = p, free
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	default: // FirstFit
		return avail.FirstSet()
	}
}

// pickPortReuse is the reconfiguration-cost-aware port pick
// (Options.ReuseCost): it scores every available port by how many
// channels its two parent switches — the σ-side up-parent and the δ-side
// mirror parent — already have allocated, caps the score at reuseCap
// (the submodular saturation: past that, more overlap buys nothing), and
// takes the highest-scoring port, ties low. Packing new circuits onto
// switches that already carry held ones keeps the working set of
// switches small, so future reconfigurations (departures, faults,
// repacks) touch fewer distinct resources. At the top level there are no
// parent rows to score, so the pick degrades to first-fit; it also does
// on an idle fabric, where every score is 0.
//
// Failed channels are masked out of the availability rows, so a faulted
// parent scores as if loaded — which is the conservative choice: routes
// through it are the ones a repair would re-tear.
func pickPortReuse(st *linkstate.State, h, sigma, delta int, avail bitvec.Vector, reuseCap int) (int, bool) {
	tree := st.Tree()
	if h+1 >= tree.LinkLevels() {
		return avail.FirstSet()
	}
	w := tree.Parents()
	best, bestScore := -1, -1
	for p := 0; p < avail.Width(); p++ {
		if !avail.Get(p) {
			continue
		}
		up := tree.UpParent(h, sigma, p)
		down := tree.UpParent(h, delta, p)
		score := (w - st.ULink(h+1, up).Count()) + (w - st.DLink(h+1, down).Count())
		if score > reuseCap {
			score = reuseCap
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
