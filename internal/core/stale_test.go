package core

import (
	"math/rand"
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

func TestStaleWindowOneEqualsExactLevelWise(t *testing.T) {
	// With refresh before every request the stale scheduler makes the
	// same decisions as the exact Level-wise scheduler in request-major
	// order with rollback (stale always rolls back failures).
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		reqs := permutation(tree, rng)
		a := (&StaleLevelWise{Window: 1}).Schedule(linkstate.New(tree), reqs)
		b := (&LevelWise{Opts: Options{Traversal: RequestMajor, Rollback: true}}).Schedule(linkstate.New(tree), reqs)
		if a.Granted != b.Granted {
			t.Fatalf("trial %d: stale-1 %d vs exact %d", trial, a.Granted, b.Granted)
		}
		for i := range a.Outcomes {
			if a.Outcomes[i].Granted != b.Outcomes[i].Granted {
				t.Fatalf("trial %d outcome %d differs", trial, i)
			}
		}
		if err := Verify(tree, a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStaleDegradesMonotonically(t *testing.T) {
	// Averaged over permutations, a fresher view can only help.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(53))
	sums := map[int]float64{}
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		reqs := permutation(tree, rng)
		for _, w := range []int{1, 8, 64} {
			r := (&StaleLevelWise{Window: w}).Schedule(linkstate.New(tree), reqs)
			if err := Verify(tree, r); err != nil {
				t.Fatal(err)
			}
			sums[w] += r.Ratio()
		}
	}
	if !(sums[1] >= sums[8] && sums[8] >= sums[64]) {
		t.Fatalf("not monotone: w1=%.3f w8=%.3f w64=%.3f", sums[1]/trials, sums[8]/trials, sums[64]/trials)
	}
	if sums[1]-sums[64] < 0.01*trials {
		t.Fatalf("staleness had no effect: %v", sums)
	}
}

func TestStaleCommitFailuresAreDownPhase(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(57))
	sawCommitFail := false
	for trial := 0; trial < 30 && !sawCommitFail; trial++ {
		reqs := permutation(tree, rng)
		r := (&StaleLevelWise{Window: 64}).Schedule(linkstate.New(tree), reqs)
		for _, o := range r.Outcomes {
			if !o.Granted && o.FailDown {
				sawCommitFail = true
				if len(o.Ports) != 0 {
					t.Fatal("commit failure retained ports")
				}
			}
		}
	}
	if !sawCommitFail {
		t.Fatal("no stale commit failure observed in 30 permutations")
	}
}

func TestStaleNoLeaks(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(59))
	reqs := permutation(tree, rng)
	st := linkstate.New(tree)
	res := (&StaleLevelWise{Window: 16}).Schedule(st, reqs)
	if got, want := st.OccupiedCount(), HeldChannels(res); got != want {
		t.Fatalf("occupancy %d != held %d", got, want)
	}
}

func TestStaleBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Window 0 did not panic")
		}
	}()
	(&StaleLevelWise{}).Schedule(linkstate.New(topology.MustNew(2, 2, 2)), nil)
}

func TestStaleName(t *testing.T) {
	if (&StaleLevelWise{Window: 7}).Name() != "level-wise/stale-7" {
		t.Fatal("name")
	}
}
