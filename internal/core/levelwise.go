package core

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
)

// LevelWise is the paper's centralized global scheduler (Section 4,
// Figure 7). At every level h it consults both Ulink(h, σ_h) of the
// source-side switch and Dlink(h, δ_h) of the destination-side mirror
// switch, so an upward port is only taken when the downward channel it
// forces (Theorem 2) is also free.
type LevelWise struct {
	Opts Options
}

// NewLevelWise returns a Level-wise scheduler with the paper's default
// options (first-fit ports, natural order, level-major traversal).
func NewLevelWise() *LevelWise { return &LevelWise{} }

// Name identifies the scheduler in results and reports.
func (s *LevelWise) Name() string {
	n := "level-wise"
	if s.Opts.Traversal == RequestMajor {
		n += "/request-major"
	}
	if s.Opts.Policy != FirstFit {
		n += "/" + s.Opts.Policy.String()
	}
	if s.Opts.Rollback {
		n += "/rollback"
	}
	if s.Opts.Incremental {
		n += "/incremental"
	}
	if s.Opts.ReuseCost > 0 {
		n += fmt.Sprintf("/reuse-cost=%d", s.Opts.ReuseCost)
	}
	return n
}

// request-in-flight bookkeeping for the level-major sweep.
type lwState struct {
	cur   RouteCursor // current (σ_h, δ_h) switch pair
	alive bool        // still schedulable
}

// Schedule routes the batch, mutating st. Requests whose endpoints share a
// level-0 switch (H == 0) are granted without consuming links.
func (s *LevelWise) Schedule(st *linkstate.State, reqs []Request) *Result {
	return s.ScheduleInto(st, reqs, NewScratch())
}

// ScheduleInto is Schedule with every working buffer taken from sc, so a
// caller that reuses one Scratch across batches pays zero allocations per
// request (see BenchmarkLevelWiseAllocs). The returned Result aliases sc
// and is invalidated by sc's next use.
func (s *LevelWise) ScheduleInto(st *linkstate.State, reqs []Request, sc *Scratch) *Result {
	tree := st.Tree()
	// The default fixed-seed source is only materialized when an option
	// actually consumes randomness; creating it unconditionally would be
	// the hot path's sole per-batch allocation.
	rng := s.Opts.Rand
	if rng == nil && (s.Opts.Policy == RandomFit || s.Opts.Order == ShuffledOrder) {
		rng = rand.New(rand.NewSource(1))
	}
	if sc.name == "" {
		sc.name = s.Name()
	}
	outs := sc.prepOutcomes(tree, reqs)
	order := orderIndicesInto(sc.prepOrder(len(reqs)), tree, reqs, s.Opts.Order, rng)
	avail := sc.prepAvail(tree)
	var ops Counters

	// Word fast path: when every availability row is one machine word
	// (w <= 64), the per-level step collapses to one AND and a
	// trailing-zeros pick. FirstFit IS lowest-set-bit, so the fast path is
	// bit-identical to the Vector path (the golden tests pin this); other
	// policies, tracing, and the reuse-cost pick (which reads neighbor
	// occupancy rows) need the Vector form. Incremental alone does not
	// leave the fast path — delta epochs of arrivals sweep exactly like a
	// batch.
	fast := st.WordRows() && s.Opts.Policy == FirstFit && s.Opts.Trace == nil && s.Opts.ReuseCost == 0

	if s.Opts.Traversal == RequestMajor {
		if fast {
			for _, i := range order {
				s.scheduleOneFast(st, &outs[i], &ops)
			}
		} else {
			for _, i := range order {
				s.scheduleOne(st, &outs[i], &ops, rng, avail)
			}
		}
		return sc.finishInto(sc.name, outs, ops)
	}

	// Level-major: the paper's pseudo-code. All requests advance through
	// level h before any touches level h+1.
	states := sc.prepStates(len(reqs))
	maxH := 0
	for i := range outs {
		states[i].cur.Start(tree, outs[i].Src, outs[i].Dst)
		states[i].alive = true
		if outs[i].H == 0 {
			outs[i].Granted = true
			states[i].alive = false
		} else if outs[i].H > maxH {
			maxH = outs[i].H
		}
	}
	if fast {
		for h := 0; h < maxH; h++ {
			for _, i := range order {
				o, ls := &outs[i], &states[i]
				if !ls.alive || h >= o.H {
					continue
				}
				w := st.AvailBothWord(h, ls.cur.Sigma(), ls.cur.Delta())
				ops.VectorReads += 2
				ops.VectorANDs++
				ops.Steps++
				ops.PortPicks++
				if w == 0 {
					ls.alive = false
					o.FailLevel = h
					if s.Opts.Rollback {
						s.rollback(st, o, &ops)
					}
					continue
				}
				p := bits.TrailingZeros64(w)
				st.AllocateBoth(h, ls.cur.Sigma(), ls.cur.Delta(), p)
				ops.Allocs += 2
				o.Ports = append(o.Ports, p)
				ls.cur.Advance(p)
				if len(o.Ports) == o.H {
					o.Granted = true
					ls.alive = false
				}
			}
		}
		return sc.finishInto(sc.name, outs, ops)
	}
	for h := 0; h < maxH; h++ {
		for _, i := range order {
			o, ls := &outs[i], &states[i]
			if !ls.alive || h >= o.H {
				continue
			}
			st.AvailBothInto(avail, h, ls.cur.Sigma(), ls.cur.Delta())
			ops.VectorReads += 2
			ops.VectorANDs++
			ops.Steps++
			p, ok := s.pick(st, rng, h, ls.cur.Sigma(), ls.cur.Delta(), avail)
			ops.PortPicks++
			if s.Opts.Trace != nil {
				port := p
				if !ok {
					port = -1
				}
				s.Opts.Trace(TraceEvent{Scheduler: sc.name, Src: o.Src, Dst: o.Dst, Level: h,
					Phase: "combined", Sigma: ls.cur.Sigma(), Delta: ls.cur.Delta(), Avail: avail.String(), Port: port})
			}
			if !ok {
				ls.alive = false
				o.FailLevel = h
				if s.Opts.Rollback {
					s.rollback(st, o, &ops)
				}
				continue
			}
			mustAllocate(st, linkstate.Up, h, ls.cur.Sigma(), p)
			mustAllocate(st, linkstate.Down, h, ls.cur.Delta(), p)
			ops.Allocs += 2
			o.Ports = append(o.Ports, p)
			ls.cur.Advance(p)
			if len(o.Ports) == o.H {
				o.Granted = true
				ls.alive = false
			}
		}
	}
	return sc.finishInto(sc.name, outs, ops)
}

// scheduleOneFast is scheduleOne on the word fast path: FirstFit, no
// trace, single-word rows. Counter accounting matches scheduleOne
// step for step so Results stay identical across the two paths.
func (s *LevelWise) scheduleOneFast(st *linkstate.State, o *Outcome, ops *Counters) {
	if o.H == 0 {
		o.Granted = true
		return
	}
	var cur RouteCursor
	cur.Start(st.Tree(), o.Src, o.Dst)
	for h := 0; h < o.H; h++ {
		w := st.AvailBothWord(h, cur.Sigma(), cur.Delta())
		ops.VectorReads += 2
		ops.VectorANDs++
		ops.Steps++
		ops.PortPicks++
		if w == 0 {
			o.FailLevel = h
			if s.Opts.Rollback {
				s.rollback(st, o, ops)
			}
			return
		}
		p := bits.TrailingZeros64(w)
		st.AllocateBoth(h, cur.Sigma(), cur.Delta(), p)
		ops.Allocs += 2
		o.Ports = append(o.Ports, p)
		cur.Advance(p)
	}
	o.Granted = true
}

// scheduleOne routes a single request through all its levels
// (request-major traversal — the order the hardware pipeline realizes).
// avail is the caller's scratch availability vector.
func (s *LevelWise) scheduleOne(st *linkstate.State, o *Outcome, ops *Counters, rng *rand.Rand, avail bitvec.Vector) {
	tree := st.Tree()
	if o.H == 0 {
		o.Granted = true
		return
	}
	var cur RouteCursor
	cur.Start(tree, o.Src, o.Dst)
	for h := 0; h < o.H; h++ {
		st.AvailBothInto(avail, h, cur.Sigma(), cur.Delta())
		ops.VectorReads += 2
		ops.VectorANDs++
		ops.Steps++
		p, ok := s.pick(st, rng, h, cur.Sigma(), cur.Delta(), avail)
		ops.PortPicks++
		if s.Opts.Trace != nil {
			port := p
			if !ok {
				port = -1
			}
			s.Opts.Trace(TraceEvent{Scheduler: s.Name(), Src: o.Src, Dst: o.Dst, Level: h,
				Phase: "combined", Sigma: cur.Sigma(), Delta: cur.Delta(), Avail: avail.String(), Port: port})
		}
		if !ok {
			o.FailLevel = h
			if s.Opts.Rollback {
				s.rollback(st, o, ops)
			}
			return
		}
		mustAllocate(st, linkstate.Up, h, cur.Sigma(), p)
		mustAllocate(st, linkstate.Down, h, cur.Delta(), p)
		ops.Allocs += 2
		o.Ports = append(o.Ports, p)
		cur.Advance(p)
	}
	o.Granted = true
}

// pick selects a port from avail under the configured policy, routing
// through the reuse-cost scorer when Options.ReuseCost is set (reuse
// replaces the policy axis — the registry rejects combining them).
func (s *LevelWise) pick(st *linkstate.State, rng *rand.Rand, h, sigma, delta int, avail bitvec.Vector) (int, bool) {
	if s.Opts.ReuseCost > 0 {
		return pickPortReuse(st, h, sigma, delta, avail, s.Opts.ReuseCost)
	}
	return pickPort(st, s.Opts.Policy, rng, h, sigma, avail)
}

// rollback releases the channels a failed request allocated at levels
// below its failure level.
func (s *LevelWise) rollback(st *linkstate.State, o *Outcome, ops *Counters) {
	ReleaseRoute(st, o.Src, o.Dst, o.Ports, ops)
	o.Ports = o.Ports[:0]
}

// mustAllocate claims a channel whose availability was just verified; an
// error here is a scheduler invariant violation, not a runtime condition.
func mustAllocate(st *linkstate.State, d linkstate.Direction, h, idx, p int) {
	if err := st.Allocate(d, h, idx, p); err != nil {
		panic(fmt.Sprintf("core: invariant violation: %v", err))
	}
}

// mustRelease returns a channel the scheduler itself allocated.
func mustRelease(st *linkstate.State, d linkstate.Direction, h, idx, p int) {
	if err := st.Release(d, h, idx, p); err != nil {
		panic(fmt.Sprintf("core: invariant violation: %v", err))
	}
}
