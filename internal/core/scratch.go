package core

import (
	"repro/internal/bitvec"
	"repro/internal/topology"
)

// Scratch holds every buffer the Level-wise scheduler needs to route one
// batch: the outcome records, the processing order, the per-request sweep
// state, one availability vector, and a single ports arena sized Σ H_i
// that is carved into per-outcome sub-slices. A caller that retains a
// Scratch across batches (internal/fabric keeps one per manager) makes
// LevelWise.ScheduleInto allocation-free per request: every buffer is
// reused once it has grown to the workload's high-water mark.
//
// The Result returned by ScheduleInto — including every Outcome.Ports
// sub-slice — aliases the Scratch and is invalidated by the next
// ScheduleInto call with the same Scratch; callers that keep grants
// beyond the batch must copy the ports out first. A Scratch is not safe
// for concurrent use and should stay with one scheduler (it caches the
// scheduler's name).
type Scratch struct {
	res      Result
	outcomes []Outcome
	states   []lwState
	order    []int
	arena    []int // backing store for every outcome's Ports
	avail    bitvec.Vector
	name     string
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// prepOutcomes fills the outcome records for reqs and carves the ports
// arena into zero-length, capacity-H sub-slices so that the scheduler's
// appends never allocate.
func (sc *Scratch) prepOutcomes(tree *topology.Tree, reqs []Request) []Outcome {
	if cap(sc.outcomes) < len(reqs) {
		sc.outcomes = make([]Outcome, len(reqs))
	}
	outs := sc.outcomes[:len(reqs)]
	totalH := 0
	for i, r := range reqs {
		h := tree.AncestorLevel(r.Src, r.Dst)
		outs[i] = Outcome{Request: r, H: h, FailLevel: -1}
		totalH += h
	}
	if cap(sc.arena) < totalH {
		sc.arena = make([]int, totalH)
	}
	off := 0
	for i := range outs {
		h := outs[i].H
		outs[i].Ports = sc.arena[off : off : off+h]
		off += h
	}
	sc.outcomes = outs
	return outs
}

// prepStates returns the per-request sweep-state buffer sized for n
// requests.
func (sc *Scratch) prepStates(n int) []lwState {
	if cap(sc.states) < n {
		sc.states = make([]lwState, n)
	}
	sc.states = sc.states[:n]
	return sc.states
}

// prepOrder returns the order buffer sized for n requests.
func (sc *Scratch) prepOrder(n int) []int {
	if cap(sc.order) < n {
		sc.order = make([]int, n)
	}
	sc.order = sc.order[:n]
	return sc.order
}

// prepAvail returns the availability scratch vector for the tree's port
// width.
func (sc *Scratch) prepAvail(tree *topology.Tree) bitvec.Vector {
	if sc.avail.Width() != tree.Parents() {
		sc.avail = bitvec.New(tree.Parents())
	}
	return sc.avail
}

// finishInto assembles the batch Result in the Scratch (reusing its
// Result header) exactly as finish does with a fresh one.
func (sc *Scratch) finishInto(name string, outs []Outcome, ops Counters) *Result {
	sc.res = Result{Scheduler: name, Outcomes: outs, Total: len(outs), Ops: ops}
	for i := range outs {
		if outs[i].Granted {
			sc.res.Granted++
		}
	}
	return &sc.res
}
