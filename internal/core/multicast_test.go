package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

func randomMulticast(tree *topology.Tree, rng *rand.Rand, fanout int) MulticastRequest {
	src := rng.Intn(tree.Nodes())
	dsts := make([]int, fanout)
	for i := range dsts {
		dsts[i] = rng.Intn(tree.Nodes())
	}
	return MulticastRequest{Src: src, Dsts: dsts}
}

func TestMulticastSingleGranted(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	req := MulticastRequest{Src: 0, Dsts: []int{17, 33, 63}}
	s := &MulticastLevelWise{}
	res := s.Schedule(linkstate.New(tree), []MulticastRequest{req})
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	o := res.Outcomes[0]
	if o.H != 2 || len(o.Ports) != 2 {
		t.Fatalf("outcome %+v", o)
	}
	if err := VerifyMulticast(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastSameSwitchOnly(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	req := MulticastRequest{Src: 0, Dsts: []int{1, 2, 3}}
	for _, s := range []interface {
		Schedule(*linkstate.State, []MulticastRequest) *MulticastResult
	}{&MulticastLevelWise{}, &MulticastLocal{}} {
		st := linkstate.New(tree)
		res := s.Schedule(st, []MulticastRequest{req})
		if res.Granted != 1 || st.OccupiedCount() != 0 {
			t.Fatalf("same-switch multicast: granted %d, occupied %d", res.Granted, st.OccupiedCount())
		}
	}
}

func TestMulticastSharedBranches(t *testing.T) {
	// Destinations on the same switch share every channel: the tree for
	// {4,5,6} (one switch) costs the same as for {4}.
	tree := topology.MustNew(3, 4, 4)
	s := &MulticastLevelWise{}
	stA := linkstate.New(tree)
	s.Schedule(stA, []MulticastRequest{{Src: 0, Dsts: []int{4, 5, 6}}})
	stB := linkstate.New(tree)
	s.Schedule(stB, []MulticastRequest{{Src: 0, Dsts: []int{4}}})
	if stA.OccupiedCount() != stB.OccupiedCount() {
		t.Fatalf("shared-switch fanout changed channel use: %d vs %d", stA.OccupiedCount(), stB.OccupiedCount())
	}
	// Duplicate destinations are also deduplicated.
	stC := linkstate.New(tree)
	s.Schedule(stC, []MulticastRequest{{Src: 0, Dsts: []int{4, 4, 4}}})
	if stC.OccupiedCount() != stB.OccupiedCount() {
		t.Fatal("duplicate destinations not deduplicated")
	}
}

func TestMulticastBroadcastUsesOnePortPerLevel(t *testing.T) {
	// Broadcast from node 0 to everyone: one up channel per level plus
	// one down channel per mirror switch per level.
	tree := topology.MustNew(2, 4, 4)
	all := make([]int, 15)
	for i := range all {
		all[i] = i + 1
	}
	st := linkstate.New(tree)
	res := (&MulticastLevelWise{}).Schedule(st, []MulticastRequest{{Src: 0, Dsts: all}})
	if res.Granted != 1 {
		t.Fatalf("broadcast denied")
	}
	// Level 0: 1 up + 3 distinct destination switches (switch 0 is the
	// source's own, served internally) -> 4 channels.
	if got := st.OccupiedCount(); got != 4 {
		t.Fatalf("broadcast occupied %d channels, want 4", got)
	}
	if err := VerifyMulticast(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastLevelWiseBeatsLocal(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(61))
	var lw, local float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		reqs := make([]MulticastRequest, 16)
		for i := range reqs {
			reqs[i] = randomMulticast(tree, rng, 4)
		}
		a := (&MulticastLevelWise{}).Schedule(linkstate.New(tree), reqs)
		b := (&MulticastLocal{}).Schedule(linkstate.New(tree), reqs)
		if err := VerifyMulticast(tree, a); err != nil {
			t.Fatal(err)
		}
		if err := VerifyMulticast(tree, b); err != nil {
			t.Fatal(err)
		}
		lw += a.Ratio()
		local += b.Ratio()
	}
	if lw <= local {
		t.Fatalf("multicast level-wise %.3f not above local %.3f", lw/trials, local/trials)
	}
}

func TestMulticastRollbackCleansState(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	rng := rand.New(rand.NewSource(63))
	st := linkstate.New(tree)
	reqs := make([]MulticastRequest, 30)
	for i := range reqs {
		reqs[i] = randomMulticast(tree, rng, 6)
	}
	res := (&MulticastLevelWise{}).Schedule(st, reqs)
	// Count channels granted trees need, compare to occupancy (rollback
	// means failures hold nothing).
	want := 0
	for _, o := range res.Outcomes {
		if !o.Granted {
			continue
		}
		branches, maxH := 0, o.H
		_ = branches
		sigma := 0
		_ = sigma
		// Recompute per level: 1 up + distinct mirrors.
		brs, _ := func() ([]mcBranch, int) { return newBranches(tree, o.MulticastRequest) }()
		cur := brs
		for h := 0; h < maxH; h++ {
			want += 1 + len(distinctMirrors(cur, h))
			for i := range cur {
				if h < cur[i].h {
					cur[i].cur.AdvanceDelta(o.Ports[h])
				}
			}
		}
	}
	if st.OccupiedCount() != want {
		t.Fatalf("occupied %d want %d", st.OccupiedCount(), want)
	}
}

func TestMulticastEmptyAndNames(t *testing.T) {
	tree := topology.MustNew(2, 2, 2)
	res := (&MulticastLevelWise{}).Schedule(linkstate.New(tree), nil)
	if res.Ratio() != 1 {
		t.Fatal("empty batch ratio != 1")
	}
	if (&MulticastLevelWise{}).Name() != "multicast/level-wise" || (&MulticastLocal{}).Name() != "multicast/local" {
		t.Fatal("names")
	}
}

// Property: both multicast schedulers always produce verifiable trees on
// random batches, and level-wise on an empty network grants any single
// multicast.
func TestQuickMulticastConsistent(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		reqs := make([]MulticastRequest, n)
		for i := range reqs {
			reqs[i] = randomMulticast(tree, rng, rng.Intn(6)+1)
		}
		a := (&MulticastLevelWise{}).Schedule(linkstate.New(tree), reqs)
		b := (&MulticastLocal{}).Schedule(linkstate.New(tree), reqs)
		if VerifyMulticast(tree, a) != nil || VerifyMulticast(tree, b) != nil {
			return false
		}
		single := (&MulticastLevelWise{}).Schedule(linkstate.New(tree), reqs[:1])
		return single.Granted == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
