package core

import (
	"repro/internal/linkstate"
)

// Incremental epoch scheduling: the carry-forward contract.
//
// A batch scheduler treats the link state as scratch for one pass; an
// incremental scheduler treats it as the durable record of every held
// circuit. Between epochs nothing is rebuilt — granted routes simply
// stay allocated — and each epoch hands the scheduler only the *delta*:
// the departures whose channels should return to the fabric and the
// arrivals to sweep against whatever is left. The held set never needs
// an index of its own: the allocated bits in linkstate ARE the held set,
// which is also what the reuse-cost pick (pickPortReuse) scores against.
//
// In a circuit fabric, tearing down and re-establishing a route has real
// cost (Venkatakrishnan et al., Costly Circuits, Submodular Schedules —
// PAPERS.md); the delta path makes that cost explicit: Result.Torn
// counts exactly the routes this epoch tore, and an arrivals-only delta
// epoch is bit-identical to batch scheduling on the same state (pinned
// by the golden tests), so going incremental never changes what a single
// sweep decides — only how much of the world it has to touch.

// Departure names one held route leaving the fabric in a delta epoch:
// the endpoints it connected and the upward port choices it held (one
// per level below the common ancestor; empty when the endpoints shared a
// level-0 switch and the circuit consumed no channels). The Ports slice
// is owned by the caller and only read here.
type Departure struct {
	Src, Dst int
	Ports    []int
}

// ReleaseSurviving is the fault-tolerant teardown walk: it replays a
// held route's Theorem 1/2 climb and releases every channel that is
// still in service, skipping channels the fault mask has taken down —
// those are masked out of availability and must not be resurrected by a
// departure racing a fault. On a healthy fabric it releases the whole
// path, exactly like ReleaseRoute. ops may be nil; only survivors count
// toward ops.Releases. Releasing a free surviving channel is an
// invariant violation and panics, as in ReleaseRoute.
func ReleaseSurviving(st *linkstate.State, src, dst int, ports []int, ops *Counters) {
	var c RouteCursor
	c.Start(st.Tree(), src, dst)
	for _, p := range ports {
		h, sigma, delta := c.Level(), c.Sigma(), c.Delta()
		if !st.Failed(linkstate.Up, h, sigma, p) {
			mustRelease(st, linkstate.Up, h, sigma, p)
			if ops != nil {
				ops.Releases++
			}
		}
		if !st.Failed(linkstate.Down, h, delta, p) {
			mustRelease(st, linkstate.Down, h, delta, p)
			if ops != nil {
				ops.Releases++
			}
		}
		c.Advance(p)
	}
}

// ScheduleDeltaInto runs one incremental epoch: it tears down the
// departures' routes (fault-aware, via ReleaseSurviving), then sweeps
// the arrivals against the carried-forward link state exactly as
// ScheduleInto would. Held grants from prior epochs are never touched —
// the state they occupy is the point. The returned Result covers the
// arrivals (Outcomes, Granted, Total) and additionally reports Torn, the
// number of departures that actually held channels; teardown releases
// are included in Ops.Releases. With nil departures this is ScheduleInto
// verbatim, which is the arrivals-only bit-identity the golden tests
// pin.
//
// Like ScheduleInto, the Result aliases sc and is invalidated by sc's
// next use, and the call allocates nothing once sc is warm (the delta
// guard in TestScheduleIntoZeroAllocs).
func (s *LevelWise) ScheduleDeltaInto(st *linkstate.State, arrivals []Request, departures []Departure, sc *Scratch) *Result {
	var ops Counters
	torn := 0
	for i := range departures {
		d := &departures[i]
		ReleaseSurviving(st, d.Src, d.Dst, d.Ports, &ops)
		if len(d.Ports) > 0 {
			torn++
		}
	}
	res := s.ScheduleInto(st, arrivals, sc)
	res.Torn = torn
	res.Ops.Releases += ops.Releases
	return res
}
