package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

func TestTraceLevelWiseEventCount(t *testing.T) {
	// One event per (request, level) attempt — exactly Ops.Steps.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(41))
	reqs := permutation(tree, rng)
	var events []TraceEvent
	s := &LevelWise{Opts: Options{Trace: func(e TraceEvent) { events = append(events, e) }}}
	res := s.Schedule(linkstate.New(tree), reqs)
	if len(events) != res.Ops.Steps {
		t.Fatalf("events %d != steps %d", len(events), res.Ops.Steps)
	}
	for _, e := range events {
		if e.Phase != "combined" {
			t.Fatalf("level-wise phase = %q", e.Phase)
		}
		if e.Level < 0 || e.Level >= tree.LinkLevels() {
			t.Fatalf("level %d out of range", e.Level)
		}
		if len(e.Avail) != tree.Parents() {
			t.Fatalf("avail %q wrong width", e.Avail)
		}
	}
	// Denials in the trace match the failed outcomes.
	denials := 0
	for _, e := range events {
		if e.Port == -1 {
			denials++
		}
	}
	failed := 0
	for _, o := range res.Outcomes {
		if !o.Granted {
			failed++
		}
	}
	if denials != failed {
		t.Fatalf("trace denials %d != failed outcomes %d", denials, failed)
	}
}

func TestTraceRequestMajorMatchesLevelMajor(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(43))
	reqs := permutation(tree, rng)
	count := func(tr Traversal) int {
		n := 0
		s := &LevelWise{Opts: Options{Traversal: tr, Trace: func(TraceEvent) { n++ }}}
		s.Schedule(linkstate.New(tree), reqs)
		return n
	}
	if a, b := count(LevelMajor), count(RequestMajor); a != b {
		t.Fatalf("event counts differ: %d vs %d", a, b)
	}
}

func TestTraceLocalPhases(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	// The Figure 4 scenario: the second request's down-phase denial must
	// appear in the trace with the occupied vector visible.
	reqs := []Request{{Src: 0, Dst: 12}, {Src: 4, Dst: 13}}
	var events []TraceEvent
	s := &Local{Opts: Options{Trace: func(e TraceEvent) { events = append(events, e) }}}
	res := s.Schedule(linkstate.New(tree), reqs)
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	var sawUp, sawDownDenial bool
	for _, e := range events {
		switch e.Phase {
		case "up":
			sawUp = true
			if e.Delta != -1 {
				t.Fatalf("up phase consulted delta: %+v", e)
			}
		case "down":
			if e.Port == -1 {
				sawDownDenial = true
				if !strings.Contains(e.String(), "denied") {
					t.Fatalf("String() lacks verdict: %s", e)
				}
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if !sawUp || !sawDownDenial {
		t.Fatalf("missing phases: up=%v downDenial=%v", sawUp, sawDownDenial)
	}
}

func TestTraceNilCostsNothing(t *testing.T) {
	// Smoke: no trace, no events, identical results.
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(47))
	reqs := permutation(tree, rng)
	a := NewLevelWise().Schedule(linkstate.New(tree), reqs)
	b := (&LevelWise{Opts: Options{Trace: func(TraceEvent) {}}}).Schedule(linkstate.New(tree), reqs)
	if a.Granted != b.Granted {
		t.Fatalf("tracing changed the outcome: %d vs %d", a.Granted, b.Granted)
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{Scheduler: "x", Src: 1, Dst: 2, Level: 0, Phase: "combined", Avail: "0110", Port: 1}
	if got := e.String(); !strings.Contains(got, "port 1") || !strings.Contains(got, "1→2") {
		t.Fatalf("String = %q", got)
	}
}
