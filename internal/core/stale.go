package core

import (
	"fmt"

	"repro/internal/linkstate"
)

// StaleLevelWise schedules like LevelWise but reads the destination-side
// Dlink vectors from a periodically refreshed snapshot of the link state,
// modeling a scheduler whose global view lags the network — e.g. one
// whose link-state database is synchronized over a control plane every
// Window requests rather than instantaneously.
//
// Decisions combine the always-fresh local Ulink (a switch knows its own
// ports) with the stale Dlink view; commits run against the live state,
// so a stale decision can collide on the downward channel and fail
// exactly like the conventional local scheduler's blind commitment. The
// spectrum interpolates between the paper's two contenders:
//
//   - Window == 1: the view refreshes before every request — identical
//     grants to the exact Level-wise scheduler (request-major,
//     first-fit).
//   - Window >= the batch size: the view never refreshes past the fresh
//     start — destination information is useless and behavior approaches
//     the greedy local scheduler.
//
// Extension E12 sweeps Window to show how much staleness the global
// advantage tolerates.
type StaleLevelWise struct {
	// Window is the number of requests between view refreshes (>= 1).
	Window int
}

// Name identifies the scheduler in results and reports.
func (s *StaleLevelWise) Name() string {
	return fmt.Sprintf("level-wise/stale-%d", s.Window)
}

// Schedule routes the batch, mutating st. Failed requests release
// everything they claimed (a connection that is not established holds
// nothing — required here because stale decisions fail at commit time).
func (s *StaleLevelWise) Schedule(st *linkstate.State, reqs []Request) *Result {
	if s.Window < 1 {
		panic("core: StaleLevelWise.Window must be >= 1")
	}
	tree := st.Tree()
	outs := NewOutcomes(tree, reqs)
	var ops Counters

	view := linkstate.New(tree)
	processed := 0
	for i := range outs {
		o := &outs[i]
		if processed%s.Window == 0 {
			view.Restore(st.Snapshot())
		}
		processed++
		if o.H == 0 {
			o.Granted = true
			continue
		}
		s.tryOne(st, view, o, &ops)
	}
	return finish(s.Name(), outs, ops)
}

func (s *StaleLevelWise) tryOne(st, view *linkstate.State, o *Outcome, ops *Counters) {
	var cur RouteCursor
	cur.Start(st.Tree(), o.Src, o.Dst)
	fail := func(level int, down bool) {
		o.FailLevel = level
		o.FailDown = down
		ReleaseRoute(st, o.Src, o.Dst, o.Ports, ops)
		o.Ports = o.Ports[:0]
	}
	for h := 0; h < o.H; h++ {
		// Decision: fresh local Ulink AND stale Dlink view.
		availU := st.ULink(h, cur.Sigma())
		availD := view.DLink(h, cur.Delta())
		ops.VectorReads += 2
		ops.VectorANDs++
		ops.Steps++
		p := -1
		for b := 0; b < availU.Width(); b++ {
			if availU.Get(b) && availD.Get(b) {
				p = b
				break
			}
		}
		ops.PortPicks++
		if p < 0 {
			fail(h, false)
			return
		}
		// Commit against reality: the up channel is fresh and must be
		// free; the down channel may have been taken since the last
		// refresh.
		if !st.Available(linkstate.Down, h, cur.Delta(), p) {
			fail(h, true)
			return
		}
		mustAllocate(st, linkstate.Up, h, cur.Sigma(), p)
		mustAllocate(st, linkstate.Down, h, cur.Delta(), p)
		ops.Allocs += 2
		o.Ports = append(o.Ports, p)
		cur.Advance(p)
	}
	o.Granted = true
}
