package core

import (
	"fmt"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Verify replays every connection of a result — granted full paths and the
// partial allocations of failed requests that were not rolled back —
// against a fresh link state and confirms that
//
//  1. each granted outcome carries exactly H ports and expands to a valid
//     switch path in the topology,
//  2. each failed outcome carries fewer than H ports (a failed request is
//     never fully routed), and
//  3. no two replayed allocations share a channel.
//
// It returns the first inconsistency found, or nil. Verify is the
// link-safety oracle used by tests and by the experiment harness.
func Verify(tree *topology.Tree, res *Result) error {
	st := linkstate.New(tree)
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Granted {
			if len(o.Ports) != o.H {
				return fmt.Errorf("core: outcome %d (%d→%d) granted with %d ports, H = %d", i, o.Src, o.Dst, len(o.Ports), o.H)
			}
			if _, err := tree.ExpandPath(o.Src, o.Dst, o.Ports); err != nil {
				return fmt.Errorf("core: outcome %d: %v", i, err)
			}
		} else {
			if o.H > 0 && len(o.Ports) >= o.H {
				return fmt.Errorf("core: outcome %d (%d→%d) failed but holds %d ports, H = %d", i, o.Src, o.Dst, len(o.Ports), o.H)
			}
			if len(o.Ports) > 0 && o.FailLevel != len(o.Ports) {
				return fmt.Errorf("core: outcome %d failed at level %d but holds %d ports", i, o.FailLevel, len(o.Ports))
			}
		}
		// Replay all held channels level by level (partial for failures).
		var cur RouteCursor
		cur.Start(tree, o.Src, o.Dst)
		var replayErr error
		cur.Walk(o.Ports, func(h, sigma, delta, p int) {
			if replayErr != nil {
				return
			}
			if err := st.Allocate(linkstate.Up, h, sigma, p); err != nil {
				replayErr = fmt.Errorf("core: outcome %d conflicts with an earlier allocation: %v", i, err)
				return
			}
			if err := st.Allocate(linkstate.Down, h, delta, p); err != nil {
				replayErr = fmt.Errorf("core: outcome %d conflicts with an earlier allocation: %v", i, err)
			}
		})
		if replayErr != nil {
			return replayErr
		}
	}
	counted := 0
	for i := range res.Outcomes {
		if res.Outcomes[i].Granted {
			counted++
		}
	}
	if counted != res.Granted {
		return fmt.Errorf("core: result reports %d granted, outcomes show %d", res.Granted, counted)
	}
	if res.Total != len(res.Outcomes) {
		return fmt.Errorf("core: result reports %d total, outcomes show %d", res.Total, len(res.Outcomes))
	}
	return nil
}

// HeldChannels returns the number of channels a result's outcomes hold:
// 2 per level for granted paths plus 2 per retained port of failed,
// non-rolled-back requests. After scheduling on a fresh state this equals
// linkstate.State.OccupiedCount.
func HeldChannels(res *Result) int {
	total := 0
	for i := range res.Outcomes {
		total += 2 * len(res.Outcomes[i].Ports)
	}
	return total
}
