package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/linkstate"
)

// BacktrackLevelWise extends the Level-wise scheduler with a bounded
// depth-first search: when the combined availability vector at level h is
// empty, instead of denying the request it backtracks to level h-1,
// releases that level's channels, and resumes with the next available
// port there. The paper's scheduler is the Backtracks == 0 special case
// (first-fit, deny at the first dead end); each extra backtrack buys one
// more chance, closing part of the gap to the optimal rearrangeable
// scheduler at a bounded cost that hardware could still pipeline
// (extension E14).
type BacktrackLevelWise struct {
	// Backtracks bounds how many times one request may step back a level
	// after a dead end (0 = plain first-fit Level-wise).
	Backtracks int
}

// Name identifies the scheduler.
func (s *BacktrackLevelWise) Name() string {
	return fmt.Sprintf("level-wise/backtrack-%d", s.Backtracks)
}

// Schedule routes the batch request-major, mutating st. Failed requests
// hold nothing (the search unwinds its allocations).
func (s *BacktrackLevelWise) Schedule(st *linkstate.State, reqs []Request) *Result {
	tree := st.Tree()
	outs := NewOutcomes(tree, reqs)
	avail := bitvec.New(tree.Parents())
	var ops Counters
	for i := range outs {
		o := &outs[i]
		if o.H == 0 {
			o.Granted = true
			continue
		}
		s.search(st, o, &ops, avail)
	}
	return finish(s.Name(), outs, ops)
}

// search runs the bounded DFS for one request. avail is the batch's
// scratch availability vector (AvailBothInto keeps it valid across the
// allocation probes below, unlike the State's shared AvailBoth buffer).
func (s *BacktrackLevelWise) search(st *linkstate.State, o *Outcome, ops *Counters, avail bitvec.Vector) {
	tree := st.Tree()
	w := tree.Parents()
	// The cursor tracks the switch pair entering the current level; a
	// backtrack rewinds it by replaying the surviving port prefix.
	// nextPort remembers where each level's port scan resumes.
	var cur RouteCursor
	cur.Start(tree, o.Src, o.Dst)
	nextPort := make([]int, o.H)
	backs := 0
	deny := func(failAt int) {
		ReleaseRoute(st, o.Src, o.Dst, o.Ports, ops)
		o.Ports = o.Ports[:0]
		o.FailLevel = failAt
	}
	for {
		h := cur.Level()
		if h == o.H {
			o.Granted = true
			return
		}
		st.AvailBothInto(avail, h, cur.Sigma(), cur.Delta())
		ops.VectorReads += 2
		ops.VectorANDs++
		ops.Steps++
		found := -1
		for p := nextPort[h]; p < w; p++ {
			if avail.Get(p) {
				found = p
				break
			}
		}
		if found >= 0 {
			ops.PortPicks++
			mustAllocate(st, linkstate.Up, h, cur.Sigma(), found)
			mustAllocate(st, linkstate.Down, h, cur.Delta(), found)
			ops.Allocs += 2
			o.Ports = append(o.Ports, found)
			nextPort[h] = found + 1
			cur.Advance(found)
			if h+1 < o.H {
				nextPort[h+1] = 0
			}
			continue
		}
		// Dead end at level h.
		if h == 0 || backs >= s.Backtracks {
			deny(h)
			return
		}
		backs++
		// Rewind the cursor one level by replaying the port prefix, then
		// release the channels the abandoned step held.
		cur.Start(tree, o.Src, o.Dst)
		cur.Walk(o.Ports[:h-1], nil)
		mustRelease(st, linkstate.Up, h-1, cur.Sigma(), o.Ports[h-1])
		mustRelease(st, linkstate.Down, h-1, cur.Delta(), o.Ports[h-1])
		ops.Releases += 2
		o.Ports = o.Ports[:h-1]
	}
}
