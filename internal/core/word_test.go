package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// TestWordFastPathMatchesVectorPath pins the single-word scheduling fast
// path (AvailBothWord + trailing-zeros FirstFit + AllocateBoth)
// bit-identical to the Vector path: outcomes, counters, and final link
// state must agree. The Vector path is forced with a no-op Trace hook,
// which disables the fast path without changing any scheduling decision.
func TestWordFastPathMatchesVectorPath(t *testing.T) {
	shapes := [][3]int{{3, 8, 8}, {3, 4, 4}, {3, 4, 2}, {2, 6, 3}}
	variants := []struct {
		name string
		opts Options
	}{
		{"level-major", Options{}},
		{"level-major/rollback", Options{Rollback: true}},
		{"request-major", Options{Traversal: RequestMajor}},
		{"request-major/rollback", Options{Traversal: RequestMajor, Rollback: true}},
	}
	for _, dims := range shapes {
		tree := topology.MustNew(dims[0], dims[1], dims[2])
		rng := rand.New(rand.NewSource(31))
		// Oversubscribe so denials (and rollback) are exercised too.
		reqs := make([]Request, 3*tree.Nodes())
		for i := range reqs {
			reqs[i] = Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
		}
		for _, v := range variants {
			stFast, stSlow := linkstate.New(tree), linkstate.New(tree)
			if !stFast.WordRows() {
				t.Fatalf("FT%v: expected single-word rows", dims)
			}
			fast := &LevelWise{Opts: v.opts}
			slowOpts := v.opts
			slowOpts.Trace = func(TraceEvent) {}
			slow := &LevelWise{Opts: slowOpts}
			got := fast.Schedule(stFast, reqs)
			want := slow.Schedule(stSlow, reqs)
			if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("FT%v %s: outcomes diverge between word and vector paths", dims, v.name)
			}
			if got.Ops != want.Ops {
				t.Fatalf("FT%v %s: counters diverge: word %+v, vector %+v", dims, v.name, got.Ops, want.Ops)
			}
			if !stFast.Equal(stSlow) {
				t.Fatalf("FT%v %s: final link state diverges between word and vector paths", dims, v.name)
			}
		}
	}
}
