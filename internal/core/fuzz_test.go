package core

import (
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// FuzzScheduleLinkSafety decodes arbitrary bytes into a request batch and
// asserts that every scheduler produces a verifiable, link-safe result —
// the repository's central invariant, exposed to `go test -fuzz`.
func FuzzScheduleLinkSafety(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{255, 254, 0, 0, 17, 17, 42})
	f.Add([]byte{})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	tree := topology.MustNew(3, 4, 4)
	f.Fuzz(func(t *testing.T, data []byte) {
		var reqs []Request
		for i := 0; i+1 < len(data) && len(reqs) < 128; i += 2 {
			reqs = append(reqs, Request{
				Src: int(data[i]) % tree.Nodes(),
				Dst: int(data[i+1]) % tree.Nodes(),
			})
		}
		for _, s := range []Scheduler{
			NewLevelWise(),
			&LevelWise{Opts: Options{Rollback: true, Traversal: RequestMajor}},
			NewLocalGreedy(),
			NewLocalRandom(),
		} {
			st := linkstate.New(tree)
			res := s.Schedule(st, reqs)
			if err := Verify(tree, res); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if got, want := st.OccupiedCount(), HeldChannels(res); got != want {
				t.Fatalf("%s: occupancy %d != held %d", s.Name(), got, want)
			}
		}
	})
}

// FuzzScheduleWithFailures additionally knocks out links derived from the
// fuzz input and asserts the schedulers still never touch a failed
// channel and remain link-safe.
func FuzzScheduleWithFailures(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{9, 8})
	f.Add([]byte{0, 63, 63, 0}, []byte{0, 1, 2, 3, 4})
	tree := topology.MustNew(3, 4, 4)
	f.Fuzz(func(t *testing.T, reqData, failData []byte) {
		st := linkstate.New(tree)
		for i := 0; i+2 < len(failData) && i < 60; i += 3 {
			h := int(failData[i]) % tree.LinkLevels()
			idx := int(failData[i+1]) % tree.SwitchesAt(h)
			p := int(failData[i+2]) % tree.Parents()
			st.FailLink(linkstate.Up, h, idx, p)
			st.FailLink(linkstate.Down, h, idx, p)
		}
		var reqs []Request
		for i := 0; i+1 < len(reqData) && len(reqs) < 64; i += 2 {
			reqs = append(reqs, Request{
				Src: int(reqData[i]) % tree.Nodes(),
				Dst: int(reqData[i+1]) % tree.Nodes(),
			})
		}
		failedBefore := st.FailedCount()
		res := NewLevelWise().Schedule(st, reqs)
		if err := Verify(tree, res); err != nil {
			t.Fatal(err)
		}
		if st.FailedCount() != failedBefore {
			t.Fatal("scheduling changed the failure set")
		}
		// No granted path may cross a failed channel: replay against a
		// state with only the failures applied.
		check := linkstate.New(tree)
		for i := 0; i+2 < len(failData) && i < 60; i += 3 {
			h := int(failData[i]) % tree.LinkLevels()
			idx := int(failData[i+1]) % tree.SwitchesAt(h)
			p := int(failData[i+2]) % tree.Parents()
			check.FailLink(linkstate.Up, h, idx, p)
			check.FailLink(linkstate.Down, h, idx, p)
		}
		for _, o := range res.Outcomes {
			if o.Granted && o.H > 0 {
				if err := check.AllocatePath(o.Src, o.Dst, o.Ports); err != nil {
					t.Fatalf("granted path crosses a failed channel: %v", err)
				}
			}
		}
	})
}
