package core

import (
	"math/rand"
	"testing"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Wide-switch integration: w = 80 crosses the 64-bit word boundary, so
// every availability vector spans two machine words. These tests drive
// the multi-word bitvec paths through the real schedulers end to end.

func TestWideSwitchSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("6400-node tree")
	}
	tree := topology.MustNew(2, 80, 80) // 6400 nodes, 160 switches
	rng := rand.New(rand.NewSource(83))
	reqs := permutation(tree, rng)
	for _, s := range []Scheduler{
		NewLevelWise(),
		NewLocalRandom(),
		&LevelWise{Opts: Options{Policy: LeastLoaded}},
		&StaleLevelWise{Window: 16},
		&BacktrackLevelWise{Backtracks: 4},
	} {
		st := linkstate.New(tree)
		res := s.Schedule(st, reqs)
		if err := Verify(tree, res); err != nil {
			t.Fatalf("%s on w=80: %v", s.Name(), err)
		}
		if res.Granted == 0 {
			t.Fatalf("%s granted nothing on w=80", s.Name())
		}
		if got, want := st.OccupiedCount(), HeldChannels(res); got != want {
			t.Fatalf("%s: occupancy %d != held %d", s.Name(), got, want)
		}
	}
}

func TestWideSwitchPortsAboveWord(t *testing.T) {
	// Force allocations onto ports above bit 63: pre-occupy ports 0..63
	// of one source switch and its destination mirror, then schedule.
	tree := topology.MustNew(2, 80, 80)
	st := linkstate.New(tree)
	srcSwitch := 0
	dst := 6399 // last node, switch 79
	dstSwitch, _ := tree.NodeSwitch(dst)
	for p := 0; p < 64; p++ {
		if err := st.Allocate(linkstate.Up, 0, srcSwitch, p); err != nil {
			t.Fatal(err)
		}
		if err := st.Allocate(linkstate.Down, 0, dstSwitch, p); err != nil {
			t.Fatal(err)
		}
	}
	res := NewLevelWise().Schedule(st, []Request{{Src: 0, Dst: dst}})
	if res.Granted != 1 {
		t.Fatalf("wide request denied: %+v", res.Outcomes[0])
	}
	if p := res.Outcomes[0].Ports[0]; p < 64 {
		t.Fatalf("chose port %d, expected one above the first word", p)
	}
}

func TestWideSwitchLevelWiseBeatsLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("6400-node tree")
	}
	tree := topology.MustNew(2, 80, 80)
	rng := rand.New(rand.NewSource(89))
	var lw, local float64
	for trial := 0; trial < 3; trial++ {
		reqs := permutation(tree, rng)
		lw += NewLevelWise().Schedule(linkstate.New(tree), reqs).Ratio()
		local += NewLocalRandom().Schedule(linkstate.New(tree), reqs).Ratio()
	}
	if lw <= local {
		t.Fatalf("w=80: level-wise %.3f not above local %.3f", lw/3, local/3)
	}
}
