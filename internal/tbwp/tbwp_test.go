package tbwp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSingleRequestGranted(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	s := &Scheduler{}
	res := s.Schedule(linkstate.New(tree), []core.Request{{Src: 0, Dst: 63}})
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	if err := VerifyWalks(tree, res); err != nil {
		t.Fatal(err)
	}
	// Unblocked request walks the minimal path: 2H channels, no laterals.
	w := res.Walks[0]
	if len(w.Channels) != 4 || w.Laterals != 0 {
		t.Fatalf("walk = %+v", w)
	}
}

func TestSameSwitchGranted(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	s := &Scheduler{}
	res := s.Schedule(linkstate.New(tree), []core.Request{{Src: 0, Dst: 1}})
	if res.Granted != 1 || len(res.Walks[0].Channels) != 0 {
		t.Fatalf("res = %+v", res.Walks[0])
	}
}

func TestTurnBackRescuesBlockedRequest(t *testing.T) {
	// Figure 4 scenario in FT(2,4): with greedy ports, the plain local
	// scheduler loses the second request to a down conflict; TBWP slides
	// along the top ring and grants both.
	tree := topology.MustNew(2, 4, 4)
	reqs := []core.Request{{Src: 0, Dst: 12}, {Src: 4, Dst: 13}}
	plain := core.NewLocalGreedy().Schedule(linkstate.New(tree), reqs)
	if plain.Granted != 1 {
		t.Fatalf("plain local granted %d, want 1", plain.Granted)
	}
	s := &Scheduler{Policy: core.FirstFit}
	res := s.Schedule(linkstate.New(tree), reqs)
	if res.Granted != 2 {
		t.Fatalf("TBWP granted %d, want 2", res.Granted)
	}
	if err := VerifyWalks(tree, res); err != nil {
		t.Fatal(err)
	}
	// The rescue used the ring (or a different up-port after turn-up; in
	// a 2-level tree only the ring is available above level 1).
	if res.LateralsUsed == 0 {
		t.Fatalf("expected lateral moves: %+v", res.Walks[1])
	}
}

func TestBeatsPlainLocalOnPermutations(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 3)
	var tb, plain float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		reqs := g.MustBatch(traffic.RandomPermutation)
		s := &Scheduler{Policy: core.RandomFit, Seed: int64(trial)}
		res := s.Schedule(linkstate.New(tree), reqs)
		if err := VerifyWalks(tree, res); err != nil {
			t.Fatal(err)
		}
		tb += res.Ratio()
		plain += core.NewLocalRandom().Schedule(linkstate.New(tree), reqs).Ratio()
	}
	if tb <= plain {
		t.Fatalf("TBWP %.3f not above plain local %.3f", tb/trials, plain/trials)
	}
}

func TestLevelWiseStillBeatsTBWP(t *testing.T) {
	// The paper's point stands against the stronger adaptive baseline.
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 5)
	var tb, lw float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		reqs := g.MustBatch(traffic.RandomPermutation)
		s := &Scheduler{Policy: core.RandomFit, Seed: int64(trial)}
		tb += s.Schedule(linkstate.New(tree), reqs).Ratio()
		lw += core.NewLevelWise().Schedule(linkstate.New(tree), reqs).Ratio()
	}
	if lw <= tb {
		t.Fatalf("level-wise %.3f not above TBWP %.3f", lw/trials, tb/trials)
	}
}

func TestFailedWalksReleaseEverything(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	g := traffic.NewGenerator(16, 7)
	for trial := 0; trial < 20; trial++ {
		st := linkstate.New(tree)
		s := &Scheduler{Policy: core.RandomFit, Seed: int64(trial)}
		res := s.Schedule(st, g.MustBatch(traffic.RandomPermutation))
		held := 0
		for _, w := range res.Walks {
			held += countTreeChannels(w)
		}
		if st.OccupiedCount() != held {
			t.Fatalf("occupancy %d, granted walks hold %d", st.OccupiedCount(), held)
		}
	}
}

func countTreeChannels(w Walk) int {
	n := 0
	for _, c := range w.Channels {
		if c.Kind != Lateral {
			n++
		}
	}
	return n
}

func TestHopBudgetBoundsWalks(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 9)
	s := &Scheduler{Policy: core.RandomFit, MaxHops: 3}
	res := s.Schedule(linkstate.New(tree), g.MustBatch(traffic.RandomPermutation))
	for _, w := range res.Walks {
		if w.Hops > 3 {
			t.Fatalf("walk exceeded budget: %+v", w)
		}
	}
	if err := VerifyWalks(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestRatioEmptyBatch(t *testing.T) {
	tree := topology.MustNew(2, 2, 2)
	res := (&Scheduler{}).Schedule(linkstate.New(tree), nil)
	if res.Ratio() != 1 {
		t.Fatalf("empty ratio %v", res.Ratio())
	}
}

// Property: on arbitrary batches every result verifies and the ratio is
// sane.
func TestQuickAlwaysConsistent(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 1
		reqs := make([]core.Request, n)
		for i := range reqs {
			reqs[i] = core.Request{Src: rng.Intn(64), Dst: rng.Intn(64)}
		}
		for _, pol := range []core.PortPolicy{core.FirstFit, core.RandomFit} {
			s := &Scheduler{Policy: pol, Seed: seed}
			res := s.Schedule(linkstate.New(tree), reqs)
			if res.Granted > res.Total {
				return false
			}
			if err := VerifyWalks(tree, res); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: TBWP dominates plain local on identical batches with the
// first-fit policy (deterministic: same up-path decisions, strictly more
// rescue options). Checked statistically over the batch.
func TestQuickNoWorseThanBudgetZeroIntuition(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16) + 1
		reqs := make([]core.Request, n)
		for i := range reqs {
			reqs[i] = core.Request{Src: rng.Intn(16), Dst: rng.Intn(16)}
		}
		s := &Scheduler{Policy: core.FirstFit}
		tb := s.Schedule(linkstate.New(tree), reqs)
		plain := core.NewLocalGreedy().Schedule(linkstate.New(tree), reqs)
		return tb.Granted >= plain.Granted
	}
	// Dominance is a strong empirical regularity, not a theorem (a rescue
	// holds extra channels that can displace a later grant), so this
	// check runs a fixed input set rather than fresh random ones.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTBWP512(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	g := traffic.NewGenerator(512, 1)
	reqs := g.MustBatch(traffic.RandomPermutation)
	st := linkstate.New(tree)
	s := &Scheduler{Policy: core.RandomFit}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.Schedule(st, reqs)
	}
}
