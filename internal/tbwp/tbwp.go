// Package tbwp implements a Turn-Back-When-Possible baseline after
// Kariniemi & Nurmi ("New adaptive routing algorithm for extended
// generalized fat trees on-chip", SoC 2003), the adaptive scheme the
// paper's introduction discusses: the topmost switches are connected
// together, and a connection blocked on its way down may turn back up
// toward the root — or, at the top, slide sideways along the top-level
// ring — and try another downward path instead of failing outright.
//
// Adaptation notes (DESIGN.md §5): the original is a packet-switched
// on-chip NoC algorithm; here it sets up circuits like the other
// schedulers so schedulability ratios are comparable. The top-level
// lateral interconnect is modeled as a bidirectional ring with one
// channel per (switch, direction); a connection's walk may therefore be
// non-minimal (up/down/up/…/lateral/down), and every channel the walk
// crosses is held by the circuit. A hop budget bounds pathological walks.
package tbwp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Channel identifies one held channel of a walk.
type Channel struct {
	Kind  ChannelKind
	Level int // link level for Up/Down; unused for Lateral
	Index int // switch index at Level (Up/Down) or top-switch index (Lateral)
	Port  int // upper port (Up/Down) or ring direction 0/1 (Lateral)
}

// ChannelKind discriminates the three channel resources.
type ChannelKind int

// Channel kinds.
const (
	Up ChannelKind = iota
	Down
	Lateral
)

// Walk is the outcome of one TBWP connection attempt.
type Walk struct {
	Src, Dst int
	Granted  bool
	Channels []Channel // channels held (complete walk when granted)
	Hops     int
	Laterals int // lateral moves taken
}

// Result summarizes a TBWP batch.
type Result struct {
	Walks   []Walk
	Granted int
	Total   int
	// LateralsUsed counts lateral channels consumed by granted circuits.
	LateralsUsed int
}

// Ratio returns granted/total (1 for an empty batch).
func (r *Result) Ratio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Granted) / float64(r.Total)
}

// Scheduler is the TBWP baseline.
type Scheduler struct {
	// Policy picks upward ports (FirstFit or RandomFit).
	Policy core.PortPolicy
	// MaxHops bounds a single connection's walk; 0 means 4·l + 2·ring.
	MaxHops int
	// Seed drives the random policy.
	Seed int64
}

// ringState tracks the top-level ring channels: ring[idx][dir], dir 0 =
// toward (idx+1) mod n, dir 1 = toward (idx-1+n) mod n.
type ringState struct {
	n    int
	busy [][2]bool
}

func newRing(n int) *ringState { return &ringState{n: n, busy: make([][2]bool, n)} }

func (r *ringState) neighbor(idx, dir int) int {
	if dir == 0 {
		return (idx + 1) % r.n
	}
	return (idx - 1 + r.n) % r.n
}

// Schedule routes the batch. The tree link state persists in st; the
// top-ring channels are fresh per call (the ring belongs to this
// baseline's extended topology, not to the plain fat tree).
func (s *Scheduler) Schedule(st *linkstate.State, reqs []core.Request) *Result {
	tree := st.Tree()
	rng := rand.New(rand.NewSource(s.Seed + 1))
	ring := newRing(tree.SwitchesAt(tree.Levels() - 1))
	maxHops := s.MaxHops
	if maxHops == 0 {
		maxHops = 4*tree.Levels() + 2*ring.n
	}
	res := &Result{Total: len(reqs)}
	for _, rq := range reqs {
		w := s.route(st, ring, rng, rq, maxHops)
		if w.Granted {
			res.Granted++
			res.LateralsUsed += w.Laterals
		}
		res.Walks = append(res.Walks, w)
	}
	return res
}

// route attempts one connection as a forward-moving token (see package
// comment). On failure it releases everything the walk held.
func (s *Scheduler) route(st *linkstate.State, ring *ringState, rng *rand.Rand, rq core.Request, maxHops int) Walk {
	tree := st.Tree()
	w := Walk{Src: rq.Src, Dst: rq.Dst}
	h := tree.AncestorLevel(rq.Src, rq.Dst)
	if h == 0 {
		w.Granted = true
		return w
	}
	dstSwitch, _ := tree.NodeSwitch(rq.Dst)
	dstLab := tree.Spec().LabelOf(0, dstSwitch)
	top := tree.Levels() - 1

	hold := func(c Channel) {
		w.Channels = append(w.Channels, c)
	}
	fail := func() Walk {
		for i := len(w.Channels) - 1; i >= 0; i-- {
			c := w.Channels[i]
			switch c.Kind {
			case Up:
				if err := st.Release(linkstate.Up, c.Level, c.Index, c.Port); err != nil {
					panic(fmt.Sprintf("tbwp: %v", err))
				}
			case Down:
				if err := st.Release(linkstate.Down, c.Level, c.Index, c.Port); err != nil {
					panic(fmt.Sprintf("tbwp: %v", err))
				}
			case Lateral:
				ring.busy[c.Index][c.Port] = false
			}
		}
		w.Channels = nil
		w.Granted = false
		return w
	}

	// isAncestor reports whether the level-k switch idx is an ancestor of
	// the destination (its child digits at positions >= k match dst's).
	isAncestor := func(k, idx int) bool {
		lab := tree.Spec().LabelOf(k, idx)
		for pos := k; pos <= tree.Levels()-2; pos++ {
			if lab[pos] != dstLab[pos] {
				return false
			}
		}
		return true
	}

	cur, _ := tree.NodeSwitch(rq.Src)
	level := 0
	for w.Hops = 0; w.Hops < maxHops; w.Hops++ {
		if level == 0 && cur == dstSwitch {
			w.Granted = true
			return w
		}
		if level > 0 && isAncestor(level, cur) {
			// Descend toward dst: the next child is forced.
			child := tree.DownChild(level-1, cur, dstLab[level-1])
			port := tree.DownChildUpPort(level-1, cur, dstLab[level-1])
			if st.Available(linkstate.Down, level-1, child, port) {
				if err := st.Allocate(linkstate.Down, level-1, child, port); err != nil {
					panic(fmt.Sprintf("tbwp: %v", err))
				}
				hold(Channel{Kind: Down, Level: level - 1, Index: child, Port: port})
				cur = child
				level--
				continue
			}
			// Blocked going down: turn back up when possible…
			if level < top {
				if s.climb(st, rng, &w, &cur, &level) {
					continue
				}
				return fail()
			}
			// …or slide along the top ring.
			moved := false
			for _, dir := range ringDirs(rng, s.Policy) {
				if !ring.busy[cur][dir] {
					ring.busy[cur][dir] = true
					hold(Channel{Kind: Lateral, Index: cur, Port: dir})
					cur = ring.neighbor(cur, dir)
					w.Laterals++
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			return fail()
		}
		// Not yet above an ancestor: climb.
		if !s.climb(st, rng, &w, &cur, &level) {
			return fail()
		}
	}
	return fail() // hop budget exhausted
}

// climb takes one upward hop from *cur using the policy; false if no
// upward channel is available (or already at the top).
func (s *Scheduler) climb(st *linkstate.State, rng *rand.Rand, w *Walk, cur, level *int) bool {
	tree := st.Tree()
	if *level >= tree.Levels()-1 {
		return false
	}
	avail := st.ULink(*level, *cur)
	n := avail.Count()
	if n == 0 {
		return false
	}
	var port int
	if s.Policy == core.RandomFit {
		port, _ = avail.NthSet(rng.Intn(n))
	} else {
		port, _ = avail.FirstSet()
	}
	if err := st.Allocate(linkstate.Up, *level, *cur, port); err != nil {
		panic(fmt.Sprintf("tbwp: %v", err))
	}
	w.Channels = append(w.Channels, Channel{Kind: Up, Level: *level, Index: *cur, Port: port})
	*cur = tree.UpParent(*level, *cur, port)
	*level++
	return true
}

// ringDirs orders the two ring directions per policy.
func ringDirs(rng *rand.Rand, policy core.PortPolicy) [2]int {
	if policy == core.RandomFit && rng.Intn(2) == 1 {
		return [2]int{1, 0}
	}
	return [2]int{0, 1}
}

// VerifyWalks replays every granted walk against a fresh link state and
// ring, confirming no channel is shared between circuits and each walk
// is a connected switch sequence from src to dst.
func VerifyWalks(tree *topology.Tree, res *Result) error {
	st := linkstate.New(tree)
	ring := newRing(tree.SwitchesAt(tree.Levels() - 1))
	for i := range res.Walks {
		w := &res.Walks[i]
		if !w.Granted {
			if len(w.Channels) != 0 {
				return fmt.Errorf("tbwp: walk %d failed but holds channels", i)
			}
			continue
		}
		cur, _ := tree.NodeSwitch(w.Src)
		level := 0
		for _, c := range w.Channels {
			switch c.Kind {
			case Up:
				if c.Level != level || c.Index != cur {
					return fmt.Errorf("tbwp: walk %d up hop from (%d,%d), token at (%d,%d)", i, c.Level, c.Index, level, cur)
				}
				if err := st.Allocate(linkstate.Up, c.Level, c.Index, c.Port); err != nil {
					return fmt.Errorf("tbwp: walk %d: %v", i, err)
				}
				cur = tree.UpParent(c.Level, c.Index, c.Port)
				level++
			case Down:
				// c.Index is the child reached, c.Port its upper port
				// back to the current switch.
				if c.Level != level-1 || tree.UpParent(c.Level, c.Index, c.Port) != cur {
					return fmt.Errorf("tbwp: walk %d down hop disconnected", i)
				}
				if err := st.Allocate(linkstate.Down, c.Level, c.Index, c.Port); err != nil {
					return fmt.Errorf("tbwp: walk %d: %v", i, err)
				}
				cur = c.Index
				level--
			case Lateral:
				if level != tree.Levels()-1 || c.Index != cur {
					return fmt.Errorf("tbwp: walk %d lateral hop not at top/current", i)
				}
				if ring.busy[c.Index][c.Port] {
					return fmt.Errorf("tbwp: walk %d lateral channel reused", i)
				}
				ring.busy[c.Index][c.Port] = true
				cur = ring.neighbor(c.Index, c.Port)
			}
		}
		dstSwitch, _ := tree.NodeSwitch(w.Dst)
		if level != 0 || cur != dstSwitch {
			return fmt.Errorf("tbwp: walk %d ends at (%d,%d), dst switch %d", i, level, cur, dstSwitch)
		}
	}
	granted := 0
	for i := range res.Walks {
		if res.Walks[i].Granted {
			granted++
		}
	}
	if granted != res.Granted {
		return fmt.Errorf("tbwp: granted count %d, walks show %d", res.Granted, granted)
	}
	return nil
}
