package bitvec

import (
	"sync"
	"testing"
)

func TestTryClearSetAtomic(t *testing.T) {
	v := NewFull(130) // three words
	for _, i := range []int{0, 63, 64, 129} {
		if !v.TryClearAtomic(i) {
			t.Fatalf("TryClearAtomic(%d) on set bit = false", i)
		}
		if v.Get(i) {
			t.Fatalf("bit %d still set after TryClearAtomic", i)
		}
		if v.TryClearAtomic(i) {
			t.Fatalf("TryClearAtomic(%d) on clear bit = true", i)
		}
		if !v.TrySetAtomic(i) {
			t.Fatalf("TrySetAtomic(%d) on clear bit = false", i)
		}
		if v.TrySetAtomic(i) {
			t.Fatalf("TrySetAtomic(%d) on set bit = true", i)
		}
	}
	if got := v.Count(); got != 130 {
		t.Fatalf("Count = %d after clear/set round trips, want 130", got)
	}
}

// TestTryClearAtomicExclusive races 8 workers claiming every bit of one
// vector; each bit must be claimed exactly once. Run under -race this also
// proves the CAS loop is race-detector clean.
func TestTryClearAtomicExclusive(t *testing.T) {
	const width, workers = 257, 8
	v := NewFull(width)
	wins := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < width; i++ {
				if v.TryClearAtomic(i) {
					wins[w] = append(wins[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	claimed := make([]int, width)
	total := 0
	for _, ws := range wins {
		for _, i := range ws {
			claimed[i]++
			total++
		}
	}
	if total != width {
		t.Fatalf("claimed %d bits total, want %d", total, width)
	}
	for i, c := range claimed {
		if c != 1 {
			t.Fatalf("bit %d claimed %d times", i, c)
		}
	}
	if !v.None() {
		t.Fatalf("vector not empty after full claim: %s", v.String())
	}
}

// TestAndAtomicConcurrent ANDs into worker-owned scratch while other
// goroutines mutate the operands atomically; the result must always be a
// subset of full width and the test must be race-clean.
func TestAndAtomicConcurrent(t *testing.T) {
	const width = 96
	a, b := NewFull(width), NewFull(width)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i = (i + 1) % width {
			select {
			case <-stop:
				return
			default:
			}
			if !a.TryClearAtomic(i) {
				a.TrySetAtomic(i)
			}
		}
	}()
	scratch := New(width)
	for n := 0; n < 2000; n++ {
		scratch.AndAtomic(a, b)
		if scratch.Count() > width {
			t.Fatalf("AndAtomic produced %d bits, width %d", scratch.Count(), width)
		}
	}
	close(stop)
	wg.Wait()
}

func TestGetAtomic(t *testing.T) {
	v := New(70)
	v.Set(69)
	if !v.GetAtomic(69) || v.GetAtomic(0) {
		t.Fatalf("GetAtomic mismatch: bit69=%v bit0=%v", v.GetAtomic(69), v.GetAtomic(0))
	}
}
