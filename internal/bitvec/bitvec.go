// Package bitvec provides fixed-width bit vectors used to represent link
// availability in fat-tree switches, together with the Boolean operations
// the Level-wise scheduler performs on them: bitwise AND, first-set-bit
// (priority encoder), population count, and snapshot/restore.
//
// A Vector models the paper's w-bit Ulink/Dlink availability vectors: bit i
// set means the link attached at upper port i is available. Widths are
// arbitrary; vectors up to 64 bits occupy a single word.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width bit vector. The zero value is an empty (width-0)
// vector; use New to create one of a given width.
type Vector struct {
	width int
	words []uint64
}

// New returns a Vector of the given width with all bits clear.
// It panics if width is negative.
func New(width int) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vector{width: width, words: make([]uint64, wordsFor(width))}
}

// NewFull returns a Vector of the given width with all bits set.
func NewFull(width int) Vector {
	v := New(width)
	v.SetAll()
	return v
}

func wordsFor(width int) int {
	return (width + wordBits - 1) / wordBits
}

// Width reports the number of bits in the vector.
func (v Vector) Width() int { return v.width }

func (v Vector) check(i int) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.width))
	}
}

// Get reports whether bit i is set. It panics if i is out of range.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i. It panics if i is out of range.
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetAll sets every bit in the vector.
func (v Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit in the vector.
func (v Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that whole-word
// operations (popcount, equality) remain exact.
func (v Vector) trim() {
	if v.width%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(v.width%wordBits)) - 1
	}
}

// And stores the bitwise AND of a and b into v. All three must have the
// same width; v may alias a or b.
func (v Vector) And(a, b Vector) {
	if a.width != v.width || b.width != v.width {
		panic(fmt.Sprintf("bitvec: And width mismatch %d/%d/%d", v.width, a.width, b.width))
	}
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// AndWith ANDs other into v in place.
func (v Vector) AndWith(other Vector) { v.And(v, other) }

// AndNot stores a AND NOT b into v (clears in a every bit set in b). All
// three must have the same width; v may alias a or b.
func (v Vector) AndNot(a, b Vector) {
	if a.width != v.width || b.width != v.width {
		panic(fmt.Sprintf("bitvec: AndNot width mismatch %d/%d/%d", v.width, a.width, b.width))
	}
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// FirstSet returns the index of the lowest set bit (the paper's priority
// selector) and true, or 0 and false if no bit is set.
func (v Vector) FirstSet() (int, bool) {
	for wi, w := range v.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w), true
		}
	}
	return 0, false
}

// NthSet returns the index of the n-th set bit (0-based) and true, or
// 0 and false if fewer than n+1 bits are set. It is used by the random
// port-selection policy.
func (v Vector) NthSet(n int) (int, bool) {
	if n < 0 {
		return 0, false
	}
	for wi, w := range v.words {
		c := bits.OnesCount64(w)
		if n < c {
			for ; ; n-- {
				b := bits.TrailingZeros64(w)
				if n == 0 {
					return wi*wordBits + b, true
				}
				w &^= 1 << uint(b)
			}
		}
		n -= c
	}
	return 0, false
}

// Count returns the number of set bits.
func (v Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// None reports whether no bit is set (the "all 0 values cannot be
// scheduled" test in the paper's pseudo-code).
func (v Vector) None() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and other have the same width and bits.
func (v Vector) Equal(other Vector) bool {
	if v.width != other.width {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := Vector{width: v.width, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// CopyFrom copies the bits of other (same width) into v.
func (v Vector) CopyFrom(other Vector) {
	if v.width != other.width {
		panic(fmt.Sprintf("bitvec: CopyFrom width mismatch %d/%d", v.width, other.width))
	}
	copy(v.words, other.words)
}

// Word returns the low 64 bits of the vector; convenient for widths <= 64.
func (v Vector) Word() uint64 {
	if len(v.words) == 0 {
		return 0
	}
	return v.words[0]
}

// String renders the vector most-significant bit first, e.g. "0101" for a
// width-4 vector with bits 0 and 2 set.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matrix is a dense array of equal-width vectors, one per switch, backing a
// whole level's Ulink or Dlink state in a single allocation.
type Matrix struct {
	rows  int
	width int
	words []uint64
	wpr   int // words per row
}

// NewMatrix returns a rows x width matrix with every bit clear.
func NewMatrix(rows, width int) *Matrix {
	if rows < 0 || width < 0 {
		panic(fmt.Sprintf("bitvec: NewMatrix(%d, %d)", rows, width))
	}
	wpr := wordsFor(width)
	return &Matrix{rows: rows, width: width, words: make([]uint64, rows*wpr), wpr: wpr}
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Width reports the per-row bit width.
func (m *Matrix) Width() int { return m.width }

// WordsPerRow reports how many 64-bit words back each row; 1 means a
// whole row is a single machine word (width <= 64).
func (m *Matrix) WordsPerRow() int { return m.wpr }

// Words exposes the matrix's backing storage: row r occupies words
// [r*WordsPerRow(), (r+1)*WordsPerRow()). The slice aliases the matrix —
// mutations through it are mutations of the matrix. It exists so
// single-word callers (linkstate's scheduling fast path) can operate on
// whole rows without materializing Row vectors.
func (m *Matrix) Words() []uint64 { return m.words }

// Row returns row r as a Vector sharing the matrix's storage; mutations
// through the vector update the matrix.
func (m *Matrix) Row(r int) Vector {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitvec: row %d out of range [0,%d)", r, m.rows))
	}
	return Vector{width: m.width, words: m.words[r*m.wpr : (r+1)*m.wpr : (r+1)*m.wpr]}
}

// SetAll sets every bit of every row.
func (m *Matrix) SetAll() {
	for r := 0; r < m.rows; r++ {
		m.Row(r).SetAll()
	}
}

// ClearAll clears every bit of every row.
func (m *Matrix) ClearAll() {
	for i := range m.words {
		m.words[i] = 0
	}
}

// Count returns the total number of set bits in the matrix.
func (m *Matrix) Count() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Snapshot returns a copy of the matrix contents for later Restore.
func (m *Matrix) Snapshot() []uint64 {
	s := make([]uint64, len(m.words))
	copy(s, m.words)
	return s
}

// Restore overwrites the matrix contents with a snapshot previously taken
// from a matrix of identical shape.
func (m *Matrix) Restore(s []uint64) {
	if len(s) != len(m.words) {
		panic(fmt.Sprintf("bitvec: Restore length %d != %d", len(s), len(m.words)))
	}
	copy(m.words, s)
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.width != other.width {
		return false
	}
	for i := range m.words {
		if m.words[i] != other.words[i] {
			return false
		}
	}
	return true
}
