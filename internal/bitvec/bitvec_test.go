package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroWidth(t *testing.T) {
	v := New(0)
	if v.Width() != 0 {
		t.Fatalf("Width() = %d, want 0", v.Width())
	}
	if !v.None() {
		t.Fatal("zero-width vector should report None")
	}
	if _, ok := v.FirstSet(); ok {
		t.Fatal("zero-width vector should have no first set bit")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	for _, width := range []int{1, 3, 7, 8, 63, 64, 65, 127, 128, 200} {
		v := New(width)
		for i := 0; i < width; i++ {
			if v.Get(i) {
				t.Fatalf("width %d: bit %d set in fresh vector", width, i)
			}
		}
		for i := 0; i < width; i += 3 {
			v.Set(i)
		}
		for i := 0; i < width; i++ {
			want := i%3 == 0
			if v.Get(i) != want {
				t.Fatalf("width %d: Get(%d) = %v, want %v", width, i, v.Get(i), want)
			}
		}
		for i := 0; i < width; i += 3 {
			v.Clear(i)
		}
		if !v.None() {
			t.Fatalf("width %d: vector not empty after clearing", width)
		}
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestSetAllAndCount(t *testing.T) {
	for _, width := range []int{1, 5, 64, 65, 130} {
		v := NewFull(width)
		if got := v.Count(); got != width {
			t.Fatalf("width %d: Count after SetAll = %d", width, got)
		}
		// High bits beyond width must not leak into Count.
		v.ClearAll()
		if got := v.Count(); got != 0 {
			t.Fatalf("width %d: Count after ClearAll = %d", width, got)
		}
	}
}

func TestAnd(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(0)
	a.Set(3)
	a.Set(65)
	b.Set(3)
	b.Set(64)
	b.Set(65)
	out := New(70)
	out.And(a, b)
	want := []int{3, 65}
	if out.Count() != len(want) {
		t.Fatalf("And count = %d, want %d", out.Count(), len(want))
	}
	for _, i := range want {
		if !out.Get(i) {
			t.Fatalf("And missing bit %d", i)
		}
	}
}

func TestAndWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched widths did not panic")
		}
	}()
	New(4).And(New(4), New(5))
}

func TestAndNot(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(1)
	a.Set(65)
	a.Set(69)
	b.Set(65)
	out := New(70)
	out.AndNot(a, b)
	if out.Count() != 2 || !out.Get(1) || !out.Get(69) || out.Get(65) {
		t.Fatalf("AndNot = %s", out)
	}
	// Aliasing form.
	a.AndNot(a, b)
	if !a.Equal(out) {
		t.Fatal("aliased AndNot differs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AndNot width mismatch did not panic")
		}
	}()
	New(4).AndNot(New(4), New(5))
}

func TestAndAliasing(t *testing.T) {
	a := New(10)
	a.Set(1)
	a.Set(2)
	b := New(10)
	b.Set(2)
	b.Set(3)
	a.AndWith(b)
	if a.Count() != 1 || !a.Get(2) {
		t.Fatalf("AndWith aliasing wrong: %s", a)
	}
}

func TestFirstSet(t *testing.T) {
	v := New(130)
	if _, ok := v.FirstSet(); ok {
		t.Fatal("FirstSet on empty vector returned ok")
	}
	v.Set(129)
	if i, ok := v.FirstSet(); !ok || i != 129 {
		t.Fatalf("FirstSet = %d,%v want 129,true", i, ok)
	}
	v.Set(64)
	if i, _ := v.FirstSet(); i != 64 {
		t.Fatalf("FirstSet = %d want 64", i)
	}
	v.Set(0)
	if i, _ := v.FirstSet(); i != 0 {
		t.Fatalf("FirstSet = %d want 0", i)
	}
}

func TestNthSet(t *testing.T) {
	v := New(200)
	set := []int{2, 5, 63, 64, 100, 199}
	for _, i := range set {
		v.Set(i)
	}
	for n, want := range set {
		got, ok := v.NthSet(n)
		if !ok || got != want {
			t.Fatalf("NthSet(%d) = %d,%v want %d,true", n, got, ok, want)
		}
	}
	if _, ok := v.NthSet(len(set)); ok {
		t.Fatal("NthSet past end returned ok")
	}
	if _, ok := v.NthSet(-1); ok {
		t.Fatal("NthSet(-1) returned ok")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(16)
	v.Set(4)
	c := v.Clone()
	c.Set(5)
	if v.Get(5) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(4) {
		t.Fatal("Clone lost original bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(16)
	a.Set(1)
	b := New(16)
	b.Set(9)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatalf("CopyFrom mismatch: %s vs %s", a, b)
	}
}

func TestEqual(t *testing.T) {
	a := New(8)
	b := New(9)
	if a.Equal(b) {
		t.Fatal("vectors of different width compare equal")
	}
	c := New(8)
	a.Set(3)
	if a.Equal(c) {
		t.Fatal("differing vectors compare equal")
	}
	c.Set(3)
	if !a.Equal(c) {
		t.Fatal("identical vectors compare unequal")
	}
}

func TestString(t *testing.T) {
	v := New(4)
	v.Set(0)
	v.Set(2)
	if got := v.String(); got != "0101" {
		t.Fatalf("String = %q want 0101", got)
	}
}

func TestWord(t *testing.T) {
	v := New(8)
	v.Set(0)
	v.Set(7)
	if v.Word() != 0x81 {
		t.Fatalf("Word = %#x want 0x81", v.Word())
	}
	if New(0).Word() != 0 {
		t.Fatal("Word on empty vector != 0")
	}
}

// Property: FirstSet equals the minimum of the set indices.
func TestQuickFirstSetIsMin(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(300)
		min := -1
		for _, r := range raw {
			i := int(r) % 300
			v.Set(i)
			if min == -1 || i < min {
				min = i
			}
		}
		got, ok := v.FirstSet()
		if min == -1 {
			return !ok
		}
		return ok && got == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountDistinct(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(257)
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r) % 257
			v.Set(i)
			distinct[i] = true
		}
		return v.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And(a,b).Get(i) == a.Get(i) && b.Get(i) for all i.
func TestQuickAndSemantics(t *testing.T) {
	f := func(x, y []bool) bool {
		const width = 96
		a, b := New(width), New(width)
		for i := 0; i < width && i < len(x); i++ {
			if x[i] {
				a.Set(i)
			}
		}
		for i := 0; i < width && i < len(y); i++ {
			if y[i] {
				b.Set(i)
			}
		}
		out := New(width)
		out.And(a, b)
		for i := 0; i < width; i++ {
			if out.Get(i) != (a.Get(i) && b.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(5, 70)
	if m.Rows() != 5 || m.Width() != 70 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Width())
	}
	m.Row(2).Set(69)
	if !m.Row(2).Get(69) {
		t.Fatal("row mutation lost")
	}
	if m.Row(1).Get(69) || m.Row(3).Get(69) {
		t.Fatal("row mutation leaked into neighbors")
	}
	if m.Count() != 1 {
		t.Fatalf("Count = %d want 1", m.Count())
	}
	m.SetAll()
	if m.Count() != 5*70 {
		t.Fatalf("Count after SetAll = %d want %d", m.Count(), 5*70)
	}
	m.ClearAll()
	if m.Count() != 0 {
		t.Fatalf("Count after ClearAll = %d", m.Count())
	}
}

func TestMatrixRowOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 4)
	for _, r := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Row(%d) did not panic", r)
				}
			}()
			m.Row(r)
		}()
	}
}

func TestMatrixSnapshotRestore(t *testing.T) {
	m := NewMatrix(4, 33)
	m.SetAll()
	snap := m.Snapshot()
	m.Row(0).Clear(0)
	m.Row(3).Clear(32)
	if m.Count() == 4*33 {
		t.Fatal("mutations had no effect")
	}
	m.Restore(snap)
	if m.Count() != 4*33 {
		t.Fatalf("Restore did not recover state: count %d", m.Count())
	}
	// Snapshot must be a copy, not an alias.
	m.Row(1).Clear(5)
	m.Restore(snap)
	if !m.Row(1).Get(5) {
		t.Fatal("snapshot aliases live storage")
	}
}

func TestMatrixRestoreWrongShapePanics(t *testing.T) {
	m := NewMatrix(2, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with wrong length did not panic")
		}
	}()
	m.Restore(make([]uint64, 1))
}

func TestMatrixEqual(t *testing.T) {
	a := NewMatrix(2, 8)
	b := NewMatrix(2, 8)
	if !a.Equal(b) {
		t.Fatal("fresh equal matrices compare unequal")
	}
	a.Row(1).Set(3)
	if a.Equal(b) {
		t.Fatal("differing matrices compare equal")
	}
	c := NewMatrix(3, 8)
	if a.Equal(c) {
		t.Fatal("different shapes compare equal")
	}
}

// Property: a randomized sequence of row Set/Clear operations keeps matrix
// Count equal to a reference map implementation.
func TestQuickMatrixReference(t *testing.T) {
	f := func(ops []uint32) bool {
		const rows, width = 7, 37
		m := NewMatrix(rows, width)
		ref := map[[2]int]bool{}
		for _, op := range ops {
			r := int(op>>16) % rows
			i := int(op>>1) % width
			if op&1 == 0 {
				m.Row(r).Set(i)
				ref[[2]int{r, i}] = true
			} else {
				m.Row(r).Clear(i)
				delete(ref, [2]int{r, i})
			}
		}
		return m.Count() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndFirstSet64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u := New(64)
	d := New(64)
	for i := 0; i < 64; i++ {
		if rng.Intn(2) == 0 {
			u.Set(i)
		}
		if rng.Intn(2) == 0 {
			d.Set(i)
		}
	}
	out := New(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.And(u, d)
		out.FirstSet()
	}
}
