package bitvec

import "sync/atomic"

// Atomic operations for lock-free channel arbitration (internal/parsched).
//
// The paper's hardware arbitrates every switch of a level concurrently;
// these primitives let N software workers do the same on a shared Vector
// or Matrix: a CAS loop on the underlying uint64 word claims or returns a
// single bit without locks, and AndAtomic snapshots two vectors with
// atomic word loads so a worker's availability view is always composed of
// consistently read words (the view may still be stale — CAS claiming is
// what makes stale views harmless).
//
// Mixing atomic and plain operations on the same vector concurrently is
// a data race; a scheduling phase must be all-atomic or externally
// serialized.

// TryClearAtomic atomically clears bit i if it is set, using a CAS loop
// on the containing word. It reports whether this call cleared the bit —
// exactly one of several concurrent claimants succeeds. It panics if i is
// out of range.
func (v Vector) TryClearAtomic(i int) bool {
	v.check(i)
	addr := &v.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return true
		}
	}
}

// TrySetAtomic atomically sets bit i if it is clear (the inverse of
// TryClearAtomic). It reports whether this call set the bit. It panics if
// i is out of range.
func (v Vector) TrySetAtomic(i int) bool {
	v.check(i)
	addr := &v.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// AndAtomic stores the bitwise AND of a and b into v, reading a's and b's
// words with atomic loads. v must be owned by the caller (it is written
// with plain stores); a and b may be concurrently mutated by the atomic
// bit operations. All three must have the same width.
func (v Vector) AndAtomic(a, b Vector) {
	if a.width != v.width || b.width != v.width {
		panic("bitvec: AndAtomic width mismatch")
	}
	for i := range v.words {
		v.words[i] = atomic.LoadUint64(&a.words[i]) & atomic.LoadUint64(&b.words[i])
	}
}

// GetAtomic reports whether bit i is set, reading the containing word
// atomically. It panics if i is out of range.
func (v Vector) GetAtomic(i int) bool {
	v.check(i)
	return atomic.LoadUint64(&v.words[i/wordBits])&(1<<uint(i%wordBits)) != 0
}
