package federation

import (
	"context"
	"testing"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// weightedRouter builds a 2-plane router of FT(2,4,4) planes with the
// given weights.
func weightedRouter(t *testing.T, w0, w1 float64) *Router {
	t.Helper()
	cfg := Config{Planes: []PlaneConfig{
		{Name: "a", Weight: w0, Fabric: fabric.Config{Tree: topology.MustNew(2, 4, 4), BatchSize: 1}},
		{Name: "b", Weight: w1, Fabric: fabric.Config{Tree: topology.MustNew(2, 4, 4), BatchSize: 1}},
	}}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(context.Background()) })
	return r
}

// TestWeightedHashDistribution: under non-uniform weights the hash
// policy spreads first choices roughly proportionally to weight, stays
// deterministic per (src, dst) pair, and keeps every plane reachable
// as a failover candidate.
func TestWeightedHashDistribution(t *testing.T) {
	r := weightedRouter(t, 3, 1)
	if !r.weighted {
		t.Fatal("weights 3:1 did not mark the router weighted")
	}
	n := r.Nodes()
	first0, pairs := 0, 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			cand := []int{0, 1}
			r.orderPlanes(PolicyHash, cand, src, dst)
			again := []int{0, 1}
			r.orderPlanes(PolicyHash, again, src, dst)
			if cand[0] != again[0] || cand[1] != again[1] {
				t.Fatalf("hash order not deterministic for (%d,%d): %v vs %v", src, dst, cand, again)
			}
			if cand[0]+cand[1] != 1 {
				t.Fatalf("ordering lost a candidate: %v", cand)
			}
			pairs++
			if cand[0] == 0 {
				first0++
			}
		}
	}
	// Weight 3 of 4 total → expect ~75% of pairs to prefer plane 0.
	frac := float64(first0) / float64(pairs)
	if frac < 0.60 || frac > 0.90 {
		t.Errorf("plane 0 (weight 3) first for %.0f%% of %d pairs, want ~75%%", frac*100, pairs)
	}
}

// TestUniformWeightsKeepLegacyHash: equal (or defaulted) weights keep
// the original rotate-by-pair-hash ordering bit for bit.
func TestUniformWeightsKeepLegacyHash(t *testing.T) {
	for _, w := range []float64{0, 1, 2.5} {
		r := weightedRouter(t, w, w)
		if r.weighted {
			t.Fatalf("uniform weight %v marked the router weighted", w)
		}
		for _, pair := range [][2]int{{0, 1}, {3, 12}, {7, 2}} {
			cand := []int{0, 1}
			r.orderPlanes(PolicyHash, cand, pair[0], pair[1])
			want := pairHash(pair[0], pair[1]) % 2
			if cand[0] != want {
				t.Errorf("weight %v pair %v: first = %d, want rotate to %d", w, pair, cand[0], want)
			}
		}
	}
}

// TestWeightedLeastLoaded: least-loaded normalizes occupancy by weight,
// so at equal raw load the heavier plane sorts first; at zero load the
// tie breaks by plane index.
func TestWeightedLeastLoaded(t *testing.T) {
	r := weightedRouter(t, 1, 2)
	// Zero occupancy on both: scores tie, index order wins.
	cand := []int{0, 1}
	r.orderPlanes(PolicyLeastLoaded, cand, 0, 1)
	if cand[0] != 0 {
		t.Errorf("idle tie broke to plane %d, want 0", cand[0])
	}
	// Load each plane with one identical circuit so raw occupancy is
	// equal and nonzero; weight 2 then reads as half as loaded.
	for _, p := range r.planes {
		c, err := p.surf.Admit(context.Background(), 0, r.Nodes()-1)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Release()
	}
	if r.planes[0].surf.Occupancy() != r.planes[1].surf.Occupancy() {
		t.Fatalf("setup skew: occupancy %d vs %d",
			r.planes[0].surf.Occupancy(), r.planes[1].surf.Occupancy())
	}
	cand = []int{0, 1}
	r.orderPlanes(PolicyLeastLoaded, cand, 0, 1)
	if cand[0] != 1 {
		t.Errorf("equal load ordered plane %d first, want heavier plane 1", cand[0])
	}
}

// TestWeightDefaulting: nonpositive config weights become 1 at runtime.
func TestWeightDefaulting(t *testing.T) {
	r := weightedRouter(t, 0, 1)
	for i, p := range r.planes {
		if p.weight != 1 {
			t.Errorf("plane %d weight = %v, want 1", i, p.weight)
		}
	}
	if r.weighted {
		t.Error("defaulted weights marked the router weighted")
	}
}
