package federation

// Federated observability: router-level counters plus a per-plane
// breakdown, the shape ftserve's /stats serves and ftbench's -planes
// sweeps summarize.

import "repro/internal/fabric"

// PlaneStats is one plane's view in a federated snapshot.
type PlaneStats struct {
	Name string `json:"name"`
	// Healthy is the router's admission-control view: false while the
	// plane's breaker is open or half-open (out of candidate selection).
	Healthy bool `json:"healthy"`
	// Health is the EWMA outcome score in [0, 1] (1 = pristine) and
	// Breaker the circuit-breaker state ("closed", "open", "half-open");
	// see health.go. Degraded reports an injected slow-plane process.
	Health   float64 `json:"health"`
	Breaker  string  `json:"breaker"`
	Degraded bool    `json:"degraded,omitempty"`
	// Grants counts circuits the router placed on this plane (initial
	// admissions plus cross-plane re-admissions) — the load-spread
	// signal behind the imbalance ratio.
	Grants uint64 `json:"grants"`
	// Occupancy is the plane's live occupied-channel gauge.
	Occupancy int64 `json:"occupancy"`
	// Fabric is the plane manager's full snapshot.
	Fabric fabric.Stats `json:"fabric"`
}

// Stats is a consistent-enough snapshot of the router: counters are
// read atomically but not mutually atomic (a connection in flight may
// be counted offered and not yet granted).
type Stats struct {
	Policy string `json:"policy"`
	// Offered counts Connect calls that entered plane selection;
	// Granted/Rejected their outcomes (rejected = every candidate plane
	// denied). Failovers counts denials that moved an admission to
	// another candidate plane.
	Offered   uint64 `json:"offered"`
	Granted   uint64 `json:"granted"`
	Rejected  uint64 `json:"rejected"`
	Failovers uint64 `json:"failovers"`
	// Cross-plane migration accounting: every plane-terminal connection
	// with a live owner resolves into exactly one of Readmitted (moved
	// to a surviving plane) or Lost (ErrConnLost); PendingReadmits is
	// the in-flight difference.
	Readmitted      uint64 `json:"readmitted"`
	Lost            uint64 `json:"lost"`
	PendingReadmits int64  `json:"pending_readmits"`
	// FailoverBudgetExhausted counts admissions the failover token
	// bucket cut short (Config.FailoverBudget).
	FailoverBudgetExhausted uint64 `json:"failover_budget_exhausted,omitempty"`
	// Imbalance is the max/min ratio of per-plane grant counts, the
	// load-spread regression signal: 1.0 is a perfect spread. It is 0
	// (undefined) while any plane has zero grants, since the true ratio
	// is infinite and JSON cannot carry it.
	Imbalance float64      `json:"imbalance"`
	Planes    []PlaneStats `json:"planes"`
}

// Stats snapshots the router and every plane.
func (r *Router) Stats() Stats {
	s := Stats{
		Policy:                  r.cfg.Policy.String(),
		Offered:                 r.offered.Load(),
		Granted:                 r.granted.Load(),
		Rejected:                r.rejected.Load(),
		Failovers:               r.failovers.Load(),
		Readmitted:              r.readmitted.Load(),
		Lost:                    r.lost.Load(),
		PendingReadmits:         r.pendingReadmits.Load(),
		FailoverBudgetExhausted: r.failoverBudgetExhausted.Load(),
		Planes:                  make([]PlaneStats, len(r.planes)),
	}
	var minG, maxG uint64
	for i, p := range r.planes {
		g := p.grants.Load()
		// Snapshot the fabric first: Stats drains the plane's parked
		// releases, so the occupancy gauge it carries reflects every
		// Release that returned before this call.
		fb := p.surf.Stats()
		s.Planes[i] = PlaneStats{
			Name:      p.name,
			Healthy:   !p.ejectedNow(),
			Health:    p.healthNow(),
			Breaker:   breakerName(p.breaker.Load()),
			Degraded:  p.degraded.Load() != nil,
			Grants:    g,
			Occupancy: fb.Occupancy,
			Fabric:    fb,
		}
		if i == 0 || g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
	}
	if minG > 0 {
		s.Imbalance = float64(maxG) / float64(minG)
	}
	return s
}
