package federation

// The federated connection handle. It wraps the owning plane's
// connection and routes Release back to that plane — transparently
// following the connection when a plane failure migrated it, so the
// caller holds one stable handle across cross-plane re-admissions.

import (
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
)

// Handle is a granted federated circuit. Release it exactly once. A
// plane failure may migrate the circuit to a surviving plane (Plane and
// Ports change); Err reports whether it was lost for good.
type Handle struct {
	r        *Router
	src, dst int
	released atomic.Bool

	// mu guards the migration state. Lock order: mu before r.mu.
	mu       sync.Mutex
	conn     fabric.Conn // nil while migrating or after terminal/release
	plane    int         // index of the owning plane
	terminal error       // set once re-admission is exhausted
}

// Handle is itself a fabric.Conn: one plane and a federation of planes
// present the same circuit surface to callers.
var _ fabric.Conn = (*Handle)(nil)

// Src returns the source node.
func (h *Handle) Src() int { return h.src }

// Dst returns the destination node.
func (h *Handle) Dst() int { return h.dst }

// Plane returns the name of the plane currently carrying the circuit
// (the last one, after a terminal loss or release).
func (h *Handle) Plane() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r.planes[h.plane].name
}

// Ports returns the route on the owning plane, empty while the circuit
// is migrating between planes or after it died.
func (h *Handle) Ports() []int {
	h.mu.Lock()
	c := h.conn
	h.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Ports()
}

// Err reports why the circuit died: an error matching ErrConnLost once
// cross-plane re-admission is exhausted, the owning plane's terminal
// verdict if it retired the circuit itself, nil while the circuit is
// alive or migrating.
func (h *Handle) Err() error {
	h.mu.Lock()
	c, term := h.conn, h.terminal
	h.mu.Unlock()
	if term != nil {
		return term
	}
	if c != nil {
		return c.Err()
	}
	return nil
}

// Repairing reports whether the circuit is currently without a route:
// its plane's repair loop is re-admitting it, or the router is
// migrating it to another plane.
func (h *Handle) Repairing() bool {
	h.mu.Lock()
	c, term := h.conn, h.terminal
	h.mu.Unlock()
	if term != nil {
		return false
	}
	if c == nil {
		return !h.released.Load() // migrating between planes
	}
	return c.Repairing()
}

// Release returns the circuit's channels to its owning plane, exactly
// once; a second Release returns ErrReleased. Releasing a lost circuit
// returns its terminal error (matching ErrConnLost), so a drain loop
// learns which connections the plane failures took down; releasing a
// circuit that is mid-migration returns nil and the router puts the
// re-admitted circuit straight back.
func (h *Handle) Release() error {
	if !h.released.CompareAndSwap(false, true) {
		return ErrReleased
	}
	h.mu.Lock()
	c := h.conn
	h.conn = nil
	term := h.terminal
	h.mu.Unlock()
	if c != nil {
		h.r.dropConn(c)
		return c.Release()
	}
	return term
}
