// Package federation is the front-end router tier over N independent
// scheduling planes. Each plane is a full fabric.Manager — its own fat
// tree, link state, epoch queue, and release ring — so planes share no
// locks and scale admission throughput horizontally, the way real
// clusters scale past one fat-tree instance by running parallel planes
// (Solnushkin, PAPERS.md). The Router owns plane selection (a pluggable
// Policy over the live per-plane occupancy gauges), bounded cross-plane
// failover when a plane denies or is degraded, per-plane health with
// ejection and re-admission probing, and cross-plane re-admission of
// connections a plane's repair loop gives up on.
//
// A federated Handle wraps the granted plane's connection; Release
// routes back to the owning plane, transparently following the
// connection if a plane failure migrated it. A connection is lost only
// when every failover and re-admission avenue is exhausted, and then
// its Release reports ErrConnLost — the documented terminal error the
// chaos tests account against.
package federation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
)

// Defaults applied by New.
const (
	DefaultEjectAfter    = 3
	DefaultProbeInterval = 50 * time.Millisecond
	// DefaultHealthAlpha is the EWMA smoothing factor for the per-plane
	// health score; DefaultOpenBelow the score under which the breaker
	// opens regardless of streak (health.go).
	DefaultHealthAlpha = 0.2
	DefaultOpenBelow   = 0.15
)

// Sentinel errors. ErrReleased aliases the fabric sentinel so drain
// loops need only one errors.Is check across both tiers.
var (
	// ErrClosed is returned by Connect after Close.
	ErrClosed = errors.New("federation: router closed")
	// ErrNoPlanes is returned by New for an empty plane set.
	ErrNoPlanes = errors.New("federation: no planes configured")
	// ErrConnLost is the terminal verdict for a federated connection:
	// its plane revoked it, the plane-local repair loop gave up, and
	// cross-plane re-admission found no surviving plane that could route
	// it. Release of a lost handle returns an error matching this.
	ErrConnLost = errors.New("federation: connection lost")
	// ErrReleased reports a second Release of the same handle.
	ErrReleased = fabric.ErrReleased
)

// PlaneConfig names and parameterizes one plane.
type PlaneConfig struct {
	// Name identifies the plane in stats, fault targeting, and logs.
	// Empty names default to "plane<i>".
	Name string
	// Fabric configures the plane's manager. Tree is required; all
	// planes must agree on the node count (the federated address space).
	// OnConnTerminal is reserved for the router's re-admission hook: a
	// caller-set hook is chained after it.
	Fabric fabric.Config
	// Weight biases plane selection toward this plane for the hash and
	// least-loaded policies: a weight-2 plane attracts twice the traffic
	// of a weight-1 plane under hash, and is considered half as loaded
	// at equal occupancy under least-loaded. Zero or negative means 1;
	// round-robin and random ignore weights.
	Weight float64
}

// Config parameterizes a Router.
type Config struct {
	// Planes are the scheduling planes, at least one.
	Planes []PlaneConfig
	// Policy orders candidate planes per admission (default PolicyHash).
	Policy Policy
	// FailoverLimit bounds how many additional planes an admission may
	// try after its first choice denies (0 or negative: all remaining
	// candidates — failover is always bounded by the plane count).
	FailoverLimit int
	// EjectAfter is the consecutive-denial streak that ejects a plane
	// from candidate selection (default DefaultEjectAfter). An ejected
	// plane receives no traffic except single-flight re-admission
	// probes; any successful grant re-admits it.
	EjectAfter int
	// ProbeInterval is the minimum spacing between re-admission probes
	// of an ejected plane (default DefaultProbeInterval).
	ProbeInterval time.Duration
	// HealthAlpha is the EWMA smoothing factor for the per-plane health
	// score, in (0, 1]; larger reacts faster (default
	// DefaultHealthAlpha). Grants sample 1 (0.5 when slower than
	// LatencyBudget), failover-able denials sample 0.
	HealthAlpha float64
	// OpenBelow opens a plane's breaker when its health score sinks
	// under it, in [0, 1) — the adaptive complement to the EjectAfter
	// streak rule (default DefaultOpenBelow).
	OpenBelow float64
	// LatencyBudget, when positive, scores admission latency: a grant
	// slower than the budget counts as a degraded (0.5) health sample
	// instead of a healthy (1.0) one. Zero disables latency scoring.
	LatencyBudget time.Duration
	// FailoverBudget rate-limits failovers with a token bucket: every
	// candidate tried beyond an admission's first draws one token, and
	// an empty bucket ends the admission at its current verdict instead
	// of fanning out further — the cross-plane analogue of the fabric's
	// repair retry budget, bounding failover storms under correlated
	// plane failures. The zero value means unlimited (no budget);
	// Stats.FailoverBudgetExhausted counts admissions cut short.
	FailoverBudget fabric.Budget
}

// plane is one scheduling plane plus its router-side health state.
type plane struct {
	name   string
	surf   fabric.Surface
	weight float64 // selection bias, always > 0 (defaulted to 1)

	// grants counts circuits the router placed here (initial admissions
	// and cross-plane re-admissions) — the load-spread signal ftbench
	// reports as per-plane grant counts and imbalance.
	grants atomic.Uint64

	// Health (health.go): failStreak counts consecutive failover-able
	// denials; health is the EWMA score (math.Float64bits, starts at 1);
	// breaker is the circuit-breaker state; lastProbe gates single-flight
	// probe election (a CAS on the timestamp elects exactly one prober
	// per interval); admitSeq numbers this plane's admissions for the
	// injected DegradedPlane duty cycle; degraded holds that process.
	failStreak atomic.Int32
	health     atomic.Uint64
	hmu        sync.Mutex
	breaker    atomic.Int32
	lastProbe  atomic.Int64 // UnixNano of the last probe election
	admitSeq   atomic.Uint64
	degraded   atomic.Pointer[faults.DegradedPlane]
}

// Router is the federation front end. Create one with New; all methods
// may be called from any goroutine.
type Router struct {
	cfg    Config
	planes []*plane
	nodes  int

	// weighted is true when plane weights are non-uniform, switching
	// the hash policy to weighted rendezvous ordering.
	weighted bool

	closed  atomic.Bool
	closeMu sync.Once

	rr atomic.Uint64 // round-robin admission counter

	// mu guards byConn: the reverse index from a plane's live connection
	// to its federated handle, which the terminal hook uses to find the
	// handle to migrate. Lock order: Handle.mu before mu, never nested
	// the other way.
	mu     sync.Mutex
	byConn map[fabric.Conn]*Handle

	// fbudget is the failover token bucket (health.go); fbmu guards its
	// refill arithmetic.
	fbmu    sync.Mutex
	fbudget fBucket

	offered, granted, rejected atomic.Uint64
	failovers                  atomic.Uint64
	readmitted, lost           atomic.Uint64
	pendingReadmits            atomic.Int64
	failoverBudgetExhausted    atomic.Uint64
}

// New validates the config, builds every plane's manager, and returns
// the router. Stop it with Close.
func New(cfg Config) (*Router, error) {
	if len(cfg.Planes) == 0 {
		return nil, ErrNoPlanes
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.HealthAlpha < 0 || cfg.HealthAlpha > 1 {
		return nil, fmt.Errorf("federation: HealthAlpha %v outside [0, 1]", cfg.HealthAlpha)
	}
	if cfg.HealthAlpha == 0 {
		cfg.HealthAlpha = DefaultHealthAlpha
	}
	if cfg.OpenBelow < 0 || cfg.OpenBelow >= 1 {
		return nil, fmt.Errorf("federation: OpenBelow %v outside [0, 1)", cfg.OpenBelow)
	}
	if cfg.OpenBelow == 0 {
		cfg.OpenBelow = DefaultOpenBelow
	}
	if cfg.LatencyBudget < 0 {
		return nil, fmt.Errorf("federation: negative LatencyBudget %s", cfg.LatencyBudget)
	}
	switch {
	case cfg.FailoverBudget.Rate <= 0 && cfg.FailoverBudget.Burst != 0:
		return nil, fmt.Errorf("federation: FailoverBudget.Burst %d without a positive Rate (zero value means unlimited)",
			cfg.FailoverBudget.Burst)
	case cfg.FailoverBudget.Rate > 0 && cfg.FailoverBudget.Burst < 0:
		return nil, fmt.Errorf("federation: negative FailoverBudget.Burst %d", cfg.FailoverBudget.Burst)
	case cfg.FailoverBudget.Rate > 0 && cfg.FailoverBudget.Burst == 0:
		cfg.FailoverBudget.Burst = int(math.Ceil(cfg.FailoverBudget.Rate))
	}
	r := &Router{
		cfg:     cfg,
		byConn:  make(map[fabric.Conn]*Handle),
		fbudget: newFBucket(cfg.FailoverBudget, time.Now()),
	}
	names := make(map[string]struct{}, len(cfg.Planes))
	for i, pc := range cfg.Planes {
		name := pc.Name
		if name == "" {
			name = fmt.Sprintf("plane%d", i)
		}
		if _, dup := names[name]; dup {
			r.closePlanes()
			return nil, fmt.Errorf("federation: duplicate plane name %q", name)
		}
		names[name] = struct{}{}
		if pc.Fabric.Tree == nil {
			r.closePlanes()
			return nil, fmt.Errorf("federation: plane %q has no tree", name)
		}
		if i == 0 {
			r.nodes = pc.Fabric.Tree.Nodes()
		} else if n := pc.Fabric.Tree.Nodes(); n != r.nodes {
			r.closePlanes()
			return nil, fmt.Errorf("federation: plane %q has %d nodes, plane %q has %d — all planes must serve one address space",
				name, n, r.planes[0].name, r.nodes)
		}
		fc := pc.Fabric
		idx, user := i, fc.OnConnTerminal
		fc.OnConnTerminal = func(c fabric.Conn, cause error) {
			r.onTerminal(idx, c, cause)
			if user != nil {
				user(c, cause)
			}
		}
		m, err := fabric.New(fc)
		if err != nil {
			r.closePlanes()
			return nil, fmt.Errorf("federation: plane %q: %w", name, err)
		}
		weight := pc.Weight
		if weight <= 0 {
			weight = 1
		}
		p := &plane{name: name, surf: m, weight: weight}
		p.health.Store(math.Float64bits(1))
		r.planes = append(r.planes, p)
	}
	// With uniform weights the hash policy keeps its cheap
	// rotate-by-pair-hash form; any spread switches it to weighted
	// rendezvous scoring (policy.go).
	for _, p := range r.planes[1:] {
		if p.weight != r.planes[0].weight {
			r.weighted = true
			break
		}
	}
	return r, nil
}

// closePlanes tears down the planes built so far (New error paths).
func (r *Router) closePlanes() {
	for _, p := range r.planes {
		p.surf.Close(context.Background())
	}
}

// Nodes returns the federated address space size (every plane's tree
// serves the same node count).
func (r *Router) Nodes() int { return r.nodes }

// PlaneCount returns the number of planes.
func (r *Router) PlaneCount() int { return len(r.planes) }

// PlaneNames returns the plane names in index order.
func (r *Router) PlaneNames() []string {
	names := make([]string, len(r.planes))
	for i, p := range r.planes {
		names[i] = p.name
	}
	return names
}

// Plane returns the named plane's admission surface, for per-plane
// fault targeting and stats (ftserve's /fault with a "plane" field).
func (r *Router) Plane(name string) (fabric.Surface, bool) {
	if p := r.planeByName(name); p != nil {
		return p.surf, true
	}
	return nil, false
}

func (r *Router) planeByName(name string) *plane {
	for _, p := range r.planes {
		if p.name == name {
			return p
		}
	}
	return nil
}

// candidates assembles the plane try-order for one admission: healthy
// (breaker-closed) planes ordered by the policy, then any open or
// half-open planes whose probe is due (single-flight, last resort; the
// election moves an open breaker to half-open). With every plane open
// and no probe due, all planes are candidates — a total outage degrades
// to brute-force retry rather than refusing service on a fabric that
// may have just healed.
func (r *Router) candidates(src, dst int) []int {
	healthy := make([]int, 0, len(r.planes))
	var probes []int
	for i, p := range r.planes {
		if !p.ejectedNow() {
			healthy = append(healthy, i)
		} else if p.probeDue(r.cfg.ProbeInterval) {
			probes = append(probes, i)
		}
	}
	if len(healthy) == 0 && len(probes) == 0 {
		for i := range r.planes {
			healthy = append(healthy, i)
		}
	}
	r.orderPlanes(r.cfg.Policy, healthy, src, dst)
	return append(healthy, probes...)
}

// failoverable reports whether a plane denial should move the admission
// to the next candidate plane: scheduler denials (healthy or degraded)
// and a closed/draining plane fail over; caller-scoped errors (context
// cancellation, admission timeout) end the admission.
func failoverable(err error) bool {
	return errors.Is(err, fabric.ErrUnroutable) ||
		errors.Is(err, fabric.ErrUnroutableDegraded) ||
		errors.Is(err, fabric.ErrClosed)
}

// Connect admits a circuit on the first candidate plane that will take
// it, in policy order with bounded failover. It returns a federated
// Handle, the last plane's denial when every candidate refused, or the
// caller-scoped error (ctx, admission timeout) that ended the attempt.
func (r *Router) Connect(ctx context.Context, src, dst int) (*Handle, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	if src < 0 || src >= r.nodes || dst < 0 || dst >= r.nodes {
		return nil, fmt.Errorf("federation: endpoints (%d, %d) outside [0, %d)", src, dst, r.nodes)
	}
	r.offered.Add(1)
	c, pi, err := r.admitConn(ctx, src, dst, -1)
	if err != nil {
		if failoverable(err) {
			r.rejected.Add(1)
		}
		return nil, err
	}
	fh := &Handle{r: r, src: src, dst: dst, conn: c, plane: pi}
	r.register(c, pi, fh)
	return fh, nil
}

// register indexes a live connection back to its federated handle, then
// closes the grant/terminal race: a plane failure may have killed c
// after the grant but before this registration, in which case the
// terminal hook found no index entry and gave up — re-running it now
// finds the entry and migrates. The fh.conn identity check inside
// onTerminal makes the migration exactly-once even when both the hook
// goroutine and this re-check fire.
func (r *Router) register(c fabric.Conn, pi int, fh *Handle) {
	r.mu.Lock()
	r.byConn[c] = fh
	r.mu.Unlock()
	if cause := c.Err(); cause != nil {
		go r.onTerminal(pi, c, cause)
	}
	// The mirror race on the release side: a readmission graft may land
	// after the owner's Release already swept the index, leaving a stale
	// entry. Either this check or the Release's dropConn runs last;
	// whichever does removes it.
	if fh.released.Load() {
		r.dropConn(c)
	}
}

// admitConn runs one policy-ordered, bounded-failover admission pass,
// skipping the plane index in skip (a readmission avoids the plane that
// just lost the connection; -1 skips nothing). It returns the granted
// connection and the granting plane's index.
func (r *Router) admitConn(ctx context.Context, src, dst, skip int) (fabric.Conn, int, error) {
	order := r.candidates(src, dst)
	limit := r.cfg.FailoverLimit
	if limit <= 0 || limit > len(order) {
		limit = len(order)
	} else {
		limit++ // the first choice plus FailoverLimit failovers
	}
	var lastErr error
	tried := 0
	for _, pi := range order {
		if pi == skip {
			continue
		}
		if tried >= limit {
			break
		}
		// Every candidate beyond the first draws from the failover
		// budget; an empty bucket ends the admission at the verdict it
		// has rather than fanning the failure out across more planes.
		if tried > 0 && !r.takeFailoverToken() {
			r.failoverBudgetExhausted.Add(1)
			break
		}
		tried++
		p := r.planes[pi]
		// Injected slow-plane process: a duty-cycle fraction of this
		// plane's admissions pay the configured latency up front, which
		// the health score then observes like any organic slowness.
		start := time.Now()
		if dp := p.degraded.Load(); dp != nil && dp.SlowAt(p.admitSeq.Add(1)-1) {
			sleepInjected(ctx, time.Duration(dp.AdmitLatency))
		}
		c, err := p.surf.Admit(ctx, src, dst)
		if err == nil {
			slow := r.cfg.LatencyBudget > 0 && time.Since(start) > r.cfg.LatencyBudget
			p.noteSuccess(r.cfg.HealthAlpha, slow)
			p.grants.Add(1)
			r.granted.Add(1)
			return c, pi, nil
		}
		if !failoverable(err) {
			return nil, -1, err
		}
		p.noteFailure(r.cfg.HealthAlpha, int32(r.cfg.EjectAfter), r.cfg.OpenBelow)
		lastErr = err
		if tried < limit {
			r.failovers.Add(1)
		}
	}
	if lastErr == nil {
		// Every candidate was the skipped plane (1-plane federation).
		lastErr = fmt.Errorf("federation: no candidate plane: %w", fabric.ErrUnroutable)
	}
	return nil, -1, lastErr
}

// onTerminal is each plane's OnConnTerminal hook: the plane's repair
// loop just gave up on c for good. If a live federated handle still
// owns c, migrate the connection to a surviving plane; otherwise the
// owner already released it and there is nothing to save. Runs on the
// hook's own goroutine.
func (r *Router) onTerminal(owner int, c fabric.Conn, cause error) {
	r.mu.Lock()
	fh := r.byConn[c]
	delete(r.byConn, c)
	r.mu.Unlock()
	if fh == nil {
		return
	}
	fh.mu.Lock()
	if fh.conn != c {
		fh.mu.Unlock()
		return
	}
	fh.conn = nil // the dead conn needs no Release; its plane retired it
	fh.mu.Unlock()
	if fh.released.Load() {
		return
	}
	r.pendingReadmits.Add(1)
	defer r.pendingReadmits.Add(-1)
	nc, pi, err := r.admitConn(context.Background(), fh.src, fh.dst, owner)
	if err != nil {
		fh.mu.Lock()
		if fh.released.Load() {
			// The owner tore the circuit down mid-migration: nothing was
			// lost — its channels were already returned at revocation.
			fh.mu.Unlock()
			return
		}
		fh.terminal = fmt.Errorf("%w: %d→%d revoked on plane %q (%v); re-admission failed: %v",
			ErrConnLost, fh.src, fh.dst, r.planes[owner].name, cause, err)
		fh.mu.Unlock()
		r.lost.Add(1)
		return
	}
	// Graft the new connection onto the surviving handle — unless the
	// owner released it while the readmission was in flight, in which
	// case the fresh circuit goes straight back.
	fh.mu.Lock()
	if fh.released.Load() {
		fh.mu.Unlock()
		nc.Release()
		return
	}
	fh.conn = nc
	fh.plane = pi
	fh.mu.Unlock()
	r.readmitted.Add(1)
	r.register(nc, pi, fh)
}

// dropConn removes a connection from the reverse index.
func (r *Router) dropConn(c fabric.Conn) {
	r.mu.Lock()
	delete(r.byConn, c)
	r.mu.Unlock()
}

// KillPlane takes a whole plane out of service: it is ejected from
// candidate selection immediately, then every switch above level 0
// fails, which masks every channel, revokes every routed connection,
// and lets the plane-local repair loops conclude ErrUnroutableDegraded
// — at which point the router's terminal hook migrates each connection
// to a surviving plane. The chaos tests' plane-failure primitive.
func (r *Router) KillPlane(name string) error {
	p := r.planeByName(name)
	if p == nil {
		return fmt.Errorf("federation: unknown plane %q", name)
	}
	p.eject()
	tree := p.surf.Tree()
	var fs faults.FaultSet
	for lvl := 1; lvl < tree.Levels(); lvl++ {
		for sw := 0; sw < tree.SwitchesAt(lvl); sw++ {
			fs.Switches = append(fs.Switches, faults.SwitchFault{Level: lvl, Switch: sw})
		}
	}
	_, _, err := p.surf.Fail(&fs)
	return err
}

// RepairPlane reverses KillPlane (and any other faults or injected
// degradation on the plane): every failed channel returns to service,
// quarantines lift, the slow-plane process is removed, and the plane
// rejoins candidate selection immediately with a pristine health score.
func (r *Router) RepairPlane(name string) error {
	p := r.planeByName(name)
	if p == nil {
		return fmt.Errorf("federation: unknown plane %q", name)
	}
	p.surf.RepairAll()
	p.surf.ClearQuarantine()
	p.degraded.Store(nil)
	p.resetHealth()
	return nil
}

// Close stops admission and drains every plane concurrently, bounded by
// ctx: slow planes drain in parallel, so the deadline applies to the
// slowest plane rather than the sum. In-flight cross-plane readmissions
// fail fast once the planes refuse intake and are accounted as lost.
// Close is idempotent; held handles stay releasable after it returns.
func (r *Router) Close(ctx context.Context) error {
	r.closeMu.Do(func() { r.closed.Store(true) })
	errs := make([]error, len(r.planes))
	var wg sync.WaitGroup
	for i, p := range r.planes {
		wg.Add(1)
		go func(i int, p *plane) {
			defer wg.Done()
			errs[i] = p.surf.Close(ctx)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("federation: draining plane %q: %w", r.planes[i].name, err)
		}
	}
	return nil
}
