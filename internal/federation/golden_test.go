package federation

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/topology"
)

// goldenSpecs derives one deterministic spec per registered scheduler
// family (default seeds are fixed, so a spec names a reproducible
// engine). The racy parallel mode is the one intentionally
// nondeterministic engine and is excluded.
func goldenSpecs(t *testing.T) []string {
	t.Helper()
	var specs []string
	for _, in := range sched.List() {
		switch in.Family {
		case "backtrack":
			specs = append(specs, "backtrack,depth=2")
		case "stale":
			specs = append(specs, "stale,window=8")
		case "parallel":
			specs = append(specs, "parallel,mode=deterministic,workers=2")
		default:
			specs = append(specs, in.Family)
		}
	}
	if len(specs) < 5 {
		t.Fatalf("registry shrank to %d families: %v", len(specs), specs)
	}
	return specs
}

// lcg is a tiny deterministic generator so both fabrics see the exact
// same request history.
type lcg uint64

func (g *lcg) next(n int) int {
	*g = *g*6364136223846793005 + 1442695040888963407
	return int((uint64(*g) >> 33) % uint64(n))
}

// TestGolden1PlaneMatchesBareManager pins the federation's zero-cost
// abstraction claim: a 1-plane federation must be bit-identical to a
// bare fabric.Manager — same grant/deny verdicts, same routes, same
// occupancy — across every registry scheduler family, driven by one
// deterministic connect/release history with BatchSize 1 (every request
// its own epoch, so epoch composition cannot diverge).
func TestGolden1PlaneMatchesBareManager(t *testing.T) {
	for _, spec := range goldenSpecs(t) {
		t.Run(spec, func(t *testing.T) {
			const l, m, w = 3, 4, 2
			bare, err := fabric.New(fabric.Config{
				Tree: topology.MustNew(l, m, w), SchedulerSpec: spec, BatchSize: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bare.Close(context.Background())
			fed, err := New(Config{Planes: []PlaneConfig{{
				Name: "only",
				Fabric: fabric.Config{
					Tree: topology.MustNew(l, m, w), SchedulerSpec: spec, BatchSize: 1,
				},
			}}})
			if err != nil {
				t.Fatal(err)
			}
			defer fed.Close(context.Background())

			nodes := bare.Tree().Nodes()
			var g1, g2 lcg
			var heldBare []*fabric.Handle
			var heldFed []*Handle
			ctx := context.Background()
			for step := 0; step < 300; step++ {
				if len(heldBare) > 0 && step%3 == 2 {
					hb, hf := heldBare[0], heldFed[0]
					heldBare, heldFed = heldBare[1:], heldFed[1:]
					if e1, e2 := hb.Release(), hf.Release(); (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: release diverged: bare %v, fed %v", step, e1, e2)
					}
					continue
				}
				src, dst := g1.next(nodes), g1.next(nodes)
				if s2, d2 := g2.next(nodes), g2.next(nodes); s2 != src || d2 != dst {
					t.Fatalf("generator drift at step %d", step)
				}
				hb, e1 := bare.Connect(ctx, src, dst)
				hf, e2 := fed.Connect(ctx, src, dst)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d (%d→%d): verdicts diverged: bare %v, fed %v", step, src, dst, e1, e2)
				}
				if e1 != nil {
					if !errors.Is(e2, fabric.ErrUnroutable) {
						t.Fatalf("step %d: federated denial %v does not match ErrUnroutable", step, e2)
					}
					continue
				}
				if p1, p2 := fmt.Sprint(hb.Ports()), fmt.Sprint(hf.Ports()); p1 != p2 {
					t.Fatalf("step %d (%d→%d): routes diverged: bare %v, fed %v", step, src, dst, p1, p2)
				}
				heldBare = append(heldBare, hb)
				heldFed = append(heldFed, hf)
			}
			sb := bare.Stats()
			sf := fed.Stats().Planes[0].Fabric
			if sb.Granted != sf.Granted || sb.Rejected != sf.Rejected || sb.Active != sf.Active {
				t.Errorf("counters diverged: bare granted/rejected/active %d/%d/%d, fed %d/%d/%d",
					sb.Granted, sb.Rejected, sb.Active, sf.Granted, sf.Rejected, sf.Active)
			}
			if sb.Occupancy != sf.Occupancy {
				t.Errorf("occupancy diverged: bare %d, fed %d", sb.Occupancy, sf.Occupancy)
			}
		})
	}
}
