package federation

import (
	"context"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/topology"
)

// planeStats fetches one plane's snapshot by name.
func planeStats(t *testing.T, r *Router, name string) PlaneStats {
	t.Helper()
	for _, ps := range r.Stats().Planes {
		if ps.Name == name {
			return ps
		}
	}
	t.Fatalf("no plane %q in stats", name)
	return PlaneStats{}
}

// TestBreakerStateMachine drives the full circuit: closed → open on a
// denial streak, a failed half-open probe re-opens, a granted probe
// closes. The streak rule (EjectAfter) is exercised with the health
// rule parked out of the way.
func TestBreakerStateMachine(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.Policy = PolicyRoundRobin
		c.EjectAfter = 3
		c.ProbeInterval = time.Hour
		c.OpenBelow = 0.000001 // health rule effectively off
	})
	if ps := planeStats(t, r, "plane0"); ps.Breaker != "closed" || ps.Health != 1 {
		t.Fatalf("fresh plane: breaker %q health %v, want closed/1", ps.Breaker, ps.Health)
	}

	// Saturate (0,2)'s only route on plane 0: it denies organically.
	p0, _ := r.Plane("plane0")
	blocker0, err := p0.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin alternates, so 6 admissions land 3 denials on plane 0.
	for i := 0; i < 6; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	ps := planeStats(t, r, "plane0")
	if ps.Breaker != "open" || ps.Healthy {
		t.Fatalf("after streak: breaker %q healthy %v, want open/false", ps.Breaker, ps.Healthy)
	}
	if ps.Health >= 1 {
		t.Fatalf("denials did not decay health: %v", ps.Health)
	}
	if ps := planeStats(t, r, "plane1"); ps.Breaker != "closed" {
		t.Fatalf("survivor breaker %q, want closed", ps.Breaker)
	}

	// Saturate plane 1 too; with probes gated the admission must fail.
	p1, _ := r.Plane("plane1")
	blocker1, err := p1.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker1.Release()
	if _, err := r.Connect(context.Background(), 0, 2); err == nil {
		t.Fatal("admission succeeded with probes gated and both planes saturated")
	}

	// Open the probe gate while plane 0 is still saturated: the elected
	// half-open probe fails and the breaker re-opens.
	r.cfg.ProbeInterval = time.Nanosecond
	if _, err := r.Connect(context.Background(), 0, 2); err == nil {
		t.Fatal("admission succeeded with both planes saturated")
	}
	if ps := planeStats(t, r, "plane0"); ps.Breaker != "open" {
		t.Fatalf("failed probe left breaker %q, want open", ps.Breaker)
	}

	// Free plane 0: the next probe grants and the breaker closes.
	blocker0.Release()
	h, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if got := h.Plane(); got != "plane0" {
		t.Fatalf("probe admission landed on %q, want plane0", got)
	}
	ps = planeStats(t, r, "plane0")
	if ps.Breaker != "closed" || !ps.Healthy {
		t.Fatalf("granted probe left breaker %q healthy %v, want closed/true", ps.Breaker, ps.Healthy)
	}
}

// TestHealthScoreOpensBreaker pins the adaptive rule the streak cannot
// express: with EjectAfter out of reach, enough score decay alone
// (health < OpenBelow) opens the breaker.
func TestHealthScoreOpensBreaker(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.Policy = PolicyRoundRobin
		c.EjectAfter = 100 // streak rule out of reach
		c.ProbeInterval = time.Hour
		c.HealthAlpha = 0.5
		c.OpenBelow = 0.3 // 1 → 0.5 → 0.25 < 0.3 on the second denial
	})
	p0, _ := r.Plane("plane0")
	blocker, err := p0.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	for i := 0; i < 4; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	ps := planeStats(t, r, "plane0")
	if ps.Breaker != "open" {
		t.Fatalf("health %v below OpenBelow but breaker %q", ps.Health, ps.Breaker)
	}
	if ps.Health > 0.3 {
		t.Fatalf("health %v, want < 0.3 after two denials at alpha 0.5", ps.Health)
	}
}

// TestDegradedPlaneMarksSlowGrants injects a DegradedPlane process and
// checks the latency budget demotes its grants to half-credit health
// samples while the plane stays in service.
func TestDegradedPlaneMarksSlowGrants(t *testing.T) {
	r := testRouter(t, 1, func(c *Config) {
		c.HealthAlpha = 0.5
		c.LatencyBudget = time.Millisecond
	})
	if err := r.SetDegraded("plane0", faults.DegradedPlane{
		AdmitLatency: faults.Duration(5 * time.Millisecond),
		DutyCycle:    1, // every admission pays
	}); err != nil {
		t.Fatal(err)
	}
	if dp := r.Degraded("plane0"); dp == nil || dp.Plane != "plane0" {
		t.Fatalf("Degraded() = %+v", dp)
	}

	h, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	ps := planeStats(t, r, "plane0")
	if !ps.Degraded {
		t.Fatal("stats do not mark the plane degraded")
	}
	if ps.Breaker != "closed" || !ps.Healthy {
		t.Fatalf("slow-but-alive plane: breaker %q healthy %v, want closed/true", ps.Breaker, ps.Healthy)
	}
	// One slow grant at alpha 0.5: health 1 → 0.75.
	if ps.Health >= 1 || ps.Health < 0.5 {
		t.Fatalf("health after one slow grant = %v, want 0.75", ps.Health)
	}

	// Clearing the process restores fast grants; health recovers.
	if err := r.ClearDegraded("plane0"); err != nil {
		t.Fatal(err)
	}
	if r.Degraded("plane0") != nil {
		t.Fatal("process survived ClearDegraded")
	}
	low := ps.Health
	for i := 0; i < 4; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	ps = planeStats(t, r, "plane0")
	if ps.Degraded || ps.Health <= low {
		t.Fatalf("health did not recover after ClearDegraded: %v → %v", low, ps.Health)
	}

	// Validation and name resolution.
	if err := r.SetDegraded("plane0", faults.DegradedPlane{DutyCycle: 2}); err == nil {
		t.Error("invalid duty cycle accepted")
	}
	if err := r.SetDegraded("nope", faults.DegradedPlane{DutyCycle: 0.5}); err == nil {
		t.Error("unknown plane accepted")
	}
	if err := r.ClearDegraded("nope"); err == nil {
		t.Error("ClearDegraded(nope) succeeded")
	}
	if r.Degraded("nope") != nil {
		t.Error("Degraded(nope) returned a process")
	}
}

// TestRepairPlaneResetsGrayState checks RepairPlane's postcondition:
// degraded process cleared, health pristine, breaker closed.
func TestRepairPlaneResetsGrayState(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.ProbeInterval = time.Hour
	})
	if err := r.SetDegraded("plane0", faults.DegradedPlane{DutyCycle: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.KillPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	ps := planeStats(t, r, "plane0")
	if ps.Breaker != "open" || !ps.Degraded {
		t.Fatalf("killed degraded plane: %+v", ps)
	}
	if err := r.RepairPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	ps = planeStats(t, r, "plane0")
	if ps.Breaker != "closed" || ps.Health != 1 || ps.Degraded || !ps.Healthy {
		t.Fatalf("RepairPlane left gray state: %+v", ps)
	}
}

// TestFailoverBudgetExhaustion bounds cross-plane retries: with a
// one-token budget the first failover succeeds and the second admission
// stops at its first denial instead of fanning out.
func TestFailoverBudgetExhaustion(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.Policy = PolicyHash // fixed (src,dst) → fixed first-choice plane
		c.EjectAfter = 100    // keep the denying plane in candidates
		c.ProbeInterval = time.Hour
		c.FailoverBudget = fabric.Budget{Rate: 0.0001, Burst: 1}
	})
	// Learn the hash policy's first choice for (0,2), then saturate it.
	probe, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := probe.Plane()
	probe.Release()
	pf, _ := r.Plane(first)
	blocker, err := pf.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()

	// Failover 1: pays the only token, lands on the other plane.
	h, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatalf("budgeted failover failed: %v", err)
	}
	defer h.Release()
	if h.Plane() == first {
		t.Fatalf("failover landed on the saturated plane %q", first)
	}
	if got := r.Stats().FailoverBudgetExhausted; got != 0 {
		t.Fatalf("exhausted after first failover: %d", got)
	}

	// Failover 2: the bucket is empty — the admission ends at the first
	// denial rather than trying the healthy plane.
	if _, err := r.Connect(context.Background(), 0, 2); err == nil {
		t.Fatal("admission succeeded past an exhausted failover budget")
	}
	s := r.Stats()
	if s.FailoverBudgetExhausted != 1 {
		t.Fatalf("FailoverBudgetExhausted = %d, want 1", s.FailoverBudgetExhausted)
	}

	// An unlimited (zero-value) budget is the default contract.
	if r2 := testRouter(t, 2, nil); r2.fbudget.unlimited != true {
		t.Fatal("zero-value FailoverBudget is not unlimited")
	}
}

// TestGrayConfigValidationFederation tables the new Config knobs.
func TestGrayConfigValidationFederation(t *testing.T) {
	for name, mod := range map[string]func(*Config){
		"alpha too big":   func(c *Config) { c.HealthAlpha = 1.5 },
		"alpha negative":  func(c *Config) { c.HealthAlpha = -0.1 },
		"open below 1+":   func(c *Config) { c.OpenBelow = 1 },
		"open below neg":  func(c *Config) { c.OpenBelow = -0.2 },
		"latency budget":  func(c *Config) { c.LatencyBudget = -time.Second },
		"failover budget": func(c *Config) { c.FailoverBudget = fabric.Budget{Rate: -1, Burst: 3} },
	} {
		cfg := Config{Planes: []PlaneConfig{
			{Fabric: fabric.Config{Tree: topology.MustNew(2, 2, 1), BatchSize: 1}},
		}}
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Defaults normalize in.
	r := testRouter(t, 1, nil)
	if r.cfg.HealthAlpha != DefaultHealthAlpha || r.cfg.OpenBelow != DefaultOpenBelow {
		t.Errorf("defaults = %v/%v, want %v/%v",
			r.cfg.HealthAlpha, r.cfg.OpenBelow, DefaultHealthAlpha, DefaultOpenBelow)
	}
}
