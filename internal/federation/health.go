package federation

// Adaptive plane health: an EWMA score fed by admission outcomes and a
// half-open circuit breaker, replacing the binary ejected bit of the
// original router. The streak rule is preserved — EjectAfter
// consecutive failover-able denials still opens the breaker — but the
// score adds what a streak cannot see: a plane that interleaves slow or
// failing admissions with occasional grants decays toward 0 and opens
// once it sinks under Config.OpenBelow, and the score itself is
// exported per plane for operators (/stats, /healthz).
//
// Breaker state machine:
//
//	closed ──(streak ≥ EjectAfter, or health < OpenBelow)──▶ open
//	open ──(ProbeInterval elapsed; single-flight election)──▶ half-open
//	half-open ──grant──▶ closed          half-open ──denial──▶ open
//
// While open or half-open the plane receives no traffic except the
// elected probe admission (at most one per ProbeInterval, last in the
// candidate order). Any grant closes the breaker; a failed probe
// re-opens it and restarts the probe clock.

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
)

// Breaker states (plane.breaker).
const (
	bClosed int32 = iota
	bOpen
	bHalfOpen
)

// breakerName renders a breaker state for stats.
func breakerName(s int32) string {
	switch s {
	case bClosed:
		return "closed"
	case bOpen:
		return "open"
	case bHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", s)
	}
}

// healthNow returns the plane's current EWMA health score in [0, 1].
func (p *plane) healthNow() float64 {
	return math.Float64frombits(p.health.Load())
}

// bumpHealth folds one outcome sample into the EWMA and returns the new
// score. hmu serializes the read-modify-write; the atomic keeps
// lock-free readers (stats, tests) safe.
func (p *plane) bumpHealth(alpha, sample float64) float64 {
	p.hmu.Lock()
	h := math.Float64frombits(p.health.Load())
	h = (1-alpha)*h + alpha*sample
	p.health.Store(math.Float64bits(h))
	p.hmu.Unlock()
	return h
}

// noteSuccess records a grant: the streak resets, the score pulls
// toward 1 (or only 0.5 for a grant slower than the latency budget —
// alive, but degraded), and any open or half-open breaker closes.
func (p *plane) noteSuccess(alpha float64, slow bool) {
	p.failStreak.Store(0)
	sample := 1.0
	if slow {
		sample = 0.5
	}
	p.bumpHealth(alpha, sample)
	p.breaker.Store(bClosed)
}

// noteFailure records a failover-able denial: the score pulls toward 0,
// and the breaker opens when the streak or score rule trips — or
// immediately when this was a half-open probe, restarting the probe
// clock.
func (p *plane) noteFailure(alpha float64, ejectAfter int32, openBelow float64) {
	streak := p.failStreak.Add(1)
	h := p.bumpHealth(alpha, 0)
	switch p.breaker.Load() {
	case bHalfOpen:
		p.eject() // the probe failed; wait out another interval
	case bClosed:
		if streak >= ejectAfter || h < openBelow {
			p.eject()
		}
	}
}

// eject opens the breaker and starts the probe clock: the first
// re-admission probe is due one ProbeInterval later, not immediately.
func (p *plane) eject() {
	p.lastProbe.Store(time.Now().UnixNano())
	p.breaker.Store(bOpen)
}

// ejectedNow reports whether the plane is out of normal candidate
// selection (breaker open or half-open).
func (p *plane) ejectedNow() bool { return p.breaker.Load() != bClosed }

// probeDue elects at most one re-admission probe per interval; the
// winning election moves an open breaker to half-open.
func (p *plane) probeDue(interval time.Duration) bool {
	now := time.Now().UnixNano()
	last := p.lastProbe.Load()
	if now-last < int64(interval) || !p.lastProbe.CompareAndSwap(last, now) {
		return false
	}
	p.breaker.CompareAndSwap(bOpen, bHalfOpen)
	return true
}

// resetHealth restores a plane to pristine: score 1, streak 0, breaker
// closed (RepairPlane's postcondition).
func (p *plane) resetHealth() {
	p.failStreak.Store(0)
	p.health.Store(math.Float64bits(1))
	p.breaker.Store(bClosed)
}

// SetDegraded installs (or replaces) a slow-but-alive process on the
// named plane: a DutyCycle fraction of its admissions incur
// AdmitLatency before reaching the plane. The injected latency is
// observed by the EWMA score exactly like organic slowness — paired
// with Config.LatencyBudget this is the gray-failure drill ftserve's
// degrade verb and ftbench -gray run.
func (r *Router) SetDegraded(name string, dp faults.DegradedPlane) error {
	p := r.planeByName(name)
	if p == nil {
		return fmt.Errorf("federation: unknown plane %q", name)
	}
	if err := dp.Validate(); err != nil {
		return err
	}
	dp.Plane = name
	p.degraded.Store(&dp)
	return nil
}

// ClearDegraded removes the plane's injected slow-plane process.
func (r *Router) ClearDegraded(name string) error {
	p := r.planeByName(name)
	if p == nil {
		return fmt.Errorf("federation: unknown plane %q", name)
	}
	p.degraded.Store(nil)
	return nil
}

// Degraded returns the plane's injected slow-plane process, nil when
// none is installed.
func (r *Router) Degraded(name string) *faults.DegradedPlane {
	if p := r.planeByName(name); p != nil {
		return p.degraded.Load()
	}
	return nil
}

// takeFailoverToken draws from the router's failover budget; unlimited
// when no budget is configured.
func (r *Router) takeFailoverToken() bool {
	r.fbmu.Lock()
	ok := r.fbudget.take(time.Now())
	r.fbmu.Unlock()
	return ok
}

// fBucket is the federation-side token bucket (mirrors fabric's; kept
// local because fabric does not export its runtime bucket state).
type fBucket struct {
	rate      float64
	burst     float64
	tokens    float64
	last      time.Time
	unlimited bool
}

func newFBucket(b fabric.Budget, now time.Time) fBucket {
	if b.Rate <= 0 {
		return fBucket{unlimited: true}
	}
	return fBucket{rate: b.Rate, burst: float64(b.Burst), tokens: float64(b.Burst), last: now}
}

func (b *fBucket) take(now time.Time) bool {
	if b.unlimited {
		return true
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*dt.Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// sleepInjected waits out an injected admit latency, returning early if
// the caller's context ends first (the admission then fails on the
// context as usual).
func sleepInjected(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
