package federation

// The on-disk multi-plane config grammar: what `fttopo gen` emits and
// `ftserve -config` / `ftbench -planes-config` load. JSON with duration
// fields as Go duration strings ("2ms"), validated against the
// scheduler registry and the topology constructor before any plane is
// built.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/topology"
)

// PlaneSpec describes one plane in a config file.
type PlaneSpec struct {
	// Name identifies the plane (default "plane<i>").
	Name string `json:"name,omitempty"`
	// Levels/Arity/Width are the FT(l, m, w) shape: l switch levels,
	// m children per switch, w parents per switch.
	Levels int `json:"levels"`
	Arity  int `json:"arity"`
	Width  int `json:"width"`
	// Scheduler is an internal/sched registry spec (e.g.
	// "level-wise,rollback", "backtrack,depth=2"); empty means the
	// fabric default.
	Scheduler string `json:"scheduler,omitempty"`
	// Queue/ring knobs; zero means the fabric default.
	BatchSize    int    `json:"batch_size,omitempty"`
	MaxWait      string `json:"max_wait,omitempty"`
	QueueLimit   int    `json:"queue_limit,omitempty"`
	AdmitTimeout string `json:"admit_timeout,omitempty"`
	ReleaseRing  int    `json:"release_ring,omitempty"`
	// Repair-loop knobs; zero means the fabric default.
	RepairRetries int    `json:"repair_retries,omitempty"`
	RepairBackoff string `json:"repair_backoff,omitempty"`
	// Gray-failure knobs (fabric.Config). FlapThreshold > 0 enables flap
	// damping with the given score threshold; the half-life and
	// probation durations default when empty. RepairBudgetRate/Burst map
	// to fabric.Config.RepairBudget (0/0 = the fabric default; a
	// negative rate disables the retry limit).
	FlapThreshold       float64 `json:"flap_threshold,omitempty"`
	FlapHalfLife        string  `json:"flap_half_life,omitempty"`
	QuarantineProbation string  `json:"quarantine_probation,omitempty"`
	RepairBudgetRate    float64 `json:"repair_budget_rate,omitempty"`
	RepairBudgetBurst   int     `json:"repair_budget_burst,omitempty"`
	// Parallel-engine knobs (see fabric.Config). ParallelMode selects
	// deterministic, racy, or shard arbitration; ParallelSteal enables
	// work stealing (shard mode only).
	ParallelThreshold int    `json:"parallel_threshold,omitempty"`
	ParallelWorkers   int    `json:"parallel_workers,omitempty"`
	ParallelRacy      bool   `json:"parallel_racy,omitempty"`
	ParallelMode      string `json:"parallel_mode,omitempty"`
	ParallelSteal     bool   `json:"parallel_steal,omitempty"`
	// Incremental/ReuseCost map to fabric.Config: delta epochs with
	// carry-forward grants, and the reconfiguration-cost-aware port
	// score. reuse_cost requires incremental (or name both in the
	// scheduler spec instead, e.g. "levelwise,incremental,reuse-cost=4").
	Incremental bool `json:"incremental,omitempty"`
	ReuseCost   int  `json:"reuse_cost,omitempty"`
	// Admission-pipeline knobs (fabric.Config). DeliveryPipeline sizes
	// the verdict-delivery worker's spare buffers (0 = default on,
	// negative = synchronous delivery); DrainWorker dedicates a
	// goroutine to release-ring retirement (requires the ring);
	// StatsSnapshots serves Stats from the lock-free seqlock snapshot.
	DeliveryPipeline int  `json:"delivery_pipeline,omitempty"`
	DrainWorker      bool `json:"drain_worker,omitempty"`
	StatsSnapshots   bool `json:"stats_snapshots,omitempty"`
	// Weight biases plane-selection toward this plane under the hash and
	// least-loaded policies (a weight-2 plane draws roughly twice the
	// traffic of a weight-1 plane). Zero or omitted means 1; round-robin
	// and random ignore weights.
	Weight float64 `json:"weight,omitempty"`
}

// FileConfig is a serialized federation: the router knobs plus one spec
// per plane.
type FileConfig struct {
	// Policy is the plane-selection policy name
	// (hash|round-robin|random|least-loaded); empty means hash.
	Policy string `json:"policy,omitempty"`
	// FailoverLimit/EjectAfter/ProbeInterval map to Config; zero means
	// the federation default.
	FailoverLimit int    `json:"failover_limit,omitempty"`
	EjectAfter    int    `json:"eject_after,omitempty"`
	ProbeInterval string `json:"probe_interval,omitempty"`
	// Adaptive-health knobs (Config; health.go): the EWMA smoothing
	// factor, the breaker-opening score, the latency budget that marks a
	// grant degraded, and the failover token bucket (0/0 = unlimited).
	HealthAlpha         float64     `json:"health_alpha,omitempty"`
	OpenBelow           float64     `json:"open_below,omitempty"`
	LatencyBudget       string      `json:"latency_budget,omitempty"`
	FailoverBudgetRate  float64     `json:"failover_budget_rate,omitempty"`
	FailoverBudgetBurst int         `json:"failover_budget_burst,omitempty"`
	Planes              []PlaneSpec `json:"planes"`
}

// Generate builds the FileConfig `fttopo gen` emits: n identical planes
// of shape FT(l, m, w) running the given scheduler spec under the given
// policy. Plane names are "plane0".."plane<n-1>".
func Generate(n, l, m, w int, scheduler, policy string) *FileConfig {
	fc := &FileConfig{Policy: policy}
	for i := 0; i < n; i++ {
		fc.Planes = append(fc.Planes, PlaneSpec{
			Name:      fmt.Sprintf("plane%d", i),
			Levels:    l,
			Arity:     m,
			Width:     w,
			Scheduler: scheduler,
		})
	}
	return fc
}

// Load parses a FileConfig from r and validates it.
func Load(r io.Reader) (*FileConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fc FileConfig
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("federation: parsing config: %w", err)
	}
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	return &fc, nil
}

// LoadFile reads and validates a FileConfig from path ("-" for stdin).
func LoadFile(path string) (*FileConfig, error) {
	if path == "-" {
		return Load(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fc, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return fc, nil
}

// Write emits the config as indented JSON, the `fttopo gen` output
// format.
func (fc *FileConfig) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fc)
}

// Validate checks every field that Build would reject, without building
// anything: policy and scheduler names resolve, durations parse, tree
// shapes construct, and all planes serve one node count.
func (fc *FileConfig) Validate() error {
	if _, err := ParsePolicy(fc.Policy); err != nil {
		return err
	}
	if _, err := parseDur("probe_interval", fc.ProbeInterval); err != nil {
		return err
	}
	if _, err := parseDur("latency_budget", fc.LatencyBudget); err != nil {
		return err
	}
	if fc.HealthAlpha < 0 || fc.HealthAlpha > 1 {
		return fmt.Errorf("federation: health_alpha %v outside [0, 1]", fc.HealthAlpha)
	}
	if fc.OpenBelow < 0 || fc.OpenBelow >= 1 {
		return fmt.Errorf("federation: open_below %v outside [0, 1)", fc.OpenBelow)
	}
	if fc.FailoverBudgetRate < 0 {
		return fmt.Errorf("federation: negative failover_budget_rate %v", fc.FailoverBudgetRate)
	}
	if fc.FailoverBudgetBurst < 0 {
		return fmt.Errorf("federation: negative failover_budget_burst %d", fc.FailoverBudgetBurst)
	}
	if fc.FailoverBudgetBurst > 0 && fc.FailoverBudgetRate == 0 {
		return fmt.Errorf("federation: failover_budget_burst %d without failover_budget_rate", fc.FailoverBudgetBurst)
	}
	if len(fc.Planes) == 0 {
		return ErrNoPlanes
	}
	nodes := -1
	for i, ps := range fc.Planes {
		where := ps.Name
		if where == "" {
			where = fmt.Sprintf("plane %d", i)
		}
		tree, err := topology.New(ps.Levels, ps.Arity, ps.Width)
		if err != nil {
			return fmt.Errorf("federation: %s: %w", where, err)
		}
		if nodes == -1 {
			nodes = tree.Nodes()
		} else if tree.Nodes() != nodes {
			return fmt.Errorf("federation: %s serves %d nodes, previous planes serve %d", where, tree.Nodes(), nodes)
		}
		if ps.Scheduler != "" {
			if _, err := sched.Parse(ps.Scheduler); err != nil {
				return fmt.Errorf("federation: %s: %w", where, err)
			}
		}
		for _, d := range []struct{ name, val string }{
			{"max_wait", ps.MaxWait},
			{"admit_timeout", ps.AdmitTimeout},
			{"repair_backoff", ps.RepairBackoff},
			{"flap_half_life", ps.FlapHalfLife},
			{"quarantine_probation", ps.QuarantineProbation},
		} {
			if _, err := parseDur(d.name, d.val); err != nil {
				return fmt.Errorf("federation: %s: %w", where, err)
			}
		}
		if ps.FlapThreshold < 0 {
			return fmt.Errorf("federation: %s: negative flap_threshold %v", where, ps.FlapThreshold)
		}
		if ps.RepairBudgetRate >= 0 && ps.RepairBudgetBurst < 0 {
			return fmt.Errorf("federation: %s: negative repair_budget_burst %d", where, ps.RepairBudgetBurst)
		}
		if ps.RepairBudgetRate < 0 && ps.RepairBudgetBurst != 0 {
			return fmt.Errorf("federation: %s: repair_budget_burst %d with unlimited (negative) repair_budget_rate", where, ps.RepairBudgetBurst)
		}
		if ps.RepairBudgetRate == 0 && ps.RepairBudgetBurst > 0 {
			return fmt.Errorf("federation: %s: repair_budget_burst %d without a repair_budget_rate", where, ps.RepairBudgetBurst)
		}
		switch ps.ParallelMode {
		case "", "deterministic", "racy", "shard":
		default:
			return fmt.Errorf("federation: %s: unknown parallel_mode %q (want deterministic|racy|shard)", where, ps.ParallelMode)
		}
		if ps.ParallelSteal && ps.ParallelMode != "shard" {
			return fmt.Errorf("federation: %s: parallel_steal requires parallel_mode \"shard\"", where)
		}
		if ps.ReuseCost < 0 {
			return fmt.Errorf("federation: %s: negative reuse_cost %d", where, ps.ReuseCost)
		}
		if ps.ReuseCost > 0 && !ps.Incremental {
			return fmt.Errorf("federation: %s: reuse_cost requires incremental", where)
		}
		if ps.ReuseCost > 0 && ps.Scheduler != "" {
			return fmt.Errorf("federation: %s: reuse_cost applies to the default engine; put reuse-cost in the scheduler spec", where)
		}
		if ps.Incremental && ps.Scheduler != "" {
			eng, err := sched.Parse(ps.Scheduler)
			if err != nil {
				return fmt.Errorf("federation: %s: %w", where, err)
			}
			if _, ok := sched.AsIncremental(eng); !ok {
				return fmt.Errorf("federation: %s: incremental requires a scheduler with the delta-epoch capability (%s has none)", where, eng.Name())
			}
		}
		if ps.DrainWorker && ps.ReleaseRing < 0 {
			return fmt.Errorf("federation: %s: drain_worker requires the release ring (release_ring >= 0)", where)
		}
		if ps.Weight < 0 {
			return fmt.Errorf("federation: %s: negative weight %v", where, ps.Weight)
		}
	}
	return nil
}

// Build validates the file and constructs the runtime Config, building
// one topology per plane (planes never share a tree: they are
// independent fabrics that merely agree on shape).
func (fc *FileConfig) Build() (Config, error) {
	if err := fc.Validate(); err != nil {
		return Config{}, err
	}
	policy, _ := ParsePolicy(fc.Policy)
	probe, _ := parseDur("probe_interval", fc.ProbeInterval)
	latBudget, _ := parseDur("latency_budget", fc.LatencyBudget)
	cfg := Config{
		Policy:         policy,
		FailoverLimit:  fc.FailoverLimit,
		EjectAfter:     fc.EjectAfter,
		ProbeInterval:  probe,
		HealthAlpha:    fc.HealthAlpha,
		OpenBelow:      fc.OpenBelow,
		LatencyBudget:  latBudget,
		FailoverBudget: fabric.Budget{Rate: fc.FailoverBudgetRate, Burst: fc.FailoverBudgetBurst},
	}
	for _, ps := range fc.Planes {
		maxWait, _ := parseDur("max_wait", ps.MaxWait)
		admit, _ := parseDur("admit_timeout", ps.AdmitTimeout)
		backoff, _ := parseDur("repair_backoff", ps.RepairBackoff)
		halfLife, _ := parseDur("flap_half_life", ps.FlapHalfLife)
		probation, _ := parseDur("quarantine_probation", ps.QuarantineProbation)
		cfg.Planes = append(cfg.Planes, PlaneConfig{
			Name:   ps.Name,
			Weight: ps.Weight,
			Fabric: fabric.Config{
				Tree:                topology.MustNew(ps.Levels, ps.Arity, ps.Width),
				SchedulerSpec:       ps.Scheduler,
				BatchSize:           ps.BatchSize,
				MaxWait:             maxWait,
				QueueLimit:          ps.QueueLimit,
				AdmitTimeout:        admit,
				ReleaseRing:         ps.ReleaseRing,
				RepairRetries:       ps.RepairRetries,
				RepairBackoff:       backoff,
				FlapThreshold:       ps.FlapThreshold,
				FlapHalfLife:        halfLife,
				QuarantineProbation: probation,
				RepairBudget:        fabric.Budget{Rate: ps.RepairBudgetRate, Burst: ps.RepairBudgetBurst},
				ParallelThreshold:   ps.ParallelThreshold,
				ParallelWorkers:     ps.ParallelWorkers,
				ParallelRacy:        ps.ParallelRacy,
				ParallelMode:        ps.ParallelMode,
				ParallelSteal:       ps.ParallelSteal,
				Incremental:         ps.Incremental,
				ReuseCost:           ps.ReuseCost,
				DeliveryPipeline:    ps.DeliveryPipeline,
				DrainWorker:         ps.DrainWorker,
				StatsSnapshots:      ps.StatsSnapshots,
			},
		})
	}
	return cfg, nil
}

// parseDur parses an optional Go duration string ("" means zero).
func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("federation: %s: %w", field, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("federation: %s: negative duration %s", field, s)
	}
	return d, nil
}
