package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// TestChaosPlaneKillAccounting is the plane-failure acceptance test:
// concurrent closed-loop churn across 3 planes, one plane killed
// mid-run, and a full accounting at the end proving zero lost
// (unaccounted) connections — every granted circuit was either released
// cleanly or terminated with a documented terminal error that the
// router's loss counter agrees with, and every plane drains to zero
// active circuits and zero occupied channels. Run under -race in CI.
func TestChaosPlaneKillAccounting(t *testing.T) {
	cfg := Config{Policy: PolicyRoundRobin}
	for i := 0; i < 3; i++ {
		cfg.Planes = append(cfg.Planes, PlaneConfig{
			Fabric: fabric.Config{
				Tree:          topology.MustNew(3, 4, 4),
				BatchSize:     8,
				MaxWait:       100 * time.Microsecond,
				RepairRetries: 2,
				RepairBackoff: time.Millisecond,
			},
		})
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var (
		stop             atomic.Bool
		grantTotal       atomic.Uint64
		releasedOK       atomic.Uint64
		releasedLost     atomic.Uint64
		releasedDegraded atomic.Uint64
		releasedOther    atomic.Uint64
		errMu            sync.Mutex
		otherErr         error // first unexpected release error
		wg               sync.WaitGroup
		nodes            = r.Nodes()
	)
	account := func(err error) {
		switch {
		case err == nil:
			releasedOK.Add(1)
		case errors.Is(err, ErrConnLost):
			releasedLost.Add(1)
		case errors.Is(err, fabric.ErrUnroutableDegraded):
			// The owner's Release raced the terminal verdict ahead of
			// the router's migration hook: the plane's documented
			// repair-exhaustion error, already fully torn down.
			releasedDegraded.Add(1)
		default:
			releasedOther.Add(1)
			errMu.Lock()
			if otherErr == nil {
				otherErr = err
			}
			errMu.Unlock()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			g := lcg(seed)
			var held []*Handle
			for !stop.Load() {
				if len(held) >= 12 || (len(held) > 0 && g.next(4) == 0) {
					h := held[0]
					held = held[1:]
					account(h.Release())
					continue
				}
				src, dst := g.next(nodes), g.next(nodes)
				h, err := r.Connect(context.Background(), src, dst)
				if err != nil {
					continue // denial; nothing held
				}
				grantTotal.Add(1)
				held = append(held, h)
			}
			for _, h := range held {
				account(h.Release())
			}
		}(uint64(w)*2654435761 + 1)
	}

	time.Sleep(60 * time.Millisecond)
	if err := r.KillPlane("plane1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Let in-flight migrations and the killed plane's repair loop settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := r.Stats()
		settled := s.PendingReadmits == 0
		for _, ps := range s.Planes {
			if ps.Fabric.PendingRepairs != 0 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migrations never settled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// A migration that completed after its owner's Release hands the
	// fresh circuit straight back asynchronously; one more poll round
	// covers that final release.
	var s Stats
	for {
		s = r.Stats()
		clean := true
		for _, ps := range s.Planes {
			if ps.Fabric.Active != 0 || ps.Occupancy != 0 {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("planes never drained: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}

	if n := releasedOther.Load(); n != 0 {
		t.Errorf("%d releases returned undocumented errors, first: %v", n, otherErr)
	}
	got := releasedOK.Load() + releasedLost.Load() + releasedDegraded.Load() + releasedOther.Load()
	if got != grantTotal.Load() {
		t.Errorf("accounting leak: %d grants, %d accounted releases", grantTotal.Load(), got)
	}
	if releasedLost.Load() != s.Lost {
		t.Errorf("ErrConnLost releases %d != router Lost %d", releasedLost.Load(), s.Lost)
	}
	if s.PendingReadmits != 0 {
		t.Errorf("PendingReadmits = %d after settle", s.PendingReadmits)
	}
	if grantTotal.Load() == 0 || s.Readmitted == 0 {
		t.Errorf("chaos run exercised nothing: grants %d, readmitted %d", grantTotal.Load(), s.Readmitted)
	}
	t.Logf("grants=%d failovers=%d readmitted=%d lost=%d degraded-drains=%d",
		grantTotal.Load(), s.Failovers, s.Readmitted, s.Lost, releasedDegraded.Load())

	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fmt.Errorf("wrapped: %w", ErrConnLost); !errors.Is(err, ErrConnLost) {
		t.Error("ErrConnLost does not survive wrapping")
	}
}
