package federation

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestConfigRoundTrip pins the gen → write → load → build pipeline the
// fttopo gen | ftserve -config smoke exercises.
func TestConfigRoundTrip(t *testing.T) {
	fc := Generate(3, 2, 4, 2, "backtrack,depth=2", "least-loaded")
	fc.FailoverLimit = 2
	fc.EjectAfter = 5
	fc.ProbeInterval = "75ms"
	fc.Planes[1].BatchSize = 4
	fc.Planes[1].MaxWait = "1ms"
	fc.Planes[2].AdmitTimeout = "250ms"

	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Planes) != 3 || got.Policy != "least-loaded" || got.Planes[1].MaxWait != "1ms" {
		t.Fatalf("round trip mangled the config: %+v", got)
	}

	cfg, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != PolicyLeastLoaded || cfg.FailoverLimit != 2 || cfg.EjectAfter != 5 {
		t.Errorf("built router knobs: %+v", cfg)
	}
	if cfg.ProbeInterval != 75*time.Millisecond {
		t.Errorf("ProbeInterval = %v, want 75ms", cfg.ProbeInterval)
	}
	if cfg.Planes[1].Fabric.MaxWait != time.Millisecond || cfg.Planes[1].Fabric.BatchSize != 4 {
		t.Errorf("plane 1 fabric knobs: %+v", cfg.Planes[1].Fabric)
	}
	if cfg.Planes[0].Fabric.Tree.Nodes() != 16 {
		t.Errorf("plane 0 nodes = %d, want 16", cfg.Planes[0].Fabric.Tree.Nodes())
	}
	// Planes must not share a tree: independent fabrics, same shape.
	if cfg.Planes[0].Fabric.Tree == cfg.Planes[1].Fabric.Tree {
		t.Error("planes share one *topology.Tree")
	}

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())
	h, err := r.Connect(context.Background(), 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigWeightRoundTrip: per-plane weight and parallel-engine mode
// fields survive gen → write → load → build and land on the runtime
// PlaneConfig / fabric.Config.
func TestConfigWeightRoundTrip(t *testing.T) {
	fc := Generate(2, 2, 4, 2, "", "hash")
	fc.Planes[0].Weight = 3
	fc.Planes[1].ParallelThreshold = 4
	fc.Planes[1].ParallelMode = "shard"
	fc.Planes[1].ParallelSteal = true

	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Planes[0].Weight != 3 || got.Planes[1].Weight != 0 {
		t.Fatalf("weights mangled: %+v", got.Planes)
	}
	if got.Planes[1].ParallelMode != "shard" || !got.Planes[1].ParallelSteal {
		t.Fatalf("parallel fields mangled: %+v", got.Planes[1])
	}

	cfg, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Planes[0].Weight != 3 || cfg.Planes[1].Weight != 0 {
		t.Errorf("built weights: %v, %v", cfg.Planes[0].Weight, cfg.Planes[1].Weight)
	}
	f := cfg.Planes[1].Fabric
	if f.ParallelMode != "shard" || !f.ParallelSteal || f.ParallelThreshold != 4 {
		t.Errorf("built fabric parallel knobs: %+v", f)
	}

	// The built config constructs a live router whose runtime weights
	// reflect the spec (omitted weight defaults to 1 → weighted router).
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())
	if r.planes[0].weight != 3 || r.planes[1].weight != 1 || !r.weighted {
		t.Errorf("runtime weights: %v, %v (weighted=%v)",
			r.planes[0].weight, r.planes[1].weight, r.weighted)
	}
}

// TestConfigIncrementalRoundTrip: the delta-epoch knobs survive
// write → load → build, land on fabric.Config, and construct a live
// incremental plane.
func TestConfigIncrementalRoundTrip(t *testing.T) {
	fc := Generate(2, 2, 4, 2, "", "hash")
	fc.Planes[0].Incremental = true
	fc.Planes[0].ReuseCost = 4
	fc.Planes[1].Scheduler = "levelwise,incremental"

	var buf bytes.Buffer
	if err := fc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Planes[0].Incremental || got.Planes[0].ReuseCost != 4 {
		t.Fatalf("incremental fields mangled: %+v", got.Planes[0])
	}
	cfg, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Planes[0].Fabric
	if !f.Incremental || f.ReuseCost != 4 {
		t.Fatalf("built fabric incremental knobs: %+v", f)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())
	h, err := r.Connect(context.Background(), 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	for i, p := range r.planes {
		if s := p.surf.Stats(); !s.Incremental {
			t.Errorf("plane %d not incremental: %+v", i, s)
		}
	}
}

func TestConfigValidationErrors(t *testing.T) {
	cases := []struct {
		name, json, want string
	}{
		{"bad policy", `{"policy":"fastest","planes":[{"levels":2,"arity":2,"width":1}]}`, "unknown policy"},
		{"no planes", `{"planes":[]}`, "no planes"},
		{"bad shape", `{"planes":[{"levels":0,"arity":2,"width":1}]}`, "plane 0"},
		{"bad scheduler", `{"planes":[{"levels":2,"arity":2,"width":1,"scheduler":"warp-drive"}]}`, "warp-drive"},
		{"bad duration", `{"planes":[{"levels":2,"arity":2,"width":1,"max_wait":"fast"}]}`, "max_wait"},
		{"node mismatch", `{"planes":[{"levels":2,"arity":2,"width":1},{"name":"b","levels":2,"arity":4,"width":1}]}`, "b serves"},
		{"unknown field", `{"plains":[]}`, "unknown field"},
		{"negative weight", `{"planes":[{"levels":2,"arity":2,"width":1,"weight":-1}]}`, "negative weight"},
		{"bad parallel mode", `{"planes":[{"levels":2,"arity":2,"width":1,"parallel_mode":"sharded"}]}`, "parallel_mode"},
		{"steal without shard", `{"planes":[{"levels":2,"arity":2,"width":1,"parallel_steal":true}]}`, "parallel_steal requires"},
		{"negative reuse_cost", `{"planes":[{"levels":2,"arity":2,"width":1,"incremental":true,"reuse_cost":-2}]}`, "negative reuse_cost"},
		{"reuse_cost without incremental", `{"planes":[{"levels":2,"arity":2,"width":1,"reuse_cost":2}]}`, "reuse_cost requires incremental"},
		{"reuse_cost with scheduler", `{"planes":[{"levels":2,"arity":2,"width":1,"incremental":true,"reuse_cost":2,"scheduler":"level-wise"}]}`, "put reuse-cost in the scheduler spec"},
		{"incremental without capability", `{"planes":[{"levels":2,"arity":2,"width":1,"incremental":true,"scheduler":"optimal"}]}`, "delta-epoch capability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("config accepted: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := LoadFile("/does/not/exist.json"); err == nil {
		t.Error("missing file accepted")
	}
	var empty FileConfig
	if err := empty.Validate(); !errors.Is(err, ErrNoPlanes) {
		t.Errorf("empty config: %v, want ErrNoPlanes", err)
	}
}

func TestParsePolicyGrammar(t *testing.T) {
	for _, name := range Policies() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParsePolicy(%q).String() = %q", name, p.String())
		}
	}
	if p, err := ParsePolicy(""); err != nil || p != PolicyHash {
		t.Errorf("empty policy = %v, %v; want hash", p, err)
	}
	for alias, want := range map[string]Policy{"rr": PolicyRoundRobin, "rand": PolicyRandom, "ll": PolicyLeastLoaded, "least": PolicyLeastLoaded} {
		if p, err := ParsePolicy(alias); err != nil || p != want {
			t.Errorf("alias %q = %v, %v; want %v", alias, p, err, want)
		}
	}
	if _, err := ParsePolicy("fastest"); err == nil {
		t.Error("ParsePolicy(fastest) succeeded")
	}
}
