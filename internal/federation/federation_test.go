package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// testRouter builds an n-plane router of small identical planes with
// BatchSize 1 and the given policy tweaks applied.
func testRouter(t *testing.T, n int, mod func(*Config)) *Router {
	t.Helper()
	cfg := Config{}
	for i := 0; i < n; i++ {
		cfg.Planes = append(cfg.Planes, PlaneConfig{
			Fabric: fabric.Config{Tree: topology.MustNew(2, 2, 1), BatchSize: 1},
		})
	}
	if mod != nil {
		mod(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close(context.Background()) })
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoPlanes) {
		t.Errorf("empty config: %v, want ErrNoPlanes", err)
	}
	if _, err := New(Config{Planes: []PlaneConfig{
		{Name: "a", Fabric: fabric.Config{Tree: topology.MustNew(2, 2, 1)}},
		{Name: "a", Fabric: fabric.Config{Tree: topology.MustNew(2, 2, 1)}},
	}}); err == nil {
		t.Error("duplicate plane names accepted")
	}
	if _, err := New(Config{Planes: []PlaneConfig{
		{Fabric: fabric.Config{Tree: topology.MustNew(2, 2, 1)}},
		{Fabric: fabric.Config{Tree: topology.MustNew(2, 4, 1)}},
	}}); err == nil {
		t.Error("mismatched node counts accepted")
	}
	if _, err := New(Config{Planes: []PlaneConfig{{}}}); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	r := testRouter(t, 2, nil)
	if _, err := r.Connect(context.Background(), 0, 99); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if got := r.Nodes(); got != 4 {
		t.Errorf("Nodes() = %d, want 4", got)
	}
	if got := r.PlaneCount(); got != 2 {
		t.Errorf("PlaneCount() = %d, want 2", got)
	}
	if _, ok := r.Plane("plane1"); !ok {
		t.Error("Plane(plane1) not found")
	}
	if _, ok := r.Plane("nope"); ok {
		t.Error("Plane(nope) found")
	}
	r.Close(context.Background())
	if _, err := r.Connect(context.Background(), 0, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Connect after Close: %v, want ErrClosed", err)
	}
}

// TestPolicyOrdering pins each policy's candidate ordering against a
// 4-plane router.
func TestPolicyOrdering(t *testing.T) {
	r := testRouter(t, 4, nil)

	// Hash: deterministic per (src, dst), preserves ring order.
	a := r.candidates(0, 3)
	b := r.candidates(0, 3)
	if len(a) != 4 {
		t.Fatalf("candidates = %v, want 4 planes", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hash ordering not deterministic: %v vs %v", a, b)
		}
	}
	for i := 1; i < 4; i++ {
		if a[i] != (a[i-1]+1)%4 {
			t.Fatalf("hash order %v is not a ring rotation", a)
		}
	}

	// Round-robin: consecutive admissions rotate the starting plane.
	r.cfg.Policy = PolicyRoundRobin
	starts := make(map[int]bool)
	for i := 0; i < 4; i++ {
		starts[r.candidates(0, 3)[0]] = true
	}
	if len(starts) != 4 {
		t.Errorf("round-robin visited %d distinct starting planes in 4 admissions, want 4", len(starts))
	}

	// Random: stays a permutation.
	r.cfg.Policy = PolicyRandom
	seen := make(map[int]bool)
	for _, pi := range r.candidates(1, 2) {
		seen[pi] = true
	}
	if len(seen) != 4 {
		t.Errorf("random ordering lost planes: %v", seen)
	}

	// Least-loaded: the emptiest plane leads. Load planes 0..2 with one
	// circuit each, leave plane 3 idle.
	r.cfg.Policy = PolicyLeastLoaded
	for i := 0; i < 3; i++ {
		s, _ := r.Plane(r.PlaneNames()[i])
		if _, err := s.Admit(context.Background(), 0, 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.candidates(0, 3); got[0] != 3 {
		t.Errorf("least-loaded candidates %v, want plane 3 first", got)
	}
}

// TestFailoverToNextPlane occupies the only route on the first-choice
// plane and proves the admission lands on the next candidate, counted
// as a failover.
func TestFailoverToNextPlane(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) { c.Policy = PolicyRoundRobin })
	// FT(2,2,1): (0,2) has exactly one route. Occupy it on plane 0.
	p0, _ := r.Plane("plane0")
	blocker, err := p0.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	// First round-robin admission starts at plane 0, which must deny.
	h, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if got := h.Plane(); got != "plane1" {
		t.Errorf("granted on %q, want plane1", got)
	}
	s := r.Stats()
	if s.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", s.Failovers)
	}
	if s.Granted != 1 || s.Rejected != 0 {
		t.Errorf("granted/rejected = %d/%d, want 1/0", s.Granted, s.Rejected)
	}
	if s.Planes[1].Grants != 1 || s.Planes[0].Grants != 0 {
		t.Errorf("per-plane grants = %d/%d, want 0/1", s.Planes[0].Grants, s.Planes[1].Grants)
	}
}

// TestFailoverLimitBounds proves FailoverLimit caps the planes tried.
func TestFailoverLimitBounds(t *testing.T) {
	r := testRouter(t, 3, func(c *Config) {
		c.Policy = PolicyRoundRobin
		c.FailoverLimit = 1
	})
	// Occupy (0,2)'s only route on planes 0 and 1; plane 2 stays free
	// but is out of reach with FailoverLimit 1.
	for _, name := range []string{"plane0", "plane1"} {
		s, _ := r.Plane(name)
		h, err := s.Admit(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
	}
	if _, err := r.Connect(context.Background(), 0, 2); !errors.Is(err, fabric.ErrUnroutable) {
		t.Fatalf("limited failover: %v, want unroutable denial", err)
	}
	if s := r.Stats(); s.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", s.Rejected)
	}
}

// TestEjectAndRepair proves a killed plane stops receiving traffic and
// a repaired plane rejoins.
func TestEjectAndRepair(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.Policy = PolicyRoundRobin
		c.ProbeInterval = time.Hour // no probes: ejection must hold
	})
	if err := r.KillPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Planes[0].Healthy {
		t.Error("killed plane still healthy")
	}
	for i := 0; i < 4; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Plane(); got != "plane1" {
			t.Errorf("admission %d landed on ejected %q", i, got)
		}
		h.Release()
	}
	if err := r.RepairPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); !s.Planes[0].Healthy {
		t.Error("repaired plane still ejected")
	}
	planes := make(map[string]bool)
	for i := 0; i < 4; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		planes[h.Plane()] = true
		h.Release()
	}
	if !planes["plane0"] {
		t.Errorf("repaired plane got no traffic: %v", planes)
	}
	if err := r.KillPlane("nope"); err == nil {
		t.Error("KillPlane(nope) succeeded")
	}
	if err := r.RepairPlane("nope"); err == nil {
		t.Error("RepairPlane(nope) succeeded")
	}
}

// TestEjectionStreakAndProbe drives the organic health path: repeated
// denials eject a plane without KillPlane, and a due probe routes one
// admission back, whose success re-admits the plane.
func TestEjectionStreakAndProbe(t *testing.T) {
	r := testRouter(t, 2, func(c *Config) {
		c.Policy = PolicyRoundRobin
		c.EjectAfter = 2
		c.ProbeInterval = time.Hour
	})
	// Saturate (0,2)'s only route on plane 0 so it denies organically.
	p0, _ := r.Plane("plane0")
	blocker, err := p0.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two round-robin admissions starting at plane 0 (rr starts at 0 and
	// alternates, so issue four to land two on plane 0).
	for i := 0; i < 4; i++ {
		h, err := r.Connect(context.Background(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if s := r.Stats(); s.Planes[0].Healthy {
		t.Fatal("plane 0 not ejected after denial streak")
	}

	// Unblock plane 0 and make plane 1 deny, so only a probe can succeed.
	blocker.Release()
	p1, _ := r.Plane("plane1")
	blocker1, err := p1.Admit(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer blocker1.Release()
	// Probes are still gated by the 1h interval: the admission must fail.
	if _, err := r.Connect(context.Background(), 0, 2); err == nil {
		t.Fatal("admission succeeded with the only healthy plane saturated and probes gated")
	}
	// Open the probe gate: the next admission probes plane 0, succeeds,
	// and re-admits it.
	r.cfg.ProbeInterval = time.Nanosecond
	h, err := r.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if got := h.Plane(); got != "plane0" {
		t.Errorf("probe admission landed on %q, want plane0", got)
	}
	if s := r.Stats(); !s.Planes[0].Healthy {
		t.Error("plane 0 still ejected after a successful probe")
	}
}

// TestReadmitAcrossPlanes kills a plane under held connections and
// proves each one migrates to the survivor behind its original handle.
func TestReadmitAcrossPlanes(t *testing.T) {
	cfg := Config{Policy: PolicyRoundRobin}
	for i := 0; i < 2; i++ {
		cfg.Planes = append(cfg.Planes, PlaneConfig{
			Fabric: fabric.Config{
				Tree:          topology.MustNew(2, 4, 4),
				BatchSize:     1,
				RepairRetries: 2,
				RepairBackoff: time.Millisecond,
			},
		})
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())

	// Hold circuits that all cross the top (distinct level-0 switches),
	// so killing the plane revokes every one it carries — spread so the
	// survivor has the capacity to absorb them all.
	var held []*Handle
	for i := 0; i < 8; i++ {
		h, err := r.Connect(context.Background(), i, 8+i)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, h)
	}
	onPlane0 := 0
	for _, h := range held {
		if h.Plane() == "plane0" {
			onPlane0++
		}
	}
	if onPlane0 == 0 {
		t.Fatal("round-robin placed nothing on plane 0")
	}
	if err := r.KillPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := r.Stats()
		if s.PendingReadmits == 0 && s.Readmitted+s.Lost >= uint64(onPlane0) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration stalled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	s := r.Stats()
	if s.Lost != 0 {
		t.Fatalf("lost %d connections with a healthy survivor", s.Lost)
	}
	if s.Readmitted != uint64(onPlane0) {
		t.Errorf("Readmitted = %d, want %d", s.Readmitted, onPlane0)
	}
	for i, h := range held {
		if got := h.Plane(); got != "plane1" {
			t.Errorf("handle %d on %q after plane kill, want plane1", i, got)
		}
		if err := h.Err(); err != nil {
			t.Errorf("handle %d dead: %v", i, err)
		}
		if err := h.Release(); err != nil {
			t.Errorf("handle %d release: %v", i, err)
		}
		if err := h.Release(); !errors.Is(err, ErrReleased) {
			t.Errorf("handle %d double release: %v, want ErrReleased", i, err)
		}
	}
	s = r.Stats()
	for _, ps := range s.Planes {
		if ps.Fabric.Active != 0 || ps.Occupancy != 0 {
			t.Errorf("plane %s not drained: active %d, occupancy %d", ps.Name, ps.Fabric.Active, ps.Occupancy)
		}
	}
}

// TestLostConnection kills the only plane that can carry a circuit and
// proves the handle terminates with the documented error.
func TestLostConnection(t *testing.T) {
	cfg := Config{}
	cfg.Planes = append(cfg.Planes, PlaneConfig{
		Fabric: fabric.Config{
			Tree:          topology.MustNew(2, 4, 4),
			BatchSize:     1,
			RepairRetries: 1,
			RepairBackoff: time.Millisecond,
		},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())
	h, err := r.Connect(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.KillPlane("plane0"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("connection never terminated")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(h.Err(), ErrConnLost) {
		t.Errorf("Err() = %v, want ErrConnLost", h.Err())
	}
	if err := h.Release(); !errors.Is(err, ErrConnLost) {
		t.Errorf("Release = %v, want ErrConnLost", err)
	}
	if s := r.Stats(); s.Lost != 1 {
		t.Errorf("Lost = %d, want 1", s.Lost)
	}
}

// TestStatsImbalance pins the max/min grant ratio definition.
func TestStatsImbalance(t *testing.T) {
	r := testRouter(t, 2, nil)
	if got := r.Stats().Imbalance; got != 0 {
		t.Errorf("idle imbalance = %v, want 0 (undefined)", got)
	}
	r.planes[0].grants.Store(6)
	r.planes[1].grants.Store(2)
	if got := r.Stats().Imbalance; got != 3 {
		t.Errorf("imbalance = %v, want 3", got)
	}
}
