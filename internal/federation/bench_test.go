package federation

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// BenchmarkFederationThroughput is the plane-scaling baseline recorded
// in BENCH_federation.json: closed-loop connect/release churn at a
// fixed client count (the offered load) against 1, 2, and 4 planes.
// More planes means more independent flushers and link states behind
// the same request stream, so aggregate grants/sec should rise with the
// plane count until the router tier itself saturates.
func BenchmarkFederationThroughput(b *testing.B) {
	for _, planes := range []int{1, 2, 4} {
		for _, policy := range []Policy{PolicyRoundRobin, PolicyLeastLoaded} {
			b.Run(fmt.Sprintf("planes=%d/policy=%s", planes, policy), func(b *testing.B) {
				cfg := Config{Policy: policy}
				for i := 0; i < planes; i++ {
					cfg.Planes = append(cfg.Planes, PlaneConfig{
						Fabric: fabric.Config{
							Tree:      topology.MustNew(3, 4, 4),
							BatchSize: 16,
							MaxWait:   100 * time.Microsecond,
						},
					})
				}
				r, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer r.Close(context.Background())
				nodes := r.Nodes()
				var grants atomic.Uint64
				var seed atomic.Uint64
				start := time.Now()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					g := lcg(seed.Add(2654435761))
					ctx := context.Background()
					for pb.Next() {
						src, dst := g.next(nodes), g.next(nodes)
						h, err := r.Connect(ctx, src, dst)
						if err != nil {
							continue
						}
						grants.Add(1)
						h.Release()
					}
				})
				b.StopTimer()
				if el := time.Since(start).Seconds(); el > 0 {
					b.ReportMetric(float64(grants.Load())/el, "grants/s")
				}
			})
		}
	}
}
