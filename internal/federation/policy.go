package federation

// Plane-selection policies. A policy orders the healthy candidate
// planes for one admission; the router then walks the order, failing
// over to the next candidate when a plane denies the circuit. The
// policy axis mirrors the randomized/least-loaded spreading results for
// parallel fat-tree resources (Wang et al., PAPERS.md): static spreading
// (hash, round-robin), randomized spreading, and load-aware spreading
// on the live per-plane occupancy gauge.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Policy selects the order in which planes are tried for an admission.
type Policy int

// The plane-selection policies.
const (
	// PolicyHash starts at the plane named by a hash of (src, dst):
	// deterministic, connection-affine spreading — the same pair always
	// prefers the same plane.
	PolicyHash Policy = iota
	// PolicyRoundRobin rotates the starting plane per admission.
	PolicyRoundRobin
	// PolicyRandom starts at a uniformly random plane — the classic
	// randomized load-balancing baseline.
	PolicyRandom
	// PolicyLeastLoaded orders planes by live occupied-channel count,
	// emptiest first, read from each plane's O(1) occupancy gauge.
	PolicyLeastLoaded
)

// String names the policy in the config grammar.
func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyRandom:
		return "random"
	case PolicyLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name from the config grammar
// (hash | round-robin | random | least-loaded).
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "hash":
		return PolicyHash, nil
	case "round-robin", "rr":
		return PolicyRoundRobin, nil
	case "random", "rand":
		return PolicyRandom, nil
	case "least-loaded", "least", "ll":
		return PolicyLeastLoaded, nil
	default:
		return 0, fmt.Errorf("federation: unknown policy %q (want hash|round-robin|random|least-loaded)", name)
	}
}

// Policies lists the policy names the parser accepts, in registry order
// — the sweep axis ftbench -planes iterates.
func Policies() []string {
	return []string{"hash", "round-robin", "random", "least-loaded"}
}

// orderPlanes reorders the candidate plane indices in place according
// to the policy. candidates index into r.planes.
func (r *Router) orderPlanes(p Policy, candidates []int, src, dst int) {
	n := len(candidates)
	if n <= 1 {
		return
	}
	switch p {
	case PolicyHash:
		if r.weighted {
			// Weighted rendezvous (highest-random-weight): each candidate
			// scores -weight/ln(u) with u a per-(src,dst,plane) hash in
			// (0,1]; ordering by score spreads pairs proportionally to
			// plane weight, stays deterministic per pair, and degrades
			// gracefully as candidates drop out.
			r.orderByScore(candidates, func(i, pi int) float64 {
				u := (float64(tripleHash(src, dst, pi)) + 1) / float64(1<<31)
				return -r.planes[pi].weight / math.Log(u)
			})
		} else {
			rotate(candidates, pairHash(src, dst)%n)
		}
	case PolicyRoundRobin:
		rotate(candidates, int(r.rr.Add(1)-1)%n)
	case PolicyRandom:
		rotate(candidates, rand.IntN(n))
	case PolicyLeastLoaded:
		// Snapshot each gauge once so the sort comparator is consistent,
		// then order emptiest-first by weight-normalized occupancy (a
		// weight-2 plane counts as half as loaded), ties by plane index
		// for determinism. Negated so orderByScore's descending sort
		// yields emptiest-first.
		occ := make([]int64, n)
		for i, pi := range candidates {
			occ[i] = r.planes[pi].surf.Occupancy()
		}
		r.orderByScore(candidates, func(i, pi int) float64 {
			return -float64(occ[i]) / r.planes[pi].weight
		})
	}
}

// orderByScore reorders candidates by descending score(position, plane
// index), stable so ties keep plane-index order.
func (r *Router) orderByScore(candidates []int, score func(i, pi int) float64) {
	n := len(candidates)
	sc := make([]float64, n)
	for i, pi := range candidates {
		sc[i] = score(i, pi)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sc[idx[a]] > sc[idx[b]] })
	out := make([]int, n)
	for i, j := range idx {
		out[i] = candidates[j]
	}
	copy(candidates, out)
}

// rotate shifts s left by k, preserving ring order — the policy picks a
// starting plane, and failover walks the rest in a stable cycle.
func rotate(s []int, k int) {
	if k == 0 {
		return
	}
	tmp := make([]int, 0, len(s))
	tmp = append(tmp, s[k:]...)
	tmp = append(tmp, s[:k]...)
	copy(s, tmp)
}

// pairHash mixes (src, dst) into a non-negative starting offset — FNV-1a
// over the two endpoint values.
func pairHash(src, dst int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [2]uint64{uint64(src), uint64(dst)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return int(h % (1 << 31))
}

// tripleHash mixes (src, dst, plane) into a non-negative value in
// [0, 2^31) — the per-candidate draw for weighted rendezvous ordering.
// Raw FNV-1a output correlates across adjacent plane indices (only the
// final input byte differs), which would skew the rendezvous split, so
// the state is run through a murmur3-style finalizer before truncation.
func tripleHash(src, dst, plane int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [3]uint64{uint64(src), uint64(dst), uint64(plane)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % (1 << 31))
}
