// Package parsched parallelizes the Level-wise batch scheduler across
// worker goroutines, exploiting the structural fact the paper's hardware
// exploits: two level-h requests can only conflict through a shared
// Ulink(h, σ) row or Dlink(h, δ) row, so the per-level arbitration that
// the hardware performs concurrently in every switch can be performed
// concurrently in software workers.
//
// The engine implements core.Scheduler and offers three modes:
//
//   - Racy: workers own disjoint request chunks and claim channels
//     directly with lock-free CAS operations (linkstate.TryAllocate).
//     Maximum throughput; the grant set may differ run to run under
//     contention, but every produced Result is conflict-free — each
//     channel is claimed by exactly one winner — which core.Verify's
//     replay proves.
//
//   - Deterministic: a two-phase sweep per level. Phase one proposes a
//     first-fit port for every live request in parallel against the
//     level-entry state; phase two commits proposals sequentially in
//     request order, re-arbitrating only requests whose proposed port an
//     earlier commit took. Because availability bits at a level only fall
//     during commits, an intact proposal is provably the port the
//     sequential level-major scheduler would pick, so the Result is
//     bit-identical to core.LevelWise (grants, ports, fail levels, final
//     link state).
//
//   - Shard: subtree sharding. Requests whose source/destination LCA
//     stays inside one level-ℓ subtree touch Ulink/Dlink rows only
//     inside that subtree, so disjoint subtrees schedule concurrently
//     with plain (non-atomic) operations and zero coordination — no
//     per-level barrier, no CAS retries; each shard owns its subtree's
//     channel words outright. Root-crossing requests run afterwards
//     through the Deterministic two-phase sweep. Work stealing
//     (Config.Steal) lets idle workers claim whole unstarted shards
//     from other workers' queues under skewed traffic. The grant set is
//     run-to-run deterministic (each shard is processed sequentially in
//     batch order by exactly one worker) but not bit-identical to the
//     sequential scheduler: shard-confined requests are arbitrated
//     before root-crossing ones.
//
// Options the parallel sweeps cannot honor (Trace hooks, non-first-fit
// policies in Deterministic and Shard modes, LeastLoaded in Racy mode,
// request-major traversal) make Schedule fall back to the sequential
// scheduler with the same options, so the engine is always safe to
// install. So do degenerate batches: fewer than two requests, fewer
// requests than would keep two workers busy, and (for Shard mode) trees
// whose shape yields fewer than two populated shards.
package parsched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Mode selects the parallel arbitration strategy.
type Mode int

// Engine modes.
const (
	// Deterministic reproduces the sequential level-major scheduler's
	// Result bit for bit via two-phase propose/commit levels.
	Deterministic Mode = iota
	// Racy lets workers CAS-claim channels directly; fastest, with a
	// run-to-run nondeterministic (but always conflict-free) grant set.
	Racy
	// Shard partitions the batch by level-ℓ subtree: disjoint subtrees
	// schedule concurrently with plain operations (no barrier, no CAS),
	// root-crossing requests fall back to the Deterministic two-phase
	// sweep. Conflict-free and run-to-run deterministic.
	Shard
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Deterministic:
		return "deterministic"
	case Racy:
		return "racy"
	case Shard:
		return "shard"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Workers is the number of scheduling goroutines (default: GOMAXPROCS).
	Workers int
	// Mode selects Deterministic, Racy, or Shard arbitration.
	Mode Mode
	// Steal enables work stealing across shard queues (Shard mode only):
	// a worker that drains its own queue claims whole unstarted shards
	// from other workers, which bounds the tail under skewed traffic.
	Steal bool
	// ShardLevel is the subtree level ℓ Shard mode partitions at
	// (0 = one level below the root, the coarsest split that yields
	// more than one shard). Lower levels give more, smaller shards but
	// classify more requests as root-crossing.
	ShardLevel int
	// Opts are the Level-wise options to schedule with; see the package
	// comment for the combinations each mode can honor in parallel.
	Opts core.Options
}

// Engine is a parallel Level-wise batch scheduler. It is stateless across
// batches (every Schedule call allocates its own working set), so one
// Engine may be shared, but a linkstate.State must still be owned by one
// Schedule call at a time — internal/fabric guarantees that with its
// manager lock.
type Engine struct {
	workers    int
	mode       Mode
	steal      bool
	shardLevel int
	opts       core.Options
	name       string
	seq        *core.LevelWise
}

// New returns an Engine; zero Workers means runtime.GOMAXPROCS(0).
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	modeName := cfg.Mode.String()
	if cfg.Mode == Shard && cfg.Steal {
		modeName += "+steal"
	}
	return &Engine{
		workers:    w,
		mode:       cfg.Mode,
		steal:      cfg.Steal,
		shardLevel: cfg.ShardLevel,
		opts:       cfg.Opts,
		name:       fmt.Sprintf("parallel-level-wise/%s/w%d", modeName, w),
		seq:        &core.LevelWise{Opts: cfg.Opts},
	}
}

// Name identifies the engine in results and reports.
func (e *Engine) Name() string { return e.name }

// Workers reports the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Mode reports the configured arbitration mode.
func (e *Engine) Mode() Mode { return e.mode }

// Steal reports whether Shard mode steals whole shards across worker
// queues.
func (e *Engine) Steal() bool { return e.steal }

// parallelizable reports whether the configured options can be honored by
// the parallel sweeps (otherwise Schedule runs the sequential scheduler).
func (e *Engine) parallelizable() bool {
	if e.opts.Trace != nil || e.opts.Traversal != core.LevelMajor {
		return false
	}
	if e.opts.ReuseCost > 0 {
		// The reuse-cost pick reads neighbor occupancy rows (like
		// LeastLoaded) and its score depends on commit order, so no
		// parallel mode can honor it.
		return false
	}
	switch e.mode {
	case Deterministic:
		// Phase-two re-arbitration is only provably identical to the
		// sequential pick for first-fit selection.
		return e.opts.Policy == core.FirstFit
	case Racy:
		// LeastLoaded reads neighbor rows without atomics; first-fit and
		// random picks act only on the worker's own atomic snapshot.
		return e.opts.Policy != core.LeastLoaded
	case Shard:
		// The per-shard sweep and the root-crossing two-phase fallback
		// both arbitrate first-fit.
		return e.opts.Policy == core.FirstFit
	default:
		return false
	}
}

// Schedule routes the batch, mutating st, using worker goroutines when
// the configured options allow it and the sequential scheduler otherwise.
// Degenerate batches (0 or 1 requests, or more workers than requests)
// run sequentially rather than spinning idle workers.
func (e *Engine) Schedule(st *linkstate.State, reqs []core.Request) *core.Result {
	workers := min(e.workers, len(reqs))
	if workers <= 1 || !e.parallelizable() {
		return e.seq.Schedule(st, reqs)
	}
	switch e.mode {
	case Racy:
		return e.scheduleRacy(st, reqs, workers)
	case Shard:
		return e.scheduleShard(st, reqs, workers)
	default:
		return e.scheduleDeterministic(st, reqs, workers)
	}
}

// ScheduleDeltaInto serves one incremental epoch (sched.Incremental).
// Delta epochs always run on the sequential core: the departures'
// teardown walks are inherently serial, and the arrivals then sweep on
// the zero-allocation sequential word fast path — which for the small
// arrival batches of a churning fabric beats spinning up workers. The
// fallback is documented in Result.Scheduler so observability (fabric
// LastEpochEngine) shows why a parallel-configured engine scheduled
// sequentially.
func (e *Engine) ScheduleDeltaInto(st *linkstate.State, arrivals []core.Request, departures []core.Departure, sc *core.Scratch) *core.Result {
	res := e.seq.ScheduleDeltaInto(st, arrivals, departures, sc)
	res.Scheduler = e.seq.Name() + "/par-fallback=incremental-delta"
	return res
}

// finish assembles the batch result (mirrors core's accounting).
func (e *Engine) finish(outs []core.Outcome, ops core.Counters) *core.Result {
	res := &core.Result{Scheduler: e.name, Outcomes: outs, Total: len(outs), Ops: ops}
	for i := range outs {
		if outs[i].Granted {
			res.Granted++
		}
	}
	return res
}

// mustAllocate claims a channel whose availability was just verified
// under the commit serialization; failure is an engine invariant
// violation.
func mustAllocate(st *linkstate.State, d linkstate.Direction, h, idx, p int) {
	if err := st.Allocate(d, h, idx, p); err != nil {
		panic(fmt.Sprintf("parsched: invariant violation: %v", err))
	}
}

// rollback releases a failed request's lower-level channels with plain
// (serialized) operations — Deterministic mode's phase two only.
func rollback(st *linkstate.State, o *core.Outcome, ops *core.Counters) {
	core.ReleaseRoute(st, o.Src, o.Dst, o.Ports, ops)
	o.Ports = o.Ports[:0]
}

// scheduleDeterministic runs the two-phase level-major sweep.
//
// Correctness of the fast path: within one level, availability bits only
// transition 1→0 (commits allocate; rollbacks release only lower levels),
// so if a request's proposed first-fit port p still has both bits set at
// its commit turn, every port below p was already unavailable at level
// entry and still is — p is exactly the sequential scheduler's pick. Only
// proposals invalidated by an earlier commit re-arbitrate.
func (e *Engine) scheduleDeterministic(st *linkstate.State, reqs []core.Request, workers int) *core.Result {
	tree := st.Tree()
	rng := e.opts.Rand
	if rng == nil && e.opts.Order == core.ShuffledOrder {
		rng = rand.New(rand.NewSource(1))
	}
	outs := core.NewOutcomes(tree, reqs)
	order := core.OrderIndices(tree, reqs, e.opts.Order, rng)
	n := len(reqs)

	curs := make([]topology.RouteCursor, n)
	alive := make([]bool, n)
	maxH := 0
	for i := range outs {
		curs[i].Start(tree, outs[i].Src, outs[i].Dst)
		if outs[i].H == 0 {
			outs[i].Granted = true
		} else {
			alive[i] = true
			if outs[i].H > maxH {
				maxH = outs[i].H
			}
		}
	}

	var ops core.Counters
	tp := newTwoPhase(e, st, outs, curs, alive, workers)
	tp.run(order, maxH, &ops)
	return e.finish(outs, ops)
}

// twoPhase is the working set of one deterministic two-phase sweep. It
// is built once per batch by scheduleDeterministic (over the whole
// batch) and by scheduleShard (over the root-crossing remainder after
// the shard phase).
type twoPhase struct {
	e           *Engine
	st          *linkstate.State
	outs        []core.Outcome
	curs        []topology.RouteCursor
	alive       []bool
	proposal    []int
	scratch     []bitvec.Vector
	commitAvail bitvec.Vector
	active      []int
	workers     int
}

func newTwoPhase(e *Engine, st *linkstate.State, outs []core.Outcome, curs []topology.RouteCursor, alive []bool, workers int) *twoPhase {
	w := st.Tree().Parents()
	tp := &twoPhase{
		e:           e,
		st:          st,
		outs:        outs,
		curs:        curs,
		alive:       alive,
		proposal:    make([]int, len(outs)),
		scratch:     make([]bitvec.Vector, workers),
		commitAvail: bitvec.New(w),
		active:      make([]int, 0, len(outs)),
		workers:     workers,
	}
	for wk := range tp.scratch {
		tp.scratch[wk] = bitvec.New(w)
	}
	return tp
}

// run sweeps levels 0..maxH-1 over the requests listed in order (a
// subset of the batch in processing order); dead or shorter requests
// are filtered per level through alive and H.
func (tp *twoPhase) run(order []int, maxH int, ops *core.Counters) {
	e, st, outs, curs, alive := tp.e, tp.st, tp.outs, tp.curs, tp.alive
	for h := 0; h < maxH; h++ {
		active := tp.active[:0]
		for _, i := range order {
			if alive[i] && h < outs[i].H {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		// Phase one: propose first-fit ports in parallel against the
		// level-entry state. Workers only read link rows and write
		// disjoint proposal slots; the WaitGroup is the barrier that
		// orders these reads before phase two's writes.
		chunk := (len(active) + tp.workers - 1) / tp.workers
		var wg sync.WaitGroup
		for wk := 0; wk < tp.workers; wk++ {
			lo := wk * chunk
			if lo >= len(active) {
				break
			}
			hi := min(lo+chunk, len(active))
			wg.Add(1)
			go func(avail bitvec.Vector, part []int) {
				defer wg.Done()
				for _, i := range part {
					st.AvailBothInto(avail, h, curs[i].Sigma(), curs[i].Delta())
					if p, ok := avail.FirstSet(); ok {
						tp.proposal[i] = p
					} else {
						tp.proposal[i] = -1
					}
				}
			}(tp.scratch[wk], active[lo:hi])
		}
		wg.Wait()
		ops.VectorReads += 2 * len(active)
		ops.VectorANDs += len(active)
		ops.PortPicks += len(active)

		// Phase two: commit in request order.
		for _, i := range active {
			o := &outs[i]
			ops.Steps++
			p := tp.proposal[i]
			if p >= 0 && !(st.ULink(h, curs[i].Sigma()).Get(p) && st.DLink(h, curs[i].Delta()).Get(p)) {
				// An earlier commit took the proposed port: re-arbitrate
				// against the committed state, exactly as the sequential
				// scheduler would at this request's turn.
				st.AvailBothInto(tp.commitAvail, h, curs[i].Sigma(), curs[i].Delta())
				ops.VectorReads += 2
				ops.VectorANDs++
				ops.PortPicks++
				if np, ok := tp.commitAvail.FirstSet(); ok {
					p = np
				} else {
					p = -1
				}
			}
			if p < 0 {
				alive[i] = false
				o.FailLevel = h
				if e.opts.Rollback {
					rollback(st, o, ops)
				}
				continue
			}
			mustAllocate(st, linkstate.Up, h, curs[i].Sigma(), p)
			mustAllocate(st, linkstate.Down, h, curs[i].Delta(), p)
			ops.Allocs += 2
			o.Ports = append(o.Ports, p)
			curs[i].Advance(p)
			if len(o.Ports) == o.H {
				o.Granted = true
				alive[i] = false
			}
		}
	}
}

// scheduleRacy fans the batch out to workers that claim channels with
// lock-free CAS. Each worker owns a contiguous chunk of the processing
// order, a scratch availability vector, a tried-ports mask, a ports
// arena, and (for RandomFit) its own RNG.
func (e *Engine) scheduleRacy(st *linkstate.State, reqs []core.Request, workers int) *core.Result {
	tree := st.Tree()
	rng := e.opts.Rand
	if rng == nil && (e.opts.Policy == core.RandomFit || e.opts.Order == core.ShuffledOrder) {
		rng = rand.New(rand.NewSource(1))
	}
	outs := core.NewOutcomes(tree, reqs)
	order := core.OrderIndices(tree, reqs, e.opts.Order, rng)
	chunk := (len(order) + workers - 1) / workers
	var seedBase int64 = 1
	if rng != nil {
		seedBase = rng.Int63()
	}
	workerOps := make([]core.Counters, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		if lo >= len(order) {
			break
		}
		hi := min(lo+chunk, len(order))
		wg.Add(1)
		go func(wk int, part []int) {
			defer wg.Done()
			var wrng *rand.Rand
			if e.opts.Policy == core.RandomFit {
				wrng = rand.New(rand.NewSource(seedBase + int64(wk)))
			}
			w := tree.Parents()
			avail := bitvec.New(w)
			tried := bitvec.New(w)
			// Per-worker ports arena: one carve per outcome, so routing
			// appends never allocate.
			totalH := 0
			for _, i := range part {
				totalH += outs[i].H
			}
			arena := make([]int, totalH)
			off := 0
			for _, i := range part {
				h := outs[i].H
				outs[i].Ports = arena[off : off : off+h]
				off += h
				e.routeRacy(st, tree, &outs[i], avail, tried, wrng, &workerOps[wk])
			}
		}(wk, order[lo:hi])
	}
	wg.Wait()
	var ops core.Counters
	for i := range workerOps {
		ops.Add(workerOps[i])
	}
	return e.finish(outs, ops)
}

// routeRacy routes one request request-major with CAS claiming. The tried
// mask guarantees termination: a port that lost its CAS (or whose forced
// downward channel lost) is excluded from later retries at that level, so
// each level performs at most w claim attempts.
func (e *Engine) routeRacy(st *linkstate.State, tree *topology.Tree, o *core.Outcome, avail, tried bitvec.Vector, rng *rand.Rand, ops *core.Counters) {
	if o.H == 0 {
		o.Granted = true
		return
	}
	var cur topology.RouteCursor
	cur.Start(tree, o.Src, o.Dst)
	for h := 0; h < o.H; h++ {
		tried.ClearAll()
		ops.Steps++
		for {
			st.AvailBothAtomicInto(avail, h, cur.Sigma(), cur.Delta())
			avail.AndNot(avail, tried)
			ops.VectorReads += 2
			ops.VectorANDs++
			var p int
			var ok bool
			if rng != nil {
				if n := avail.Count(); n > 0 {
					p, _ = avail.NthSet(rng.Intn(n))
					ok = true
				}
			} else {
				p, ok = avail.FirstSet()
			}
			if !ok {
				o.FailLevel = h
				if e.opts.Rollback {
					e.rollbackRacy(st, tree, o, ops)
				}
				return
			}
			ops.PortPicks++
			if !st.TryAllocate(linkstate.Up, h, cur.Sigma(), p) {
				tried.Set(p)
				continue
			}
			if !st.TryAllocate(linkstate.Down, h, cur.Delta(), p) {
				st.AtomicRelease(linkstate.Up, h, cur.Sigma(), p)
				tried.Set(p)
				continue
			}
			ops.Allocs += 2
			o.Ports = append(o.Ports, p)
			cur.Advance(p)
			break
		}
	}
	o.Granted = true
}

// rollbackRacy returns a failed request's claimed channels with atomic
// releases (other workers are still claiming concurrently).
func (e *Engine) rollbackRacy(st *linkstate.State, tree *topology.Tree, o *core.Outcome, ops *core.Counters) {
	var c topology.RouteCursor
	c.Start(tree, o.Src, o.Dst)
	c.Walk(o.Ports, func(h, sigma, delta, p int) {
		st.AtomicRelease(linkstate.Up, h, sigma, p)
		st.AtomicRelease(linkstate.Down, h, delta, p)
		ops.Releases += 2
	})
	o.Ports = o.Ports[:0]
}
