package parsched

// Shard mode: subtree-sharded parallel scheduling.
//
// The fat tree's recursive structure gives a free partition of the
// channel state: a request whose source/destination LCA level H is at
// most ℓ routes entirely inside the level-ℓ subtree containing both
// endpoints, touching Ulink(h, σ)/Dlink(h, δ) rows only for switches of
// that subtree (h < ℓ). Requests in distinct level-ℓ subtrees therefore
// touch disjoint bitvec rows — and rows are word-aligned in the Matrix
// backing store — so whole subtrees schedule concurrently with plain
// loads and stores: no per-level barrier, no CAS retries, no shared
// scratch. Root-crossing requests (H > ℓ) do share lower-level rows
// with shard-confined traffic, so they run strictly after the shard
// phase, through the Deterministic two-phase sweep.
//
// Classification uses the digits.Kernel subtree arithmetic (one shift
// for power-of-two m, one division otherwise) on top of the same
// XOR/shift LCA the sequential hot path uses.

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// shardTask is one populated subtree's work queue: the request indices
// confined to it, in batch processing order. claimed is the steal
// arbitration: exactly one worker wins the CAS and schedules the whole
// shard, so row ownership never migrates mid-shard.
type shardTask struct {
	idxs    []int
	claimed atomic.Bool
}

// shardSplitLevel picks the partition level ℓ for a tree: the
// configured level when valid, otherwise one level below the root —
// the coarsest split that still yields m shards. Returns -1 when no
// level produces more than one shard (l < 3, or a configured level out
// of range), which sends the batch to the sequential fallback.
func (e *Engine) shardSplitLevel(tree *topology.Tree) int {
	l := tree.Levels()
	if e.shardLevel > 0 {
		if e.shardLevel <= l-2 && tree.Subtrees(e.shardLevel) >= 2 {
			return e.shardLevel
		}
		return -1
	}
	if l < 3 || tree.Subtrees(l-2) < 2 {
		return -1
	}
	return l - 2
}

// scheduleShard partitions the batch by level-ℓ subtree, schedules the
// populated shards concurrently (plain operations on disjoint rows),
// then runs the root-crossing remainder through the deterministic
// two-phase sweep. The result is conflict-free, release-clean, and
// run-to-run deterministic: every shard is processed sequentially in
// batch order by exactly one worker, and shards are independent.
func (e *Engine) scheduleShard(st *linkstate.State, reqs []core.Request, workers int) *core.Result {
	tree := st.Tree()
	lvl := e.shardSplitLevel(tree)
	if lvl < 0 {
		// Single-subtree degenerate (e.g. a 2-level tree): nothing to
		// shard, so do not spin idle workers.
		return e.seq.Schedule(st, reqs)
	}
	rng := e.opts.Rand
	if rng == nil && e.opts.Order == core.ShuffledOrder {
		rng = rand.New(rand.NewSource(1))
	}
	outs := core.NewOutcomes(tree, reqs)
	order := core.OrderIndices(tree, reqs, e.opts.Order, rng)
	n := len(reqs)

	// One ports arena carved per outcome up front, so shard workers
	// (including thieves) append into pre-owned disjoint slices and the
	// routing loops never allocate.
	totalH := 0
	for i := range outs {
		totalH += outs[i].H
	}
	arena := make([]int, totalH)
	off := 0
	curs := make([]topology.RouteCursor, n)
	for i := range outs {
		h := outs[i].H
		outs[i].Ports = arena[off : off : off+h]
		off += h
		curs[i].Start(tree, outs[i].Src, outs[i].Dst)
	}

	// Classify in processing order: H == 0 grants trivially, H <= ℓ is
	// confined to the subtree shared by both endpoints, H > ℓ crosses
	// the partition and joins the two-phase remainder.
	nshards := tree.Subtrees(lvl)
	counts := make([]int, nshards)
	sid := make([]int32, n)
	var cross []int
	for _, i := range order {
		switch h := outs[i].H; {
		case h == 0:
			outs[i].Granted = true
			sid[i] = -2
		case h <= lvl:
			s := tree.SubtreeAt(outs[i].Src, lvl)
			sid[i] = int32(s)
			counts[s]++
		default:
			sid[i] = -1
			cross = append(cross, i)
		}
	}

	// Bucket shard-confined indices with a counting sort so each shard's
	// queue preserves the batch processing order.
	offs := make([]int, nshards+1)
	for s, c := range counts {
		offs[s+1] = offs[s] + c
	}
	bucketed := make([]int, offs[nshards])
	fill := append([]int(nil), offs[:nshards]...)
	for _, i := range order {
		if s := sid[i]; s >= 0 {
			bucketed[fill[s]] = i
			fill[s]++
		}
	}
	tasks := make([]*shardTask, 0, nshards)
	for s := 0; s < nshards; s++ {
		if counts[s] > 0 {
			tasks = append(tasks, &shardTask{idxs: bucketed[offs[s]:offs[s+1]]})
		}
	}
	if len(tasks) < 2 {
		// All traffic lands in one subtree (or none): the shard phase
		// would be sequential anyway, so run the whole batch through the
		// sequential scheduler instead of standing up workers.
		return e.seq.Schedule(st, reqs)
	}

	// Largest shards first, dealt round-robin across workers: an LPT-ish
	// static assignment that stealing then repairs dynamically.
	sort.SliceStable(tasks, func(a, b int) bool { return len(tasks[a].idxs) > len(tasks[b].idxs) })
	if workers > len(tasks) {
		workers = len(tasks)
	}
	queues := make([][]*shardTask, workers)
	for t, task := range tasks {
		queues[t%workers] = append(queues[t%workers], task)
	}

	alive := make([]bool, n)
	workerOps := make([]core.Counters, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			avail := bitvec.New(tree.Parents())
			run := func(t *shardTask) {
				if t.claimed.CompareAndSwap(false, true) {
					e.runShard(st, outs, t.idxs, curs, alive, avail, &workerOps[wk])
				}
			}
			for _, t := range queues[wk] {
				run(t)
			}
			if e.steal {
				// Scan the other queues for whole unclaimed shards; the
				// CAS above keeps each shard single-owner.
				for d := 1; d < workers; d++ {
					for _, t := range queues[(wk+d)%workers] {
						run(t)
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	var ops core.Counters
	for i := range workerOps {
		ops.Add(workerOps[i])
	}

	// Root-crossing remainder: every shard worker has quiesced, so the
	// two-phase sweep owns all rows again.
	if len(cross) > 0 {
		maxH := 0
		for _, i := range cross {
			alive[i] = true
			if outs[i].H > maxH {
				maxH = outs[i].H
			}
		}
		tp := newTwoPhase(e, st, outs, curs, alive, min(e.workers, len(cross)))
		tp.run(cross, maxH, &ops)
	}
	return e.finish(outs, ops)
}

// runShard schedules one subtree's requests level-major with first-fit
// arbitration — the same sweep core.LevelWise performs, on rows only
// this goroutine touches, so every operation is a plain load or store.
func (e *Engine) runShard(st *linkstate.State, outs []core.Outcome, idxs []int, curs []topology.RouteCursor, alive []bool, avail bitvec.Vector, ops *core.Counters) {
	maxH := 0
	for _, i := range idxs {
		alive[i] = true
		if outs[i].H > maxH {
			maxH = outs[i].H
		}
	}
	fast := st.WordRows()
	for h := 0; h < maxH; h++ {
		for _, i := range idxs {
			if !alive[i] || h >= outs[i].H {
				continue
			}
			o := &outs[i]
			ops.VectorReads += 2
			ops.VectorANDs++
			ops.Steps++
			ops.PortPicks++
			p := -1
			if fast {
				if w := st.AvailBothWord(h, curs[i].Sigma(), curs[i].Delta()); w != 0 {
					p = bits.TrailingZeros64(w)
				}
			} else {
				st.AvailBothInto(avail, h, curs[i].Sigma(), curs[i].Delta())
				if fp, ok := avail.FirstSet(); ok {
					p = fp
				}
			}
			if p < 0 {
				alive[i] = false
				o.FailLevel = h
				if e.opts.Rollback {
					// Plain releases: the partial path lies inside this
					// shard's rows.
					rollback(st, o, ops)
				}
				continue
			}
			if fast {
				st.AllocateBoth(h, curs[i].Sigma(), curs[i].Delta(), p)
			} else {
				mustAllocate(st, linkstate.Up, h, curs[i].Sigma(), p)
				mustAllocate(st, linkstate.Down, h, curs[i].Delta(), p)
			}
			ops.Allocs += 2
			o.Ports = append(o.Ports, p)
			curs[i].Advance(p)
			if len(o.Ports) == o.H {
				o.Granted = true
				alive[i] = false
			}
		}
	}
}
