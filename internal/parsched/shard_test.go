package parsched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// localBatch draws n endpoint pairs where a frac fraction is confined to
// one level-(l-2) subtree (endpoints drawn from the same subtree, cycling
// across subtrees for spread) and the rest is uniform — the skewed/local
// traffic the shard engine exists for.
func localBatch(tree *topology.Tree, n int, frac float64, seed int64) []core.Request {
	rng := rand.New(rand.NewSource(seed))
	lvl := tree.Levels() - 2
	if lvl < 1 {
		return randomBatch(tree, n, seed)
	}
	per := tree.Nodes() / tree.Subtrees(lvl)
	reqs := make([]core.Request, n)
	for i := range reqs {
		if rng.Float64() < frac {
			base := (i % tree.Subtrees(lvl)) * per
			reqs[i] = core.Request{Src: base + rng.Intn(per), Dst: base + rng.Intn(per)}
		} else {
			reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
		}
	}
	return reqs
}

// releaseAll tears down every channel a result's outcomes still hold.
func releaseAll(st *linkstate.State, res *core.Result) {
	var ops core.Counters
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if len(o.Ports) > 0 {
			core.ReleaseRoute(st, o.Src, o.Dst, o.Ports, &ops)
		}
	}
}

// TestShardConflictFreeReleaseClean is the shard-mode safety property
// test: across randomized shapes (pow2 XOR/shift and general-path LCA),
// traffic mixes, worker counts, steal, and rollback settings, every
// Result must replay conflict-free on a fresh state (core.Verify), the
// outcomes must account for exactly the channels the state holds, and
// releasing every held route must return the state to all-free. Under
// -race this also proves the plain per-shard operations never touch a
// row another worker owns.
func TestShardConflictFreeReleaseClean(t *testing.T) {
	shapes := append([][3]int{{3, 8, 8}, {3, 6, 6}, {4, 2, 2}}, testShapes...)
	for _, shape := range shapes {
		tree := topology.MustNew(shape[0], shape[1], shape[2])
		fresh := linkstate.New(tree)
		for _, frac := range []float64{0, 0.5, 1} {
			for _, steal := range []bool{false, true} {
				for _, rollback := range []bool{false, true} {
					for _, workers := range []int{2, 4, 16} {
						eng := New(Config{Workers: workers, Mode: Shard, Steal: steal,
							Opts: core.Options{Rollback: rollback}})
						st := linkstate.New(tree)
						seed := int64(workers)*1000 + int64(frac*10) + int64(shape[0])
						reqs := localBatch(tree, 3*tree.Nodes(), frac, seed)
						res := eng.Schedule(st, reqs)
						label := fmt.Sprintf("FT(%d,%d,%d)/local%.1f/steal=%v/rollback=%v/w%d",
							shape[0], shape[1], shape[2], frac, steal, rollback, workers)
						if err := core.Verify(tree, res); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if held, occ := core.HeldChannels(res), st.OccupiedCount(); held != occ {
							t.Fatalf("%s: outcomes hold %d channels, state says %d occupied", label, held, occ)
						}
						releaseAll(st, res)
						if occ := st.OccupiedCount(); occ != 0 {
							t.Fatalf("%s: %d channels still occupied after releasing every route", label, occ)
						}
						if !st.Equal(fresh) {
							t.Fatalf("%s: state differs from fresh after release", label)
						}
					}
				}
			}
		}
	}
}

// TestShardDeterministicAcrossRuns: each shard is processed sequentially
// in batch order by exactly one worker and shards are row-disjoint, so
// the grant set must not depend on goroutine interleaving — two runs
// (with and without stealing) must agree bit for bit.
func TestShardDeterministicAcrossRuns(t *testing.T) {
	for _, shape := range [][3]int{{3, 4, 4}, {4, 3, 3}} {
		tree := topology.MustNew(shape[0], shape[1], shape[2])
		reqs := localBatch(tree, 4*tree.Nodes(), 0.7, 11)
		var want *core.Result
		var wantSt *linkstate.State
		for round := 0; round < 4; round++ {
			eng := New(Config{Workers: 8, Mode: Shard, Steal: round%2 == 1,
				Opts: core.Options{Rollback: true}})
			st := linkstate.New(tree)
			got := eng.Schedule(st, reqs)
			if want == nil {
				want, wantSt = got, st
				continue
			}
			sameResult(t, fmt.Sprintf("FT(%d,%d,%d)/round%d", shape[0], shape[1], shape[2], round), got, want)
			if !st.Equal(wantSt) {
				t.Fatalf("FT(%d,%d,%d)/round%d: final link states differ", shape[0], shape[1], shape[2], round)
			}
		}
	}
}

// TestShardMatchesSequentialOnDisjointTraffic: when every request is
// confined to its own subtree there are no root-crossing requests and no
// cross-shard ordering effects, so the shard engine must match the
// sequential scheduler bit for bit.
func TestShardMatchesSequentialOnDisjointTraffic(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	reqs := localBatch(tree, 2*tree.Nodes(), 1, 5)
	opts := core.Options{Rollback: true}
	stSeq, stShard := linkstate.New(tree), linkstate.New(tree)
	want := (&core.LevelWise{Opts: opts}).Schedule(stSeq, reqs)
	got := New(Config{Workers: 4, Mode: Shard, Opts: opts}).Schedule(stShard, reqs)
	sameResult(t, "disjoint traffic", got, want)
	if !stSeq.Equal(stShard) {
		t.Fatal("final link states differ")
	}
}

// TestShardDegenerateFallbacks pins the worker-count and shape
// degenerate cases: empty and single-request batches, single-subtree
// trees, and batches that populate at most one shard must run the
// sequential scheduler (observable through Result.Scheduler) instead of
// standing up idle workers.
func TestShardDegenerateFallbacks(t *testing.T) {
	flat := topology.MustNew(2, 4, 4) // l = 2: no level yields >= 2 subtrees
	deep := topology.MustNew(3, 4, 4)
	oneShard := make([]core.Request, 8) // all confined to deep's subtree 0
	for i := range oneShard {
		oneShard[i] = core.Request{Src: i % 16, Dst: (i * 3) % 16}
	}
	cases := []struct {
		label string
		tree  *topology.Tree
		reqs  []core.Request
	}{
		{"empty batch", deep, nil},
		{"batch of 1", deep, randomBatch(deep, 1, 1)},
		{"single-subtree tree", flat, randomBatch(flat, 32, 2)},
		{"single populated shard", deep, oneShard},
	}
	for _, tc := range cases {
		eng := New(Config{Workers: 8, Mode: Shard, Opts: core.Options{Rollback: true}})
		st := linkstate.New(tc.tree)
		res := eng.Schedule(st, tc.reqs)
		if res.Scheduler != "level-wise/rollback" {
			t.Fatalf("%s: scheduler %q, want the sequential fallback", tc.label, res.Scheduler)
		}
		if err := core.Verify(tc.tree, res); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
	}
	// Workers above the batch size clamp down rather than falling over:
	// the schedule still runs (in parallel mode) and stays correct.
	eng := New(Config{Workers: 64, Mode: Shard, Opts: core.Options{Rollback: true}})
	st := linkstate.New(deep)
	res := eng.Schedule(st, localBatch(deep, 4, 1, 3))
	if err := core.Verify(deep, res); err != nil {
		t.Fatalf("workers>batch: %v", err)
	}
	// Same clamp for the other modes: 64 workers, 2 requests.
	for _, mode := range []Mode{Deterministic, Racy} {
		eng := New(Config{Workers: 64, Mode: mode, Opts: core.Options{Rollback: true}})
		st := linkstate.New(deep)
		if res := eng.Schedule(st, randomBatch(deep, 2, 4)); res.Total != 2 {
			t.Fatalf("%s workers>batch: total %d", mode, res.Total)
		}
	}
}

// TestShardLevelOverride: an explicit ShardLevel partitions finer than
// the default, and out-of-range levels fall back to sequential.
func TestShardLevelOverride(t *testing.T) {
	tree := topology.MustNew(4, 2, 2) // levels 1 and 2 both valid
	reqs := randomBatch(tree, 2*tree.Nodes(), 9)
	for _, lvl := range []int{1, 2} {
		eng := New(Config{Workers: 4, Mode: Shard, ShardLevel: lvl, Opts: core.Options{Rollback: true}})
		st := linkstate.New(tree)
		if err := core.Verify(tree, eng.Schedule(st, reqs)); err != nil {
			t.Fatalf("shard-level %d: %v", lvl, err)
		}
	}
	eng := New(Config{Workers: 4, Mode: Shard, ShardLevel: 3, Opts: core.Options{Rollback: true}})
	st := linkstate.New(tree)
	if res := eng.Schedule(st, reqs); res.Scheduler != "level-wise/rollback" {
		t.Fatalf("out-of-range shard level: scheduler %q, want the sequential fallback", res.Scheduler)
	}
}

// TestShardHighWorkerSmallTree drives 16 workers at small trees under
// every traffic mix — the high-worker-count configuration ci.sh re-runs
// under -race -count=2.
func TestShardHighWorkerSmallTree(t *testing.T) {
	for _, shape := range [][3]int{{3, 4, 2}, {3, 2, 2}} {
		tree := topology.MustNew(shape[0], shape[1], shape[2])
		for _, frac := range []float64{0, 1} {
			for _, steal := range []bool{false, true} {
				eng := New(Config{Workers: 16, Mode: Shard, Steal: steal, Opts: core.Options{Rollback: true}})
				st := linkstate.New(tree)
				res := eng.Schedule(st, localBatch(tree, 4*tree.Nodes(), frac, 13))
				if err := core.Verify(tree, res); err != nil {
					t.Fatalf("FT(%d,%d,%d)/local%.0f/steal=%v: %v", shape[0], shape[1], shape[2], frac, steal, err)
				}
				if held, occ := core.HeldChannels(res), st.OccupiedCount(); held != occ {
					t.Fatalf("FT(%d,%d,%d): outcomes hold %d, state %d", shape[0], shape[1], shape[2], held, occ)
				}
			}
		}
	}
}

// TestShardEngineIdentity covers the shard-mode Name plumbing.
func TestShardEngineIdentity(t *testing.T) {
	if got := New(Config{Workers: 4, Mode: Shard}).Name(); got != "parallel-level-wise/shard/w4" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(Config{Workers: 4, Mode: Shard, Steal: true}).Name(); got != "parallel-level-wise/shard+steal/w4" {
		t.Fatalf("Name = %q", got)
	}
	if Shard.String() != "shard" {
		t.Fatalf("Shard.String() = %q", Shard.String())
	}
}
