package parsched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// testShapes are the randomized FT(l, m, w) shapes the equivalence
// property is checked on, including slimmed (m != w) trees.
var testShapes = [][3]int{
	{2, 4, 4},
	{3, 4, 4},
	{3, 4, 2},
	{2, 8, 8},
	{4, 3, 3},
}

// randomBatch draws n random endpoint pairs (self-pairs and duplicates
// included — both are legal requests).
func randomBatch(tree *topology.Tree, n int, seed int64) []core.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]core.Request, n)
	for i := range reqs {
		reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
	}
	return reqs
}

// sameResult compares the fields the Deterministic mode promises to
// reproduce bit-identically: grants, ports, and fail levels.
func sameResult(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.Granted != want.Granted || got.Total != want.Total {
		t.Fatalf("%s: granted/total %d/%d, want %d/%d", label, got.Granted, got.Total, want.Granted, want.Total)
	}
	for i := range want.Outcomes {
		w, g := &want.Outcomes[i], &got.Outcomes[i]
		if w.Granted != g.Granted || w.FailLevel != g.FailLevel || fmt.Sprint(w.Ports) != fmt.Sprint(g.Ports) {
			t.Fatalf("%s: outcome %d (%d→%d): got granted=%v fail=%d ports=%v, want granted=%v fail=%d ports=%v",
				label, i, w.Src, w.Dst, g.Granted, g.FailLevel, g.Ports, w.Granted, w.FailLevel, w.Ports)
		}
	}
}

// TestDeterministicBitIdentical is the equivalence property test: across
// randomized tree shapes, batch sizes, orders, rollback settings, and
// worker counts, Deterministic mode must return a bit-identical Result to
// the sequential level-major scheduler and leave an identical link state.
func TestDeterministicBitIdentical(t *testing.T) {
	for _, shape := range testShapes {
		tree := topology.MustNew(shape[0], shape[1], shape[2])
		for _, batch := range []int{1, 7, tree.Nodes(), 3 * tree.Nodes()} {
			for _, order := range []core.Order{core.NaturalOrder, core.DeepestFirst, core.ShuffledOrder} {
				for _, rollback := range []bool{false, true} {
					for _, workers := range []int{2, 3, 8} {
						opts := core.Options{Order: order, Rollback: rollback}
						seq := &core.LevelWise{Opts: opts}
						eng := New(Config{Workers: workers, Mode: Deterministic, Opts: opts})
						stSeq := linkstate.New(tree)
						stPar := linkstate.New(tree)
						reqs := randomBatch(tree, batch, int64(batch)*31+int64(workers))
						want := seq.Schedule(stSeq, reqs)
						got := eng.Schedule(stPar, reqs)
						label := fmt.Sprintf("FT(%d,%d,%d)/batch%d/%s/rollback=%v/w%d",
							shape[0], shape[1], shape[2], batch, order, rollback, workers)
						sameResult(t, label, got, want)
						if !stSeq.Equal(stPar) {
							t.Fatalf("%s: final link states differ", label)
						}
						if err := core.Verify(tree, got); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
					}
				}
			}
		}
	}
}

// TestRacyConflictFree replays every Racy result against a fresh link
// state (core.Verify) to prove no channel was double-allocated, across
// shapes and rollback settings, with 8 workers. Running under -race this
// also proves the CAS arbitration is race-detector clean.
func TestRacyConflictFree(t *testing.T) {
	for _, shape := range testShapes {
		tree := topology.MustNew(shape[0], shape[1], shape[2])
		for _, rollback := range []bool{false, true} {
			for round := 0; round < 4; round++ {
				eng := New(Config{Workers: 8, Mode: Racy, Opts: core.Options{Rollback: rollback}})
				st := linkstate.New(tree)
				reqs := randomBatch(tree, 2*tree.Nodes(), int64(round+1))
				res := eng.Schedule(st, reqs)
				label := fmt.Sprintf("FT(%d,%d,%d)/rollback=%v/round%d", shape[0], shape[1], shape[2], rollback, round)
				if err := core.Verify(tree, res); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if held, occ := core.HeldChannels(res), st.OccupiedCount(); held != occ {
					t.Fatalf("%s: outcomes hold %d channels, state says %d occupied", label, held, occ)
				}
			}
		}
	}
}

// TestRacyRandomFit exercises the per-worker RNG path.
func TestRacyRandomFit(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	eng := New(Config{Workers: 4, Mode: Racy, Opts: core.Options{Policy: core.RandomFit, Rollback: true}})
	st := linkstate.New(tree)
	res := eng.Schedule(st, randomBatch(tree, tree.Nodes(), 7))
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
	if res.Granted == 0 {
		t.Fatal("random-fit racy engine granted nothing on a light load")
	}
}

// TestFallbackPaths: option combinations the parallel sweeps cannot
// honor must still schedule correctly (via the sequential fallback).
func TestFallbackPaths(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	reqs := randomBatch(tree, tree.Nodes(), 3)
	for _, eng := range []*Engine{
		New(Config{Workers: 4, Mode: Deterministic, Opts: core.Options{Policy: core.RandomFit}}),
		New(Config{Workers: 4, Mode: Racy, Opts: core.Options{Policy: core.LeastLoaded}}),
		New(Config{Workers: 4, Mode: Deterministic, Opts: core.Options{Traversal: core.RequestMajor}}),
		New(Config{Workers: 1, Mode: Racy}),
	} {
		st := linkstate.New(tree)
		res := eng.Schedule(st, reqs)
		if err := core.Verify(tree, res); err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
	}
	// The fallback must match the sequential scheduler exactly (it is the
	// sequential scheduler).
	opts := core.Options{Policy: core.RandomFit}
	st1, st2 := linkstate.New(tree), linkstate.New(tree)
	want := (&core.LevelWise{Opts: opts}).Schedule(st1, reqs)
	got := New(Config{Workers: 4, Mode: Deterministic, Opts: opts}).Schedule(st2, reqs)
	sameResult(t, "random-fit fallback", got, want)
}

// TestEngineIdentity covers Name/Workers/Mode plumbing.
func TestEngineIdentity(t *testing.T) {
	e := New(Config{Workers: 6, Mode: Racy})
	if e.Name() != "parallel-level-wise/racy/w6" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Workers() != 6 || e.Mode() != Racy {
		t.Fatalf("Workers/Mode = %d/%s", e.Workers(), e.Mode())
	}
	if d := New(Config{}); d.Workers() <= 0 || d.Mode() != Deterministic {
		t.Fatalf("defaults: workers %d mode %s", d.Workers(), d.Mode())
	}
}
