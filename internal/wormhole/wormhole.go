// Package wormhole is a flit-level, cycle-based simulation of wormhole
// packet switching on a fat tree — the conventional transport the paper
// positions its circuit scheduling against ("the scheduling approaches
// for fat tree interconnection networks are developed for store and
// forward and wormhole routing").
//
// Model: input-buffered switches with optional virtual channels,
// credit-based flow control (a flit advances only into free buffer
// space), one flit per physical channel per cycle. A packet's header
// allocates one virtual channel at every input buffer it will occupy
// (adaptively choosing the upward port, forced downward) and holds it
// until its tail leaves — classic wormhole with VC flow control. VCs
// remove head-of-line blocking: a stalled worm no longer freezes every
// packet queued behind it on the same physical link. Up*/down* routing
// keeps the channel dependency graph acyclic, so a single VC is already
// deadlock-free; extra VCs are purely a performance feature.
//
// The package supports both open-loop load–latency sweeps (Bernoulli
// injection, extension E8) and closed bulk-transfer phases (every node
// sends one long packet, extension E9's comparison with scheduled
// circuits).
package wormhole

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/topology"
)

// UpPolicy selects the upward output port for a header flit.
type UpPolicy int

// Upward routing policies.
const (
	// AdaptiveFreeSpace picks the upward port whose downstream buffers
	// have the most total free space (ties to the lowest index).
	AdaptiveFreeSpace UpPolicy = iota
	// DeterministicFirst always tries ports in index order.
	DeterministicFirst
	// RandomUp picks uniformly among candidate upward ports.
	RandomUp
)

// String names the policy.
func (p UpPolicy) String() string {
	switch p {
	case AdaptiveFreeSpace:
		return "adaptive"
	case DeterministicFirst:
		return "deterministic"
	case RandomUp:
		return "random"
	default:
		return fmt.Sprintf("UpPolicy(%d)", int(p))
	}
}

// Config parameterizes a simulation.
type Config struct {
	Tree *topology.Tree
	// BufferDepth is the per-VC input buffer capacity in flits
	// (default 4).
	BufferDepth int
	// PacketLen is the packet length in flits, header included
	// (default 5).
	PacketLen int
	// VirtualChannels per input port (default 1).
	VirtualChannels int
	// StoreAndForward switches from wormhole to store-and-forward
	// operation: a packet's flits leave a buffer only after the whole
	// packet has arrived in it, so per-hop latency is the full packet
	// serialization time instead of one flit. Requires BufferDepth >=
	// PacketLen. This is the other conventional transport the paper
	// names alongside wormhole.
	StoreAndForward bool
	Policy          UpPolicy
	Seed            int64
	// Rate is the open-loop injection probability per node per cycle
	// (packets); ignored by RunBulk.
	Rate float64
	// Dest maps a source node to a destination; nil means uniform random
	// (excluding self).
	Dest func(src int, rng *rand.Rand) int
	// Cycles and Warmup bound an open-loop run; packets generated before
	// Warmup are excluded from latency statistics.
	Cycles, Warmup int
}

func (c *Config) defaults() {
	if c.BufferDepth == 0 {
		c.BufferDepth = 4
	}
	if c.PacketLen == 0 {
		c.PacketLen = 5
	}
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 1
	}
}

// Metrics reports a run's outcome.
type Metrics struct {
	Injected   int // measured packets entering the network
	Delivered  int // measured packets fully delivered
	AvgLatency float64
	P99Latency float64
	// ThroughputFlits is delivered flits per node per cycle over the
	// measured window.
	ThroughputFlits float64
	// Cycles is the simulated horizon (RunBulk: completion time).
	Cycles int
}

// packet is one worm in flight.
type packet struct {
	src, dst  int
	born      int
	flitsSent int  // flits that have left the source queue
	measured  bool // counts toward statistics
	size      int
}

// flit is one buffer entry.
type flit struct {
	pkt  *packet
	tail bool
}

// fifo is a bounded flit queue.
type fifo struct {
	buf  []flit
	head int
}

func (f *fifo) len() int            { return len(f.buf) - f.head }
func (f *fifo) space(depth int) int { return depth - f.len() }
func (f *fifo) push(x flit)         { f.buf = append(f.buf, x) }
func (f *fifo) peek() flit          { return f.buf[f.head] }
func (f *fifo) pop() flit {
	x := f.buf[f.head]
	f.buf[f.head] = flit{}
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

// inPort is one input port: V virtual channels, each a fifo with a
// packet binding that lives from header allocation until the tail leaves.
type inPort struct {
	vcs   []fifo
	bound []*packet
	// tailIn marks VCs whose bound packet's tail flit has arrived —
	// store-and-forward releases flits only once it is set.
	tailIn []bool
	rr     int // round-robin pointer over VCs
}

func (p *inPort) freeVC() int {
	for v := range p.bound {
		if p.bound[v] == nil {
			return v
		}
	}
	return -1
}

func (p *inPort) totalSpace(depth int) int {
	total := 0
	for v := range p.vcs {
		total += p.vcs[v].space(depth)
	}
	return total
}

// sim is the live network state.
type sim struct {
	cfg  Config
	tree *topology.Tree
	rng  *rand.Rand

	// fromChild[h][sw][c]: input port receiving up-going traffic from
	// child c; fromParent[h][sw][p]: input port receiving down-going
	// traffic from parent p.
	fromChild  [][][]inPort
	fromParent [][][]inPort

	// outUsed marks output ports that already transferred a flit this
	// cycle: outUpUsed[h][sw][p], outDownUsed[h][sw][c].
	outUpUsed   [][][]bool
	outDownUsed [][][]bool

	// upOut[pkt] per (h, sw): the upward output a packet's header chose,
	// reused by its body flits. Keyed per switch to stay O(1).
	upChoice [][]map[*packet]int

	srcQueue       []fifo // per node: flits waiting to enter the network
	latencies      []float64
	cycle          int
	injected       int
	delivered      int
	deliveredFlits int
}

func newSim(cfg Config) *sim {
	cfg.defaults()
	t := cfg.Tree
	s := &sim{cfg: cfg, tree: t, rng: rand.New(rand.NewSource(cfg.Seed))}
	L := t.Levels()
	mkPorts := func(n int) []inPort {
		ports := make([]inPort, n)
		for i := range ports {
			ports[i].vcs = make([]fifo, cfg.VirtualChannels)
			ports[i].bound = make([]*packet, cfg.VirtualChannels)
			ports[i].tailIn = make([]bool, cfg.VirtualChannels)
		}
		return ports
	}
	s.fromChild = make([][][]inPort, L)
	s.fromParent = make([][][]inPort, L)
	s.outUpUsed = make([][][]bool, L)
	s.outDownUsed = make([][][]bool, L)
	s.upChoice = make([][]map[*packet]int, L)
	for h := 0; h < L; h++ {
		n := t.SwitchesAt(h)
		s.fromChild[h] = make([][]inPort, n)
		s.fromParent[h] = make([][]inPort, n)
		s.outUpUsed[h] = make([][]bool, n)
		s.outDownUsed[h] = make([][]bool, n)
		s.upChoice[h] = make([]map[*packet]int, n)
		for i := 0; i < n; i++ {
			s.fromChild[h][i] = mkPorts(t.Children())
			s.fromParent[h][i] = mkPorts(t.Parents())
			s.outUpUsed[h][i] = make([]bool, t.Parents())
			s.outDownUsed[h][i] = make([]bool, t.Children())
			s.upChoice[h][i] = make(map[*packet]int)
		}
	}
	s.srcQueue = make([]fifo, t.Nodes())
	return s
}

// isAncestor reports whether level-h switch idx is an ancestor of node
// dst.
func (s *sim) isAncestor(h, idx, dst int) bool {
	lab := s.tree.Spec().LabelOf(h, idx)
	dstSw, _ := s.tree.NodeSwitch(dst)
	dstLab := s.tree.Spec().LabelOf(0, dstSw)
	for pos := h; pos <= s.tree.Levels()-2; pos++ {
		if lab[pos] != dstLab[pos] {
			return false
		}
	}
	return true
}

// step advances the network one cycle: movement (down-going bottom-up,
// up-going top-down — the receiving level always drains before the
// sending one, so a flit moves at most one hop per cycle while freed
// space chains in the same cycle), then injection.
func (s *sim) step() {
	t := s.tree
	L := t.Levels()
	for h := 0; h < L; h++ {
		for sw := 0; sw < t.SwitchesAt(h); sw++ {
			for i := range s.outUpUsed[h][sw] {
				s.outUpUsed[h][sw][i] = false
			}
			for i := range s.outDownUsed[h][sw] {
				s.outDownUsed[h][sw][i] = false
			}
		}
	}
	for h := 0; h < L; h++ {
		for sw := 0; sw < t.SwitchesAt(h); sw++ {
			for p := range s.fromParent[h][sw] {
				s.movePort(h, sw, &s.fromParent[h][sw][p], false)
			}
		}
	}
	for h := L - 1; h >= 0; h-- {
		for sw := 0; sw < t.SwitchesAt(h); sw++ {
			for c := range s.fromChild[h][sw] {
				s.movePort(h, sw, &s.fromChild[h][sw][c], true)
			}
		}
	}
	s.inject()
	s.cycle++
}

// movePort advances at most one flit from one input port, arbitrating
// round-robin over its virtual channels.
func (s *sim) movePort(h, sw int, port *inPort, upGoing bool) {
	v := len(port.vcs)
	for k := 0; k < v; k++ {
		vc := (port.rr + k) % v
		if port.vcs[vc].len() == 0 {
			continue
		}
		if s.cfg.StoreAndForward && !port.tailIn[vc] {
			continue // store-and-forward: wait for the whole packet
		}
		if s.tryAdvance(h, sw, port, vc, upGoing) {
			port.rr = (vc + 1) % v
			return
		}
	}
}

// tryAdvance attempts to move the head flit of (port, vc) one hop.
func (s *sim) tryAdvance(h, sw int, port *inPort, vc int, upGoing bool) bool {
	t := s.tree
	fl := port.vcs[vc].peek()
	pkt := fl.pkt

	if s.isAncestor(h, sw, pkt.dst) {
		// Descend or eject.
		if h == 0 {
			dstSw, _ := t.NodeSwitch(pkt.dst)
			if sw != dstSw {
				panic("wormhole: level-0 ancestor is not the destination switch")
			}
			// Ejection: always accepted, one flit per input per cycle.
			port.vcs[vc].pop()
			if fl.tail {
				port.bound[vc] = nil
				port.tailIn[vc] = false
				if pkt.measured {
					s.delivered++
					s.deliveredFlits += pkt.size
					s.latencies = append(s.latencies, float64(s.cycle-pkt.born))
				}
			}
			return true
		}
		dstSw, _ := t.NodeSwitch(pkt.dst)
		dstLab := t.Spec().LabelOf(0, dstSw)
		c := dstLab[h-1]
		if s.outDownUsed[h][sw][c] {
			return false
		}
		child := t.DownChild(h-1, sw, c)
		back := t.DownChildUpPort(h-1, sw, c)
		dest := &s.fromParent[h-1][child][back]
		return s.transfer(port, vc, fl, dest, &s.outDownUsed[h][sw][c])
	}

	if !upGoing {
		panic("wormhole: down-going flit strayed off the ancestor path")
	}
	// Climb: the header picks an upward output once per switch; body
	// flits reuse it.
	out, ok := s.upChoice[h][sw][pkt]
	if !ok {
		out = s.chooseUp(h, sw)
		if out < 0 {
			return false
		}
		s.upChoice[h][sw][pkt] = out
	}
	if s.outUpUsed[h][sw][out] {
		return false
	}
	parent := t.UpParent(h, sw, out)
	back := t.UpParentDownPort(h, sw, out)
	dest := &s.fromChild[h+1][parent][back]
	moved := s.transfer(port, vc, fl, dest, &s.outUpUsed[h][sw][out])
	if moved && fl.tail {
		delete(s.upChoice[h][sw], pkt)
	}
	return moved
}

// transfer moves the head flit of (src, vc) into the destination input
// port if the packet holds (or can allocate) a VC there with space.
// outUsed is set when the physical channel fires.
func (s *sim) transfer(src *inPort, vc int, fl flit, dest *inPort, outUsed *bool) bool {
	pkt := fl.pkt
	// Find the packet's VC at the destination, or allocate one for the
	// header.
	dvc := -1
	for v, b := range dest.bound {
		if b == pkt {
			dvc = v
			break
		}
	}
	if dvc == -1 {
		dvc = dest.freeVC()
		if dvc == -1 {
			return false // no virtual channel available downstream
		}
		dest.bound[dvc] = pkt
	}
	if dest.vcs[dvc].space(s.cfg.BufferDepth) == 0 {
		return false // no credit
	}
	src.vcs[vc].pop()
	if fl.tail {
		src.bound[vc] = nil
		src.tailIn[vc] = false
	}
	dest.vcs[dvc].push(fl)
	if fl.tail {
		dest.tailIn[dvc] = true
	}
	*outUsed = true
	return true
}

// chooseUp picks the upward output per the policy. Unlike a held circuit,
// any port may be picked — the physical channel is time-multiplexed —
// so candidates are all up ports; the policy only shapes load.
func (s *sim) chooseUp(h, sw int) int {
	t := s.tree
	w := t.Parents()
	switch s.cfg.Policy {
	case RandomUp:
		return s.rng.Intn(w)
	case DeterministicFirst:
		return 0
	default: // AdaptiveFreeSpace
		best, bestSpace := 0, -1
		for p := 0; p < w; p++ {
			parent := t.UpParent(h, sw, p)
			back := t.UpParentDownPort(h, sw, p)
			space := s.fromChild[h+1][parent][back].totalSpace(s.cfg.BufferDepth)
			if space > bestSpace {
				best, bestSpace = p, space
			}
		}
		return best
	}
}

// inject moves one flit per node per cycle from the source queue into
// the level-0 switch input, allocating a VC for each new packet. The
// node's link into the switch behaves like any other physical channel.
func (s *sim) inject() {
	t := s.tree
	for n := 0; n < t.Nodes(); n++ {
		q := &s.srcQueue[n]
		if q.len() == 0 {
			continue
		}
		fl := q.peek()
		pkt := fl.pkt
		sw, cport := t.NodeSwitch(n)
		in := &s.fromChild[0][sw][cport]
		dvc := -1
		for v, b := range in.bound {
			if b == pkt {
				dvc = v
				break
			}
		}
		if dvc == -1 {
			dvc = in.freeVC()
			if dvc == -1 {
				continue // all VCs held by other worms
			}
			in.bound[dvc] = pkt
		}
		if in.vcs[dvc].space(s.cfg.BufferDepth) == 0 {
			continue // no credit
		}
		q.pop()
		in.vcs[dvc].push(fl)
		if fl.tail {
			in.tailIn[dvc] = true
		}
		if pkt.flitsSent == 0 && pkt.measured {
			s.injected++
		}
		pkt.flitsSent++
	}
}

// checkSF validates the store-and-forward buffer requirement.
func checkSF(cfg *Config) error {
	if !cfg.StoreAndForward {
		return nil
	}
	c := *cfg
	c.defaults()
	if c.BufferDepth < c.PacketLen {
		return fmt.Errorf("wormhole: store-and-forward needs BufferDepth (%d) >= PacketLen (%d)", c.BufferDepth, c.PacketLen)
	}
	return nil
}

// enqueue places a new packet's flits on the source queue.
func (s *sim) enqueue(src, dst int, measured bool) {
	p := &packet{src: src, dst: dst, born: s.cycle, measured: measured, size: s.cfg.PacketLen}
	for k := 0; k < p.size; k++ {
		s.srcQueue[src].push(flit{pkt: p, tail: k == p.size-1})
	}
}

// Run performs an open-loop simulation per the Config and returns the
// metrics. It returns an error for invalid configurations.
func Run(cfg Config) (Metrics, error) {
	if cfg.Tree == nil {
		return Metrics{}, fmt.Errorf("wormhole: nil tree")
	}
	if cfg.Cycles <= 0 || cfg.Warmup < 0 || cfg.Warmup >= cfg.Cycles {
		return Metrics{}, fmt.Errorf("wormhole: bad horizon (cycles %d, warmup %d)", cfg.Cycles, cfg.Warmup)
	}
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return Metrics{}, fmt.Errorf("wormhole: rate %v outside [0,1]", cfg.Rate)
	}
	if cfg.VirtualChannels < 0 || cfg.BufferDepth < 0 || cfg.PacketLen < 0 {
		return Metrics{}, fmt.Errorf("wormhole: negative buffer/packet/VC configuration")
	}
	if err := checkSF(&cfg); err != nil {
		return Metrics{}, err
	}
	s := newSim(cfg)
	dest := cfg.Dest
	if dest == nil {
		dest = func(src int, rng *rand.Rand) int {
			for {
				d := rng.Intn(s.tree.Nodes())
				if d != src {
					return d
				}
			}
		}
	}
	for s.cycle < cfg.Cycles {
		for n := 0; n < s.tree.Nodes(); n++ {
			if s.rng.Float64() < cfg.Rate {
				s.enqueue(n, dest(n, s.rng), s.cycle >= cfg.Warmup)
			}
		}
		s.step()
	}
	return s.metrics(cfg.Cycles - cfg.Warmup), nil
}

// RunBulk performs a closed bulk-transfer phase: every node sends exactly
// one packet of the configured length to dest(node), and the simulation
// runs until everything is delivered (or maxCycles passes, which returns
// an error — with deadlock-free routing this indicates an implausibly
// small horizon).
func RunBulk(cfg Config, maxCycles int) (Metrics, error) {
	if cfg.Tree == nil {
		return Metrics{}, fmt.Errorf("wormhole: nil tree")
	}
	if cfg.Dest == nil {
		return Metrics{}, fmt.Errorf("wormhole: RunBulk needs a Dest function")
	}
	if err := checkSF(&cfg); err != nil {
		return Metrics{}, err
	}
	s := newSim(cfg)
	want := 0
	for n := 0; n < s.tree.Nodes(); n++ {
		d := cfg.Dest(n, s.rng)
		if d == n {
			continue // nothing to send
		}
		s.enqueue(n, d, true)
		want++
	}
	for s.delivered < want {
		if s.cycle >= maxCycles {
			return Metrics{}, fmt.Errorf("wormhole: bulk phase not done after %d cycles (%d/%d)", maxCycles, s.delivered, want)
		}
		s.step()
	}
	return s.metrics(s.cycle), nil
}

func (s *sim) metrics(window int) Metrics {
	m := Metrics{
		Injected:  s.injected,
		Delivered: s.delivered,
		Cycles:    s.cycle,
	}
	if len(s.latencies) > 0 {
		m.AvgLatency = stats.Summarize(s.latencies).Mean
		m.P99Latency = stats.Percentile(s.latencies, 99)
	}
	if window > 0 {
		m.ThroughputFlits = float64(s.deliveredFlits) / float64(s.tree.Nodes()) / float64(window)
	}
	return m
}
