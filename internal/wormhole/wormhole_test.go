package wormhole

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestConfigValidation(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	bad := []Config{
		{},
		{Tree: tree, Cycles: 0},
		{Tree: tree, Cycles: 100, Warmup: 100},
		{Tree: tree, Cycles: 100, Rate: 1.5},
		{Tree: tree, Cycles: 100, Rate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := RunBulk(Config{Tree: tree}, 10); err == nil {
		t.Error("RunBulk without Dest accepted")
	}
	if _, err := RunBulk(Config{}, 10); err == nil {
		t.Error("RunBulk without tree accepted")
	}
}

func TestSinglePacketLatency(t *testing.T) {
	// One packet src 0 -> dst 63 in an idle FT(3,4): the header takes
	// 1 cycle per hop (inject + 2 up + 2 down + eject), the tail follows
	// PacketLen-1 cycles behind a fully pipelined worm.
	tree := topology.MustNew(3, 4, 4)
	cfg := Config{Tree: tree, PacketLen: 5, Dest: func(src int, _ *rand.Rand) int { return 63 }}
	cfg.defaults()
	s := newSim(cfg)
	s.enqueue(0, 63, true)
	for s.delivered == 0 && s.cycle < 100 {
		s.step()
	}
	if s.delivered != 1 {
		t.Fatalf("packet not delivered in 100 cycles")
	}
	m := s.metrics(s.cycle)
	// Path: inject(1) + up(2) + down(2, incl. ejection at level 0... the
	// eject consumes the level-0 hop) => header arrives ~5 cycles; tail
	// 4 flits later => latency around 9-10.
	if m.AvgLatency < 5 || m.AvgLatency > 14 {
		t.Fatalf("idle latency %v implausible", m.AvgLatency)
	}
}

func TestSameSwitchTraffic(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := Config{
		Tree: tree, Cycles: 300, Warmup: 50, Rate: 0.1,
		Dest: func(src int, _ *rand.Rand) int { return src ^ 1 }, // same level-0 switch
	}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Same-switch packets turn around at level 0 without climbing.
	if m.AvgLatency > 20 {
		t.Fatalf("same-switch latency %v too high", m.AvgLatency)
	}
}

func TestConservationLowLoad(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	cfg := Config{Tree: tree, Cycles: 2000, Warmup: 200, Rate: 0.02, Seed: 1}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Injected == 0 {
		t.Fatal("no injection")
	}
	// At 2% load the network drains: nearly everything measured is
	// delivered (allow the last few in flight).
	if m.Delivered < m.Injected-30 {
		t.Fatalf("delivered %d of %d injected", m.Delivered, m.Injected)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	lat := func(rate float64) float64 {
		m, err := Run(Config{Tree: tree, Cycles: 3000, Warmup: 500, Rate: rate, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if m.Delivered == 0 {
			t.Fatalf("rate %v: nothing delivered", rate)
		}
		return m.AvgLatency
	}
	low := lat(0.02)
	high := lat(0.30)
	if high <= low {
		t.Fatalf("latency did not grow with load: %.1f vs %.1f", low, high)
	}
}

func TestThroughputSaturates(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	tp := func(rate float64) float64 {
		m, err := Run(Config{Tree: tree, Cycles: 3000, Warmup: 500, Rate: rate, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return m.ThroughputFlits
	}
	// Throughput tracks offered load when unsaturated...
	if t1 := tp(0.02); t1 < 0.05 {
		t.Fatalf("throughput %v at 2%% load (offered 0.1 flits/node/cycle)", t1)
	}
	// ...and stops growing proportionally once saturated.
	t50 := tp(0.5)
	t90 := tp(0.9)
	if t90 > t50*1.6 {
		t.Fatalf("no saturation: %.3f at 0.5 vs %.3f at 0.9", t50, t90)
	}
}

func TestAdaptiveBeatsDeterministicUnderLoad(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	run := func(p UpPolicy) Metrics {
		m, err := Run(Config{Tree: tree, Cycles: 4000, Warmup: 500, Rate: 0.2, Seed: 4, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ad := run(AdaptiveFreeSpace)
	det := run(DeterministicFirst)
	if ad.ThroughputFlits <= det.ThroughputFlits {
		t.Fatalf("adaptive %.3f not above deterministic %.3f flits/node/cycle",
			ad.ThroughputFlits, det.ThroughputFlits)
	}
}

func TestBulkPermutationCompletes(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(64)
	cfg := Config{
		Tree: tree, PacketLen: 16, Seed: 5,
		Dest: func(src int, _ *rand.Rand) int { return perm[src] },
	}
	m, err := RunBulk(cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, d := range perm {
		if i != d {
			want++
		}
	}
	if m.Delivered != want {
		t.Fatalf("delivered %d want %d", m.Delivered, want)
	}
	// Lower bound: 16 flits need >= 16 cycles; the phase serializes far
	// beyond that under wormhole contention.
	if m.Cycles < 16 {
		t.Fatalf("implausible completion %d cycles", m.Cycles)
	}
}

func TestBulkDeterminism(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	perm := rand.New(rand.NewSource(6)).Perm(16)
	cfg := Config{Tree: tree, PacketLen: 8, Seed: 6, Dest: func(src int, _ *rand.Rand) int { return perm[src] }}
	a, err := RunBulk(cfg, 100000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBulk(cfg, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBulkHorizonError(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := Config{Tree: tree, PacketLen: 8, Dest: func(src int, _ *rand.Rand) int { return (src + 4) % 16 }}
	if _, err := RunBulk(cfg, 3); err == nil {
		t.Fatal("tiny horizon accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if AdaptiveFreeSpace.String() != "adaptive" || DeterministicFirst.String() != "deterministic" || RandomUp.String() != "random" {
		t.Fatal("policy strings")
	}
	if UpPolicy(9).String() == "" {
		t.Fatal("unknown policy string")
	}
}

func BenchmarkWormholeUniform(b *testing.B) {
	tree := topology.MustNew(3, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Tree: tree, Cycles: 1000, Warmup: 100, Rate: 0.1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVirtualChannelsImproveThroughput(t *testing.T) {
	// VCs remove head-of-line blocking: at moderate load, 4 VCs must not
	// do worse than 1 VC, and typically deliver more.
	tree := topology.MustNew(3, 4, 4)
	run := func(vcs int) Metrics {
		m, err := Run(Config{
			Tree: tree, Cycles: 4000, Warmup: 500, Rate: 0.15, Seed: 11,
			VirtualChannels: vcs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	v1 := run(1)
	v4 := run(4)
	if v4.ThroughputFlits < v1.ThroughputFlits*0.98 {
		t.Fatalf("4 VCs (%.3f) below 1 VC (%.3f)", v4.ThroughputFlits, v1.ThroughputFlits)
	}
	if v4.Delivered == 0 || v1.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestVirtualChannelsSingleWormUnaffected(t *testing.T) {
	// One worm in an idle network: the VC count must not change latency.
	tree := topology.MustNew(3, 4, 4)
	lat := func(vcs int) float64 {
		cfg := Config{Tree: tree, PacketLen: 5, VirtualChannels: vcs,
			Dest: func(src int, _ *rand.Rand) int { return 63 }}
		cfg.defaults()
		s := newSim(cfg)
		s.enqueue(0, 63, true)
		for s.delivered == 0 && s.cycle < 100 {
			s.step()
		}
		if s.delivered != 1 {
			t.Fatal("not delivered")
		}
		return s.metrics(s.cycle).AvgLatency
	}
	if l1, l4 := lat(1), lat(4); l1 != l4 {
		t.Fatalf("idle latency differs with VCs: %v vs %v", l1, l4)
	}
}

func TestVCBulkPermutationCompletes(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	perm := rand.New(rand.NewSource(13)).Perm(64)
	for _, vcs := range []int{1, 2, 4} {
		cfg := Config{
			Tree: tree, PacketLen: 16, Seed: 13, VirtualChannels: vcs,
			Dest: func(src int, _ *rand.Rand) int { return perm[src] },
		}
		m, err := RunBulk(cfg, 500000)
		if err != nil {
			t.Fatalf("vcs=%d: %v", vcs, err)
		}
		if m.Delivered == 0 {
			t.Fatalf("vcs=%d: nothing delivered", vcs)
		}
	}
}

func TestNegativeConfigRejected(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	if _, err := Run(Config{Tree: tree, Cycles: 10, VirtualChannels: -1}); err == nil {
		t.Fatal("negative VC count accepted")
	}
}

func TestStoreAndForwardRequiresDeepBuffers(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := Config{Tree: tree, Cycles: 100, Rate: 0.1, StoreAndForward: true, PacketLen: 8, BufferDepth: 4}
	if _, err := Run(cfg); err == nil {
		t.Fatal("S&F with shallow buffers accepted")
	}
	cfg.Dest = func(src int, _ *rand.Rand) int { return (src + 4) % 16 }
	if _, err := RunBulk(cfg, 1000); err == nil {
		t.Fatal("S&F bulk with shallow buffers accepted")
	}
}

func TestStoreAndForwardLatencyMultiplies(t *testing.T) {
	// Idle network, one packet over 2H+1 hops: wormhole latency ~ hops +
	// packetLen; store-and-forward ~ hops * packetLen. With 8-flit
	// packets on a 5-hop path S&F must be clearly slower.
	tree := topology.MustNew(3, 4, 4)
	lat := func(sf bool) float64 {
		cfg := Config{
			Tree: tree, PacketLen: 8, BufferDepth: 8, StoreAndForward: sf,
			Dest: func(src int, _ *rand.Rand) int { return 63 },
		}
		cfg.defaults()
		s := newSim(cfg)
		s.enqueue(0, 63, true)
		for s.delivered == 0 && s.cycle < 500 {
			s.step()
		}
		if s.delivered != 1 {
			t.Fatalf("sf=%v: not delivered", sf)
		}
		return s.metrics(s.cycle).AvgLatency
	}
	wh, sf := lat(false), lat(true)
	if sf < wh+10 {
		t.Fatalf("S&F latency %.0f not clearly above wormhole %.0f", sf, wh)
	}
}

func TestStoreAndForwardStillDelivers(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := Run(Config{
		Tree: tree, Cycles: 3000, Warmup: 500, Rate: 0.05, Seed: 9,
		StoreAndForward: true, PacketLen: 4, BufferDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered == 0 {
		t.Fatal("S&F delivered nothing")
	}
}
