// Package des is a minimal deterministic discrete-event simulation kernel:
// an event queue ordered by (time, insertion sequence) with a monotonic
// clock. It replaces the SystemC runtime the paper used for its system
// simulation (see DESIGN.md §5) — SystemC contributes event scheduling and
// a clock, which is exactly what this kernel provides.
package des

import "container/heap"

// Time is the simulated clock in abstract cycles.
type Time uint64

// Kernel is a discrete-event simulator. The zero value is ready to use.
// It is not safe for concurrent use.
type Kernel struct {
	pq   eventQueue
	now  Time
	seq  uint64
	runs uint64
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.pq.Len() }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.runs }

// At schedules fn at absolute time t. Scheduling in the past panics —
// time travel indicates a logic error in the model. Events at the same
// time run in scheduling order (deterministic).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic("des: event scheduled in the past")
	}
	heap.Push(&k.pq, event{at: t, seq: k.seq, fn: fn})
	k.seq++
}

// After schedules fn d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Step executes the earliest event, advancing the clock to it. It reports
// whether an event was executed.
func (k *Kernel) Step() bool {
	if k.pq.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(event)
	k.now = e.at
	k.runs++
	e.fn()
	return true
}

// Run executes events until the queue drains, returning the number of
// events executed by this call.
func (k *Kernel) Run() uint64 {
	start := k.runs
	for k.Step() {
	}
	return k.runs - start
}

// RunUntil executes events with time <= deadline, leaving later events
// queued, and advances the clock to the deadline if it ran dry earlier.
func (k *Kernel) RunUntil(deadline Time) {
	for k.pq.Len() > 0 && k.pq[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}
