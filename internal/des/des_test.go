package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var k Kernel
	if k.Now() != 0 || k.Pending() != 0 || k.Processed() != 0 {
		t.Fatal("zero kernel not clean")
	}
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
}

func TestEventOrderByTime(t *testing.T) {
	var k Kernel
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	if n := k.Run(); n != 3 {
		t.Fatalf("Run executed %d", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	var k Kernel
	var at Time
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	k.Run()
	if at != 15 {
		t.Fatalf("After landed at %d", at)
	}
}

func TestPastPanics(t *testing.T) {
	var k Kernel
	k.At(10, func() {})
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	var got []Time
	for _, tt := range []Time{1, 5, 9, 15} {
		tt := tt
		k.At(tt, func() { got = append(got, tt) })
	}
	k.RunUntil(9)
	if len(got) != 3 || k.Pending() != 1 || k.Now() != 9 {
		t.Fatalf("got %v pending %d now %d", got, k.Pending(), k.Now())
	}
	k.RunUntil(20)
	if len(got) != 4 || k.Now() != 20 {
		t.Fatalf("after second run: %v now %d", got, k.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var k Kernel
	k.RunUntil(100)
	if k.Now() != 100 {
		t.Fatalf("Now = %d", k.Now())
	}
}

func TestCascade(t *testing.T) {
	// Events scheduling events: a chain of N hops lands at time N.
	var k Kernel
	const n = 1000
	count := 0
	var hop func()
	hop = func() {
		count++
		if count < n {
			k.After(1, hop)
		}
	}
	k.At(1, hop)
	k.Run()
	if count != n || k.Now() != n {
		t.Fatalf("count %d now %d", count, k.Now())
	}
	if k.Processed() != n {
		t.Fatalf("Processed = %d", k.Processed())
	}
}

// Property: events fire in nondecreasing time order regardless of
// insertion order.
func TestQuickMonotonicTime(t *testing.T) {
	f := func(raw []uint16) bool {
		var k Kernel
		var fired []Time
		for _, r := range raw {
			tt := Time(r)
			k.At(tt, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: all scheduled events execute exactly once.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)
		var k Kernel
		count := 0
		for i := 0; i < n; i++ {
			k.At(Time(rng.Intn(50)), func() { count++ })
		}
		k.Run()
		return count == n && k.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedule(b *testing.B) {
	var k Kernel
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.At(Time(i), fn)
		k.Step()
	}
}
