// Package traffic generates the communication workloads used by the
// evaluation: the paper's random permutations ("We generate a set of 100
// random permutations for each test point") plus the standard structured
// patterns of the parallel-interconnect literature (bit reversal,
// transpose, shuffle, tornado, neighbor, hotspot, uniform random) used by
// the extension experiments.
//
// Every generator is deterministic given its seed, so experiments are
// exactly reproducible.
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/core"
)

// Pattern names a workload shape.
type Pattern int

// Supported patterns.
const (
	// RandomPermutation draws a uniform random permutation π and issues
	// one request i → π(i) per node — the paper's workload.
	RandomPermutation Pattern = iota
	// UniformRandom issues one request per node to an independently
	// uniform destination (collisions allowed).
	UniformRandom
	// Hotspot sends a fraction of the traffic to one hot node and the
	// rest uniformly.
	Hotspot
	// BitReversal sends node b_{k-1}…b_0 to node b_0…b_{k-1}
	// (power-of-two node counts only).
	BitReversal
	// BitComplement sends node x to node ^x (power-of-two counts only).
	BitComplement
	// Transpose treats the node id as a 2D coordinate and swaps axes
	// (perfect-square node counts only).
	Transpose
	// Shuffle rotates the node id bits left by one (power-of-two only).
	Shuffle
	// Tornado sends node i to (i + N/2 - 1) mod N.
	Tornado
	// Neighbor sends node i to i+1 mod N.
	Neighbor
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case RandomPermutation:
		return "random-permutation"
	case UniformRandom:
		return "uniform-random"
	case Hotspot:
		return "hotspot"
	case BitReversal:
		return "bit-reversal"
	case BitComplement:
		return "bit-complement"
	case Transpose:
		return "transpose"
	case Shuffle:
		return "shuffle"
	case Tornado:
		return "tornado"
	case Neighbor:
		return "neighbor"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Generator produces request batches over n nodes.
type Generator struct {
	n   int
	rng *rand.Rand

	// HotspotNode and HotspotFraction configure the Hotspot pattern:
	// each source sends to HotspotNode with probability HotspotFraction,
	// else to a uniform destination. Defaults: node 0, fraction 0.2.
	HotspotNode     int
	HotspotFraction float64
}

// NewGenerator returns a Generator over n nodes seeded deterministically.
func NewGenerator(n int, seed int64) *Generator {
	return &Generator{
		n:               n,
		rng:             rand.New(rand.NewSource(seed)),
		HotspotNode:     0,
		HotspotFraction: 0.2,
	}
}

// Nodes reports the node count.
func (g *Generator) Nodes() int { return g.n }

// Batch produces one batch of the given pattern: exactly one request per
// source node. It returns an error for patterns whose structural
// requirements (power of two, perfect square) the node count violates.
func (g *Generator) Batch(p Pattern) ([]core.Request, error) {
	switch p {
	case RandomPermutation:
		return g.permutation(), nil
	case UniformRandom:
		return g.uniform(), nil
	case Hotspot:
		return g.hotspot(), nil
	case BitReversal:
		return g.bitPattern(p)
	case BitComplement:
		return g.bitPattern(p)
	case Shuffle:
		return g.bitPattern(p)
	case Transpose:
		return g.transpose()
	case Tornado:
		return g.indexed(func(i int) int { return (i + g.n/2 - 1 + g.n) % g.n }), nil
	case Neighbor:
		return g.indexed(func(i int) int { return (i + 1) % g.n }), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %v", p)
	}
}

// MustBatch is Batch that panics on error, for known-valid combinations.
func (g *Generator) MustBatch(p Pattern) []core.Request {
	b, err := g.Batch(p)
	if err != nil {
		panic(err)
	}
	return b
}

// Permutations produces count independent random permutations (the
// paper's "set of 100 random permutations for each test point").
func (g *Generator) Permutations(count int) [][]core.Request {
	out := make([][]core.Request, count)
	for i := range out {
		out[i] = g.permutation()
	}
	return out
}

func (g *Generator) permutation() []core.Request {
	perm := g.rng.Perm(g.n)
	return g.indexed(func(i int) int { return perm[i] })
}

func (g *Generator) uniform() []core.Request {
	return g.indexed(func(int) int { return g.rng.Intn(g.n) })
}

func (g *Generator) hotspot() []core.Request {
	return g.indexed(func(int) int {
		if g.rng.Float64() < g.HotspotFraction {
			return g.HotspotNode
		}
		return g.rng.Intn(g.n)
	})
}

func (g *Generator) bitPattern(p Pattern) ([]core.Request, error) {
	if g.n&(g.n-1) != 0 || g.n == 0 {
		return nil, fmt.Errorf("traffic: %v needs a power-of-two node count, have %d", p, g.n)
	}
	k := bits.TrailingZeros(uint(g.n))
	f := func(i int) int {
		switch p {
		case BitReversal:
			return int(bits.Reverse(uint(i)) >> (bits.UintSize - k))
		case BitComplement:
			return ^i & (g.n - 1)
		default: // Shuffle
			return ((i << 1) | (i >> (k - 1))) & (g.n - 1)
		}
	}
	return g.indexed(f), nil
}

func (g *Generator) transpose() ([]core.Request, error) {
	side := isqrt(g.n)
	if side*side != g.n {
		return nil, fmt.Errorf("traffic: transpose needs a square node count, have %d", g.n)
	}
	return g.indexed(func(i int) int {
		r, c := i/side, i%side
		return c*side + r
	}), nil
}

func (g *Generator) indexed(dst func(int) int) []core.Request {
	reqs := make([]core.Request, g.n)
	for i := range reqs {
		reqs[i] = core.Request{Src: i, Dst: dst(i)}
	}
	return reqs
}

func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// IsPermutation reports whether a batch is a permutation: one request per
// source 0..n-1 in order and each destination hit exactly once.
func IsPermutation(reqs []core.Request) bool {
	n := len(reqs)
	seen := make([]bool, n)
	for i, r := range reqs {
		if r.Src != i || r.Dst < 0 || r.Dst >= n || seen[r.Dst] {
			return false
		}
		seen[r.Dst] = true
	}
	return true
}
