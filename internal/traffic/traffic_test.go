package traffic

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRandomPermutationIsPermutation(t *testing.T) {
	g := NewGenerator(64, 1)
	for trial := 0; trial < 20; trial++ {
		b := g.MustBatch(RandomPermutation)
		if !IsPermutation(b) {
			t.Fatalf("trial %d: not a permutation", trial)
		}
	}
}

func TestPermutationsCountAndVariety(t *testing.T) {
	g := NewGenerator(64, 2)
	batches := g.Permutations(100)
	if len(batches) != 100 {
		t.Fatalf("got %d batches", len(batches))
	}
	// At least two batches must differ (overwhelmingly likely).
	same := true
	for i := range batches[0] {
		if batches[0][i] != batches[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive permutations identical")
	}
	for i, b := range batches {
		if !IsPermutation(b) {
			t.Fatalf("batch %d not a permutation", i)
		}
	}
}

func TestDeterministicSeeding(t *testing.T) {
	a := NewGenerator(64, 42).MustBatch(RandomPermutation)
	b := NewGenerator(64, 42).MustBatch(RandomPermutation)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := NewGenerator(64, 43).MustBatch(RandomPermutation)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestUniformRandomShape(t *testing.T) {
	g := NewGenerator(128, 3)
	b := g.MustBatch(UniformRandom)
	if len(b) != 128 {
		t.Fatalf("len = %d", len(b))
	}
	for i, r := range b {
		if r.Src != i || r.Dst < 0 || r.Dst >= 128 {
			t.Fatalf("bad request %+v at %d", r, i)
		}
	}
}

func TestHotspotBias(t *testing.T) {
	g := NewGenerator(256, 4)
	g.HotspotNode = 7
	g.HotspotFraction = 0.5
	hits := 0
	for trial := 0; trial < 10; trial++ {
		for _, r := range g.MustBatch(Hotspot) {
			if r.Dst == 7 {
				hits++
			}
		}
	}
	total := 10 * 256
	// Expected ~0.5 plus uniform collisions; demand well above uniform.
	if hits < total/3 {
		t.Fatalf("hotspot hit rate %d/%d too low", hits, total)
	}
}

func TestBitReversal(t *testing.T) {
	g := NewGenerator(8, 5)
	b := g.MustBatch(BitReversal)
	want := []int{0, 4, 2, 6, 1, 5, 3, 7}
	for i, r := range b {
		if r.Dst != want[i] {
			t.Fatalf("rev(%d) = %d want %d", i, r.Dst, want[i])
		}
	}
	if !IsPermutation(b) {
		t.Fatal("bit reversal is not a permutation")
	}
}

func TestBitComplement(t *testing.T) {
	g := NewGenerator(16, 6)
	b := g.MustBatch(BitComplement)
	for i, r := range b {
		if r.Dst != 15-i {
			t.Fatalf("comp(%d) = %d", i, r.Dst)
		}
	}
}

func TestShuffle(t *testing.T) {
	g := NewGenerator(8, 7)
	b := g.MustBatch(Shuffle)
	// Left-rotate 3-bit ids: 1 (001) -> 2 (010); 4 (100) -> 1 (001).
	if b[1].Dst != 2 || b[4].Dst != 1 || b[7].Dst != 7 {
		t.Fatalf("shuffle wrong: %v %v %v", b[1], b[4], b[7])
	}
	if !IsPermutation(b) {
		t.Fatal("shuffle is not a permutation")
	}
}

func TestTranspose(t *testing.T) {
	g := NewGenerator(16, 8)
	b, err := g.Batch(Transpose)
	if err != nil {
		t.Fatal(err)
	}
	// Node (r,c) = r*4+c goes to c*4+r.
	if b[1].Dst != 4 || b[6].Dst != 9 || b[5].Dst != 5 {
		t.Fatalf("transpose wrong: %v %v %v", b[1], b[6], b[5])
	}
	if !IsPermutation(b) {
		t.Fatal("transpose is not a permutation")
	}
}

func TestTornadoAndNeighbor(t *testing.T) {
	g := NewGenerator(8, 9)
	tor := g.MustBatch(Tornado)
	if tor[0].Dst != 3 || tor[5].Dst != 0 {
		t.Fatalf("tornado wrong: %v %v", tor[0], tor[5])
	}
	nb := g.MustBatch(Neighbor)
	if nb[7].Dst != 0 || nb[0].Dst != 1 {
		t.Fatalf("neighbor wrong: %v %v", nb[7], nb[0])
	}
	if !IsPermutation(tor) || !IsPermutation(nb) {
		t.Fatal("tornado/neighbor not permutations")
	}
}

func TestStructuralRequirements(t *testing.T) {
	g := NewGenerator(81, 10) // 3^4: not a power of two, is a square
	if _, err := g.Batch(BitReversal); err == nil {
		t.Error("bit reversal accepted non-power-of-two")
	}
	if _, err := g.Batch(BitComplement); err == nil {
		t.Error("bit complement accepted non-power-of-two")
	}
	if _, err := g.Batch(Shuffle); err == nil {
		t.Error("shuffle accepted non-power-of-two")
	}
	if _, err := g.Batch(Transpose); err != nil {
		t.Error("transpose rejected 81 (=9²)")
	}
	g2 := NewGenerator(8, 11)
	if _, err := g2.Batch(Transpose); err == nil {
		t.Error("transpose accepted 8")
	}
}

func TestMustBatchPanics(t *testing.T) {
	g := NewGenerator(6, 12)
	defer func() {
		if recover() == nil {
			t.Fatal("MustBatch did not panic")
		}
	}()
	g.MustBatch(BitReversal)
}

func TestUnknownPattern(t *testing.T) {
	g := NewGenerator(8, 13)
	if _, err := g.Batch(Pattern(99)); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Fatal("unknown pattern string")
	}
}

func TestPatternStrings(t *testing.T) {
	names := map[Pattern]string{
		RandomPermutation: "random-permutation",
		UniformRandom:     "uniform-random",
		Hotspot:           "hotspot",
		BitReversal:       "bit-reversal",
		BitComplement:     "bit-complement",
		Transpose:         "transpose",
		Shuffle:           "shuffle",
		Tornado:           "tornado",
		Neighbor:          "neighbor",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q want %q", int(p), p.String(), want)
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]core.Request{{Src: 1, Dst: 0}, {Src: 0, Dst: 1}}) {
		t.Error("out-of-order sources accepted")
	}
	if IsPermutation([]core.Request{{Src: 0, Dst: 0}, {Src: 1, Dst: 0}}) {
		t.Error("duplicate destination accepted")
	}
	if IsPermutation([]core.Request{{Src: 0, Dst: 5}}) {
		t.Error("out-of-range destination accepted")
	}
	if !IsPermutation(nil) {
		t.Error("empty batch should be a (trivial) permutation")
	}
}

// Property: deterministic structured patterns are permutations for all
// valid sizes.
func TestQuickStructuredPermutations(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw)%6 + 2 // 4..128 nodes
		n := 1 << k
		g := NewGenerator(n, int64(k))
		for _, p := range []Pattern{BitReversal, BitComplement, Shuffle, Tornado, Neighbor} {
			b, err := g.Batch(p)
			if err != nil || !IsPermutation(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: uniform destinations stay in range for arbitrary sizes.
func TestQuickUniformInRange(t *testing.T) {
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 1
		g := NewGenerator(n, seed)
		for _, r := range g.MustBatch(UniformRandom) {
			if r.Dst < 0 || r.Dst >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPermutation4096(b *testing.B) {
	g := NewGenerator(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MustBatch(RandomPermutation)
	}
}
