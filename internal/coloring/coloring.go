// Package coloring edge-colors bipartite multigraphs. By König's
// edge-coloring theorem a bipartite multigraph with maximum degree Δ can
// be properly edge-colored with exactly Δ colors; the colors serve as
// conflict-free upward-port assignments in the optimal fat-tree scheduler
// (package optimal).
//
// The implementation regularizes the graph to degree Δ with dummy
// vertices/edges and peels off Δ perfect matchings with Hopcroft–Karp.
package coloring

import (
	"fmt"

	"repro/internal/matching"
)

// Edge is one edge of a bipartite multigraph; parallel edges are allowed
// and are distinguished by their slice position.
type Edge struct {
	L, R int
}

// MaxDegree returns the maximum vertex degree of the multigraph.
func MaxDegree(nL, nR int, edges []Edge) int {
	degL := make([]int, nL)
	degR := make([]int, nR)
	max := 0
	for _, e := range edges {
		degL[e.L]++
		degR[e.R]++
		if degL[e.L] > max {
			max = degL[e.L]
		}
		if degR[e.R] > max {
			max = degR[e.R]
		}
	}
	return max
}

// Color properly edge-colors the multigraph with the given number of
// colors, which must be at least the maximum degree. It returns one color
// in [0, colors) per edge, such that no two edges sharing an endpoint
// receive the same color.
func Color(nL, nR int, edges []Edge, colors int) ([]int, error) {
	for i, e := range edges {
		if e.L < 0 || e.L >= nL || e.R < 0 || e.R >= nR {
			return nil, fmt.Errorf("coloring: edge %d (%d,%d) out of range %dx%d", i, e.L, e.R, nL, nR)
		}
	}
	if d := MaxDegree(nL, nR, edges); colors < d {
		return nil, fmt.Errorf("coloring: %d colors < max degree %d", colors, d)
	}
	if len(edges) == 0 {
		return []int{}, nil
	}
	if colors == 0 {
		return nil, fmt.Errorf("coloring: zero colors for a non-empty graph")
	}

	// Regularize: pad both sides to the same vertex count, then add dummy
	// edges until every vertex has degree == colors. Dummy edges connect
	// any deficient left vertex to any deficient right vertex; both sides
	// have identical total deficit (colors·V − E).
	v := nL
	if nR > v {
		v = nR
	}
	degL := make([]int, v)
	degR := make([]int, v)
	type edgeRef struct {
		l, r int
		id   int // index into edges, or -1 for dummy
	}
	all := make([]edgeRef, 0, v*colors)
	for i, e := range edges {
		degL[e.L]++
		degR[e.R]++
		all = append(all, edgeRef{e.L, e.R, i})
	}
	li, ri := 0, 0
	for {
		for li < v && degL[li] >= colors {
			li++
		}
		if li == v {
			break
		}
		for ri < v && degR[ri] >= colors {
			ri++
		}
		if ri == v {
			return nil, fmt.Errorf("coloring: internal deficit mismatch") // unreachable
		}
		degL[li]++
		degR[ri]++
		all = append(all, edgeRef{li, ri, -1})
	}

	// Peel off `colors` perfect matchings. remaining[l] holds indices
	// into all for edges of l not yet colored.
	out := make([]int, len(edges))
	remaining := make([][]int, v)
	for i, e := range all {
		remaining[e.l] = append(remaining[e.l], i)
	}
	adj := make([][]int, v)
	for c := 0; c < colors; c++ {
		for l := 0; l < v; l++ {
			adj[l] = adj[l][:0]
			for _, ei := range remaining[l] {
				adj[l] = append(adj[l], all[ei].r)
			}
		}
		matchL, size := matching.Max(v, v, adj)
		if size != v {
			return nil, fmt.Errorf("coloring: round %d found matching of %d/%d (graph not regularized?)", c, size, v)
		}
		// Consume one concrete edge per matched pair.
		for l := 0; l < v; l++ {
			r := matchL[l]
			picked := -1
			for k, ei := range remaining[l] {
				if all[ei].r == r {
					picked = k
					break
				}
			}
			if picked == -1 {
				return nil, fmt.Errorf("coloring: matched pair (%d,%d) has no remaining edge", l, r)
			}
			ei := remaining[l][picked]
			remaining[l][picked] = remaining[l][len(remaining[l])-1]
			remaining[l] = remaining[l][:len(remaining[l])-1]
			if id := all[ei].id; id >= 0 {
				out[id] = c
			}
		}
	}
	return out, nil
}

// Check verifies a proper coloring: every edge has a color in [0, colors)
// and no endpoint sees a color twice. It returns the first violation.
func Check(nL, nR int, edges []Edge, colors int, assignment []int) error {
	if len(assignment) != len(edges) {
		return fmt.Errorf("coloring: %d assignments for %d edges", len(assignment), len(edges))
	}
	seenL := make(map[[2]int]int, len(edges))
	seenR := make(map[[2]int]int, len(edges))
	for i, e := range edges {
		c := assignment[i]
		if c < 0 || c >= colors {
			return fmt.Errorf("coloring: edge %d color %d out of range", i, c)
		}
		if j, dup := seenL[[2]int{e.L, c}]; dup {
			return fmt.Errorf("coloring: edges %d and %d share left vertex %d and color %d", j, i, e.L, c)
		}
		if j, dup := seenR[[2]int{e.R, c}]; dup {
			return fmt.Errorf("coloring: edges %d and %d share right vertex %d and color %d", j, i, e.R, c)
		}
		seenL[[2]int{e.L, c}] = i
		seenR[[2]int{e.R, c}] = i
	}
	return nil
}
