package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	got, err := Color(0, 0, nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err = Color(3, 3, nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("edgeless: %v %v", got, err)
	}
}

func TestMaxDegree(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}, {1, 1}}
	if d := MaxDegree(2, 2, edges); d != 2 {
		t.Fatalf("MaxDegree = %d", d)
	}
	if MaxDegree(2, 2, nil) != 0 {
		t.Fatal("empty degree != 0")
	}
}

func TestColorRejects(t *testing.T) {
	if _, err := Color(2, 2, []Edge{{0, 0}, {0, 1}}, 1); err == nil {
		t.Error("colors < max degree accepted")
	}
	if _, err := Color(1, 1, []Edge{{1, 0}}, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Color(1, 1, []Edge{{0, -1}}, 1); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestColorPermutation(t *testing.T) {
	// A permutation (1-regular) needs exactly one color.
	edges := []Edge{{0, 2}, {1, 0}, {2, 1}}
	got, err := Color(3, 3, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(3, 3, edges, 1, got); err != nil {
		t.Fatal(err)
	}
}

func TestColorCompleteBipartite(t *testing.T) {
	// K_{3,3} is 3-regular: exactly 3 colors.
	var edges []Edge
	for l := 0; l < 3; l++ {
		for r := 0; r < 3; r++ {
			edges = append(edges, Edge{l, r})
		}
	}
	got, err := Color(3, 3, edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(3, 3, edges, 3, got); err != nil {
		t.Fatal(err)
	}
}

func TestColorMultigraph(t *testing.T) {
	// Two parallel edges need two colors.
	edges := []Edge{{0, 0}, {0, 0}}
	got, err := Color(1, 1, edges, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == got[1] {
		t.Fatalf("parallel edges share color %d", got[0])
	}
	if err := Check(1, 1, edges, 2, got); err != nil {
		t.Fatal(err)
	}
}

func TestColorIrregularWithSlack(t *testing.T) {
	// Degree-2 graph colored with 4 colors (slack mirrors a fat tree
	// with more parents than children).
	edges := []Edge{{0, 0}, {0, 1}, {1, 0}, {2, 2}}
	got, err := Color(3, 3, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(3, 3, edges, 4, got); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedSides(t *testing.T) {
	edges := []Edge{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	got, err := Color(4, 1, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(4, 1, edges, 4, got); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	edges := []Edge{{0, 0}, {0, 1}}
	if err := Check(1, 2, edges, 2, []int{0, 0}); err == nil {
		t.Error("shared left color accepted")
	}
	edges = []Edge{{0, 0}, {1, 0}}
	if err := Check(2, 1, edges, 2, []int{1, 1}); err == nil {
		t.Error("shared right color accepted")
	}
	if err := Check(2, 1, edges, 2, []int{0, 2}); err == nil {
		t.Error("out-of-range color accepted")
	}
	if err := Check(2, 1, edges, 2, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
}

// Property: random multigraphs with max degree d are properly colorable
// with d colors, and the returned assignment passes Check.
func TestQuickKonigColoring(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := rng.Intn(8) + 1
		nR := rng.Intn(8) + 1
		// Build a random multigraph by unioning up to 5 partial matchings
		// (keeps max degree bounded and known).
		var edges []Edge
		rounds := rng.Intn(5) + 1
		for k := 0; k < rounds; k++ {
			permR := rng.Perm(nR)
			for l := 0; l < nL && l < nR; l++ {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{l, permR[l]})
				}
			}
		}
		d := MaxDegree(nL, nR, edges)
		if d == 0 {
			return true
		}
		got, err := Color(nL, nR, edges, d)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return Check(nL, nR, edges, d, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a union of k random permutations is k-regular and k-colorable.
func TestQuickRegularDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		k := rng.Intn(6) + 1
		var edges []Edge
		for round := 0; round < k; round++ {
			for l, r := range rng.Perm(n) {
				edges = append(edges, Edge{l, r})
			}
		}
		got, err := Color(n, n, edges, k)
		if err != nil {
			return false
		}
		return Check(n, n, edges, k, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkColor64x64Deg8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 64, 8
	var edges []Edge
	for k := 0; k < d; k++ {
		for l, r := range rng.Perm(n) {
			edges = append(edges, Edge{l, r})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(n, n, edges, d); err != nil {
			b.Fatal(err)
		}
	}
}
