package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/parsched"
)

// ParamDoc documents one parameter a family accepts.
type ParamDoc struct {
	Key string // "policy", "workers", "rollback", ...
	Doc string // values and default, one line
}

// Info is a registered family's self-description, for -list output and
// error suggestions.
type Info struct {
	Family  string
	Aliases []string
	Summary string // one line, shown next to the family name
	Params  []ParamDoc
	Example string // a representative full spec
}

// family couples an Info with its validated factory.
type family struct {
	info  Info
	build func(p *params) (core.Scheduler, error)
}

// sharedOpts parses the option keys the Options-driven families
// (level-wise, local, parallel) have in common.
func sharedOpts(p *params) (core.Options, error) {
	var opts core.Options
	switch v := p.value("policy", "first-fit"); v {
	case "first-fit":
		opts.Policy = core.FirstFit
	case "random":
		opts.Policy = core.RandomFit
	case "least-loaded":
		opts.Policy = core.LeastLoaded
	default:
		return opts, fmt.Errorf("invalid policy=%q (first-fit, random or least-loaded)", v)
	}
	switch v := p.value("order", "natural"); v {
	case "natural":
		opts.Order = core.NaturalOrder
	case "shuffle", "shuffled":
		opts.Order = core.ShuffledOrder
	case "deepest-first":
		opts.Order = core.DeepestFirst
	default:
		return opts, fmt.Errorf("invalid order=%q (natural, shuffle or deepest-first)", v)
	}
	if seed, ok, err := p.intValue("seed"); err != nil {
		return opts, err
	} else if ok {
		opts.Rand = rand.New(rand.NewSource(int64(seed)))
	}
	return opts, nil
}

var optionParams = []ParamDoc{
	{"policy", "port choice: first-fit (default), random, least-loaded"},
	{"order", "request order: natural (default), shuffle, deepest-first"},
	{"seed", "seed for random policy/order (default: fixed seed 1)"},
}

// families is the registry. Order here is presentation order for List.
var families = []family{
	{
		info: Info{
			Family:  "level-wise",
			Aliases: []string{"levelwise"},
			Summary: "the paper's global scheduler: per-level AND of Ulink(h,σ) and Dlink(h,δ)",
			Params: append([]ParamDoc{
				{"traversal", "level-major (default, Figure 7) or request-major"},
				{"rollback", "flag: release a failed request's partial path"},
				{"incremental", "flag: delta epochs — held grants stay allocated across batches (ScheduleDeltaInto)"},
				{"reuse-cost", "score up-ports by held-circuit overlap at the parents, capped at K (requires incremental; replaces policy)"},
			}, optionParams...),
			Example: "level-wise,policy=random,order=shuffle,rollback",
		},
		build: func(p *params) (core.Scheduler, error) {
			opts, err := sharedOpts(p)
			if err != nil {
				return nil, err
			}
			switch v := p.value("traversal", "level-major"); v {
			case "level-major":
				opts.Traversal = core.LevelMajor
			case "request-major":
				opts.Traversal = core.RequestMajor
			default:
				return nil, fmt.Errorf("invalid traversal=%q (level-major or request-major)", v)
			}
			opts.Rollback = p.flag("rollback")
			opts.Incremental = p.flag("incremental")
			if n, ok, err := p.intValue("reuse-cost"); err != nil {
				return nil, err
			} else if ok {
				if !opts.Incremental {
					return nil, fmt.Errorf("reuse-cost requires the incremental flag (reuse scores held routes, which only persist across delta epochs)")
				}
				if n < 1 {
					return nil, fmt.Errorf("invalid reuse-cost=%d (must be >= 1)", n)
				}
				if opts.Policy != core.FirstFit {
					return nil, fmt.Errorf("reuse-cost replaces the port policy (remove policy=%s)", opts.Policy)
				}
				opts.ReuseCost = n
			}
			return &core.LevelWise{Opts: opts}, nil
		},
	},
	{
		info: Info{
			Family:  "local",
			Aliases: []string{"local-greedy", "local-random"},
			Summary: "the conventional adaptive baseline: climbs on local Ulink only, blind to Dlink",
			Params: append([]ParamDoc{
				{"retries", "extra randomized re-attempts after a failure (default 0)"},
			}, optionParams...),
			Example: "local,policy=random,retries=2",
		},
		build: func(p *params) (core.Scheduler, error) {
			opts, err := sharedOpts(p)
			if err != nil {
				return nil, err
			}
			if n, ok, err := p.intValue("retries"); err != nil {
				return nil, err
			} else if ok {
				if n < 0 {
					return nil, fmt.Errorf("invalid retries=%d (must be >= 0)", n)
				}
				opts.Retries = n
			}
			return &core.Local{Opts: opts}, nil
		},
	},
	{
		info: Info{
			Family:  "backtrack",
			Summary: "level-wise with a bounded DFS: dead ends step back a level and retry",
			Params: []ParamDoc{
				{"depth", "max backtracks per request (default 1; 0 = plain level-wise)"},
			},
			Example: "backtrack,depth=4",
		},
		build: func(p *params) (core.Scheduler, error) {
			depth := 1
			if n, ok, err := p.intValue("depth"); err != nil {
				return nil, err
			} else if ok {
				if n < 0 {
					return nil, fmt.Errorf("invalid depth=%d (must be >= 0)", n)
				}
				depth = n
			}
			return &core.BacktrackLevelWise{Backtracks: depth}, nil
		},
	},
	{
		info: Info{
			Family:  "stale",
			Summary: "level-wise against a lagging Dlink snapshot, refreshed every window requests",
			Params: []ParamDoc{
				{"window", "requests between view refreshes (default 1 = always fresh)"},
			},
			Example: "stale,window=16",
		},
		build: func(p *params) (core.Scheduler, error) {
			window := 1
			if n, ok, err := p.intValue("window"); err != nil {
				return nil, err
			} else if ok {
				if n < 1 {
					return nil, fmt.Errorf("invalid window=%d (must be >= 1)", n)
				}
				window = n
			}
			return &core.StaleLevelWise{Window: window}, nil
		},
	},
	{
		info: Info{
			Family:  "optimal",
			Summary: "rearrangeable reference: bipartite edge coloring, 100% on admissible batches",
			Example: "optimal",
		},
		build: func(p *params) (core.Scheduler, error) {
			return optimal.New(), nil
		},
	},
	{
		info: Info{
			Family:  "parallel",
			Summary: "level-wise fanned across worker goroutines (deterministic, racy, or shard arbitration)",
			Params: append([]ParamDoc{
				{"mode", "deterministic (default, bit-identical to level-wise), racy (lock-free CAS), or shard (subtree-sharded, zero coordination)"},
				{"workers", "scheduling goroutines (default 0 = GOMAXPROCS)"},
				{"steal", "flag: work stealing across shard queues (mode=shard only)"},
				{"shard-level", "subtree level ℓ the shard mode partitions at (default: one below the root; mode=shard only)"},
				{"rollback", "flag: release a failed request's partial path"},
			}, optionParams...),
			Example: "parallel,mode=racy,workers=8",
		},
		build: func(p *params) (core.Scheduler, error) {
			opts, err := sharedOpts(p)
			if err != nil {
				return nil, err
			}
			opts.Rollback = p.flag("rollback")
			cfg := parsched.Config{Opts: opts}
			switch v := p.value("mode", "deterministic"); v {
			case "deterministic":
				cfg.Mode = parsched.Deterministic
			case "racy":
				cfg.Mode = parsched.Racy
			case "shard":
				cfg.Mode = parsched.Shard
			default:
				return nil, fmt.Errorf("invalid mode=%q (deterministic, racy or shard)", v)
			}
			if cfg.Steal = p.flag("steal"); cfg.Steal && cfg.Mode != parsched.Shard {
				return nil, fmt.Errorf("steal requires mode=shard")
			}
			if n, ok, err := p.intValue("shard-level"); err != nil {
				return nil, err
			} else if ok {
				if cfg.Mode != parsched.Shard {
					return nil, fmt.Errorf("shard-level requires mode=shard")
				}
				if n < 1 {
					return nil, fmt.Errorf("invalid shard-level=%d (must be >= 1)", n)
				}
				cfg.ShardLevel = n
			}
			if n, ok, err := p.intValue("workers"); err != nil {
				return nil, err
			} else if ok {
				if n < 0 {
					return nil, fmt.Errorf("invalid workers=%d (must be >= 0)", n)
				}
				cfg.Workers = n
			}
			return parsched.New(cfg), nil
		},
	},
}

// aliases expand shorthand family names into full spec prefixes, keeping
// the pre-registry scheduler names working.
var aliases = map[string]string{
	"levelwise":    "level-wise",
	"local-greedy": "local",
	"local-random": "local,policy=random",
}

// params holds a spec's parsed key=value pairs and flags, tracking which
// keys a factory consumed so leftovers are reported as errors.
type params struct {
	family string
	kv     map[string]string
	flags  map[string]bool
	used   map[string]bool
}

func (p *params) value(key, def string) string {
	p.used[key] = true
	if v, ok := p.kv[key]; ok {
		return v
	}
	return def
}

func (p *params) intValue(key string) (int, bool, error) {
	p.used[key] = true
	v, ok := p.kv[key]
	if !ok {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, fmt.Errorf("invalid %s=%q (must be an integer)", key, v)
	}
	return n, true, nil
}

func (p *params) flag(name string) bool {
	p.used[name] = true
	return p.flags[name]
}

// leftover returns the keys and flags the factory never consulted.
func (p *params) leftover() []string {
	var out []string
	for k := range p.kv {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	for f := range p.flags {
		if !p.used[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// validKeys lists a family's accepted parameter names, sorted — error
// text must not depend on Params declaration order, so adding a
// parameter to the middle of a family never reshuffles the message.
func validKeys(f *family) string {
	if len(f.info.Params) == 0 {
		return "none"
	}
	keys := make([]string, len(f.info.Params))
	for i, pd := range f.info.Params {
		keys[i] = pd.Key
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func lookup(name string) *family {
	for i := range families {
		if families[i].info.Family == name {
			return &families[i]
		}
	}
	return nil
}

// Parse builds the engine a spec names. Errors identify the offending
// token and, for unknown families, suggest the nearest registered specs.
func Parse(spec string) (Engine, error) {
	tokens := strings.Split(spec, ",")
	for i := range tokens {
		tokens[i] = strings.TrimSpace(tokens[i])
	}
	if len(tokens) == 0 || tokens[0] == "" {
		return nil, fmt.Errorf("sched: empty scheduler spec (try one of: %s)", strings.Join(FamilyNames(), ", "))
	}
	if exp, ok := aliases[tokens[0]]; ok {
		tokens = append(strings.Split(exp, ","), tokens[1:]...)
	}
	f := lookup(tokens[0])
	if f == nil {
		msg := fmt.Sprintf("sched: unknown scheduler %q", tokens[0])
		if near := Suggest(tokens[0]); len(near) > 0 {
			msg += fmt.Sprintf(" (did you mean %s?)", strings.Join(near, " or "))
		}
		return nil, fmt.Errorf("%s — registered: %s", msg, strings.Join(FamilyNames(), ", "))
	}
	p := &params{family: f.info.Family, kv: map[string]string{}, flags: map[string]bool{}, used: map[string]bool{}}
	for _, tok := range tokens[1:] {
		if tok == "" {
			continue
		}
		if k, v, ok := strings.Cut(tok, "="); ok {
			if _, dup := p.kv[k]; dup {
				return nil, fmt.Errorf("sched: %s: duplicate parameter %q", f.info.Family, k)
			}
			p.kv[k] = v
		} else {
			p.flags[tok] = true
		}
	}
	s, err := f.build(p)
	if err != nil {
		return nil, fmt.Errorf("sched: %s: %v", f.info.Family, err)
	}
	if left := p.leftover(); len(left) > 0 {
		return nil, fmt.Errorf("sched: %s: unknown parameter %q (valid: %s)",
			f.info.Family, left[0], validKeys(f))
	}
	return Wrap(s), nil
}

// MustParse is Parse, panicking on error — for specs fixed at compile
// time (experiment tables, defaults).
func MustParse(spec string) Engine {
	e, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return e
}

// List returns every registered family's metadata in presentation order.
func List() []Info {
	out := make([]Info, len(families))
	for i := range families {
		out[i] = families[i].info
	}
	return out
}

// FamilyNames returns the registered family names plus aliases, sorted.
func FamilyNames() []string {
	var out []string
	for i := range families {
		out = append(out, families[i].info.Family)
	}
	for a := range aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Suggest returns up to three registered names (families and aliases)
// nearest to the unknown one by edit distance, closest first; names
// further than half their length away are not offered.
func Suggest(unknown string) []string {
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, name := range FamilyNames() {
		d := editDistance(unknown, name)
		limit := (len(name) + 1) / 2
		if d <= limit {
			cands = append(cands, cand{name, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) > 3 {
		cands = cands[:3]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance between two ASCII-ish strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
