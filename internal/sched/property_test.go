package sched

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// TestEveryEngineReleasesClean is the registry-wide leak check: for every
// registered family (its example spec plus deterministic and seeded
// variants), on randomized FT(l, m, w) shapes, releasing every port each
// outcome holds — granted paths and the retained partials of
// no-rollback failures — returns the link state to all-free. Run with
// -race this also exercises the parallel engines' worker fan-out.
func TestEveryEngineReleasesClean(t *testing.T) {
	var specs []string
	for _, info := range List() {
		specs = append(specs, info.Example)
	}
	specs = append(specs,
		"level-wise", // no rollback: failures retain partial paths
		"level-wise,policy=least-loaded",
		"level-wise,order=deepest-first,rollback",
		"local,retries=1,seed=5",
		"backtrack,depth=0",
		"stale,window=4",
		"parallel,mode=deterministic,workers=4,rollback",
		"parallel,mode=racy,workers=4,seed=9",
		"parallel,mode=shard,workers=4,rollback",
		"parallel,mode=shard,workers=4,steal",
		"parallel,mode=shard,workers=16,steal,shard-level=1,rollback",
	)
	shapeRng := rand.New(rand.NewSource(21))
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			eng := MustParse(spec)
			for trial := 0; trial < 4; trial++ {
				l := 2 + shapeRng.Intn(2)
				m := 2 + shapeRng.Intn(3)
				w := 2 + shapeRng.Intn(3)
				tree := topology.MustNew(l, m, w)
				rng := rand.New(rand.NewSource(int64(trial) + 100))
				reqs := randomBatch(tree, rng, 10+rng.Intn(40))
				st := linkstate.New(tree)
				res := eng.Schedule(st, reqs)
				if err := core.Verify(tree, res); err != nil {
					t.Fatalf("FT(%d,%d,%d): %v", l, m, w, err)
				}
				held := 0
				for i := range res.Outcomes {
					o := &res.Outcomes[i]
					held += 2 * len(o.Ports)
					core.ReleaseRoute(st, o.Src, o.Dst, o.Ports, nil)
				}
				if held != 2*countPorts(res) {
					t.Fatalf("bookkeeping error in test")
				}
				if n := st.OccupiedCount(); n != 0 {
					t.Fatalf("FT(%d,%d,%d): %d channels leaked after releasing all outcomes", l, m, w, n)
				}
				if !st.Equal(linkstate.New(tree)) {
					t.Fatalf("FT(%d,%d,%d): state differs from all-free after release", l, m, w)
				}
			}
		})
	}
}

func countPorts(res *core.Result) int {
	n := 0
	for i := range res.Outcomes {
		n += len(res.Outcomes[i].Ports)
	}
	return n
}

// TestEngineNamesUnique guards the registry against two specs colliding
// on one reported name with different semantics — names key results in
// reports and the fabric's stats.
func TestEngineNamesUnique(t *testing.T) {
	seen := map[string]string{}
	for _, spec := range []string{
		"level-wise", "level-wise,rollback", "level-wise,policy=random",
		"level-wise,traversal=request-major", "local", "local-random",
		"backtrack,depth=1", "backtrack,depth=2", "stale,window=1",
		"stale,window=2", "optimal", "parallel,workers=2",
		"parallel,workers=2,mode=racy",
	} {
		name := MustParse(spec).Name()
		if prev, dup := seen[name]; dup {
			t.Errorf("specs %q and %q both name %q", prev, spec, name)
		}
		seen[name] = spec
	}
}
