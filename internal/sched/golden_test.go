package sched

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/optimal"
	"repro/internal/parsched"
	"repro/internal/topology"
)

func randomBatch(tree *topology.Tree, rng *rand.Rand, n int) []core.Request {
	reqs := make([]core.Request, n)
	for i := range reqs {
		reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
	}
	return reqs
}

// sameResult compares everything an outcome records plus the batch
// totals; it is the bit-identity oracle for the golden test.
func sameResult(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if got.Granted != want.Granted || got.Total != want.Total {
		t.Fatalf("%s: granted/total %d/%d, want %d/%d", label, got.Granted, got.Total, want.Granted, want.Total)
	}
	for i := range want.Outcomes {
		g, w := &got.Outcomes[i], &want.Outcomes[i]
		if g.Granted != w.Granted || g.FailLevel != w.FailLevel || g.FailDown != w.FailDown {
			t.Fatalf("%s: outcome %d (granted=%v fail=%d down=%v), want (granted=%v fail=%d down=%v)",
				label, i, g.Granted, g.FailLevel, g.FailDown, w.Granted, w.FailLevel, w.FailDown)
		}
		if len(g.Ports) != len(w.Ports) {
			t.Fatalf("%s: outcome %d has %d ports, want %d", label, i, len(g.Ports), len(w.Ports))
		}
		for j := range w.Ports {
			if g.Ports[j] != w.Ports[j] {
				t.Fatalf("%s: outcome %d port[%d] = %d, want %d", label, i, j, g.Ports[j], w.Ports[j])
			}
		}
	}
}

// TestGoldenRegistryMatchesConstructors pins registry-built engines to
// the direct constructors they replace: identical grants, ports, fail
// levels, and final link state on shared random batches. Randomized
// engines are pinned through seed= so both sides draw the same stream.
func TestGoldenRegistryMatchesConstructors(t *testing.T) {
	cases := []struct {
		spec   string
		direct func() core.Scheduler
	}{
		{"level-wise", func() core.Scheduler { return core.NewLevelWise() }},
		{"level-wise,rollback", func() core.Scheduler {
			return &core.LevelWise{Opts: core.Options{Rollback: true}}
		}},
		{"level-wise,traversal=request-major", func() core.Scheduler {
			return &core.LevelWise{Opts: core.Options{Traversal: core.RequestMajor}}
		}},
		{"level-wise,policy=random,order=shuffle,rollback,seed=11", func() core.Scheduler {
			return &core.LevelWise{Opts: core.Options{Policy: core.RandomFit, Order: core.ShuffledOrder,
				Rollback: true, Rand: rand.New(rand.NewSource(11))}}
		}},
		{"local-greedy", func() core.Scheduler { return core.NewLocalGreedy() }},
		{"local-random,seed=7", func() core.Scheduler {
			return &core.Local{Opts: core.Options{Policy: core.RandomFit, Rand: rand.New(rand.NewSource(7))}}
		}},
		{"local,policy=random,retries=2,seed=3", func() core.Scheduler {
			return &core.Local{Opts: core.Options{Policy: core.RandomFit, Retries: 2, Rand: rand.New(rand.NewSource(3))}}
		}},
		{"backtrack,depth=4", func() core.Scheduler { return &core.BacktrackLevelWise{Backtracks: 4} }},
		{"stale,window=8", func() core.Scheduler { return &core.StaleLevelWise{Window: 8} }},
		{"optimal", func() core.Scheduler { return optimal.New() }},
		{"parallel,workers=4,rollback", func() core.Scheduler {
			return parsched.New(parsched.Config{Workers: 4, Opts: core.Options{Rollback: true}})
		}},
		// Shard mode is run-to-run deterministic (each shard is scheduled
		// sequentially by one owner), so the registry build must match
		// the direct constructor bit for bit too.
		{"parallel,mode=shard,workers=4,steal,rollback", func() core.Scheduler {
			return parsched.New(parsched.Config{Workers: 4, Mode: parsched.Shard, Steal: true,
				Opts: core.Options{Rollback: true}})
		}},
	}
	shapes := [][3]int{{2, 4, 4}, {3, 4, 2}, {2, 6, 3}}
	for _, c := range cases {
		for _, dims := range shapes {
			tree := topology.MustNew(dims[0], dims[1], dims[2])
			reqs := randomBatch(tree, rand.New(rand.NewSource(99)), 40)
			stReg, stDir := linkstate.New(tree), linkstate.New(tree)
			regRes := MustParse(c.spec).Schedule(stReg, reqs)
			dirRes := c.direct().Schedule(stDir, reqs)
			sameResult(t, c.spec, regRes, dirRes)
			if !stReg.Equal(stDir) {
				t.Fatalf("%s on FT%v: final link state diverges from direct constructor", c.spec, dims)
			}
		}
	}
}

// TestGoldenArithmeticCursorBitIdentical pins every registry scheduler
// family bit-identical between the table-driven topology kernel and the
// Theorem 1 arithmetic cursor (topology.WithArithmeticCursor): same
// grants, ports, fail levels, and final link state on shared random
// batches, across pow-of-two, non-pow-of-two, and m != w shapes.
func TestGoldenArithmeticCursorBitIdentical(t *testing.T) {
	shapes := [][3]int{{2, 4, 4}, {3, 4, 2}, {2, 6, 3}}
	for _, info := range List() {
		for _, dims := range shapes {
			tab := topology.MustNew(dims[0], dims[1], dims[2])
			ari := tab.WithArithmeticCursor()
			reqs := randomBatch(tab, rand.New(rand.NewSource(77)), 60)
			stTab, stAri := linkstate.New(tab), linkstate.New(ari)
			want := MustParse(info.Family).Schedule(stTab, reqs)
			got := MustParse(info.Family).Schedule(stAri, reqs)
			sameResult(t, info.Family+"/arithmetic-cursor", got, want)
			if !stTab.Equal(stAri) {
				t.Fatalf("%s on FT%v: final link state diverges between table and arithmetic cursors", info.Family, dims)
			}
		}
	}
}

// TestGoldenScheduleInto proves the Engine adapter's Scratch path is
// also bit-identical (and shares state with the plain path).
func TestGoldenScheduleInto(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	reqs := randomBatch(tree, rand.New(rand.NewSource(5)), 60)
	for _, spec := range []string{"level-wise,rollback", "backtrack,depth=2", "optimal"} {
		stA, stB := linkstate.New(tree), linkstate.New(tree)
		a := MustParse(spec).Schedule(stA, reqs)
		b := MustParse(spec).ScheduleInto(stB, reqs, core.NewScratch())
		sameResult(t, spec+"/into", b, a)
		if !stA.Equal(stB) {
			t.Fatalf("%s: ScheduleInto link state diverges from Schedule", spec)
		}
	}
}
