package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

func TestAsIncremental(t *testing.T) {
	for _, c := range []struct {
		spec string
		want bool
	}{
		{"level-wise", true}, // the capability is structural, not flag-gated
		{"levelwise,incremental", true},
		{"level-wise,rollback,incremental,reuse-cost=4", true},
		{"parallel,workers=4", true}, // delegates to its sequential core
		{"optimal", false},
		{"local", false},
		{"backtrack,depth=2", false},
	} {
		_, ok := AsIncremental(MustParse(c.spec))
		if ok != c.want {
			t.Errorf("AsIncremental(%q) = %v, want %v", c.spec, ok, c.want)
		}
	}
}

// TestIncrementalSpecGolden is the registry-level arrivals-only
// bit-identity pin (ci.sh runs it as the incremental-vs-batch golden
// smoke): the spec the issue grammar names, "levelwise,incremental",
// must schedule an arrivals-only epoch stream exactly like the plain
// batch-replay spec "level-wise" — same outcomes, same final state.
func TestIncrementalSpecGolden(t *testing.T) {
	tree := topology.MustNew(3, 8, 8)
	batch := MustParse("level-wise,rollback")
	inc, ok := AsIncremental(MustParse("levelwise,rollback,incremental"))
	if !ok {
		t.Fatal("levelwise,rollback,incremental lost the Incremental capability")
	}
	stA, stB := linkstate.New(tree), linkstate.New(tree)
	scA, scB := core.NewScratch(), core.NewScratch()
	rng := rand.New(rand.NewSource(21))
	for epoch := 0; epoch < 32; epoch++ {
		arrivals := make([]core.Request, 12)
		for i := range arrivals {
			arrivals[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
		}
		want := batch.ScheduleInto(stA, arrivals, scA)
		got := inc.ScheduleDeltaInto(stB, arrivals, nil, scB)
		if got.Granted != want.Granted || got.Torn != 0 {
			t.Fatalf("epoch %d: granted %d torn %d, want granted %d torn 0",
				epoch, got.Granted, got.Torn, want.Granted)
		}
		for i := range want.Outcomes {
			w, g := &want.Outcomes[i], &got.Outcomes[i]
			if w.Granted != g.Granted || w.FailLevel != g.FailLevel || fmt.Sprint(w.Ports) != fmt.Sprint(g.Ports) {
				t.Fatalf("epoch %d request %d: got %+v, want %+v", epoch, i, g, w)
			}
		}
		if !stA.Equal(stB) {
			t.Fatalf("epoch %d: link states diverged", epoch)
		}
	}
}

// TestParallelDeltaFallbackName pins the documented fallback reason: a
// parallel engine serving a delta epoch runs its sequential core and
// says so in Result.Scheduler.
func TestParallelDeltaFallbackName(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	inc, ok := AsIncremental(MustParse("parallel,mode=shard,workers=4"))
	if !ok {
		t.Fatal("parallel engine lost the Incremental capability")
	}
	st := linkstate.New(tree)
	res := inc.ScheduleDeltaInto(st, []core.Request{{Src: 0, Dst: tree.Nodes() - 1}}, nil, core.NewScratch())
	if want := "level-wise/par-fallback=incremental-delta"; res.Scheduler != want {
		t.Fatalf("Result.Scheduler = %q, want %q", res.Scheduler, want)
	}
}
