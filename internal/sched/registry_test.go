package sched

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parsched"
)

func TestParseNames(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"level-wise", "level-wise"},
		{"level-wise,rollback", "level-wise/rollback"},
		{"level-wise,policy=random,order=shuffle,rollback", "level-wise/random/rollback"},
		{"level-wise,traversal=request-major", "level-wise/request-major"},
		{"local", "local/first-fit"},
		{"local-greedy", "local/first-fit"},
		{"local-random", "local/random"},
		{"local,policy=random,retries=2", "local/random/retry"},
		{"backtrack,depth=4", "level-wise/backtrack-4"},
		{"stale,window=16", "level-wise/stale-16"},
		{"optimal", "optimal"},
		{"parallel,mode=racy,workers=8", "parallel-level-wise/racy/w8"},
		{"parallel,workers=2", "parallel-level-wise/deterministic/w2"},
		{" level-wise , rollback ", "level-wise/rollback"}, // whitespace tolerated
		{"level-wise,incremental", "level-wise/incremental"},
		{"levelwise,incremental", "level-wise/incremental"}, // issue-grammar alias
		{"levelwise,incremental,reuse-cost=4", "level-wise/incremental/reuse-cost=4"},
		{"level-wise,rollback,incremental,reuse-cost=2", "level-wise/rollback/incremental/reuse-cost=2"},
	}
	for _, c := range cases {
		e, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if e.Name() != c.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, e.Name(), c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"", "empty scheduler spec"},
		{"levle-wise", "did you mean level-wise"},
		{"lcoal", "did you mean local"},
		{"frobnicate", "registered:"},
		{"level-wise,policy=bogus", "invalid policy"},
		{"level-wise,order=bogus", "invalid order"},
		{"level-wise,traversal=bogus", "invalid traversal"},
		{"level-wise,window=3", `unknown parameter "window"`},
		{"local,depth=2", `unknown parameter "depth"`},
		{"backtrack,depth=x", "must be an integer"},
		{"backtrack,depth=-1", "must be >= 0"},
		{"stale,window=0", "must be >= 1"},
		{"parallel,mode=chaotic", "invalid mode"},
		{"parallel,workers=-2", "must be >= 0"},
		{"parallel,steal", "steal requires mode=shard"},
		{"parallel,mode=shard,shard-level=x", "must be an integer"},
		{"level-wise,policy=random,policy=first-fit", "duplicate parameter"},
		{"optimal,rollback", `unknown parameter "rollback"`},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.spec, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.spec, err.Error(), c.wantSub)
		}
	}
}

func TestParseErrorTextExact(t *testing.T) {
	// The CLI (-fabric-scheduler) and ftserve surface these verbatim, so
	// the full text is contract, not just the substrings above.
	registered := strings.Join(FamilyNames(), ", ")
	cases := []struct {
		spec string
		want string
	}{
		{"", "sched: empty scheduler spec (try one of: " + registered + ")"},
		{"   ", "sched: empty scheduler spec (try one of: " + registered + ")"},
		{"optimol", `sched: unknown scheduler "optimol" (did you mean optimal?) — registered: ` + registered},
		{"stael", `sched: unknown scheduler "stael" (did you mean stale?) — registered: ` + registered},
		{"level-wise,policy=random,policy=first-fit", `sched: level-wise: duplicate parameter "policy"`},
		{"stale,window=4,window=8", `sched: stale: duplicate parameter "window"`},
		// The shard-mode parameter grammar, pinned verbatim: bad mode
		// values list every valid mode, steal and shard-level are
		// rejected outside mode=shard, and duplicate keys stay caught
		// before the factory runs.
		{"parallel,mode=shardd", `sched: parallel: invalid mode="shardd" (deterministic, racy or shard)`},
		{"parallel,mode=shard,mode=shard", `sched: parallel: duplicate parameter "mode"`},
		{"parallel,steal", `sched: parallel: steal requires mode=shard`},
		{"parallel,mode=racy,steal", `sched: parallel: steal requires mode=shard`},
		{"parallel,shard-level=1", `sched: parallel: shard-level requires mode=shard`},
		{"parallel,mode=shard,shard-level=0", `sched: parallel: invalid shard-level=0 (must be >= 1)`},
		// Valid-key lists are sorted so the message is deterministic and
		// stable under registry reordering.
		{"parallel,mode=shard,shards=4", `sched: parallel: unknown parameter "shards" (valid: mode, order, policy, rollback, seed, shard-level, steal, workers)`},
		{"level-wise,window=3", `sched: level-wise: unknown parameter "window" (valid: incremental, order, policy, reuse-cost, rollback, seed, traversal)`},
		// The incremental grammar: reuse-cost needs the incremental flag,
		// must be positive, and replaces the policy axis.
		{"level-wise,reuse-cost=4", `sched: level-wise: reuse-cost requires the incremental flag (reuse scores held routes, which only persist across delta epochs)`},
		{"level-wise,incremental,reuse-cost=0", `sched: level-wise: invalid reuse-cost=0 (must be >= 1)`},
		{"level-wise,incremental,reuse-cost=2,policy=random", `sched: level-wise: reuse-cost replaces the port policy (remove policy=random)`},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): expected error, got nil", c.spec)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Parse(%q) error text:\n got %q\nwant %q", c.spec, err.Error(), c.want)
		}
	}
}

func TestAliasParamsCompose(t *testing.T) {
	// Alias expansion must still accept (and validate) extra parameters.
	e, err := Parse("local-random,retries=3")
	if err != nil {
		t.Fatal(err)
	}
	l, ok := e.Unwrap().(*core.Local)
	if !ok {
		t.Fatalf("local-random unwraps to %T", e.Unwrap())
	}
	if l.Opts.Policy != core.RandomFit || l.Opts.Retries != 3 {
		t.Fatalf("local-random,retries=3 parsed as %+v", l.Opts)
	}
	// An explicit parameter after the alias wins over the expansion? No:
	// that would be a duplicate — the grammar rejects it loudly rather
	// than guessing.
	if _, err := Parse("local-random,policy=first-fit"); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("alias + conflicting policy: got %v, want duplicate-parameter error", err)
	}
}

func TestUnwrapExposesConcreteTypes(t *testing.T) {
	if _, ok := MustParse("level-wise,rollback").Unwrap().(*core.LevelWise); !ok {
		t.Fatal("level-wise does not unwrap to *core.LevelWise")
	}
	pe, ok := MustParse("parallel,workers=4,mode=racy").Unwrap().(*parsched.Engine)
	if !ok {
		t.Fatal("parallel does not unwrap to *parsched.Engine")
	}
	if pe.Workers() != 4 || pe.Mode() != parsched.Racy {
		t.Fatalf("parallel engine config: workers=%d mode=%v", pe.Workers(), pe.Mode())
	}
	se, ok := MustParse("parallel,mode=shard,workers=6,steal,shard-level=1").Unwrap().(*parsched.Engine)
	if !ok {
		t.Fatal("parallel,mode=shard does not unwrap to *parsched.Engine")
	}
	if se.Mode() != parsched.Shard || se.Name() != "parallel-level-wise/shard+steal/w6" {
		t.Fatalf("shard engine config: mode=%v name=%q", se.Mode(), se.Name())
	}
}

func TestListMetadata(t *testing.T) {
	infos := List()
	if len(infos) < 6 {
		t.Fatalf("List returned %d families, want >= 6", len(infos))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if info.Family == "" || info.Summary == "" || info.Example == "" {
			t.Errorf("family %+v missing metadata", info)
		}
		if seen[info.Family] {
			t.Errorf("duplicate family %q", info.Family)
		}
		seen[info.Family] = true
		// Every advertised example must parse.
		if _, err := Parse(info.Example); err != nil {
			t.Errorf("example %q does not parse: %v", info.Example, err)
		}
	}
	for _, want := range []string{"level-wise", "local", "backtrack", "stale", "optimal", "parallel"} {
		if !seen[want] {
			t.Errorf("family %q not registered", want)
		}
	}
}

func TestSuggest(t *testing.T) {
	// "levelwise" is a registered alias now, so it suggests itself first;
	// the canonical family must still be offered.
	if got := Suggest("levelwiz"); len(got) == 0 || (got[0] != "level-wise" && got[0] != "levelwise") {
		t.Fatalf("Suggest(levelwiz) = %v", got)
	}
	if got := Suggest("zzzzzzzzzzzz"); len(got) != 0 {
		t.Fatalf("Suggest(zzzz...) = %v, want none", got)
	}
}

func TestWrapIdempotent(t *testing.T) {
	e := MustParse("level-wise")
	if Wrap(e) != e {
		t.Fatal("Wrap of an Engine must return it unchanged")
	}
}
