// Package sched is the single seam through which every layer of the
// repository names and constructs scheduling engines. The paper's
// evaluation — and each extension the repo adds on top of it — is a
// bake-off between scheduler variants on the same FT(l, m, w) link
// state; sched gives those variants one parseable spec grammar
// ("family,key=value,flag"), one registry of validated factories with
// self-describing metadata, and one Engine interface, so cmd tools, the
// fabric manager, and the experiment harness never grow private string
// switches.
//
// # Spec grammar
//
// A spec is a comma-separated list: the first token picks the engine
// family, the rest are key=value parameters or bare flags, e.g.
//
//	level-wise
//	level-wise,policy=random,order=shuffle,rollback
//	local,policy=random,retries=2
//	backtrack,depth=4
//	stale,window=16
//	optimal
//	parallel,mode=racy,workers=8
//
// Unknown families and parameters fail with an error naming the nearest
// valid alternatives. List enumerates every registered family with its
// parameters, so tools print their engine menus from the registry
// instead of hand-maintained usage text.
package sched

import (
	"repro/internal/core"
	"repro/internal/linkstate"
)

// Engine is the uniform scheduling interface every registry-built engine
// satisfies: batch scheduling with and without a caller-owned Scratch.
type Engine interface {
	// Name identifies the engine in results and reports.
	Name() string
	// Schedule routes the batch, mutating st.
	Schedule(st *linkstate.State, reqs []core.Request) *core.Result
	// ScheduleInto is Schedule with working buffers taken from sc;
	// engines without a zero-allocation path fall back to Schedule.
	ScheduleInto(st *linkstate.State, reqs []core.Request, sc *core.Scratch) *core.Result
	// Unwrap returns the underlying scheduler for callers that need a
	// concrete type (internal/fabric mirrors *core.LevelWise options
	// into its parallel engine; stats inspect *parsched.Engine).
	Unwrap() core.Scheduler
}

// Incremental is the delta-epoch capability: an engine that carries
// granted routes forward in the link state across epochs and schedules
// only the delta — departures torn down (fault-aware), arrivals swept
// against what remains. core.LevelWise implements it (and the parallel
// engine delegates to its sequential core, with the fallback documented
// in Result.Scheduler); detect it on a registry-built engine with
// AsIncremental. Over an arrivals-only workload ScheduleDeltaInto is
// bit-identical to ScheduleInto — the contract internal/fabric's
// incremental mode is built on.
type Incremental interface {
	ScheduleDeltaInto(st *linkstate.State, arrivals []core.Request, departures []core.Departure, sc *core.Scratch) *core.Result
}

// AsIncremental reports whether the engine can serve delta epochs,
// unwrapping the registry adapter if needed.
func AsIncremental(e Engine) (Incremental, bool) {
	if inc, ok := e.(Incremental); ok {
		return inc, true
	}
	if inc, ok := e.Unwrap().(Incremental); ok {
		return inc, true
	}
	return nil, false
}

// scratchScheduler is the optional fast-path interface concrete
// schedulers may implement (core.LevelWise does).
type scratchScheduler interface {
	ScheduleInto(st *linkstate.State, reqs []core.Request, sc *core.Scratch) *core.Result
}

// engine adapts any core.Scheduler to the Engine interface.
type engine struct {
	core.Scheduler
}

func (e engine) ScheduleInto(st *linkstate.State, reqs []core.Request, sc *core.Scratch) *core.Result {
	if si, ok := e.Scheduler.(scratchScheduler); ok {
		return si.ScheduleInto(st, reqs, sc)
	}
	return e.Scheduler.Schedule(st, reqs)
}

func (e engine) Unwrap() core.Scheduler { return e.Scheduler }

// Wrap adapts a concrete scheduler to the Engine interface, using its
// ScheduleInto fast path when it has one. Constructing through Parse is
// preferred; Wrap covers schedulers built programmatically (tests,
// experiments composing custom Options).
func Wrap(s core.Scheduler) Engine {
	if e, ok := s.(Engine); ok {
		return e
	}
	return engine{s}
}
