package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
)

// MulticastCell is one (fanout, scheduler) point of the multicast study.
type MulticastCell struct {
	Fanout    int
	Scheduler string
	Ratio     stats.Summary
}

// ExtMulticast (E13) extends the Level-wise idea to one-to-many
// connections (collectives): batches of random multicasts with growing
// fanout on FT(3,8), scheduled with the global AND across all branch
// mirrors versus the blind local baseline. One batch holds N/8 multicast
// trees (each tree consumes several channels, so batches are smaller than
// the unicast permutations).
func ExtMulticast(trials int, seed int64) ([]MulticastCell, error) {
	if trials == 0 {
		trials = 50
	}
	tree, err := topology.New(3, 8, 8)
	if err != nil {
		return nil, err
	}
	n := tree.Nodes()
	batchSize := n / 8
	var cells []MulticastCell
	for _, fanout := range []int{1, 2, 4, 8, 16} {
		type spec struct {
			label string
			run   func(st *linkstate.State, reqs []core.MulticastRequest) *core.MulticastResult
		}
		specs := []spec{
			{"Local", func(st *linkstate.State, reqs []core.MulticastRequest) *core.MulticastResult {
				return (&core.MulticastLocal{}).Schedule(st, reqs)
			}},
			{"Global", func(st *linkstate.State, reqs []core.MulticastRequest) *core.MulticastResult {
				return (&core.MulticastLevelWise{}).Schedule(st, reqs)
			}},
		}
		for _, sp := range specs {
			rng := rand.New(rand.NewSource(seed + int64(fanout)))
			ratios := make([]float64, 0, trials)
			st := linkstate.New(tree)
			for trial := 0; trial < trials; trial++ {
				reqs := make([]core.MulticastRequest, batchSize)
				for i := range reqs {
					dsts := make([]int, fanout)
					for k := range dsts {
						dsts[k] = rng.Intn(n)
					}
					reqs[i] = core.MulticastRequest{Src: rng.Intn(n), Dsts: dsts}
				}
				st.Reset()
				res := sp.run(st, reqs)
				if err := core.VerifyMulticast(tree, res); err != nil {
					return nil, fmt.Errorf("experiments: multicast %s fanout %d: %v", sp.label, fanout, err)
				}
				ratios = append(ratios, res.Ratio())
			}
			cells = append(cells, MulticastCell{Fanout: fanout, Scheduler: sp.label, Ratio: stats.Summarize(ratios)})
		}
	}
	return cells, nil
}

// MulticastTable renders the multicast study.
func MulticastTable(cells []MulticastCell) *report.Table {
	tb := report.NewTable("Extension E13: multicast (one-to-many) scheduling on FT(3,8), 64 trees per batch",
		"fanout", "scheduler", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(fmt.Sprint(c.Fanout), c.Scheduler,
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	tb.AddNote("the Level-wise AND extends across every branch mirror; destinations sharing switches share channels")
	return tb
}
