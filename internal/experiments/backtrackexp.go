package experiments

import (
	"fmt"

	"repro/internal/report"
)

// ExtBacktrack (E14) sweeps the backtracking budget of the bounded-search
// Level-wise scheduler on the reduced grid, with the optimal rearrangeable
// scheduler as the ceiling: how much of the remaining gap does a little
// search recover, and where do diminishing returns set in?
func ExtBacktrack(perms int, seed int64) ([]AblationCell, error) {
	mk := func(b int) string { return fmt.Sprintf("backtrack,depth=%d", b) }
	specs := []SchedulerSpec{
		{Label: "backtrack 0 (paper)", Spec: mk(0)},
		{Label: "backtrack 2", Spec: mk(2)},
		{Label: "backtrack 8", Spec: mk(8)},
		{Label: "backtrack 32", Spec: mk(32)},
		{Label: "optimal", Spec: "optimal"},
	}
	return runVariants(perms, seed, specs)
}

// BacktrackTable renders the sweep.
func BacktrackTable(cells []AblationCell) *report.Table {
	tb := report.NewTable("Extension E14: Level-wise with bounded backtracking",
		"variant", "FT(l,w)", "nodes", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(c.Variant,
			fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width),
			fmt.Sprint(c.Nodes),
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	tb.AddNote("each backtrack re-opens one level after a dead end; optimal is the rearrangeable ceiling")
	return tb
}
