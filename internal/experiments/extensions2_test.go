package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/optimal"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestExtTBWPOrdering(t *testing.T) {
	cells, err := ExtTBWP(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	byGrid := map[[2]int]map[string]float64{}
	for _, c := range cells {
		k := [2]int{c.Levels, c.Width}
		if byGrid[k] == nil {
			byGrid[k] = map[string]float64{}
		}
		byGrid[k][c.Scheduler] = c.Ratio.Mean
	}
	for k, m := range byGrid {
		// TBWP improves on plain local (it has strictly more options)
		// but global information still wins.
		if m["TBWP"] <= m["Local"] {
			t.Fatalf("%v: TBWP %.3f not above Local %.3f", k, m["TBWP"], m["Local"])
		}
		if m["Global"] <= m["TBWP"] {
			t.Fatalf("%v: Global %.3f not above TBWP %.3f", k, m["Global"], m["TBWP"])
		}
	}
	if !strings.Contains(TBWPTable(cells).String(), "laterals/grant") {
		t.Fatal("rendering")
	}
}

func TestExtRoundsOrdering(t *testing.T) {
	cells, err := ExtRounds(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	byGrid := map[[2]int]map[string]float64{}
	for _, c := range cells {
		k := [2]int{c.Levels, c.Width}
		if byGrid[k] == nil {
			byGrid[k] = map[string]float64{}
		}
		byGrid[k][c.Scheduler] = c.Rounds.Mean
		if c.Rounds.Min < 1 {
			t.Fatalf("%v %s: rounds < 1", k, c.Scheduler)
		}
	}
	for k, m := range byGrid {
		if m["Global"] >= m["Local"] {
			t.Fatalf("%v: Global needs %.2f rounds, not below Local %.2f", k, m["Global"], m["Local"])
		}
	}
	if !strings.Contains(RoundsTable(cells).String(), "mean rounds") {
		t.Fatal("rendering")
	}
}

func TestRoundsToCompleteOptimalIsOne(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 3)
	st := linkstate.New(tree)
	for trial := 0; trial < 5; trial++ {
		r, err := RoundsToComplete(tree, st, optimal.New(), g.MustBatch(traffic.RandomPermutation))
		if err != nil {
			t.Fatal(err)
		}
		if r != 1 {
			t.Fatalf("optimal needed %d rounds", r)
		}
	}
}

func TestRoundsToCompleteEmptyBatch(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	st := linkstate.New(tree)
	r, err := RoundsToComplete(tree, st, core.NewLevelWise(), nil)
	if err != nil || r != 0 {
		t.Fatalf("empty batch: %d rounds, %v", r, err)
	}
}

func TestExtFaultsDegradesGracefully(t *testing.T) {
	cells, err := ExtFaults(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	byFrac := map[float64]map[string]float64{}
	for _, c := range cells {
		if byFrac[c.FailFraction] == nil {
			byFrac[c.FailFraction] = map[string]float64{}
		}
		byFrac[c.FailFraction][c.Scheduler] = c.Ratio.Mean
	}
	// Ratio falls with failures but Global keeps its lead at every level.
	if byFrac[0.20]["Global"] >= byFrac[0]["Global"] {
		t.Fatalf("failures did not hurt: %v", byFrac)
	}
	for frac, m := range byFrac {
		if m["Global"] <= m["Local"] {
			t.Fatalf("frac %.2f: Global %.3f not above Local %.3f", frac, m["Global"], m["Local"])
		}
	}
	// Graceful: 2% failures cost Global fewer than 10 points.
	if byFrac[0]["Global"]-byFrac[0.02]["Global"] > 0.10 {
		t.Fatalf("2%% failures catastrophic: %v", byFrac)
	}
	if !strings.Contains(FaultTable(cells).String(), "failed links") {
		t.Fatal("rendering")
	}
}

func TestExtFailureLoci(t *testing.T) {
	loci, err := ExtFailureLoci(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(loci) != 2 {
		t.Fatalf("loci = %d", len(loci))
	}
	for _, l := range loci {
		denied := l.Total - l.Granted
		counted := 0
		for h := range l.UpFails {
			counted += l.UpFails[h] + l.DownFails[h]
		}
		if counted != denied {
			t.Fatalf("%s: counted %d denials, result says %d", l.Scheduler, counted, denied)
		}
		if l.Scheduler == "Global" {
			for h, d := range l.DownFails {
				if d != 0 {
					t.Fatalf("level-wise has down-phase denials at level %d", h)
				}
			}
		}
		if l.Scheduler == "Local" {
			down := 0
			for _, d := range l.DownFails {
				down += d
			}
			if down == 0 {
				t.Fatal("local scheduler shows no down-phase denials (Figure 4 effect missing)")
			}
		}
	}
	if !strings.Contains(FailureLociTable(loci).String(), "down-phase denials") {
		t.Fatal("rendering")
	}
}

func TestExtStalenessSpectrum(t *testing.T) {
	cells, err := ExtStaleness(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 7 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Fresh view at the top of the table, decay toward the bottom; the
	// freshest window must beat the most stale one clearly.
	first, lastWindow := cells[0], cells[len(cells)-2]
	if first.Window != 1 {
		t.Fatalf("first cell window = %d", first.Window)
	}
	if first.Ratio.Mean <= lastWindow.Ratio.Mean {
		t.Fatalf("staleness did not degrade: %.3f vs %.3f", first.Ratio.Mean, lastWindow.Ratio.Mean)
	}
	// Even fully stale, the commit check keeps it at or above the local
	// baseline (same blind failure mode, no worse information).
	local := cells[len(cells)-1]
	if lastWindow.Ratio.Mean < local.Ratio.Mean-0.05 {
		t.Fatalf("fully stale (%.3f) far below local greedy (%.3f)", lastWindow.Ratio.Mean, local.Ratio.Mean)
	}
	if !strings.Contains(StalenessTable(cells).String(), "view refresh") {
		t.Fatal("rendering")
	}
}

func TestExtMulticastOrdering(t *testing.T) {
	cells, err := ExtMulticast(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 { // 5 fanouts x 2 schedulers
		t.Fatalf("cells = %d", len(cells))
	}
	byFanout := map[int]map[string]float64{}
	for _, c := range cells {
		if byFanout[c.Fanout] == nil {
			byFanout[c.Fanout] = map[string]float64{}
		}
		byFanout[c.Fanout][c.Scheduler] = c.Ratio.Mean
	}
	for fanout, m := range byFanout {
		if m["Global"] < m["Local"] {
			t.Fatalf("fanout %d: global %.3f below local %.3f", fanout, m["Global"], m["Local"])
		}
	}
	// Bigger trees are harder: ratio decreases with fanout for both.
	if byFanout[16]["Global"] >= byFanout[1]["Global"] {
		t.Fatalf("fanout did not hurt global: %v", byFanout)
	}
	if !strings.Contains(MulticastTable(cells).String(), "fanout") {
		t.Fatal("rendering")
	}
}

func TestExtBacktrackClosesGap(t *testing.T) {
	cells, err := ExtBacktrack(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	byGrid := map[[2]int]map[string]float64{}
	for _, c := range cells {
		k := [2]int{c.Levels, c.Width}
		if byGrid[k] == nil {
			byGrid[k] = map[string]float64{}
		}
		byGrid[k][c.Variant] = c.Ratio.Mean
	}
	for k, m := range byGrid {
		if m["backtrack 32"] < m["backtrack 0 (paper)"] {
			t.Fatalf("%v: search hurt: %v", k, m)
		}
		if m["optimal"] < m["backtrack 32"] {
			t.Fatalf("%v: search exceeded optimal: %v", k, m)
		}
	}
	if !strings.Contains(BacktrackTable(cells).String(), "backtrack 8") {
		t.Fatal("rendering")
	}
}

func TestExtAnalyticRelationships(t *testing.T) {
	cells, err := ExtAnalytic(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 { // 6 grid points x 2 schedulers
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		switch c.Scheduler {
		case "Local":
			if d := c.Predicted - c.Measured.Mean; d > 0.08 || d < -0.12 {
				t.Errorf("FT(%d,%d) local: prediction %.3f vs measured %.3f", c.Levels, c.Width, c.Predicted, c.Measured.Mean)
			}
		case "Global":
			if c.Predicted > c.Measured.Mean+0.02 {
				t.Errorf("FT(%d,%d) global: lower bound %.3f above measured %.3f", c.Levels, c.Width, c.Predicted, c.Measured.Mean)
			}
		}
	}
	if !strings.Contains(AnalyticTable(cells).String(), "predicted") {
		t.Fatal("rendering")
	}
}
