package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// FaultCell is one (failure fraction, scheduler) point of the resilience
// study.
type FaultCell struct {
	FailFraction float64
	Scheduler    string
	Ratio        stats.Summary
}

// ExtFaults (E10) injects random link failures — both channels of a
// failed physical link go out of service — and measures schedulability
// degradation on FT(3,8). Fat trees degrade gracefully thanks to path
// diversity; the global scheduler routes around failures it can see,
// keeping its lead over the blind local one.
func ExtFaults(perms int, seed int64) ([]FaultCell, error) {
	if perms == 0 {
		perms = 50
	}
	tree, err := topology.New(3, 8, 8)
	if err != nil {
		return nil, err
	}
	var cells []FaultCell
	for _, frac := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		for _, spec := range DefaultSchedulers() {
			gen := traffic.NewGenerator(tree.Nodes(), seed)
			ratios := make([]float64, 0, perms)
			st := linkstate.New(tree)
			injectFailures(st, frac, seed)
			for trial := 0; trial < perms; trial++ {
				st.Reset() // failures persist across Reset
				r := spec.Make().Schedule(st, gen.MustBatch(traffic.RandomPermutation))
				// Verification replays on a fresh, fault-free state: it
				// still proves no double allocation among grants.
				if err := core.Verify(tree, r); err != nil {
					return nil, fmt.Errorf("experiments: faults %.2f: %v", frac, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			cells = append(cells, FaultCell{FailFraction: frac, Scheduler: spec.Label, Ratio: stats.Summarize(ratios)})
		}
	}
	return cells, nil
}

// injectFailures fails the given fraction of physical links (both
// channels), chosen uniformly with a deterministic RNG.
func injectFailures(st *linkstate.State, frac float64, seed int64) {
	if frac <= 0 {
		return
	}
	tree := st.Tree()
	rng := rand.New(rand.NewSource(seed * 31))
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for p := 0; p < tree.Parents(); p++ {
				if rng.Float64() < frac {
					st.FailLink(linkstate.Up, h, idx, p)
					st.FailLink(linkstate.Down, h, idx, p)
				}
			}
		}
	}
}

// FaultTable renders the resilience study.
func FaultTable(cells []FaultCell) *report.Table {
	tb := report.NewTable("Extension E10: schedulability under random link failures (FT(3,8))",
		"failed links", "scheduler", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(report.Percent(c.FailFraction), c.Scheduler,
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	tb.AddNote("a failed physical link loses both its upward and downward channel; failures persist across batches")
	return tb
}
