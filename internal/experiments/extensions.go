package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/switchsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// ExtOptimal (E1) compares Level-wise and Local against the rearrangeable
// optimal scheduler on the reduced grid. The optimal column is 100% for
// every permutation (w == m), quantifying the headroom the greedy global
// scheduler leaves.
func ExtOptimal(perms int, seed int64) ([]AblationCell, error) {
	specs := append(DefaultSchedulers(), SchedulerSpec{Label: "Optimal", Spec: "optimal"})
	return runVariants(perms, seed, specs)
}

// TrafficCell is one (pattern, scheduler) cell of the traffic study.
type TrafficCell struct {
	Pattern   traffic.Pattern
	Scheduler string
	Ratio     stats.Summary
}

// ExtTraffic (E2) evaluates both schedulers across structured and random
// workloads on FT(3,4) (64 nodes, power of two and a perfect square, so
// every pattern applies).
func ExtTraffic(trials int, seed int64) ([]TrafficCell, error) {
	if trials == 0 {
		trials = 50
	}
	tree, err := topology.New(3, 4, 4)
	if err != nil {
		return nil, err
	}
	patterns := []traffic.Pattern{
		traffic.RandomPermutation, traffic.UniformRandom, traffic.Hotspot,
		traffic.BitReversal, traffic.BitComplement, traffic.Shuffle,
		traffic.Transpose, traffic.Tornado, traffic.Neighbor,
	}
	var cells []TrafficCell
	for _, p := range patterns {
		for _, spec := range DefaultSchedulers() {
			gen := traffic.NewGenerator(tree.Nodes(), seed+int64(p))
			ratios := make([]float64, 0, trials)
			st := linkstate.New(tree)
			for trial := 0; trial < trials; trial++ {
				batch, err := gen.Batch(p)
				if err != nil {
					return nil, err
				}
				st.Reset()
				r := spec.Make().Schedule(st, batch)
				if err := core.Verify(tree, r); err != nil {
					return nil, fmt.Errorf("experiments: traffic %v: %v", p, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			cells = append(cells, TrafficCell{Pattern: p, Scheduler: spec.Label, Ratio: stats.Summarize(ratios)})
		}
	}
	return cells, nil
}

// TrafficTable renders the traffic study.
func TrafficTable(cells []TrafficCell) *report.Table {
	tb := report.NewTable("Extension E2: traffic patterns on FT(3,4)", "pattern", "scheduler", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(c.Pattern.String(), c.Scheduler,
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	return tb
}

// SlimCell is one point of the slimmed-tree study: FT(3, m=8, w) as w
// shrinks below m.
type SlimCell struct {
	W         int
	Scheduler string
	Ratio     stats.Summary
}

// ExtSlim (E3) evaluates slimmed fat trees (fewer parents than children),
// where the paper notes the algorithm still applies.
func ExtSlim(perms int, seed int64) ([]SlimCell, error) {
	if perms == 0 {
		perms = 50
	}
	var cells []SlimCell
	for _, w := range []int{2, 3, 4, 6, 8} {
		tree, err := topology.New(3, 8, w)
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(w))
		batches := gen.Permutations(perms)
		for _, spec := range DefaultSchedulers() {
			ratios := make([]float64, 0, perms)
			st := linkstate.New(tree)
			for _, b := range batches {
				st.Reset()
				r := spec.Make().Schedule(st, b)
				if err := core.Verify(tree, r); err != nil {
					return nil, fmt.Errorf("experiments: slim w=%d: %v", w, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			cells = append(cells, SlimCell{W: w, Scheduler: spec.Label, Ratio: stats.Summarize(ratios)})
		}
	}
	return cells, nil
}

// SlimTable renders the slimmed-tree study.
func SlimTable(cells []SlimCell) *report.Table {
	tb := report.NewTable("Extension E3: slimmed trees FT(3, m=8, w)", "w", "w/m", "scheduler", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(fmt.Sprint(c.W), fmt.Sprintf("%.2f", float64(c.W)/8), c.Scheduler,
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	return tb
}

// DynamicCell is one offered-load point of the churn study.
type DynamicCell struct {
	Scheduler   string
	ArrivalRate float64
	Blocking    float64
	MeanActive  float64
	Utilization float64
}

// ExtDynamic (E4) sweeps offered load on FT(3,8) and reports blocking
// probability for both schedulers (long-lived connections, the paper's
// motivating scenario).
func ExtDynamic(seed int64) ([]DynamicCell, error) {
	tree, err := topology.New(3, 8, 8)
	if err != nil {
		return nil, err
	}
	var cells []DynamicCell
	specs := []SchedulerSpec{
		{Label: "Local", Spec: "local-random"},
		{Label: "Global", Spec: "level-wise,rollback"},
	}
	for _, rate := range []float64{0.5, 1, 2, 4, 8} {
		for _, spec := range specs {
			st, err := dynamic.Run(dynamic.Config{
				Tree:        tree,
				Scheduler:   spec.Make(),
				ArrivalRate: rate,
				MeanHold:    120,
				Duration:    20000,
				WarmUp:      2000,
				Seed:        seed,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, DynamicCell{
				Scheduler:   spec.Label,
				ArrivalRate: rate,
				Blocking:    st.BlockingProbability(),
				MeanActive:  st.MeanActive,
				Utilization: st.MeanUtilization,
			})
		}
	}
	return cells, nil
}

// DynamicTable renders the churn study.
func DynamicTable(cells []DynamicCell) *report.Table {
	tb := report.NewTable("Extension E4: long-lived connection churn on FT(3,8)",
		"arrival rate", "scheduler", "blocking", "mean active", "utilization")
	for _, c := range cells {
		tb.AddRow(fmt.Sprintf("%.1f/cycle", c.ArrivalRate), c.Scheduler,
			report.Percent(c.Blocking), fmt.Sprintf("%.1f", c.MeanActive), report.Percent(c.Utilization))
	}
	return tb
}

// SwitchSimCell is one row of the distributed-simulation cross-check.
type SwitchSimCell struct {
	Width      int
	Nodes      int
	Sequential stats.Summary // core.Local (random)
	Wave       stats.Summary // switchsim distributed
	Global     stats.Summary // Level-wise
}

// ExtSwitchSim (E5) cross-checks the sequential local baseline against
// the event-driven distributed switch simulation on the Figure 9(b)
// sizes (trimmed at 512 nodes to keep the event simulation brisk).
func ExtSwitchSim(trials int, seed int64) ([]SwitchSimCell, error) {
	if trials == 0 {
		trials = 30
	}
	var cells []SwitchSimCell
	for _, w := range []int{4, 6, 8} {
		tree, err := topology.New(3, w, w)
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(w))
		seq := make([]float64, 0, trials)
		wave := make([]float64, 0, trials)
		glob := make([]float64, 0, trials)
		st := linkstate.New(tree)
		for trial := 0; trial < trials; trial++ {
			batch := gen.MustBatch(traffic.RandomPermutation)
			st.Reset()
			seq = append(seq, core.NewLocalRandom().Schedule(st, batch).Ratio())
			m := &switchsim.Model{Policy: core.RandomFit, Seed: seed + int64(trial)}
			resWave, _ := m.Run(tree, batch)
			if err := core.Verify(tree, resWave); err != nil {
				return nil, err
			}
			wave = append(wave, resWave.Ratio())
			st.Reset()
			glob = append(glob, core.NewLevelWise().Schedule(st, batch).Ratio())
		}
		cells = append(cells, SwitchSimCell{
			Width: w, Nodes: tree.Nodes(),
			Sequential: stats.Summarize(seq),
			Wave:       stats.Summarize(wave),
			Global:     stats.Summarize(glob),
		})
	}
	return cells, nil
}

// SwitchSimTable renders the cross-check.
func SwitchSimTable(cells []SwitchSimCell) *report.Table {
	tb := report.NewTable("Extension E5: sequential vs distributed local baseline (3-level)",
		"nodes", "local sequential", "local distributed", "level-wise")
	for _, c := range cells {
		tb.AddRow(fmt.Sprint(c.Nodes),
			report.Percent(c.Sequential.Mean), report.Percent(c.Wave.Mean), report.Percent(c.Global.Mean))
	}
	tb.AddNote("the distributed wave-parallel variant runs a few points above the sequential one (level-synchronous teardown); both stay well below Level-wise")
	return tb
}
