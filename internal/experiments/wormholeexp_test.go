package experiments

import (
	"strings"
	"testing"
)

func TestExtWormholeLoadShape(t *testing.T) {
	cells, err := ExtWormholeLoad(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 { // 4 routers x 6 rates
		t.Fatalf("cells = %d", len(cells))
	}
	// Latency grows monotonically enough: last point above first, per
	// router.
	byRouter := map[string][]LoadLatencyCell{}
	for _, c := range cells {
		byRouter[c.Router] = append(byRouter[c.Router], c)
	}
	if len(byRouter) != 4 {
		t.Fatalf("routers = %d", len(byRouter))
	}
	for name, pts := range byRouter {
		first, last := pts[0], pts[len(pts)-1]
		if last.AvgLatency <= first.AvgLatency {
			t.Fatalf("%s: latency flat under load (%.1f -> %.1f)", name, first.AvgLatency, last.AvgLatency)
		}
		if first.Throughput <= 0 {
			t.Fatalf("%s: zero throughput at light load", name)
		}
	}
	if !strings.Contains(WormholeLoadTable(cells).String(), "inj. rate") {
		t.Fatal("rendering")
	}
}

func TestExtBulkTransferCircuitsWinForLongMessages(t *testing.T) {
	cells, err := ExtBulkTransfer(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The paper's motivation: for long-lived transfers, circuits beat
	// wormhole. Demand it at the largest message size.
	last := cells[len(cells)-1]
	if last.Speedup <= 1 {
		t.Fatalf("circuits not ahead at %d flits: speedup %.2f", last.MessageFlits, last.Speedup)
	}
	// Speedup improves with message length (setup amortizes).
	if cells[0].Speedup >= last.Speedup {
		t.Fatalf("speedup not growing: %.2f at %d vs %.2f at %d",
			cells[0].Speedup, cells[0].MessageFlits, last.Speedup, last.MessageFlits)
	}
	if !strings.Contains(BulkTable(cells).String(), "circuit speedup") {
		t.Fatal("rendering")
	}
}
