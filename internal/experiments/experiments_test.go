package experiments

import (
	"strings"
	"testing"

	"repro/internal/traffic"
)

// testPerms keeps unit tests brisk; the benches and ftbench run the
// paper's full 100.
const testPerms = 25

func TestFig9PaperClaimsHold(t *testing.T) {
	a, err := Fig9a(testPerms, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9b(testPerms, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig9c(testPerms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bad := CheckPaperClaims(a, b, c); len(bad) != 0 {
		t.Fatalf("claim violations:\n%s", strings.Join(bad, "\n"))
	}
	// Local degrades with depth (Section 5: "the conventional scheduler's
	// schedulability ratio decreases as the number of levels increases").
	rows := Fig9d(a, b, c)
	local := map[int]float64{}
	global := map[int]float64{}
	for _, r := range rows {
		if r.Scheduler == "Local" {
			local[r.Levels] = r.Mean
		} else if r.Scheduler == "Global" {
			global[r.Levels] = r.Mean
		}
	}
	if !(local[2] > local[3] && local[3] > local[4]) {
		t.Fatalf("local means do not decrease with depth: %v", local)
	}
	// Global degrades only mildly ("negligible drop-off"): < 15 points
	// from 2-level to 4-level vs local's larger fall.
	if global[2]-global[4] > 0.15 {
		t.Fatalf("global drop-off too large: %v", global)
	}
	if (local[2] - local[4]) <= (global[2] - global[4]) {
		t.Fatalf("local should degrade faster than global: local %v global %v", local, global)
	}
}

func TestFig9TableRendering(t *testing.T) {
	r, err := RunFig9(Fig9Config{Name: "t", Levels: 2, Widths: []int{8}, Permutations: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Table().String()
	for _, want := range []string{"64(8^2)", "Local mean", "Global mean", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := r.Schedulers(); len(got) != 2 || got[0] != "Local" || got[1] != "Global" {
		t.Fatalf("schedulers = %v", got)
	}
	if got := r.Widths(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("widths = %v", got)
	}
}

func TestFig9dAggregation(t *testing.T) {
	r, err := RunFig9(Fig9Config{Name: "t", Levels: 2, Widths: []int{8, 16}, Permutations: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := Fig9d(r)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, row := range rows {
		// The aggregate is the mean of the two per-size means.
		var sum float64
		n := 0
		for _, p := range r.Points {
			if p.Scheduler == row.Scheduler {
				sum += p.Ratio.Mean
				n++
			}
		}
		if want := sum / float64(n); row.Mean != want {
			t.Fatalf("%s: mean %v want %v", row.Scheduler, row.Mean, want)
		}
	}
	if !strings.Contains(Fig9dTable(rows).String(), "Figure 9(d)") {
		t.Fatal("fig9d table title missing")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SingleNS != r.PaperSingleNS {
			t.Errorf("w=%d: single %v != paper %v", r.SwitchWidth, r.SingleNS, r.PaperSingleNS)
		}
		if r.AllNS != r.PaperAllNS {
			t.Errorf("w=%d: all %v != paper %v", r.SwitchWidth, r.AllNS, r.PaperAllNS)
		}
		// Cycle-exact makespan within 5% above the throughput accounting.
		if r.MakespanNS < r.AllNS || r.MakespanNS > 1.05*r.AllNS {
			t.Errorf("w=%d: makespan %v vs all %v", r.SwitchWidth, r.MakespanNS, r.AllNS)
		}
		if r.Granted <= 0 || r.Granted > r.Total {
			t.Errorf("w=%d: granted %d/%d", r.SwitchWidth, r.Granted, r.Total)
		}
	}
	if !strings.Contains(Table1Table(rows).String(), "Table 1") {
		t.Fatal("table1 rendering")
	}
}

func TestAblationPortPolicy(t *testing.T) {
	cells, err := AblationPortPolicy(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 { // 3 grid points x 3 policies
		t.Fatalf("cells = %d", len(cells))
	}
	if !strings.Contains(AblationTable("x", cells).String(), "first-fit") {
		t.Fatal("rendering")
	}
}

func TestAblationRollback(t *testing.T) {
	cells, err := AblationRollback(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string][]float64{}
	for _, c := range cells {
		byVariant[c.Variant] = append(byVariant[c.Variant], c.Ratio.Mean)
	}
	lmNo := byVariant["level-major, no-rollback (paper)"]
	lmRb := byVariant["level-major, rollback"]
	rmNo := byVariant["request-major, no-rollback"]
	rmRb := byVariant["request-major, rollback"]
	if len(lmNo) == 0 || len(lmRb) != len(lmNo) || len(rmNo) != len(lmNo) || len(rmRb) != len(lmNo) {
		t.Fatalf("variants missing: %v", byVariant)
	}
	for i := range lmNo {
		// Under level-major traversal, rollback provably cannot change
		// the grant set: released channels at levels < h are never
		// re-examined once the sweep has passed them.
		if lmNo[i] != lmRb[i] {
			t.Fatalf("level-major rollback changed the ratio: %v vs %v", lmNo[i], lmRb[i])
		}
		// Request-major without rollback equals level-major without
		// rollback (same decisions, different schedule).
		if rmNo[i] != lmNo[i] {
			t.Fatalf("traversals diverged without rollback: %v vs %v", rmNo[i], lmNo[i])
		}
		// Request-major with rollback can only help on average; allow a
		// hair of slack per grid point.
		if rmRb[i] < rmNo[i]-0.01 {
			t.Fatalf("request-major rollback hurt: %v vs %v", rmRb[i], rmNo[i])
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	cells, err := AblationOrdering(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
}

func TestComplexityCounts(t *testing.T) {
	cells, err := ComplexityCounts(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// For each grid point: local sequential steps/request approach twice
	// the global scheduler's (the paper's 2l vs l claim).
	byKey := map[[2]int]map[string]float64{}
	for _, c := range cells {
		k := [2]int{c.Levels, c.Width}
		if byKey[k] == nil {
			byKey[k] = map[string]float64{}
		}
		byKey[k][c.Scheduler] = c.StepsPerReq
	}
	for k, m := range byKey {
		if m["Local"] <= 0 || m["Global"] <= 0 {
			t.Fatalf("%v: missing counts %v", k, m)
		}
		if m["Local"] < 1.5*m["Global"] {
			t.Fatalf("%v: local steps %.2f not ~2x global %.2f", k, m["Local"], m["Global"])
		}
	}
	if !strings.Contains(ComplexityTable(cells).String(), "steps/req") {
		t.Fatal("rendering")
	}
}

func TestExtOptimalDominates(t *testing.T) {
	cells, err := ExtOptimal(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	byGrid := map[[2]int]map[string]float64{}
	for _, c := range cells {
		k := [2]int{c.Levels, c.Width}
		if byGrid[k] == nil {
			byGrid[k] = map[string]float64{}
		}
		byGrid[k][c.Variant] = c.Ratio.Mean
	}
	for k, m := range byGrid {
		if m["Optimal"] != 1 {
			t.Fatalf("%v: optimal mean %v != 100%%", k, m["Optimal"])
		}
		if m["Optimal"] < m["Global"] || m["Global"] < m["Local"] {
			t.Fatalf("%v: ordering violated: %v", k, m)
		}
	}
}

func TestExtTraffic(t *testing.T) {
	cells, err := ExtTraffic(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 18 { // 9 patterns x 2 schedulers
		t.Fatalf("cells = %d", len(cells))
	}
	// Neighbor traffic is light (mostly same-switch or one level): both
	// schedulers near 100%.
	for _, c := range cells {
		if c.Pattern == traffic.Neighbor && c.Ratio.Mean < 0.95 {
			t.Fatalf("neighbor ratio %v unexpectedly low for %s", c.Ratio.Mean, c.Scheduler)
		}
	}
	if !strings.Contains(TrafficTable(cells).String(), "bit-reversal") {
		t.Fatal("rendering")
	}
}

func TestExtSlimDegradesWithW(t *testing.T) {
	cells, err := ExtSlim(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	means := map[int]float64{}
	for _, c := range cells {
		if c.Scheduler == "Global" {
			means[c.W] = c.Ratio.Mean
		}
	}
	// Fewer parents, fewer paths: monotone non-decreasing in w.
	if !(means[2] < means[4] && means[4] < means[8]) {
		t.Fatalf("slim means not increasing with w: %v", means)
	}
	if !strings.Contains(SlimTable(cells).String(), "w/m") {
		t.Fatal("rendering")
	}
}

func TestExtDynamic(t *testing.T) {
	cells, err := ExtDynamic(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 {
		t.Fatalf("cells = %d", len(cells))
	}
	// At the heaviest load, Global blocks no more than Local.
	var lastLocal, lastGlobal float64
	for _, c := range cells {
		if c.ArrivalRate == 8 {
			if c.Scheduler == "Local" {
				lastLocal = c.Blocking
			} else {
				lastGlobal = c.Blocking
			}
		}
	}
	if lastGlobal > lastLocal {
		t.Fatalf("global blocking %v above local %v at peak load", lastGlobal, lastLocal)
	}
	if !strings.Contains(DynamicTable(cells).String(), "blocking") {
		t.Fatal("rendering")
	}
}

func TestExtSwitchSim(t *testing.T) {
	cells, err := ExtSwitchSim(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Global.Mean <= c.Wave.Mean || c.Global.Mean <= c.Sequential.Mean {
			t.Fatalf("N=%d: global %v not above local variants (%v, %v)",
				c.Nodes, c.Global.Mean, c.Sequential.Mean, c.Wave.Mean)
		}
	}
	if !strings.Contains(SwitchSimTable(cells).String(), "distributed") {
		t.Fatal("rendering")
	}
}

func TestRunSuiteSmoke(t *testing.T) {
	var sb strings.Builder
	violations, err := RunSuite(&sb, SuiteConfig{Permutations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 9(a)", "Figure 9(b)", "Figure 9(c)", "Figure 9(d)",
		"Table 1", "Ablation A1", "Ablation A2", "Ablation A3",
		"Extension E1", "Extension E2", "Extension E3", "Extension E4",
		"Extension E5", "Extension E6", "Extension E7", "Extension E8",
		"Extension E9", "Extension E10", "Extension E11", "Extension E12", "Extension E13", "Extension E14", "Extension E15",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("suite output missing %q", want)
		}
	}
	// With only 5 permutations the min/max claims may wobble, so the
	// violation list is informational here; just make sure the checker
	// ran and the suite completed.
	_ = violations
}

func TestRunSuiteSkipExtensions(t *testing.T) {
	var sb strings.Builder
	if _, err := RunSuite(&sb, SuiteConfig{Permutations: 3, Seed: 1, SkipExtensions: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "Extension") {
		t.Fatal("extensions ran despite SkipExtensions")
	}
	if !strings.Contains(out, "Table 1") {
		t.Fatal("core evaluation missing")
	}
}

func TestRunFig9RejectsBadShape(t *testing.T) {
	if _, err := RunFig9(Fig9Config{Levels: 0, Widths: []int{4}}); err == nil {
		t.Fatal("bad levels accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := RunFig9(Fig9Config{Name: "s", Levels: 3, Widths: []int{4, 6, 8}, Permutations: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig9(Fig9Config{Name: "s", Levels: 3, Widths: []int{4, 6, 8}, Permutations: 15, Seed: 9, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		if seq.Points[i] != par.Points[i] {
			t.Fatalf("point %d differs:\n%+v\n%+v", i, seq.Points[i], par.Points[i])
		}
	}
}

func TestRunSuiteOnlyFilter(t *testing.T) {
	var sb strings.Builder
	if _, err := RunSuite(&sb, SuiteConfig{Permutations: 3, Seed: 1, Only: "e13", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Extension E13") {
		t.Fatal("selected component missing")
	}
	for _, absent := range []string{"Figure 9(a)", "Table 1", "Extension E12", "Ablation A1"} {
		if strings.Contains(out, absent) {
			t.Fatalf("filter leaked %q", absent)
		}
	}
}

func TestRunSuiteParallelMatchesSequentialOutput(t *testing.T) {
	// "e1" selects Table 1 plus components E1 and E10-E14 -- several
	// independent extensions, enough to exercise the pool while staying
	// fast under -race.
	run := func(workers int) string {
		var sb strings.Builder
		if _, err := RunSuite(&sb, SuiteConfig{Permutations: 3, Seed: 1, Workers: workers, Only: "e1"}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := run(1)
	if !strings.Contains(seq, "Extension E14") || !strings.Contains(seq, "Extension E10") {
		t.Fatalf("filter selected unexpectedly little:\n%s", seq)
	}
	if seq != run(4) {
		t.Fatal("parallel suite output differs from sequential")
	}
}
