package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

// LoadLatencyCell is one point of the wormhole load–latency sweep.
type LoadLatencyCell struct {
	Router     string
	Rate       float64
	AvgLatency float64
	P99Latency float64
	Throughput float64 // flits/node/cycle
}

// ExtWormholeLoad (E8) sweeps injection rate on FT(3,4) under uniform
// traffic for three wormhole routers — deterministic, adaptive, and
// adaptive with 4 virtual channels — the classic interconnect
// load–latency curves for the packet-switched transport the paper's
// circuit scheduling replaces.
func ExtWormholeLoad(seed int64) ([]LoadLatencyCell, error) {
	tree, err := topology.New(3, 4, 4)
	if err != nil {
		return nil, err
	}
	routers := []struct {
		name   string
		policy wormhole.UpPolicy
		vcs    int
		sf     bool
	}{
		{"store-and-forward", wormhole.AdaptiveFreeSpace, 1, true},
		{"deterministic", wormhole.DeterministicFirst, 1, false},
		{"adaptive", wormhole.AdaptiveFreeSpace, 1, false},
		{"adaptive+4vc", wormhole.AdaptiveFreeSpace, 4, false},
	}
	var cells []LoadLatencyCell
	for _, r := range routers {
		for _, rate := range []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.50} {
			depth := 0 // default
			if r.sf {
				depth = 5 // store-and-forward holds whole 5-flit packets
			}
			m, err := wormhole.Run(wormhole.Config{
				Tree:            tree,
				Policy:          r.policy,
				VirtualChannels: r.vcs,
				StoreAndForward: r.sf,
				BufferDepth:     depth,
				Rate:            rate,
				Cycles:          6000,
				Warmup:          1000,
				Seed:            seed,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, LoadLatencyCell{
				Router:     r.name,
				Rate:       rate,
				AvgLatency: m.AvgLatency,
				P99Latency: m.P99Latency,
				Throughput: m.ThroughputFlits,
			})
		}
	}
	return cells, nil
}

// WormholeLoadTable renders the load–latency sweep.
func WormholeLoadTable(cells []LoadLatencyCell) *report.Table {
	tb := report.NewTable("Extension E8: wormhole load–latency on FT(3,4), uniform traffic, 5-flit packets",
		"router", "inj. rate", "avg latency", "p99", "throughput (flits/node/cyc)")
	for _, c := range cells {
		tb.AddRow(c.Router, fmt.Sprintf("%.2f", c.Rate),
			fmt.Sprintf("%.1f", c.AvgLatency), fmt.Sprintf("%.0f", c.P99Latency),
			fmt.Sprintf("%.3f", c.Throughput))
	}
	return tb
}

// BulkCell is one message-size point of the circuit-vs-wormhole phase
// comparison.
type BulkCell struct {
	MessageFlits   int
	WormholeCycles int
	CircuitRounds  int
	// CircuitCycles = rounds · (message + setup), setup being the
	// hardware scheduler's 3 cycles/request (Table 1 throughput).
	CircuitCycles int
	Speedup       float64 // wormhole / circuit
}

// ExtBulkTransfer (E9) quantifies the paper's motivation — "the penalty
// of low bandwidth utilization detrimentally impacts execution time,
// especially for long-lived connections" — by timing one full
// permutation phase where every node sends an M-flit message:
//
//   - wormhole: measured completion cycles of the flit-level simulation;
//   - scheduled circuits: the Level-wise scheduler delivers the
//     permutation in R rounds (extension E7); every granted circuit then
//     streams at link rate, so the phase costs R·(M + 3N) cycles
//     including the hardware scheduler's 3-cycles-per-request setup.
func ExtBulkTransfer(seed int64) ([]BulkCell, error) {
	tree, err := topology.New(3, 4, 4)
	if err != nil {
		return nil, err
	}
	n := tree.Nodes()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	reqs := make([]core.Request, n)
	for i, d := range perm {
		reqs[i] = core.Request{Src: i, Dst: d}
	}
	st := linkstate.New(tree)
	rounds, err := RoundsToComplete(tree, st, core.NewLevelWise(), reqs)
	if err != nil {
		return nil, err
	}
	setup := 3 * n // hardware scheduler: 3 cycles per request per round

	var cells []BulkCell
	for _, m := range []int{16, 64, 256, 1024} {
		wm, err := wormhole.RunBulk(wormhole.Config{
			Tree:      tree,
			PacketLen: m,
			Seed:      seed,
			Dest:      func(src int, _ *rand.Rand) int { return perm[src] },
		}, 100*m*tree.Levels()*n)
		if err != nil {
			return nil, err
		}
		circuit := rounds * (m + setup)
		cells = append(cells, BulkCell{
			MessageFlits:   m,
			WormholeCycles: wm.Cycles,
			CircuitRounds:  rounds,
			CircuitCycles:  circuit,
			Speedup:        float64(wm.Cycles) / float64(circuit),
		})
	}
	return cells, nil
}

// BulkTable renders the phase comparison.
func BulkTable(cells []BulkCell) *report.Table {
	tb := report.NewTable("Extension E9: permutation phase time, wormhole vs Level-wise circuits (FT(3,4))",
		"message flits", "wormhole cycles", "circuit rounds", "circuit cycles", "circuit speedup")
	for _, c := range cells {
		tb.AddRow(fmt.Sprint(c.MessageFlits), fmt.Sprint(c.WormholeCycles),
			fmt.Sprint(c.CircuitRounds), fmt.Sprint(c.CircuitCycles),
			fmt.Sprintf("%.2fx", c.Speedup))
	}
	tb.AddNote("circuit cycles include 3·N setup cycles per round (hardware scheduler throughput, Table 1)")
	return tb
}
