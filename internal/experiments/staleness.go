package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// StalenessCell is one point of the information-staleness sweep.
type StalenessCell struct {
	Window int // 0 renders as the local baseline row
	Label  string
	Ratio  stats.Summary
}

// ExtStaleness (E12) asks how fresh the Level-wise scheduler's global
// view must be: the destination-side link state is refreshed only every
// Window requests, and stale decisions can fail at commit like the local
// scheduler's blind ones. The sweep interpolates between the paper's two
// contenders and shows how quickly the global advantage decays — i.e.
// what update rate a control plane must sustain.
func ExtStaleness(perms int, seed int64) ([]StalenessCell, error) {
	if perms == 0 {
		perms = DefaultPermutations
	}
	tree, err := topology.New(3, 8, 8)
	if err != nil {
		return nil, err
	}
	n := tree.Nodes()
	run := func(label, spec string) (StalenessCell, error) {
		mk := SchedulerSpec{Label: label, Spec: spec}.Make
		gen := traffic.NewGenerator(n, seed)
		ratios := make([]float64, 0, perms)
		st := linkstate.New(tree)
		for trial := 0; trial < perms; trial++ {
			st.Reset()
			r := mk().Schedule(st, gen.MustBatch(traffic.RandomPermutation))
			if err := core.Verify(tree, r); err != nil {
				return StalenessCell{}, fmt.Errorf("experiments: staleness %s: %v", label, err)
			}
			ratios = append(ratios, r.Ratio())
		}
		return StalenessCell{Label: label, Ratio: stats.Summarize(ratios)}, nil
	}

	var cells []StalenessCell
	for _, w := range []int{1, 4, 16, 64, 256, n} {
		c, err := run(fmt.Sprintf("window %d", w), fmt.Sprintf("stale,window=%d", w))
		if err != nil {
			return nil, err
		}
		c.Window = w
		cells = append(cells, c)
	}
	c, err := run("local greedy (no view)", "local-greedy")
	if err != nil {
		return nil, err
	}
	cells = append(cells, c)
	return cells, nil
}

// StalenessTable renders the sweep.
func StalenessTable(cells []StalenessCell) *report.Table {
	tb := report.NewTable("Extension E12: Level-wise with a stale global view (FT(3,8))",
		"view refresh", "mean", "min", "max", "")
	for _, c := range cells {
		tb.AddRow(c.Label, report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min),
			report.Percent(c.Ratio.Max), report.Bar(c.Ratio.Mean, 24))
	}
	tb.AddNote("window 1 = exact Level-wise; the view refreshes every N requests; decisions that went stale fail at commit")
	return tb
}
