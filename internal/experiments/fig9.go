// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations and extensions indexed in DESIGN.md §3.
// Each experiment returns structured data and can render itself as the
// rows/series the paper reports (package report).
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// DefaultPermutations is the paper's sample size per test point ("We
// generate a set of 100 random permutations for each test point").
const DefaultPermutations = 100

// Paper evaluation grids (Figure 9): system sizes are w^l.
var (
	// Fig9aWidths are the two-level widths: 64, 256, 1024, 2304, 4096
	// nodes.
	Fig9aWidths = []int{8, 16, 32, 48, 64}
	// Fig9bWidths are the three-level widths: 64, 216, 512, 1728, 4096
	// nodes.
	Fig9bWidths = []int{4, 6, 8, 12, 16}
	// Fig9cWidths are the four-level widths: 81, 256, 625, 1296, 2401
	// nodes.
	Fig9cWidths = []int{3, 4, 5, 6, 7}
)

// SchedulerSpec names a scheduler contender for an experiment run: a
// display label plus the internal/sched registry spec that builds it.
type SchedulerSpec struct {
	Label string
	Spec  string
}

// Make constructs a fresh engine from the registry spec. Experiments
// build a fresh engine per batch so seeded randomness (seed=N in the
// spec) replays identically run to run. The spec must be valid; the run
// entry points validate every contender with sched.Parse up front.
func (s SchedulerSpec) Make() core.Scheduler { return sched.MustParse(s.Spec) }

// validateSpecs rejects malformed registry specs before any scheduling
// work starts, so bad specs surface as errors rather than panics.
func validateSpecs(specs []SchedulerSpec) error {
	for _, s := range specs {
		if _, err := sched.Parse(s.Spec); err != nil {
			return fmt.Errorf("experiments: scheduler %q: %w", s.Label, err)
		}
	}
	return nil
}

// DefaultSchedulers returns the paper's two contenders: the conventional
// local scheduler ("each switch selects a routing path randomly from the
// available local ports") and the Level-wise global scheduler ("we select
// the first available port").
func DefaultSchedulers() []SchedulerSpec {
	return []SchedulerSpec{
		{Label: "Local", Spec: "local-random"},
		{Label: "Global", Spec: "level-wise"},
	}
}

// Point is one bar of Figure 9: a (topology, scheduler) cell summarized
// over the permutation sample.
type Point struct {
	Levels    int
	Width     int
	Nodes     int
	Scheduler string
	Ratio     stats.Summary // schedulability ratio over the sample
}

// Fig9Result is one subplot of Figure 9.
type Fig9Result struct {
	Name   string
	Levels int
	Points []Point
}

// Fig9Config parameterizes a Figure 9 subplot run.
type Fig9Config struct {
	Name         string
	Levels       int
	Widths       []int
	Permutations int // 0 means DefaultPermutations
	Seed         int64
	Schedulers   []SchedulerSpec // nil means DefaultSchedulers
	// Workers bounds the number of widths evaluated concurrently;
	// 0 or 1 runs sequentially. Results are identical either way: each
	// width owns its topology, generator and link state, and all
	// randomness is seeded per width.
	Workers int
}

// RunFig9 executes one subplot: for every width it draws the permutation
// sample once and schedules it with every contender, so all schedulers
// see identical workloads. Every result is passed through core.Verify.
// Widths are evaluated in parallel when cfg.Workers > 1.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	perms := cfg.Permutations
	if perms == 0 {
		perms = DefaultPermutations
	}
	specs := cfg.Schedulers
	if specs == nil {
		specs = DefaultSchedulers()
	}
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Name:   cfg.Name,
		Levels: cfg.Levels,
		Points: make([]Point, len(cfg.Widths)*len(specs)),
	}

	runWidth := func(wi int) error {
		w := cfg.Widths[wi]
		tree, err := topology.New(cfg.Levels, w, w)
		if err != nil {
			return err
		}
		gen := traffic.NewGenerator(tree.Nodes(), cfg.Seed+int64(w))
		batches := gen.Permutations(perms)
		for si, spec := range specs {
			ratios := make([]float64, 0, perms)
			st := linkstate.New(tree)
			for _, batch := range batches {
				st.Reset()
				s := spec.Make()
				r := s.Schedule(st, batch)
				if err := core.Verify(tree, r); err != nil {
					return fmt.Errorf("experiments: %s FT(%d,%d) failed verification: %v", spec.Label, cfg.Levels, w, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			res.Points[wi*len(specs)+si] = Point{
				Levels:    cfg.Levels,
				Width:     w,
				Nodes:     tree.Nodes(),
				Scheduler: spec.Label,
				Ratio:     stats.Summarize(ratios),
			}
		}
		return nil
	}

	if cfg.Workers <= 1 {
		for wi := range cfg.Widths {
			if err := runWidth(wi); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	sem := make(chan struct{}, cfg.Workers)
	errs := make([]error, len(cfg.Widths))
	var wg sync.WaitGroup
	for wi := range cfg.Widths {
		wi := wi
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[wi] = runWidth(wi)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig9a runs the two-level subplot on the paper's grid.
func Fig9a(perms int, seed int64) (*Fig9Result, error) {
	return RunFig9(Fig9Config{Name: "Figure 9(a): two-level fat tree", Levels: 2, Widths: Fig9aWidths, Permutations: perms, Seed: seed})
}

// Fig9b runs the three-level subplot on the paper's grid.
func Fig9b(perms int, seed int64) (*Fig9Result, error) {
	return RunFig9(Fig9Config{Name: "Figure 9(b): three-level fat tree", Levels: 3, Widths: Fig9bWidths, Permutations: perms, Seed: seed})
}

// Fig9c runs the four-level subplot on the paper's grid.
func Fig9c(perms int, seed int64) (*Fig9Result, error) {
	return RunFig9(Fig9Config{Name: "Figure 9(c): four-level fat tree", Levels: 4, Widths: Fig9cWidths, Permutations: perms, Seed: seed})
}

// point returns the point for (width, scheduler), or nil.
func (r *Fig9Result) point(width int, scheduler string) *Point {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Width == width && p.Scheduler == scheduler {
			return p
		}
	}
	return nil
}

// Schedulers lists the scheduler labels present, in first-seen order.
func (r *Fig9Result) Schedulers() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Scheduler] {
			seen[p.Scheduler] = true
			out = append(out, p.Scheduler)
		}
	}
	return out
}

// Widths lists the widths present, in first-seen order.
func (r *Fig9Result) Widths() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.Width] {
			seen[p.Width] = true
			out = append(out, p.Width)
		}
	}
	return out
}

// Table renders the subplot in the paper's layout: one row per system
// size, mean (min–max) per scheduler.
func (r *Fig9Result) Table() *report.Table {
	scheds := r.Schedulers()
	header := []string{"nodes", "w"}
	for _, s := range scheds {
		header = append(header, s+" mean", s+" min", s+" max")
	}
	tb := report.NewTable(r.Name, header...)
	for _, w := range r.Widths() {
		var row []string
		first := r.point(w, scheds[0])
		row = append(row, fmt.Sprintf("%d(%d^%d)", first.Nodes, w, r.Levels), fmt.Sprint(w))
		for _, s := range scheds {
			p := r.point(w, s)
			row = append(row, report.Percent(p.Ratio.Mean), report.Percent(p.Ratio.Min), report.Percent(p.Ratio.Max))
		}
		tb.AddRow(row...)
	}
	return tb
}

// Fig9dRow is one bar of Figure 9(d): the grand mean of a scheduler over
// one subplot's sizes.
type Fig9dRow struct {
	Scheduler string
	Levels    int
	Mean      float64
}

// Fig9d aggregates subplots into the Figure 9(d) averages.
func Fig9d(subplots ...*Fig9Result) []Fig9dRow {
	var rows []Fig9dRow
	for _, sp := range subplots {
		for _, s := range sp.Schedulers() {
			var ratios []float64
			for _, p := range sp.Points {
				if p.Scheduler == s {
					ratios = append(ratios, p.Ratio.Mean)
				}
			}
			rows = append(rows, Fig9dRow{Scheduler: s, Levels: sp.Levels, Mean: stats.Summarize(ratios).Mean})
		}
	}
	return rows
}

// Fig9dTable renders the Figure 9(d) bars.
func Fig9dTable(rows []Fig9dRow) *report.Table {
	tb := report.NewTable("Figure 9(d): average schedulability", "scheduler", "levels", "mean", "")
	for _, r := range rows {
		tb.AddRow(r.Scheduler, fmt.Sprint(r.Levels), report.Percent(r.Mean), report.Bar(r.Mean, 24))
	}
	return tb
}

// CheckPaperClaims validates the qualitative shape of Figure 9 against the
// paper's Section 5 text and returns every violated claim (empty = all
// hold). Claims checked, with the tolerance DESIGN.md §8 documents:
//
//  1. Global beats Local at every grid point.
//  2. In networks above 500 nodes the improvement exceeds ~30%
//     (paper: "the improvement is over 30%"); we require >= 25% absolute.
//  3. The Local minimum... (paper: Level-wise min > Local max per point;
//     we require it at every point).
//  4. Global stays within the published 78–95% band and Local within
//     45–70%, each widened by 5 points.
func CheckPaperClaims(subplots ...*Fig9Result) []string {
	var bad []string
	for _, sp := range subplots {
		for _, w := range sp.Widths() {
			g := sp.point(w, "Global")
			l := sp.point(w, "Local")
			if g == nil || l == nil {
				continue
			}
			tag := fmt.Sprintf("FT(%d,%d) N=%d", sp.Levels, w, g.Nodes)
			if g.Ratio.Mean <= l.Ratio.Mean {
				bad = append(bad, fmt.Sprintf("%s: Global %.3f <= Local %.3f", tag, g.Ratio.Mean, l.Ratio.Mean))
			}
			if g.Nodes > 500 && g.Ratio.Mean-l.Ratio.Mean < 0.25 {
				bad = append(bad, fmt.Sprintf("%s: improvement %.3f < 0.25", tag, g.Ratio.Mean-l.Ratio.Mean))
			}
			if g.Ratio.Min <= l.Ratio.Max {
				bad = append(bad, fmt.Sprintf("%s: Global min %.3f <= Local max %.3f", tag, g.Ratio.Min, l.Ratio.Max))
			}
			if g.Ratio.Mean < 0.73 || g.Ratio.Mean > 1.0 {
				bad = append(bad, fmt.Sprintf("%s: Global mean %.3f outside 78–95%% (±5)", tag, g.Ratio.Mean))
			}
			if l.Ratio.Mean < 0.40 || l.Ratio.Mean > 0.80 {
				bad = append(bad, fmt.Sprintf("%s: Local mean %.3f outside 45–70%% (±5/±10)", tag, l.Ratio.Mean))
			}
		}
	}
	return bad
}
