package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AblationCell is one (variant, topology) measurement.
type AblationCell struct {
	Variant string
	Levels  int
	Width   int
	Nodes   int
	Ratio   stats.Summary
}

// ablationGrid is the reduced Figure-9 grid the ablations sweep: one
// representative size per depth.
var ablationGrid = [][2]int{{2, 16}, {3, 8}, {4, 5}}

// runVariants schedules the same permutation sample with every variant.
func runVariants(perms int, seed int64, variants []SchedulerSpec) ([]AblationCell, error) {
	if perms == 0 {
		perms = DefaultPermutations
	}
	if err := validateSpecs(variants); err != nil {
		return nil, err
	}
	var cells []AblationCell
	for _, g := range ablationGrid {
		tree, err := topology.New(g[0], g[1], g[1])
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(g[0]*100+g[1]))
		batches := gen.Permutations(perms)
		for _, spec := range variants {
			ratios := make([]float64, 0, perms)
			st := linkstate.New(tree)
			for _, b := range batches {
				st.Reset()
				r := spec.Make().Schedule(st, b)
				if err := core.Verify(tree, r); err != nil {
					return nil, fmt.Errorf("experiments: ablation %s: %v", spec.Label, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			cells = append(cells, AblationCell{
				Variant: spec.Label,
				Levels:  g[0],
				Width:   g[1],
				Nodes:   tree.Nodes(),
				Ratio:   stats.Summarize(ratios),
			})
		}
	}
	return cells, nil
}

// AblationPortPolicy (A1) compares Level-wise port-selection policies:
// the paper's first-fit against random and least-loaded lookahead.
func AblationPortPolicy(perms int, seed int64) ([]AblationCell, error) {
	return runVariants(perms, seed, []SchedulerSpec{
		{Label: "first-fit", Spec: "level-wise,policy=first-fit"},
		{Label: "random", Spec: "level-wise,policy=random"},
		{Label: "least-loaded", Spec: "level-wise,policy=least-loaded"},
	})
}

// AblationRollback (A2) measures whether releasing a failed request's
// partial allocations (not in the paper's pseudo-code) changes the ratio.
// Under the paper's level-major traversal it provably cannot: by the time
// a request fails at level h, every other request has already finished
// deciding at levels < h, so the released channels are never re-examined.
// The request-major traversal (the hardware's order) can exploit the
// released capacity, so all four combinations are measured.
func AblationRollback(perms int, seed int64) ([]AblationCell, error) {
	return runVariants(perms, seed, []SchedulerSpec{
		{Label: "level-major, no-rollback (paper)", Spec: "level-wise"},
		{Label: "level-major, rollback", Spec: "level-wise,rollback"},
		{Label: "request-major, no-rollback", Spec: "level-wise,traversal=request-major"},
		{Label: "request-major, rollback", Spec: "level-wise,traversal=request-major,rollback"},
	})
}

// AblationOrdering (A3) compares request processing orders.
func AblationOrdering(perms int, seed int64) ([]AblationCell, error) {
	mk := func(order string) string { return fmt.Sprintf("level-wise,order=%s,seed=%d", order, seed) }
	return runVariants(perms, seed, []SchedulerSpec{
		{Label: "natural (paper)", Spec: mk("natural")},
		{Label: "shuffled", Spec: mk("shuffle")},
		{Label: "deepest-first", Spec: mk("deepest-first")},
	})
}

// AblationTable renders an ablation sweep.
func AblationTable(title string, cells []AblationCell) *report.Table {
	tb := report.NewTable(title, "variant", "FT(l,w)", "nodes", "mean", "min", "max")
	for _, c := range cells {
		tb.AddRow(c.Variant,
			fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width),
			fmt.Sprint(c.Nodes),
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max))
	}
	return tb
}

// ComplexityCell is one row of the Section 4 complexity comparison: the
// mean per-request operation counts of both schedulers.
type ComplexityCell struct {
	Levels, Width, Nodes int
	Scheduler            string
	StepsPerReq          float64 // sequential level visits (~l vs ~2l)
	VectorReadsPerReq    float64
	AllocsPerReq         float64
}

// ComplexityCounts instruments both schedulers over the reduced grid,
// exhibiting the paper's O(l·log_l N) vs O(2l·log_l N) claim as measured
// per-request link-state reads.
func ComplexityCounts(perms int, seed int64) ([]ComplexityCell, error) {
	if perms == 0 {
		perms = 20
	}
	var cells []ComplexityCell
	for _, g := range ablationGrid {
		tree, err := topology.New(g[0], g[1], g[1])
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed)
		batches := gen.Permutations(perms)
		for _, spec := range DefaultSchedulers() {
			var ops core.Counters
			total := 0
			st := linkstate.New(tree)
			for _, b := range batches {
				st.Reset()
				r := spec.Make().Schedule(st, b)
				ops.Add(r.Ops)
				total += r.Total
			}
			cells = append(cells, ComplexityCell{
				Levels: g[0], Width: g[1], Nodes: tree.Nodes(),
				Scheduler:         spec.Label,
				StepsPerReq:       float64(ops.Steps) / float64(total),
				VectorReadsPerReq: float64(ops.VectorReads) / float64(total),
				AllocsPerReq:      float64(ops.Allocs) / float64(total),
			})
		}
	}
	return cells, nil
}

// ComplexityTable renders the operation-count comparison.
func ComplexityTable(cells []ComplexityCell) *report.Table {
	tb := report.NewTable("Section 4: per-request sequential steps (Level-wise ~l, local ~2l)",
		"FT(l,w)", "scheduler", "steps/req", "vector reads/req", "allocs/req")
	for _, c := range cells {
		tb.AddRow(fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width), c.Scheduler,
			fmt.Sprintf("%.2f", c.StepsPerReq),
			fmt.Sprintf("%.2f", c.VectorReadsPerReq), fmt.Sprintf("%.2f", c.AllocsPerReq))
	}
	tb.AddNote("a step is one level visit; Level-wise settles up+down in one step via the AND, local visits each level twice")
	return tb
}
