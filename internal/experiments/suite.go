package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/report"
)

// SuiteConfig controls a full reproduction run.
type SuiteConfig struct {
	// Permutations per test point; 0 means the paper's 100.
	Permutations int
	// Seed makes the whole suite reproducible.
	Seed int64
	// SkipExtensions restricts the run to the paper's own evaluation
	// (Figure 9 and Table 1).
	SkipExtensions bool
	// Workers parallelizes the Figure 9 sweeps across system sizes and
	// the ablations/extensions across each other; results and output
	// order are identical to a sequential run.
	Workers int
	// Only, when non-empty, runs just the suite components whose id
	// contains it (case-insensitive), e.g. "e12", "a1", "fig9",
	// "table1" or "complexity".
	Only string
}

func (c SuiteConfig) wants(id string) bool {
	if c.Only == "" {
		return true
	}
	return strings.Contains(strings.ToLower(id), strings.ToLower(c.Only))
}

// component is one named, independently runnable piece of the suite.
type component struct {
	id  string
	run func() (*report.Table, error)
}

// RunSuite executes the evaluation — every figure and table of the paper
// plus (unless skipped or filtered) the ablations and extensions —
// rendering each as an ASCII table to out. It returns the Figure 9
// claim-check violations (nil when the reproduction matches the paper's
// shape, or when the claim check did not run due to filtering).
func RunSuite(out io.Writer, cfg SuiteConfig) ([]string, error) {
	var violations []string
	if cfg.wants("fig9") {
		a, err := RunFig9(Fig9Config{Name: "Figure 9(a): two-level fat tree", Levels: 2, Widths: Fig9aWidths,
			Permutations: cfg.Permutations, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		b, err := RunFig9(Fig9Config{Name: "Figure 9(b): three-level fat tree", Levels: 3, Widths: Fig9bWidths,
			Permutations: cfg.Permutations, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		c, err := RunFig9(Fig9Config{Name: "Figure 9(c): four-level fat tree", Levels: 4, Widths: Fig9cWidths,
			Permutations: cfg.Permutations, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		for _, r := range []*Fig9Result{a, b, c} {
			if err := r.Table().Render(out); err != nil {
				return nil, err
			}
		}
		if err := Fig9dTable(Fig9d(a, b, c)).Render(out); err != nil {
			return nil, err
		}
		violations = CheckPaperClaims(a, b, c)
		if len(violations) == 0 {
			fmt.Fprintln(out, "Figure 9 claim check: all Section 5 claims hold.")
		} else {
			fmt.Fprintf(out, "Figure 9 claim check: %d violation(s):\n", len(violations))
			for _, v := range violations {
				fmt.Fprintf(out, "  - %s\n", v)
			}
		}
		fmt.Fprintln(out)
	}

	if cfg.wants("table1") {
		t1, err := Table1(cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := Table1Table(t1).Render(out); err != nil {
			return nil, err
		}
	}
	if cfg.wants("complexity") {
		cc, err := ComplexityCounts(0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := ComplexityTable(cc).Render(out); err != nil {
			return nil, err
		}
	}

	if cfg.SkipExtensions {
		return violations, nil
	}

	components := []component{
		{"A1 port-policy", func() (*report.Table, error) {
			cells, err := AblationPortPolicy(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return AblationTable("Ablation A1: Level-wise port-selection policy", cells), nil
		}},
		{"A2 rollback", func() (*report.Table, error) {
			cells, err := AblationRollback(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return AblationTable("Ablation A2: rollback of failed requests", cells), nil
		}},
		{"A3 ordering", func() (*report.Table, error) {
			cells, err := AblationOrdering(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return AblationTable("Ablation A3: request processing order", cells), nil
		}},
		{"E1 optimal", func() (*report.Table, error) {
			cells, err := ExtOptimal(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return AblationTable("Extension E1: optimal (rearrangeable) reference", cells), nil
		}},
		{"E2 traffic", func() (*report.Table, error) {
			cells, err := ExtTraffic(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return TrafficTable(cells), nil
		}},
		{"E3 slim", func() (*report.Table, error) {
			cells, err := ExtSlim(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return SlimTable(cells), nil
		}},
		{"E4 dynamic", func() (*report.Table, error) {
			cells, err := ExtDynamic(cfg.Seed)
			if err != nil {
				return nil, err
			}
			return DynamicTable(cells), nil
		}},
		{"E5 switchsim", func() (*report.Table, error) {
			cells, err := ExtSwitchSim(cfg.Permutations/2, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return SwitchSimTable(cells), nil
		}},
		{"E6 tbwp", func() (*report.Table, error) {
			cells, err := ExtTBWP(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return TBWPTable(cells), nil
		}},
		{"E7 rounds", func() (*report.Table, error) {
			cells, err := ExtRounds(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return RoundsTable(cells), nil
		}},
		{"E8 wormhole-load", func() (*report.Table, error) {
			cells, err := ExtWormholeLoad(cfg.Seed)
			if err != nil {
				return nil, err
			}
			return WormholeLoadTable(cells), nil
		}},
		{"E9 bulk-transfer", func() (*report.Table, error) {
			cells, err := ExtBulkTransfer(cfg.Seed)
			if err != nil {
				return nil, err
			}
			return BulkTable(cells), nil
		}},
		{"E10 faults", func() (*report.Table, error) {
			cells, err := ExtFaults(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return FaultTable(cells), nil
		}},
		{"E11 failure-loci", func() (*report.Table, error) {
			loci, err := ExtFailureLoci(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return FailureLociTable(loci), nil
		}},
		{"E12 staleness", func() (*report.Table, error) {
			cells, err := ExtStaleness(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return StalenessTable(cells), nil
		}},
		{"E13 multicast", func() (*report.Table, error) {
			cells, err := ExtMulticast(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return MulticastTable(cells), nil
		}},
		{"E14 backtrack", func() (*report.Table, error) {
			cells, err := ExtBacktrack(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return BacktrackTable(cells), nil
		}},
		{"E15 analytic", func() (*report.Table, error) {
			cells, err := ExtAnalytic(cfg.Permutations, cfg.Seed)
			if err != nil {
				return nil, err
			}
			return AnalyticTable(cells), nil
		}},
	}
	var selected []component
	for _, c := range components {
		if cfg.wants(c.id) {
			selected = append(selected, c)
		}
	}

	// Components are independent; run them on a bounded pool and render
	// in the original order.
	tables := make([]*report.Table, len(selected))
	errs := make([]error, len(selected))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range selected {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			tables[i], errs[i] = selected[i].run()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", selected[i].id, err)
		}
		if err := tables[i].Render(out); err != nil {
			return nil, err
		}
	}
	return violations, nil
}
