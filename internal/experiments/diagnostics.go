package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// FailureLocus describes where one scheduler's denials happen: counts per
// (level, direction) over a permutation sample.
type FailureLocus struct {
	Scheduler string
	Levels    int
	Width     int
	// UpFails[h] / DownFails[h] count requests denied at link level h
	// while climbing / descending. The Level-wise scheduler has no
	// separate down phase: its denials are all "up" (the combined AND).
	UpFails   []int
	DownFails []int
	Granted   int
	Total     int
}

// ExtFailureLoci (E11) locates the denials of both schedulers on FT(3,8):
// the local scheduler loses most requests on the *downward* path (the
// blind commitment the paper's Figure 4 illustrates), while Level-wise
// denials concentrate at the highest level, where the remaining port
// choices run out.
func ExtFailureLoci(perms int, seed int64) ([]FailureLocus, error) {
	if perms == 0 {
		perms = DefaultPermutations
	}
	tree, err := topology.New(3, 8, 8)
	if err != nil {
		return nil, err
	}
	var out []FailureLocus
	for _, spec := range DefaultSchedulers() {
		locus := FailureLocus{
			Scheduler: spec.Label,
			Levels:    tree.Levels(),
			Width:     tree.Parents(),
			UpFails:   make([]int, tree.LinkLevels()),
			DownFails: make([]int, tree.LinkLevels()),
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed)
		st := linkstate.New(tree)
		for trial := 0; trial < perms; trial++ {
			st.Reset()
			res := spec.Make().Schedule(st, gen.MustBatch(traffic.RandomPermutation))
			if err := core.Verify(tree, res); err != nil {
				return nil, err
			}
			locus.Total += res.Total
			locus.Granted += res.Granted
			for _, o := range res.Outcomes {
				if o.Granted || o.FailLevel < 0 {
					continue
				}
				if o.FailDown {
					locus.DownFails[o.FailLevel]++
				} else {
					locus.UpFails[o.FailLevel]++
				}
			}
		}
		out = append(out, locus)
	}
	return out, nil
}

// FailureLociTable renders the denial loci.
func FailureLociTable(loci []FailureLocus) *report.Table {
	tb := report.NewTable("Extension E11: where requests are denied (FT(3,8), per link level)",
		"scheduler", "level", "up-phase denials", "down-phase denials", "share of all denials")
	for _, l := range loci {
		denied := l.Total - l.Granted
		for h := 0; h < len(l.UpFails); h++ {
			share := 0.0
			if denied > 0 {
				share = float64(l.UpFails[h]+l.DownFails[h]) / float64(denied)
			}
			tb.AddRow(l.Scheduler, fmt.Sprint(h),
				fmt.Sprint(l.UpFails[h]), fmt.Sprint(l.DownFails[h]), report.Percent(share))
		}
	}
	tb.AddNote("Level-wise has no separate down phase: the AND settles both directions, so its denials are all up-phase")
	return tb
}
