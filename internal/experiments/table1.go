package experiments

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Table1Row is one row of the paper's Table 1: the hardware scheduler
// timing for a three-level fat tree of a given switch width.
type Table1Row struct {
	SwitchWidth int
	Nodes       int
	// PaperSingleNS / PaperAllNS are the published numbers.
	PaperSingleNS float64
	PaperAllNS    float64
	// Model numbers from the cycle-accurate pipeline.
	SingleNS   float64
	AllNS      float64 // N·3T, the paper's throughput accounting
	MakespanNS float64 // cycle-exact, includes pipeline fill
	Cycles     uint64
	Granted    int
	Total      int
}

// paperTable1 holds the published Table 1 values.
var paperTable1 = []struct {
	w, n            int
	singleNS, allNS float64
}{
	{4, 64, 15, 480},
	{8, 512, 17, 4352},
	{16, 4096, 19, 38912},
}

// Table1 reruns the paper's Table 1 on the hardware pipeline model: one
// random permutation per system size, timed cycle by cycle.
func Table1(seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, c := range paperTable1 {
		tree, err := topology.New(3, c.w, c.w)
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(c.w))
		reqs := gen.MustBatch(traffic.RandomPermutation)
		pipe := hardware.New(tree)
		res, tm := pipe.Schedule(reqs)
		rows = append(rows, Table1Row{
			SwitchWidth:   c.w,
			Nodes:         c.n,
			PaperSingleNS: c.singleNS,
			PaperAllNS:    c.allNS,
			SingleNS:      tm.SingleRequestNS,
			AllNS:         tm.PipelinedBatchNS,
			MakespanNS:    tm.BatchNS,
			Cycles:        tm.Cycles,
			Granted:       res.Granted,
			Total:         res.Total,
		})
	}
	return rows, nil
}

// Table1Table renders the comparison in the paper's layout.
func Table1Table(rows []Table1Row) *report.Table {
	tb := report.NewTable("Table 1: hardware scheduler timing (3-level fat tree, Stratix II calibration)",
		"system", "switch", "single paper", "single model", "all paper", "all model", "makespan", "granted")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprint(r.Nodes),
			fmt.Sprintf("%dx%d", r.SwitchWidth, r.SwitchWidth),
			fmt.Sprintf("%.0f ns", r.PaperSingleNS),
			fmt.Sprintf("%.0f ns", r.SingleNS),
			fmt.Sprintf("%.0f ns", r.PaperAllNS),
			fmt.Sprintf("%.0f ns", r.AllNS),
			fmt.Sprintf("%.1f ns", r.MakespanNS),
			fmt.Sprintf("%d/%d", r.Granted, r.Total),
		)
	}
	tb.AddNote("single = 6-cycle pipeline latency; all = N·3T throughput accounting (paper); makespan = cycle-exact incl. fill")
	return tb
}
