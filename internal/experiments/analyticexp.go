package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AnalyticCell compares a mean-field prediction with measurement.
type AnalyticCell struct {
	Levels, Width int
	Scheduler     string
	Predicted     float64
	Measured      stats.Summary
}

// ExtAnalytic (E15) validates the simulator against the mean-field model
// of package analytic across the Figure 9 grid: the local prediction is
// quantitative (within a few points, tightening with w); the Level-wise
// prediction is a strict lower bound (the scheduler preserves U/D
// alignment better than independence assumes).
func ExtAnalytic(perms int, seed int64) ([]AnalyticCell, error) {
	if perms == 0 {
		perms = 50
	}
	grid := []struct{ l, w int }{
		{2, 16}, {2, 64}, {3, 8}, {3, 16}, {4, 5}, {4, 7},
	}
	var cells []AnalyticCell
	for _, g := range grid {
		tree, err := topology.New(g.l, g.w, g.w)
		if err != nil {
			return nil, err
		}
		for _, spec := range []struct {
			label string
			model analytic.Scheduler
			mk    SchedulerSpec
		}{
			{"Local", analytic.LocalRandom, SchedulerSpec{Label: "Local", Spec: "local-random"}},
			{"Global", analytic.LevelWise, SchedulerSpec{Label: "Global", Spec: "level-wise"}},
		} {
			gen := traffic.NewGenerator(tree.Nodes(), seed+int64(g.w))
			st := linkstate.New(tree)
			ratios := make([]float64, 0, perms)
			for trial := 0; trial < perms; trial++ {
				st.Reset()
				r := spec.mk.Make().Schedule(st, gen.MustBatch(traffic.RandomPermutation))
				if err := core.Verify(tree, r); err != nil {
					return nil, fmt.Errorf("experiments: analytic %s FT(%d,%d): %v", spec.label, g.l, g.w, err)
				}
				ratios = append(ratios, r.Ratio())
			}
			cells = append(cells, AnalyticCell{
				Levels: g.l, Width: g.w,
				Scheduler: spec.label,
				Predicted: analytic.Predict(spec.model, g.l, g.w, 0),
				Measured:  stats.Summarize(ratios),
			})
		}
	}
	return cells, nil
}

// AnalyticTable renders the model-vs-measurement comparison.
func AnalyticTable(cells []AnalyticCell) *report.Table {
	tb := report.NewTable("Extension E15: mean-field model vs simulation",
		"FT(l,w)", "scheduler", "predicted", "measured", "delta")
	for _, c := range cells {
		tb.AddRow(fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width), c.Scheduler,
			report.Percent(c.Predicted), report.Percent(c.Measured.Mean),
			fmt.Sprintf("%+.1f", 100*(c.Predicted-c.Measured.Mean)))
	}
	tb.AddNote("the local model is quantitative; the Level-wise model is a deliberate lower bound (independence ignores the scheduler's U/D alignment)")
	return tb
}
