package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tbwp"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TBWPCell is one row of the turn-back baseline study.
type TBWPCell struct {
	Levels, Width, Nodes int
	Scheduler            string
	Ratio                stats.Summary
	// LateralsPerGrant is the mean number of top-ring hops consumed per
	// granted TBWP circuit (0 for the other schedulers).
	LateralsPerGrant float64
}

// ExtTBWP (E6) compares the Turn-Back-When-Possible adaptive baseline
// (Kariniemi & Nurmi, discussed in the paper's introduction) against the
// plain local scheduler and Level-wise on the reduced grid. TBWP gets the
// extra top-level ring the other schedulers don't have, and still loses
// to global information.
func ExtTBWP(perms int, seed int64) ([]TBWPCell, error) {
	if perms == 0 {
		perms = DefaultPermutations
	}
	var cells []TBWPCell
	for _, g := range ablationGrid {
		tree, err := topology.New(g[0], g[1], g[1])
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(g[0]))
		batches := gen.Permutations(perms)

		local := make([]float64, 0, perms)
		tb := make([]float64, 0, perms)
		global := make([]float64, 0, perms)
		lateralSum, grantSum := 0.0, 0.0
		st := linkstate.New(tree)
		for k, batch := range batches {
			st.Reset()
			local = append(local, core.NewLocalRandom().Schedule(st, batch).Ratio())

			st.Reset()
			s := &tbwp.Scheduler{Policy: core.RandomFit, Seed: seed + int64(k)}
			res := s.Schedule(st, batch)
			if err := tbwp.VerifyWalks(tree, res); err != nil {
				return nil, fmt.Errorf("experiments: TBWP: %v", err)
			}
			tb = append(tb, res.Ratio())
			lateralSum += float64(res.LateralsUsed)
			grantSum += float64(res.Granted)

			st.Reset()
			global = append(global, core.NewLevelWise().Schedule(st, batch).Ratio())
		}
		lat := 0.0
		if grantSum > 0 {
			lat = lateralSum / grantSum
		}
		cells = append(cells,
			TBWPCell{g[0], g[1], tree.Nodes(), "Local", stats.Summarize(local), 0},
			TBWPCell{g[0], g[1], tree.Nodes(), "TBWP", stats.Summarize(tb), lat},
			TBWPCell{g[0], g[1], tree.Nodes(), "Global", stats.Summarize(global), 0},
		)
	}
	return cells, nil
}

// TBWPTable renders the turn-back study.
func TBWPTable(cells []TBWPCell) *report.Table {
	tb := report.NewTable("Extension E6: Turn-Back-When-Possible baseline (top-level ring)",
		"FT(l,w)", "scheduler", "mean", "min", "max", "laterals/grant")
	for _, c := range cells {
		lat := ""
		if c.Scheduler == "TBWP" {
			lat = fmt.Sprintf("%.3f", c.LateralsPerGrant)
		}
		tb.AddRow(fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width), c.Scheduler,
			report.Percent(c.Ratio.Mean), report.Percent(c.Ratio.Min), report.Percent(c.Ratio.Max), lat)
	}
	tb.AddNote("TBWP additionally uses a top-level ring the other schedulers do not have")
	return tb
}

// RoundsCell is one row of the rounds-to-completion study.
type RoundsCell struct {
	Levels, Width, Nodes int
	Scheduler            string
	Rounds               stats.Summary // rounds needed to grant a full permutation
}

// ExtRounds (E7) measures time-division completion: a permutation is
// scheduled in rounds, each round a fresh network pass over the still-
// ungranted requests, until everything has been delivered — the number
// of rounds is the slowdown a communication phase suffers from imperfect
// schedulability. The optimal scheduler needs exactly one round on
// permutations; Level-wise needs about two; the local scheduler three or
// more.
func ExtRounds(perms int, seed int64) ([]RoundsCell, error) {
	if perms == 0 {
		perms = DefaultPermutations
	}
	specs := []SchedulerSpec{
		{Label: "Local", Spec: "local-random"},
		{Label: "Global", Spec: "level-wise"},
	}
	var cells []RoundsCell
	for _, g := range ablationGrid {
		tree, err := topology.New(g[0], g[1], g[1])
		if err != nil {
			return nil, err
		}
		gen := traffic.NewGenerator(tree.Nodes(), seed+int64(g[0]*10))
		batches := gen.Permutations(perms)
		for _, spec := range specs {
			rounds := make([]float64, 0, perms)
			st := linkstate.New(tree)
			for _, batch := range batches {
				r, err := RoundsToComplete(tree, st, spec.Make(), batch)
				if err != nil {
					return nil, err
				}
				rounds = append(rounds, float64(r))
			}
			cells = append(cells, RoundsCell{g[0], g[1], tree.Nodes(), spec.Label, stats.Summarize(rounds)})
		}
	}
	return cells, nil
}

// RoundsToComplete schedules the batch in fresh-network rounds until all
// requests are granted and returns the round count. A round that makes
// no progress aborts with an error (cannot happen for the built-in
// schedulers: a single request on an empty network always routes).
func RoundsToComplete(tree *topology.Tree, st *linkstate.State, s core.Scheduler, batch []core.Request) (int, error) {
	remaining := batch
	rounds := 0
	for len(remaining) > 0 {
		st.Reset()
		res := s.Schedule(st, remaining)
		if err := core.Verify(tree, res); err != nil {
			return 0, err
		}
		rounds++
		if res.Granted == 0 {
			return 0, fmt.Errorf("experiments: %s made no progress with %d requests left", s.Name(), len(remaining))
		}
		var next []core.Request
		for i := range res.Outcomes {
			if !res.Outcomes[i].Granted {
				next = append(next, res.Outcomes[i].Request)
			}
		}
		remaining = next
	}
	return rounds, nil
}

// RoundsTable renders the rounds-to-completion study.
func RoundsTable(cells []RoundsCell) *report.Table {
	tb := report.NewTable("Extension E7: rounds to deliver a full permutation (time-division)",
		"FT(l,w)", "scheduler", "mean rounds", "min", "max")
	for _, c := range cells {
		tb.AddRow(fmt.Sprintf("FT(%d,%d)", c.Levels, c.Width), c.Scheduler,
			fmt.Sprintf("%.2f", c.Rounds.Mean), fmt.Sprintf("%.0f", c.Rounds.Min), fmt.Sprintf("%.0f", c.Rounds.Max))
	}
	tb.AddNote("the optimal scheduler needs exactly 1 round on any permutation (rearrangeability)")
	return tb
}
