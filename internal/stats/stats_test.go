package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("CI95 of empty sample != 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample variance of this classic set is 32/7.
	if !approx(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if !approx(s.CI95(), 1.96*s.StdDev/math.Sqrt(8), 1e-12) {
		t.Fatalf("CI95 = %v", s.CI95())
	}
}

func TestSummaryString(t *testing.T) {
	got := Summarize([]float64{1, 2}).String()
	if got == "" || got[:5] != "mean=" {
		t.Fatalf("String = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, -1, 2}
	h := Histogram(xs, 0, 1, 2)
	// -1 clamps into bin 0; 1.0 and 2 clamp into bin 1.
	if h[0] != 3 || h[1] != 4 {
		t.Fatalf("hist = %v", h)
	}
	if Histogram(xs, 0, 1, 0) != nil || Histogram(xs, 1, 0, 3) != nil {
		t.Fatal("degenerate histogram not nil")
	}
}

func TestMeanOf(t *testing.T) {
	type pair struct{ a, b int }
	items := []pair{{1, 0}, {3, 0}}
	if got := MeanOf(items, func(p pair) float64 { return float64(p.a) }); got != 2 {
		t.Fatalf("MeanOf = %v", got)
	}
	if MeanOf(nil, func(p pair) float64 { return 0 }) != 0 {
		t.Fatal("MeanOf empty != 0")
	}
}

// Property: Min <= Mean <= Max and every observation lies within.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		for _, x := range xs {
			if x < s.Min || x > s.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram bin counts sum to the sample size.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(seed int64, n uint8, bins uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.Float64()*3 - 1
		}
		b := int(bins)%20 + 1
		h := Histogram(xs, 0, 1, b)
		total := 0
		for _, c := range h {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
