// Package stats provides the summary statistics the evaluation reports:
// mean, min, max (the paper's bar heights and whisker ends), standard
// deviation, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64 // sample standard deviation (n-1)
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (1.96 · s/√n); 0 for samples smaller than 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean=… min=… max=… n=…".
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.4f min=%.4f max=%.4f sd=%.4f n=%d", s.Mean, s.Min, s.Max, s.StdDev, s.N)
}

// Percentile returns the p-th percentile (0..100) of the sample using
// nearest-rank on a sorted copy. Empty samples return 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Histogram counts observations into equal-width bins over [lo, hi); the
// final bin includes hi. Observations outside the range are clamped into
// the first or last bin.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// MeanOf applies f to each element and returns the mean; 0 for empty input.
func MeanOf[T any](items []T, f func(T) float64) float64 {
	if len(items) == 0 {
		return 0
	}
	sum := 0.0
	for _, it := range items {
		sum += f(it)
	}
	return sum / float64(len(items))
}
