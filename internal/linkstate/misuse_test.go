package linkstate

import (
	"strings"
	"sync"
	"testing"
)

// Misuse-path coverage: the error returns that schedulers (and the
// fabric serving layer) rely on to catch double allocation, release of a
// free channel, and AllocatePath's claim-rollback on partial failure.
// scripts/ci.sh runs these under the race detector.

func TestMisuseDoubleAllocate(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if err := s.Allocate(Down, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	err := s.Allocate(Down, 1, 3, 2)
	if err == nil {
		t.Fatal("double allocate succeeded")
	}
	if !strings.Contains(err.Error(), "already occupied") {
		t.Errorf("double-allocate error %q lacks diagnosis", err)
	}
	if s.OccupiedCount() != 1 {
		t.Errorf("failed allocate changed occupancy: %d", s.OccupiedCount())
	}
}

func TestMisuseReleaseOfFree(t *testing.T) {
	s := newState(t, 3, 4, 4)
	for _, d := range []Direction{Up, Down} {
		err := s.Release(d, 1, 0, 1)
		if err == nil {
			t.Fatalf("release of free %s channel succeeded", d)
		}
		if !strings.Contains(err.Error(), "not occupied") {
			t.Errorf("release-of-free error %q lacks diagnosis", err)
		}
	}
	if s.OccupiedCount() != 0 {
		t.Errorf("failed releases changed occupancy: %d", s.OccupiedCount())
	}
	// Releasing a failed channel is also refused.
	s.FailLink(Up, 0, 0, 0)
	if err := s.Release(Up, 0, 0, 0); err == nil {
		t.Error("release of failed channel succeeded")
	}
}

// TestAllocatePathRollback pre-occupies one channel partway along a
// routed path and checks AllocatePath fails atomically: every channel it
// claimed before the conflict is returned, leaving only the pre-occupied
// channel held.
func TestAllocatePathRollback(t *testing.T) {
	for _, tc := range []struct {
		name string
		dir  Direction
	}{
		{"up-conflict", Up},
		{"down-conflict", Down},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newState(t, 3, 4, 4)
			tree := s.Tree()
			src, dst := 0, tree.Nodes()-1 // maximal common-ancestor level
			h := tree.AncestorLevel(src, dst)
			ports := make([]int, h) // first-fit path: all port 0

			// Walk the path to the conflict level and occupy one channel
			// the allocation will need at the top level h-1.
			sigma, _ := tree.NodeSwitch(src)
			delta, _ := tree.NodeSwitch(dst)
			for lvl := 0; lvl < h-1; lvl++ {
				sigma = tree.UpParent(lvl, sigma, 0)
				delta = tree.UpParent(lvl, delta, 0)
			}
			idx := sigma
			if tc.dir == Down {
				idx = delta
			}
			if err := s.Allocate(tc.dir, h-1, idx, 0); err != nil {
				t.Fatal(err)
			}

			if err := s.AllocatePath(src, dst, ports); err == nil {
				t.Fatal("AllocatePath through an occupied channel succeeded")
			}
			if occ := s.OccupiedCount(); occ != 1 {
				t.Fatalf("partial failure leaked claims: %d channels occupied, want 1", occ)
			}
			// The state must be exactly as before the failed call: the
			// same request routed over port 1 at the top level succeeds.
			ports[h-1] = 1
			if err := s.AllocatePath(src, dst, ports); err != nil {
				t.Fatalf("alternate path after rollback: %v", err)
			}
			if err := s.ReleasePath(src, dst, ports); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllocatePathPortCountMismatch(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if err := s.AllocatePath(0, s.Tree().Nodes()-1, []int{0}); err == nil {
		t.Error("short port list accepted")
	}
	if err := s.ReleasePath(0, s.Tree().Nodes()-1, []int{0}); err == nil {
		t.Error("short port list accepted by ReleasePath")
	}
	if s.OccupiedCount() != 0 {
		t.Errorf("mismatched calls changed occupancy: %d", s.OccupiedCount())
	}
}

// TestIndependentStatesConcurrently drives AllocatePath/ReleasePath on
// per-goroutine States in parallel. A State is documented as not safe
// for concurrent use, but distinct States must be fully independent —
// the race detector flags any hidden shared storage (e.g. the per-State
// scratch AND buffer leaking into a package global).
func TestIndependentStatesConcurrently(t *testing.T) {
	tree := newState(t, 3, 4, 4).Tree()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(tree)
			src, dst := g, tree.Nodes()-1-g
			ports := make([]int, tree.AncestorLevel(src, dst))
			for i := 0; i < 200; i++ {
				s.AvailBoth(0, 0, 1) // exercise the scratch buffer
				if err := s.AllocatePath(src, dst, ports); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if err := s.ReleasePath(src, dst, ports); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
			}
			if s.OccupiedCount() != 0 {
				t.Errorf("goroutine %d: dirty state", g)
			}
		}(g)
	}
	wg.Wait()
}
