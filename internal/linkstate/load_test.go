package linkstate

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/topology"
)

// TestLoadCountersDisabledByDefault pins the default: no tracking, zero
// readings, nil snapshots.
func TestLoadCountersDisabledByDefault(t *testing.T) {
	s := New(topology.MustNew(2, 4, 4))
	if s.LoadTracking() {
		t.Fatal("tracking enabled by default")
	}
	if err := s.Allocate(Up, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if s.LiveOccupancy() != 0 || s.TotalAllocs() != 0 || s.ChannelLoad(Up, 0, 0, 0) != 0 {
		t.Errorf("untracked state reported load: occ=%d total=%d chan=%d",
			s.LiveOccupancy(), s.TotalAllocs(), s.ChannelLoad(Up, 0, 0, 0))
	}
	if up, down := s.LoadSnapshot(); up != nil || down != nil {
		t.Error("untracked LoadSnapshot not nil")
	}
}

// TestLoadCountersTrackAllocateRelease covers the vector path: allocate
// increments the cumulative counter and the gauge, release decrements
// only the gauge.
func TestLoadCountersTrackAllocateRelease(t *testing.T) {
	s := New(topology.MustNew(2, 4, 4))
	s.TrackLoad()
	s.TrackLoad() // idempotent

	if err := s.Allocate(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Allocate(Down, 0, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveOccupancy(); got != 2 {
		t.Errorf("LiveOccupancy = %d, want 2", got)
	}
	if got := s.ChannelLoad(Up, 0, 1, 2); got != 1 {
		t.Errorf("ChannelLoad(up) = %d, want 1", got)
	}
	if got := s.ChannelLoad(Down, 0, 3, 2); got != 1 {
		t.Errorf("ChannelLoad(down) = %d, want 1", got)
	}
	if err := s.Release(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveOccupancy(); got != 1 {
		t.Errorf("LiveOccupancy after release = %d, want 1", got)
	}
	// Cumulative counters never decrement.
	if got := s.ChannelLoad(Up, 0, 1, 2); got != 1 {
		t.Errorf("ChannelLoad after release = %d, want 1", got)
	}
	// Re-allocate: the counter keeps accumulating.
	if err := s.Allocate(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.ChannelLoad(Up, 0, 1, 2); got != 2 {
		t.Errorf("ChannelLoad after re-allocate = %d, want 2", got)
	}
	if got := s.TotalAllocs(); got != 3 {
		t.Errorf("TotalAllocs = %d, want 3", got)
	}

	// Failed allocate/release attempts must not move any counter.
	before := s.LiveOccupancy()
	if err := s.Allocate(Up, 0, 1, 2); err == nil {
		t.Fatal("double allocate succeeded")
	}
	if err := s.Release(Down, 0, 0, 0); err == nil {
		t.Fatal("release of free channel succeeded")
	}
	if got := s.LiveOccupancy(); got != before {
		t.Errorf("failed ops moved the gauge: %d → %d", before, got)
	}
}

// TestLoadCountersWordPath covers AllocateBoth, the word fast path the
// scheduler hot loop uses.
func TestLoadCountersWordPath(t *testing.T) {
	s := New(topology.MustNew(2, 4, 4))
	if !s.WordRows() {
		t.Fatal("w=4 should take word rows")
	}
	s.TrackLoad()
	s.AllocateBoth(0, 0, 2, 1)
	if got := s.LiveOccupancy(); got != 2 {
		t.Errorf("LiveOccupancy = %d, want 2", got)
	}
	if s.ChannelLoad(Up, 0, 0, 1) != 1 || s.ChannelLoad(Down, 0, 2, 1) != 1 {
		t.Errorf("AllocateBoth counters: up=%d down=%d, want 1/1",
			s.ChannelLoad(Up, 0, 0, 1), s.ChannelLoad(Down, 0, 2, 1))
	}
}

// TestLoadGaugeMatchesOccupiedCount drives a mixed allocate/release/
// fail/repair/reset history and pins the O(1) gauge to the popcount
// truth at every step.
func TestLoadGaugeMatchesOccupiedCount(t *testing.T) {
	s := New(topology.MustNew(3, 4, 4))
	s.TrackLoad()
	check := func(step string) {
		t.Helper()
		if got, want := s.LiveOccupancy(), int64(s.OccupiedCount()); got != want {
			t.Fatalf("%s: gauge %d != OccupiedCount %d", step, got, want)
		}
	}
	// 0 and 63 meet at the top: two levels, four channels.
	if err := s.AllocatePath(0, 63, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	check("allocate path")
	// Fail an occupied channel (the level-0 climb out of switch 0 uses
	// port 1): the allocation is forfeited and leaves the gauge.
	if free := s.FailLink(Up, 0, 0, 1); free {
		t.Fatal("expected the failed channel to be occupied")
	}
	check("fail occupied")
	// Fail a free channel: occupancy unchanged.
	s.FailLink(Down, 0, 0, 3)
	check("fail free")
	s.RepairLink(Up, 0, 0, 1)
	check("repair")
	s.Reset()
	check("reset")

	// Snapshot/restore rewinds the gauge with the bits.
	snap := s.Snapshot()
	if err := s.AllocatePath(0, 16, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	check("post-snapshot allocate")
	s.Restore(snap)
	check("restore")
}

// TestLoadCountersAtomicPaths races TryAllocate/AtomicRelease workers on
// a tracked state and checks the counters settle to the exact totals —
// the parallel racy engine's view of the counters, run under -race.
func TestLoadCountersAtomicPaths(t *testing.T) {
	s := New(topology.MustNew(2, 8, 8))
	s.TrackLoad()
	const workers = 8
	const rounds = 200
	var wins atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				port := r % 8
				if s.TryAllocate(Up, 0, 0, port) {
					wins.Add(1)
					s.AtomicRelease(Up, 0, 0, port)
				}
			}
		}()
	}
	wg.Wait()
	if got := s.LiveOccupancy(); got != 0 {
		t.Errorf("LiveOccupancy = %d after all released, want 0", got)
	}
	if got := s.TotalAllocs(); got != wins.Load() {
		t.Errorf("TotalAllocs = %d, want %d (successful claims)", got, wins.Load())
	}
}
