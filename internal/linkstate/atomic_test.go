package linkstate

import (
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// TestAvailBothInto proves the caller-owned scratch survives later
// queries — the footgun AvailBoth's shared scratch has.
func TestAvailBothInto(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	s := New(tree)
	if err := s.Allocate(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	mine := bitvec.New(tree.Parents())
	s.AvailBothInto(mine, 0, 1, 1)
	want := mine.Clone()
	// A later AvailBoth call overwrites the shared scratch but must not
	// disturb the caller-owned vector.
	s.AvailBoth(0, 0, 0)
	if !mine.Equal(want) {
		t.Fatalf("AvailBothInto result changed by later AvailBoth: got %s want %s", mine, want)
	}
	if mine.Get(2) {
		t.Fatal("allocated port 2 still marked available")
	}
	shared := s.AvailBoth(0, 1, 1)
	if !shared.Equal(mine) {
		t.Fatalf("AvailBoth (%s) and AvailBothInto (%s) disagree", shared, mine)
	}
}

// TestTryAllocateExclusive has 8 workers race to claim every up channel of
// one level; each channel must be claimed exactly once and the final
// occupancy must account for every win. Run with -race.
func TestTryAllocateExclusive(t *testing.T) {
	const workers = 8
	tree := topology.MustNew(3, 4, 4)
	s := New(tree)
	rows := tree.SwitchesAt(0)
	w := tree.Parents()
	winCounts := make([]int, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			scratch := bitvec.New(w)
			for idx := 0; idx < rows; idx++ {
				s.AvailBothAtomicInto(scratch, 0, idx, idx)
				for p := 0; p < w; p++ {
					if s.TryAllocate(Up, 0, idx, p) {
						winCounts[wk]++
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	total := 0
	for _, c := range winCounts {
		total += c
	}
	if want := rows * w; total != want {
		t.Fatalf("workers claimed %d channels, want exactly %d", total, want)
	}
	up, _ := s.LevelOccupancy(0)
	if up != rows*w {
		t.Fatalf("level 0 up occupancy %d, want %d", up, rows*w)
	}
}

// TestAtomicReleaseRoundTrip claims and returns channels concurrently and
// verifies the state ends fully available.
func TestAtomicReleaseRoundTrip(t *testing.T) {
	const workers = 8
	tree := topology.MustNew(2, 4, 4)
	s := New(tree)
	rows := tree.SwitchesAt(0)
	w := tree.Parents()
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for idx := 0; idx < rows; idx++ {
					for p := 0; p < w; p++ {
						if s.TryAllocate(Down, 0, idx, p) {
							s.AtomicRelease(Down, 0, idx, p)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if occ := s.OccupiedCount(); occ != 0 {
		t.Fatalf("%d channels still occupied after all round trips", occ)
	}
}

func TestAtomicReleasePanicsOnFree(t *testing.T) {
	tree := topology.MustNew(2, 2, 2)
	s := New(tree)
	defer func() {
		if recover() == nil {
			t.Fatal("AtomicRelease of a free channel did not panic")
		}
	}()
	s.AtomicRelease(Up, 0, 0, 0)
}
