package linkstate

import (
	"testing"

	"repro/internal/bitvec"
)

// Fault-mask invariants: FailLink/RepairLink lifecycle, the
// never-resurrect rule for Release, allocated-vs-dead accounting, and
// masked availability on both the plain and atomic query paths.
// scripts/ci.sh runs these under the race detector.

func TestFailLinkLifecycle(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if !s.FailLink(Up, 1, 2, 3) {
		t.Fatal("failing a free channel reported a forfeited allocation")
	}
	if s.Available(Up, 1, 2, 3) || !s.Failed(Up, 1, 2, 3) {
		t.Fatal("failed channel still in service")
	}
	if s.FailedCount() != 1 || s.OccupiedCount() != 0 {
		t.Fatalf("counts after fail: failed=%d occupied=%d", s.FailedCount(), s.OccupiedCount())
	}
	// Double-fail is a no-op.
	if !s.FailLink(Up, 1, 2, 3) || s.FailedCount() != 1 {
		t.Fatal("double FailLink mutated the mask")
	}
	if !s.RepairLink(Up, 1, 2, 3) {
		t.Fatal("repair of a failed channel reported no-op")
	}
	if !s.Available(Up, 1, 2, 3) || s.Failed(Up, 1, 2, 3) || s.FailedCount() != 0 {
		t.Fatal("repaired channel not back in service")
	}
	// The repaired channel allocates and releases normally again.
	if err := s.Allocate(Up, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(Up, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRepairLinkOfHealthyChannelIsNoOp(t *testing.T) {
	s := newState(t, 2, 4, 4)
	if s.RepairLink(Down, 0, 1, 2) {
		t.Fatal("repair of a healthy channel reported work")
	}
	if !s.Available(Down, 0, 1, 2) || s.OccupiedCount() != 0 {
		t.Fatal("no-op repair mutated state")
	}
}

// TestFailLinkForfeitsAllocation fails a channel that a connection
// holds: the channel moves from the allocated to the dead category, the
// holder's eventual Release is refused without resurrecting the bit,
// and RepairLink returns the channel to service free.
func TestFailLinkForfeitsAllocation(t *testing.T) {
	s := newState(t, 2, 4, 4)
	if err := s.Allocate(Down, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if s.FailLink(Down, 0, 0, 1) {
		t.Fatal("failing an allocated channel reported it free")
	}
	if s.OccupiedCount() != 0 || s.FailedCount() != 1 {
		t.Fatalf("allocated-at-fail channel not reclassified: occupied=%d failed=%d",
			s.OccupiedCount(), s.FailedCount())
	}
	// The revoked holder's teardown must not bring the channel back.
	if err := s.Release(Down, 0, 0, 1); err == nil {
		t.Fatal("release resurrected a failed channel")
	}
	if s.Available(Down, 0, 0, 1) {
		t.Fatal("failed channel available after release attempt")
	}
	s.RepairLink(Down, 0, 0, 1)
	if !s.Available(Down, 0, 0, 1) {
		t.Fatal("repair did not return the forfeited channel to service")
	}
}

// TestFaultMaskMasksAvailability checks both query paths — the plain
// and the atomic AvailBothInto — exclude failed channels.
func TestFaultMaskMasksAvailability(t *testing.T) {
	s := newState(t, 2, 4, 4)
	s.FailLink(Up, 0, 0, 1)
	s.FailLink(Down, 0, 3, 2)
	dst := bitvec.New(s.Tree().Parents())
	s.AvailBothInto(dst, 0, 0, 3)
	if dst.Get(1) || dst.Get(2) {
		t.Fatalf("AvailBothInto saw failed channels: %s", dst)
	}
	if dst.Count() != 2 {
		t.Fatalf("AvailBothInto lost healthy channels: %s", dst)
	}
	s.AvailBothAtomicInto(dst, 0, 0, 3)
	if dst.Get(1) || dst.Get(2) || dst.Count() != 2 {
		t.Fatalf("AvailBothAtomicInto mask mismatch: %s", dst)
	}
}

// TestFailedStatesEqual pins the chaos-harness accounting identity:
// allocate/release cycles on a degraded state end bit-identical to a
// fresh state with only the faults applied.
func TestFailedStatesEqual(t *testing.T) {
	s := newState(t, 3, 4, 4)
	tree := s.Tree()
	s.FailLink(Up, 0, 0, 0)
	s.FailLink(Down, 0, 0, 0)

	src, dst := 0, tree.Nodes()-1
	ports := make([]int, tree.AncestorLevel(src, dst))
	for i := range ports {
		ports[i] = 1 // route around the failed port-0 channels
	}
	if err := s.AllocatePath(src, dst, ports); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleasePath(src, dst, ports); err != nil {
		t.Fatal(err)
	}

	want := New(tree)
	want.FailLink(Up, 0, 0, 0)
	want.FailLink(Down, 0, 0, 0)
	if !s.Equal(want) {
		t.Fatal("drained degraded state differs from fresh-plus-faults")
	}
}

// BenchmarkAvailBothIntoFaulted measures the hot-path availability AND
// on a state with an active fault mask; compare with
// BenchmarkAvailBothIntoHealthy — the mask is folded into the
// allocation bits at FailLink time, so both must cost the same (and
// allocate nothing). Recorded in BENCH_faults.json.
func BenchmarkAvailBothIntoFaulted(b *testing.B) {
	s := newState(b, 2, 64, 64)
	for p := 0; p < 64; p += 7 {
		s.FailLink(Up, 0, p%64, p)
		s.FailLink(Down, 0, (p+13)%64, p)
	}
	dst := bitvec.New(s.Tree().Parents())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AvailBothInto(dst, 0, i%64, (i+7)%64)
	}
}

func BenchmarkAvailBothIntoHealthy(b *testing.B) {
	s := newState(b, 2, 64, 64)
	dst := bitvec.New(s.Tree().Parents())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AvailBothInto(dst, 0, i%64, (i+7)%64)
	}
}
