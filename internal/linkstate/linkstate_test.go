package linkstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func newState(t testing.TB, l, m, w int) *State {
	t.Helper()
	return New(topology.MustNew(l, m, w))
}

func TestFreshStateAllAvailable(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if s.OccupiedCount() != 0 {
		t.Fatalf("fresh occupied = %d", s.OccupiedCount())
	}
	if s.ChannelCount() != 2*s.Tree().TotalLinks() {
		t.Fatalf("ChannelCount = %d", s.ChannelCount())
	}
	if s.Utilization() != 0 {
		t.Fatalf("Utilization = %v", s.Utilization())
	}
	for h := 0; h < s.Tree().LinkLevels(); h++ {
		for idx := 0; idx < s.Tree().SwitchesAt(h); idx++ {
			if s.ULink(h, idx).Count() != 4 || s.DLink(h, idx).Count() != 4 {
				t.Fatalf("level %d switch %d not fully available", h, idx)
			}
		}
	}
}

func TestAllocateRelease(t *testing.T) {
	s := newState(t, 2, 4, 4)
	if err := s.Allocate(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if s.Available(Up, 0, 1, 2) {
		t.Fatal("channel still available after Allocate")
	}
	if err := s.Allocate(Up, 0, 1, 2); err == nil {
		t.Fatal("double Allocate succeeded")
	}
	if s.OccupiedCount() != 1 {
		t.Fatalf("occupied = %d", s.OccupiedCount())
	}
	if err := s.Release(Up, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(Up, 0, 1, 2); err == nil {
		t.Fatal("double Release succeeded")
	}
	if s.OccupiedCount() != 0 {
		t.Fatal("state not clean after release")
	}
}

func TestUpAndDownIndependent(t *testing.T) {
	s := newState(t, 2, 4, 4)
	if err := s.Allocate(Up, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !s.Available(Down, 0, 0, 0) {
		t.Fatal("down channel affected by up allocation")
	}
	up, down := s.LevelOccupancy(0)
	if up != 1 || down != 0 {
		t.Fatalf("LevelOccupancy = %d,%d", up, down)
	}
}

func TestAvailBoth(t *testing.T) {
	s := newState(t, 2, 4, 4)
	// Occupy up port 0 at switch 1 and down port 2 at switch 3.
	if err := s.Allocate(Up, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Allocate(Down, 0, 3, 2); err != nil {
		t.Fatal(err)
	}
	avail := s.AvailBoth(0, 1, 3)
	if avail.Get(0) || avail.Get(2) {
		t.Fatalf("AvailBoth should mask both occupied ports: %s", avail)
	}
	if !avail.Get(1) || !avail.Get(3) {
		t.Fatalf("AvailBoth cleared free ports: %s", avail)
	}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Fatal("Direction strings wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction string wrong")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := newState(t, 3, 4, 4)
	ref := newState(t, 3, 4, 4)
	snap := s.Snapshot()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		h := rng.Intn(2)
		idx := rng.Intn(16)
		p := rng.Intn(4)
		d := Direction(rng.Intn(2))
		if s.Available(d, h, idx, p) {
			if err := s.Allocate(d, h, idx, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Equal(ref) {
		t.Fatal("mutations had no effect")
	}
	s.Restore(snap)
	if !s.Equal(ref) {
		t.Fatal("Restore did not recover the fresh state")
	}
}

func TestReset(t *testing.T) {
	s := newState(t, 2, 4, 4)
	if err := s.Allocate(Down, 0, 2, 3); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.OccupiedCount() != 0 {
		t.Fatal("Reset left occupied channels")
	}
}

func TestAllocatePathAndRelease(t *testing.T) {
	s := newState(t, 3, 4, 4)
	src, dst := 0, 24 // ancestor at level 2
	ports := []int{1, 2}
	if err := s.AllocatePath(src, dst, ports); err != nil {
		t.Fatal(err)
	}
	// 2 levels × 2 channels.
	if got := s.OccupiedCount(); got != 4 {
		t.Fatalf("occupied = %d want 4", got)
	}
	// The up channel at the source switch and the down channel at the
	// destination switch use port 1.
	sigma, _ := s.Tree().NodeSwitch(src)
	delta, _ := s.Tree().NodeSwitch(dst)
	if s.Available(Up, 0, sigma, 1) {
		t.Fatal("source up channel not claimed")
	}
	if s.Available(Down, 0, delta, 1) {
		t.Fatal("destination down channel not claimed")
	}
	if err := s.ReleasePath(src, dst, ports); err != nil {
		t.Fatal(err)
	}
	if s.OccupiedCount() != 0 {
		t.Fatal("release left channels occupied")
	}
}

func TestAllocatePathConflictRollsBack(t *testing.T) {
	s := newState(t, 3, 4, 4)
	// Pre-occupy the level-1 down channel the path will need.
	ports := []int{1, 2}
	delta1 := s.Tree().UpParent(0, 6, 1) // mirror switch at level 1 for dst 24
	if err := s.Allocate(Down, 1, delta1, 2); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot()
	if err := s.AllocatePath(0, 24, ports); err == nil {
		t.Fatal("AllocatePath should have failed")
	}
	after := s.Snapshot()
	sRef := newState(t, 3, 4, 4)
	sRef.Restore(before)
	sCmp := newState(t, 3, 4, 4)
	sCmp.Restore(after)
	if !sRef.Equal(sCmp) {
		t.Fatal("failed AllocatePath left residue")
	}
}

func TestAllocatePathWrongPortCount(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if err := s.AllocatePath(0, 24, []int{1}); err == nil {
		t.Fatal("wrong port count accepted")
	}
	if err := s.ReleasePath(0, 24, []int{1}); err == nil {
		t.Fatal("wrong port count accepted by ReleasePath")
	}
}

func TestReleasePathReportsUnoccupied(t *testing.T) {
	s := newState(t, 3, 4, 4)
	if err := s.ReleasePath(0, 24, []int{0, 0}); err == nil {
		t.Fatal("releasing unallocated path should error")
	}
}

func TestRestoreShapeMismatchPanics(t *testing.T) {
	s := newState(t, 3, 4, 4)
	other := newState(t, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with mismatched snapshot did not panic")
		}
	}()
	s.Restore(other.Snapshot())
}

// Property: a random sequence of successful AllocatePath calls followed by
// releasing them all in any order returns the state to fresh.
func TestQuickAllocateReleaseInverse(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(tree)
		type conn struct {
			src, dst int
			ports    []int
		}
		var live []conn
		for i := 0; i < 30; i++ {
			src, dst := rng.Intn(64), rng.Intn(64)
			h := tree.AncestorLevel(src, dst)
			ports := make([]int, h)
			for j := range ports {
				ports[j] = rng.Intn(4)
			}
			if err := s.AllocatePath(src, dst, ports); err == nil {
				live = append(live, conn{src, dst, ports})
			}
		}
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		for _, c := range live {
			if err := s.ReleasePath(c.src, c.dst, c.ports); err != nil {
				return false
			}
		}
		return s.OccupiedCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: OccupiedCount is exactly 2*H per successfully allocated path.
func TestQuickOccupancyAccounting(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(tree)
		want := 0
		for i := 0; i < 20; i++ {
			src, dst := rng.Intn(64), rng.Intn(64)
			h := tree.AncestorLevel(src, dst)
			ports := make([]int, h)
			for j := range ports {
				ports[j] = rng.Intn(4)
			}
			if err := s.AllocatePath(src, dst, ports); err == nil {
				want += 2 * h
			}
		}
		return s.OccupiedCount() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAvailBoth(b *testing.B) {
	s := newState(b, 2, 64, 64)
	for i := 0; i < b.N; i++ {
		s.AvailBoth(0, i%64, (i+7)%64)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := newState(b, 3, 16, 16)
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Restore(snap)
	}
}

func TestFailLinkSurvivesReset(t *testing.T) {
	s := newState(t, 3, 4, 4)
	s.FailLink(Up, 0, 2, 1)
	s.FailLink(Down, 1, 5, 3)
	if s.Available(Up, 0, 2, 1) || s.Available(Down, 1, 5, 3) {
		t.Fatal("failed channels still available")
	}
	if s.FailedCount() != 2 {
		t.Fatalf("FailedCount = %d", s.FailedCount())
	}
	s.Reset()
	if s.Available(Up, 0, 2, 1) || s.Available(Down, 1, 5, 3) {
		t.Fatal("Reset revived failed channels")
	}
	// Healthy channels came back.
	if !s.Available(Up, 0, 2, 0) {
		t.Fatal("Reset lost healthy channels")
	}
	// Double-failing is a no-op.
	s.FailLink(Up, 0, 2, 1)
	if s.FailedCount() != 2 {
		t.Fatal("double FailLink changed the count")
	}
}

func TestFailedChannelCannotBeAllocatedOrReleased(t *testing.T) {
	s := newState(t, 2, 4, 4)
	s.FailLink(Up, 0, 0, 0)
	if err := s.Allocate(Up, 0, 0, 0); err == nil {
		t.Fatal("allocated a failed channel")
	}
	if err := s.Release(Up, 0, 0, 0); err == nil {
		t.Fatal("released (revived) a failed channel")
	}
	if s.Available(Up, 0, 0, 0) {
		t.Fatal("failed channel available after release attempt")
	}
}

func TestFailedCountFreshState(t *testing.T) {
	if newState(t, 2, 4, 4).FailedCount() != 0 {
		t.Fatal("fresh state reports failures")
	}
}

func TestSchedulingAvoidsFailedLinks(t *testing.T) {
	// A single request with every up channel of its source switch failed
	// except port 2 must route via port 2.
	s := newState(t, 2, 4, 4)
	for p := 0; p < 4; p++ {
		if p != 2 {
			s.FailLink(Up, 0, 0, p)
		}
	}
	avail := s.ULink(0, 0)
	if avail.Count() != 1 || !avail.Get(2) {
		t.Fatalf("ULink after failures = %s", avail)
	}
}
