// Package linkstate tracks the availability of every upward and downward
// link channel in a fat tree, exactly as the paper's scheduler hardware
// does with its Ulink and Dlink memories.
//
// For each link level h (joining switch levels h and h+1) the state holds
// two bit matrices indexed by (level-h switch, upper port): Ulink marks
// the upward channel available, Dlink the downward channel of the same
// physical link. Bit set means available (the paper's convention: "If
// Ulink(h,τ)[i] equals one, [the] upward link connected via port i of
// switch (h,τ) is available; otherwise, it is occupied").
//
// # Invariants
//
// Callers rely on these properties, covered by misuse_test.go:
//
//   - Allocate of an occupied channel and Release of a free channel fail
//     without mutating anything — double allocation is always caught.
//   - AllocatePath is atomic: on any conflict it releases the channels
//     it claimed and returns with the state exactly as before the call.
//   - Distinct States are fully independent (the scratch AND buffer is
//     per-State), so parallel workers may each own one.
//
// # Fault mask
//
// A State additionally carries a persistent fault mask, separate from
// the allocation bits: FailLink takes a channel out of service and
// RepairLink returns it. The mask is ANDed into availability eagerly —
// failing a channel clears its Ulink/Dlink bit immediately — so every
// availability query (AvailBothInto, the atomic variants, raw
// ULink/DLink rows, Available) sees failed channels as unavailable at
// zero extra per-query cost, and every scheduler routes around faults
// unchanged. The mask obeys its own invariants:
//
//   - Release of a failed channel is refused: its availability bit is
//     never resurrected by teardown, so a fault survives the departure
//     of whatever connection was crossing the link when it died.
//   - Reset re-opens every healthy channel but keeps failed channels
//     out of service.
//   - FailLink forfeits any live allocation on the channel: callers
//     that track connections (internal/fabric) must revoke holders of a
//     failed channel; RepairLink returns the channel to service free.
//   - OccupiedCount and Utilization count allocated channels only —
//     "dead" (failed) is a distinct category reported by FailedCount.
//
// A State is NOT safe for concurrent use of its plain methods.
// Concurrent callers must either serialize externally — internal/fabric
// runs every scheduling epoch and every release under one manager lock —
// or restrict themselves to the atomic subset (TryAllocate,
// AtomicRelease, AvailBothAtomicInto), which lock-free workers in
// internal/parsched may race freely against each other. Mixing the two
// families concurrently is a data race.
package linkstate

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/topology"
)

// Direction selects one of the two channels of a physical link.
type Direction int

// The two channel directions.
const (
	Up Direction = iota
	Down
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// State is the complete link-availability state of one fat tree. It is not
// safe for concurrent mutation (or mutation concurrent with reads): batch
// schedulers own a State outright, and the serving layer (internal/fabric)
// guards its live State with the epoch lock.
type State struct {
	tree    *topology.Tree
	ulink   []*bitvec.Matrix // per link level: rows = switches at level h
	dlink   []*bitvec.Matrix
	scratch bitvec.Vector // reused AND buffer, width w
	// failedU/failedD are the fault mask: bit set means the channel is
	// out of service. Reset keeps masked channels unavailable, Release
	// refuses to resurrect them, RepairLink clears them. Nil until the
	// first FailLink call, so fault-free states pay nothing.
	failedU []*bitvec.Matrix
	failedD []*bitvec.Matrix
	// uw/dw alias the matrices' backing words when each row is a single
	// machine word (w <= 64): uw[h][idx] IS Ulink(h, idx), so the word
	// fast path (AvailBothWord, AllocateBoth) and the Vector API mutate
	// the same storage and can never diverge. Nil when rows span words.
	uw, dw [][]uint64

	// Load counters, enabled by TrackLoad: loadU/loadD count cumulative
	// allocation events per channel (indexed [level][switch*w+port]) and
	// occ is a live aggregate occupancy gauge (allocate +1, release -1)
	// — the O(1) signal least-loaded plane selection reads instead of a
	// popcount scan. All accesses are atomic so the lock-free scheduling
	// paths (TryAllocate/AtomicRelease) may race freely; when tracking is
	// off (the default) every hot path pays one predictable branch.
	trackLoad    bool
	loadU, loadD [][]uint64
	occ          atomic.Int64
}

// New returns a State for the tree with every link available.
func New(tree *topology.Tree) *State {
	s := &State{
		tree:    tree,
		ulink:   make([]*bitvec.Matrix, tree.LinkLevels()),
		dlink:   make([]*bitvec.Matrix, tree.LinkLevels()),
		scratch: bitvec.New(tree.Parents()),
	}
	for h := 0; h < tree.LinkLevels(); h++ {
		rows := tree.SwitchesAt(h)
		s.ulink[h] = bitvec.NewMatrix(rows, tree.Parents())
		s.dlink[h] = bitvec.NewMatrix(rows, tree.Parents())
	}
	if tree.Parents() <= 64 && tree.LinkLevels() > 0 {
		s.uw = make([][]uint64, tree.LinkLevels())
		s.dw = make([][]uint64, tree.LinkLevels())
		for h := range s.ulink {
			s.uw[h] = s.ulink[h].Words()
			s.dw[h] = s.dlink[h].Words()
		}
	}
	s.Reset()
	return s
}

// WordRows reports whether every availability row fits a single machine
// word (w <= 64), enabling the word fast path below.
func (s *State) WordRows() bool { return s.uw != nil }

// AvailBothWord is the word-form of AvailBothInto for WordRows states:
// it returns Ulink(h,src) AND Dlink(h,mir) as one uint64. Bit order is
// identical to the Vector form, so FirstFit (lowest set bit) picks the
// same port either way — the golden tests pin the two paths
// bit-identical. The fault mask is pre-folded into the availability
// bits exactly as for AvailBothInto.
func (s *State) AvailBothWord(h, src, mir int) uint64 {
	return s.uw[h][src] & s.dw[h][mir]
}

// AllocateBoth claims the level-h upward channel at the source-side
// switch sigma and the downward channel of the same port at the mirror
// switch delta — the per-level pair every grant allocates — in one step.
// The caller must have verified the port free on both sides (bit set in
// AvailBothWord); a non-free channel here is an invariant violation and
// panics rather than corrupting occupancy.
func (s *State) AllocateBoth(h, sigma, delta, port int) {
	bit := uint64(1) << uint(port)
	u := &s.uw[h][sigma]
	d := &s.dw[h][delta]
	if *u&bit == 0 || *d&bit == 0 {
		allocateBothPanic(h, sigma, delta, port)
	}
	*u &^= bit
	*d &^= bit
	if s.trackLoad {
		s.noteAlloc(Up, h, sigma, port)
		s.noteAlloc(Down, h, delta, port)
	}
}

// allocateBothPanic is outlined so AllocateBoth stays inlinable.
func allocateBothPanic(h, sigma, delta, port int) {
	panic(fmt.Sprintf("linkstate: AllocateBoth of non-free port %d at level %d (σ=%d, δ=%d)", port, h, sigma, delta))
}

// Tree returns the topology this state belongs to.
func (s *State) Tree() *topology.Tree { return s.tree }

// TrackLoad enables the per-link load counters and the live occupancy
// gauge. Enable it before the first allocation (internal/fabric enables
// it at manager construction); enabling is idempotent. Tracking costs
// one branch on every allocate/release when enabled, nothing when off —
// TestScheduleIntoZeroAllocs pins that the scheduling hot path stays at
// zero allocations either way.
func (s *State) TrackLoad() {
	if s.trackLoad {
		return
	}
	s.loadU = make([][]uint64, len(s.ulink))
	s.loadD = make([][]uint64, len(s.dlink))
	for h := range s.ulink {
		s.loadU[h] = make([]uint64, s.ulink[h].Rows()*s.ulink[h].Width())
		s.loadD[h] = make([]uint64, s.dlink[h].Rows()*s.dlink[h].Width())
	}
	s.occ.Store(int64(s.OccupiedCount()))
	s.trackLoad = true
}

// LoadTracking reports whether TrackLoad has been enabled.
func (s *State) LoadTracking() bool { return s.trackLoad }

// noteAlloc records one allocation event on a tracked state: the
// channel's cumulative counter and the live occupancy gauge. Outlined
// from the hot paths so their inlinability is preserved; callers guard
// with s.trackLoad.
func (s *State) noteAlloc(d Direction, h, idx, port int) {
	load := s.loadU
	if d == Down {
		load = s.loadD
	}
	atomic.AddUint64(&load[h][idx*s.tree.Parents()+port], 1)
	s.occ.Add(1)
}

// LiveOccupancy returns the current number of allocated channels on a
// tracked state, maintained as an O(1) atomic gauge (allocate +1,
// release -1, forfeited allocations of failed channels excluded). It is
// safe to read lock-free from any goroutine and always equals
// OccupiedCount once mutations quiesce. Zero when tracking is off.
func (s *State) LiveOccupancy() int64 { return s.occ.Load() }

// ChannelLoad returns the cumulative allocation count of one channel
// since TrackLoad was enabled — allocation events, not live occupancy:
// an allocation later released (or rolled back) still counts. Zero when
// tracking is off.
func (s *State) ChannelLoad(d Direction, h, idx, port int) uint64 {
	if !s.trackLoad {
		return 0
	}
	load := s.loadU
	if d == Down {
		load = s.loadD
	}
	return atomic.LoadUint64(&load[h][idx*s.tree.Parents()+port])
}

// TotalAllocs returns the cumulative allocation events across every
// channel since TrackLoad was enabled (zero when tracking is off).
func (s *State) TotalAllocs() uint64 {
	if !s.trackLoad {
		return 0
	}
	var total uint64
	for h := range s.loadU {
		for i := range s.loadU[h] {
			total += atomic.LoadUint64(&s.loadU[h][i])
		}
		for i := range s.loadD[h] {
			total += atomic.LoadUint64(&s.loadD[h][i])
		}
	}
	return total
}

// LoadSnapshot returns a copy of the per-channel cumulative allocation
// counters, one slice per link level indexed switch*w+port, split by
// direction. Nil when tracking is off.
func (s *State) LoadSnapshot() (up, down [][]uint64) {
	if !s.trackLoad {
		return nil, nil
	}
	up = make([][]uint64, len(s.loadU))
	down = make([][]uint64, len(s.loadD))
	for h := range s.loadU {
		up[h] = make([]uint64, len(s.loadU[h]))
		for i := range s.loadU[h] {
			up[h][i] = atomic.LoadUint64(&s.loadU[h][i])
		}
		down[h] = make([]uint64, len(s.loadD[h]))
		for i := range s.loadD[h] {
			down[h][i] = atomic.LoadUint64(&s.loadD[h][i])
		}
	}
	return up, down
}

// Reset marks every link channel available, except channels failed via
// FailLink, which stay unavailable.
func (s *State) Reset() {
	for h := range s.ulink {
		s.ulink[h].SetAll()
		s.dlink[h].SetAll()
		if s.failedU != nil {
			for r := 0; r < s.ulink[h].Rows(); r++ {
				s.ulink[h].Row(r).AndNot(s.ulink[h].Row(r), s.failedU[h].Row(r))
				s.dlink[h].Row(r).AndNot(s.dlink[h].Row(r), s.failedD[h].Row(r))
			}
		}
	}
	if s.trackLoad {
		s.occ.Store(0) // everything healthy is free again; failed channels are dead, not occupied
	}
}

// FailLink removes a channel from service: it becomes unavailable now,
// stays unavailable across Reset, and Release refuses to resurrect it.
// It reports whether the channel was free when it failed; false means a
// live allocation was forfeited, and callers that track connections
// (internal/fabric) must revoke the holder — its eventual path release
// skips the dead channel. Failing an already-failed channel is a no-op
// (reported as true).
func (s *State) FailLink(d Direction, h, idx, port int) bool {
	if s.failedU == nil {
		s.failedU = make([]*bitvec.Matrix, len(s.ulink))
		s.failedD = make([]*bitvec.Matrix, len(s.dlink))
		for lvl := range s.ulink {
			s.failedU[lvl] = bitvec.NewMatrix(s.ulink[lvl].Rows(), s.ulink[lvl].Width())
			s.failedD[lvl] = bitvec.NewMatrix(s.dlink[lvl].Rows(), s.dlink[lvl].Width())
		}
	}
	mask, avail := s.failedU[h].Row(idx), s.ulink[h].Row(idx)
	if d == Down {
		mask, avail = s.failedD[h].Row(idx), s.dlink[h].Row(idx)
	}
	if mask.Get(port) {
		return true
	}
	mask.Set(port)
	wasFree := avail.Get(port)
	avail.Clear(port)
	if s.trackLoad && !wasFree {
		// The live allocation is forfeited: the channel is dead, not
		// occupied, so it leaves the occupancy gauge with the fault.
		s.occ.Add(-1)
	}
	return wasFree
}

// RepairLink returns a failed channel to service, free. It reports
// whether the channel was actually failed (repairing a healthy channel
// is a no-op). Any connection that crossed the link when it failed must
// have been revoked first — the forfeited allocation is not restored.
func (s *State) RepairLink(d Direction, h, idx, port int) bool {
	if !s.Failed(d, h, idx, port) {
		return false
	}
	if d == Up {
		s.failedU[h].Row(idx).Clear(port)
		s.ulink[h].Row(idx).Set(port)
	} else {
		s.failedD[h].Row(idx).Clear(port)
		s.dlink[h].Row(idx).Set(port)
	}
	return true
}

// Failed reports whether the channel is out of service.
func (s *State) Failed(d Direction, h, idx, port int) bool {
	if s.failedU == nil {
		return false
	}
	if d == Up {
		return s.failedU[h].Row(idx).Get(port)
	}
	return s.failedD[h].Row(idx).Get(port)
}

// FailedCount returns the number of channels removed from service.
func (s *State) FailedCount() int {
	if s.failedU == nil {
		return 0
	}
	total := 0
	for h := range s.failedU {
		total += s.failedU[h].Count() + s.failedD[h].Count()
	}
	return total
}

// ULink returns the upward availability vector of the level-h switch idx.
// The returned vector aliases internal storage: treat it as read-only and
// use Allocate/Release to mutate.
func (s *State) ULink(h, idx int) bitvec.Vector { return s.ulink[h].Row(idx) }

// DLink returns the downward availability vector of the level-h switch idx
// (same aliasing caveat as ULink).
func (s *State) DLink(h, idx int) bitvec.Vector { return s.dlink[h].Row(idx) }

// AvailBothInto writes Ulink(h,src) AND Dlink(h,mir) — the paper's
// level-h available-port vector for a request whose source-side switch is
// src and destination-side mirror switch is mir — into dst, which the
// caller owns and which must have width Tree().Parents(). Use this (not
// AvailBoth) whenever the result must survive a later availability query,
// and for per-worker scratch in parallel schedulers.
//
// The fault mask is already ANDed in: FailLink clears a failed channel's
// availability bit eagerly, so the two-operand AND here excludes dead
// channels without a third operand on the hot path (the atomic variant
// inherits the same property). BenchmarkAvailBothIntoFaulted pins that a
// masked state costs the same as a healthy one.
func (s *State) AvailBothInto(dst bitvec.Vector, h, src, mir int) {
	dst.And(s.ulink[h].Row(src), s.dlink[h].Row(mir))
}

// AvailBoth is a convenience wrapper around AvailBothInto that uses the
// State's single internal scratch vector. The returned vector is
// invalidated by the next AvailBoth call on this State — callers that
// retain the result across queries must use AvailBothInto with their own
// vector instead.
func (s *State) AvailBoth(h, src, dst int) bitvec.Vector {
	s.AvailBothInto(s.scratch, h, src, dst)
	return s.scratch
}

// AvailBothAtomicInto is AvailBothInto with atomic word loads of the two
// operand rows, for lock-free workers racing TryAllocate/AtomicRelease
// calls. dst is caller-owned scratch; the availability view it receives
// may be stale by the time the worker acts on it, which is safe because
// TryAllocate re-checks under CAS.
func (s *State) AvailBothAtomicInto(dst bitvec.Vector, h, src, mir int) {
	dst.AndAtomic(s.ulink[h].Row(src), s.dlink[h].Row(mir))
}

// Available reports whether the given channel is free.
func (s *State) Available(d Direction, h, idx, port int) bool {
	return s.matrix(d)[h].Row(idx).Get(port)
}

func (s *State) matrix(d Direction) []*bitvec.Matrix {
	if d == Up {
		return s.ulink
	}
	return s.dlink
}

// Allocate marks the channel occupied. It returns an error if the channel
// is already occupied — schedulers rely on this to catch double
// allocation — or failed, with a diagnosis naming which.
func (s *State) Allocate(d Direction, h, idx, port int) error {
	row := s.matrix(d)[h].Row(idx)
	if !row.Get(port) {
		if s.Failed(d, h, idx, port) {
			return fmt.Errorf("linkstate: %s channel at level %d switch %d port %d is failed", d, h, idx, port)
		}
		return fmt.Errorf("linkstate: %s channel at level %d switch %d port %d already occupied", d, h, idx, port)
	}
	row.Clear(port)
	if s.trackLoad {
		s.noteAlloc(d, h, idx, port)
	}
	return nil
}

// TryAllocate atomically claims the channel with a CAS loop, returning
// whether this call claimed it. Unlike Allocate it is safe to race
// against other TryAllocate/AtomicRelease/AvailBothAtomicInto calls on
// the same State: of N concurrent claimants of one channel exactly one
// wins. It must not race plain Allocate/Release/AvailBoth calls.
func (s *State) TryAllocate(d Direction, h, idx, port int) bool {
	if !s.matrix(d)[h].Row(idx).TryClearAtomic(port) {
		return false
	}
	if s.trackLoad {
		s.noteAlloc(d, h, idx, port)
	}
	return true
}

// AtomicRelease atomically returns a channel claimed via TryAllocate. It
// panics if the channel is not occupied: lock-free schedulers only ever
// release channels they themselves claimed, so a free channel here is an
// invariant violation, not a runtime condition.
func (s *State) AtomicRelease(d Direction, h, idx, port int) {
	if !s.matrix(d)[h].Row(idx).TrySetAtomic(port) {
		panic(fmt.Sprintf("linkstate: atomic release of free %s channel at level %d switch %d port %d", d, h, idx, port))
	}
	if s.trackLoad {
		s.occ.Add(-1)
	}
}

// Release marks the channel available. It returns an error if the channel
// was not occupied or has been failed via FailLink — a fault is never
// resurrected by teardown; only RepairLink returns a channel to service.
func (s *State) Release(d Direction, h, idx, port int) error {
	if s.failedU != nil {
		failed := s.failedU
		if d == Down {
			failed = s.failedD
		}
		if failed[h].Row(idx).Get(port) {
			return fmt.Errorf("linkstate: %s channel at level %d switch %d port %d is failed", d, h, idx, port)
		}
	}
	row := s.matrix(d)[h].Row(idx)
	if row.Get(port) {
		return fmt.Errorf("linkstate: %s channel at level %d switch %d port %d not occupied", d, h, idx, port)
	}
	row.Set(port)
	if s.trackLoad {
		s.occ.Add(-1)
	}
	return nil
}

// OccupiedCount returns the number of allocated channels (both
// directions) across all levels. Failed channels are dead, not
// occupied: they are excluded here and reported by FailedCount, so the
// two categories never blur. (A channel that was allocated when it
// failed counts as dead from that moment — its allocation is forfeited.)
func (s *State) OccupiedCount() int {
	total := 0
	for h := range s.ulink {
		cap := s.ulink[h].Rows() * s.ulink[h].Width()
		total += cap - s.ulink[h].Count()
		total += cap - s.dlink[h].Count()
	}
	return total - s.FailedCount()
}

// ChannelCount returns the total number of channels (2 per physical link).
func (s *State) ChannelCount() int { return 2 * s.tree.TotalLinks() }

// Utilization returns occupied channels / total channels in [0, 1].
func (s *State) Utilization() float64 {
	if s.ChannelCount() == 0 {
		return 0
	}
	return float64(s.OccupiedCount()) / float64(s.ChannelCount())
}

// LevelOccupancy returns the occupied channel count at link level h, split
// by direction.
func (s *State) LevelOccupancy(h int) (up, down int) {
	cap := s.ulink[h].Rows() * s.ulink[h].Width()
	return cap - s.ulink[h].Count(), cap - s.dlink[h].Count()
}

// Snapshot captures the full state for later Restore. Snapshots are cheap
// (one []uint64 copy per matrix) and are how schedulers implement rollback.
type Snapshot struct {
	u, d [][]uint64
}

// Snapshot returns a copy of the current availability state.
func (s *State) Snapshot() Snapshot {
	snap := Snapshot{
		u: make([][]uint64, len(s.ulink)),
		d: make([][]uint64, len(s.dlink)),
	}
	for h := range s.ulink {
		snap.u[h] = s.ulink[h].Snapshot()
		snap.d[h] = s.dlink[h].Snapshot()
	}
	return snap
}

// Restore rewinds the state to a snapshot taken from the same State.
func (s *State) Restore(snap Snapshot) {
	if len(snap.u) != len(s.ulink) || len(snap.d) != len(s.dlink) {
		panic("linkstate: snapshot shape mismatch")
	}
	for h := range s.ulink {
		s.ulink[h].Restore(snap.u[h])
		s.dlink[h].Restore(snap.d[h])
	}
	if s.trackLoad {
		// The gauge must match the restored bits; the cumulative
		// counters deliberately keep the rolled-back allocation events.
		s.occ.Store(int64(s.OccupiedCount()))
	}
}

// Equal reports whether two states over the same tree have identical
// availability.
func (s *State) Equal(other *State) bool {
	if len(s.ulink) != len(other.ulink) {
		return false
	}
	for h := range s.ulink {
		if !s.ulink[h].Equal(other.ulink[h]) || !s.dlink[h].Equal(other.dlink[h]) {
			return false
		}
	}
	return true
}

// AllocatePath claims every channel of a fully routed connection: the
// upward channel at each climb hop and the downward channel at each mirror
// switch (Theorem 2: same port index at each level). src and dst are
// nodes; ports has one entry per level below the common ancestor. On any
// conflict it releases what it claimed and returns an error, leaving the
// state unchanged.
func (s *State) AllocatePath(src, dst int, ports []int) error {
	h := s.tree.AncestorLevel(src, dst)
	if len(ports) != h {
		return fmt.Errorf("linkstate: request (%d→%d) needs %d ports, got %d", src, dst, h, len(ports))
	}
	type claim struct {
		dir            Direction
		lvl, idx, port int
	}
	var claimed []claim
	undo := func() {
		for i := len(claimed) - 1; i >= 0; i-- {
			c := claimed[i]
			if err := s.Release(c.dir, c.lvl, c.idx, c.port); err != nil {
				panic(err) // release of our own claim cannot fail
			}
		}
	}
	var cur topology.RouteCursor
	cur.Start(s.tree, src, dst)
	var firstErr error
	cur.Walk(ports, func(lvl, sigma, delta, p int) {
		if firstErr != nil {
			return
		}
		if err := s.Allocate(Up, lvl, sigma, p); err != nil {
			firstErr = err
			return
		}
		claimed = append(claimed, claim{Up, lvl, sigma, p})
		if err := s.Allocate(Down, lvl, delta, p); err != nil {
			firstErr = err
			return
		}
		claimed = append(claimed, claim{Down, lvl, delta, p})
	})
	if firstErr != nil {
		undo()
		return firstErr
	}
	return nil
}

// ReleasePath releases every channel of a previously allocated connection.
// It returns an error (after releasing what it can) if any channel was not
// actually occupied.
func (s *State) ReleasePath(src, dst int, ports []int) error {
	h := s.tree.AncestorLevel(src, dst)
	if len(ports) != h {
		return fmt.Errorf("linkstate: request (%d→%d) needs %d ports, got %d", src, dst, h, len(ports))
	}
	var cur topology.RouteCursor
	cur.Start(s.tree, src, dst)
	var firstErr error
	cur.Walk(ports, func(lvl, sigma, delta, p int) {
		if err := s.Release(Up, lvl, sigma, p); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.Release(Down, lvl, delta, p); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}
