package fabric

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/topology"
)

// BenchmarkFabricRelease measures the steady-state circuit churn path a
// serving client pays: release one held connection, then re-admit the
// same endpoint pair through a single-request epoch. Release cost is the
// target — the connect half is the fixed epoch machinery both before and
// after the release pipeline changes.
func BenchmarkFabricRelease(b *testing.B) {
	shapes := []struct{ l, m, w int }{{3, 8, 8}, {4, 4, 4}}
	for _, sh := range shapes {
		b.Run(fmt.Sprintf("FT%d-%d-%d", sh.l, sh.m, sh.w), func(b *testing.B) {
			tree := topology.MustNew(sh.l, sh.m, sh.w)
			m, err := New(Config{Tree: tree, BatchSize: 1, MaxWait: 50 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			defer m.Close(ctx)

			// A sparse pool of held circuits between distinct hosts keeps
			// re-admission of a just-released pair effectively always routable.
			rng := rand.New(rand.NewSource(11))
			hosts := rng.Perm(tree.Nodes())
			const pool = 64
			hs := make([]*Handle, pool)
			pairs := make([][2]int, pool)
			for i := 0; i < pool; i++ {
				pairs[i] = [2]int{hosts[2*i], hosts[2*i+1]}
				h, err := m.Connect(ctx, pairs[i][0], pairs[i][1])
				if err != nil {
					b.Fatalf("warmup connect %d: %v", i, err)
				}
				hs[i] = h
			}

			misses := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % pool
				if hs[k] != nil {
					if err := m.Release(hs[k]); err != nil {
						b.Fatalf("release: %v", err)
					}
				}
				h, err := m.Connect(ctx, pairs[k][0], pairs[k][1])
				if err != nil {
					hs[k] = nil
					misses++
					continue
				}
				hs[k] = h
			}
			b.StopTimer()
			if misses > b.N/10 {
				b.Fatalf("too many admission misses: %d of %d", misses, b.N)
			}
		})
	}
}
