package fabric

import (
	"context"
	"errors"
	"testing"

	"repro/internal/topology"
)

// TestSurfaceAdapter exercises the plane-agnostic surface through the
// interface types only — the way federation consumes a plane.
func TestSurfaceAdapter(t *testing.T) {
	m, err := New(Config{Tree: topology.MustNew(3, 2, 2), BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var s Surface = m

	if s.Tree().Nodes() != 8 {
		t.Fatalf("Tree().Nodes() = %d, want 8", s.Tree().Nodes())
	}
	if got := s.Occupancy(); got != 0 {
		t.Fatalf("idle Occupancy = %d, want 0", got)
	}
	c, err := s.Admit(context.Background(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Src() != 0 || c.Dst() != 7 {
		t.Errorf("endpoints (%d, %d), want (0, 7)", c.Src(), c.Dst())
	}
	// 0 and 7 meet at the top of FT(3,2,2): 2 levels × up+down = 4 channels.
	if got := s.Occupancy(); got != 4 {
		t.Errorf("Occupancy = %d, want 4", got)
	}
	st := s.Stats()
	if st.Occupancy != 4 || st.ChannelAllocs != 4 {
		t.Errorf("Stats occupancy/allocs = %d/%d, want 4/4", st.Occupancy, st.ChannelAllocs)
	}
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	if st = s.Stats(); st.Occupancy != 0 {
		t.Errorf("Occupancy after release = %d, want 0", st.Occupancy)
	}
	// A denial must come back as a typed nil-free (nil, error) pair: a
	// Conn interface holding a nil *Handle would defeat == nil checks.
	if _, err := s.Admit(context.Background(), 0, 999); err == nil {
		t.Fatal("out-of-range admit succeeded")
	}
	c2, err := s.Admit(context.Background(), 0, 999)
	if c2 != nil {
		t.Fatalf("failed Admit returned non-nil Conn %v (err %v)", c2, err)
	}
}

// TestOnConnTerminalHook pins the hook contract: it fires exactly once
// per terminal repair verdict, with the dead Conn and its cause, and
// does not fire for owner-initiated releases.
func TestOnConnTerminalHook(t *testing.T) {
	type death struct {
		c     Conn
		cause error
	}
	deaths := make(chan death, 4)
	m, err := New(Config{
		Tree:           topology.MustNew(2, 2, 2),
		BatchSize:      1,
		RepairRetries:  1,
		OnConnTerminal: func(c Conn, cause error) { deaths <- death{c, cause} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Owner release: no hook.
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-deaths:
		t.Fatalf("hook fired for an owner release: %v", d.cause)
	default:
	}

	h2, err := m.Connect(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the whole level-0 up row out of switch 0: with RepairRetries=1
	// the revoked connection dies on its first re-admission attempt.
	if _, err := m.FailSwitch(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FailSwitch(1, 1); err != nil {
		t.Fatal(err)
	}
	d := <-deaths
	if d.c.Src() != h2.Src() || d.c.Dst() != h2.Dst() {
		t.Errorf("hook conn (%d→%d), want (%d→%d)", d.c.Src(), d.c.Dst(), h2.Src(), h2.Dst())
	}
	if !errors.Is(d.cause, ErrUnroutableDegraded) {
		t.Errorf("hook cause %v, want ErrUnroutableDegraded", d.cause)
	}
	if got := d.c.Err(); !errors.Is(got, ErrUnroutableDegraded) {
		t.Errorf("Conn.Err() = %v, want ErrUnroutableDegraded", got)
	}
}
