package fabric

// Delta-epoch (incremental) manager tests: config validation, the
// arrivals-only equivalence with batch mode, churn accounting, fault
// revocation through the staged-departure path, the epoch-histogram
// exclusion of empty flushes, and the release-ring/Close race.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/topology"
)

func TestIncrementalConfigValidation(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cases := []struct {
		name    string
		cfg     Config
		wantSub string // empty means the config must be accepted
	}{
		{"negative reuse-cost", Config{Tree: tree, Incremental: true, ReuseCost: -1}, "invalid ReuseCost"},
		{"reuse-cost without incremental", Config{Tree: tree, ReuseCost: 2}, "ReuseCost requires Incremental"},
		{"reuse-cost with spec", Config{Tree: tree, Incremental: true, ReuseCost: 2, SchedulerSpec: "level-wise"},
			"put reuse-cost in the SchedulerSpec"},
		{"incremental without capability", Config{Tree: tree, Incremental: true, SchedulerSpec: "optimal"},
			"delta-epoch capability"},
		{"incremental default engine", Config{Tree: tree, Incremental: true}, ""},
		{"incremental with reuse", Config{Tree: tree, Incremental: true, ReuseCost: 3}, ""},
		{"incremental via spec flag", Config{Tree: tree, SchedulerSpec: "levelwise,incremental,reuse-cost=2"}, ""},
		{"incremental spec plus config flag", Config{Tree: tree, Incremental: true, SchedulerSpec: "level-wise,rollback,incremental"}, ""},
	}
	for _, c := range cases {
		m, err := New(c.cfg)
		if c.wantSub != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
			}
			if m != nil {
				m.Close(context.Background())
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if s := m.Stats(); !s.Incremental {
			t.Errorf("%s: Stats.Incremental = false, want true", c.name)
		}
		m.Close(context.Background())
	}
	// The effective reuse-cost cap is echoed whichever way it was named.
	m, err := New(Config{Tree: tree, SchedulerSpec: "levelwise,incremental,reuse-cost=2"})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.ReuseCost != 2 {
		t.Fatalf("spec-named reuse-cost not echoed: %+v", s.ReuseCost)
	}
	m.Close(context.Background())
}

// TestIncrementalMatchesBatchArrivalsOnly is the fabric-level half of
// the arrivals-only bit-identity contract: with BatchSize 1 (one epoch
// per request, so epoch composition is deterministic), an incremental
// manager must grant exactly the routes a batch manager grants.
func TestIncrementalMatchesBatchArrivalsOnly(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	mk := func(incremental bool) *Manager {
		m, err := New(Config{Tree: tree, BatchSize: 1, Incremental: incremental})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	batch, inc := mk(false), mk(true)
	defer batch.Close(context.Background())
	defer inc.Close(context.Background())
	n := tree.Nodes()
	for i := 0; i < 24; i++ {
		src, dst := (i*7)%n, (i*13+5)%n
		hb, errB := batch.Connect(context.Background(), src, dst)
		hi, errI := inc.Connect(context.Background(), src, dst)
		if (errB == nil) != (errI == nil) {
			t.Fatalf("request %d (%d→%d): batch err %v, incremental err %v", i, src, dst, errB, errI)
		}
		if errB != nil {
			continue
		}
		pb, pi := hb.Ports(), hi.Ports()
		if len(pb) != len(pi) {
			t.Fatalf("request %d: route lengths differ: %v vs %v", i, pb, pi)
		}
		for j := range pb {
			if pb[j] != pi[j] {
				t.Fatalf("request %d: routes diverged: %v vs %v", i, pb, pi)
			}
		}
	}
	sb, si := batch.Stats(), inc.Stats()
	if sb.Granted != si.Granted || sb.Rejected != si.Rejected || sb.Occupancy != si.Occupancy {
		t.Fatalf("stats diverged: batch %+v vs incremental %+v", sb, si)
	}
	if sb.Incremental || !si.Incremental {
		t.Fatalf("Incremental flags wrong: batch %v, incremental %v", sb.Incremental, si.Incremental)
	}
}

// TestIncrementalChurnAccounting drives grant/release cycles and checks
// the route-churn bookkeeping: established and torn routes balance, the
// per-epoch churn distribution is populated, and a full drain returns
// the fabric to zero occupancy even though no batch rebuild ever ran.
func TestIncrementalChurnAccounting(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	n := tree.Nodes()
	var handles []*Handle
	for i := 0; i < 16; i++ {
		h, err := m.Connect(context.Background(), (i*11)%n, (i*17+9)%n)
		if err != nil {
			continue
		}
		handles = append(handles, h)
	}
	if len(handles) < 8 {
		t.Fatalf("only %d grants on an idle fabric", len(handles))
	}
	routed := 0
	for _, h := range handles {
		if len(h.Ports()) > 0 {
			routed++
		}
	}
	s := m.Stats()
	if s.EstablishedRoutes != uint64(routed) {
		t.Fatalf("EstablishedRoutes = %d, want %d", s.EstablishedRoutes, routed)
	}
	if s.TornRoutes != 0 {
		t.Fatalf("TornRoutes = %d before any release", s.TornRoutes)
	}
	if s.RouteChurn.N == 0 || s.RouteChurn.Max == 0 {
		t.Fatalf("RouteChurn not recorded: %+v", s.RouteChurn)
	}
	for _, h := range handles {
		if err := h.Release(); err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	s = m.Stats() // settles staged departures
	if s.TornRoutes != uint64(routed) {
		t.Fatalf("TornRoutes = %d after full drain, want %d", s.TornRoutes, routed)
	}
	if s.Occupancy != 0 || s.Active != 0 || s.Utilization != 0 {
		t.Fatalf("fabric not drained: %+v", s)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalRevokeFlowsThroughDeltaPath fails the link under a
// granted route on an incremental manager: the revocation must stage a
// departure (not rebuild state inline), the repair must land on a fresh
// route via a delta epoch, and the final drain must reach zero
// occupancy with the fault still masked.
func TestIncrementalRevokeFlowsThroughDeltaPath(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	cfg.Incremental = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := m.Connect(context.Background(), 1, tree.Nodes()-2)
	if err != nil {
		t.Fatal(err)
	}
	oldPorts := h.Ports()
	revoked, err := m.FailLink(0, 0, oldPorts[0], faults.Up)
	if err != nil {
		t.Fatal(err)
	}
	if revoked != 1 {
		t.Fatalf("FailLink revoked %d, want 1", revoked)
	}
	waitFor(t, func() bool { return m.Stats().Repaired == 1 })
	newPorts := h.Ports()
	if len(newPorts) != 1 || newPorts[0] == oldPorts[0] {
		t.Fatalf("repair kept the dead port: old %v new %v", oldPorts, newPorts)
	}
	// The bystander's route must have survived the whole revoke/repair
	// cycle untouched — held grants carry forward across delta epochs.
	if len(bystander.Ports()) != 1 {
		t.Fatalf("bystander route disturbed: %v", bystander.Ports())
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if err := bystander.Release(); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Occupancy != 0 || s.FaultyChannels != 1 {
		t.Fatalf("after drain with fault masked: %+v", s)
	}
	if s.TornRoutes < 2 { // revoked route + two releases, minus H==0 routes (none here)
		t.Fatalf("TornRoutes = %d, want >= 2", s.TornRoutes)
	}
}

// TestEpochHistogramExcludesEmptyFlushes pins the satellite fix: a
// flush whose tickets were all cancelled — and, in incremental mode, a
// departure-only flush — must not move Epochs, EpochSize, or
// EpochLatencyMS. Only real scheduling passes are epochs.
func TestEpochHistogramExcludesEmptyFlushes(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 4, MaxWait: 5 * time.Millisecond, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	// A pre-cancelled context enqueues the ticket and abandons it before
	// the MaxWait flush fires: the flush sees only a cancelled ticket.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Connect(cancelled, 0, 5); err != context.Canceled {
		t.Fatalf("pre-cancelled Connect: %v", err)
	}
	waitFor(t, func() bool { return m.Stats().QueueDepth == 0 })
	if s := m.Stats(); s.Epochs != 0 || s.EpochSize.N != 0 || s.EpochLatencyMS.N != 0 {
		t.Fatalf("cancelled-only flush recorded as an epoch: %+v", s)
	}

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Epochs != 1 || s.EpochSize.N != 1 {
		t.Fatalf("real epoch not recorded: %+v", s)
	}

	// Departure-only flush: the release parks in the ring, and the next
	// flush (driven by another abandoned ticket) applies it without any
	// live request. Histograms must not move.
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	cancelled2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := m.Connect(cancelled2, 1, 6); err != context.Canceled {
		t.Fatalf("pre-cancelled Connect: %v", err)
	}
	waitFor(t, func() bool {
		s := m.Stats()
		return s.QueueDepth == 0 && s.Occupancy == 0
	})
	if s := m.Stats(); s.Epochs != 1 || s.EpochSize.N != 1 || s.EpochLatencyMS.N != 1 {
		t.Fatalf("departure-only flush recorded as an epoch: %+v", s)
	}
}

// TestReleaseRingDrainRacesClose races fast-path releases against Close
// in both modes: every parked handle must be retired exactly once — no
// grant may be dropped between the ring and the final drain — leaving
// Released == grants and zero occupancy. The ring is kept tiny so some
// releases overflow to the synchronous path mid-shutdown.
func TestReleaseRingDrainRacesClose(t *testing.T) {
	for _, mode := range []struct {
		name        string
		incremental bool
	}{{"batch", false}, {"incremental", true}} {
		t.Run(mode.name, func(t *testing.T) {
			tree := topology.MustNew(3, 4, 4)
			m, err := New(Config{
				Tree:        tree,
				BatchSize:   1,
				Incremental: mode.incremental,
				ReleaseRing: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			n := tree.Nodes()
			var handles []*Handle
			for i := 0; i < 48; i++ {
				h, err := m.Connect(context.Background(), (i*5)%n, (i*3+1)%n)
				if err != nil {
					continue
				}
				handles = append(handles, h)
			}
			var wg sync.WaitGroup
			start := make(chan struct{})
			for _, h := range handles {
				wg.Add(1)
				go func(h *Handle) {
					defer wg.Done()
					<-start
					if err := h.Release(); err != nil {
						t.Errorf("release during close: %v", err)
					}
				}(h)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := m.Close(context.Background()); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			close(start)
			wg.Wait()
			// Close returned and every Release returned: all channels must
			// be back, whether the handle drained through the ring, the
			// flusher's exit drain, or the post-Close sweep.
			s := m.Stats()
			if s.Released != uint64(len(handles)) {
				t.Fatalf("Released = %d, want %d", s.Released, len(handles))
			}
			if s.Active != 0 || s.Occupancy != 0 {
				t.Fatalf("grants dropped in the ring/Close race: %+v", s)
			}
		})
	}
}

// TestIncrementalParallelFallbackName pins the documented behavior for
// parallel-configured incremental managers: delta epochs always run the
// sequential core, and LastEpochEngine says so.
func TestIncrementalParallelFallbackName(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m, err := New(Config{
		Tree:              tree,
		BatchSize:         4,
		MaxWait:           time.Hour, // flush only on a full batch
		Incremental:       true,
		ParallelThreshold: 2,
		ParallelWorkers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var wg sync.WaitGroup
	n := tree.Nodes()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if h, err := m.Connect(context.Background(), i, n-1-i); err == nil {
				h.Release()
			}
		}(i)
	}
	wg.Wait()
	s := m.Stats()
	want := "level-wise/rollback/incremental/par-fallback=incremental-delta"
	if s.LastEpochEngine != want {
		t.Fatalf("LastEpochEngine = %q, want %q", s.LastEpochEngine, want)
	}
	if s.ParallelEpochs != 0 || s.SequentialEpochs != s.Epochs {
		t.Fatalf("delta epochs must count as sequential: %+v", s)
	}
}
