package fabric

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

// burst fires n concurrent Connect calls with random endpoints, releases
// every grant, and returns once all verdicts are in.
func burst(t *testing.T, m *Manager, tree *topology.Tree, n int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			h, err := m.Connect(context.Background(), rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
			if err != nil {
				if !errors.Is(err, ErrUnroutable) {
					t.Errorf("client %d: %v", id, err)
				}
				return
			}
			if err := h.Release(); err != nil {
				t.Errorf("client %d: release: %v", id, err)
			}
		}(c)
	}
	wg.Wait()
}

// TestParallelThresholdRouting checks that epochs at or above
// ParallelThreshold run on the parallel engine, epochs below it stay
// sequential, both are counted, and the journal replay proves link safety
// across the mix.
func TestParallelThresholdRouting(t *testing.T) {
	tree := topology.MustNew(3, 8, 8)
	var j journal
	m, err := New(Config{
		Tree:              tree,
		BatchSize:         64,
		MaxWait:           20 * time.Millisecond,
		ParallelThreshold: 4,
		ParallelWorkers:   4,
		Trace:             j.record,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A 64-client burst fills whole epochs well past the threshold.
	burst(t, m, tree, 64, 1)
	s := m.Stats()
	if s.ParallelEpochs == 0 {
		t.Fatalf("no epoch went parallel: %+v", s)
	}
	if s.LastEpochEngine != "parallel-level-wise/deterministic/w4" {
		t.Errorf("LastEpochEngine = %q", s.LastEpochEngine)
	}

	// A lone request is an epoch of one: below threshold, sequential.
	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	s = m.Stats()
	if s.SequentialEpochs == 0 {
		t.Errorf("lone request did not run sequentially: %+v", s)
	}
	if s.LastEpochEngine != "level-wise/rollback" {
		t.Errorf("LastEpochEngine after lone request = %q", s.LastEpochEngine)
	}
	if s.SequentialEpochs+s.ParallelEpochs != s.Epochs {
		t.Errorf("epoch split %d+%d != %d", s.SequentialEpochs, s.ParallelEpochs, s.Epochs)
	}
	if s.ParallelThreshold != 4 || s.ParallelWorkers != 4 || s.ParallelMode != "deterministic" {
		t.Errorf("config echo wrong: %+v", s)
	}

	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	events := j.events
	j.mu.Unlock()
	replay(t, tree, events)
}

// TestParallelRacyManager drives the lock-free engine through the manager
// under load (and under -race in CI) and replays the journal.
func TestParallelRacyManager(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	var j journal
	m, err := New(Config{
		Tree:              tree,
		BatchSize:         32,
		MaxWait:           10 * time.Millisecond,
		ParallelThreshold: 2,
		ParallelWorkers:   8,
		ParallelRacy:      true,
		Trace:             j.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		burst(t, m, tree, 48, int64(round)*100)
	}
	s := m.Stats()
	if s.ParallelEpochs == 0 {
		t.Fatalf("no epoch went parallel: %+v", s)
	}
	if s.ParallelMode != "racy" {
		t.Errorf("ParallelMode = %q", s.ParallelMode)
	}
	if s.Active != 0 || s.Utilization != 0 {
		t.Errorf("drained manager still holds links: %+v", s)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	events := j.events
	j.mu.Unlock()
	replay(t, tree, events)
}

// TestParallelShardManager drives the subtree-sharded engine through the
// manager under load (and under -race in CI) and replays the journal.
func TestParallelShardManager(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	var j journal
	m, err := New(Config{
		Tree:              tree,
		BatchSize:         32,
		MaxWait:           10 * time.Millisecond,
		ParallelThreshold: 2,
		ParallelWorkers:   8,
		ParallelMode:      "shard",
		ParallelSteal:     true,
		Trace:             j.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		burst(t, m, tree, 48, int64(round)*100)
	}
	s := m.Stats()
	if s.ParallelEpochs == 0 {
		t.Fatalf("no epoch went parallel: %+v", s)
	}
	if s.ParallelMode != "shard+steal" {
		t.Errorf("ParallelMode = %q", s.ParallelMode)
	}
	if s.Active != 0 || s.Utilization != 0 {
		t.Errorf("drained manager still holds links: %+v", s)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	events := j.events
	j.mu.Unlock()
	replay(t, tree, events)
}

// TestParallelModeConfigErrors pins the ParallelMode/ParallelSteal
// validation in New.
func TestParallelModeConfigErrors(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	for _, cfg := range []Config{
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "sharded"},
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "shard", ParallelRacy: true},
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "deterministic", ParallelRacy: true},
		{Tree: tree, ParallelThreshold: 4, ParallelSteal: true},
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "racy", ParallelSteal: true},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("Config{ParallelMode:%q, ParallelRacy:%v, ParallelSteal:%v} accepted",
				cfg.ParallelMode, cfg.ParallelRacy, cfg.ParallelSteal)
		}
	}
	// The compatible spellings still construct: explicit racy both ways,
	// and shard without steal.
	for _, cfg := range []Config{
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "racy", ParallelRacy: true},
		{Tree: tree, ParallelThreshold: 4, ParallelMode: "shard"},
	} {
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("Config{ParallelMode:%q}: %v", cfg.ParallelMode, err)
		}
		if err := m.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelRequiresDefaultScheduler: the parallel engine mirrors the
// Level-wise options, so a custom scheduler plus a threshold is a config
// error, while an explicit *core.LevelWise is accepted.
func TestParallelRequiresDefaultScheduler(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	_, err := New(Config{Tree: tree, Scheduler: &core.BacktrackLevelWise{}, ParallelThreshold: 8})
	if err == nil {
		t.Fatal("backtracking scheduler with ParallelThreshold accepted")
	}
	m, err := New(Config{
		Tree:              tree,
		Scheduler:         &core.LevelWise{Opts: core.Options{Rollback: true}},
		ParallelThreshold: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHandlePortsOwned: a handle's ports must survive later epochs even
// though outcomes alias the manager's reusable scheduling arena.
func TestHandlePortsOwned(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	before := h1.Ports()
	// Subsequent epochs reuse the scratch arena h1's outcome lived in.
	for i := 0; i < 8; i++ {
		h, err := m.Connect(context.Background(), i%tree.Nodes(), (i*7+3)%tree.Nodes())
		if err != nil && !errors.Is(err, ErrUnroutable) {
			t.Fatal(err)
		}
		if err == nil {
			if err := h.Release(); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := h1.Ports()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("handle ports mutated by later epochs: %v -> %v", before, after)
		}
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
