package fabric

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// fastRepair keeps repair-loop tests quick: immediate epochs, short
// backoff, a handful of retries.
func fastRepair(tree *topology.Tree) Config {
	return Config{
		Tree:          tree,
		BatchSize:     1,
		MaxWait:       time.Millisecond,
		RepairBackoff: 500 * time.Microsecond,
		RepairRetries: 4,
	}
}

// TestFailLinkRevokesAndRepairs takes down the one link a connection
// climbs through and watches the repair loop move it to a surviving
// port: same endpoints, new route, handle alive throughout.
func TestFailLinkRevokesAndRepairs(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(fastRepair(tree))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	oldPorts := h.Ports()
	if len(oldPorts) != 1 {
		t.Fatalf("route 0→%d has %d ports, want 1 on a 2-level tree", tree.Nodes()-1, len(oldPorts))
	}

	revoked, err := m.FailLink(0, 0, oldPorts[0], faults.Up)
	if err != nil {
		t.Fatal(err)
	}
	if revoked != 1 {
		t.Fatalf("FailLink revoked %d connections, want 1", revoked)
	}
	waitFor(t, func() bool { return m.Stats().Repaired == 1 })

	if h.Repairing() || h.Err() != nil {
		t.Fatalf("repaired handle not active: repairing=%v err=%v", h.Repairing(), h.Err())
	}
	newPorts := h.Ports()
	if len(newPorts) != 1 || newPorts[0] == oldPorts[0] {
		t.Fatalf("repair kept the dead port: old %v new %v", oldPorts, newPorts)
	}
	s := m.Stats()
	if s.Revoked != 1 || s.PendingRepairs != 0 || s.FaultyChannels != 1 {
		t.Fatalf("stats after repair: %+v", s)
	}
	if s.DegradedCapacity >= 1.0 {
		t.Fatalf("degraded capacity %v not reflecting the fault", s.DegradedCapacity)
	}
	if s.RepairLatencyMS.N != 1 || s.RepairDepth.N != 1 {
		t.Fatalf("repair distributions not recorded: %+v", s)
	}
	if err := h.Release(); err != nil {
		t.Fatalf("release of repaired handle: %v", err)
	}
	if got := m.RepairAll(); got != 1 {
		t.Fatalf("RepairAll returned %d, want 1", got)
	}
	if s := m.Stats(); s.FaultyChannels != 0 || s.DegradedCapacity != 1.0 {
		t.Fatalf("stats after RepairAll: %+v", s)
	}
}

// TestFailSwitchRevokesAndRoutesAround kills the level-1 switch a route
// climbs through; the repaired route must land on a different parent.
func TestFailSwitchRevokesAndRoutesAround(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(fastRepair(tree))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	deadParent := tree.UpParent(0, 0, h.Ports()[0])
	revoked, err := m.FailSwitch(1, deadParent)
	if err != nil {
		t.Fatal(err)
	}
	if revoked != 1 {
		t.Fatalf("FailSwitch revoked %d, want 1", revoked)
	}
	waitFor(t, func() bool { return m.Stats().Repaired == 1 })
	if got := tree.UpParent(0, 0, h.Ports()[0]); got == deadParent {
		t.Fatalf("repaired route still climbs through failed switch %d", deadParent)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	// Both channels of each child link are down, so Faults merges them
	// into one Both-direction LinkFault per link.
	fs := m.Faults()
	if len(fs.Links) != tree.Children() {
		t.Fatalf("Faults reports %d links for a failed level-1 switch, want %d", len(fs.Links), tree.Children())
	}
	for _, l := range fs.Links {
		if l.Direction != faults.Both {
			t.Fatalf("merged fault has direction %v, want both: %+v", l.Direction, l)
		}
	}
}

// isolate fails every upward channel out of node 0's level-0 switch, so
// no route from node 0 can leave the switch.
func isolate(t *testing.T, m *Manager) int {
	t.Helper()
	fs := &faults.FaultSet{}
	for p := 0; p < m.cfg.Tree.Parents(); p++ {
		fs.Links = append(fs.Links, faults.LinkFault{Level: 0, Switch: 0, Port: p, Direction: faults.Up})
	}
	_, revoked, err := m.Fail(fs)
	if err != nil {
		t.Fatal(err)
	}
	return revoked
}

// TestRepairExhaustionIsTerminal isolates a connection's source switch:
// every repair attempt must fail, the bounded retry gives up, and both
// Handle.Err and Release surface ErrUnroutableDegraded.
func TestRepairExhaustionIsTerminal(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(fastRepair(tree))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	if revoked := isolate(t, m); revoked != 1 {
		t.Fatalf("isolating revoked %d, want 1", revoked)
	}
	waitFor(t, func() bool { return m.Stats().RepairFailed == 1 })

	if !errors.Is(h.Err(), ErrUnroutableDegraded) {
		t.Fatalf("dead handle Err = %v, want ErrUnroutableDegraded", h.Err())
	}
	if err := h.Release(); !errors.Is(err, ErrUnroutableDegraded) {
		t.Fatalf("release of dead handle = %v, want ErrUnroutableDegraded", err)
	}
	s := m.Stats()
	if s.PendingRepairs != 0 || s.Active != 0 {
		t.Fatalf("dead repair left pending=%d active=%d", s.PendingRepairs, s.Active)
	}
	if s.RepairDepth.N != 0 {
		t.Fatalf("failed repair recorded a depth sample: %+v", s.RepairDepth)
	}
	// New admissions from the isolated switch are ordinary rejections.
	if _, err := m.Connect(context.Background(), 0, tree.Nodes()-1); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("connect from isolated switch = %v, want ErrUnroutable", err)
	}
}

// TestReleaseCancelsRepair releases a handle while it sits in the
// repair loop; the repair is aborted, nothing leaks.
func TestReleaseCancelsRepair(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	cfg.RepairBackoff = time.Hour // park the repair in backoff forever
	cfg.RepairRetries = 100
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	isolate(t, m)
	if !h.Repairing() {
		t.Fatal("revoked handle not repairing")
	}
	if err := h.Release(); err != nil {
		t.Fatalf("release of repairing handle: %v", err)
	}
	waitFor(t, func() bool {
		s := m.Stats()
		return s.RepairAborted == 1 && s.PendingRepairs == 0
	})
	if err := h.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("second release = %v, want ErrReleased", err)
	}
}

// TestConnectDrainingError pins the satellite: a draining manager
// refuses admission with ErrDraining, distinguishable from backpressure
// (ErrAdmitTimeout) while still matching ErrClosed for old callers.
func TestConnectDrainingError(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err = m.Connect(context.Background(), 0, 5)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("connect while draining = %v, want ErrDraining", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ErrDraining does not match ErrClosed: %v", err)
	}
	if errors.Is(ErrAdmitTimeout, ErrDraining) {
		t.Fatal("backpressure timeout must not match ErrDraining")
	}
}

// TestChaosFailRepairRevoke is the acceptance chaos test (ci runs the
// package under -race): concurrent connect/release churn while faults
// are injected and repaired at random. Afterwards every handle is
// released and the link state must equal exactly (all-free minus the
// remaining failed channels) — no leaked or resurrected channel, ever.
func TestChaosFailRepairRevoke(t *testing.T) {
	tree := topology.MustNew(3, 4, 2)
	cfg := Config{
		Tree:          tree,
		BatchSize:     8,
		MaxWait:       500 * time.Microsecond,
		AdmitTimeout:  50 * time.Millisecond,
		RepairBackoff: 500 * time.Microsecond,
		RepairRetries: 3,
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		held    []*Handle
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		workers = 4
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []*Handle
			defer func() {
				mu.Lock()
				held = append(held, local...)
				mu.Unlock()
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if len(local) > 6 || (len(local) > 0 && rng.Intn(3) == 0) {
					i := rng.Intn(len(local))
					h := local[i]
					local = append(local[:i], local[i+1:]...)
					// Any verdict is legal here: nil, or the terminal error of
					// a connection the chaos killed.
					_ = h.Release()
					continue
				}
				h, err := m.Connect(context.Background(), rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
				if err == nil {
					local = append(local, h)
				}
			}
		}(int64(w + 1))
	}

	// Chaos schedule: inject a seeded fault set, let the repair loop
	// work, then heal — sometimes the same set, sometimes everything.
	for i := 0; i < 20; i++ {
		fs := faults.Uniform(tree, 0.04, int64(i))
		if i%5 == 4 {
			fs = faults.CorrelatedSwitches(tree, 0.03, int64(i))
		}
		if _, _, err := m.Fail(fs); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if i%3 == 2 {
			m.RepairAll()
		} else if _, err := m.Repair(fs); err != nil {
			t.Fatal(err)
		}
	}
	// Leave the fabric degraded so the final identity is non-trivial.
	if _, _, err := m.Fail(faults.Uniform(tree, 0.06, 999)); err != nil {
		t.Fatal(err)
	}

	close(stop)
	wg.Wait()
	for _, h := range held {
		_ = h.Release() // dead handles report their terminal error; fine
	}
	waitFor(t, func() bool {
		s := m.Stats()
		return s.PendingRepairs == 0 && s.QueueDepth == 0
	})

	s := m.Stats()
	if s.Revoked != s.Repaired+s.RepairFailed+s.RepairAborted {
		t.Fatalf("repair accounting leak: revoked %d != repaired %d + failed %d + aborted %d",
			s.Revoked, s.Repaired, s.RepairFailed, s.RepairAborted)
	}
	if s.Active != 0 {
		t.Fatalf("%d connections still active after releasing every handle", s.Active)
	}

	// The acceptance identity: after arbitrary fail/repair/revoke
	// sequences and a full drain, the state is exactly all-free minus
	// the currently failed channels.
	want := linkstate.New(tree)
	remaining := m.Faults()
	remaining.Apply(want)
	m.mu.Lock()
	equal := m.st.Equal(want)
	occupied := m.st.OccupiedCount()
	m.mu.Unlock()
	if occupied != 0 {
		t.Fatalf("%d channels still occupied after drain", occupied)
	}
	if !equal {
		t.Fatal("drained degraded state differs from fresh-plus-faults")
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCloseAbortsRepairs shuts the manager down while repairs are
// pending; they resolve as aborted, not leaked.
func TestCloseAbortsRepairs(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	cfg.RepairRetries = 1000
	cfg.RepairBackoff = time.Millisecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Connect(context.Background(), 0, tree.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	isolate(t, m) // repair can never succeed; it cycles through backoff
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		s := m.Stats()
		return s.PendingRepairs == 0 && s.RepairAborted == 1
	})
	if !errors.Is(h.Err(), ErrClosed) {
		t.Fatalf("aborted handle Err = %v, want ErrClosed", h.Err())
	}
}
