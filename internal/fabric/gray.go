package fabric

// Gray-failure hardening for the repair loop: flap damping with
// quarantine, and the global repair-retry token budget. A link that
// merely fails once is handled fine by faults.go — mask, revoke,
// repair. A link that *flaps* re-runs that whole cycle on every
// transition, and with enough flapping links the revoke/re-admit churn
// and the retry traffic grow without bound. Two mechanisms bound them:
//
//   - Flap damping (BGP-style): each down-transition of a channel adds
//     one to a per-channel score that decays exponentially with
//     half-life Config.FlapHalfLife. A score crossing
//     Config.FlapThreshold quarantines the channel — it stays masked
//     (scheduled around, exactly like a failed channel) until a
//     probation window of Config.QuarantineProbation passes with no
//     further flap, so one noisy link stops generating churn after a
//     bounded number of revocations. Opt-in: FlapThreshold 0 disables
//     damping entirely and the manager behaves bit-identically to the
//     clean-fault model.
//
//   - Retry budget: repair *retries* (every re-enqueue after a denial;
//     the first attempt after a revocation rides free) draw from one
//     global token bucket (Config.RepairBudget). An empty bucket defers
//     the retry until a token accrues instead of dropping it, so
//     correlated failures cannot start a retry storm — total scheduling
//     attempts are bounded by revocations + burst + rate·time.

import (
	"math"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Gray-failure defaults used by New when the corresponding Config field
// is zero (flap damping itself stays off unless FlapThreshold > 0).
const (
	DefaultFlapHalfLife        = time.Second
	DefaultQuarantineProbation = 100 * time.Millisecond
	DefaultRepairBudgetRate    = 256
	DefaultRepairBudgetBurst   = 1024
)

// Budget parameterizes a token bucket: Rate tokens per second accrue up
// to Burst. The zero value selects the documented default of the field
// that carries it; a negative Rate disables the limit entirely.
type Budget struct {
	Rate  float64
	Burst int
}

// bucket is the runtime state of a Budget. Guarded by the owner's lock.
type bucket struct {
	rate      float64
	burst     float64
	tokens    float64
	last      time.Time
	unlimited bool
}

func newBucket(b Budget, now time.Time) bucket {
	if b.Rate < 0 {
		return bucket{unlimited: true}
	}
	return bucket{rate: b.Rate, burst: float64(b.Burst), tokens: float64(b.Burst), last: now}
}

// take consumes one token if available.
func (b *bucket) take(now time.Time) bool {
	if b.unlimited {
		return true
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+b.rate*dt.Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// wait returns how long until the next token accrues (call after a
// failed take; rate is positive for any limited bucket New accepts).
func (b *bucket) wait() time.Duration {
	if b.unlimited || b.rate <= 0 {
		return 0
	}
	need := 1 - b.tokens
	if need <= 0 {
		return 0
	}
	return time.Duration(need / b.rate * float64(time.Second))
}

// flapScore is one channel's decayed flap counter.
type flapScore struct {
	score float64
	last  time.Time
}

// noteFlapLocked records a down-transition of channel c at time now:
// decay the score, add one, and quarantine (or extend an existing
// quarantine of) the channel once the score crosses the threshold.
// Caller holds m.mu; damping must be enabled.
func (m *Manager) noteFlapLocked(c faults.Channel, now time.Time) {
	m.flapEvents.Add(1)
	fs := m.flap[c]
	if fs == nil {
		fs = &flapScore{}
		m.flap[c] = fs
	} else if dt := now.Sub(fs.last); dt > 0 {
		fs.score *= math.Exp2(-float64(dt) / float64(m.cfg.FlapHalfLife))
	}
	fs.score++
	fs.last = now
	if fs.score < m.cfg.FlapThreshold {
		return
	}
	until := now.Add(m.cfg.QuarantineProbation)
	if _, already := m.quar[c]; !already {
		m.quarantineEvents.Add(1)
		// Wake shortly after probation expires so the channel returns to
		// service even on an otherwise idle manager (settle points —
		// Stats, Fail, Repair, epoch flushes — also release on time).
		time.AfterFunc(m.cfg.QuarantineProbation+time.Millisecond, m.settleQuarantine)
	}
	m.quar[c] = until
}

// dampingLocked reports whether flap damping is enabled.
func (m *Manager) dampingLocked() bool { return m.cfg.FlapThreshold > 0 }

// settleQuarantineLocked releases every quarantined channel whose
// probation has expired: if the channel is not also currently failed,
// its mask lifts and the capacity returns to service. Caller holds
// m.mu. Returns the number of channels returned to service.
func (m *Manager) settleQuarantineLocked(now time.Time) int {
	if len(m.quar) == 0 {
		return 0
	}
	released := 0
	for c, until := range m.quar {
		if now.Before(until) {
			continue
		}
		delete(m.quar, c)
		if _, bad := m.failed[c]; bad {
			continue // the mask stays: the channel is still failed outright
		}
		m.st.RepairLink(c.Dir, c.Level, c.Switch, c.Port)
		released++
	}
	return released
}

// settleQuarantine is the probation timer's continuation.
func (m *Manager) settleQuarantine() {
	m.mu.Lock()
	released := m.settleQuarantineLocked(time.Now())
	if released > 0 {
		m.publishStatsLocked()
	}
	m.mu.Unlock()
	if released > 0 {
		m.wake() // freed capacity: let the next epoch use it
	}
}

// Quarantined returns the currently quarantined channels in
// deterministic order (after releasing any whose probation expired).
func (m *Manager) Quarantined() []faults.Channel {
	m.mu.Lock()
	m.settleQuarantineLocked(time.Now())
	out := make([]faults.Channel, 0, len(m.quar))
	for c := range m.quar {
		out = append(out, c)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Dir < b.Dir
	})
	return out
}

// ClearQuarantine lifts every quarantine immediately and resets the
// flap scores — the operator's "I fixed the cable, trust it again"
// override (ftserve's whole-plane repair verb calls it). Channels that
// are also failed outright stay masked until repaired. Returns the
// number of channels returned to service.
func (m *Manager) ClearQuarantine() int {
	m.mu.Lock()
	released := 0
	for c := range m.quar {
		delete(m.quar, c)
		if _, bad := m.failed[c]; bad {
			continue
		}
		m.st.RepairLink(c.Dir, c.Level, c.Switch, c.Port)
		released++
	}
	for c := range m.flap {
		delete(m.flap, c)
	}
	m.publishStatsLocked()
	m.mu.Unlock()
	if released > 0 {
		m.wake()
	}
	return released
}

// repairOnHeldTrunkLocked reports whether a freshly repaired route
// landed on a held trunk: some level of its climb has, at the parent
// switches the route's up-port selects, at least one *other* in-service
// channel already carrying a held circuit. This is exactly the quantity
// the ReuseCost score (core.pickPortReuse) rewards — (w − free) at the
// two parent rows — so the repaired_on_held_trunk counter is the
// observable proof that reuse-cost-aware repair placement steers
// repairs toward standing configuration. The route's own channels at
// each parent level are excluded, as are failed/quarantined (masked)
// channels, which are dead rather than held. Caller holds m.mu.
func (m *Manager) repairOnHeldTrunkLocked(src, dst int, ports []int) bool {
	tree := m.cfg.Tree
	if len(ports) == 0 {
		return false
	}
	w := tree.Parents()
	held := false
	var cur topology.RouteCursor
	cur.Start(tree, src, dst)
	cur.Walk(ports, func(h, sigma, delta, port int) {
		if held || h+1 >= tree.LinkLevels() {
			return
		}
		up := tree.UpParent(h, sigma, port)
		down := tree.UpParent(h, delta, port)
		self := -1
		if h+1 < len(ports) {
			self = ports[h+1] // the route's own channels at the parent level
		}
		urow, drow := m.st.ULink(h+1, up), m.st.DLink(h+1, down)
		for p := 0; p < w; p++ {
			if p == self {
				continue
			}
			if !urow.Get(p) && !m.st.Failed(linkstate.Up, h+1, up, p) {
				held = true
				return
			}
			if !drow.Get(p) && !m.st.Failed(linkstate.Down, h+1, down, p) {
				held = true
				return
			}
		}
	})
	return held
}
