package fabric

// The plane-agnostic admission surface. A federation (internal/federation)
// composes N independent planes, each a full *Manager; these interfaces
// are the seam it composes against, extracted so the router tier depends
// on "something that admits circuits against one fat tree" rather than on
// the Manager concrete type. Go's lack of covariant returns means
// Connect's (*Handle, error) signature cannot satisfy a
// (Conn, error)-returning interface method directly, so Manager carries a
// thin Admit adapter; everything else is satisfied by existing methods.

import (
	"context"

	"repro/internal/faults"
	"repro/internal/topology"
)

// Conn is one granted circuit, abstracted from the owning plane. A
// *Handle satisfies it; federated handles wrap one and route Release
// back to the plane that granted it.
type Conn interface {
	// Src and Dst are the circuit's endpoints.
	Src() int
	Dst() int
	// Ports is a copy of the upward port choices, one per level below
	// the common ancestor (see Handle.Ports).
	Ports() []int
	// Release returns the circuit's channels to its plane, exactly once.
	Release() error
	// Err reports why the circuit died (terminal repair verdict), nil
	// while it is alive.
	Err() error
	// Repairing reports whether a fault revoked the circuit and the
	// plane's repair loop is re-admitting it.
	Repairing() bool
}

// Surface is one admission plane: the subset of *Manager the federation
// router needs to admit, observe, fault, and drain a plane without
// knowing its concrete type.
type Surface interface {
	// Admit requests a circuit; the plane-typed form of Connect.
	Admit(ctx context.Context, src, dst int) (Conn, error)
	// Tree is the fat tree this plane schedules against.
	Tree() *topology.Tree
	// Occupancy is the live count of occupied channels — the O(1)
	// load signal least-loaded plane selection reads per admission.
	Occupancy() int64
	// Stats snapshots the plane's counters and distributions.
	Stats() Stats

	// Fault surface: inject, inspect, and heal (see the Manager methods).
	Fail(fs *faults.FaultSet) (failed, revoked int, err error)
	Repair(fs *faults.FaultSet) (int, error)
	RepairAll() int
	Faults() *faults.FaultSet
	FaultCount() int
	// Gray-failure surface: the channels flap damping currently holds in
	// quarantine, and the operator override that releases them all.
	Quarantined() []faults.Channel
	ClearQuarantine() int

	// Close stops admission and drains the plane (bounded by ctx).
	Close(ctx context.Context) error
}

// Compile-time proof that the concrete plane types satisfy the surface.
var (
	_ Surface = (*Manager)(nil)
	_ Conn    = (*Handle)(nil)
)

// Admit is Connect with the plane-typed return. The nil-handle error
// case must not produce a non-nil Conn holding a nil *Handle.
func (m *Manager) Admit(ctx context.Context, src, dst int) (Conn, error) {
	h, err := m.Connect(ctx, src, dst)
	if h == nil {
		return nil, err
	}
	return h, err
}

// Tree returns the fat tree this manager schedules against.
func (m *Manager) Tree() *topology.Tree { return m.cfg.Tree }

// Occupancy returns the live number of occupied channels, from the link
// state's O(1) atomic gauge — no lock, safe on any goroutine, and the
// signal federation's least-loaded policy polls per admission.
func (m *Manager) Occupancy() int64 { return m.st.LiveOccupancy() }
