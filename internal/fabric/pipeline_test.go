package fabric

// Tests for the low-latency admission pipeline: the pooled-ticket
// zero-allocation guarantee on the Connect enqueue path, release-ring
// wraparound and exactly-once drain, ticket cancellation racing the
// pool, the delivery and drain workers, and the seqlock Stats snapshot.
// ci runs this package under -race -count=2, which is where the
// concurrency assertions bite.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
)

// TestConnectEnqueueZeroAllocs is the regression guard for the pooled
// admission path: one acquire + pooled ticket + enqueue must not
// allocate at steady state. The flusher is parked (huge BatchSize,
// hour MaxWait), so the test plays the epoch's part by hand: swap the
// queue out, claim the ticket, return the slot, recycle — exactly the
// bookkeeping flushLocked and the Connect receive path perform, minus
// scheduling (which allocates the Handle and is not the enqueue path).
func TestConnectEnqueueZeroAllocs(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1 << 20, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.acquireSlot(ctx, nil); err != nil {
			t.Fatal(err)
		}
		tk := m.getTicket(0, 5)
		if ok, _ := m.enqueue(tk); !ok {
			t.Fatal("enqueue refused on an open manager")
		}
		m.qmu.Lock()
		m.pending = m.pending[:0]
		m.qdepth.Store(0)
		m.qmu.Unlock()
		m.releaseSlots(1)
		if !tk.state.CompareAndSwap(ticketWaiting, ticketClaimed) {
			t.Fatal("ticket not in waiting state")
		}
		m.putTicket(tk)
	})
	if allocs != 0 {
		t.Errorf("Connect enqueue path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReleaseRingWraparoundFull drives the ring through several full
// laps: a full ring must refuse the push (the caller degrades to the
// synchronous release path) and the mask arithmetic must stay correct
// as head and tail wrap.
func TestReleaseRingWraparoundFull(t *testing.T) {
	const capacity = 4
	r := newReleaseRing(capacity)
	hs := make([]*Handle, capacity+1)
	for i := range hs {
		hs[i] = &Handle{}
	}
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < capacity; i++ {
			if !r.push(hs[i]) {
				t.Fatalf("lap %d: push %d refused on a non-full ring", lap, i)
			}
		}
		if r.push(hs[capacity]) {
			t.Fatalf("lap %d: push accepted on a full ring", lap)
		}
		for i := 0; i < capacity; i++ {
			if got := r.pop(); got != hs[i] {
				t.Fatalf("lap %d: pop %d = %p, want %p (FIFO)", lap, i, got, hs[i])
			}
		}
		if got := r.pop(); got != nil {
			t.Fatalf("lap %d: pop on empty ring = %p, want nil", lap, got)
		}
	}
}

// TestReleaseRingConcurrentExactlyOnce hammers the ring with concurrent
// producers while a single consumer (holding its own lock, as drmu does
// under DrainWorker) drains it, and checks every handle comes out
// exactly once. Producers whose push finds the ring full retry — the
// manager's fallback is releaseSlow, but for the ring invariant what
// matters is that no accepted handle is ever lost or duplicated.
func TestReleaseRingConcurrentExactlyOnce(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
	)
	r := newReleaseRing(16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				h := &Handle{src: p, dst: i}
				for !r.push(h) {
					time.Sleep(time.Microsecond) // full: wait for the consumer
				}
			}
		}(p)
	}
	var cmu sync.Mutex // the consumer lock, as drmu is under DrainWorker
	seen := make(map[*Handle]int)
	popped := 0
	for popped < producers*perProd {
		cmu.Lock()
		h := r.pop()
		cmu.Unlock()
		if h == nil {
			time.Sleep(time.Microsecond)
			continue
		}
		seen[h]++
		popped++
	}
	wg.Wait()
	if got := r.pop(); got != nil {
		t.Fatalf("ring not empty after draining all pushes: %p", got)
	}
	for h, n := range seen {
		if n != 1 {
			t.Fatalf("handle %d→%d drained %d times, want exactly once", h.src, h.dst, n)
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("drained %d distinct handles, want %d", len(seen), producers*perProd)
	}
}

// TestCancelRacesPooledTickets stresses context cancellation against
// epoch claims now that tickets are pooled: a ticket the epoch's CAS
// claimed must have its verdict honored even if the context fired, and
// a cancel-won ticket must never be recycled while the flusher might
// still touch it. The counter identity and the race detector are the
// assertions; ci runs this with -race -count=2.
func TestCancelRacesPooledTickets(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 8, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			nodes := tree.Nodes()
			for i := 0; i < 300; i++ {
				// A timeout in the same band as MaxWait lands cancellations
				// on both sides of the epoch's claim.
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(150))*time.Microsecond)
				h, err := m.Connect(ctx, rng.Intn(nodes), rng.Intn(nodes))
				cancel()
				switch {
				case err == nil:
					if err := m.Release(h); err != nil {
						errs[id] = fmt.Errorf("release: %w", err)
						return
					}
				case errors.Is(err, ErrUnroutable), errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrAdmitTimeout):
				default:
					errs[id] = fmt.Errorf("connect: %w", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Offered != s.Granted+s.Rejected+s.Cancelled {
		t.Errorf("counter identity violated: offered %d != granted %d + rejected %d + cancelled %d",
			s.Offered, s.Granted, s.Rejected, s.Cancelled)
	}
	if s.Active != 0 {
		t.Errorf("active = %d after full release, want 0", s.Active)
	}
}

// TestDeliveryPipelineModes runs the same workload with the delivery
// worker disabled, default (double-buffered), and deep: every mode must
// deliver every verdict exactly once — each Connect returns exactly one
// grant or error, and the counters add up.
func TestDeliveryPipelineModes(t *testing.T) {
	for _, pipeline := range []int{-1, 0, 3} {
		t.Run(fmt.Sprintf("pipeline=%d", pipeline), func(t *testing.T) {
			tree := topology.MustNew(2, 4, 4)
			m, err := New(Config{Tree: tree, BatchSize: 4, MaxWait: 100 * time.Microsecond, DeliveryPipeline: pipeline})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			var granted, rejected sync.Map
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(id)))
					nodes := tree.Nodes()
					for i := 0; i < 100; i++ {
						h, err := m.Connect(context.Background(), rng.Intn(nodes), rng.Intn(nodes))
						if err == nil {
							granted.Store([2]int{id, i}, struct{}{})
							if err := m.Release(h); err != nil {
								t.Error(err)
								return
							}
						} else if errors.Is(err, ErrUnroutable) {
							rejected.Store([2]int{id, i}, struct{}{})
						} else {
							t.Errorf("connect: %v", err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if err := m.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			count := func(m *sync.Map) (n uint64) {
				m.Range(func(_, _ any) bool { n++; return true })
				return
			}
			s := m.Stats()
			if g := count(&granted); g != s.Granted {
				t.Errorf("clients saw %d grants, manager counted %d", g, s.Granted)
			}
			if r := count(&rejected); r != s.Rejected {
				t.Errorf("clients saw %d rejections, manager counted %d", r, s.Rejected)
			}
			if s.Offered != 800 {
				t.Errorf("offered = %d, want 800", s.Offered)
			}
		})
	}
}

// TestDrainWorkerRetiresReleases exercises the dedicated drain core:
// fast-path releases must all retire (through predrained swaps and the
// Close-time residue sweep), leaving nothing held or stranded.
func TestDrainWorkerRetiresReleases(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 4, MaxWait: 100 * time.Microsecond, DrainWorker: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			nodes := tree.Nodes()
			var held []*Handle
			for i := 0; i < 200; i++ {
				for len(held) >= 4 {
					if err := m.Release(held[0]); err != nil {
						t.Errorf("release: %v", err)
						return
					}
					held = held[1:]
				}
				if h, err := m.Connect(context.Background(), rng.Intn(nodes), rng.Intn(nodes)); err == nil {
					held = append(held, h)
				} else if !errors.Is(err, ErrUnroutable) {
					t.Errorf("connect: %v", err)
					return
				}
			}
			for _, h := range held {
				if err := m.Release(h); err != nil {
					t.Errorf("final release: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Active != 0 {
		t.Errorf("active = %d after releasing everything, want 0", s.Active)
	}
	if s.Released != s.Granted {
		t.Errorf("released %d != granted %d after full drain", s.Released, s.Granted)
	}
	if s.Occupancy != 0 {
		t.Errorf("occupancy = %d after full drain, want 0 (stranded release)", s.Occupancy)
	}
}

// TestDrainWorkerRequiresRing: the drain worker is a ring consumer, so
// configuring it with the ring disabled is a construction error.
func TestDrainWorkerRequiresRing(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	if _, err := New(Config{Tree: tree, DrainWorker: true, ReleaseRing: -1}); err == nil {
		t.Fatal("New accepted DrainWorker with the release ring disabled")
	}
}

// TestStatsSnapshots checks the seqlock path: Stats must reflect work
// without taking the scheduling lock, tolerate concurrent readers under
// the race detector, and converge after a fault (the read nudges the
// flusher, whose next pass republishes).
func TestStatsSnapshots(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1, MaxWait: 50 * time.Microsecond, StatsSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // concurrent snapshot readers racing the flusher's publishes
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := m.Stats()
				if s.Utilization < 0 || s.Utilization > 1 {
					t.Errorf("torn utilization read: %v", s.Utilization)
					return
				}
				if s.DegradedCapacity < 0 || s.DegradedCapacity > 1 {
					t.Errorf("torn capacity read: %v", s.DegradedCapacity)
					return
				}
			}
		}()
	}
	h, err := m.Connect(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m.Stats().Granted == 1 })
	if _, err := m.FailLink(0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// The fault publishes under mu; the snapshot must converge without
	// any Stats-side settling.
	waitFor(t, func() bool { return m.Stats().FaultyChannels > 0 })
	if err := m.Release(h); err != nil && !errors.Is(err, ErrUnroutableDegraded) {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.LastEpochEngine == "" {
		t.Error("snapshot lost the last epoch engine name")
	}
}

// TestDrainRefusedCounter: ErrDraining exits count under DrainRefused,
// not Overflow — shutdown refusals and backpressure overflow are
// separately attributable.
func TestDrainRefusedCounter(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Connect(context.Background(), 0, 5); !errors.Is(err, ErrDraining) {
			t.Fatalf("connect while draining = %v, want ErrDraining", err)
		}
	}
	s := m.Stats()
	if s.DrainRefused != 3 {
		t.Errorf("drain_refused = %d, want 3", s.DrainRefused)
	}
	if s.Overflow != 0 {
		t.Errorf("overflow = %d, want 0 — drain refusals must not double-count", s.Overflow)
	}
	if s.Offered != 0 {
		t.Errorf("offered = %d, want 0 — refused requests never enter the queue", s.Offered)
	}
}
