package fabric

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// journal collects Trace events. Trace runs under the manager lock, so
// plain appends are already serialized; the mutex only covers the final
// read after Close.
type journal struct {
	mu     sync.Mutex
	events []Event
}

func (j *journal) record(e Event) {
	j.mu.Lock()
	// Ports aliases live handle storage; copy before retaining.
	e.Ports = append([]int(nil), e.Ports...)
	j.events = append(j.events, e)
	j.mu.Unlock()
}

// replay applies the journal's grant/release history, in serialization
// order, to a fresh link state. Any failure means the fabric granted a
// link twice or released one it did not hold.
func replay(t *testing.T, tree *topology.Tree, events []Event) {
	t.Helper()
	st := linkstate.New(tree)
	grants, releases := 0, 0
	for i, e := range events {
		switch e.Kind {
		case EventGrant:
			grants++
			if err := st.AllocatePath(e.Src, e.Dst, e.Ports); err != nil {
				t.Fatalf("event %d: replaying grant %d→%d ports %v: %v", i, e.Src, e.Dst, e.Ports, err)
			}
		case EventRelease:
			releases++
			if err := st.ReleasePath(e.Src, e.Dst, e.Ports); err != nil {
				t.Fatalf("event %d: replaying release %d→%d ports %v: %v", i, e.Src, e.Dst, e.Ports, err)
			}
		}
	}
	if grants != releases {
		t.Fatalf("journal has %d grants but %d releases", grants, releases)
	}
	if occ := st.OccupiedCount(); occ != 0 {
		t.Fatalf("replayed journal leaves %d channels occupied", occ)
	}
}

// TestConcurrentMixed is the acceptance workload: 64 concurrent clients
// mixing Connect and Release on FT(3,8) under the race detector. It
// verifies (a) via journal replay that no link is ever double-allocated,
// and (b) the counter identity offered == granted+rejected+cancelled.
func TestConcurrentMixed(t *testing.T) {
	tree := topology.MustNew(3, 8, 8)
	var j journal
	m, err := New(Config{
		Tree:      tree,
		BatchSize: 16,
		MaxWait:   200 * time.Microsecond,
		Trace:     j.record,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	const iters = 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 1))
			var held []*Handle
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				if i%13 == 7 {
					// Exercise the cancellation path with an already-
					// expired context; any of overflow / cancelled /
					// granted (claim race) is a legal outcome.
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(context.Background())
					cancel()
				}
				h, err := m.Connect(ctx, rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
				if err != nil {
					if !errors.Is(err, ErrUnroutable) && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrClosed) {
						t.Errorf("client %d: unexpected connect error: %v", id, err)
					}
				} else {
					held = append(held, h)
				}
				// Mixed workload: shed circuits so links churn.
				for len(held) > 3 || (len(held) > 0 && rng.Intn(2) == 0) {
					if err := m.Release(held[0]); err != nil {
						t.Errorf("client %d: release: %v", id, err)
					}
					held = held[1:]
				}
			}
			for _, h := range held {
				if err := h.Release(); err != nil {
					t.Errorf("client %d: final release: %v", id, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s := m.Stats()
	if s.Offered != s.Granted+s.Rejected+s.Cancelled {
		t.Errorf("counter identity broken: offered %d != granted %d + rejected %d + cancelled %d",
			s.Offered, s.Granted, s.Rejected, s.Cancelled)
	}
	if s.Granted != s.Released {
		t.Errorf("granted %d != released %d after full drain", s.Granted, s.Released)
	}
	if s.Active != 0 {
		t.Errorf("active = %d after full drain", s.Active)
	}
	if s.Utilization != 0 {
		t.Errorf("utilization = %v after full drain", s.Utilization)
	}
	if s.Offered == 0 || s.Granted == 0 {
		t.Fatalf("degenerate run: %+v", s)
	}
	if s.EpochSize.N == 0 || s.EpochSize.Mean <= 1 {
		t.Errorf("no epoch batching observed: %+v", s.EpochSize)
	}

	j.mu.Lock()
	events := j.events
	j.mu.Unlock()
	replay(t, tree, events)
}

// TestUnroutable saturates the two upward channels of one level-0 switch
// in FT(2,2) and checks the third circuit is denied with a typed error,
// then becomes routable again after a release.
func TestUnroutable(t *testing.T) {
	tree := topology.MustNew(2, 2, 2)
	m, err := New(Config{Tree: tree, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	ctx := context.Background()

	// Nodes 2 and 3 share level-0 switch 1, which has w=2 upward links.
	h1, err := m.Connect(ctx, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Connect(ctx, 3, 1); err != nil {
		t.Fatal(err)
	}
	_, err = m.Connect(ctx, 2, 0)
	if !errors.Is(err, ErrUnroutable) {
		t.Fatalf("saturated connect: got %v, want ErrUnroutable", err)
	}
	var ue *UnroutableError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v is not *UnroutableError", err)
	}
	if ue.FailLevel != 0 {
		t.Errorf("FailLevel = %d, want 0", ue.FailLevel)
	}
	if err := m.Release(h1); err != nil {
		t.Fatal(err)
	}
	h3, err := m.Connect(ctx, 2, 0)
	if err != nil {
		t.Fatalf("connect after release: %v", err)
	}
	if err := h3.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelWhileQueued cancels a request parked in an unflushable epoch
// and checks it leaves the queue as cancelled, not granted.
func TestCancelWhileQueued(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 64, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.Connect(ctx, 0, 5)
		errc <- err
	}()
	waitFor(t, func() bool { return m.Stats().QueueDepth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled connect returned %v", err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Offered != 1 || s.Cancelled != 1 || s.Granted != 0 {
		t.Errorf("counters after cancel: %+v", s)
	}
	if s.Utilization != 0 {
		t.Errorf("cancelled request left utilization %v", s.Utilization)
	}
}

// gatedScheduler blocks its first Schedule call until released, letting
// tests hold the flusher (and the manager lock) mid-epoch.
type gatedScheduler struct {
	inner    core.Scheduler
	entered  chan struct{}
	released chan struct{}
	once     sync.Once
}

func newGatedScheduler() *gatedScheduler {
	return &gatedScheduler{
		inner:    &core.LevelWise{Opts: core.Options{Rollback: true}},
		entered:  make(chan struct{}),
		released: make(chan struct{}),
	}
}

func (g *gatedScheduler) Name() string { return "gated/" + g.inner.Name() }

func (g *gatedScheduler) Schedule(st *linkstate.State, reqs []core.Request) *core.Result {
	g.once.Do(func() {
		close(g.entered)
		<-g.released
	})
	return g.inner.Schedule(st, reqs)
}

// TestAdmitTimeout parks a request in an unflushable epoch and checks
// the configured admission timeout pulls it out as cancelled.
func TestAdmitTimeout(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 4, MaxWait: time.Hour, AdmitTimeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Connect(context.Background(), 0, 5); !errors.Is(err, ErrAdmitTimeout) {
		t.Fatalf("parked connect: got %v, want ErrAdmitTimeout", err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Offered != 1 || s.Cancelled != 1 || s.Granted != 0 {
		t.Errorf("counters after admit timeout: %+v", s)
	}
}

// TestBackpressureOverflow fills the one-slot queue while the flusher is
// stuck mid-epoch and checks a further request blocks in backpressure
// until its context expires, counted as overflow (never offered).
func TestBackpressureOverflow(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	gate := newGatedScheduler()
	m, err := New(Config{Tree: tree, Scheduler: gate, BatchSize: 1, MaxWait: time.Hour, QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	go func() { // A: claimed immediately (BatchSize 1), stuck at the gate
		_, err := m.Connect(context.Background(), 0, 5)
		errc <- err
	}()
	<-gate.entered
	go func() { // B: takes the freed queue slot, blocks on the epoch lock
		_, err := m.Connect(context.Background(), 1, 6)
		errc <- err
	}()
	waitFor(t, func() bool { return m.freeSlots.Load() == 0 })
	// C: no slot available and the flusher is stuck — backpressure until
	// the context deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if _, err := m.Connect(ctx, 2, 7); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("backpressured connect: got %v, want deadline exceeded", err)
	}
	close(gate.released)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Errorf("parked connect: %v", err)
		}
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	if s.Offered != 2 || s.Granted != 2 {
		t.Errorf("counters: %+v", s)
	}
}

// TestCloseDrains parks several requests in an unflushable epoch and
// checks Close grants them all before shutting down.
func TestCloseDrains(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 100, MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const parked = 5
	errc := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func(i int) {
			h, err := m.Connect(context.Background(), i, 32+i)
			if err == nil {
				err = h.Release()
			}
			errc <- err
		}(i)
	}
	waitFor(t, func() bool { return m.Stats().QueueDepth == parked })
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parked; i++ {
		if err := <-errc; err != nil {
			t.Errorf("parked connect %d: %v", i, err)
		}
	}
	if _, err := m.Connect(context.Background(), 0, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("connect after close: got %v, want ErrClosed", err)
	}
	s := m.Stats()
	if s.Offered != parked || s.Granted != parked {
		t.Errorf("drain counters: %+v", s)
	}
	if s.Epochs != 1 {
		t.Errorf("drain used %d epochs, want 1", s.Epochs)
	}
}

// TestNoRollbackSchedulerRetainsNothing runs a no-rollback Level-wise
// scheduler at saturating load and checks rejected requests leak no
// channels: after releasing every grant, utilization returns to zero.
func TestNoRollbackSchedulerRetainsNothing(t *testing.T) {
	tree := topology.MustNew(3, 2, 2)
	m, err := New(Config{Tree: tree, Scheduler: core.NewLevelWise(), BatchSize: 4, MaxWait: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var held []*Handle
	rejected := 0
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				h, err := m.Connect(context.Background(), r.Intn(tree.Nodes()), r.Intn(tree.Nodes()))
				mu.Lock()
				if err != nil {
					rejected++
				} else {
					held = append(held, h)
					if len(held) > 6 { // keep the small tree saturated
						old := held[0]
						held = held[1:]
						mu.Unlock()
						if err := old.Release(); err != nil {
							t.Errorf("release: %v", err)
						}
						continue
					}
				}
				mu.Unlock()
			}
		}(int64(rng.Int()))
	}
	wg.Wait()
	for _, h := range held {
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Rejected == 0 {
		t.Fatalf("workload never saturated FT(3,2): %+v", s)
	}
	if s.Utilization != 0 {
		t.Errorf("no-rollback rejections leaked channels: utilization %v", s.Utilization)
	}
}

// TestConnectValidation covers bad endpoints and double release.
func TestConnectValidation(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if _, err := m.Connect(context.Background(), -1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := m.Connect(context.Background(), 0, tree.Nodes()); err == nil {
		t.Error("out-of-range dst accepted")
	}
	h, err := m.Connect(context.Background(), 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(h); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(h); !errors.Is(err, ErrReleased) {
		t.Errorf("double release: got %v, want ErrReleased", err)
	}
	if err := m.Release(nil); err == nil {
		t.Error("nil handle accepted")
	}
	s := m.Stats()
	if s.Offered != 1 {
		t.Errorf("validation failures were counted offered: %+v", s)
	}
}

// TestSameSwitchGrant covers H==0 requests: granted without links.
func TestSameSwitchGrant(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	m, err := New(Config{Tree: tree, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	h, err := m.Connect(context.Background(), 0, 1) // same level-0 switch
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Ports()) != 0 {
		t.Errorf("H=0 grant has ports %v", h.Ports())
	}
	if u := m.Stats().Utilization; u != 0 {
		t.Errorf("H=0 grant consumed links: utilization %v", u)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestNewValidation covers config defaulting and errors.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil tree accepted")
	}
	tree := topology.MustNew(2, 2, 2)
	m, err := New(Config{Tree: tree, BatchSize: 8, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	if m.cfg.QueueLimit != 8 {
		t.Errorf("QueueLimit = %d, want raised to BatchSize 8", m.cfg.QueueLimit)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
