package fabric

// Fault injection and connection repair. Failing a component masks its
// channels in the link state (so subsequent epochs schedule around it),
// finds every granted connection whose recorded route crosses it by
// replaying the Theorem 2 walk with a topology.RouteCursor, and revokes
// them: healthy channels return to the fabric immediately, and each
// stranded connection re-enters the normal epoch queue as a repair
// ticket. Repairs retry with exponential backoff up to
// Config.RepairRetries times before the handle dies with
// ErrUnroutableDegraded. Repair reverses faults; already-revoked
// connections finish their repair on the healed fabric.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Fail applies a fault set to the fabric: masks every named channel,
// revokes the granted connections whose routes cross a newly failed
// channel, and queues them for repair. It returns the number of
// channels newly taken out of service and the number of connections
// revoked. Failing an already-failed channel is a no-op.
func (m *Manager) Fail(fs *faults.FaultSet) (failed, revoked int, err error) {
	if err := fs.Validate(m.cfg.Tree); err != nil {
		return 0, 0, err
	}
	chans := fs.Channels(m.cfg.Tree)
	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		return 0, 0, ErrClosed
	}
	// Retire parked releases before the revoke walk so an already-
	// released connection is not revoked into a pointless repair, and
	// settle staged departures while their channels are still healthy —
	// those releases happened logically before this fault.
	m.drainReleasesLocked()
	m.applyDeparturesLocked()
	now := time.Now()
	damping := m.dampingLocked()
	if damping {
		m.settleQuarantineLocked(now)
	}
	fresh := make(map[faults.Channel]struct{}, len(chans))
	for _, c := range chans {
		if _, already := m.failed[c]; already {
			continue
		}
		_, wasQuar := m.quar[c]
		if damping {
			m.noteFlapLocked(c, now)
		}
		if wasQuar {
			// Already masked by quarantine: no connection can be crossing
			// it and no capacity is newly lost. Record the fault (Faults
			// and Repair track it) without the revoke walk.
			m.failed[c] = struct{}{}
			continue
		}
		m.st.FailLink(c.Dir, c.Level, c.Switch, c.Port)
		m.failed[c] = struct{}{}
		fresh[c] = struct{}{}
		failed++
	}
	if len(fresh) > 0 {
		for h := range m.conns {
			// A handle whose owner released it concurrently (parked in
			// the ring after the drain above) is skipped: its channels
			// are returned by the fault-aware releaseRouteLocked walk at
			// the next drain, not by a repair it no longer wants.
			if h.state.Load() == handleActive && !h.released.Load() && m.routeCrossesLocked(h, fresh) {
				m.revokeLocked(h)
				revoked++
			}
		}
	}
	m.publishStatsLocked()
	m.mu.Unlock()
	if revoked > 0 {
		m.wake() // repair tickets are waiting for the next epoch
	}
	return failed, revoked, nil
}

// FailLink fails one link's channels (dir faults.Both for the whole
// physical link) and returns the number of connections revoked.
func (m *Manager) FailLink(level, sw, port int, dir faults.Direction) (int, error) {
	_, revoked, err := m.Fail(&faults.FaultSet{Links: []faults.LinkFault{
		{Level: level, Switch: sw, Port: port, Direction: dir},
	}})
	return revoked, err
}

// FailSwitch fails a whole switch — every incident link, both sides —
// and returns the number of connections revoked.
func (m *Manager) FailSwitch(level, sw int) (int, error) {
	_, revoked, err := m.Fail(&faults.FaultSet{Switches: []faults.SwitchFault{
		{Level: level, Switch: sw},
	}})
	return revoked, err
}

// Repair returns a fault set's channels to service. Channels of the set
// that are not currently failed are skipped; it returns the number
// actually repaired. Connections revoked by the fault stay in the
// repair loop and will be re-admitted by an upcoming epoch.
func (m *Manager) Repair(fs *faults.FaultSet) (int, error) {
	if err := fs.Validate(m.cfg.Tree); err != nil {
		return 0, err
	}
	chans := fs.Channels(m.cfg.Tree)
	m.mu.Lock()
	m.settleQuarantineLocked(time.Now())
	repaired := 0
	for _, c := range chans {
		if _, bad := m.failed[c]; !bad {
			continue
		}
		delete(m.failed, c)
		if _, q := m.quar[c]; q {
			continue // quarantine owns the mask; probation releases it
		}
		m.st.RepairLink(c.Dir, c.Level, c.Switch, c.Port)
		repaired++
	}
	m.publishStatsLocked()
	m.mu.Unlock()
	if repaired > 0 {
		m.wake()
	}
	return repaired, nil
}

// RepairAll heals every outstanding fault and reports how many
// channels returned to service. Quarantined channels are healed as
// faults but stay masked until their probation passes (ClearQuarantine
// overrides); they are not counted.
func (m *Manager) RepairAll() int {
	m.mu.Lock()
	m.settleQuarantineLocked(time.Now())
	repaired := 0
	for c := range m.failed {
		delete(m.failed, c)
		if _, q := m.quar[c]; q {
			continue // stays masked until its probation passes
		}
		m.st.RepairLink(c.Dir, c.Level, c.Switch, c.Port)
		repaired++
	}
	m.publishStatsLocked()
	m.mu.Unlock()
	if repaired > 0 {
		m.wake()
	}
	return repaired
}

// Faults returns the current fault set in canonical form: one LinkFault
// per failed link, direction Both when both channels are down,
// deterministically ordered. (Switch faults are reported as their
// expanded links; the fabric tracks channels, not causes.)
func (m *Manager) Faults() *faults.FaultSet {
	m.mu.Lock()
	type link struct{ level, sw, port int }
	dirs := make(map[link]int) // bit 0: up failed, bit 1: down failed
	for c := range m.failed {
		bit := 1
		if c.Dir == linkstate.Down {
			bit = 2
		}
		dirs[link{c.Level, c.Switch, c.Port}] |= bit
	}
	m.mu.Unlock()
	fs := &faults.FaultSet{}
	for l, d := range dirs {
		lf := faults.LinkFault{Level: l.level, Switch: l.sw, Port: l.port}
		switch d {
		case 1:
			lf.Direction = faults.Up
		case 2:
			lf.Direction = faults.Down
		}
		fs.Links = append(fs.Links, lf)
	}
	sort.Slice(fs.Links, func(i, j int) bool {
		a, b := fs.Links[i], fs.Links[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		return a.Port < b.Port
	})
	return fs
}

// routeCrossesLocked reports whether h's recorded route uses any channel
// in bad, by replaying the σ/δ lockstep climb. Caller holds m.mu.
func (m *Manager) routeCrossesLocked(h *Handle, bad map[faults.Channel]struct{}) bool {
	var c topology.RouteCursor
	c.Start(m.cfg.Tree, h.src, h.dst)
	crosses := false
	c.Walk(h.ports, func(level, sigma, delta, port int) {
		if _, hit := bad[faults.Channel{Dir: linkstate.Up, Level: level, Switch: sigma, Port: port}]; hit {
			crosses = true
		}
		if _, hit := bad[faults.Channel{Dir: linkstate.Down, Level: level, Switch: delta, Port: port}]; hit {
			crosses = true
		}
	})
	return crosses
}

// revokeLocked tears down a connection stranded by a fault: its healthy
// channels return to the fabric (failed ones are already dead in the
// mask and must not be resurrected), the handle enters the repair
// state, and a repair ticket joins the epoch queue. Caller holds m.mu.
func (m *Manager) revokeLocked(h *Handle) {
	if m.cfg.Trace != nil {
		m.cfg.Trace(Event{Kind: EventRevoke, Src: h.src, Dst: h.dst, Ports: h.ports, FailLevel: -1})
	}
	if m.inc != nil {
		// Delta mode: the revoked route departs through the same staged
		// path a Release takes, so the next delta epoch tears it down
		// (fault-aware) right before it schedules the repair ticket.
		// Ownership of the ports slice transfers to the buffer.
		m.depbuf = append(m.depbuf, core.Departure{Src: h.src, Dst: h.dst, Ports: h.ports})
		h.ports = nil
	} else {
		core.ReleaseSurviving(m.st, h.src, h.dst, h.ports, nil)
		if len(h.ports) > 0 {
			m.tornSinceEpoch++
			m.tornRoutes.Add(1)
		}
		h.ports = h.ports[:0]
	}
	h.state.Store(handleRepairing)
	h.attempts = 0
	h.revokedAt = time.Now()
	m.revoked.Add(1)
	m.active.Add(-1)
	m.pendingRepairs.Add(1)
	t := &ticket{req: core.Request{Src: h.src, Dst: h.dst}, enq: time.Now(), h: h}
	m.qmu.Lock()
	if len(m.pending) == 0 {
		m.oldest = t.enq
	}
	m.pending = append(m.pending, t)
	m.qdepth.Store(int64(len(m.pending)))
	m.qmu.Unlock()
}

// repairVerdictLocked applies one epoch's outcome to a repair ticket.
// On a grant the scheduler has already allocated the new route in m.st;
// the handle returns to active on it. On a denial the ticket either
// re-queues after an exponential backoff or — once Config.RepairRetries
// attempts are spent, or during shutdown — the handle dies. Caller
// holds m.mu (flushLocked).
func (m *Manager) repairVerdictLocked(t *ticket, o *core.Outcome, epoch uint64) {
	h := t.h
	m.repairAttempts.Add(1)
	if o.Granted {
		h.ports = append(h.ports[:0], o.Ports...)
		h.state.Store(handleActive)
		m.repaired.Add(1)
		if m.repairOnHeldTrunkLocked(h.src, h.dst, h.ports) {
			m.repairedOnHeldTrunk.Add(1)
		}
		m.active.Add(1)
		m.pendingRepairs.Add(-1)
		if m.cfg.Trace != nil {
			m.cfg.Trace(Event{Kind: EventRepair, Src: h.src, Dst: h.dst, Ports: o.Ports, FailLevel: -1, Epoch: epoch})
		}
		m.repairLat.add(float64(time.Since(h.revokedAt)) / float64(time.Millisecond))
		m.repairDepth.add(float64(h.attempts + 1))
		return
	}
	if len(o.Ports) > 0 {
		m.releaseRetainedLocked(o)
	}
	h.attempts++
	if m.closed.Load() {
		m.killRepairLocked(h, fmt.Errorf("fabric: repair aborted: %w", ErrClosed), &m.repairAborted)
		return
	}
	if h.attempts >= m.cfg.RepairRetries {
		m.killRepairLocked(h, fmt.Errorf("%w: %d→%d after %d attempts (first conflict at level %d)",
			ErrUnroutableDegraded, h.src, h.dst, h.attempts, o.FailLevel), &m.repairFailed)
		return
	}
	// Exponential backoff before the next attempt; the timer re-enqueues
	// the same ticket. Shutdown and owner Release both invalidate the
	// handle's repairing state, which the timer checks before queuing.
	delay := m.cfg.RepairBackoff << (h.attempts - 1)
	time.AfterFunc(delay, func() { m.requeueRepair(t) })
}

// killRepairLocked retires a repairing handle with a terminal error,
// bumping the given outcome counter. Caller holds m.mu. The
// OnConnTerminal hook fires on its own goroutine so it can call back
// into the manager (or another plane's) without deadlocking; it fires
// only here — every terminal repair verdict funnels through this
// function, and owner-initiated releases never do.
func (m *Manager) killRepairLocked(h *Handle, cause error, counter interface{ Add(uint64) uint64 }) {
	h.state.Store(handleDead)
	h.repairErr = cause
	delete(m.conns, h)
	m.pendingRepairs.Add(-1)
	counter.Add(1)
	if m.cfg.OnConnTerminal != nil {
		go m.cfg.OnConnTerminal(h, cause)
	}
}

// requeueRepair is the backoff timer's continuation: it puts the repair
// ticket back in the epoch queue, unless the handle stopped repairing
// (owner released it) or the manager is shutting down, in which case
// the repair ends here. The re-enqueue draws one token from the global
// retry budget; an empty bucket defers the retry until a token accrues
// — delayed, never dropped, and the deferral does not consume one of
// the handle's RepairRetries attempts.
func (m *Manager) requeueRepair(t *ticket) {
	m.mu.Lock()
	h := t.h
	if h.state.Load() != handleRepairing {
		m.mu.Unlock() // released by its owner mid-backoff; already retired
		return
	}
	if m.closed.Load() {
		m.killRepairLocked(h, fmt.Errorf("fabric: repair aborted: %w", ErrClosed), &m.repairAborted)
		m.mu.Unlock()
		return
	}
	now := time.Now()
	if !m.budget.take(now) {
		wait := m.budget.wait()
		m.mu.Unlock()
		m.repairBudgetExhausted.Add(1)
		time.AfterFunc(wait, func() { m.requeueRepair(t) })
		return
	}
	t.enq = now
	m.qmu.Lock()
	if len(m.pending) == 0 {
		m.oldest = t.enq
	}
	m.pending = append(m.pending, t)
	m.qdepth.Store(int64(len(m.pending)))
	m.qmu.Unlock()
	m.mu.Unlock()
	m.wake()
}

// FaultCount returns the number of currently failed channels.
func (m *Manager) FaultCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.failed)
}
