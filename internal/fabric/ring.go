package fabric

// Lock-decoupled hot-path structures. The release ring keeps Release
// off the manager mutex entirely: an owner parks its handle with one
// CAS and the flusher retires it at the next epoch boundary, where the
// freed channels are visible to the very next scheduling pass. The
// sharded histogram rings keep stats recording and the Stats snapshot
// from serializing against each other: recording locks one stripe, and
// the expensive percentile pass runs outside every lock.

import (
	"sync"
	"sync/atomic"
)

// releaseRing is a bounded multi-producer single-consumer queue of
// released handles. Producers (the Release fast path) claim a slot with
// one CAS on tail and publish the handle pointer into it; the single
// consumer — whoever holds the consumer lock (m.mu inside
// drainReleasesLocked by default, m.drmu when the dedicated drain
// worker is on) — pops until it reaches an empty slot or one a producer
// has claimed but not yet published (that slot is simply picked up by a
// later drain). A full ring fails the push and the caller falls back to
// the synchronous release path, so the ring never blocks and never
// drops a handle.
type releaseRing struct {
	mask uint64
	head atomic.Uint64 // consumer cursor; advanced only under the consumer lock
	tail atomic.Uint64 // producer cursor
	slot []atomic.Pointer[Handle]
}

// newReleaseRing rounds the capacity up to a power of two so the slot
// index is a mask, not a modulo.
func newReleaseRing(capacity int) *releaseRing {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &releaseRing{mask: uint64(size - 1), slot: make([]atomic.Pointer[Handle], size)}
}

// push claims a slot and publishes h, reporting false when the ring is
// full. The claimed slot is always clean: head only advances past slots
// the consumer has already nilled, and the full check keeps tail within
// one lap of head.
func (r *releaseRing) push(h *Handle) bool {
	for {
		tail := r.tail.Load()
		if tail-r.head.Load() > r.mask {
			return false
		}
		if r.tail.CompareAndSwap(tail, tail+1) {
			r.slot[tail&r.mask].Store(h)
			return true
		}
	}
}

// pop returns the next published handle, or nil when the ring is empty
// or the next slot is claimed but not yet published. Single consumer:
// callers hold the consumer lock (m.mu, or m.drmu under DrainWorker).
func (r *releaseRing) pop() *Handle {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	s := &r.slot[head&r.mask]
	h := s.Load()
	if h == nil {
		return nil // producer mid-publish; the next drain gets it
	}
	s.Store(nil)
	r.head.Store(head + 1)
	return h
}

// histShards is the stripe count of a shardedRing. Four stripes are
// plenty: the writers are the flusher and the repair verdicts, and the
// point is that a Stats snapshot never holds more than one stripe at a
// time.
const histShards = 4

// shardedRing is a sample distribution striped across histShards
// independently locked rings. add locks one stripe chosen round-robin;
// snapshot copies stripes one at a time, so summarizing (sorting,
// percentiles) in distOf happens outside every lock and recording is
// never blocked behind a slow snapshot.
type shardedRing struct {
	next  atomic.Uint64
	shard [histShards]struct {
		mu sync.Mutex
		r  ring
	}
}

// newShardedRing splits the capacity evenly across the stripes.
func newShardedRing(capacity int) *shardedRing {
	s := &shardedRing{}
	per := (capacity + histShards - 1) / histShards
	for i := range s.shard {
		s.shard[i].r = newRing(per)
	}
	return s
}

// add records one observation in the next stripe.
func (s *shardedRing) add(x float64) {
	sh := &s.shard[s.next.Add(1)%histShards]
	sh.mu.Lock()
	sh.r.add(x)
	sh.mu.Unlock()
}

// snapshot merges the retained samples of every stripe. The merged
// order is not chronological; distOf sorts where order matters.
func (s *shardedRing) snapshot() []float64 {
	var out []float64
	for i := range s.shard {
		sh := &s.shard[i]
		sh.mu.Lock()
		out = append(out, sh.r.samples()...)
		sh.mu.Unlock()
	}
	return out
}
