package fabric

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// TestGrayChaosFlapDamping is the gray-failure acceptance chaos test
// (ci runs it under -race -count=2): concurrent connect/release churn
// while a seeded set of flaky links flaps through a damping-enabled
// manager. The flap-damping invariant: however the quarantine decides
// to absorb the churn, the repair accounting still balances exactly —
// revoked == repaired + repair_failed + repair_aborted — and after
// healing, RepairAll, and a full drain the link state is exactly
// all-free minus the quarantined masks.
func TestGrayChaosFlapDamping(t *testing.T) {
	tree := topology.MustNew(3, 4, 2)
	cfg := Config{
		Tree:          tree,
		BatchSize:     8,
		MaxWait:       500 * time.Microsecond,
		AdmitTimeout:  50 * time.Millisecond,
		RepairBackoff: 500 * time.Microsecond,
		RepairRetries: 3,
		// Aggressive damping so the quarantine actually engages: a few
		// flaps quarantine a channel, and the long probation keeps it
		// masked through the final identity check below.
		FlapThreshold:       3,
		FlapHalfLife:        time.Minute,
		QuarantineProbation: time.Hour,
		RepairBudget:        Budget{Rate: 2000, Burst: 64},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu      sync.Mutex
		held    []*Handle
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		workers = 4
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var local []*Handle
			defer func() {
				mu.Lock()
				held = append(held, local...)
				mu.Unlock()
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if len(local) > 6 || (len(local) > 0 && rng.Intn(3) == 0) {
					i := rng.Intn(len(local))
					h := local[i]
					local = append(local[:i], local[i+1:]...)
					_ = h.Release()
					continue
				}
				h, err := m.Connect(context.Background(), rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes()))
				if err == nil {
					local = append(local, h)
				}
			}
		}(int64(w + 1))
	}

	// Flaky churn: each selected link is down half the steps, so it
	// transitions roughly every other step — worst-case flap pressure.
	fl := faults.NewFlapper(faults.FlakyLinks(tree, 0.08, 0.5, 1))
	if len(fl.Procs()) == 0 {
		t.Fatal("flaky generator selected no links")
	}
	for i := 0; i < 300; i++ {
		fail, repair := fl.Step()
		if fail != nil {
			if _, _, err := m.Fail(fail); err != nil {
				t.Fatal(err)
			}
		}
		if repair != nil {
			if _, err := m.Repair(repair); err != nil {
				t.Fatal(err)
			}
		}
		if i%25 == 24 {
			time.Sleep(time.Millisecond) // let the repair loop breathe
		}
	}
	// Heal the processes' final down set; quarantined masks stay.
	if ds := fl.DownSet(); !ds.Empty() {
		if _, err := m.Repair(ds); err != nil {
			t.Fatal(err)
		}
	}

	close(stop)
	wg.Wait()
	for _, h := range held {
		_ = h.Release()
	}
	m.RepairAll()
	waitFor(t, func() bool {
		s := m.Stats()
		return s.PendingRepairs == 0 && s.QueueDepth == 0
	})

	s := m.Stats()
	if s.Revoked != s.Repaired+s.RepairFailed+s.RepairAborted {
		t.Fatalf("repair accounting leak under flaky churn: revoked %d != repaired %d + failed %d + aborted %d",
			s.Revoked, s.Repaired, s.RepairFailed, s.RepairAborted)
	}
	if s.Active != 0 {
		t.Fatalf("%d connections still active after releasing every handle", s.Active)
	}
	if s.FlapEvents == 0 {
		t.Fatal("no flap events recorded under flaky churn")
	}
	if s.QuarantineEvents == 0 || s.Quarantined == 0 {
		t.Fatalf("damping never quarantined: events=%d quarantined=%d (threshold %v should have tripped)",
			s.QuarantineEvents, s.Quarantined, cfg.FlapThreshold)
	}

	// All-free minus quarantined: every fault is healed, so the only
	// masks left are the quarantine's (probation is an hour out).
	if fc := m.FaultCount(); fc != 0 {
		t.Fatalf("%d channels still failed after heal + RepairAll", fc)
	}
	want := linkstate.New(tree)
	quar := m.Quarantined()
	for _, c := range quar {
		want.FailLink(c.Dir, c.Level, c.Switch, c.Port)
	}
	m.mu.Lock()
	equal := m.st.Equal(want)
	occupied := m.st.OccupiedCount()
	m.mu.Unlock()
	if occupied != 0 {
		t.Fatalf("%d channels still occupied after drain", occupied)
	}
	if !equal {
		t.Fatalf("drained state differs from all-free-minus-quarantined (%d quarantined)", len(quar))
	}

	// The operator override releases everything; the fabric is pristine.
	if got := m.ClearQuarantine(); got != len(quar) {
		t.Fatalf("ClearQuarantine released %d, want %d", got, len(quar))
	}
	m.mu.Lock()
	pristine := m.st.Equal(linkstate.New(tree))
	m.mu.Unlock()
	if !pristine {
		t.Fatal("state not all-free after ClearQuarantine")
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineLifecycle walks one channel through the damper: flaps
// below the threshold leave it alone, the crossing flap quarantines it
// (masked but not failed), repair hands the mask to the quarantine, and
// probation expiry returns it to service on its own.
func TestQuarantineLifecycle(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	// 2.5, not 3: the score decays (fractionally) between flaps, so an
	// exact integer threshold would need the clock to stand still.
	cfg.FlapThreshold = 2.5
	cfg.FlapHalfLife = time.Minute // no meaningful decay within the test
	cfg.QuarantineProbation = 30 * time.Millisecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	link := &faults.FaultSet{Links: []faults.LinkFault{{Level: 0, Switch: 0, Port: 0, Direction: faults.Up}}}
	flap := func() {
		t.Helper()
		if _, _, err := m.Fail(link); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Repair(link); err != nil {
			t.Fatal(err)
		}
	}

	flap()
	flap()
	if s := m.Stats(); s.Quarantined != 0 || s.QuarantineEvents != 0 {
		t.Fatalf("quarantined below threshold: %+v", s)
	}
	if s := m.Stats(); s.FlapEvents != 2 {
		t.Fatalf("FlapEvents = %d after 2 flaps, want 2", s.FlapEvents)
	}

	// The third down-transition crosses the threshold mid-Fail: the
	// channel is both failed and quarantined. The paired Repair heals
	// the fault but the quarantine keeps the mask.
	flap()
	s := m.Stats()
	if s.QuarantineEvents != 1 || s.Quarantined != 1 {
		t.Fatalf("threshold crossing: events=%d quarantined=%d, want 1/1", s.QuarantineEvents, s.Quarantined)
	}
	if s.FaultyChannels != 0 {
		t.Fatalf("repaired channel still counted failed: %+v", s)
	}
	if s.DegradedCapacity >= 1 {
		t.Fatalf("quarantine mask not reflected in capacity: %v", s.DegradedCapacity)
	}
	q := m.Quarantined()
	if len(q) != 1 || q[0] != (faults.Channel{Dir: linkstate.Up, Level: 0, Switch: 0, Port: 0}) {
		t.Fatalf("Quarantined() = %v", q)
	}

	// Probation passes without another flap: the channel returns to
	// service by itself (timer continuation; no API call required).
	waitFor(t, func() bool { return m.Stats().Quarantined == 0 })
	if s := m.Stats(); s.DegradedCapacity != 1 {
		t.Fatalf("capacity after probation: %v, want 1.0", s.DegradedCapacity)
	}

	// Scores persist (long half-life): one more flap re-quarantines
	// immediately, and ClearQuarantine both releases it and forgets the
	// score, so the next flap is counted from zero again.
	flap()
	if s := m.Stats(); s.Quarantined != 1 || s.QuarantineEvents != 2 {
		t.Fatalf("re-quarantine: %+v", s)
	}
	if got := m.ClearQuarantine(); got != 1 {
		t.Fatalf("ClearQuarantine = %d, want 1", got)
	}
	flap()
	if s := m.Stats(); s.Quarantined != 0 {
		t.Fatal("flap after score reset must not quarantine")
	}
}

// TestQuarantineSurvivesFailWhileQuarantined pins the mask handoff: a
// channel that fails while quarantined is recorded as a fault without a
// second revoke walk, and repairing it hands the mask back to the
// quarantine rather than lifting it.
func TestQuarantineSurvivesFailWhileQuarantined(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	cfg.FlapThreshold = 1 // first flap quarantines
	cfg.QuarantineProbation = time.Hour
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	link := &faults.FaultSet{Links: []faults.LinkFault{{Level: 0, Switch: 1, Port: 2, Direction: faults.Down}}}
	if _, _, err := m.Fail(link); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Quarantined != 1 || s.FaultyChannels != 1 {
		t.Fatalf("after quarantining fail: %+v", s)
	}
	// Fail again while quarantined and still failed: no-op (already
	// failed). Repair, then fail a third time while only quarantined:
	// the channel records as failed again with no state flip.
	if _, err := m.Repair(link); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.FaultyChannels != 0 || s.Quarantined != 1 {
		t.Fatalf("after repair of quarantined: %+v", s)
	}
	failed, _, err := m.Fail(link)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("fail of quarantined channel counted %d fresh failures, want 0 (already masked)", failed)
	}
	if s := m.Stats(); s.FaultyChannels != 1 {
		t.Fatalf("quarantined channel not recorded failed: %+v", s)
	}
	// ClearQuarantine must NOT unmask it — the fault still owns it.
	if got := m.ClearQuarantine(); got != 0 {
		t.Fatalf("ClearQuarantine released %d failed channels, want 0", got)
	}
	if s := m.Stats(); s.FaultyChannels != 1 || s.DegradedCapacity >= 1 {
		t.Fatalf("failed channel unmasked by ClearQuarantine: %+v", s)
	}
	if _, err := m.Repair(link); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.DegradedCapacity != 1 {
		t.Fatalf("final repair did not restore capacity: %+v", s)
	}
}

// TestRepairBudgetBoundsRetries isolates a source switch so repairs can
// only fail, under a deliberately tiny retry budget: every retry pays a
// token, exhaustion defers (never drops) the retry, and total
// scheduling attempts stay under revoked + burst + rate·elapsed.
func TestRepairBudgetBoundsRetries(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	cfg := fastRepair(tree)
	cfg.RepairBackoff = 200 * time.Microsecond
	cfg.RepairRetries = 4
	cfg.RepairBudget = Budget{Rate: 30, Burst: 1}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	start := time.Now()
	var handles []*Handle
	for i := 0; i < 3; i++ {
		h, err := m.Connect(context.Background(), i, tree.Nodes()-1)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	revoked := isolate(t, m)
	if revoked != 3 {
		t.Fatalf("isolating revoked %d, want 3", revoked)
	}
	// All three tickets must still reach their terminal verdict — the
	// budget delays retries, it never drops them.
	waitFor(t, func() bool { return m.Stats().RepairFailed == uint64(revoked) })
	elapsed := time.Since(start)

	s := m.Stats()
	if s.RepairBudgetExhausted == 0 {
		t.Fatalf("budget of %v never exhausted across %d attempts", cfg.RepairBudget, s.RepairAttempts)
	}
	// Expected attempts: 3 tickets × (1 free + RepairRetries-1 retries).
	wantAttempts := uint64(revoked * cfg.RepairRetries)
	if s.RepairAttempts != wantAttempts {
		t.Fatalf("RepairAttempts = %d, want %d", s.RepairAttempts, wantAttempts)
	}
	// The hard bound the budget guarantees (with slack for the time the
	// final waitFor poll added after the last attempt).
	bound := float64(revoked) + float64(cfg.RepairBudget.Burst) + cfg.RepairBudget.Rate*elapsed.Seconds() + 1
	if float64(s.RepairAttempts) > bound {
		t.Fatalf("attempts %d exceed budget bound %.1f (revoked %d, burst %d, rate %v, elapsed %v)",
			s.RepairAttempts, bound, revoked, cfg.RepairBudget.Burst, cfg.RepairBudget.Rate, elapsed)
	}
	for _, h := range handles {
		_ = h.Release()
	}
}

// TestGrayZeroFlapGolden pins the opt-in contract: with no flapping and
// an ample budget, a damping-enabled manager is bit-identical to a
// default one — same granted routes, same counters, same final link
// state — under a deterministic sequential workload that includes a
// clean fault/repair cycle.
func TestGrayZeroFlapGolden(t *testing.T) {
	tree := topology.MustNew(3, 4, 2)
	base := Config{
		Tree:          tree,
		BatchSize:     1, // sequential admission: deterministic routes
		MaxWait:       time.Millisecond,
		RepairBackoff: 500 * time.Microsecond,
		RepairRetries: 4,
	}
	gray := base
	gray.FlapThreshold = 100 // enabled, but unreachable in this workload
	gray.FlapHalfLife = time.Second
	gray.QuarantineProbation = 10 * time.Millisecond
	gray.RepairBudget = Budget{Rate: 10000, Burst: 10000}

	run := func(cfg Config) (ports [][]int, s Stats, st *linkstate.State) {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var handles []*Handle
		for i := 0; i < 40; i++ {
			src := (i * 7) % tree.Nodes()
			dst := (i*13 + 5) % tree.Nodes()
			h, err := m.Connect(context.Background(), src, dst)
			if err != nil {
				continue // deterministic rejections are part of the trace
			}
			handles = append(handles, h)
		}
		// One clean fault with spare capacity: repairs succeed first try.
		fs := &faults.FaultSet{Links: []faults.LinkFault{{Level: 0, Switch: 0, Port: 0}}}
		if _, _, err := m.Fail(fs); err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool { return m.Stats().PendingRepairs == 0 })
		if _, err := m.Repair(fs); err != nil {
			t.Fatal(err)
		}
		for _, h := range handles {
			ports = append(ports, h.Ports())
		}
		for _, h := range handles {
			// A handle whose repair failed terminally reports its verdict
			// here; which handles those are is deterministic too.
			_ = h.Release()
		}
		waitFor(t, func() bool {
			s := m.Stats()
			return s.Active == 0 && s.QueueDepth == 0
		})
		s = m.Stats()
		m.mu.Lock()
		m.drainReleasesLocked()
		m.applyDeparturesLocked()
		st = m.st
		m.mu.Unlock()
		if err := m.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		return ports, s, st
	}

	basePorts, baseStats, baseState := run(base)
	grayPorts, grayStats, grayState := run(gray)

	if len(basePorts) != len(grayPorts) {
		t.Fatalf("grant count diverged: base %d, gray %d", len(basePorts), len(grayPorts))
	}
	for i := range basePorts {
		if len(basePorts[i]) != len(grayPorts[i]) {
			t.Fatalf("grant %d route length diverged: %v vs %v", i, basePorts[i], grayPorts[i])
		}
		for j := range basePorts[i] {
			if basePorts[i][j] != grayPorts[i][j] {
				t.Fatalf("grant %d route diverged: base %v, gray %v", i, basePorts[i], grayPorts[i])
			}
		}
	}
	type core struct {
		granted, rejected, revoked, repaired, failed, aborted uint64
		active                                                int64
		faulty                                                int
	}
	b := core{baseStats.Granted, baseStats.Rejected, baseStats.Revoked, baseStats.Repaired,
		baseStats.RepairFailed, baseStats.RepairAborted, baseStats.Active, baseStats.FaultyChannels}
	g := core{grayStats.Granted, grayStats.Rejected, grayStats.Revoked, grayStats.Repaired,
		grayStats.RepairFailed, grayStats.RepairAborted, grayStats.Active, grayStats.FaultyChannels}
	if b != g {
		t.Fatalf("counters diverged:\nbase %+v\ngray %+v", b, g)
	}
	// The gray arm must not have engaged any gray machinery.
	if grayStats.QuarantineEvents != 0 || grayStats.Quarantined != 0 || grayStats.RepairBudgetExhausted != 0 {
		t.Fatalf("gray machinery engaged on a clean workload: %+v", grayStats)
	}
	if !baseState.Equal(grayState) {
		t.Fatal("final link states diverged between default and damping-enabled managers")
	}
}

// TestGrayConfigValidation tables the Config combinations the gray
// fields accept and reject, and the defaults New normalizes into.
func TestGrayConfigValidation(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	mk := func(mut func(*Config)) (Config, error) {
		cfg := Config{Tree: tree}
		mut(&cfg)
		m, err := New(cfg)
		if err != nil {
			return Config{}, err
		}
		got := m.cfg
		m.Close(context.Background())
		return got, nil
	}

	for name, mut := range map[string]func(*Config){
		"negative threshold":        func(c *Config) { c.FlapThreshold = -1 },
		"negative half life":        func(c *Config) { c.FlapHalfLife = -time.Second },
		"negative probation":        func(c *Config) { c.QuarantineProbation = -time.Second },
		"burst with unlimited rate": func(c *Config) { c.RepairBudget = Budget{Rate: -1, Burst: 5} },
		"burst without rate":        func(c *Config) { c.RepairBudget = Budget{Rate: 0, Burst: 5} },
		"negative burst":            func(c *Config) { c.RepairBudget = Budget{Rate: 5, Burst: -1} },
	} {
		if _, err := mk(mut); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	got, err := mk(func(c *Config) {})
	if err != nil {
		t.Fatal(err)
	}
	if got.RepairBudget != (Budget{Rate: DefaultRepairBudgetRate, Burst: DefaultRepairBudgetBurst}) {
		t.Errorf("default budget = %+v", got.RepairBudget)
	}
	if got.FlapHalfLife != DefaultFlapHalfLife || got.QuarantineProbation != DefaultQuarantineProbation {
		t.Errorf("default durations = %v/%v", got.FlapHalfLife, got.QuarantineProbation)
	}
	if got.FlapThreshold != 0 {
		t.Errorf("damping must default off, got threshold %v", got.FlapThreshold)
	}

	got, err = mk(func(c *Config) { c.RepairBudget = Budget{Rate: -1} })
	if err != nil {
		t.Fatalf("unlimited budget rejected: %v", err)
	}
	if got.RepairBudget != (Budget{Rate: -1}) {
		t.Errorf("unlimited budget normalized to %+v", got.RepairBudget)
	}

	got, err = mk(func(c *Config) { c.RepairBudget = Budget{Rate: 5.5} })
	if err != nil {
		t.Fatalf("rate-only budget rejected: %v", err)
	}
	if got.RepairBudget.Burst != 6 {
		t.Errorf("rate-only burst = %d, want ceil(5.5) = 6", got.RepairBudget.Burst)
	}
}
