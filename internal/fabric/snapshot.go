package fabric

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/parsched"
	"repro/internal/stats"
)

// ring is a fixed-capacity sample buffer keeping the most recent
// observations; distributions in Stats summarize its contents.
type ring struct {
	buf  []float64
	n    int // valid samples
	next int // write cursor
}

func newRing(capacity int) ring { return ring{buf: make([]float64, capacity)} }

func (r *ring) add(x float64) {
	r.buf[r.next] = x
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// samples returns the retained observations, oldest first.
func (r *ring) samples() []float64 {
	out := make([]float64, r.n)
	if r.n < len(r.buf) {
		copy(out, r.buf[:r.n])
		return out
	}
	copy(out, r.buf[r.next:])
	copy(out[len(r.buf)-r.next:], r.buf[:r.next])
	return out
}

// Dist summarizes a sample distribution for Stats: the internal/stats
// Summary plus percentiles and an 8-bin histogram over [Min, Max].
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Hist   []int   `json:"hist,omitempty"`
}

func distOf(xs []float64) Dist {
	s := stats.Summarize(xs)
	d := Dist{N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max, StdDev: s.StdDev}
	if s.N > 0 {
		d.P50 = stats.Percentile(xs, 50)
		d.P95 = stats.Percentile(xs, 95)
		d.P99 = stats.Percentile(xs, 99)
	}
	if s.N > 1 && s.Max > s.Min {
		d.Hist = stats.Histogram(xs, s.Min, s.Max, 8)
	}
	return d
}

// Stats is a consistent observability snapshot of a Manager. The counter
// invariant is Offered == Granted + Rejected + Cancelled once the queue
// is drained; Overflow counts requests turned away before ever entering
// the queue by their own deadline (backpressure timeout or context
// cancel while blocked), DrainRefused requests turned away because the
// manager was draining — both are outside that identity.
type Stats struct {
	Offered   uint64 `json:"offered"`
	Granted   uint64 `json:"granted"`
	Rejected  uint64 `json:"rejected"`
	Cancelled uint64 `json:"cancelled"`
	Released  uint64 `json:"released"`
	Overflow  uint64 `json:"overflow"`
	// DrainRefused counts Connect calls refused with ErrDraining: the
	// shutdown-race exits previously folded into Overflow, now split out
	// so backpressure and drain refusals are separately attributable.
	DrainRefused uint64 `json:"drain_refused,omitempty"`
	Epochs       uint64 `json:"epochs"`
	// Active is the number of currently held (granted, unreleased)
	// connections; QueueDepth the requests waiting for the next epoch.
	Active     int64 `json:"active"`
	QueueDepth int   `json:"queue_depth"`
	// Utilization is occupied channels / total channels on the live state.
	Utilization float64 `json:"utilization"`
	// Occupancy is the live occupied-channel count from the link state's
	// O(1) gauge (the least-loaded plane-selection signal); ChannelAllocs
	// is the cumulative number of channel allocations ever performed.
	Occupancy     int64  `json:"occupancy"`
	ChannelAllocs uint64 `json:"channel_allocs"`
	// EpochSize and EpochLatencyMS summarize the last ≤4096 epochs; epoch
	// latency is measured from the oldest member's enqueue to its verdict,
	// so it includes the batching wait.
	EpochSize      Dist `json:"epoch_size"`
	EpochLatencyMS Dist `json:"epoch_latency_ms"`
	// Engine-choice observability: SequentialEpochs + ParallelEpochs ==
	// Epochs; LastEpochEngine names the scheduler that ran the most recent
	// epoch. ParallelThreshold/ParallelWorkers/ParallelMode echo the
	// configuration (workers and mode are empty/zero when the parallel
	// engine is disabled).
	SequentialEpochs  uint64 `json:"sequential_epochs"`
	ParallelEpochs    uint64 `json:"parallel_epochs"`
	ParallelThreshold int    `json:"parallel_threshold"`
	ParallelWorkers   int    `json:"parallel_workers,omitempty"`
	ParallelMode      string `json:"parallel_mode,omitempty"`
	LastEpochEngine   string `json:"last_epoch_engine,omitempty"`
	// Fault and repair observability. Every revocation resolves into
	// exactly one of Repaired, RepairFailed (retries exhausted →
	// ErrUnroutableDegraded), or RepairAborted (shutdown or owner release
	// mid-repair); PendingRepairs is the in-flight difference.
	// FaultyChannels counts currently failed channels; DegradedCapacity
	// is the fraction of channels still in service (1.0 when healthy).
	Revoked          uint64  `json:"revoked"`
	Repaired         uint64  `json:"repaired"`
	RepairFailed     uint64  `json:"repair_failed"`
	RepairAborted    uint64  `json:"repair_aborted"`
	PendingRepairs   int64   `json:"pending_repairs"`
	FaultyChannels   int     `json:"faulty_channels"`
	DegradedCapacity float64 `json:"degraded_capacity"`
	// RepairLatencyMS and RepairDepth summarize the last ≤4096 successful
	// repairs: revoke-to-readmission latency and scheduling attempts used.
	RepairLatencyMS Dist `json:"repair_latency_ms"`
	RepairDepth     Dist `json:"repair_depth"`
	// Gray-failure observability (see gray.go). RepairAttempts counts
	// repair scheduling attempts (one per verdict; bounded by Revoked
	// plus the retry budget), RepairBudgetExhausted retries deferred by
	// an empty token bucket. FlapEvents counts the down-transitions flap
	// damping observed, QuarantineEvents quarantine entries, Quarantined
	// the channels currently held in quarantine (masked but no longer
	// failed-listed once healed). RepairedOnHeldTrunk counts successful
	// repairs whose new route landed beside already-held circuits at a
	// parent switch — the reuse-cost repair-placement signal.
	RepairAttempts        uint64 `json:"repair_attempts"`
	RepairBudgetExhausted uint64 `json:"repair_budget_exhausted"`
	FlapEvents            uint64 `json:"flap_events,omitempty"`
	QuarantineEvents      uint64 `json:"quarantine_events,omitempty"`
	Quarantined           int    `json:"quarantined,omitempty"`
	RepairedOnHeldTrunk   uint64 `json:"repaired_on_held_trunk,omitempty"`
	// Incremental-mode observability. Incremental reports whether the
	// manager runs delta epochs (granted routes carried forward,
	// departures swept instead of full rebuilds); ReuseCost echoes the
	// reconfiguration-cost cap (0 = first-fit). TornRoutes counts routes
	// torn down (releases, revocations, delta departures) and
	// EstablishedRoutes routes set up (grants and repairs holding
	// channels); RouteChurn summarizes their per-scheduling-epoch sum —
	// the reconfiguration cost — over the last ≤4096 epochs. All three
	// are recorded in batch mode too, so modes compare directly.
	Incremental       bool   `json:"incremental,omitempty"`
	ReuseCost         int    `json:"reuse_cost,omitempty"`
	TornRoutes        uint64 `json:"torn_routes"`
	EstablishedRoutes uint64 `json:"established_routes"`
	RouteChurn        Dist   `json:"route_churn"`
}

// statsSnap is the seqlock-published slice of Stats that depends on
// m.mu-guarded state. The flusher (and every other mu holder that
// changes these) stores fresh values between two seq increments; a
// lock-free reader retries until it observes an even, unchanged seq.
// Every field is an atomic so the torn-read window is race-detector
// clean — the seq protocol is what makes the *set* coherent.
type statsSnap struct {
	seq      atomic.Uint64          // odd while a publish is in progress
	engine   atomic.Pointer[string] // LastEpochEngine; repointed only on change
	faulty   atomic.Int64           // len(m.failed)
	quar     atomic.Int64           // len(m.quar)
	util     atomic.Uint64          // math.Float64bits(utilization)
	capacity atomic.Uint64          // math.Float64bits(degraded capacity)
}

// publishStatsLocked refreshes the seqlock snapshot. Caller holds m.mu.
// No-op unless Config.StatsSnapshots is on, so the default path pays
// nothing. The engine name is re-pointed only when it changes — at
// steady state a publish is a handful of atomic stores plus the two
// cheap popcount sweeps behind Utilization and FailedCount.
func (m *Manager) publishStatsLocked() {
	if !m.statsOn {
		return
	}
	m.snap.seq.Add(1)
	if cur := m.snap.engine.Load(); cur == nil || *cur != m.lastEngine {
		name := m.lastEngine
		m.snap.engine.Store(&name)
	}
	m.snap.faulty.Store(int64(len(m.failed)))
	m.snap.quar.Store(int64(len(m.quar)))
	m.snap.util.Store(math.Float64bits(m.st.Utilization()))
	capacity := 1.0
	if total := m.st.ChannelCount(); total > 0 {
		capacity = float64(total-m.st.FailedCount()) / float64(total)
	}
	m.snap.capacity.Store(math.Float64bits(capacity))
	m.snap.seq.Add(1)
}

// Stats returns a snapshot of the manager's counters, queue, epoch
// distributions, and live link utilization. No lock is held across the
// distribution summaries: histogram samples are copied stripe by stripe
// and the sort/percentile pass runs outside, so a large snapshot never
// stalls the flusher or a client.
//
// By default the call takes the scheduling lock and settles pending
// work first — parked fast-path releases are drained and staged
// departures applied, so the snapshot reflects every Release that
// returned before the call. With Config.StatsSnapshots on, the
// mu-dependent fields come from the seqlock snapshot instead: Stats
// never blocks on (or blocks) the flusher, at the cost of those fields
// trailing live state by at most one epoch; the call nudges the flusher
// so the next publish is imminent, and performs no settling of its own.
func (m *Manager) Stats() Stats {
	var util, capacity float64
	var lastEngine string
	var faulty, quarantined int
	if m.statsOn {
		for {
			s1 := m.snap.seq.Load()
			if s1&1 == 0 {
				eng := m.snap.engine.Load()
				f := m.snap.faulty.Load()
				q := m.snap.quar.Load()
				u := m.snap.util.Load()
				c := m.snap.capacity.Load()
				if m.snap.seq.Load() == s1 {
					if eng != nil {
						lastEngine = *eng
					}
					faulty, quarantined = int(f), int(q)
					util = math.Float64frombits(u)
					capacity = math.Float64frombits(c)
					break
				}
			}
			runtime.Gosched() // publish in flight; retry
		}
		m.wake() // bound staleness: the flusher republishes on its next pass
	} else {
		m.mu.Lock()
		m.drainReleasesLocked()
		m.applyDeparturesLocked()
		m.settleQuarantineLocked(time.Now())
		util = m.st.Utilization()
		lastEngine = m.lastEngine
		faulty = len(m.failed)
		quarantined = len(m.quar)
		capacity = 1.0
		if total := m.st.ChannelCount(); total > 0 {
			capacity = float64(total-m.st.FailedCount()) / float64(total)
		}
		m.mu.Unlock()
	}
	depth := int(m.qdepth.Load())
	size := distOf(m.epochSize.snapshot())
	lat := distOf(m.epochLat.snapshot())
	repLat := distOf(m.repairLat.snapshot())
	repDepth := distOf(m.repairDepth.snapshot())
	churn := distOf(m.routeChurn.snapshot())
	return Stats{
		Offered:        m.offered.Load(),
		Granted:        m.granted.Load(),
		Rejected:       m.rejected.Load(),
		Cancelled:      m.cancelled.Load(),
		Released:       m.released.Load(),
		Overflow:       m.overflow.Load(),
		DrainRefused:   m.drainRefused.Load(),
		Epochs:         m.epochs.Load(),
		Active:         m.active.Load(),
		QueueDepth:     depth,
		Utilization:    util,
		Occupancy:      m.st.LiveOccupancy(),
		ChannelAllocs:  m.st.TotalAllocs(),
		EpochSize:      size,
		EpochLatencyMS: lat,

		SequentialEpochs:  m.seqEpochs.Load(),
		ParallelEpochs:    m.parEpochs.Load(),
		ParallelThreshold: m.parThreshold,
		ParallelWorkers:   parWorkers(m.par),
		ParallelMode:      parMode(m.par),
		LastEpochEngine:   lastEngine,

		Revoked:          m.revoked.Load(),
		Repaired:         m.repaired.Load(),
		RepairFailed:     m.repairFailed.Load(),
		RepairAborted:    m.repairAborted.Load(),
		PendingRepairs:   m.pendingRepairs.Load(),
		FaultyChannels:   faulty,
		DegradedCapacity: capacity,
		RepairLatencyMS:  repLat,
		RepairDepth:      repDepth,

		RepairAttempts:        m.repairAttempts.Load(),
		RepairBudgetExhausted: m.repairBudgetExhausted.Load(),
		FlapEvents:            m.flapEvents.Load(),
		QuarantineEvents:      m.quarantineEvents.Load(),
		Quarantined:           quarantined,
		RepairedOnHeldTrunk:   m.repairedOnHeldTrunk.Load(),

		Incremental:       m.inc != nil,
		ReuseCost:         m.reuseCost,
		TornRoutes:        m.tornRoutes.Load(),
		EstablishedRoutes: m.establishedRoutes.Load(),
		RouteChurn:        churn,
	}
}

func parWorkers(e *parsched.Engine) int {
	if e == nil {
		return 0
	}
	return e.Workers()
}

func parMode(e *parsched.Engine) string {
	if e == nil {
		return ""
	}
	if e.Mode() == parsched.Shard && e.Steal() {
		return "shard+steal"
	}
	return e.Mode().String()
}
