// Package fabric is the serving layer over the Level-wise scheduler: a
// goroutine-safe fabric manager that owns the live link state of one fat
// tree and admits long-lived connections for many concurrent clients —
// the centralized circuit-setup service the paper motivates.
//
// Connect calls do not schedule individually. They are coalesced into
// scheduling *epochs*: an epoch flushes when Config.BatchSize requests
// are queued or when the oldest queued request has waited Config.MaxWait,
// whichever comes first. Each epoch is granted atomically by one
// scheduler pass over the live link state, so per-request admission cost
// amortizes to the paper's O(l·log_l N) hot path and the (not
// concurrency-safe) linkstate.State is only ever mutated under the
// manager's lock.
//
// Large epochs can optionally be scheduled by the parallel Level-wise
// engine (internal/parsched): Config.ParallelThreshold routes any epoch
// with at least that many live requests through worker goroutines that
// claim channels with the lock-free atomic linkstate operations, while
// smaller epochs keep the zero-allocation sequential path. Grant and
// reject notifications are staged under the lock and delivered after it
// is released, so client wakeups never extend the critical section.
//
// The client hot paths are decoupled from the scheduling lock: Connect
// enqueues under a queue-only lock that no epoch ever holds, and
// Release parks the handle in a lock-free MPSC ring (Config.ReleaseRing)
// that the flusher drains at each epoch boundary, so both are a few
// atomic operations regardless of how long a scheduling pass runs.
//
// Robustness: the admission queue is bounded (Config.QueueLimit) and
// exerts backpressure by blocking Connect until a slot frees; a queued
// request leaves cleanly when its context is cancelled or the configured
// admission timeout expires; Close stops intake, drains the queue through
// a final epoch, and then stops the flusher.
//
// Observability: atomic counters (offered / granted / rejected /
// cancelled / released / overflow), epoch-size and epoch-latency
// distributions built on internal/stats, and a live utilization
// snapshot, all through Stats. The optional Config.Trace hook observes
// every state mutation in serialization order, which is how tests replay
// the grant/release history against a fresh link state.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/linkstate"
	"repro/internal/parsched"
	"repro/internal/sched"
	"repro/internal/topology"
)

// Defaults used by New when the corresponding Config field is zero.
const (
	DefaultBatchSize     = 32
	DefaultMaxWait       = 2 * time.Millisecond
	DefaultQueueLimit    = 1024
	DefaultRepairRetries = 8
	DefaultRepairBackoff = 2 * time.Millisecond
	DefaultReleaseRing   = 1024
)

// Sentinel errors returned by Connect and Release. Scheduler denials are
// *UnroutableError values that match ErrUnroutable under errors.Is.
var (
	ErrClosed       = errors.New("fabric: manager closed")
	ErrAdmitTimeout = errors.New("fabric: admission timed out")
	ErrReleased     = errors.New("fabric: handle already released")
	ErrUnroutable   = errors.New("fabric: unroutable")
)

// ErrDraining is returned by Connect while Close is in progress, so
// clients can tell shutdown from backpressure (a full queue blocks; a
// draining manager refuses). It wraps ErrClosed: existing
// errors.Is(err, ErrClosed) checks keep matching.
var ErrDraining = fmt.Errorf("fabric: draining (shutting down, not backpressure): %w", ErrClosed)

// ErrUnroutableDegraded is the terminal verdict of the repair loop: a
// revoked connection could not be re-admitted on the degraded fabric
// within Config.RepairRetries attempts. Handle.Err reports it and a
// Release of the dead handle returns it.
var ErrUnroutableDegraded = errors.New("fabric: unroutable on degraded fabric")

// UnroutableError reports a scheduler denial: no conflict-free path
// existed for the request in its epoch. FailLevel is the level of the
// first unresolvable conflict (the empty Ulink AND Dlink conjunction).
type UnroutableError struct {
	Src, Dst  int
	FailLevel int
}

// Error renders the denial.
func (e *UnroutableError) Error() string {
	return fmt.Sprintf("fabric: no route %d→%d (first conflict at level %d)", e.Src, e.Dst, e.FailLevel)
}

// Is matches the ErrUnroutable sentinel.
func (e *UnroutableError) Is(target error) bool { return target == ErrUnroutable }

// Config parameterizes a Manager.
type Config struct {
	// Tree is the fat tree being managed. Required.
	Tree *topology.Tree
	// SchedulerSpec names the admission engine in internal/sched's
	// registry grammar (e.g. "level-wise,rollback", "backtrack,depth=2",
	// "parallel,mode=racy,workers=8"). Empty means the default
	// "level-wise,rollback". Mutually exclusive with Scheduler.
	SchedulerSpec string
	// Scheduler admits each epoch against the live link state, for
	// callers that composed one programmatically; most should name an
	// engine with SchedulerSpec instead. Defaults to the Level-wise
	// scheduler with rollback. Schedulers that retain a failed request's
	// partial allocations are safe: the manager releases retained ports
	// after every epoch, since a rejected connection holds nothing.
	Scheduler core.Scheduler
	// BatchSize is the epoch flush threshold (default DefaultBatchSize).
	// 1 disables batching: every request is its own epoch.
	BatchSize int
	// MaxWait bounds how long the oldest queued request waits before its
	// epoch flushes regardless of size (default DefaultMaxWait).
	MaxWait time.Duration
	// QueueLimit bounds the admission queue; Connect blocks (backpressure)
	// while the queue is full. Default DefaultQueueLimit, raised to
	// BatchSize if smaller so one full epoch always fits.
	QueueLimit int
	// AdmitTimeout, when positive, caps the total time a Connect call may
	// spend waiting — for a queue slot and then for its epoch's verdict.
	// Zero means wait indefinitely (until ctx cancels).
	AdmitTimeout time.Duration
	// Trace, when non-nil, receives one Event per link-state mutation
	// (grant, release) and per queue drop (reject, cancel), invoked in
	// exact serialization order under the manager lock. Keep it fast; the
	// Ports slice aliases live storage (for grants, the scheduler's reused
	// ports arena) — treat it as read-only and copy it before retaining.
	Trace func(Event)
	// ParallelThreshold routes epochs of at least this many live requests
	// through the parallel Level-wise engine (internal/parsched); smaller
	// epochs keep the zero-allocation sequential path, whose fixed cost is
	// lower. 0 disables parallel scheduling entirely. Requires the default
	// scheduler (Config.Scheduler nil or a *core.LevelWise).
	ParallelThreshold int
	// ParallelWorkers sizes the parallel engine (default GOMAXPROCS).
	ParallelWorkers int
	// ParallelRacy selects the lock-free CAS engine mode: highest
	// throughput, but the grant set of an epoch may differ run to run
	// (always conflict-free). The default deterministic mode returns
	// bit-identical results to sequential scheduling.
	ParallelRacy bool
	// ParallelMode names the parallel arbitration mode directly:
	// "deterministic", "racy", or "shard" (subtree-sharded, zero
	// coordination between shards). Empty defers to ParallelRacy, which
	// remains as the boolean shorthand for "racy"; setting both to
	// conflicting values is an error.
	ParallelMode string
	// ParallelSteal enables work stealing across shard queues
	// (ParallelMode "shard" only).
	ParallelSteal bool
	// RepairRetries bounds how many scheduling attempts a revoked
	// connection gets before the repair is abandoned with
	// ErrUnroutableDegraded (default DefaultRepairRetries).
	RepairRetries int
	// RepairBackoff is the base delay between repair attempts; attempt k
	// (0-based) waits RepairBackoff << k before re-entering the epoch
	// queue (default DefaultRepairBackoff). The first attempt is
	// immediate: a revoked connection joins the very next epoch.
	RepairBackoff time.Duration
	// OnConnTerminal, when non-nil, is invoked (on its own goroutine,
	// no manager lock held) each time the repair loop retires a revoked
	// connection with a terminal error — retries exhausted
	// (ErrUnroutableDegraded) or shutdown mid-repair (wrapping
	// ErrClosed). It does NOT fire when the owner's own Release aborts a
	// repair: the owner asked for the teardown and already has the
	// verdict. Federation uses this hook to re-admit the dead circuit on
	// a surviving plane.
	OnConnTerminal func(c Conn, cause error)
	// Incremental switches the manager to delta epochs: granted routes
	// stay allocated in the link state across epochs and each scheduling
	// pass admits only the arrival delta, with releases, revocations, and
	// repairs flowing through the same departure path
	// (sched.Incremental.ScheduleDeltaInto). Requires an admission engine
	// with the delta-epoch capability — the default engine qualifies, as
	// does any SchedulerSpec sched.AsIncremental accepts. A SchedulerSpec
	// carrying the "incremental" flag enables this mode by itself.
	Incremental bool
	// ReuseCost, when positive, scores candidate up-ports by their
	// overlap with already-held circuits at the parent switches, capped
	// at this value (core.Options.ReuseCost): admission prefers routes
	// that disturb the least standing configuration. Requires Incremental
	// and the default engine; put reuse-cost in the SchedulerSpec when
	// naming an engine explicitly.
	ReuseCost int
	// ReleaseRing sizes the lock-free release ring (rounded up to a
	// power of two). The Release fast path parks the handle there — two
	// atomic loads and one CAS, never the manager lock — and the flusher
	// retires it at the next epoch boundary, where the freed channels
	// are visible to the next scheduling pass. 0 means
	// DefaultReleaseRing; a negative value disables the ring, making
	// every Release synchronous under the manager lock. A full ring is
	// backpressure-free: the overflowing Release just takes the
	// synchronous path.
	ReleaseRing int
	// DeliveryPipeline controls the dedicated delivery worker that sends
	// epoch verdicts to their waiting Connect calls while the flusher
	// moves straight on to the next epoch. 0 (the default) enables the
	// worker with one spare staging buffer (double buffering); a positive
	// value provisions that many spare buffers; a negative value disables
	// the worker, making verdict delivery synchronous on the flusher
	// goroutine (the pre-pipeline behavior). Either way a ticket's
	// verdict is sent exactly once.
	DeliveryPipeline int
	// DrainWorker, when true, starts a dedicated goroutine that
	// continuously retires release-ring entries into a pre-drained
	// buffer, so the flusher's epoch-boundary drain becomes a buffer
	// swap instead of an O(ring) walk under the scheduling lock.
	// Requires the release ring (error when ReleaseRing is negative).
	DrainWorker bool
	// StatsSnapshots, when true, serves Stats from an epoch-versioned
	// lock-free snapshot (seqlock) the flusher republishes after every
	// epoch, so monitoring never takes the scheduling lock and never
	// stalls a scheduling pass. A snapshot read does not force a settle:
	// parked releases and staged departures are reflected no later than
	// the next epoch (the read nudges the flusher). Default off: the
	// locked Stats path settles the fabric before reading, a
	// read-your-writes view some callers depend on.
	StatsSnapshots bool
	// RepairBudget globally rate-limits repair retries with a token
	// bucket (see gray.go): every re-enqueue after a denied repair
	// attempt draws one token, and an empty bucket defers the retry
	// until a token accrues (the retry is delayed, never dropped — and
	// the deferral does not consume a RepairRetries attempt). The first
	// attempt after a revocation is free. The zero value selects the
	// defaults (DefaultRepairBudgetRate, DefaultRepairBudgetBurst); a
	// negative Rate disables the limit. Stats.RepairBudgetExhausted
	// counts deferrals.
	RepairBudget Budget
	// FlapThreshold enables flap damping when positive: each channel's
	// down-transitions accumulate in a score that decays with half-life
	// FlapHalfLife, and a channel whose score reaches the threshold is
	// quarantined — masked like a failed channel — until
	// QuarantineProbation passes without further flapping. 0 (the
	// default) disables damping entirely; behavior is then bit-identical
	// to the clean-fault model.
	FlapThreshold float64
	// FlapHalfLife is the flap-score decay half-life (default
	// DefaultFlapHalfLife; used only when FlapThreshold > 0).
	FlapHalfLife time.Duration
	// QuarantineProbation is how long a quarantined channel stays masked
	// after its last flap (default DefaultQuarantineProbation; used only
	// when FlapThreshold > 0).
	QuarantineProbation time.Duration
}

// EventKind classifies a Trace event.
type EventKind int

// Trace event kinds.
const (
	EventGrant EventKind = iota
	EventReject
	EventRelease
	EventCancel
	// EventRevoke records a fault taking down a granted connection: its
	// healthy channels returned to the fabric, the handle entering the
	// repair loop. Ports are the route it held.
	EventRevoke
	// EventRepair records a successful re-admission of a revoked
	// connection; Ports are the new route.
	EventRepair
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventGrant:
		return "grant"
	case EventReject:
		return "reject"
	case EventRelease:
		return "release"
	case EventCancel:
		return "cancel"
	case EventRevoke:
		return "revoke"
	case EventRepair:
		return "repair"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one serialized admission-engine action.
type Event struct {
	Kind     EventKind
	Src, Dst int
	// Ports are the allocated upward ports (grant and release only).
	Ports []int
	// FailLevel is the first conflict level (reject only; -1 otherwise).
	FailLevel int
	// Epoch is the 1-based epoch sequence number (grant/reject only).
	Epoch uint64
}

// ticket lifecycle states.
const (
	ticketWaiting int32 = iota
	ticketClaimed       // taken by an epoch flush; a verdict will arrive
	ticketCancelled
)

// ticket is one queued Connect call — or, when h is non-nil, one repair
// attempt for a revoked connection. Repair tickets ride the same epoch
// queue but hold no queue slot (they never displace client admissions),
// have no resp channel (nobody is blocked on them; the verdict mutates
// the handle), and are claimed by handle state rather than the CAS
// (Release of a repairing handle is their cancellation path).
type ticket struct {
	req   core.Request
	enq   time.Time
	state atomic.Int32
	resp  chan result // buffered(1): the flusher's send never blocks
	h     *Handle     // repair tickets only
}

type result struct {
	h   *Handle
	err error
}

// delivery is one verdict staged under the manager lock and sent to its
// waiting Connect call after the lock is dropped, so channel sends (and
// the goroutine wakeups they trigger) never extend the critical section.
type delivery struct {
	t *ticket
	r result
}

// delbatch carries one epoch's staged verdicts from the goroutine that
// ran the epoch to whoever delivers them (the delivery worker, or the
// epoch runner itself). Batches come from Manager.delPool and return
// there once delivered, so epochs and deliveries can overlap without
// sharing a buffer.
type delbatch struct {
	d []delivery
}

// Handle lifecycle states. A handle is born active; a fault crossing
// its route revokes it to repairing (its channels returned, a repair
// ticket queued); a successful re-admission returns it to active on a
// new route; exhausting Config.RepairRetries, manager shutdown, or the
// owner's Release while repairing kills it. Transitions happen under
// m.mu; the atomic makes the lock-free Release fast path's read safe.
const (
	handleActive int32 = iota
	handleRepairing
	handleDead
)

// Handle is a granted connection. Release it through Manager.Release
// (or its Release method) exactly once. A fault on its route may revoke
// and transparently re-admit it (the route — Ports — changes); Err
// reports whether the connection was lost for good.
type Handle struct {
	m        *Manager
	src, dst int
	released atomic.Bool
	// state transitions only under m.mu; loads may be lock-free.
	state atomic.Int32

	// Guarded by m.mu: the repair loop rewrites the route and walks the
	// state machine above.
	ports     []int
	attempts  int       // repair scheduling attempts so far
	revokedAt time.Time // when the current repair began
	repairErr error     // terminal cause once state == handleDead
}

// Src returns the source node.
func (h *Handle) Src() int { return h.src }

// Dst returns the destination node.
func (h *Handle) Dst() int { return h.dst }

// Ports returns a copy of the upward port choices, one per level below
// the common ancestor (empty when both endpoints share a level-0 switch).
// The route changes when a fault revokes the connection and the repair
// loop re-admits it; a repairing or dead handle has no route.
func (h *Handle) Ports() []int {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return append([]int(nil), h.ports...)
}

// Err reports why the connection died: ErrUnroutableDegraded after the
// repair loop gave up, ErrClosed if the manager shut down mid-repair,
// nil while the handle is alive (active or repairing).
func (h *Handle) Err() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.repairErr
}

// Repairing reports whether the handle is currently revoked and waiting
// on the repair loop.
func (h *Handle) Repairing() bool {
	return h.state.Load() == handleRepairing
}

// Release returns the connection's channels to the fabric.
func (h *Handle) Release() error { return h.m.Release(h) }

// Manager is a goroutine-safe fabric manager. Create one with New; all
// methods may be called from any goroutine.
type Manager struct {
	cfg Config
	eng sched.Engine
	// par, when non-nil, handles epochs of >= parThreshold live requests;
	// smaller epochs take the zero-allocation sequential path through
	// scratch. Both are used only by the flusher, under mu.
	par          *parsched.Engine
	parThreshold int
	scratch      *core.Scratch
	// inc, when non-nil, puts the manager in incremental (delta-epoch)
	// mode: granted routes stay allocated across epochs, releases stage
	// departures in depbuf, and each flush calls ScheduleDeltaInto.
	// parInc is the parallel engine's delta entry point (it serves delta
	// epochs through its sequential core, with the fallback documented in
	// Result.Scheduler). reuseCost echoes the effective reuse-cost cap.
	inc       sched.Incremental
	parInc    sched.Incremental
	reuseCost int

	// freeSlots is the queue-slot semaphore (backpressure), kept as an
	// atomic so the uncontended Connect fast path is one CAS instead of a
	// channel round-trip. slotsCh is the coalescing wakeup for Connect
	// calls blocked on a full queue: releaseSlots posts one token after
	// adding slots, and a woken waiter re-signals while spare slots
	// remain (the cascade), so one channel op wakes any number of
	// waiters without a per-slot send.
	freeSlots atomic.Int64
	slotsCh   chan struct{} // cap 1, coalescing
	kick      chan struct{} // wakes the flusher (buffered 1, coalescing)
	closing   chan struct{}
	done      chan struct{} // flusher exited
	closeMu   sync.Once

	// ticketPool recycles tickets (and their buffered resp channels)
	// across Connect calls. Only a ticket whose verdict was received is
	// recycled — the receive happens-after the flusher's send, and the
	// flusher drops its references when it stages the send — so a pooled
	// ticket is never still referenced by an epoch. Cancelled tickets
	// whose CAS beat the epoch are never pooled (the flusher may still
	// hold them in a drained batch); they retire to the garbage
	// collector.
	ticketPool sync.Pool

	// Delivery pipeline (Config.DeliveryPipeline >= 0): whoever runs an
	// epoch — the flusher, or a connecting goroutine on the inline-flush
	// fast path — hands the staged verdicts to the delivery worker over
	// delivCh and moves straight on. Both channels are nil when the
	// pipeline is disabled. Each epoch's verdicts travel in a *delbatch
	// owned by exactly one deliverer until it lands back in delPool, so
	// an epoch can stage into a fresh batch while the previous one is
	// still being delivered.
	delivCh   chan *delbatch
	delivDone chan struct{}
	delPool   sync.Pool

	// Dedicated drain core (Config.DrainWorker): drmu replaces mu as the
	// release-ring consumer lock, the worker pops ring entries into
	// predrained between epochs, and drainReleasesLocked swaps the buffer
	// out instead of walking the ring under the scheduling lock.
	// drainSpare ping-pongs with predrained's backing array; drainKick is
	// the worker's coalescing wakeup. Lock order: mu before drmu; the
	// worker takes only drmu.
	drainOn    bool
	drmu       sync.Mutex
	predrained []*Handle // guarded by drmu
	drainSpare []*Handle // guarded by mu
	drainKick  chan struct{}
	drainDone  chan struct{}

	// snap is the lock-free Stats snapshot (Config.StatsSnapshots):
	// sequence-versioned atomics mu holders republish via
	// publishStatsLocked; readers retry on a version mismatch and never
	// take mu. See snapshot.go.
	statsOn bool
	snap    statsSnap

	// mu is the scheduling lock: it guards st, lastEngine, conns, failed,
	// the mutable handle fields, and serializes the release-ring consumer
	// (drainReleasesLocked). The admission queue is NOT under mu — see
	// qmu — so Connect never contends with an epoch's scheduling pass.
	mu         sync.Mutex
	st         *linkstate.State
	lastEngine string // scheduler that ran the most recent epoch
	// conns registers every live handle (active or repairing) so fault
	// injection can find the connections a failed component strands.
	conns map[*Handle]struct{}
	// failed is the current fault set at channel granularity. The
	// linkstate fault mask is the union of failed and quar: a channel is
	// scheduled around while either set holds it.
	failed map[faults.Channel]struct{}
	// Gray-failure state (guarded by mu; see gray.go). flap holds the
	// decayed per-channel flap scores, quar the quarantined channels and
	// their probation deadlines, budget the repair-retry token bucket.
	flap   map[faults.Channel]*flapScore
	quar   map[faults.Channel]time.Time
	budget bucket

	// qmu guards the admission queue (pending, oldest) and orders writes
	// of closed against enqueues, keeping Connect's critical section to
	// an append — a few pointer writes — while the flusher schedules
	// under mu. Lock order: mu before qmu, never the reverse.
	qmu     sync.Mutex
	pending []*ticket
	oldest  time.Time    // enqueue time of pending[0]
	closed  atomic.Bool  // set under qmu; loads may be lock-free
	qdepth  atomic.Int64 // len(pending); written under qmu, read lock-free

	// relRing parks fast-path releases until a mu holder drains them
	// (epoch flush, Stats, Fail, or a synchronous Release). Nil when
	// Config.ReleaseRing is negative.
	relRing *releaseRing

	// depbuf stages departures in incremental mode (guarded by mu): a
	// released or revoked route parks here, ownership of its ports
	// transferred from the handle, until the next delta epoch consumes it
	// through ScheduleDeltaInto — or a settle point (Stats, Fail, Close,
	// a synchronous Release) applies it directly. tornSinceEpoch
	// accumulates routes torn down since the last scheduling epoch, in
	// every mode, and feeds the per-epoch route-churn sample.
	depbuf         []core.Departure
	tornSinceEpoch int

	// Epoch scratch buffers (guarded by mu), reused across flushes so
	// steady-state epochs allocate only the Handles they grant. qspare
	// ping-pongs with pending's backing array: each flush swaps the
	// queue out under qmu and donates the drained batch back. Staged
	// verdicts live in pooled delbatches (delPool), not here — they
	// outlive the lock.
	livebuf []*ticket
	reqbuf  []core.Request
	qspare  []*ticket

	offered, granted, rejected, cancelled atomic.Uint64
	released, overflow, epochs            atomic.Uint64
	drainRefused                          atomic.Uint64
	seqEpochs, parEpochs                  atomic.Uint64
	active                                atomic.Int64

	// Repair-loop counters: every revocation ends in exactly one of
	// repaired, repairFailed (retries exhausted), or repairAborted
	// (shutdown or owner release mid-repair); pendingRepairs tracks the
	// in-flight difference.
	revoked, repaired           atomic.Uint64
	repairFailed, repairAborted atomic.Uint64
	pendingRepairs              atomic.Int64

	// Gray-failure counters: repairAttempts counts scheduling attempts
	// the repair loop made (one per verdict), repairBudgetExhausted the
	// retries deferred by an empty token bucket, flapEvents every
	// down-transition damping observed, quarantineEvents quarantine
	// entries, repairedOnHeldTrunk successful repairs whose new route
	// landed on a trunk already carrying held circuits.
	repairAttempts        atomic.Uint64
	repairBudgetExhausted atomic.Uint64
	flapEvents            atomic.Uint64
	quarantineEvents      atomic.Uint64
	repairedOnHeldTrunk   atomic.Uint64

	// Route-churn counters: tornRoutes counts routes torn down (release,
	// revoke, or delta-epoch departure with held channels),
	// establishedRoutes counts routes set up (grants and repairs with
	// held channels). Their per-epoch sum is the reconfiguration-cost
	// signal the incremental mode exists to shrink.
	tornRoutes        atomic.Uint64
	establishedRoutes atomic.Uint64

	// Histogram stripes: recording locks one stripe, Stats snapshots
	// stripes one at a time and summarizes outside every lock.
	epochSize   *shardedRing
	epochLat    *shardedRing
	repairLat   *shardedRing // revoke → successful re-admission, milliseconds
	repairDepth *shardedRing // scheduling attempts per successful repair
	routeChurn  *shardedRing // routes torn + established, per scheduling epoch
}

// New validates the config, applies defaults, and starts the manager's
// flusher goroutine. Stop it with Close.
func New(cfg Config) (*Manager, error) {
	if cfg.Tree == nil {
		return nil, errors.New("fabric: nil tree")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.QueueLimit < cfg.BatchSize {
		cfg.QueueLimit = cfg.BatchSize
	}
	if cfg.RepairRetries <= 0 {
		cfg.RepairRetries = DefaultRepairRetries
	}
	if cfg.RepairBackoff <= 0 {
		cfg.RepairBackoff = DefaultRepairBackoff
	}
	if cfg.ReuseCost < 0 {
		return nil, fmt.Errorf("fabric: invalid ReuseCost %d (must be >= 0)", cfg.ReuseCost)
	}
	if cfg.FlapThreshold < 0 {
		return nil, fmt.Errorf("fabric: negative FlapThreshold %v", cfg.FlapThreshold)
	}
	if cfg.FlapHalfLife < 0 {
		return nil, fmt.Errorf("fabric: negative FlapHalfLife %s", cfg.FlapHalfLife)
	}
	if cfg.QuarantineProbation < 0 {
		return nil, fmt.Errorf("fabric: negative QuarantineProbation %s", cfg.QuarantineProbation)
	}
	if cfg.FlapHalfLife == 0 {
		cfg.FlapHalfLife = DefaultFlapHalfLife
	}
	if cfg.QuarantineProbation == 0 {
		cfg.QuarantineProbation = DefaultQuarantineProbation
	}
	switch {
	case cfg.RepairBudget.Rate < 0:
		// Unlimited; a Burst alongside it is meaningless.
		if cfg.RepairBudget.Burst != 0 {
			return nil, fmt.Errorf("fabric: RepairBudget.Burst %d with negative (unlimited) Rate", cfg.RepairBudget.Burst)
		}
	case cfg.RepairBudget.Rate == 0 && cfg.RepairBudget.Burst == 0:
		cfg.RepairBudget = Budget{Rate: DefaultRepairBudgetRate, Burst: DefaultRepairBudgetBurst}
	case cfg.RepairBudget.Rate == 0:
		return nil, fmt.Errorf("fabric: RepairBudget.Burst %d without a Rate (set Rate > 0, or Rate < 0 for unlimited)", cfg.RepairBudget.Burst)
	case cfg.RepairBudget.Burst < 0:
		return nil, fmt.Errorf("fabric: negative RepairBudget.Burst %d", cfg.RepairBudget.Burst)
	case cfg.RepairBudget.Burst == 0:
		cfg.RepairBudget.Burst = int(math.Ceil(cfg.RepairBudget.Rate))
	}
	if cfg.ReuseCost > 0 && !cfg.Incremental {
		return nil, errors.New("fabric: ReuseCost requires Incremental (reuse scores held routes, which only persist across delta epochs)")
	}
	if cfg.ReuseCost > 0 && (cfg.SchedulerSpec != "" || cfg.Scheduler != nil) {
		return nil, errors.New("fabric: ReuseCost applies to the default engine only; put reuse-cost in the SchedulerSpec instead")
	}
	var eng sched.Engine
	switch {
	case cfg.SchedulerSpec != "" && cfg.Scheduler != nil:
		return nil, errors.New("fabric: SchedulerSpec and Scheduler are mutually exclusive")
	case cfg.SchedulerSpec != "":
		var err error
		if eng, err = sched.Parse(cfg.SchedulerSpec); err != nil {
			return nil, err
		}
	case cfg.Scheduler != nil:
		eng = sched.Wrap(cfg.Scheduler)
	default:
		eng = sched.Wrap(&core.LevelWise{Opts: core.Options{
			Rollback: true, Incremental: cfg.Incremental, ReuseCost: cfg.ReuseCost}})
	}
	// Delta-epoch mode: explicitly requested, or implied by a spec that
	// carries the incremental flag. Either way the engine must actually
	// have the capability.
	incremental := cfg.Incremental
	reuseCost := cfg.ReuseCost
	if lw, ok := eng.Unwrap().(*core.LevelWise); ok {
		if lw.Opts.Incremental {
			incremental = true
		}
		if lw.Opts.ReuseCost > reuseCost {
			reuseCost = lw.Opts.ReuseCost
		}
	}
	var inc sched.Incremental
	if incremental {
		var ok bool
		if inc, ok = sched.AsIncremental(eng); !ok {
			return nil, fmt.Errorf("fabric: Incremental requires an engine with the delta-epoch capability (%s has none)", eng.Name())
		}
	}
	var par *parsched.Engine
	if cfg.ParallelThreshold > 0 {
		lw, ok := eng.Unwrap().(*core.LevelWise)
		if !ok {
			return nil, errors.New("fabric: ParallelThreshold requires a level-wise admission engine")
		}
		mode := parsched.Deterministic
		switch cfg.ParallelMode {
		case "":
			if cfg.ParallelRacy {
				mode = parsched.Racy
			}
		case "deterministic":
		case "racy":
			mode = parsched.Racy
		case "shard":
			mode = parsched.Shard
		default:
			return nil, fmt.Errorf("fabric: unknown ParallelMode %q (deterministic, racy or shard)", cfg.ParallelMode)
		}
		if cfg.ParallelRacy && mode != parsched.Racy {
			return nil, fmt.Errorf("fabric: ParallelRacy conflicts with ParallelMode %q", cfg.ParallelMode)
		}
		if cfg.ParallelSteal && mode != parsched.Shard {
			return nil, errors.New(`fabric: ParallelSteal requires ParallelMode "shard"`)
		}
		par = parsched.New(parsched.Config{Workers: cfg.ParallelWorkers, Mode: mode,
			Steal: cfg.ParallelSteal, Opts: lw.Opts})
	}
	if cfg.DrainWorker && cfg.ReleaseRing < 0 {
		return nil, errors.New("fabric: DrainWorker requires the release ring (ReleaseRing >= 0)")
	}
	m := &Manager{
		cfg:          cfg,
		eng:          eng,
		par:          par,
		parThreshold: cfg.ParallelThreshold,
		scratch:      core.NewScratch(),
		inc:          inc,
		reuseCost:    reuseCost,
		slotsCh:      make(chan struct{}, 1),
		kick:         make(chan struct{}, 1),
		closing:      make(chan struct{}),
		done:         make(chan struct{}),
		st:           newTrackedState(cfg.Tree),
		conns:        make(map[*Handle]struct{}),
		failed:       make(map[faults.Channel]struct{}),
		flap:         make(map[faults.Channel]*flapScore),
		quar:         make(map[faults.Channel]time.Time),
		budget:       newBucket(cfg.RepairBudget, time.Now()),
		epochSize:    newShardedRing(4096),
		epochLat:     newShardedRing(4096),
		repairLat:    newShardedRing(4096),
		repairDepth:  newShardedRing(4096),
		routeChurn:   newShardedRing(4096),
		statsOn:      cfg.StatsSnapshots,
	}
	m.freeSlots.Store(int64(cfg.QueueLimit))
	if inc != nil && par != nil {
		m.parInc = par
	}
	ringSize := cfg.ReleaseRing
	if ringSize == 0 {
		ringSize = DefaultReleaseRing
	}
	if ringSize > 0 {
		m.relRing = newReleaseRing(ringSize)
	}
	if cfg.DeliveryPipeline >= 0 {
		spares := cfg.DeliveryPipeline
		if spares == 0 {
			spares = 1 // default: double-buffer the staged deliveries
		}
		m.delivCh = make(chan *delbatch, spares+1)
		m.delivDone = make(chan struct{})
		go m.deliveryWorker()
	}
	if cfg.DrainWorker {
		m.drainOn = true
		m.drainKick = make(chan struct{}, 1)
		m.drainDone = make(chan struct{})
		go m.drainWorker()
	}
	if m.statsOn {
		m.mu.Lock()
		m.publishStatsLocked()
		m.mu.Unlock()
	}
	go m.flusher()
	return m, nil
}

// Connect requests a circuit from src to dst. It blocks until the
// request's epoch is scheduled and returns either a Handle or an error:
// a *UnroutableError (matching ErrUnroutable) when no conflict-free path
// existed, ctx.Err() when the context cancels first, ErrAdmitTimeout
// when Config.AdmitTimeout expires first, or ErrClosed after Close.
//
// The enqueue half is allocation-free at steady state: the ticket and
// its resp channel come from the pool, the slot semaphore is one CAS,
// and the batch timestamp is taken once per epoch, not per request.
func (m *Manager) Connect(ctx context.Context, src, dst int) (*Handle, error) {
	n := m.cfg.Tree.Nodes()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("fabric: endpoints (%d, %d) outside [0, %d)", src, dst, n)
	}
	var deadline <-chan time.Time
	if m.cfg.AdmitTimeout > 0 {
		timer := time.NewTimer(m.cfg.AdmitTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	if err := m.acquireSlot(ctx, deadline); err != nil {
		return nil, err
	}
	t := m.getTicket(src, dst)
	ok, flush := m.enqueue(t)
	if !ok {
		// Close won the race between the slot acquire and the enqueue:
		// return the slot, recycle the ticket (no epoch ever saw it), and
		// refuse as a drain — this is shutdown, not backpressure, so it
		// counts under DrainRefused rather than Overflow.
		m.releaseSlots(1)
		m.drainRefused.Add(1)
		m.putTicket(t)
		return nil, ErrDraining
	}
	if flush {
		m.tryFlushInline()
	}

	select {
	case r := <-t.resp:
		m.putTicket(t)
		return r.h, r.err
	case <-ctx.Done():
		if t.state.CompareAndSwap(ticketWaiting, ticketCancelled) {
			// The epoch will drop this ticket when it sees the CAS; it
			// must NOT be pooled — the flusher may still hold it.
			m.cancelled.Add(1)
			return nil, ctx.Err()
		}
		r := <-t.resp // an epoch already claimed the ticket; honor its verdict
		m.putTicket(t)
		return r.h, r.err
	case <-deadline:
		if t.state.CompareAndSwap(ticketWaiting, ticketCancelled) {
			m.cancelled.Add(1)
			return nil, ErrAdmitTimeout
		}
		r := <-t.resp
		m.putTicket(t)
		return r.h, r.err
	}
}

// acquireSlot takes one queue slot, blocking (backpressure) while the
// queue is full. A draining manager refuses with ErrDraining so callers
// can tell shutdown from a momentarily full queue. The uncontended path
// is one CAS; waiters park on the coalescing slotsCh token.
func (m *Manager) acquireSlot(ctx context.Context, deadline <-chan time.Time) error {
	for {
		if n := m.freeSlots.Load(); n > 0 {
			if m.freeSlots.CompareAndSwap(n, n-1) {
				return nil
			}
			continue // raced another acquirer; retry
		}
		select {
		case <-m.slotsCh:
			// Cascade: if the release that woke us freed more than the
			// slot we are about to claim, pass the token on so every
			// waiter the batch can serve wakes in turn.
			if m.freeSlots.Load() > 1 {
				m.signalSlots()
			}
		case <-ctx.Done():
			m.overflow.Add(1)
			return ctx.Err()
		case <-deadline:
			m.overflow.Add(1)
			return ErrAdmitTimeout
		case <-m.closing:
			m.drainRefused.Add(1)
			return ErrDraining
		}
	}
}

// releaseSlots returns n queue slots and posts one wakeup token; woken
// waiters cascade the token while spare slots remain, so a whole epoch's
// worth of slots comes back with a single channel operation.
func (m *Manager) releaseSlots(n int) {
	if n <= 0 {
		return
	}
	m.freeSlots.Add(int64(n))
	m.signalSlots()
}

// signalSlots posts the (coalescing) slot-wakeup token.
func (m *Manager) signalSlots() {
	select {
	case m.slotsCh <- struct{}{}:
	default:
	}
}

// getTicket returns a pooled (or fresh) client ticket, reset to the
// waiting state with its buffered resp channel ready.
func (m *Manager) getTicket(src, dst int) *ticket {
	t, _ := m.ticketPool.Get().(*ticket)
	if t == nil {
		t = &ticket{resp: make(chan result, 1)}
	}
	t.req = core.Request{Src: src, Dst: dst}
	t.state.Store(ticketWaiting)
	return t
}

// putTicket recycles a ticket whose verdict was received (or that never
// entered the queue). The caller must be past the resp receive — that
// receive happens-after the flusher's send, which is the last epoch-side
// touch — so the pool never holds a ticket an epoch still references.
func (m *Manager) putTicket(t *ticket) {
	t.req = core.Request{}
	m.ticketPool.Put(t)
}

// enqueue appends the ticket to the admission queue, reporting ok=false
// if the manager is draining and flush=true when the append reached the
// epoch threshold (the caller then tries the inline flush). One
// time.Now per batch: the first ticket of an epoch stamps m.oldest and
// later tickets inherit it — the flush timer and the epoch-latency
// sample both measure from the batch start, exactly as before, without
// a clock read per request. A first ticket below the threshold wakes
// the flusher to arm the MaxWait timer.
func (m *Manager) enqueue(t *ticket) (ok, flush bool) {
	m.qmu.Lock()
	if m.closed.Load() {
		m.qmu.Unlock()
		return false, false
	}
	if len(m.pending) == 0 {
		m.oldest = time.Now()
	}
	t.enq = m.oldest
	m.pending = append(m.pending, t)
	n := len(m.pending)
	m.qdepth.Store(int64(n))
	m.offered.Add(1)
	m.qmu.Unlock()
	if n >= m.cfg.BatchSize {
		return true, true
	}
	if n == 1 {
		m.wake()
	}
	return true, false
}

// tryFlushInline is the epoch-completion fast path: the goroutine whose
// enqueue filled the batch runs the flush itself when the epoch lock is
// free, instead of waking the flusher and paying two goroutine switches
// per round trip (the dominant cost at small epoch sizes). If the lock
// is held — an epoch in flight, a fault walk, a Stats settle — the
// flusher is woken as before; it re-checks the queue on every pass, so
// the batch is never stranded. The queue depth is re-checked under the
// lock: a concurrent flush may have already taken this goroutine's
// ticket, and flushing a fresh sub-threshold batch early would erode
// batching for no latency win.
//
// The inline path always delivers its own batch rather than staging it
// on the delivery pipeline: the caller's verdict is in the batch, so a
// hand-off would park this goroutine just to have the worker wake it
// again — delivering directly fills the caller's buffered resp channel
// with no switch at all, and the other waiters wake exactly as fast as
// the worker would have woken them. The pipeline still overlaps
// delivery for flusher-driven (MaxWait) epochs.
func (m *Manager) tryFlushInline() {
	if !m.mu.TryLock() {
		m.wake()
		return
	}
	if int(m.qdepth.Load()) < m.cfg.BatchSize {
		m.mu.Unlock()
		return
	}
	m.drainReleasesLocked()
	b := m.flushLocked()
	m.mu.Unlock()
	m.deliver(b)
}

// Release returns a granted connection's channels to the fabric. It is
// idempotent-unsafe by design: a second Release of the same handle
// returns ErrReleased without touching the state. Release keeps working
// after Close so clients can drain held circuits during shutdown.
//
// The common case never takes the manager lock: the handle parks in the
// lock-free release ring and the flusher retires it at the next epoch
// boundary, so its channels are back in service before the next
// scheduling pass. Observable state (Stats, link utilization) reflects
// a parked release no later than the next epoch or Stats call, whichever
// drains first.
//
// Releasing a handle the repair loop is re-admitting cancels the repair
// (its channels were already returned at revocation) and returns nil;
// releasing a handle the repair loop already gave up on returns the
// terminal cause (matching ErrUnroutableDegraded or ErrClosed), so a
// drain loop learns which connections the faults took down.
func (m *Manager) Release(h *Handle) error {
	if h == nil {
		return errors.New("fabric: nil handle")
	}
	if h.m != m {
		return errors.New("fabric: handle belongs to a different manager")
	}
	if !h.released.CompareAndSwap(false, true) {
		return ErrReleased
	}
	// Fast path: an active handle on a running manager parks in the ring
	// — two atomic loads and one CAS. Everything else goes synchronous:
	// repairing and dead handles need their verdict now, a closed
	// manager may have no flusher left to drain for it, and a full or
	// disabled ring degrades to the lock rather than blocking.
	if m.relRing != nil && h.state.Load() == handleActive && !m.closed.Load() && m.relRing.push(h) {
		if m.drainOn {
			// Nudge the drain core; the buffered channel coalesces bursts.
			select {
			case m.drainKick <- struct{}{}:
			default:
			}
		}
		return nil
	}
	return m.releaseSlow(h)
}

// releaseSlow is the synchronous Release path. It drains the ring first
// so releases retire in roughly the order their owners issued them, and
// — in incremental mode — applies the staged departures before
// returning: a synchronous Release promises its channels are back in
// service (clients drain through this path after Close, when no flusher
// is left to run a delta epoch for them).
func (m *Manager) releaseSlow(h *Handle) error {
	m.mu.Lock()
	m.drainReleasesLocked()
	var err error
	if h.state.Load() == handleDead {
		err = h.repairErr // repair loop already retired it; report why
	} else {
		m.finishReleaseLocked(h)
	}
	m.applyDeparturesLocked()
	m.publishStatsLocked()
	m.mu.Unlock()
	return err
}

// drainReleasesLocked retires every handle parked in the release ring.
// Caller holds m.mu — the mutex is what makes this the ring's single
// consumer. Epoch flushes drain before scheduling, so channels freed by
// the fast path are available to the pass that follows.
func (m *Manager) drainReleasesLocked() {
	if m.relRing == nil {
		return
	}
	if m.drainOn {
		// Dedicated drain core: the worker already moved parked handles
		// into predrained, so the flush-time cost is a buffer swap plus
		// whatever residue the worker has not reached yet. drmu is held
		// only for the swap and the residual pop — the bookkeeping below
		// runs under mu alone, off the worker's lock.
		m.drmu.Lock()
		pre := m.predrained
		m.predrained = m.drainSpare[:0]
		for {
			h := m.relRing.pop()
			if h == nil {
				break
			}
			pre = append(pre, h)
		}
		m.drmu.Unlock()
		for _, h := range pre {
			m.finishReleaseLocked(h)
		}
		for i := range pre {
			pre[i] = nil
		}
		m.drainSpare = pre[:0]
		return
	}
	for {
		h := m.relRing.pop()
		if h == nil {
			return
		}
		m.finishReleaseLocked(h)
	}
}

// finishReleaseLocked performs the bookkeeping half of a Release under
// m.mu: return the route's channels, unregister the handle, trace,
// count. The handle state is re-read here because a fault may have
// revoked the connection between the owner's Release and this drain —
// its channels were already returned at revocation, so the queued
// repair is aborted instead (dropping the handle from conns starves the
// repair ticket and any pending backoff timer, which is the
// cancellation). A handle already dead was fully retired by the repair
// loop and holds nothing.
func (m *Manager) finishReleaseLocked(h *Handle) {
	switch h.state.Load() {
	case handleRepairing:
		h.state.Store(handleDead)
		delete(m.conns, h)
		m.pendingRepairs.Add(-1)
		m.repairAborted.Add(1)
		return
	case handleDead:
		return
	}
	ports := h.ports
	if m.inc != nil {
		// Delta mode: the route is not torn down here — it stages as a
		// departure for the next scheduling pass (or settle point), with
		// ownership of the ports slice transferring to the buffer.
		m.depbuf = append(m.depbuf, core.Departure{Src: h.src, Dst: h.dst, Ports: h.ports})
		h.ports = nil
	} else {
		m.releaseRouteLocked(h)
		if len(h.ports) > 0 {
			m.tornSinceEpoch++
			m.tornRoutes.Add(1)
		}
	}
	delete(m.conns, h)
	if m.cfg.Trace != nil {
		m.cfg.Trace(Event{Kind: EventRelease, Src: h.src, Dst: h.dst, Ports: ports, FailLevel: -1})
	}
	m.released.Add(1)
	m.active.Add(-1)
}

// applyDeparturesLocked tears down every staged departure outside a
// scheduling pass. Delta epochs normally consume the buffer through
// ScheduleDeltaInto; this is the settle point the other mu holders use
// (Stats, Fail, Close, synchronous Release) so observers, the revoke
// walk, and post-shutdown drains all see freed channels. The sweep is
// fault-aware: channels the fault mask already forfeited are skipped.
func (m *Manager) applyDeparturesLocked() {
	if len(m.depbuf) == 0 {
		return
	}
	for i := range m.depbuf {
		d := &m.depbuf[i]
		core.ReleaseSurviving(m.st, d.Src, d.Dst, d.Ports, nil)
		if len(d.Ports) > 0 {
			m.tornSinceEpoch++
			m.tornRoutes.Add(1)
		}
	}
	m.clearDeparturesLocked()
}

// clearDeparturesLocked resets the staged-departure buffer without
// releasing anything — the caller (a delta epoch, or
// applyDeparturesLocked) already returned the channels.
func (m *Manager) clearDeparturesLocked() {
	for i := range m.depbuf {
		m.depbuf[i] = core.Departure{}
	}
	m.depbuf = m.depbuf[:0]
}

// releaseRouteLocked returns an active handle's channels to the fabric.
// On a healthy fabric the whole path releases in one call; with faults
// present the Theorem 2 walk is replayed and failed channels skipped —
// they are masked out of the availability state and must not be
// resurrected. (An active route normally never crosses a failed channel
// — Fail revokes such connections — except when the owner's Release
// raced the fault into the ring; the revoke walk skips released handles
// and this walk finishes the teardown.) A failure here is an accounting
// invariant violation, not a runtime condition.
func (m *Manager) releaseRouteLocked(h *Handle) {
	if len(m.failed) == 0 {
		if err := m.st.ReleasePath(h.src, h.dst, h.ports); err != nil {
			panic(fmt.Sprintf("fabric: release invariant violation: %v", err))
		}
		return
	}
	core.ReleaseSurviving(m.st, h.src, h.dst, h.ports, nil)
}

// Close stops admission, drains queued requests through a final epoch,
// and waits (bounded by ctx) for the flusher to exit. Held handles stay
// valid and releasable after Close. Close is idempotent.
func (m *Manager) Close(ctx context.Context) error {
	m.closeMu.Do(func() {
		m.qmu.Lock()
		m.closed.Store(true)
		m.qmu.Unlock()
		close(m.closing)
	})
	select {
	case <-m.done:
		// The flusher drained the release ring on exit, but a Release
		// that read closed=false concurrently with shutdown may have
		// parked a handle after that final drain; sweep those up (and, in
		// incremental mode, apply the staged departures — no flusher is
		// left to run a delta epoch) so the fabric is fully drained when
		// Close returns. The drain worker must be gone first: waiting on
		// drainDone means no handle can move ring→predrained after this
		// final sweep, which would otherwise strand it.
		if m.drainDone != nil {
			select {
			case <-m.drainDone:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		m.mu.Lock()
		m.drainReleasesLocked()
		m.applyDeparturesLocked()
		m.publishStatsLocked()
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wake nudges the flusher; the buffered channel coalesces bursts.
func (m *Manager) wake() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// flusher is the single goroutine that runs epochs against the state.
func (m *Manager) flusher() {
	defer func() {
		// Stop the delivery worker before announcing exit: Close's drain
		// guarantee ("queued requests answered") must cover verdicts still
		// in the pipeline, so m.done only closes after the worker has
		// flushed everything handed to it.
		if m.delivCh != nil {
			close(m.delivCh)
			<-m.delivDone
		}
		close(m.done)
	}()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Every wake drains the release ring first: epoch boundaries are
		// where fast-path releases land, so freed channels are visible
		// to both the flush decision and any scheduling pass that
		// follows. The {n, closed} snapshot is taken under qmu (with mu
		// held), making the exit decision atomic against both Connect's
		// enqueue and Fail/requeue's repair-ticket appends.
		m.mu.Lock()
		m.drainReleasesLocked()
		if len(m.quar) > 0 { // guard: skip the clock read on the common path
			m.settleQuarantineLocked(time.Now())
		}
		m.qmu.Lock()
		n := len(m.pending)
		oldest := m.oldest
		closed := m.closed.Load()
		m.qmu.Unlock()
		if n > 0 && (closed || n >= m.cfg.BatchSize || time.Since(oldest) >= m.cfg.MaxWait) {
			dels, handed := m.stageFlushLocked()
			m.mu.Unlock()
			if !handed {
				m.deliver(dels)
			}
			continue
		}
		var wait time.Duration
		if n > 0 {
			wait = m.cfg.MaxWait - time.Since(oldest)
		}
		m.mu.Unlock()
		if n == 0 {
			if closed {
				return
			}
			select {
			case <-m.kick:
			case <-m.closing:
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-m.kick:
		case <-timer.C:
		case <-m.closing:
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// flushLocked runs one epoch over every queued ticket and stages the
// verdicts. Called with m.mu held; the scheduler pass happens under the
// lock — that lock is the serialization point that makes the shared
// linkstate.State safe. Epochs of at least Config.ParallelThreshold live
// requests run on the parallel engine (its workers claim channels through
// the atomic linkstate operations); smaller epochs take the
// allocation-free sequential path through the manager's reusable Scratch.
// The returned batch (from delPool; nil when the flush was empty) must
// be delivered by the caller after unlocking — or handed to the
// delivery worker, which is what stageFlushLocked does.
func (m *Manager) flushLocked() *delbatch {
	// Swap the queue out under qmu: Connect keeps enqueueing into the
	// spare array while this epoch schedules under mu.
	m.qmu.Lock()
	batch := m.pending
	m.pending = m.qspare[:0]
	m.qdepth.Store(0)
	m.qmu.Unlock()
	live := m.livebuf[:0]
	for _, t := range batch {
		if t.h != nil {
			// Repair ticket: live while its handle still wants repairing
			// (Release of the handle is the cancellation path). It holds no
			// queue slot and nobody is waiting on a resp channel.
			if t.h.state.Load() == handleRepairing {
				live = append(live, t)
			}
			continue
		}
		if t.state.CompareAndSwap(ticketWaiting, ticketClaimed) {
			live = append(live, t)
		} else if m.cfg.Trace != nil {
			// The canceller already counted it; record queue departure.
			m.cfg.Trace(Event{Kind: EventCancel, Src: t.req.Src, Dst: t.req.Dst, FailLevel: -1})
		}
	}
	freed := 0
	for _, t := range batch {
		if t.h == nil {
			freed++ // every departed client ticket frees its queue slot
		}
	}
	m.releaseSlots(freed) // one atomic add + one wakeup for the whole batch
	// Ping-pong the backing arrays: the drained batch becomes the next
	// flush's spare. Tickets travel on via live and the staged
	// deliveries; clear the refs so the spare retains nothing.
	for i := range batch {
		batch[i] = nil
	}
	m.qspare = batch[:0]
	m.livebuf = live
	if len(live) == 0 {
		// Nothing to schedule — every ticket was cancelled. Staged
		// departures still settle here, but the epoch histograms and the
		// epoch counter must NOT record this flush: an empty (or
		// departure-only) pass is not a scheduling epoch, and counting it
		// would drag EpochSize/EpochLatencyMS toward zero.
		m.applyDeparturesLocked()
		m.publishStatsLocked()
		return nil
	}
	reqs := m.reqbuf[:0]
	for _, t := range live {
		reqs = append(reqs, t.req)
	}
	m.reqbuf = reqs

	var res *core.Result
	switch {
	case m.inc != nil:
		// Delta epoch: staged departures are torn down (fault-aware,
		// inside the engine) before the arrival sweep, and everything
		// already granted stays allocated. Parallel modes serve delta
		// epochs through their sequential core — Result.Scheduler carries
		// the documented fallback name.
		eng := m.inc
		if m.parInc != nil && len(reqs) >= m.parThreshold {
			eng = m.parInc
		}
		res = eng.ScheduleDeltaInto(m.st, reqs, m.depbuf, m.scratch)
		m.clearDeparturesLocked()
		m.tornSinceEpoch += res.Torn
		m.tornRoutes.Add(uint64(res.Torn))
		m.lastEngine = res.Scheduler
		m.seqEpochs.Add(1)
	case m.par != nil && len(reqs) >= m.parThreshold:
		res = m.par.Schedule(m.st, reqs)
		m.lastEngine = m.par.Name()
		m.parEpochs.Add(1)
	default:
		res = m.eng.ScheduleInto(m.st, reqs, m.scratch)
		m.lastEngine = res.Scheduler
		m.seqEpochs.Add(1)
	}

	epoch := m.epochs.Add(1)
	established := 0
	b, _ := m.delPool.Get().(*delbatch)
	if b == nil {
		b = &delbatch{}
	}
	dels := b.d[:0]
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Granted && len(o.Ports) > 0 {
			established++ // new grants and repairs that hold channels
		}
		if t := live[i]; t.h != nil {
			m.repairVerdictLocked(t, o, epoch)
			continue
		}
		if o.Granted {
			// The outcome's Ports alias the scheduler's reusable arena; the
			// Handle owns its ports for the connection's lifetime, so copy.
			h := &Handle{m: m, src: o.Src, dst: o.Dst, ports: append([]int(nil), o.Ports...)}
			m.conns[h] = struct{}{}
			m.granted.Add(1)
			m.active.Add(1)
			if m.cfg.Trace != nil {
				m.cfg.Trace(Event{Kind: EventGrant, Src: o.Src, Dst: o.Dst, Ports: o.Ports, FailLevel: -1, Epoch: epoch})
			}
			dels = append(dels, delivery{t: live[i], r: result{h: h}})
			continue
		}
		// A scheduler without rollback retains a failed request's partial
		// allocations in the outcome; a rejected connection holds nothing,
		// so return those channels before anyone else schedules.
		if len(o.Ports) > 0 {
			m.releaseRetainedLocked(o)
		}
		m.rejected.Add(1)
		if m.cfg.Trace != nil {
			m.cfg.Trace(Event{Kind: EventReject, Src: o.Src, Dst: o.Dst, FailLevel: o.FailLevel, Epoch: epoch})
		}
		dels = append(dels, delivery{t: live[i], r: result{err: &UnroutableError{Src: o.Src, Dst: o.Dst, FailLevel: o.FailLevel}}})
	}
	b.d = dels
	latMS := float64(time.Since(live[0].enq)) / float64(time.Millisecond)
	m.epochSize.add(float64(len(live)))
	m.epochLat.add(latMS)
	// One route-churn sample per scheduling epoch: routes torn down since
	// the last one (releases, revocations, delta departures) plus routes
	// established by this pass. This is the reconfiguration cost the
	// incremental mode minimizes — batch mode records it too, so the two
	// are directly comparable.
	m.establishedRoutes.Add(uint64(established))
	m.routeChurn.add(float64(m.tornSinceEpoch + established))
	m.tornSinceEpoch = 0
	// Drop ticket references from the reused buffer; the deliveries carry
	// them the rest of the way.
	for i := range live {
		live[i] = nil
	}
	m.livebuf = live[:0]
	m.publishStatsLocked()
	return b
}

// deliver sends staged verdicts to their waiting Connect calls, outside
// the manager lock; the buffered resp channels make every send
// non-blocking. Entries are cleared so the pooled batch does not retain
// tickets past the epoch, then the batch returns to delPool.
func (m *Manager) deliver(b *delbatch) {
	if b == nil {
		return
	}
	for i := range b.d {
		b.d[i].t.resp <- b.d[i].r
		b.d[i] = delivery{}
	}
	b.d = b.d[:0]
	m.delPool.Put(b)
}

// stageFlushLocked runs one epoch and routes the staged verdicts.
// Caller holds m.mu. With the delivery pipeline on, the batch is handed
// to the delivery worker and the caller moves straight on — scheduling
// of epoch N+1 overlaps verdict wakeups of epoch N. The hand-off is
// nonblocking and strictly XOR with caller delivery: each pooled batch
// is owned by exactly one deliverer from flush to delPool.Put, so every
// verdict is still sent exactly once. A full pipeline falls back to
// returning the batch for the caller to deliver after unlocking:
// back-to-back epochs degrade to the synchronous behavior, never stall.
// Returns (batch, false) when the caller must deliver, (nil, true) when
// the worker took it.
func (m *Manager) stageFlushLocked() (*delbatch, bool) {
	b := m.flushLocked()
	if m.delivCh == nil || b == nil || len(b.d) == 0 {
		return b, false
	}
	select {
	case m.delivCh <- b:
		return nil, true
	default:
		return b, false
	}
}

// deliveryWorker drains staged epochs off the pipeline and wakes their
// waiting Connect calls. Spent batches return to delPool inside
// deliver. Exits when the flusher closes delivCh at shutdown, after
// delivering everything already staged.
func (m *Manager) deliveryWorker() {
	defer close(m.delivDone)
	for b := range m.delivCh {
		m.deliver(b)
	}
}

// drainWorker continuously retires release-ring entries into the
// pre-drained buffer so epoch flushes pay a pointer swap instead of a
// ring walk. It is the ring's consumer while enabled — drmu, not m.mu,
// is the consumer lock (flushes take drmu inside mu; the worker never
// takes mu, so the mu→drmu order is deadlock-free). Exits on Close;
// Close waits for drainDone before its final drain so no handle is
// stranded in predrained.
func (m *Manager) drainWorker() {
	defer close(m.drainDone)
	for {
		select {
		case <-m.drainKick:
		case <-m.closing:
			return
		}
		m.drmu.Lock()
		for {
			h := m.relRing.pop()
			if h == nil {
				break
			}
			m.predrained = append(m.predrained, h)
		}
		m.drmu.Unlock()
	}
}

// newTrackedState builds the plane's link state with load tracking on:
// the manager pays one predictable branch per channel operation to keep
// the O(1) occupancy gauge and per-channel cumulative counters current —
// the signals Occupancy, Stats, and federation's least-loaded policy
// read without the scheduling lock.
func newTrackedState(tree *topology.Tree) *linkstate.State {
	st := linkstate.New(tree)
	st.TrackLoad()
	return st
}

// releaseRetainedLocked drops the partial allocations of a rejected
// request (mirrors internal/dynamic's handling of no-rollback schedulers).
func (m *Manager) releaseRetainedLocked(o *core.Outcome) {
	core.ReleaseRoute(m.st, o.Src, o.Dst, o.Ports, nil)
	o.Ports = o.Ports[:0]
}
