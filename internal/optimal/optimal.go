// Package optimal implements a rearrangeable reference scheduler for fat
// trees with w >= m: it assigns upward ports by recursive bipartite edge
// coloring (the constructive Slepian–Duguid argument), achieving 100%
// schedulability for any admissible batch — in particular for every
// permutation. It upper-bounds what the greedy Level-wise scheduler can
// hope to achieve and quantifies how far from optimal both evaluated
// algorithms are (extension experiment E1).
//
// Level-by-level argument: at level h the active requests form a bipartite
// multigraph between source-side switches σ_h and destination-side mirror
// switches δ_h. Its maximum degree is at most max(m, per-switch request
// load) ≤ w, so it is w-edge-colorable (König); using the color as P_h
// gives every request a private Ulink(h, σ_h, P_h) and — by Theorem 2 — a
// private Dlink(h, δ_h, P_h). Climbing one level preserves the degree
// bound because edges into a level-h+1 switch come from distinct children
// (same child ⇒ distinct colors).
package optimal

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/maxflow"
	"repro/internal/topology"
)

// Scheduler is the optimal reference scheduler.
type Scheduler struct{}

// New returns an optimal reference scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name identifies the scheduler in results and reports.
func (s *Scheduler) Name() string { return "optimal" }

// Admissible reports whether a batch can be fully scheduled by this
// construction on the given tree: w >= m and no level-0 switch sources or
// sinks more than w active (H > 0) requests.
func Admissible(tree *topology.Tree, reqs []core.Request) bool {
	if tree.Parents() < tree.Children() {
		return false
	}
	w := tree.Parents()
	out := make(map[int]int)
	in := make(map[int]int)
	for _, r := range reqs {
		if tree.AncestorLevel(r.Src, r.Dst) == 0 {
			continue
		}
		srcSw, _ := tree.NodeSwitch(r.Src)
		dstSw, _ := tree.NodeSwitch(r.Dst)
		out[srcSw]++
		in[dstSw]++
		if out[srcSw] > w || in[dstSw] > w {
			return false
		}
	}
	return true
}

// Schedule routes the batch, mutating st. Requests beyond the admissible
// per-switch load (w per level-0 switch in either role) are dropped —
// they exceed physical port capacity and no scheduler could grant them
// all. Admission selects a *maximum* feasible subset by max-flow (greedy
// admission is suboptimal for degree-constrained subgraphs), so on a
// fresh state the grant count is a true upper bound over every
// scheduler. If st is not fresh, requests whose computed path collides
// with pre-existing occupancy fail individually.
//
// Schedule returns an error result (granted = 0 paths, all failed) if the
// tree has w < m, where the recursion's degree bound does not hold.
func (s *Scheduler) Schedule(st *linkstate.State, reqs []core.Request) *core.Result {
	tree := st.Tree()
	res := &core.Result{Scheduler: s.Name(), Total: len(reqs)}
	res.Outcomes = make([]core.Outcome, len(reqs))
	for i, r := range reqs {
		res.Outcomes[i] = core.Outcome{
			Request:   r,
			H:         tree.AncestorLevel(r.Src, r.Dst),
			FailLevel: -1,
		}
	}
	if tree.Parents() < tree.Children() {
		for i := range res.Outcomes {
			res.Outcomes[i].FailLevel = 0
		}
		return res
	}
	w := tree.Parents()

	// Admission: maximum subset with per-switch source/sink load <= w,
	// via unit-capacity flow source → srcSwitch(w) → request(1) →
	// dstSwitch(w) → sink.
	type active struct {
		idx int                  // outcome index
		cur topology.RouteCursor // current (σ_h, δ_h) switch pair
	}
	var act []active
	flow := maxflow.NewGraph(2)
	const source, sink = 0, 1
	srcNode := map[int]int{}
	dstNode := map[int]int{}
	type pending struct {
		idx          int
		edge         int
		sigma, delta int
	}
	var pend []pending
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.H == 0 {
			o.Granted = true
			res.Granted++
			continue
		}
		srcSw, _ := tree.NodeSwitch(o.Src)
		dstSw, _ := tree.NodeSwitch(o.Dst)
		sn, ok := srcNode[srcSw]
		if !ok {
			sn = flow.AddNode()
			srcNode[srcSw] = sn
			flow.AddEdge(source, sn, w)
		}
		dn, ok := dstNode[dstSw]
		if !ok {
			dn = flow.AddNode()
			dstNode[dstSw] = dn
			flow.AddEdge(dn, sink, w)
		}
		pend = append(pend, pending{idx: i, edge: flow.AddEdge(sn, dn, 1), sigma: srcSw, delta: dstSw})
	}
	flow.Run(source, sink)
	for _, p := range pend {
		o := &res.Outcomes[p.idx]
		if flow.Flow(p.edge) == 0 {
			o.FailLevel = 0 // inadmissible: dropped at admission
			continue
		}
		a := active{idx: p.idx}
		a.cur.StartAt(tree, 0, p.sigma, p.delta)
		act = append(act, a)
	}

	// Level-by-level edge coloring.
	maxH := 0
	for _, a := range act {
		if h := res.Outcomes[a.idx].H; h > maxH {
			maxH = h
		}
	}
	for h := 0; h < maxH && len(act) > 0; h++ {
		n := tree.SwitchesAt(h)
		edges := make([]coloring.Edge, len(act))
		for i, a := range act {
			edges[i] = coloring.Edge{L: a.cur.Sigma(), R: a.cur.Delta()}
		}
		colors, err := coloring.Color(n, n, edges, w)
		if err != nil {
			// Degree bound violated — cannot happen for admitted batches;
			// surface loudly because it would be a logic error.
			panic(fmt.Sprintf("optimal: level %d coloring failed: %v", h, err))
		}
		next := act[:0]
		for i := range act {
			a := act[i]
			o := &res.Outcomes[a.idx]
			p := colors[i]
			o.Ports = append(o.Ports, p)
			a.cur.Advance(p)
			if len(o.Ports) < o.H {
				next = append(next, a)
			}
		}
		act = next
	}

	// Commit the computed paths against the link state.
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if o.Granted || o.FailLevel == 0 && len(o.Ports) == 0 && o.H > 0 {
			continue
		}
		if len(o.Ports) != o.H {
			continue
		}
		if err := st.AllocatePath(o.Src, o.Dst, o.Ports); err != nil {
			// Only possible when st was not fresh.
			o.Ports = o.Ports[:0]
			o.FailLevel = 0
			continue
		}
		o.Granted = true
		res.Granted++
	}
	return res
}
