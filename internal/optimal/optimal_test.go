package optimal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestPermutationsFullySchedulable(t *testing.T) {
	// Fat trees with w == m are rearrangeably non-blocking for
	// permutations: the optimal scheduler must reach 100%.
	shapes := [][3]int{{2, 4, 4}, {2, 8, 8}, {3, 4, 4}, {3, 6, 6}, {4, 3, 3}}
	for _, sh := range shapes {
		tree := topology.MustNew(sh[0], sh[1], sh[2])
		g := traffic.NewGenerator(tree.Nodes(), 7)
		for trial := 0; trial < 10; trial++ {
			reqs := g.MustBatch(traffic.RandomPermutation)
			res := New().Schedule(linkstate.New(tree), reqs)
			if res.Granted != res.Total {
				t.Fatalf("FT(%v) trial %d: optimal granted %d/%d", sh, trial, res.Granted, res.Total)
			}
			if err := core.Verify(tree, res); err != nil {
				t.Fatalf("FT(%v): %v", sh, err)
			}
		}
	}
}

func TestStructuredPermutationsFullySchedulable(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 9)
	for _, p := range []traffic.Pattern{
		traffic.BitReversal, traffic.BitComplement, traffic.Shuffle,
		traffic.Tornado, traffic.Neighbor, traffic.Transpose,
	} {
		reqs := g.MustBatch(p)
		res := New().Schedule(linkstate.New(tree), reqs)
		if res.Granted != res.Total {
			t.Fatalf("%v: optimal granted %d/%d", p, res.Granted, res.Total)
		}
		if err := core.Verify(tree, res); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestOptimalAtLeastLevelWise(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 11)
	for trial := 0; trial < 20; trial++ {
		reqs := g.MustBatch(traffic.RandomPermutation)
		opt := New().Schedule(linkstate.New(tree), reqs)
		lw := core.NewLevelWise().Schedule(linkstate.New(tree), reqs)
		if opt.Granted < lw.Granted {
			t.Fatalf("trial %d: optimal %d < level-wise %d", trial, opt.Granted, lw.Granted)
		}
	}
}

func TestHotspotAdmission(t *testing.T) {
	// All 64 nodes target node 0: dest switch 0 can sink at most w = 4
	// external requests; the 4 nodes of switch 0 reach it internally
	// (H == 0).
	tree := topology.MustNew(3, 4, 4)
	reqs := make([]core.Request, 64)
	for i := range reqs {
		reqs[i] = core.Request{Src: i, Dst: 0}
	}
	res := New().Schedule(linkstate.New(tree), reqs)
	// 4 same-switch + 4 admitted external.
	if res.Granted != 8 {
		t.Fatalf("hotspot granted %d, want 8", res.Granted)
	}
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
	if Admissible(tree, reqs) {
		t.Fatal("64-to-1 hotspot reported admissible")
	}
}

func TestAdmissible(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 13)
	if !Admissible(tree, g.MustBatch(traffic.RandomPermutation)) {
		t.Fatal("permutation reported inadmissible")
	}
	if !Admissible(tree, nil) {
		t.Fatal("empty batch reported inadmissible")
	}
	slim := topology.MustNew(3, 4, 2)
	if Admissible(slim, nil) {
		t.Fatal("w < m tree reported admissible")
	}
}

func TestSlimTreeRefused(t *testing.T) {
	tree := topology.MustNew(3, 4, 2)
	g := traffic.NewGenerator(64, 17)
	res := New().Schedule(linkstate.New(tree), g.MustBatch(traffic.RandomPermutation))
	if res.Granted != 0 {
		t.Fatalf("w < m: granted %d, want 0 (refused)", res.Granted)
	}
}

func TestNonFreshStateFailsGracefully(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	st := linkstate.New(tree)
	// Occupy every up channel of switch 0.
	for p := 0; p < 4; p++ {
		if err := st.Allocate(linkstate.Up, 0, 0, p); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []core.Request{{Src: 0, Dst: 15}} // needs to leave switch 0
	res := New().Schedule(st, reqs)
	if res.Granted != 0 {
		t.Fatalf("granted %d on a saturated source switch", res.Granted)
	}
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "optimal" {
		t.Fatal("name")
	}
}

// Property: on any random batch, the optimal scheduler grants at least as
// much as Level-wise and the result verifies.
func TestQuickDominatesLevelWise(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64) + 1
		reqs := make([]core.Request, n)
		for i := range reqs {
			reqs[i] = core.Request{Src: rng.Intn(64), Dst: rng.Intn(64)}
		}
		opt := New().Schedule(linkstate.New(tree), reqs)
		if err := core.Verify(tree, opt); err != nil {
			t.Log(err)
			return false
		}
		lw := core.NewLevelWise().Schedule(linkstate.New(tree), reqs)
		return opt.Granted >= lw.Granted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every admissible batch is granted completely.
func TestQuickAdmissibleMeansFullGrant(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		reqs := make([]core.Request, n)
		for i := range reqs {
			reqs[i] = core.Request{Src: rng.Intn(64), Dst: rng.Intn(64)}
		}
		if !Admissible(tree, reqs) {
			return true
		}
		res := New().Schedule(linkstate.New(tree), reqs)
		return res.Granted == res.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimalPermutation512(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	g := traffic.NewGenerator(512, 1)
	reqs := g.MustBatch(traffic.RandomPermutation)
	st := linkstate.New(tree)
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		s.Schedule(st, reqs)
	}
}
