package faults

// Gray failures: components that are neither up nor down but somewhere
// in between. Clean faults (faults.go) flip once; the processes here
// *oscillate* — a FlakyLink spends a duty-cycle fraction of fabric
// steps out of service, a DegradedPlane answers admissions slowly for a
// duty-cycle fraction of calls. Both are driven by a counter-mode hash
// (splitmix64 finalizer over the seed, the component coordinates, and
// the step number), so the processes are stateless, seekable, and
// bit-reproducible: step n of a given process is the same on every
// machine and every run, which is what lets the chaos tests and the
// ftbench -gray sweep replay identical churn against both arms of a
// comparison.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/topology"
)

// Duration is a time.Duration that serializes as a Go duration string
// ("2ms"), matching the federation config grammar.
type Duration time.Duration

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a Go duration string ("" means zero).
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("faults: duration: %w", err)
	}
	if s == "" {
		*d = 0
		return nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("faults: duration: %w", err)
	}
	*d = Duration(v)
	return nil
}

// FlakyLink is a seeded intermittent fault process on one link: at each
// fabric step the link is down with probability DutyCycle, decided by a
// deterministic hash of (Seed, link coordinates, step). Successive
// steps are independent draws, so a flaky link transitions up/down at
// rate ≈ 2·d·(1−d) per step — the worst-case churn source the flap
// damper exists to bound.
type FlakyLink struct {
	Link LinkFault `json:"link"`
	// DutyCycle is the fraction of steps spent down, in [0, 1].
	DutyCycle float64 `json:"duty_cycle"`
	// Seed decorrelates processes that share a link or a generator call.
	Seed int64 `json:"seed,omitempty"`
}

// Down reports whether the link is out of service during the given
// step. Deterministic: same receiver and step, same answer, always.
func (f *FlakyLink) Down(step uint64) bool {
	h := uint64(f.Seed)
	h = mix64(h ^ uint64(f.Link.Level))
	h = mix64(h ^ uint64(f.Link.Switch)<<16)
	h = mix64(h ^ uint64(f.Link.Port)<<32)
	h = mix64(h ^ uint64(f.Link.Direction)<<48)
	h = mix64(h ^ step)
	return unit(h) < f.DutyCycle
}

// Validate checks the process: the link must exist in the tree and the
// duty cycle must be a probability.
func (f *FlakyLink) Validate(tree *topology.Tree) error {
	fs := FaultSet{Links: []LinkFault{f.Link}}
	if err := fs.Validate(tree); err != nil {
		return err
	}
	if math.IsNaN(f.DutyCycle) || f.DutyCycle < 0 || f.DutyCycle > 1 {
		return fmt.Errorf("faults: flaky duty_cycle %v outside [0, 1]", f.DutyCycle)
	}
	return nil
}

// DegradedPlane is a seeded slow-but-alive process for a federation
// plane: a DutyCycle fraction of admissions (decided per admission
// sequence number, same hash construction as FlakyLink) incur
// AdmitLatency before the plane answers. The plane grants normally —
// the failure is purely latency, which is what the router's EWMA
// health score and latency budget are meant to notice.
type DegradedPlane struct {
	// Plane names the target plane (ftserve resolves it; a Router call
	// carries the name explicitly, so the field may be empty there).
	Plane string `json:"plane,omitempty"`
	// AdmitLatency is injected before the admission call when the
	// process is active.
	AdmitLatency Duration `json:"admit_latency"`
	// DutyCycle is the fraction of admissions delayed, in [0, 1];
	// 0 means never (a no-op process), 1 means every admission.
	DutyCycle float64 `json:"duty_cycle"`
	Seed      int64   `json:"seed,omitempty"`
}

// SlowAt reports whether admission number seq (0-based, per plane) pays
// the injected latency.
func (d *DegradedPlane) SlowAt(seq uint64) bool {
	h := uint64(d.Seed)
	for _, b := range []byte(d.Plane) {
		h = mix64(h ^ uint64(b))
	}
	h = mix64(h ^ seq)
	return unit(h) < d.DutyCycle
}

// Validate checks the process parameters (tree-independent; the plane
// name is resolved by whoever applies it).
func (d *DegradedPlane) Validate() error {
	if math.IsNaN(d.DutyCycle) || d.DutyCycle < 0 || d.DutyCycle > 1 {
		return fmt.Errorf("faults: degraded duty_cycle %v outside [0, 1]", d.DutyCycle)
	}
	if d.AdmitLatency < 0 {
		return fmt.Errorf("faults: negative admit_latency %s", time.Duration(d.AdmitLatency))
	}
	return nil
}

// GraySet is the serializable bundle of intermittent fault processes —
// the gray analogue of FaultSet, and the wire form ftserve's POST
// /fault accepts for flaky injection. The zero value is empty.
type GraySet struct {
	Flaky    []FlakyLink     `json:"flaky,omitempty"`
	Degraded []DegradedPlane `json:"degraded,omitempty"`
}

// Empty reports whether the set holds no process.
func (g *GraySet) Empty() bool {
	return g == nil || (len(g.Flaky) == 0 && len(g.Degraded) == 0)
}

// Validate checks every process; flaky links validate against the tree.
func (g *GraySet) Validate(tree *topology.Tree) error {
	if g == nil {
		return nil
	}
	for i := range g.Flaky {
		if err := g.Flaky[i].Validate(tree); err != nil {
			return err
		}
	}
	for i := range g.Degraded {
		if err := g.Degraded[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String summarizes the set for logs.
func (g *GraySet) String() string {
	if g.Empty() {
		return "gray: none"
	}
	return fmt.Sprintf("gray: %d flaky links, %d degraded planes", len(g.Flaky), len(g.Degraded))
}

// FlakyLinks selects each physical link of the tree independently with
// probability p and makes it a flaky process with the given duty cycle
// — the gray analogue of Uniform. Each process gets its own derived
// seed, so two selected links never flap in lockstep. Deterministic in
// seed; p <= 0 returns nil.
func FlakyLinks(tree *topology.Tree, p, duty float64, seed int64) []FlakyLink {
	if p <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []FlakyLink
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for port := 0; port < tree.Parents(); port++ {
				pick := rng.Float64() < p
				procSeed := rng.Int63() // always draw: selection-independent streams
				if pick {
					out = append(out, FlakyLink{
						Link:      LinkFault{Level: h, Switch: idx, Port: port},
						DutyCycle: duty,
						Seed:      procSeed,
					})
				}
			}
		}
	}
	return out
}

// Flapper steps a set of FlakyLink processes against a fabric and
// emits, per step, the diff as a pair of clean fault sets: the links
// that just went down (to Fail) and the links that just came back (to
// Repair). It is the bridge between the stateless processes and the
// fabric's stateful Fail/Repair surface — ftserve's stepper goroutine
// and the ftbench -gray harness both drive one.
type Flapper struct {
	procs []FlakyLink
	down  []bool
	step  uint64
}

// NewFlapper starts a flapper over the given processes, all links
// initially in service (the first Step applies step 0's down set).
func NewFlapper(procs []FlakyLink) *Flapper {
	return &Flapper{
		procs: append([]FlakyLink(nil), procs...),
		down:  make([]bool, len(procs)),
	}
}

// Add registers more processes mid-flight, initially in service.
func (f *Flapper) Add(procs []FlakyLink) {
	f.procs = append(f.procs, procs...)
	f.down = append(f.down, make([]bool, len(procs))...)
}

// Step advances the fabric clock one step and returns the transition
// diff: fail names links that went down this step, repair links that
// came back. Either may be nil when nothing transitioned.
func (f *Flapper) Step() (fail, repair *FaultSet) {
	n := f.step
	f.step++
	for i := range f.procs {
		d := f.procs[i].Down(n)
		if d == f.down[i] {
			continue
		}
		f.down[i] = d
		if d {
			if fail == nil {
				fail = &FaultSet{}
			}
			fail.Links = append(fail.Links, f.procs[i].Link)
		} else {
			if repair == nil {
				repair = &FaultSet{}
			}
			repair.Links = append(repair.Links, f.procs[i].Link)
		}
	}
	return fail, repair
}

// Steps returns how many steps have been applied.
func (f *Flapper) Steps() uint64 { return f.step }

// Procs returns the registered processes (shared backing; read-only).
func (f *Flapper) Procs() []FlakyLink { return f.procs }

// DownCount returns how many registered links are currently down.
func (f *Flapper) DownCount() int {
	n := 0
	for _, d := range f.down {
		if d {
			n++
		}
	}
	return n
}

// DownSet returns the currently-down links as a clean fault set — what
// a heal pass must Repair after the flapper stops stepping.
func (f *Flapper) DownSet() *FaultSet {
	fs := &FaultSet{}
	for i, d := range f.down {
		if d {
			fs.Links = append(fs.Links, f.procs[i].Link)
		}
	}
	return fs
}

// Down reports whether process i is currently down.
func (f *Flapper) Down(i int) bool { return f.down[i] }

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1) using the top 53 bits.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
