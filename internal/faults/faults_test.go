package faults

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/sched"
	"repro/internal/topology"
)

func TestJSONRoundTrip(t *testing.T) {
	fs := &FaultSet{
		Links: []LinkFault{
			{Level: 1, Switch: 2, Port: 3},
			{Level: 0, Switch: 0, Port: 1, Direction: Up},
			{Level: 2, Switch: 5, Port: 0, Direction: Down},
		},
		Switches: []SwitchFault{{Level: 1, Switch: 4}},
	}
	data, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	var back FaultSet
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fs, &back) {
		t.Fatalf("round trip mutated the set:\n  sent %+v\n  got  %+v", fs, &back)
	}
	// The wire format the HTTP API documents: lowercase keys, direction
	// omitted for Both, spellable by hand in a curl body.
	var hand FaultSet
	if err := json.Unmarshal([]byte(`{"links":[{"level":1,"switch":2,"port":3,"direction":"up"}]}`), &hand); err != nil {
		t.Fatal(err)
	}
	if len(hand.Links) != 1 || hand.Links[0].Direction != Up {
		t.Fatalf("hand-written JSON parsed as %+v", hand)
	}
	if err := json.Unmarshal([]byte(`{"links":[{"level":0,"switch":0,"port":0,"direction":"sideways"}]}`), &hand); err == nil {
		t.Fatal("invalid direction accepted")
	}
}

func TestEmptyFaultSet(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	var nilSet *FaultSet
	if !nilSet.Empty() || !(&FaultSet{}).Empty() {
		t.Fatal("nil or zero FaultSet not Empty")
	}
	if err := nilSet.Validate(tree); err != nil {
		t.Fatal(err)
	}
	if got := nilSet.Channels(tree); got != nil {
		t.Fatalf("empty set expanded to %v", got)
	}
	st := linkstate.New(tree)
	if n := (&FaultSet{}).Apply(st); n != 0 {
		t.Fatalf("empty Apply failed %d channels", n)
	}
	if !st.Equal(linkstate.New(tree)) {
		t.Fatal("empty Apply mutated state")
	}
}

func TestValidate(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	bad := []FaultSet{
		{Links: []LinkFault{{Level: 2, Switch: 0, Port: 0}}},  // link level out of range
		{Links: []LinkFault{{Level: 0, Switch: -1, Port: 0}}}, // negative switch
		{Links: []LinkFault{{Level: 0, Switch: 0, Port: 4}}},  // port >= w
		{Switches: []SwitchFault{{Level: 2, Switch: 0}}},      // switch level out of range
		{Switches: []SwitchFault{{Level: 0, Switch: 99}}},     // switch index out of range
	}
	for i, fs := range bad {
		if err := fs.Validate(tree); err == nil {
			t.Fatalf("case %d: invalid set %+v passed Validate", i, fs)
		}
	}
	ok := FaultSet{
		Links:    []LinkFault{{Level: 0, Switch: 3, Port: 3, Direction: Down}},
		Switches: []SwitchFault{{Level: 1, Switch: 0}},
	}
	if err := ok.Validate(tree); err != nil {
		t.Fatal(err)
	}
}

// TestLinkChannels checks direction handling and dedup for plain link
// faults.
func TestLinkChannels(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	fs := &FaultSet{Links: []LinkFault{
		{Level: 0, Switch: 1, Port: 2},                // both channels
		{Level: 0, Switch: 1, Port: 2, Direction: Up}, // duplicate of the up half
		{Level: 1, Switch: 0, Port: 0, Direction: Down},
	}}
	got := fs.Channels(tree)
	expect := []Channel{
		{Dir: linkstate.Up, Level: 0, Switch: 1, Port: 2},
		{Dir: linkstate.Down, Level: 0, Switch: 1, Port: 2},
		{Dir: linkstate.Down, Level: 1, Switch: 0, Port: 0},
	}
	if !reflect.DeepEqual(got, expect) {
		t.Fatalf("Channels = %v, want %v", got, expect)
	}
}

// TestSwitchExpansion pins the incident-link set of a mid-tree switch:
// w parent-side up-links at its own link level plus m child-side links
// at the level below, both channels each, and verifies each child-side
// link really lands on the failed switch by walking the topology.
func TestSwitchExpansion(t *testing.T) {
	tree := topology.MustNew(3, 4, 4) // 3 levels so level-1 switches have both sides
	fs := &FaultSet{Switches: []SwitchFault{{Level: 1, Switch: 5}}}
	chans := fs.Channels(tree)
	wantLen := 2 * (tree.Parents() + tree.Children())
	if len(chans) != wantLen {
		t.Fatalf("level-1 switch expanded to %d channels, want %d", len(chans), wantLen)
	}
	for _, c := range chans {
		switch c.Level {
		case 1: // parent-side: must leave switch 5
			if c.Switch != 5 {
				t.Fatalf("parent-side channel %v not on the failed switch", c)
			}
		case 0: // child-side: climbing this link must arrive at switch 5
			if up := tree.UpParent(0, c.Switch, c.Port); up != 5 {
				t.Fatalf("child-side channel %v climbs to switch %d, want 5", c, up)
			}
		default:
			t.Fatalf("channel %v at unexpected level", c)
		}
	}

	// A top-level switch has no parent side; a level-0 switch has no
	// modeled child side (its children are processing nodes).
	top := &FaultSet{Switches: []SwitchFault{{Level: 2, Switch: 0}}}
	if got := len(top.Channels(tree)); got != 2*tree.Children() {
		t.Fatalf("top switch expanded to %d channels, want %d", got, 2*tree.Children())
	}
	leaf := &FaultSet{Switches: []SwitchFault{{Level: 0, Switch: 0}}}
	if got := len(leaf.Channels(tree)); got != 2*tree.Parents() {
		t.Fatalf("leaf switch expanded to %d channels, want %d", got, 2*tree.Parents())
	}
}

func TestApplyIsIdempotent(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	fs := &FaultSet{
		Links:    []LinkFault{{Level: 0, Switch: 0, Port: 0}},
		Switches: []SwitchFault{{Level: 1, Switch: 2}},
	}
	st := linkstate.New(tree)
	first := fs.Apply(st)
	if first != len(fs.Channels(tree)) {
		t.Fatalf("first Apply failed %d channels, want %d", first, len(fs.Channels(tree)))
	}
	if st.FailedCount() != first {
		t.Fatalf("FailedCount %d after applying %d channels", st.FailedCount(), first)
	}
	if again := fs.Apply(st); again != 0 {
		t.Fatalf("second Apply re-failed %d channels", again)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	a, b := Uniform(tree, 0.1, 42), Uniform(tree, 0.1, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Uniform not deterministic in seed")
	}
	if c := Uniform(tree, 0.1, 43); reflect.DeepEqual(a, c) {
		t.Fatal("Uniform ignores the seed")
	}
	if len(a.Links) == 0 {
		t.Fatal("Uniform(p=0.1) drew no faults on a 3-level tree")
	}
	if err := a.Validate(tree); err != nil {
		t.Fatalf("generated set invalid: %v", err)
	}
	if !Uniform(tree, 0, 42).Empty() {
		t.Fatal("Uniform(p=0) not empty")
	}

	s1, s2 := CorrelatedSwitches(tree, 0.2, 7), CorrelatedSwitches(tree, 0.2, 7)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("CorrelatedSwitches not deterministic in seed")
	}
	if len(s1.Switches) == 0 {
		t.Fatal("CorrelatedSwitches(q=0.2) drew no faults")
	}
	if err := s1.Validate(tree); err != nil {
		t.Fatalf("generated switch set invalid: %v", err)
	}
}

// TestGoldenEmptyFaultSetBitIdentical is the acceptance-criteria golden
// test: applying an empty FaultSet leaves every registry engine's output
// bit-identical — same grants, same ports, same fail levels, same final
// link state — to a run on an untouched state. Engines run with their
// default (deterministic) spec; the parallel family's default mode is
// deterministic, so family names alone are reproducible.
func TestGoldenEmptyFaultSetBitIdentical(t *testing.T) {
	shapes := [][3]int{{2, 4, 4}, {3, 4, 2}}
	for _, info := range sched.List() {
		for _, dims := range shapes {
			tree := topology.MustNew(dims[0], dims[1], dims[2])
			rng := rand.New(rand.NewSource(1234))
			reqs := make([]core.Request, 60)
			for i := range reqs {
				reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
			}
			plain, masked := linkstate.New(tree), linkstate.New(tree)
			if n := (&FaultSet{}).Apply(masked); n != 0 {
				t.Fatalf("empty Apply failed %d channels", n)
			}
			want := sched.MustParse(info.Family).Schedule(plain, reqs)
			got := sched.MustParse(info.Family).Schedule(masked, reqs)
			if got.Granted != want.Granted || got.Total != want.Total {
				t.Fatalf("%s on FT%v: %d/%d granted with empty mask, want %d/%d",
					info.Family, dims, got.Granted, got.Total, want.Granted, want.Total)
			}
			if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("%s on FT%v: outcomes diverge under an empty FaultSet", info.Family, dims)
			}
			if !plain.Equal(masked) {
				t.Fatalf("%s on FT%v: final link state diverges under an empty FaultSet", info.Family, dims)
			}
		}
	}
}

// TestGoldenFaultSetArithmeticCursorBitIdentical extends the cursor
// golden test to degraded fabrics: with the same non-empty FaultSet
// applied to both states, every registry engine must stay bit-identical
// between the table-driven topology kernel and the Theorem 1 arithmetic
// cursor — faults change which ports are available, never how the two
// cursor implementations walk the tree.
func TestGoldenFaultSetArithmeticCursorBitIdentical(t *testing.T) {
	shapes := [][3]int{{2, 4, 4}, {3, 4, 2}, {2, 6, 3}}
	for _, info := range sched.List() {
		for _, dims := range shapes {
			tab := topology.MustNew(dims[0], dims[1], dims[2])
			ari := tab.WithArithmeticCursor()
			fs := &FaultSet{}
			for h := 0; h < tab.LinkLevels(); h++ {
				fs.Links = append(fs.Links,
					LinkFault{Level: h, Switch: h % tab.SwitchesAt(h), Port: 0},
					LinkFault{Level: h, Switch: (h + 1) % tab.SwitchesAt(h), Port: tab.Parents() - 1, Direction: Down})
			}
			stTab, stAri := linkstate.New(tab), linkstate.New(ari)
			fs.Apply(stTab)
			fs.Apply(stAri)
			rng := rand.New(rand.NewSource(4321))
			reqs := make([]core.Request, 60)
			for i := range reqs {
				reqs[i] = core.Request{Src: rng.Intn(tab.Nodes()), Dst: rng.Intn(tab.Nodes())}
			}
			want := sched.MustParse(info.Family).Schedule(stTab, reqs)
			got := sched.MustParse(info.Family).Schedule(stAri, reqs)
			if got.Granted != want.Granted || got.Total != want.Total {
				t.Fatalf("%s on FT%v: %d/%d granted with arithmetic cursor, want %d/%d",
					info.Family, dims, got.Granted, got.Total, want.Granted, want.Total)
			}
			if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("%s on FT%v: outcomes diverge between cursors on a faulted fabric", info.Family, dims)
			}
			if !stTab.Equal(stAri) {
				t.Fatalf("%s on FT%v: final link state diverges between cursors on a faulted fabric", info.Family, dims)
			}
		}
	}
}

// TestDegradedSchedulingRoutesAround checks the diversity argument from
// the paper actually cashes out: with one of w=4 upward channels failed
// per level-0 switch, the level-wise scheduler still grants a modest
// batch by routing around the dead ports, and never routes through a
// failed channel.
func TestDegradedSchedulingRoutesAround(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	st := linkstate.New(tree)
	fs := &FaultSet{}
	for idx := 0; idx < tree.SwitchesAt(0); idx++ {
		fs.Links = append(fs.Links, LinkFault{Level: 0, Switch: idx, Port: 0})
	}
	fs.Apply(st)

	rng := rand.New(rand.NewSource(9))
	reqs := make([]core.Request, 8)
	for i := range reqs {
		reqs[i] = core.Request{Src: rng.Intn(tree.Nodes()), Dst: rng.Intn(tree.Nodes())}
	}
	res := sched.MustParse("level-wise").Schedule(st, reqs)
	if res.Granted == 0 {
		t.Fatal("no grants on a fabric with 3 of 4 upward channels healthy")
	}
	for i := range res.Outcomes {
		o := &res.Outcomes[i]
		if !o.Granted {
			continue
		}
		// Port 0 at link level 0 is failed on every switch; a granted
		// route climbing through it crossed a dead channel. (Higher
		// levels are healthy, so only the first hop is constrained.)
		if len(o.Ports) > 0 && o.Ports[0] == 0 {
			t.Fatalf("outcome %d routed through failed port 0: ports %v", i, o.Ports)
		}
	}
}
