// Package faults is the fault model for degraded-fabric operation: a
// declarative, serializable description of which components of an
// FT(l, m, w) have failed, and deterministic generators for injecting
// them. A FaultSet names failed links — (link level, switch, port,
// direction) — and failed switches; a switch failure expands to every
// link incident on the switch, up-side and down-side. The set is what
// travels over the wire (ftserve's POST /fault), what the chaos harness
// replays, and what linkstate applies to its persistent fault mask.
//
// The fat tree's defining property — w-way path diversity at every
// level — is exactly what makes masking these faults cheap: a failed
// link is a permanently cleared availability bit, and the Theorem 2
// mirror arithmetic still holds on the surviving ports, so every
// scheduler routes around the fault set unchanged.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Direction selects which channels of a physical link a fault covers.
// The zero value is Both — the common case of a severed cable — so a
// JSON fault that omits "direction" kills the whole link.
type Direction int

// Fault directions.
const (
	Both Direction = iota
	Up
	Down
)

// String names the direction as it appears on the wire.
func (d Direction) String() string {
	switch d {
	case Both:
		return "both"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// MarshalJSON encodes the direction as its wire name.
func (d Direction) MarshalJSON() ([]byte, error) {
	switch d {
	case Both, Up, Down:
		return json.Marshal(d.String())
	default:
		return nil, fmt.Errorf("faults: invalid direction %d", int(d))
	}
}

// UnmarshalJSON accepts "up", "down", "both", or "" (meaning both).
func (d *Direction) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch strings.ToLower(s) {
	case "", "both":
		*d = Both
	case "up":
		*d = Up
	case "down":
		*d = Down
	default:
		return fmt.Errorf("faults: invalid direction %q (up, down or both)", s)
	}
	return nil
}

// LinkFault names a failed link: the physical link at link level Level
// leaving upward port Port of the level-Level switch Switch, restricted
// to one channel by Direction (or both channels, the default).
type LinkFault struct {
	Level     int       `json:"level"`
	Switch    int       `json:"switch"`
	Port      int       `json:"port"`
	Direction Direction `json:"direction,omitempty"`
}

// SwitchFault names a failed switch at (Level, Switch); it expands to
// every incident link — the upward links to its parents and the
// downward links from its children.
type SwitchFault struct {
	Level  int `json:"level"`
	Switch int `json:"switch"`
}

// FaultSet is a serializable set of failed components. The zero value
// is the empty set (a fully healthy fabric).
type FaultSet struct {
	Links    []LinkFault   `json:"links,omitempty"`
	Switches []SwitchFault `json:"switches,omitempty"`
}

// Empty reports whether the set names no failed component.
func (f *FaultSet) Empty() bool {
	return f == nil || (len(f.Links) == 0 && len(f.Switches) == 0)
}

// Validate checks every named component exists in the tree.
func (f *FaultSet) Validate(tree *topology.Tree) error {
	if f == nil {
		return nil
	}
	for _, l := range f.Links {
		if l.Level < 0 || l.Level >= tree.LinkLevels() {
			return fmt.Errorf("faults: link level %d outside [0, %d)", l.Level, tree.LinkLevels())
		}
		if l.Switch < 0 || l.Switch >= tree.SwitchesAt(l.Level) {
			return fmt.Errorf("faults: level-%d switch %d outside [0, %d)", l.Level, l.Switch, tree.SwitchesAt(l.Level))
		}
		if l.Port < 0 || l.Port >= tree.Parents() {
			return fmt.Errorf("faults: port %d outside [0, %d)", l.Port, tree.Parents())
		}
		if l.Direction < Both || l.Direction > Down {
			return fmt.Errorf("faults: invalid direction %d", int(l.Direction))
		}
	}
	for _, s := range f.Switches {
		if s.Level < 0 || s.Level >= tree.Levels() {
			return fmt.Errorf("faults: switch level %d outside [0, %d)", s.Level, tree.Levels())
		}
		if s.Switch < 0 || s.Switch >= tree.SwitchesAt(s.Level) {
			return fmt.Errorf("faults: level-%d switch %d outside [0, %d)", s.Level, s.Switch, tree.SwitchesAt(s.Level))
		}
	}
	return nil
}

// Channel is one link channel in linkstate's coordinates — the
// granularity at which faults are applied and repaired.
type Channel struct {
	Dir    linkstate.Direction
	Level  int
	Switch int
	Port   int
}

// String renders the channel for diagnostics.
func (c Channel) String() string {
	return fmt.Sprintf("%s@level %d switch %d port %d", c.Dir, c.Level, c.Switch, c.Port)
}

// Channels expands the fault set into the deduplicated list of link
// channels it covers, in deterministic order: switch failures become
// their incident links (parent-side links at the switch's own link
// level, child-side links at the level below), Both-direction faults
// become an up and a down channel. The set must Validate against the
// tree first; Channels panics on out-of-range components.
func (f *FaultSet) Channels(tree *topology.Tree) []Channel {
	if f.Empty() {
		return nil
	}
	seen := make(map[Channel]struct{})
	var out []Channel
	add := func(d linkstate.Direction, h, idx, port int) {
		c := Channel{Dir: d, Level: h, Switch: idx, Port: port}
		if _, dup := seen[c]; dup {
			return
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	addLink := func(l LinkFault) {
		if l.Direction == Both || l.Direction == Up {
			add(linkstate.Up, l.Level, l.Switch, l.Port)
		}
		if l.Direction == Both || l.Direction == Down {
			add(linkstate.Down, l.Level, l.Switch, l.Port)
		}
	}
	for _, l := range f.Links {
		addLink(l)
	}
	for _, s := range f.Switches {
		// Parent-side: the switch's own upward links (absent for the top
		// level, which has no parents).
		if s.Level < tree.LinkLevels() {
			for p := 0; p < tree.Parents(); p++ {
				addLink(LinkFault{Level: s.Level, Switch: s.Switch, Port: p})
			}
		}
		// Child-side: the links climbing into this switch from the level
		// below (absent for level 0, whose children are processing nodes).
		if s.Level > 0 {
			h := s.Level - 1
			for c := 0; c < tree.Children(); c++ {
				addLink(LinkFault{
					Level:  h,
					Switch: tree.DownChild(h, s.Switch, c),
					Port:   tree.DownChildUpPort(h, s.Switch, c),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Switch != b.Switch {
			return a.Switch < b.Switch
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Dir < b.Dir
	})
	return out
}

// Apply fails every channel of the set on the state and returns the
// number of channels newly taken out of service (already-failed
// channels do not count).
func (f *FaultSet) Apply(st *linkstate.State) int {
	failed := 0
	for _, c := range f.Channels(st.Tree()) {
		if !st.Failed(c.Dir, c.Level, c.Switch, c.Port) {
			st.FailLink(c.Dir, c.Level, c.Switch, c.Port)
			failed++
		}
	}
	return failed
}

// String summarizes the set for logs.
func (f *FaultSet) String() string {
	if f.Empty() {
		return "faults: none"
	}
	return fmt.Sprintf("faults: %d links, %d switches", len(f.Links), len(f.Switches))
}

// Uniform fails each physical link of the tree (both channels)
// independently with probability p, using a deterministic RNG seeded
// with seed — the chaos harness's i.i.d. link-failure model. p <= 0
// returns the empty set.
func Uniform(tree *topology.Tree, p float64, seed int64) *FaultSet {
	fs := &FaultSet{}
	if p <= 0 {
		return fs
	}
	rng := rand.New(rand.NewSource(seed))
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for port := 0; port < tree.Parents(); port++ {
				if rng.Float64() < p {
					fs.Links = append(fs.Links, LinkFault{Level: h, Switch: idx, Port: port})
				}
			}
		}
	}
	return fs
}

// CorrelatedSwitches fails each whole switch independently with
// probability q — the correlated failure mode (power feed, line card)
// that takes out every incident link at once. Deterministic in seed.
func CorrelatedSwitches(tree *topology.Tree, q float64, seed int64) *FaultSet {
	fs := &FaultSet{}
	if q <= 0 {
		return fs
	}
	rng := rand.New(rand.NewSource(seed))
	for lvl := 0; lvl < tree.Levels(); lvl++ {
		for idx := 0; idx < tree.SwitchesAt(lvl); idx++ {
			if rng.Float64() < q {
				fs.Switches = append(fs.Switches, SwitchFault{Level: lvl, Switch: idx})
			}
		}
	}
	return fs
}
