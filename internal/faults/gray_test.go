package faults

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/topology"
)

func grayTree(t *testing.T) *topology.Tree {
	t.Helper()
	tree, err := topology.New(3, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestDurationJSONRoundTrip(t *testing.T) {
	for _, d := range []Duration{0, Duration(time.Millisecond), Duration(2*time.Second + 500*time.Millisecond)} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal %v: %v", d, err)
		}
		var back Duration
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != d {
			t.Errorf("round trip %v → %s → %v", d, b, back)
		}
	}
	// The wire form is a Go duration string, not nanoseconds.
	b, _ := json.Marshal(Duration(2 * time.Millisecond))
	if string(b) != `"2ms"` {
		t.Errorf("wire form = %s, want \"2ms\"", b)
	}
	// Empty string decodes as zero (omitted config fields).
	var z Duration
	if err := json.Unmarshal([]byte(`""`), &z); err != nil || z != 0 {
		t.Errorf(`unmarshal "" = %v, %v; want 0, nil`, z, err)
	}
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &z); err == nil {
		t.Error("unmarshal garbage: want error")
	}
}

func TestFlakyLinkDeterminismAndRate(t *testing.T) {
	f := FlakyLink{Link: LinkFault{Level: 1, Switch: 3, Port: 2}, DutyCycle: 0.3, Seed: 42}
	g := f // identical process
	const steps = 20000
	down := 0
	for s := uint64(0); s < steps; s++ {
		a, b := f.Down(s), g.Down(s)
		if a != b {
			t.Fatalf("step %d: identical processes disagree", s)
		}
		if a {
			down++
		}
	}
	// The empirical duty cycle should be near 0.3 (binomial, σ≈0.0032).
	rate := float64(down) / steps
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("empirical duty cycle %.4f, want ≈0.30", rate)
	}
	// A different seed gives a different sample path.
	h := f
	h.Seed = 43
	same := 0
	for s := uint64(0); s < 1000; s++ {
		if f.Down(s) == h.Down(s) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seed change did not decorrelate the process")
	}
	// Degenerate duty cycles are constant.
	always := FlakyLink{Link: f.Link, DutyCycle: 1}
	never := FlakyLink{Link: f.Link, DutyCycle: 0}
	for s := uint64(0); s < 100; s++ {
		if !always.Down(s) {
			t.Fatal("duty 1: expected always down")
		}
		if never.Down(s) {
			t.Fatal("duty 0: expected never down")
		}
	}
}

func TestFlakyLinkValidate(t *testing.T) {
	tree := grayTree(t)
	ok := FlakyLink{Link: LinkFault{Level: 0, Switch: 0, Port: 0}, DutyCycle: 0.5}
	if err := ok.Validate(tree); err != nil {
		t.Errorf("valid process rejected: %v", err)
	}
	cases := []FlakyLink{
		{Link: LinkFault{Level: tree.LinkLevels(), Switch: 0, Port: 0}, DutyCycle: 0.5}, // level out of range
		{Link: LinkFault{Level: 0, Switch: 0, Port: tree.Parents()}, DutyCycle: 0.5},    // port out of range
		{Link: LinkFault{Level: 0, Switch: 0, Port: 0}, DutyCycle: -0.1},
		{Link: LinkFault{Level: 0, Switch: 0, Port: 0}, DutyCycle: 1.5},
		{Link: LinkFault{Level: 0, Switch: 0, Port: 0}, DutyCycle: math.NaN()},
	}
	for i, c := range cases {
		if err := c.Validate(tree); err == nil {
			t.Errorf("case %d: invalid process accepted: %+v", i, c)
		}
	}
}

func TestDegradedPlaneSlowAtAndValidate(t *testing.T) {
	d := DegradedPlane{Plane: "plane0", AdmitLatency: Duration(time.Millisecond), DutyCycle: 0.5, Seed: 7}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid process rejected: %v", err)
	}
	// Deterministic per (plane, seed, seq); plane name matters.
	e := d
	e.Plane = "plane1"
	agree, diff := 0, 0
	for s := uint64(0); s < 2000; s++ {
		if d.SlowAt(s) != d.SlowAt(s) {
			t.Fatal("SlowAt not deterministic")
		}
		if d.SlowAt(s) == e.SlowAt(s) {
			agree++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Error("plane name did not decorrelate the process")
	}
	slow := 0
	for s := uint64(0); s < 20000; s++ {
		if d.SlowAt(s) {
			slow++
		}
	}
	if rate := float64(slow) / 20000; math.Abs(rate-0.5) > 0.02 {
		t.Errorf("empirical slow rate %.4f, want ≈0.50", rate)
	}
	for i, bad := range []DegradedPlane{
		{DutyCycle: -0.5},
		{DutyCycle: 2},
		{DutyCycle: math.NaN()},
		{DutyCycle: 0.5, AdmitLatency: Duration(-time.Millisecond)},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: invalid process accepted: %+v", i, bad)
		}
	}
}

func TestGraySetJSONRoundTrip(t *testing.T) {
	g := GraySet{
		Flaky: []FlakyLink{
			{Link: LinkFault{Level: 1, Switch: 2, Port: 3, Direction: Up}, DutyCycle: 0.25, Seed: 99},
		},
		Degraded: []DegradedPlane{
			{Plane: "plane1", AdmitLatency: Duration(3 * time.Millisecond), DutyCycle: 0.4, Seed: 5},
		},
	}
	b, err := json.Marshal(&g)
	if err != nil {
		t.Fatal(err)
	}
	var back GraySet
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if len(back.Flaky) != 1 || back.Flaky[0] != g.Flaky[0] {
		t.Errorf("flaky round trip: got %+v, want %+v", back.Flaky, g.Flaky)
	}
	if len(back.Degraded) != 1 || back.Degraded[0] != g.Degraded[0] {
		t.Errorf("degraded round trip: got %+v, want %+v", back.Degraded, g.Degraded)
	}
	if g.Empty() {
		t.Error("non-empty set reports Empty")
	}
	var nilSet *GraySet
	if !nilSet.Empty() || !(&GraySet{}).Empty() {
		t.Error("nil / zero set must report Empty")
	}
	if err := g.Validate(grayTree(t)); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := GraySet{Flaky: []FlakyLink{{Link: LinkFault{Level: 99}, DutyCycle: 0.5}}}
	if err := bad.Validate(grayTree(t)); err == nil {
		t.Error("invalid flaky link accepted")
	}
}

func TestFlakyLinksGenerator(t *testing.T) {
	tree := grayTree(t)
	a := FlakyLinks(tree, 0.2, 0.5, 11)
	b := FlakyLinks(tree, 0.2, 0.5, 11)
	if len(a) == 0 {
		t.Fatal("p=0.2 selected no links")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, process %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := range a {
		if err := a[i].Validate(tree); err != nil {
			t.Fatalf("generated process %d invalid: %v", i, err)
		}
		for j := i + 1; j < len(a); j++ {
			if a[i].Seed == a[j].Seed {
				t.Fatalf("processes %d and %d share seed %d", i, j, a[i].Seed)
			}
		}
	}
	if got := FlakyLinks(tree, 0, 0.5, 11); got != nil {
		t.Errorf("p=0 returned %d processes", len(got))
	}
	// Selection probability only filters; shared links keep their stream.
	all := FlakyLinks(tree, 1.0, 0.5, 11)
	want := tree.LinkLevels() * tree.SwitchesAt(0) // per level count varies; just sanity-check coverage
	_ = want
	if len(all) == 0 || len(all) < len(a) {
		t.Errorf("p=1 selected %d < p=0.2's %d", len(all), len(a))
	}
}

func TestFlapperDiffSemantics(t *testing.T) {
	tree := grayTree(t)
	procs := FlakyLinks(tree, 0.3, 0.5, 17)
	if len(procs) < 2 {
		t.Skip("generator picked too few links for a meaningful diff test")
	}
	fl := NewFlapper(procs)
	if fl.DownCount() != 0 {
		t.Fatal("flapper must start all-up")
	}
	// Track the down set independently and check every diff against it.
	shadow := make(map[LinkFault]bool)
	const steps = 500
	for s := 0; s < steps; s++ {
		fail, repair := fl.Step()
		if fail != nil {
			for _, l := range fail.Links {
				if shadow[l] {
					t.Fatalf("step %d: %+v failed while already down", s, l)
				}
				shadow[l] = true
			}
		}
		if repair != nil {
			for _, l := range repair.Links {
				if !shadow[l] {
					t.Fatalf("step %d: %+v repaired while already up", s, l)
				}
				delete(shadow, l)
			}
		}
	}
	if fl.Steps() != steps {
		t.Errorf("Steps() = %d, want %d", fl.Steps(), steps)
	}
	if fl.DownCount() != len(shadow) {
		t.Errorf("DownCount() = %d, shadow has %d", fl.DownCount(), len(shadow))
	}
	ds := fl.DownSet()
	if len(ds.Links) != len(shadow) {
		t.Fatalf("DownSet has %d links, shadow %d", len(ds.Links), len(shadow))
	}
	for _, l := range ds.Links {
		if !shadow[l] {
			t.Errorf("DownSet contains %+v, not in shadow", l)
		}
	}
	// Two flappers over the same processes replay the same transitions.
	f2 := NewFlapper(procs)
	for s := 0; s < steps; s++ {
		f2.Step()
	}
	if f2.DownCount() != fl.DownCount() {
		t.Error("replay diverged")
	}
	// Add registers processes up; they join the clock mid-flight.
	extra := FlakyLink{Link: LinkFault{Level: 0, Switch: 0, Port: 0}, DutyCycle: 1, Seed: 1}
	fl.Add([]FlakyLink{extra})
	fail, _ := fl.Step()
	found := false
	if fail != nil {
		for _, l := range fail.Links {
			if l == extra.Link {
				found = true
			}
		}
	}
	if !found {
		t.Error("added duty-1 process did not fail on the next step")
	}
}
