// Package dynamic simulates long-lived connections arriving and departing
// over time — the deployment scenario the paper motivates ("This technique
// is especially beneficial to setup long-lived connections"). Connections
// arrive as a Poisson process, hold exponentially distributed times, and
// are admitted by a scheduler against the live link state; a connection
// that cannot be routed at arrival is blocked and lost. The figure of
// merit is the blocking probability under offered load (extension E4).
//
// This package is the single-threaded simulation of that scenario on
// virtual time. Its serving-path counterpart is internal/fabric, which
// admits the same churn workload from real concurrent clients (see
// cmd/ftbench -fabric and examples/dynamic_connections); both retire
// held circuits oldest-first and treat a blocked circuit as lost.
package dynamic

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Config parameterizes one churn simulation.
type Config struct {
	Tree *topology.Tree
	// Scheduler admits each arrival (as a single-request batch against
	// the persistent link state). Schedulers that retain a failed
	// request's partial allocations are safe here: Run releases retained
	// ports after each blocked arrival, since a blocked connection holds
	// nothing.
	Scheduler core.Scheduler
	// ArrivalRate is the expected number of connection arrivals per cycle.
	ArrivalRate float64
	// MeanHold is the expected connection lifetime in cycles.
	MeanHold float64
	// Duration is the simulated horizon in cycles.
	Duration des.Time
	// WarmUp discards statistics before this time (steady-state measure).
	WarmUp des.Time
	// Seed drives arrivals, endpoints, and holding times.
	Seed int64
}

func (c Config) validate() error {
	if c.Tree == nil {
		return fmt.Errorf("dynamic: nil tree")
	}
	if c.Scheduler == nil {
		return fmt.Errorf("dynamic: nil scheduler")
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("dynamic: arrival rate %v, need > 0", c.ArrivalRate)
	}
	if c.MeanHold <= 0 {
		return fmt.Errorf("dynamic: mean hold %v, need > 0", c.MeanHold)
	}
	if c.Duration == 0 {
		return fmt.Errorf("dynamic: zero duration")
	}
	if c.WarmUp >= c.Duration {
		return fmt.Errorf("dynamic: warm-up %d >= duration %d", c.WarmUp, c.Duration)
	}
	return nil
}

// Stats summarizes a churn run (post-warm-up unless noted).
type Stats struct {
	Offered  int // arrivals after warm-up
	Accepted int
	Blocked  int
	// PeakActive is the maximum simultaneously held connections (whole
	// run).
	PeakActive int
	// MeanActive is the arrival-sampled mean of simultaneously held
	// connections.
	MeanActive float64
	// MeanUtilization is the arrival-sampled mean channel utilization.
	MeanUtilization float64
	// FinalOccupied is the channel count still held at the horizon.
	FinalOccupied int
}

// BlockingProbability returns Blocked/Offered (0 for no offered load).
func (s Stats) BlockingProbability() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Offered)
}

// Run simulates the configured churn and returns its statistics.
func Run(cfg Config) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := linkstate.New(cfg.Tree)
	var kernel des.Kernel
	var stats Stats
	active := 0
	var activeSum, utilSum float64
	samples := 0
	n := cfg.Tree.Nodes()

	release := func(o core.Outcome) {
		if err := st.ReleasePath(o.Src, o.Dst, o.Ports); err != nil {
			panic(fmt.Sprintf("dynamic: release failed: %v", err))
		}
	}
	// releaseRetained drops the partial allocations of a blocked arrival
	// (schedulers without rollback keep them in the outcome).
	releaseRetained := func(o core.Outcome) {
		core.ReleaseRoute(st, o.Src, o.Dst, o.Ports, nil)
	}

	var arrive func()
	arrive = func() {
		now := kernel.Now()
		if now >= cfg.Duration {
			return
		}
		measured := now >= cfg.WarmUp
		src := rng.Intn(n)
		dst := rng.Intn(n)
		res := cfg.Scheduler.Schedule(st, []core.Request{{Src: src, Dst: dst}})
		o := res.Outcomes[0]
		if measured {
			stats.Offered++
			activeSum += float64(active)
			utilSum += st.Utilization()
			samples++
		}
		if o.Granted {
			if measured {
				stats.Accepted++
			}
			active++
			if active > stats.PeakActive {
				stats.PeakActive = active
			}
			hold := des.Time(rng.ExpFloat64()*cfg.MeanHold) + 1
			kernel.After(hold, func() {
				release(o)
				active--
			})
		} else {
			if measured {
				stats.Blocked++
			}
			if len(o.Ports) > 0 {
				releaseRetained(o)
			}
		}
		gap := des.Time(rng.ExpFloat64()/cfg.ArrivalRate) + 1
		kernel.After(gap, arrive)
	}
	kernel.At(0, arrive)
	kernel.RunUntil(cfg.Duration)

	if samples > 0 {
		stats.MeanActive = activeSum / float64(samples)
		stats.MeanUtilization = utilSum / float64(samples)
	}
	stats.FinalOccupied = st.OccupiedCount()
	return stats, nil
}
