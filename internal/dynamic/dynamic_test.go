package dynamic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func baseConfig(t testing.TB) Config {
	t.Helper()
	return Config{
		Tree:        topology.MustNew(3, 4, 4),
		Scheduler:   &core.LevelWise{Opts: core.Options{Rollback: true}},
		ArrivalRate: 0.5,
		MeanHold:    40,
		Duration:    4000,
		WarmUp:      400,
		Seed:        1,
	}
}

func TestValidation(t *testing.T) {
	good := baseConfig(t)
	bads := []func(*Config){
		func(c *Config) { c.Tree = nil },
		func(c *Config) { c.Scheduler = nil },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.MeanHold = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.WarmUp = c.Duration },
	}
	for i, mut := range bads {
		c := good
		mut(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestConservation(t *testing.T) {
	cfg := baseConfig(t)
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Offered == 0 {
		t.Fatal("no offered load")
	}
	if s.Accepted+s.Blocked != s.Offered {
		t.Fatalf("accepted %d + blocked %d != offered %d", s.Accepted, s.Blocked, s.Offered)
	}
	if p := s.BlockingProbability(); p < 0 || p > 1 {
		t.Fatalf("blocking probability %v", p)
	}
	if s.MeanActive < 0 || s.PeakActive < 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLowLoadRarelyBlocks(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ArrivalRate = 0.02
	cfg.MeanHold = 10 // offered load ~0.2 concurrent connections
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.BlockingProbability(); p > 0.05 {
		t.Fatalf("blocking %v at trivial load", p)
	}
}

func TestHighLoadBlocksMore(t *testing.T) {
	low := baseConfig(t)
	low.ArrivalRate = 0.05
	high := baseConfig(t)
	high.ArrivalRate = 5
	high.MeanHold = 200
	sLow, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	if sHigh.BlockingProbability() <= sLow.BlockingProbability() {
		t.Fatalf("blocking did not grow with load: %v vs %v",
			sLow.BlockingProbability(), sHigh.BlockingProbability())
	}
	if sHigh.MeanUtilization <= sLow.MeanUtilization {
		t.Fatalf("utilization did not grow with load: %v vs %v",
			sLow.MeanUtilization, sHigh.MeanUtilization)
	}
}

func TestLevelWiseBlocksLessThanLocal(t *testing.T) {
	// The paper's motivation: for long-lived connections the better
	// scheduler translates into lower blocking.
	mk := func(s core.Scheduler, seed int64) Stats {
		cfg := baseConfig(t)
		cfg.Scheduler = s
		cfg.ArrivalRate = 2
		cfg.MeanHold = 60
		cfg.Duration = 6000
		cfg.Seed = seed
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	var lw, local float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		lw += mk(&core.LevelWise{Opts: core.Options{Rollback: true}}, seed).BlockingProbability()
		local += mk(core.NewLocalGreedy(), seed).BlockingProbability()
	}
	if lw >= local {
		t.Fatalf("level-wise blocking %.4f not below local %.4f", lw/seeds, local/seeds)
	}
}

func TestNoLeakWithNonRollbackScheduler(t *testing.T) {
	// A scheduler without rollback retains failed-partial allocations in
	// the outcome; Run must release them so the network drains.
	cfg := baseConfig(t)
	cfg.Scheduler = core.NewLevelWise() // no rollback
	cfg.ArrivalRate = 4
	cfg.MeanHold = 100
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever is still occupied must be explainable by <= PeakActive
	// live connections of at most 2*(l-1) channels each.
	tree := cfg.Tree
	maxPer := 2 * tree.LinkLevels()
	if s.FinalOccupied > s.PeakActive*maxPer {
		t.Fatalf("final occupancy %d exceeds any possible live set (peak %d)", s.FinalOccupied, s.PeakActive)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}

func BenchmarkChurn(b *testing.B) {
	cfg := baseConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
