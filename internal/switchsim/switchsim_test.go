package switchsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSingleRequestGranted(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m := &Model{}
	res, met := m.Run(tree, []core.Request{{Src: 0, Dst: 63}})
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
	// H = 2: up 2 hops, turnaround, down 2 hops -> grant at cycle 4.
	if len(met.GrantLatency) != 1 || met.GrantLatency[0] != 4 {
		t.Fatalf("grant latency = %v", met.GrantLatency)
	}
	if met.Makespan < 4 {
		t.Fatalf("makespan = %d", met.Makespan)
	}
}

func TestSameSwitchInstantGrant(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	m := &Model{}
	res, met := m.Run(tree, []core.Request{{Src: 0, Dst: 1}})
	if res.Granted != 1 || met.GrantLatency[0] != 0 {
		t.Fatalf("res %+v latency %v", res, met.GrantLatency)
	}
	if met.Events != 0 {
		t.Fatalf("same-switch request consumed %d events", met.Events)
	}
}

func TestDownConflictDetected(t *testing.T) {
	// The Figure 4 scenario: two sources, one destination switch, greedy
	// ports collide on the downward channel.
	tree := topology.MustNew(2, 4, 4)
	m := &Model{}
	reqs := []core.Request{{Src: 0, Dst: 12}, {Src: 4, Dst: 13}}
	res, _ := m.Run(tree, reqs)
	if res.Granted != 1 {
		t.Fatalf("granted %d want 1", res.Granted)
	}
	var failed *core.Outcome
	for i := range res.Outcomes {
		if !res.Outcomes[i].Granted {
			failed = &res.Outcomes[i]
		}
	}
	if failed == nil || !failed.FailDown {
		t.Fatalf("expected a down-path failure, got %+v", failed)
	}
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
}

func TestResultsVerifyAcrossPatterns(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 3)
	for _, pol := range []core.PortPolicy{core.FirstFit, core.RandomFit} {
		for trial := 0; trial < 10; trial++ {
			reqs := g.MustBatch(traffic.RandomPermutation)
			m := &Model{Policy: pol, Seed: int64(trial)}
			res, met := m.Run(tree, reqs)
			if err := core.Verify(tree, res); err != nil {
				t.Fatalf("policy %v trial %d: %v", pol, trial, err)
			}
			if len(met.GrantLatency) != res.Granted {
				t.Fatalf("latencies %d != granted %d", len(met.GrantLatency), res.Granted)
			}
			// Every grant latency is bounded by 2*levels.
			for _, lat := range met.GrantLatency {
				if lat > 2*3 {
					t.Fatalf("latency %d exceeds network diameter", lat)
				}
			}
		}
	}
}

func TestInjectionSpread(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 5)
	reqs := g.MustBatch(traffic.RandomPermutation)
	m := &Model{InjectionSpread: 32, Seed: 9}
	res, met := m.Run(tree, reqs)
	if err := core.Verify(tree, res); err != nil {
		t.Fatal(err)
	}
	if met.Makespan < 4 {
		t.Fatalf("makespan = %d", met.Makespan)
	}
}

func TestDistributedMatchesSequentialStatistically(t *testing.T) {
	// Cross-check (DESIGN.md §8): the event-driven distributed local
	// scheduler and the sequential core.Local baseline land in the same
	// band. The wave-parallel variant runs a few points higher because a
	// failing circuit tears down its links *before* contemporaries commit
	// at higher levels (level-synchronous progress), while the sequential
	// baseline commits whole paths one request at a time; both remain far
	// below Level-wise. Measured gap on this grid: ~0.09.
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 7)
	const trials = 40
	var simSum, seqSum float64
	for trial := 0; trial < trials; trial++ {
		reqs := g.MustBatch(traffic.RandomPermutation)
		m := &Model{Policy: core.FirstFit, Seed: int64(trial)}
		resSim, _ := m.Run(tree, reqs)
		resSeq := core.NewLocalGreedy().Schedule(newState(tree), reqs)
		simSum += resSim.Ratio()
		seqSum += resSeq.Ratio()
	}
	simAvg, seqAvg := simSum/trials, seqSum/trials
	if math.Abs(simAvg-seqAvg) > 0.15 {
		t.Fatalf("distributed %.3f vs sequential %.3f differ too much", simAvg, seqAvg)
	}
	if simAvg < seqAvg-0.02 {
		t.Fatalf("distributed %.3f unexpectedly below sequential %.3f", simAvg, seqAvg)
	}
}

func TestLevelWiseBeatsSwitchSim(t *testing.T) {
	// The headline comparison holds against the distributed local model
	// too.
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 11)
	const trials = 25
	var lwSum, simSum float64
	for trial := 0; trial < trials; trial++ {
		reqs := g.MustBatch(traffic.RandomPermutation)
		lw := core.NewLevelWise().Schedule(newState(tree), reqs)
		m := &Model{Policy: core.RandomFit, Seed: int64(trial)}
		resSim, _ := m.Run(tree, reqs)
		lwSum += lw.Ratio()
		simSum += resSim.Ratio()
	}
	if lwSum <= simSum {
		t.Fatalf("level-wise %.3f not above switchsim %.3f", lwSum/trials, simSum/trials)
	}
}

func TestName(t *testing.T) {
	m := &Model{Policy: core.RandomFit}
	res, _ := m.Run(topology.MustNew(2, 2, 2), nil)
	if res.Scheduler != "switchsim/random" {
		t.Fatalf("name = %q", res.Scheduler)
	}
}

func BenchmarkSwitchSim512(b *testing.B) {
	tree := topology.MustNew(3, 8, 8)
	g := traffic.NewGenerator(512, 1)
	reqs := g.MustBatch(traffic.RandomPermutation)
	m := &Model{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(tree, reqs)
	}
}

// newState builds a fresh link state (helper keeping test imports tidy).
func newState(tree *topology.Tree) *linkstate.State { return linkstate.New(tree) }
