// Package switchsim is the system-level network simulation of the paper's
// Section 5, rebuilt on the des kernel in place of SystemC: switch nodes
// are connected in the fat-tree topology and request/grant control signals
// propagate hop by hop through them. It realizes the *distributed*
// adaptive scheduler — every switch decides with local information only,
// concurrently with all other switches — and thereby cross-checks the
// sequential local baseline in package core.
//
// One control token is injected per request at its source switch at time
// 0. Each hop costs one cycle. On its way up a token claims an upward
// channel chosen from the locally available ones; at the common ancestor
// it turns around; on its way down it needs the forced downward channel
// (Theorem 2) and dies — releasing everything it held, as a torn-down
// circuit does — if that channel is taken. A token that reaches its
// destination switch raises the grant signal the paper counts.
package switchsim

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

// Model simulates one batch of requests on a fat tree.
type Model struct {
	// Policy selects upward ports from the locally available set.
	Policy core.PortPolicy
	// Seed drives random arbitration and port choice.
	Seed int64
	// InjectionSpread > 0 staggers token injection uniformly over
	// [0, InjectionSpread) cycles instead of injecting all at time 0,
	// modeling skewed request arrival.
	InjectionSpread int
}

// Metrics augments the scheduling result with timing observed in the
// event simulation.
type Metrics struct {
	// Makespan is the cycle at which the last token settled.
	Makespan des.Time
	// GrantLatency holds, per granted request, the cycle its grant signal
	// reached the destination switch.
	GrantLatency []des.Time
	// Events is the number of simulation events processed.
	Events uint64
}

type token struct {
	idx    int   // outcome index
	h      int   // current level
	sigma  int   // current switch (up phase)
	deltas []int // mirror switches per level (down phase), filled at turnaround
	up     bool
}

// Run simulates the batch and returns the scheduling result plus timing
// metrics. The link state is created internally (fresh network).
func (m *Model) Run(tree *topology.Tree, reqs []core.Request) (*core.Result, Metrics) {
	st := linkstate.New(tree)
	rng := rand.New(rand.NewSource(m.Seed))
	outs := make([]core.Outcome, len(reqs))
	var kernel des.Kernel
	var met Metrics

	var step func(tk *token)
	finishFail := func(tk *token, level int, down bool) {
		o := &outs[tk.idx]
		o.FailLevel = level
		o.FailDown = down
		// Tear down: release everything the token held.
		sigma, _ := tree.NodeSwitch(o.Src)
		for h, p := range o.Ports {
			if err := st.Release(linkstate.Up, h, sigma, p); err != nil {
				panic(err)
			}
			sigma = tree.UpParent(h, sigma, p)
		}
		if !tk.up {
			// Down channels claimed so far: levels H-1 .. current+1.
			for h := o.H - 1; h > level; h-- {
				if err := st.Release(linkstate.Down, h, tk.deltas[h], o.Ports[h]); err != nil {
					panic(err)
				}
			}
		}
		o.Ports = o.Ports[:0]
	}

	step = func(tk *token) {
		o := &outs[tk.idx]
		if tk.up {
			if tk.h == o.H {
				// Turnaround at the common ancestor: compute the forced
				// mirror switches and start descending.
				tk.up = false
				tk.deltas = make([]int, o.H)
				delta, _ := tree.NodeSwitch(o.Dst)
				for h := 0; h < o.H; h++ {
					tk.deltas[h] = delta
					delta = tree.UpParent(h, delta, o.Ports[h])
				}
				tk.h = o.H - 1
				kernel.After(1, func() { step(tk) })
				return
			}
			avail := st.ULink(tk.h, tk.sigma)
			p, ok := pick(m.Policy, rng, avail.Count(), func(n int) (int, bool) { return avail.NthSet(n) })
			if !ok {
				finishFail(tk, tk.h, false)
				return
			}
			if err := st.Allocate(linkstate.Up, tk.h, tk.sigma, p); err != nil {
				panic(err)
			}
			o.Ports = append(o.Ports, p)
			tk.sigma = tree.UpParent(tk.h, tk.sigma, p)
			tk.h++
			kernel.After(1, func() { step(tk) })
			return
		}
		// Down phase at level tk.h: claim the forced channel.
		if !st.Available(linkstate.Down, tk.h, tk.deltas[tk.h], o.Ports[tk.h]) {
			finishFail(tk, tk.h, true)
			return
		}
		if err := st.Allocate(linkstate.Down, tk.h, tk.deltas[tk.h], o.Ports[tk.h]); err != nil {
			panic(err)
		}
		if tk.h == 0 {
			o.Granted = true
			met.GrantLatency = append(met.GrantLatency, kernel.Now())
			return
		}
		tk.h--
		kernel.After(1, func() { step(tk) })
	}

	// Inject tokens. Same-time arbitration follows injection order, which
	// we shuffle for the random policy to avoid source-index bias.
	injectionOrder := make([]int, len(reqs))
	for i := range injectionOrder {
		injectionOrder[i] = i
	}
	if m.Policy == core.RandomFit {
		rng.Shuffle(len(injectionOrder), func(i, j int) {
			injectionOrder[i], injectionOrder[j] = injectionOrder[j], injectionOrder[i]
		})
	}
	for _, i := range injectionOrder {
		r := reqs[i]
		outs[i] = core.Outcome{
			Request:   r,
			H:         tree.AncestorLevel(r.Src, r.Dst),
			FailLevel: -1,
		}
		if outs[i].H == 0 {
			outs[i].Granted = true
			met.GrantLatency = append(met.GrantLatency, 0)
			continue
		}
		sigma, _ := tree.NodeSwitch(r.Src)
		tk := &token{idx: i, sigma: sigma, up: true}
		at := des.Time(0)
		if m.InjectionSpread > 0 {
			at = des.Time(rng.Intn(m.InjectionSpread))
		}
		kernel.At(at, func() { step(tk) })
	}

	met.Events = kernel.Run()
	met.Makespan = kernel.Now()

	res := &core.Result{Scheduler: m.name(), Outcomes: outs, Total: len(outs)}
	for i := range outs {
		if outs[i].Granted {
			res.Granted++
		}
	}
	return res, met
}

func (m *Model) name() string {
	return "switchsim/" + m.Policy.String()
}

// pick chooses among n available candidates: index 0 for the greedy
// policies, uniform for RandomFit. nth maps a choice index to the port.
func pick(policy core.PortPolicy, rng *rand.Rand, n int, nth func(int) (int, bool)) (int, bool) {
	if n == 0 {
		return 0, false
	}
	if policy == core.RandomFit {
		return nth(rng.Intn(n))
	}
	return nth(0)
}
