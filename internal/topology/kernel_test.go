package topology

import (
	"math/rand"
	"testing"
)

// checkCursorAgreement walks one request over both the table-driven tree
// and its arithmetic view and requires lockstep agreement at every level.
func checkCursorAgreement(t *testing.T, tab, ari *Tree, src, dst int, rng *rand.Rand) {
	t.Helper()
	if gs, ga := tab.AncestorLevel(src, dst), ari.AncestorLevel(src, dst); gs != ga {
		t.Fatalf("%s: AncestorLevel(%d,%d): table %d, arithmetic %d", tab, src, dst, gs, ga)
	}
	si, sp := tab.NodeSwitch(src)
	ai, ap := ari.NodeSwitch(src)
	if si != ai || sp != ap {
		t.Fatalf("%s: NodeSwitch(%d): table (%d,%d), arithmetic (%d,%d)", tab, src, si, sp, ai, ap)
	}
	h := tab.AncestorLevel(src, dst)
	var ct, ca RouteCursor
	ct.Start(tab, src, dst)
	ca.Start(ari, src, dst)
	for lvl := 0; lvl < h; lvl++ {
		p := rng.Intn(tab.Parents())
		ct.Advance(p)
		ca.Advance(p)
		if ct.Sigma() != ca.Sigma() || ct.Delta() != ca.Delta() || ct.Level() != ca.Level() {
			t.Fatalf("%s: %d→%d after port %d at level %d: table (σ=%d,δ=%d,l=%d), arithmetic (σ=%d,δ=%d,l=%d)",
				tab, src, dst, p, lvl, ct.Sigma(), ct.Delta(), ct.Level(), ca.Sigma(), ca.Delta(), ca.Level())
		}
	}
}

// TestCursorTableMatchesArithmeticRandomShapes is the property test for
// the topology kernel: across randomized FT(l, m, w) shapes — including
// m != w and non-power-of-two radices — the table-driven cursor and the
// Theorem 1 arithmetic cursor agree on every query the schedulers make.
func TestCursorTableMatchesArithmeticRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 60; iter++ {
		l := 2 + rng.Intn(3)
		m := 2 + rng.Intn(7)
		w := 2 + rng.Intn(7)
		tab := MustNew(l, m, w)
		ari := tab.WithArithmeticCursor()
		// Exhaustive UpParent agreement: every level, switch, and port.
		for h := 0; h < tab.LinkLevels(); h++ {
			for idx := 0; idx < tab.SwitchesAt(h); idx++ {
				for p := 0; p < w; p++ {
					if gt, ga := tab.UpParent(h, idx, p), ari.UpParent(h, idx, p); gt != ga {
						t.Fatalf("%s: UpParent(%d,%d,%d): table %d, arithmetic %d", tab, h, idx, p, gt, ga)
					}
				}
			}
		}
		for reqs := 0; reqs < 64; reqs++ {
			checkCursorAgreement(t, tab, ari, rng.Intn(tab.Nodes()), rng.Intn(tab.Nodes()), rng)
		}
	}
}

// FuzzCursorTableMatchesArithmetic fuzzes shape and endpoints; the seed
// corpus covers the pow-of-two fast paths, m != w, and non-power-of-two
// w, and `go test` replays it as a unit test.
func FuzzCursorTableMatchesArithmetic(f *testing.F) {
	f.Add(3, 8, 8, 11, 200, int64(1))
	f.Add(4, 4, 4, 0, 255, int64(2))
	f.Add(3, 6, 6, 9, 9, int64(3))
	f.Add(3, 4, 2, 63, 1, int64(4))
	f.Add(2, 6, 3, 35, 0, int64(5))
	f.Add(3, 5, 7, 100, 101, int64(6))
	f.Fuzz(func(t *testing.T, l, m, w, src, dst int, seed int64) {
		l = 1 + abs(l)%4
		m = 1 + abs(m)%8
		w = 1 + abs(w)%8
		tab, err := New(l, m, w)
		if err != nil {
			t.Skip()
		}
		ari := tab.WithArithmeticCursor()
		src = abs(src) % tab.Nodes()
		dst = abs(dst) % tab.Nodes()
		checkCursorAgreement(t, tab, ari, src, dst, rand.New(rand.NewSource(seed)))
	})
}

func abs(x int) int {
	if x < 0 {
		x = -x
	}
	if x < 0 { // -MinInt overflows back to MinInt
		return 0
	}
	return x
}
