package topology

import "repro/internal/digits"

// RecursiveUpTables builds the upward adjacency of the symmetric fat tree
// FT(l, w) by literally following the paper's recursive construction
// (Section 3, after Ohring): FT(l+1, w) is assembled from w copies of
// FT(l, w) plus w^l additional top switches, with old top switch τ wired
// to new switches (τ·w) mod w^l + i for i = 0..w-1 via upward port i.
//
// The result has the same layout as Tree.up: table[h][idx*w+p] is the
// level-h+1 parent of level-h switch idx via port p. It is an independent
// construction used by tests to cross-validate Tree (which is built from
// the Theorem 1 digit shift).
func RecursiveUpTables(l, w int) [][]int32 {
	if l == 1 {
		return nil
	}
	sub := RecursiveUpTables(l-1, w)
	subPerLevel := digits.Pow(w, l-2) // switches per level in FT(l-1, w)
	perLevel := digits.Pow(w, l-1)    // switches per level in FT(l, w)
	tables := make([][]int32, l-1)

	// Interior link levels: w disjoint copies of the sub-tree, copy k
	// occupying index block [k*subPerLevel, (k+1)*subPerLevel) at every
	// level.
	for h := 0; h < l-2; h++ {
		tables[h] = make([]int32, perLevel*w)
		for k := 0; k < w; k++ {
			off := int32(k * subPerLevel)
			for i, parent := range sub[h] {
				tables[h][k*len(sub[h])+i] = parent + off
			}
		}
	}

	// Top link level l-2: old top switch τ (global index across copies)
	// connects to new top switches (τ·w) mod w^{l-1} + p.
	top := make([]int32, perLevel*w)
	for tau := 0; tau < perLevel; tau++ {
		base := (tau * w) % perLevel
		for p := 0; p < w; p++ {
			top[tau*w+p] = int32(base + p)
		}
	}
	tables[l-2] = top
	return tables
}
