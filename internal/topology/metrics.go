package topology

import "repro/internal/digits"

// Metrics summarizes the structural properties of a fat tree that the
// interconnect literature reports: size, distances, diversity and
// bisection capacity.
type Metrics struct {
	Nodes    int
	Switches int
	Links    int
	// Diameter is the longest node-to-node inter-switch hop count: climb
	// to the top and back down, 2(l-1) hops.
	Diameter int
	// AvgDistance is the exact mean inter-switch hop count 2·H(a,b) over
	// all ordered node pairs with a != b.
	AvgDistance float64
	// MaxPathDiversity is the number of distinct paths between two nodes
	// whose common ancestor is at the top: w^(l-1).
	MaxPathDiversity int
	// BisectionLinks counts the links cut by the natural bisection that
	// splits the m top-level subtrees (the copies of FT(l-1) in the
	// recursive construction) into two halves. Every top-level switch
	// has exactly one child in each copy, so the cut removes floor(m/2)
	// of each top switch's m child links — half the top-level links.
	// Zero for a single-level tree.
	BisectionLinks int
	// FullBandwidth reports whether the tree is full-bisection (w == m):
	// each level carries as much upward capacity as the nodes inject.
	FullBandwidth bool
}

// ComputeMetrics derives the metrics for the tree. AvgDistance is exact,
// computed from the ancestor-level distribution rather than by sampling.
func (t *Tree) ComputeMetrics() Metrics {
	s := t.spec
	m := Metrics{
		Nodes:            t.Nodes(),
		Switches:         t.TotalSwitches(),
		Links:            t.TotalLinks(),
		Diameter:         2 * t.LinkLevels(),
		MaxPathDiversity: digits.Pow(s.W, t.LinkLevels()),
		FullBandwidth:    s.Symmetric(),
	}
	// Ancestor-level distribution: for a fixed node a, the nodes under
	// a's level-k switch number m^(k+1), so the peers whose lowest common
	// ancestor sits exactly at level k are m^(k+1) − m^k (minus a itself
	// for k == 0). Each such pair is 2k inter-switch hops apart.
	if t.Nodes() > 1 {
		total, pairs := 0.0, 0.0
		sub := 1 // m^k during iteration below starts at m^0
		for k := 0; k <= t.LinkLevels(); k++ {
			prev := sub
			sub *= s.M // sub = m^(k+1): nodes under a level-k switch
			cnt := sub - prev
			if k == 0 {
				cnt = sub - 1
			}
			total += float64(cnt) * float64(2*k)
			pairs += float64(cnt)
		}
		m.AvgDistance = total / pairs
	}
	if t.LinkLevels() > 0 {
		m.BisectionLinks = (s.M / 2) * s.SwitchesAt(s.L-1)
	}
	return m
}
