// Package topology constructs fat-tree interconnection networks FT(l, m, w)
// and exposes the structural queries the schedulers need: parent/child
// adjacency, lowest-common-ancestor level, and full path expansion.
//
// The topology is materialized as explicit adjacency arrays built from the
// digit-shift wiring of Theorem 1 (package digits). Two further independent
// constructions — the paper's Ohring integer rule and a literal recursive
// composition of w sub-trees plus new top switches — are provided for the
// symmetric case and cross-validated by the package tests, so the closed
// form, the published construction rule, and the recursive definition are
// demonstrably the same network.
package topology

import (
	"fmt"
	"io"
	"math/bits"

	"repro/internal/digits"
)

// Tree is an immutable fat tree FT(l, m, w). All switch references are
// (level, dense index) pairs; nodes are integers 0..Nodes()-1 attached
// below level-0 switches.
//
// The hot-path queries — UpParent, NodeSwitch, AncestorLevel, and
// everything RouteCursor composes from them — run on a precomputed
// kernel (digits.Kernel): one contiguous parent table for all levels,
// cached stride/digit tables, and shift/mask forms when m or w is a
// power of two. WithArithmeticCursor returns a view that answers the
// same queries from the Theorem 1 digit arithmetic instead; the golden
// tests pin the two bit-identical.
type Tree struct {
	spec digits.Spec
	kern *digits.Kernel

	// upFlat holds every level's parent table contiguously: the level-h
	// row block starts at upOff[h], and upFlat[upOff[h]+idx*W+p] is the
	// level-h+1 parent index reached by taking upward port p from level-h
	// switch idx. One slice for all levels keeps the cursor's working set
	// cache-resident.
	upFlat []int32
	upOff  []int32
	// Hot-path mirrors of kernel scalars, flattened into the Tree so the
	// cursor methods touch one cache line instead of chasing t.kern:
	// power-of-two shift/mask forms of w and m, the cached node count,
	// and the XOR bit-length → ancestor-level table (nil unless m is a
	// power of two).
	wPow2          bool
	mPow2          bool
	wShift, mShift uint
	mMask          int
	nodes          int
	lcaByLen       []int8

	// upChild[h][idx*W+p] is the downward (child) port at the parent
	// leading back to level-h switch idx via upward port p.
	upChild [][]int32

	// down[h][idx*M+c] is the level-h child index reached by taking
	// downward port c from level-h+1 switch idx; downPort[h][idx*M+c]
	// is the upward port at that child leading back.
	down     [][]int32
	downPort [][]int32

	// arith switches the hot-path queries from the precomputed tables to
	// the digit arithmetic (see WithArithmeticCursor).
	arith bool
}

// New constructs FT(l, m, w). It returns an error for invalid parameters
// or if the network would exceed maxNodes (a guard against accidentally
// huge allocations).
func New(l, m, w int) (*Tree, error) {
	spec := digits.Spec{L: l, M: m, W: w}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	const maxNodes = 1 << 24
	if n := spec.Nodes(); n > maxNodes {
		return nil, fmt.Errorf("topology: FT(%d,%d,%d) has %d nodes, exceeds limit %d", l, m, w, n, maxNodes)
	}
	kern, err := digits.NewKernel(spec)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		spec:     spec,
		kern:     kern,
		upOff:    make([]int32, spec.LinkLevels()+1),
		wPow2:    kern.WPow2(),
		wShift:   kern.WShift(),
		nodes:    kern.Nodes(),
		upChild:  make([][]int32, spec.LinkLevels()),
		down:     make([][]int32, spec.LinkLevels()),
		downPort: make([][]int32, spec.LinkLevels()),
	}
	t.mPow2, t.mShift, t.mMask, t.lcaByLen = kern.LCAParams()
	total := 0
	for h := 0; h < spec.LinkLevels(); h++ {
		t.upOff[h] = int32(total)
		total += spec.SwitchesAt(h) * w
	}
	t.upOff[spec.LinkLevels()] = int32(total)
	t.upFlat = make([]int32, total)
	for h := 0; h < spec.LinkLevels(); h++ {
		nLow := spec.SwitchesAt(h)
		nHigh := spec.SwitchesAt(h + 1)
		up := t.upFlat[t.upOff[h]:t.upOff[h+1]]
		t.upChild[h] = make([]int32, nLow*w)
		t.down[h] = make([]int32, nHigh*m)
		t.downPort[h] = make([]int32, nHigh*m)
		for i := range t.down[h] {
			t.down[h][i] = -1
			t.downPort[h][i] = -1
		}
		lab := make(digits.Label, spec.L-1)
		for idx := 0; idx < nLow; idx++ {
			copy(lab, spec.LabelOf(h, idx))
			for p := 0; p < w; p++ {
				work := lab.Clone()
				child := spec.UpInPlace(h, work, p)
				parent := spec.Index(h+1, work)
				up[idx*w+p] = int32(parent)
				t.upChild[h][idx*w+p] = int32(child)
				t.down[h][parent*m+child] = int32(idx)
				t.downPort[h][parent*m+child] = int32(p)
			}
		}
	}
	return t, nil
}

// MustNew is New that panics on error; for tests and examples with known-
// good parameters.
func MustNew(l, m, w int) *Tree {
	t, err := New(l, m, w)
	if err != nil {
		panic(err)
	}
	return t
}

// Spec returns the radix parameters of the tree.
func (t *Tree) Spec() digits.Spec { return t.spec }

// Levels returns the number of switch levels l.
func (t *Tree) Levels() int { return t.spec.L }

// Children returns m, the number of children per switch.
func (t *Tree) Children() int { return t.spec.M }

// Parents returns w, the number of parents per non-top switch.
func (t *Tree) Parents() int { return t.spec.W }

// Nodes returns the number of processing nodes m^l.
func (t *Tree) Nodes() int { return t.kern.Nodes() }

// Kernel returns the tree's precomputed digit/stride tables.
func (t *Tree) Kernel() *digits.Kernel { return t.kern }

// WithArithmeticCursor returns a view of the tree whose hot-path queries
// — UpParent, NodeSwitch, AncestorLevel, and every RouteCursor walk over
// them — use the Theorem 1 digit arithmetic (div/mod per level) instead
// of the precomputed kernel tables. The view shares all storage with the
// receiver. It exists as the reference the golden and fuzz tests pin the
// table-driven kernel against: every scheduler family must produce
// bit-identical results over either view.
func (t *Tree) WithArithmeticCursor() *Tree {
	c := *t
	c.arith = true
	return &c
}

// SwitchesAt returns the number of switches at a level.
func (t *Tree) SwitchesAt(level int) int { return t.spec.SwitchesAt(level) }

// TotalSwitches returns the switch count over all levels.
func (t *Tree) TotalSwitches() int { return t.spec.TotalSwitches() }

// LinkLevels returns l-1, the number of levels that carry inter-switch
// links. Link level h joins switch levels h and h+1.
func (t *Tree) LinkLevels() int { return t.spec.LinkLevels() }

// LinksAt returns the number of physical inter-switch links at link level
// h (each carries one upward and one downward channel).
func (t *Tree) LinksAt(h int) int { return t.spec.SwitchesAt(h) * t.spec.W }

// TotalLinks returns the number of physical inter-switch links in the tree.
func (t *Tree) TotalLinks() int {
	total := 0
	for h := 0; h < t.LinkLevels(); h++ {
		total += t.LinksAt(h)
	}
	return total
}

// UpParent returns the level-h+1 switch index reached by taking upward
// port p from level-h switch idx.
func (t *Tree) UpParent(h, idx, p int) int {
	if t.arith {
		return t.kern.UpParentArith(h, idx, p)
	}
	if t.wPow2 {
		return int(t.upFlat[int(t.upOff[h])+(idx<<t.wShift|p)])
	}
	return int(t.upFlat[int(t.upOff[h])+idx*t.spec.W+p])
}

// UpParentDownPort returns the downward port at the parent that leads back
// to level-h switch idx when climbing via upward port p.
func (t *Tree) UpParentDownPort(h, idx, p int) int {
	return int(t.upChild[h][idx*t.spec.W+p])
}

// DownChild returns the level-h switch index reached by taking downward
// port c from level-h+1 switch idx.
func (t *Tree) DownChild(h, idx, c int) int {
	return int(t.down[h][idx*t.spec.M+c])
}

// DownChildUpPort returns the upward port at the child that leads back to
// the level-h+1 switch idx when descending via downward port c.
func (t *Tree) DownChildUpPort(h, idx, c int) int {
	return int(t.downPort[h][idx*t.spec.M+c])
}

// NodeSwitch returns the level-0 switch index of node n and the child port
// it occupies. The dense level-0 index is n/m directly (Index is the
// inverse of LabelOf), so no Label is materialized — this sits on every
// scheduler's per-request hot path (shift/mask when m is a power of two).
func (t *Tree) NodeSwitch(n int) (switchIdx, port int) {
	if uint(n) >= uint(t.nodes) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.nodes))
	}
	if t.mPow2 && !t.arith {
		return n >> t.mShift, n & t.mMask
	}
	return n / t.spec.M, n % t.spec.M
}

// AncestorLevel returns the lowest-common-ancestor level H of the level-0
// switches of two nodes: the request from a to b needs upward ports
// P_0..P_{H-1}. H == 0 means both nodes share a level-0 switch.
func (t *Tree) AncestorLevel(a, b int) int {
	if t.arith {
		return t.spec.NodeAncestorLevel(a, b)
	}
	if t.lcaByLen != nil {
		if uint(a) >= uint(t.nodes) || uint(b) >= uint(t.nodes) {
			panic(fmt.Sprintf("digits: nodes (%d,%d) out of range [0,%d)", a, b, t.nodes))
		}
		return int(t.lcaByLen[bits.Len(uint((a>>t.mShift)^(b>>t.mShift)))])
	}
	return t.kern.NodeAncestorLevel(a, b)
}

// SubtreeAt returns the index of the level-`level` subtree containing
// node n (see digits.Kernel.SubtreeAt): two nodes share a level-ℓ
// subtree exactly when AncestorLevel(a, b) <= ℓ, so requests in
// distinct level-ℓ subtrees touch disjoint Ulink/Dlink rows — the
// invariant the subtree-sharded parallel engine schedules on.
func (t *Tree) SubtreeAt(n, level int) int { return t.kern.SubtreeAt(n, level) }

// Subtrees returns the number of disjoint level-`level` subtrees,
// m^(l-1-level).
func (t *Tree) Subtrees(level int) int { return t.kern.Subtrees(level) }

// Hop is one switch visited by a path.
type Hop struct {
	Level int
	Index int
}

// Path is the full switch sequence of a routed connection: up from the
// source switch to the common ancestor, then down to the destination
// switch. For an H-level request it holds 2H+1 hops.
type Path struct {
	Src, Dst int   // nodes
	Ports    []int // upward port chosen at each level 0..H-1
	Hops     []Hop
}

// ExpandPath materializes the switch sequence of a connection from src to
// dst using the given upward ports (one per level up to the ancestor).
// It returns an error if the number of ports does not match the ancestor
// level or any port is out of range. The downward half is derived from the
// adjacency arrays alone — not from Theorem 2 — so it independently
// witnesses that the mirrored ports reach the destination.
func (t *Tree) ExpandPath(src, dst int, ports []int) (*Path, error) {
	if src < 0 || src >= t.Nodes() || dst < 0 || dst >= t.Nodes() {
		return nil, fmt.Errorf("topology: nodes (%d,%d) out of range [0,%d)", src, dst, t.Nodes())
	}
	h := t.AncestorLevel(src, dst)
	if len(ports) != h {
		return nil, fmt.Errorf("topology: request (%d→%d) needs %d ports, got %d", src, dst, h, len(ports))
	}
	for lvl, p := range ports {
		if p < 0 || p >= t.spec.W {
			return nil, fmt.Errorf("topology: port %d at level %d out of range [0,%d)", p, lvl, t.spec.W)
		}
	}
	p := &Path{Src: src, Dst: dst, Ports: append([]int(nil), ports...)}
	cur, _ := t.NodeSwitch(src)
	p.Hops = append(p.Hops, Hop{0, cur})
	// Climb.
	for lvl := 0; lvl < h; lvl++ {
		cur = t.UpParent(lvl, cur, ports[lvl])
		p.Hops = append(p.Hops, Hop{lvl + 1, cur})
	}
	// Descend along the unique tree path to dst: at each level pick the
	// child that is an ancestor of dst's level-0 switch.
	dstSwitch, _ := t.NodeSwitch(dst)
	dstLab := t.spec.LabelOf(0, dstSwitch)
	for lvl := h - 1; lvl >= 0; lvl-- {
		c := dstLab[lvl] // child digit of the destination at this level
		next := t.DownChild(lvl, cur, c)
		if next < 0 {
			return nil, fmt.Errorf("topology: no child %d below switch (%d,%d)", c, lvl+1, cur)
		}
		cur = next
		p.Hops = append(p.Hops, Hop{lvl, cur})
	}
	if cur != dstSwitch {
		return nil, fmt.Errorf("topology: path ends at switch %d, destination switch is %d", cur, dstSwitch)
	}
	return p, nil
}

// DownSwitchOnPath returns the destination-side level-h switch δ_h of a
// request from src to dst routed with the given upward ports (Theorem 2's
// mirror switch): the switch reached by climbing h levels from the
// destination switch with the same ports.
func (t *Tree) DownSwitchOnPath(dst int, ports []int, h int) int {
	cur, _ := t.NodeSwitch(dst)
	for lvl := 0; lvl < h; lvl++ {
		cur = t.UpParent(lvl, cur, ports[lvl])
	}
	return cur
}

// Validate performs structural self-checks: bidirectional adjacency
// consistency, complete down tables, and parent-set disjointness. It
// returns the first inconsistency found, or nil.
func (t *Tree) Validate() error {
	s := t.spec
	for h := 0; h < t.LinkLevels(); h++ {
		nLow, nHigh := s.SwitchesAt(h), s.SwitchesAt(h+1)
		for idx := 0; idx < nLow; idx++ {
			for p := 0; p < s.W; p++ {
				parent := t.UpParent(h, idx, p)
				if parent < 0 || parent >= nHigh {
					return fmt.Errorf("level %d switch %d port %d: parent %d out of range", h, idx, p, parent)
				}
				c := t.UpParentDownPort(h, idx, p)
				if got := t.DownChild(h, parent, c); got != idx {
					return fmt.Errorf("level %d switch %d port %d: down(%d,%d) = %d, want %d", h, idx, p, parent, c, got, idx)
				}
				if got := t.DownChildUpPort(h, parent, c); got != p {
					return fmt.Errorf("level %d switch %d port %d: up-port back = %d", h, idx, p, got)
				}
			}
		}
		for idx := 0; idx < nHigh; idx++ {
			for c := 0; c < s.M; c++ {
				if t.DownChild(h, idx, c) < 0 {
					return fmt.Errorf("level %d parent %d: child port %d unwired", h+1, idx, c)
				}
			}
		}
	}
	return nil
}

// OhringParent computes the parent index using the paper's integer
// construction rule for the symmetric case m == w:
//
//	τ_{h+1} = (τ div w^{h+1})·w^{h+1} + ((τ mod w^{h+1})·w + p) mod w^{h+1}
//
// It is an independent formulation of the wiring used by tests to
// cross-validate the digit-shift construction. It panics if m != w.
func (t *Tree) OhringParent(h, tau, p int) int {
	if !t.spec.Symmetric() {
		panic("topology: OhringParent requires m == w")
	}
	w := t.spec.W
	block := digits.Pow(w, h+1)
	gamma := tau / block
	delta := tau % block
	return gamma*block + (delta*w+p)%block
}

// WriteDot emits the tree in Graphviz DOT format: switches as boxes per
// level (rank-grouped), nodes as circles, one edge per physical link.
func (t *Tree) WriteDot(out io.Writer) error {
	if _, err := fmt.Fprintf(out, "graph ft {\n  rankdir=BT;\n"); err != nil {
		return err
	}
	for h := 0; h < t.Levels(); h++ {
		fmt.Fprintf(out, "  { rank=same;")
		for idx := 0; idx < t.SwitchesAt(h); idx++ {
			fmt.Fprintf(out, " s%d_%d;", h, idx)
		}
		fmt.Fprintf(out, " }\n")
		for idx := 0; idx < t.SwitchesAt(h); idx++ {
			fmt.Fprintf(out, "  s%d_%d [shape=box,label=\"SW(%d,%d)\"];\n", h, idx, h, idx)
		}
	}
	for n := 0; n < t.Nodes(); n++ {
		sw, _ := t.NodeSwitch(n)
		fmt.Fprintf(out, "  n%d [shape=circle,label=\"%d\"];\n  n%d -- s0_%d;\n", n, n, n, sw)
	}
	for h := 0; h < t.LinkLevels(); h++ {
		for idx := 0; idx < t.SwitchesAt(h); idx++ {
			for p := 0; p < t.Parents(); p++ {
				fmt.Fprintf(out, "  s%d_%d -- s%d_%d [label=\"%d\"];\n", h, idx, h+1, t.UpParent(h, idx, p), p)
			}
		}
	}
	_, err := fmt.Fprintln(out, "}")
	return err
}

// String describes the tree, e.g. "FT(3,4,4): 64 nodes, 48 switches".
func (t *Tree) String() string {
	return fmt.Sprintf("FT(%d,%d,%d): %d nodes, %d switches, %d links",
		t.spec.L, t.spec.M, t.spec.W, t.Nodes(), t.TotalSwitches(), t.TotalLinks())
}
