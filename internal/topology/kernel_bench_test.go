package topology

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchPairs builds a deterministic random src/dst workload plus one
// upward-port choice per level, shared by the cursor benchmarks.
func benchPairs(tree *Tree, n int) (src, dst []int, ports [][]int) {
	rng := rand.New(rand.NewSource(7))
	src = make([]int, n)
	dst = make([]int, n)
	ports = make([][]int, n)
	for i := range src {
		src[i] = rng.Intn(tree.Nodes())
		dst[i] = rng.Intn(tree.Nodes())
		h := tree.AncestorLevel(src[i], dst[i])
		ports[i] = make([]int, h)
		for j := range ports[i] {
			ports[i][j] = rng.Intn(tree.Parents())
		}
	}
	return src, dst, ports
}

// BenchmarkRouteCursor measures the scheduler-hot cursor walk: Start at
// the endpoints' level-0 switches and Advance through every level below
// the common ancestor — the σ/δ lockstep arithmetic every scheduler,
// teardown, and verification replay pays per request.
func BenchmarkRouteCursor(b *testing.B) {
	shapes := []struct{ l, m, w int }{{3, 8, 8}, {4, 4, 4}, {3, 6, 6}}
	for _, sh := range shapes {
		tree := MustNew(sh.l, sh.m, sh.w)
		src, dst, ports := benchPairs(tree, 1024)
		for _, v := range []struct {
			name string
			tree *Tree
		}{
			{fmt.Sprintf("FT%d-%d-%d", sh.l, sh.m, sh.w), tree},
			{fmt.Sprintf("FT%d-%d-%d/arith", sh.l, sh.m, sh.w), tree.WithArithmeticCursor()},
		} {
			b.Run(v.name, func(b *testing.B) {
				tree := v.tree
				var cur RouteCursor
				sink := 0
				for i := 0; i < b.N; i++ {
					k := i & 1023
					cur.Start(tree, src[k], dst[k])
					for _, p := range ports[k] {
						cur.Advance(p)
					}
					sink += cur.Sigma()
				}
				if sink < 0 {
					b.Fatal("impossible")
				}
			})
		}
	}
}

// BenchmarkNodeAncestorLevel measures the lowest-common-ancestor query
// that prices every request before any level is visited.
func BenchmarkNodeAncestorLevel(b *testing.B) {
	shapes := []struct{ l, m, w int }{{3, 8, 8}, {4, 4, 4}, {3, 6, 6}}
	for _, sh := range shapes {
		tree := MustNew(sh.l, sh.m, sh.w)
		src, dst, _ := benchPairs(tree, 1024)
		b.Run(fmt.Sprintf("FT%d-%d-%d", sh.l, sh.m, sh.w), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				k := i & 1023
				sink += tree.AncestorLevel(src[k], dst[k])
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}
