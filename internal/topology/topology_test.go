package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/digits"
)

func TestNewRejectsBadParams(t *testing.T) {
	for _, c := range [][3]int{{0, 4, 4}, {3, 0, 4}, {3, 4, 0}, {-1, 2, 2}} {
		if _, err := New(c[0], c[1], c[2]); err == nil {
			t.Errorf("New(%v) succeeded, want error", c)
		}
	}
	if _, err := New(30, 2, 2); err == nil {
		t.Error("New(30,2,2) should exceed the node limit")
	}
}

func TestPaperFigure1Shapes(t *testing.T) {
	// Figure 1(b): 16-node two-level fat tree of 4-way switches.
	ft2 := MustNew(2, 4, 4)
	if ft2.Nodes() != 16 || ft2.SwitchesAt(0) != 4 || ft2.SwitchesAt(1) != 4 {
		t.Fatalf("FT(2,4) shape wrong: %s", ft2)
	}
	// Figure 1(c): 64-node three-level fat tree.
	ft3 := MustNew(3, 4, 4)
	if ft3.Nodes() != 64 || ft3.TotalSwitches() != 48 {
		t.Fatalf("FT(3,4) shape wrong: %s", ft3)
	}
	if ft3.TotalLinks() != 2*16*4 {
		t.Fatalf("FT(3,4) links = %d want 128", ft3.TotalLinks())
	}
}

func TestValidateAllShapes(t *testing.T) {
	shapes := [][3]int{
		{1, 4, 4}, {2, 4, 4}, {2, 8, 8}, {3, 4, 4}, {3, 6, 6},
		{4, 3, 3}, {4, 4, 4}, {3, 4, 2}, {3, 2, 4}, {2, 5, 3}, {5, 2, 2},
	}
	for _, sh := range shapes {
		tr := MustNew(sh[0], sh[1], sh[2])
		if err := tr.Validate(); err != nil {
			t.Errorf("FT(%d,%d,%d): %v", sh[0], sh[1], sh[2], err)
		}
	}
}

// Theorem 1 cross-check: the adjacency built from digit shifts must equal
// the paper's Ohring integer rule at every (level, switch, port).
func TestOhringRuleAgreesWithDigitWiring(t *testing.T) {
	for _, sh := range [][2]int{{2, 4}, {3, 4}, {4, 3}, {2, 8}, {3, 6}, {5, 2}} {
		tr := MustNew(sh[0], sh[1], sh[1])
		for h := 0; h < tr.LinkLevels(); h++ {
			for idx := 0; idx < tr.SwitchesAt(h); idx++ {
				for p := 0; p < tr.Parents(); p++ {
					want := tr.OhringParent(h, idx, p)
					got := tr.UpParent(h, idx, p)
					if got != want {
						t.Fatalf("FT(%d,%d) level %d switch %d port %d: digit %d vs Ohring %d",
							sh[0], sh[1], h, idx, p, got, want)
					}
				}
			}
		}
	}
}

func TestOhringParentPanicsOnAsymmetric(t *testing.T) {
	tr := MustNew(3, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("OhringParent on m != w did not panic")
		}
	}()
	tr.OhringParent(0, 0, 0)
}

// Third independent construction: the literal recursive composition.
func TestRecursiveConstructionAgrees(t *testing.T) {
	for _, sh := range [][2]int{{2, 4}, {3, 4}, {4, 3}, {3, 6}, {4, 4}, {5, 2}} {
		tr := MustNew(sh[0], sh[1], sh[1])
		rec := RecursiveUpTables(sh[0], sh[1])
		if len(rec) != tr.LinkLevels() {
			t.Fatalf("FT(%d,%d): recursive levels %d want %d", sh[0], sh[1], len(rec), tr.LinkLevels())
		}
		for h := range rec {
			for i, parent := range rec[h] {
				idx, p := i/tr.Parents(), i%tr.Parents()
				if got := tr.UpParent(h, idx, p); got != int(parent) {
					t.Fatalf("FT(%d,%d) level %d switch %d port %d: tree %d vs recursive %d",
						sh[0], sh[1], h, idx, p, got, parent)
				}
			}
		}
	}
}

func TestRecursiveSingleLevel(t *testing.T) {
	if rec := RecursiveUpTables(1, 4); rec != nil {
		t.Fatalf("FT(1,4) recursive tables = %v, want nil", rec)
	}
}

// Theorem 2 on the explicit graph: climbing from the destination with the
// same ports lands on the same switches the down-path traverses.
func TestTheorem2MirrorOnGraph(t *testing.T) {
	shapes := [][3]int{{2, 4, 4}, {3, 4, 4}, {4, 3, 3}, {3, 4, 2}, {3, 2, 4}}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range shapes {
		tr := MustNew(sh[0], sh[1], sh[2])
		for trial := 0; trial < 500; trial++ {
			src := rng.Intn(tr.Nodes())
			dst := rng.Intn(tr.Nodes())
			h := tr.AncestorLevel(src, dst)
			ports := make([]int, h)
			for i := range ports {
				ports[i] = rng.Intn(tr.Parents())
			}
			path, err := tr.ExpandPath(src, dst, ports)
			if err != nil {
				t.Fatalf("FT(%v) ExpandPath(%d,%d,%v): %v", sh, src, dst, ports, err)
			}
			if len(path.Hops) != 2*h+1 {
				t.Fatalf("hops = %d want %d", len(path.Hops), 2*h+1)
			}
			// The descending hop at level lvl must equal the Theorem 2
			// mirror switch: climb lvl levels from dst with the same ports.
			for lvl := 0; lvl < h; lvl++ {
				mirror := tr.DownSwitchOnPath(dst, ports, lvl)
				hop := path.Hops[2*h-lvl] // descending hop at level lvl
				if hop.Level != lvl || hop.Index != mirror {
					t.Fatalf("FT(%v) (%d→%d) ports %v: down hop at level %d is (%d,%d), mirror is %d",
						sh, src, dst, ports, lvl, hop.Level, hop.Index, mirror)
				}
			}
			// And the downward link into δ_lvl is attached at the same
			// upper port P_lvl (Theorem 2's core claim): descending from
			// δ_{lvl+1} must use the child whose up-port back is P_lvl.
			for lvl := 0; lvl < h; lvl++ {
				delta := tr.DownSwitchOnPath(dst, ports, lvl)
				parent := tr.DownSwitchOnPath(dst, ports, lvl+1)
				if got := tr.UpParent(lvl, delta, ports[lvl]); got != parent {
					t.Fatalf("FT(%v): Ulink(%d,δ,%d) does not reach the path parent", sh, lvl, ports[lvl])
				}
			}
		}
	}
}

func TestExpandPathErrors(t *testing.T) {
	tr := MustNew(3, 4, 4)
	if _, err := tr.ExpandPath(-1, 0, nil); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := tr.ExpandPath(0, 64, nil); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := tr.ExpandPath(0, 63, []int{0}); err == nil {
		t.Error("wrong port count accepted")
	}
	if _, err := tr.ExpandPath(0, 63, []int{0, 9}); err == nil {
		t.Error("out-of-range port accepted")
	}
	if p, err := tr.ExpandPath(0, 1, nil); err != nil || len(p.Hops) != 1 {
		t.Errorf("same-switch path: %v, %v", p, err)
	}
}

func TestNodeSwitch(t *testing.T) {
	tr := MustNew(3, 4, 4)
	for n := 0; n < tr.Nodes(); n++ {
		sw, port := tr.NodeSwitch(n)
		if sw != n/4 || port != n%4 {
			t.Fatalf("NodeSwitch(%d) = %d,%d", n, sw, port)
		}
	}
}

func TestPaperFigure2Example(t *testing.T) {
	// FT(3,4): request from SW(0,0) to SW(0,6); if P0 = 1 the request must
	// come back down to level 0 using the same port index regardless of
	// the choice above level 0, i.e. via Dlink(0,6,1).
	tr := MustNew(3, 4, 4)
	src, dst := 0, 24 // nodes on switches 0 and 6
	if tr.AncestorLevel(src, dst) != 2 {
		t.Fatalf("H = %d want 2", tr.AncestorLevel(src, dst))
	}
	for p1 := 0; p1 < 4; p1++ {
		ports := []int{1, p1}
		delta0 := tr.DownSwitchOnPath(dst, ports, 0)
		dstSwitch, _ := tr.NodeSwitch(dst)
		if delta0 != dstSwitch {
			t.Fatalf("mirror at level 0 should be the destination switch")
		}
		// The level-0 down link is attached at upper port P0 = 1 of
		// switch 6 for every choice of P1.
		parent := tr.DownSwitchOnPath(dst, ports, 1)
		if tr.UpParent(0, dstSwitch, 1) != parent {
			t.Fatalf("P1=%d: down link not at port 1 of switch 6", p1)
		}
	}
}

// Property: every up link is the unique link between its two endpoints in
// the downward table, i.e. the physical link is shared by exactly one
// (up-port, down-port) pair.
func TestQuickLinkBijection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 2 + rng.Intn(3)
		m := 2 + rng.Intn(3)
		w := 2 + rng.Intn(3)
		tr := MustNew(l, m, w)
		h := rng.Intn(tr.LinkLevels())
		idx := rng.Intn(tr.SwitchesAt(h))
		p := rng.Intn(w)
		parent := tr.UpParent(h, idx, p)
		c := tr.UpParentDownPort(h, idx, p)
		return tr.DownChild(h, parent, c) == idx && tr.DownChildUpPort(h, parent, c) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: all w^H port choices route src to dst (full path diversity up
// to the ancestor level), and distinct choices reach distinct ancestors.
func TestQuickPathDiversity(t *testing.T) {
	tr := MustNew(3, 4, 4)
	f := func(si, di uint16) bool {
		src := int(si) % tr.Nodes()
		dst := int(di) % tr.Nodes()
		h := tr.AncestorLevel(src, dst)
		if h == 0 {
			return true
		}
		total := digits.Pow(tr.Parents(), h)
		ancestors := map[int]bool{}
		for enc := 0; enc < total; enc++ {
			ports := make([]int, h)
			e := enc
			for i := range ports {
				ports[i] = e % tr.Parents()
				e /= tr.Parents()
			}
			if _, err := tr.ExpandPath(src, dst, ports); err != nil {
				return false
			}
			ancestors[tr.DownSwitchOnPath(dst, ports, h)] = true
		}
		return len(ancestors) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDot(t *testing.T) {
	tr := MustNew(2, 2, 2)
	var sb strings.Builder
	if err := tr.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph ft", "s0_0", "s1_1", "n3", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestString(t *testing.T) {
	got := MustNew(3, 4, 4).String()
	if !strings.Contains(got, "FT(3,4,4)") || !strings.Contains(got, "64 nodes") {
		t.Fatalf("String = %q", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(0, 0, 0)
}

func BenchmarkNewFT3x16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustNew(3, 16, 16)
	}
}

func BenchmarkExpandPath(b *testing.B) {
	tr := MustNew(4, 4, 4)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := rng.Intn(256), rng.Intn(256)
		h := tr.AncestorLevel(src, dst)
		ports := make([]int, h)
		for j := range ports {
			ports[j] = rng.Intn(4)
		}
		if _, err := tr.ExpandPath(src, dst, ports); err != nil {
			b.Fatal(err)
		}
	}
}
