package topology

// RouteCursor tracks the switch pair a unicast connection occupies while
// it climbs: σ_h on the source side and δ_h on the destination-side
// mirror (Theorem 2: choosing upward port p at level h forces the
// downward channel of the same port index at the mirror switch, so both
// sides climb with the same port). Every scheduler in the repository —
// sequential, stale-view, backtracking, parallel — and every replay
// (verification, teardown, path release) walks this identical geometry;
// the cursor is the single implementation of that Theorem 1/2
// arithmetic.
//
// A RouteCursor is a small value type: declare it on the stack (or embed
// it in a per-request record) and Start it — no allocation, so it is
// safe on the zero-allocation scheduling hot path.
type RouteCursor struct {
	tree         *Tree
	sigma, delta int
	level        int
}

// Start positions the cursor at level 0 for a connection from src to dst
// (both processing nodes): σ_0 and δ_0 are the endpoints' level-0
// switches.
func (c *RouteCursor) Start(tree *Tree, src, dst int) {
	c.tree = tree
	if tree.mPow2 && !tree.arith && uint(src) < uint(tree.nodes) && uint(dst) < uint(tree.nodes) {
		c.sigma = src >> tree.mShift
		c.delta = dst >> tree.mShift
	} else {
		// General radix, the arithmetic view, or out-of-range endpoints
		// (NodeSwitch owns the panic).
		c.sigma, _ = tree.NodeSwitch(src)
		c.delta, _ = tree.NodeSwitch(dst)
	}
	c.level = 0
}

// StartAt positions the cursor at an explicit (level, σ, δ) triple, for
// walks that do not begin at processing nodes (multicast branches resume
// at their recorded mirrors).
func (c *RouteCursor) StartAt(tree *Tree, level, sigma, delta int) {
	c.tree = tree
	c.sigma, c.delta = sigma, delta
	c.level = level
}

// Sigma returns the source-side switch index at the current level.
func (c *RouteCursor) Sigma() int { return c.sigma }

// Delta returns the destination-side mirror switch index at the current
// level.
func (c *RouteCursor) Delta() int { return c.delta }

// Level returns the link level the cursor is about to cross (0-based).
func (c *RouteCursor) Level() int { return c.level }

// Advance crosses the current level via upward port p: both sides climb
// to their level+1 parents (the same port index on each, per Theorem 2).
// The two parent lookups are fused by hand — one shared level offset
// into the tree's contiguous parent table, shift/mask indexing when w is
// a power of two — because this is the single hottest operation in every
// scheduler's inner loop.
func (c *RouteCursor) Advance(p int) {
	t := c.tree
	if t.arith {
		c.sigma = t.kern.UpParentArith(c.level, c.sigma, p)
		c.delta = t.kern.UpParentArith(c.level, c.delta, p)
		c.level++
		return
	}
	base := int(t.upOff[c.level])
	if t.wPow2 {
		c.sigma = int(t.upFlat[base+(c.sigma<<t.wShift|p)])
		c.delta = int(t.upFlat[base+(c.delta<<t.wShift|p)])
	} else {
		w := t.spec.W
		c.sigma = int(t.upFlat[base+c.sigma*w+p])
		c.delta = int(t.upFlat[base+c.delta*w+p])
	}
	c.level++
}

// AdvanceDelta climbs the mirror side only. Multicast trees use it: each
// destination branch climbs its own mirrors with the shared ports while
// the single source-side spine is tracked separately.
func (c *RouteCursor) AdvanceDelta(p int) {
	c.delta = c.tree.UpParent(c.level, c.delta, p)
	c.level++
}

// Walk replays a fully or partially routed connection: it calls visit at
// every level with the (level, σ, δ, port) it crosses, advancing as it
// goes. The cursor ends positioned above the last port. A nil visit
// replays for position only (e.g. rewinding to a backtrack point).
func (c *RouteCursor) Walk(ports []int, visit func(level, sigma, delta, port int)) {
	for _, p := range ports {
		if visit != nil {
			visit(c.level, c.sigma, c.delta, p)
		}
		c.Advance(p)
	}
}
