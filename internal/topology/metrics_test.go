package topology

import (
	"math"
	"math/rand"
	"testing"
)

func TestMetricsKnownValues(t *testing.T) {
	// FT(2,4): 16 nodes, diameter 2, diversity 4, bisection 8.
	m := MustNew(2, 4, 4).ComputeMetrics()
	if m.Nodes != 16 || m.Diameter != 2 || m.MaxPathDiversity != 4 {
		t.Fatalf("FT(2,4) metrics: %+v", m)
	}
	if m.BisectionLinks != 8 {
		t.Fatalf("FT(2,4) bisection = %d want 8 (half of 16 top links)", m.BisectionLinks)
	}
	if !m.FullBandwidth {
		t.Fatal("symmetric tree not full bandwidth")
	}

	// FT(3,4): diameter 4, diversity 16, bisection (4/2)*16 = 32.
	m3 := MustNew(3, 4, 4).ComputeMetrics()
	if m3.Diameter != 4 || m3.MaxPathDiversity != 16 || m3.BisectionLinks != 32 {
		t.Fatalf("FT(3,4) metrics: %+v", m3)
	}
}

func TestMetricsSingleLevel(t *testing.T) {
	m := MustNew(1, 4, 4).ComputeMetrics()
	if m.Diameter != 0 || m.BisectionLinks != 0 || m.MaxPathDiversity != 1 {
		t.Fatalf("FT(1,4) metrics: %+v", m)
	}
	// All pairs share the single switch: average distance 0.
	if m.AvgDistance != 0 {
		t.Fatalf("AvgDistance = %v", m.AvgDistance)
	}
}

func TestMetricsSlimNotFullBandwidth(t *testing.T) {
	m := MustNew(3, 4, 2).ComputeMetrics()
	if m.FullBandwidth {
		t.Fatal("slim tree reported full bandwidth")
	}
	if m.MaxPathDiversity != 4 { // w^2
		t.Fatalf("diversity = %d", m.MaxPathDiversity)
	}
}

func TestAvgDistanceMatchesExhaustive(t *testing.T) {
	// Exact formula vs brute force over all ordered pairs.
	for _, sh := range [][3]int{{2, 4, 4}, {3, 4, 4}, {3, 4, 2}, {4, 2, 2}} {
		tr := MustNew(sh[0], sh[1], sh[2])
		n := tr.Nodes()
		total, pairs := 0.0, 0.0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				total += float64(2 * tr.AncestorLevel(a, b))
				pairs++
			}
		}
		want := total / pairs
		got := tr.ComputeMetrics().AvgDistance
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("FT(%v): AvgDistance %v, exhaustive %v", sh, got, want)
		}
	}
}

func TestAvgDistanceSampledSanity(t *testing.T) {
	// On a larger tree, sampling should agree within noise.
	tr := MustNew(3, 8, 8)
	rng := rand.New(rand.NewSource(3))
	total := 0.0
	const samples = 200000
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(512), rng.Intn(512)
		for b == a {
			b = rng.Intn(512)
		}
		total += float64(2 * tr.AncestorLevel(a, b))
	}
	got := tr.ComputeMetrics().AvgDistance
	if math.Abs(got-total/samples) > 0.02 {
		t.Fatalf("AvgDistance %v vs sampled %v", got, total/samples)
	}
}
