package topology

import (
	"math/rand"
	"testing"
)

// TestRouteCursorMatchesHandWalk pins the cursor to the raw NodeSwitch +
// UpParent arithmetic it replaces, over random routes on asymmetric
// trees.
func TestRouteCursorMatchesHandWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{2, 4, 4}, {3, 4, 4}, {3, 4, 2}, {4, 3, 3}, {2, 6, 3}} {
		tree := MustNew(dims[0], dims[1], dims[2])
		for trial := 0; trial < 50; trial++ {
			src := rng.Intn(tree.Nodes())
			dst := rng.Intn(tree.Nodes())
			h := tree.AncestorLevel(src, dst)
			ports := make([]int, h)
			for i := range ports {
				ports[i] = rng.Intn(tree.Parents())
			}

			sigma, _ := tree.NodeSwitch(src)
			delta, _ := tree.NodeSwitch(dst)
			var c RouteCursor
			c.Start(tree, src, dst)
			for lvl, p := range ports {
				if c.Sigma() != sigma || c.Delta() != delta || c.Level() != lvl {
					t.Fatalf("FT%v %d→%d level %d: cursor (σ=%d δ=%d h=%d), want (σ=%d δ=%d h=%d)",
						dims, src, dst, lvl, c.Sigma(), c.Delta(), c.Level(), sigma, delta, lvl)
				}
				sigma = tree.UpParent(lvl, sigma, p)
				delta = tree.UpParent(lvl, delta, p)
				c.Advance(p)
			}
			if c.Sigma() != sigma || c.Delta() != delta || c.Level() != h {
				t.Fatalf("FT%v %d→%d: final cursor (σ=%d δ=%d), want (σ=%d δ=%d)",
					dims, src, dst, c.Sigma(), c.Delta(), sigma, delta)
			}

			// Walk visits the same triples.
			var c2 RouteCursor
			c2.Start(tree, src, dst)
			var visited int
			c2.Walk(ports, func(level, s2, d2, p int) {
				if p != ports[level] {
					t.Fatalf("Walk port %d at level %d, want %d", p, level, ports[level])
				}
				visited++
			})
			if visited != h {
				t.Fatalf("Walk visited %d levels, want %d", visited, h)
			}
			if c2.Sigma() != sigma || c2.Delta() != delta {
				t.Fatalf("Walk final (σ=%d δ=%d), want (σ=%d δ=%d)", c2.Sigma(), c2.Delta(), sigma, delta)
			}
		}
	}
}

// TestRouteCursorDeltaMatchesDownSwitchOnPath cross-checks the mirror
// side against the topology's independent DownSwitchOnPath walk.
func TestRouteCursorDeltaMatchesDownSwitchOnPath(t *testing.T) {
	tree := MustNew(3, 4, 4)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		src, dst := rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes())
		h := tree.AncestorLevel(src, dst)
		ports := make([]int, h)
		for i := range ports {
			ports[i] = rng.Intn(tree.Parents())
		}
		var c RouteCursor
		c.Start(tree, src, dst)
		for lvl := 0; lvl < h; lvl++ {
			if want := tree.DownSwitchOnPath(dst, ports, lvl); c.Delta() != want {
				t.Fatalf("level %d: delta %d, want %d", lvl, c.Delta(), want)
			}
			c.Advance(ports[lvl])
		}
	}
}

// TestRouteCursorStartAt covers resuming a walk mid-tree.
func TestRouteCursorStartAt(t *testing.T) {
	tree := MustNew(3, 4, 4)
	var full, resumed RouteCursor
	full.Start(tree, 0, 63)
	full.Advance(1)
	resumed.StartAt(tree, full.Level(), full.Sigma(), full.Delta())
	full.Advance(2)
	resumed.Advance(2)
	if full.Sigma() != resumed.Sigma() || full.Delta() != resumed.Delta() || full.Level() != resumed.Level() {
		t.Fatalf("resumed cursor diverged: (%d,%d,%d) vs (%d,%d,%d)",
			resumed.Sigma(), resumed.Delta(), resumed.Level(), full.Sigma(), full.Delta(), full.Level())
	}
}
