// Package analytic derives mean-field predictions for the schedulability
// ratios the simulations measure — an independent check that the
// simulator behaves like the system it models, not just like itself.
//
// Model. Process a random permutation's requests in continuous "time"
// t ∈ [0,1] (the fraction handled so far). A request whose lowest common
// ancestor sits at level k consumes, when granted, one upward and one
// downward channel at every link level h < k. Each link level carries
// exactly N channels per direction (switches(h)·w = w^l), so the expected
// busy fraction b_h(t) of a level-h channel obeys
//
//	b_h'(t) = P(H > h) · E[grant | request uses level h, time t],
//
// with the grant probability of a depth-k request under the local random
// scheduler approximated by independence across levels:
//
//	g_local(t, k) = Π_{h<k} (1 − b_h(t)),
//
// (an upward port is almost always available while b_h < 1; the forced
// downward channel at each level is free with probability 1 − b_h), and
// under the Level-wise scheduler by the probability that the w-bit AND of
// two availability vectors is non-zero:
//
//	g_lw(t, k) = Π_{h<k} (1 − (1 − (1−b_h)²)^w).
//
// Integrating the coupled ODEs (forward Euler) and averaging the grant
// probability over the ancestor-level distribution yields the predicted
// schedulability ratio. For two-level trees the local model collapses to
// the closed form  f + 1 − e^{−(1−f)}  with f = P(H = 0).
//
// Accuracy. For the local scheduler the model is quantitative: it lands
// within ~1 point of simulation at large w (e.g. FT(2,64): predicted
// 64.2% vs measured 64.8%) and within a few points at small w, where
// mean-field fluctuations matter. For the Level-wise scheduler the
// independence assumption makes the prediction a strict LOWER BOUND: the
// scheduler only ever claims ports free in both vectors, which keeps the
// two free sets aligned far better than independence assumes (and
// first-fit packs both toward low indices), so the real AND survives
// longer than (1−(1−free²))^w suggests. The tests assert exactly these
// relationships, and experiment E15 reports prediction vs measurement
// side by side.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/digits"
)

// HDistribution returns P(H = k) for k = 0..l-1: the probability that a
// uniformly random distinct destination's lowest common ancestor with a
// fixed source sits at switch level k in FT(l, m, ·).
func HDistribution(l, m int) []float64 {
	n := digits.Pow(m, l)
	dist := make([]float64, l)
	sub := 1
	for k := 0; k < l; k++ {
		prev := sub
		sub *= m // nodes under a level-k switch
		cnt := sub - prev
		if k == 0 {
			cnt = sub - 1
		}
		dist[k] = float64(cnt) / float64(n-1)
	}
	return dist
}

// TwoLevelLocalClosedForm returns the closed-form mean-field prediction
// for the local random scheduler on FT(2, w): f + 1 − e^{−(1−f)} with
// f = P(H = 0) = (w−1)/(w²−1).
func TwoLevelLocalClosedForm(w int) float64 {
	f := HDistribution(2, w)[0]
	return f + 1 - math.Exp(-(1 - f))
}

// Scheduler selects which grant model the ODE integrates.
type Scheduler int

// The two modeled schedulers.
const (
	// LocalRandom models the conventional adaptive scheduler.
	LocalRandom Scheduler = iota
	// LevelWise models the paper's global scheduler.
	LevelWise
)

// String names the modeled scheduler.
func (s Scheduler) String() string {
	switch s {
	case LocalRandom:
		return "local-random"
	case LevelWise:
		return "level-wise"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Predict integrates the mean-field ODEs for FT(l, w) (symmetric) and
// returns the predicted schedulability ratio of a random permutation.
// steps is the Euler step count (0 means 10000).
func Predict(s Scheduler, l, w, steps int) float64 {
	if steps <= 0 {
		steps = 10000
	}
	if l < 1 || w < 1 {
		panic(fmt.Sprintf("analytic: bad shape FT(%d,%d)", l, w))
	}
	hDist := HDistribution(l, w)
	// pAbove[h] = P(H > h): the fraction of requests using link level h.
	pAbove := make([]float64, l-1)
	for h := 0; h < l-1; h++ {
		sum := 0.0
		for k := h + 1; k < l; k++ {
			sum += hDist[k]
		}
		pAbove[h] = sum
	}

	b := make([]float64, l-1) // busy fraction per link level
	dt := 1.0 / float64(steps)
	granted := 0.0
	for step := 0; step < steps; step++ {
		// Grant probability per level of the AND/down-channel check.
		perLevel := make([]float64, l-1)
		for h := range perLevel {
			free := 1 - b[h]
			switch s {
			case LevelWise:
				perLevel[h] = 1 - math.Pow(1-free*free, float64(w))
			default:
				perLevel[h] = free
			}
		}
		// Average over the ancestor-level distribution; accumulate grant
		// mass and per-level channel consumption.
		for k := 0; k < l; k++ {
			g := 1.0
			for h := 0; h < k; h++ {
				g *= perLevel[h]
			}
			granted += hDist[k] * g * dt
		}
		for h := range b {
			// Mean grant probability among requests that use level h.
			if pAbove[h] == 0 {
				continue
			}
			cond := 0.0
			for k := h + 1; k < l; k++ {
				g := 1.0
				for j := 0; j < k; j++ {
					g *= perLevel[j]
				}
				cond += hDist[k] * g
			}
			b[h] += cond * dt // = P(H>h)·E[g | uses level h] · dt
			if b[h] > 1 {
				b[h] = 1
			}
		}
	}
	return granted
}
