package analytic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestHDistribution(t *testing.T) {
	// FT(2,4): 16 nodes; same-switch peers 3/15, cross 12/15.
	d := HDistribution(2, 4)
	if math.Abs(d[0]-3.0/15) > 1e-12 || math.Abs(d[1]-12.0/15) > 1e-12 {
		t.Fatalf("d = %v", d)
	}
	// Sums to 1 for several shapes.
	for _, c := range [][2]int{{2, 8}, {3, 4}, {4, 5}, {5, 2}} {
		sum := 0.0
		for _, p := range HDistribution(c[0], c[1]) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("FT(%v): distribution sums to %v", c, sum)
		}
	}
}

func TestClosedFormMatchesODE(t *testing.T) {
	for _, w := range []int{8, 16, 32, 64} {
		cf := TwoLevelLocalClosedForm(w)
		ode := Predict(LocalRandom, 2, w, 20000)
		if math.Abs(cf-ode) > 0.01 {
			t.Fatalf("w=%d: closed form %.4f vs ODE %.4f", w, cf, ode)
		}
	}
}

// measure runs the real simulator for comparison.
func measure(t *testing.T, s core.Scheduler, l, w, perms int) float64 {
	t.Helper()
	tree := topology.MustNew(l, w, w)
	gen := traffic.NewGenerator(tree.Nodes(), 1)
	st := linkstate.New(tree)
	ratios := make([]float64, 0, perms)
	for trial := 0; trial < perms; trial++ {
		st.Reset()
		ratios = append(ratios, s.Schedule(st, gen.MustBatch(traffic.RandomPermutation)).Ratio())
	}
	return stats.Summarize(ratios).Mean
}

func TestLocalPredictionQuantitative(t *testing.T) {
	// The local model should land within a few points of simulation,
	// tightening as w grows.
	cases := []struct {
		l, w int
		tol  float64
	}{
		{2, 16, 0.04}, {2, 32, 0.02}, {2, 64, 0.015},
		{3, 8, 0.05}, {3, 16, 0.03},
		{4, 5, 0.06}, {4, 7, 0.05},
	}
	for _, c := range cases {
		pred := Predict(LocalRandom, c.l, c.w, 0)
		meas := measure(t, core.NewLocalRandom(), c.l, c.w, 25)
		if math.Abs(pred-meas) > c.tol {
			t.Errorf("FT(%d,%d): predicted %.3f, measured %.3f (tol %.3f)", c.l, c.w, pred, meas, c.tol)
		}
	}
}

func TestLevelWisePredictionIsLowerBound(t *testing.T) {
	// The independence model underestimates Level-wise (which preserves
	// U/D alignment), so prediction <= measurement, while still beating
	// the local prediction (ordering preserved).
	for _, c := range [][2]int{{2, 16}, {3, 8}, {4, 5}} {
		predLW := Predict(LevelWise, c[0], c[1], 0)
		predLocal := Predict(LocalRandom, c[0], c[1], 0)
		measLW := measure(t, core.NewLevelWise(), c[0], c[1], 15)
		if predLW > measLW+0.01 {
			t.Errorf("FT(%v): LW prediction %.3f above measurement %.3f", c, predLW, measLW)
		}
		if predLW <= predLocal {
			t.Errorf("FT(%v): model lost the ordering: LW %.3f vs local %.3f", c, predLW, predLocal)
		}
	}
}

func TestPredictShapeTrends(t *testing.T) {
	// The model reproduces the paper's qualitative trends: local falls
	// with depth and with size; level-wise stays far above local.
	if !(Predict(LocalRandom, 2, 16, 0) > Predict(LocalRandom, 3, 16, 0)) {
		t.Error("local prediction does not fall with depth")
	}
	if !(Predict(LocalRandom, 2, 8, 0) > Predict(LocalRandom, 2, 64, 0)) {
		t.Error("local prediction does not fall with size")
	}
	for _, c := range [][2]int{{2, 16}, {3, 8}, {4, 5}} {
		if Predict(LevelWise, c[0], c[1], 0) <= Predict(LocalRandom, c[0], c[1], 0) {
			t.Errorf("FT(%v): LW prediction not above local", c)
		}
	}
}

func TestPredictDegenerate(t *testing.T) {
	// Single-level tree: everything same-switch, ratio 1.
	if got := Predict(LocalRandom, 1, 4, 100); math.Abs(got-1) > 1e-9 {
		t.Fatalf("FT(1,4) prediction %v", got)
	}
	if Scheduler(9).String() == "" || LocalRandom.String() != "local-random" || LevelWise.String() != "level-wise" {
		t.Fatal("strings")
	}
}

func TestPredictPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape did not panic")
		}
	}()
	Predict(LocalRandom, 0, 4, 10)
}
