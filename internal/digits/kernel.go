package digits

import (
	"fmt"
	"math/bits"
)

// Kernel is the precomputed query engine for one Spec: stride tables and
// power-of-two shift/mask forms of the per-request arithmetic every
// scheduler pays — node→switch splitting, lowest-common-ancestor level,
// and the Theorem 1 Up rule on dense indices. A Kernel is immutable and
// all methods are allocation-free, so they are safe on the
// zero-allocation scheduling hot path.
//
// Two deliberate redundancies make the kernel testable: UpParentArith is
// the closed-form Up rule (the oracle the table-driven topology adjacency
// is pinned against), and the general-radix NodeAncestorLevel path is
// cross-checked against the XOR fast path by the package tests.
type Kernel struct {
	spec  Spec
	nodes int

	// Stride tables: mPow[k] = M^k for k in [0, L-1] and wPow[k] = W^k
	// for k in [0, L-1]; level-h switch indices factor as
	// childDigits·W^h + portDigits.
	mPow []int
	wPow []int

	// Power-of-two fast-path parameters (the paper's FT(l, 2^k) evaluation
	// case): division and modulus by M or W become shifts and masks.
	mPow2, wPow2   bool
	mShift, wShift uint
	mMask, wMask   int

	// lcaByLen[b] is the ancestor level of two level-0 switches whose
	// index XOR has bit length b; built only when M is a power of two.
	lcaByLen []int8
}

// NewKernel validates the spec and precomputes its tables.
func NewKernel(spec Spec) (*Kernel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	k := &Kernel{
		spec:  spec,
		nodes: spec.Nodes(),
		mPow:  make([]int, spec.L),
		wPow:  make([]int, spec.L),
	}
	k.mPow[0], k.wPow[0] = 1, 1
	for i := 1; i < spec.L; i++ {
		k.mPow[i] = k.mPow[i-1] * spec.M
		k.wPow[i] = k.wPow[i-1] * spec.W
	}
	if spec.M&(spec.M-1) == 0 {
		k.mPow2 = true
		k.mShift = uint(bits.TrailingZeros(uint(spec.M)))
		k.mMask = spec.M - 1
		if k.mShift == 0 { // M == 1: a single node, XOR is always 0
			k.lcaByLen = []int8{0}
		} else {
			k.lcaByLen = make([]int8, k.mShift*uint(spec.L-1)+1)
			for b := 1; b < len(k.lcaByLen); b++ {
				k.lcaByLen[b] = int8((uint(b) + k.mShift - 1) / k.mShift)
			}
		}
	}
	if spec.W&(spec.W-1) == 0 {
		k.wPow2 = true
		k.wShift = uint(bits.TrailingZeros(uint(spec.W)))
		k.wMask = spec.W - 1
	}
	return k, nil
}

// MustKernel is NewKernel that panics on error.
func MustKernel(spec Spec) *Kernel {
	k, err := NewKernel(spec)
	if err != nil {
		panic(err)
	}
	return k
}

// Spec returns the radix parameters the kernel was built for.
func (k *Kernel) Spec() Spec { return k.spec }

// Nodes returns the cached node count m^l.
func (k *Kernel) Nodes() int { return k.nodes }

// PowW returns W^e from the stride table (e in [0, L-1]).
func (k *Kernel) PowW(e int) int { return k.wPow[e] }

// PowM returns M^e from the stride table (e in [0, L-1]).
func (k *Kernel) PowM(e int) int { return k.mPow[e] }

// WPow2 reports whether W is a power of two (the shift/mask fast path).
func (k *Kernel) WPow2() bool { return k.wPow2 }

// WShift returns log2(W); meaningful only when WPow2 is true.
func (k *Kernel) WShift() uint { return k.wShift }

// LCAParams exposes the power-of-two M fast-path parameters so callers
// on the scheduling hot path (topology.Tree) can mirror them into their
// own cache line: mPow2, log2(M), M-1, and the XOR bit-length →
// ancestor-level table (nil unless M is a power of two). The table is
// shared, not copied; treat it as read-only.
func (k *Kernel) LCAParams() (mPow2 bool, mShift uint, mMask int, lcaByLen []int8) {
	if !k.mPow2 {
		return false, 0, 0, nil
	}
	return true, k.mShift, k.mMask, k.lcaByLen
}

// NodeSwitch returns the dense level-0 switch index of node n and the
// child port it occupies.
func (k *Kernel) NodeSwitch(n int) (switchIdx, port int) {
	if uint(n) >= uint(k.nodes) {
		panic(fmt.Sprintf("digits: node %d out of range [0,%d)", n, k.nodes))
	}
	return k.SplitNode(n)
}

// SplitNode is NodeSwitch without the range check, for callers that
// already validated n.
func (k *Kernel) SplitNode(n int) (switchIdx, port int) {
	if k.mPow2 {
		return n >> k.mShift, n & k.mMask
	}
	return n / k.spec.M, n % k.spec.M
}

// NodeAncestorLevel returns the lowest-common-ancestor level of the
// level-0 switches of two nodes, matching Spec.NodeAncestorLevel
// digit-for-digit. With power-of-two M the highest differing child digit
// falls out of one XOR and a bit-length lookup; otherwise a top-down
// stride-quotient compare stops at the first divergence, so the common
// all-digits-differ case of random traffic exits after one division.
func (k *Kernel) NodeAncestorLevel(a, b int) int {
	if uint(a) >= uint(k.nodes) || uint(b) >= uint(k.nodes) {
		panic(fmt.Sprintf("digits: nodes (%d,%d) out of range [0,%d)", a, b, k.nodes))
	}
	if k.mPow2 {
		return int(k.lcaByLen[bits.Len(uint((a>>k.mShift)^(b>>k.mShift)))])
	}
	ia, ib := a/k.spec.M, b/k.spec.M
	for pos := k.spec.L - 2; pos >= 0; pos-- {
		if ia/k.mPow[pos] != ib/k.mPow[pos] {
			return pos + 1
		}
	}
	return 0
}

// Subtrees returns the number of disjoint level-`level` subtrees,
// M^(L-1-level): the count of distinct values SubtreeAt can return.
// Level L-1 has a single subtree (the whole fabric); level 0 has one
// subtree per leaf switch.
func (k *Kernel) Subtrees(level int) int {
	if level < 0 || level >= k.spec.L {
		panic(fmt.Sprintf("digits: subtree level %d out of range [0,%d)", level, k.spec.L))
	}
	return k.mPow[k.spec.L-1-level]
}

// SubtreeAt returns the index of the level-`level` subtree containing
// node n. Two nodes share a level-ℓ subtree exactly when their LCA
// level is at most ℓ, so a request whose NodeAncestorLevel is ≤ ℓ
// touches Ulink/Dlink rows only inside SubtreeAt(src, ℓ)'s row set —
// the disjointness fact the subtree-sharded parallel scheduler
// (internal/parsched Shard mode) builds on. With power-of-two M the
// division collapses to one shift.
func (k *Kernel) SubtreeAt(n, level int) int {
	if uint(n) >= uint(k.nodes) {
		panic(fmt.Sprintf("digits: node %d out of range [0,%d)", n, k.nodes))
	}
	if level < 0 || level >= k.spec.L {
		panic(fmt.Sprintf("digits: subtree level %d out of range [0,%d)", level, k.spec.L))
	}
	if k.mPow2 {
		return n >> (k.mShift * uint(level+1))
	}
	// n/M is the leaf switch; dropping its low `level` child digits
	// leaves the subtree index. (n/M)/M^level == n/M^(level+1).
	return n / k.spec.M / k.mPow[level]
}

// UpParentArith applies Theorem 1 directly on dense switch indices: the
// level-h index factors as C·W^h + P with C the packed child digits and
// P the packed port digits, so dropping the child digit at position h,
// shifting the port digits, and writing p is
//
//	parent = (C div M)·W^(h+1) + P·W + p.
//
// For m == w this reduces to the paper's OhringParent integer rule; for
// m != w it is the mixed-radix generalization. It is the arithmetic
// oracle the flattened adjacency tables are pinned against (see
// topology.Tree.WithArithmeticCursor).
func (k *Kernel) UpParentArith(h, idx, p int) int {
	wh := k.wPow[h]
	return idx/(wh*k.spec.M)*k.wPow[h+1] + idx%wh*k.spec.W + p
}
