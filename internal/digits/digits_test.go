package digits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{{1, 2, 2}, {3, 4, 4}, {4, 3, 3}, {3, 8, 2}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{{0, 2, 2}, {2, 0, 2}, {2, 2, 0}, {-1, 4, 4}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestCountsSymmetric(t *testing.T) {
	// FT(3, 4): the paper's 64-node example (Figure 1c).
	s := Spec{L: 3, M: 4, W: 4}
	if s.Nodes() != 64 {
		t.Fatalf("Nodes = %d want 64", s.Nodes())
	}
	for h := 0; h < 3; h++ {
		if got := s.SwitchesAt(h); got != 16 {
			t.Fatalf("SwitchesAt(%d) = %d want 16", h, got)
		}
	}
	if s.TotalSwitches() != 48 {
		t.Fatalf("TotalSwitches = %d want 48", s.TotalSwitches())
	}
	if s.LinkLevels() != 2 {
		t.Fatalf("LinkLevels = %d want 2", s.LinkLevels())
	}
	if !s.Symmetric() {
		t.Fatal("FT(3,4) should be symmetric")
	}
}

func TestCountsSlim(t *testing.T) {
	// Slimmed tree: more children than parents.
	s := Spec{L: 3, M: 4, W: 2}
	if s.Nodes() != 64 {
		t.Fatalf("Nodes = %d want 64", s.Nodes())
	}
	wantPerLevel := []int{16, 8, 4} // m^(l-1-h) * w^h
	for h, want := range wantPerLevel {
		if got := s.SwitchesAt(h); got != want {
			t.Fatalf("SwitchesAt(%d) = %d want %d", h, got, want)
		}
	}
	if s.Symmetric() {
		t.Fatal("FT(3,4,2) should not be symmetric")
	}
	// Link conservation between adjacent levels:
	// switches(h) * w == switches(h+1) * m.
	for h := 0; h < s.L-1; h++ {
		if s.SwitchesAt(h)*s.W != s.SwitchesAt(h+1)*s.M {
			t.Fatalf("link count mismatch between levels %d and %d", h, h+1)
		}
	}
}

func TestSingleLevelTree(t *testing.T) {
	s := Spec{L: 1, M: 4, W: 4}
	if s.Nodes() != 4 || s.SwitchesAt(0) != 1 || s.LinkLevels() != 0 {
		t.Fatalf("FT(1,4): nodes=%d switches=%d links=%d", s.Nodes(), s.SwitchesAt(0), s.LinkLevels())
	}
	lab, port := s.NodeSwitch(3)
	if len(lab) != 0 || port != 3 {
		t.Fatalf("NodeSwitch(3) = %v,%d", lab, port)
	}
	if s.AncestorLevel(lab, lab) != 0 {
		t.Fatal("single switch ancestor level != 0")
	}
}

func TestIndexLabelRoundTrip(t *testing.T) {
	specs := []Spec{{2, 4, 4}, {3, 4, 4}, {4, 3, 3}, {3, 4, 2}, {3, 2, 4}, {5, 2, 3}}
	for _, s := range specs {
		for h := 0; h < s.L; h++ {
			n := s.SwitchesAt(h)
			for idx := 0; idx < n; idx++ {
				lab := s.LabelOf(h, idx)
				if got := s.Index(h, lab); got != idx {
					t.Fatalf("%+v level %d: Index(LabelOf(%d)) = %d", s, h, idx, got)
				}
			}
		}
	}
}

func TestIndexMatchesPaperBaseW(t *testing.T) {
	// For m == w the label is the plain base-w integer at every level.
	s := Spec{L: 4, M: 4, W: 4}
	for h := 0; h < s.L; h++ {
		for idx := 0; idx < s.SwitchesAt(h); idx++ {
			lab := s.LabelOf(h, idx)
			v := 0
			for pos := len(lab) - 1; pos >= 0; pos-- {
				v = v*4 + lab[pos]
			}
			if v != idx {
				t.Fatalf("level %d idx %d: base-4 value %d", h, idx, v)
			}
		}
	}
}

func TestUpMatchesPaperExample(t *testing.T) {
	// Paper Section 4 worked example: FT(4,4), request (0,000) -> (0,113).
	// P0=0: σ1 = s2 s1 P0 = 000, δ1 = d2 d1 P0 = 110.
	// P1=1: σ2 = s2 P0 P1 = 001, δ2 = d2 P0 P1 = 101.
	// P2=0: σ3 = P0 P1 P2 = 010, δ3 = 010.
	s := Spec{L: 4, M: 4, W: 4}
	sigma := Label{0, 0, 0} // 000 (positions 0..2 LSB-first)
	delta := Label{3, 1, 1} // 113 => d2=1 d1=1 d0=3

	sigma1 := s.Up(0, sigma, 0)
	delta1 := s.Up(0, delta, 0)
	if s.Index(1, sigma1) != 0 {
		t.Fatalf("σ1 = %v want 000", sigma1)
	}
	if got := s.Index(1, delta1); got != 4*4+4*1+0 {
		t.Fatalf("δ1 index = %d want 20 (110 base 4)", got)
	}

	sigma2 := s.Up(1, sigma1, 1)
	delta2 := s.Up(1, delta1, 1)
	if got := s.Index(2, sigma2); got != 1 { // 001
		t.Fatalf("σ2 index = %d want 1", got)
	}
	if got := s.Index(2, delta2); got != 16+1 { // 101
		t.Fatalf("δ2 index = %d want 17", got)
	}

	sigma3 := s.Up(2, sigma2, 0)
	delta3 := s.Up(2, delta2, 0)
	if !sigma3.Equal(delta3) {
		t.Fatalf("common ancestor mismatch: %v vs %v", sigma3, delta3)
	}
	if got := s.Index(3, sigma3); got != 4 { // 010
		t.Fatalf("ancestor index = %d want 4", got)
	}
}

func TestUpDoesNotMutate(t *testing.T) {
	s := Spec{L: 3, M: 4, W: 4}
	d := Label{2, 3}
	orig := d.Clone()
	s.Up(0, d, 1)
	if !d.Equal(orig) {
		t.Fatal("Up mutated its argument")
	}
}

func TestUpInPlaceMatchesUp(t *testing.T) {
	s := Spec{L: 4, M: 3, W: 5}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := rng.Intn(s.L - 1)
		idx := rng.Intn(s.SwitchesAt(h))
		p := rng.Intn(s.W)
		lab := s.LabelOf(h, idx)
		want := s.Up(h, lab, p)
		got := lab.Clone()
		dropped := s.UpInPlace(h, got, p)
		if !got.Equal(want) {
			t.Fatalf("UpInPlace(%v) = %v want %v", lab, got, want)
		}
		if dropped != lab[h] {
			t.Fatalf("dropped child = %d want %d", dropped, lab[h])
		}
	}
}

func TestDownInvertsUp(t *testing.T) {
	specs := []Spec{{3, 4, 4}, {4, 3, 3}, {3, 4, 2}, {4, 2, 3}}
	rng := rand.New(rand.NewSource(9))
	for _, s := range specs {
		for trial := 0; trial < 300; trial++ {
			h := rng.Intn(s.L - 1)
			lab := s.LabelOf(h, rng.Intn(s.SwitchesAt(h)))
			p := rng.Intn(s.W)
			parent := s.Up(h, lab, p)
			child, upPort := s.Down(h, parent, lab[h])
			if !child.Equal(lab) {
				t.Fatalf("%+v: Down(Up(%v,%d), %d) = %v", s, lab, p, lab[h], child)
			}
			if upPort != p {
				t.Fatalf("%+v: recovered up port %d want %d", s, upPort, p)
			}
		}
	}
}

func TestNodeSwitch(t *testing.T) {
	s := Spec{L: 3, M: 4, W: 4}
	// Paper: node 3 attaches to switch 0 at port 3.
	lab, port := s.NodeSwitch(3)
	if s.Index(0, lab) != 0 || port != 3 {
		t.Fatalf("NodeSwitch(3) = %v,%d", lab, port)
	}
	// Node 95 in FT(4,4): switch 23 (base-4 113), port 3.
	s4 := Spec{L: 4, M: 4, W: 4}
	lab, port = s4.NodeSwitch(95)
	if s4.Index(0, lab) != 23 || port != 3 {
		t.Fatalf("NodeSwitch(95) = idx %d, port %d", s4.Index(0, lab), port)
	}
}

func TestAncestorLevel(t *testing.T) {
	s := Spec{L: 3, M: 4, W: 4}
	a := Label{0, 0}
	if got := s.AncestorLevel(a, Label{0, 0}); got != 0 {
		t.Fatalf("same switch: H = %d", got)
	}
	if got := s.AncestorLevel(a, Label{1, 0}); got != 1 {
		t.Fatalf("differ at pos 0: H = %d", got)
	}
	if got := s.AncestorLevel(a, Label{0, 2}); got != 2 {
		t.Fatalf("differ at pos 1: H = %d", got)
	}
	if got := s.AncestorLevel(a, Label{3, 2}); got != 2 {
		t.Fatalf("differ at both: H = %d", got)
	}
}

func TestNodeAncestorLevel(t *testing.T) {
	s := Spec{L: 3, M: 4, W: 4}
	// Nodes 0 and 1 share the level-0 switch.
	if got := s.NodeAncestorLevel(0, 1); got != 0 {
		t.Fatalf("H(0,1) = %d want 0", got)
	}
	// Paper Figure 2: SW(0,0) to SW(0,6) — subtrees of size 16 nodes
	// means nodes 0 and 24 (switch 6) meet at the top (level 2).
	if got := s.NodeAncestorLevel(0, 24); got != 2 {
		t.Fatalf("H(0,24) = %d want 2", got)
	}
	// Nodes 0 and 4: switches 0 and 1, same group of 4 -> level 1.
	if got := s.NodeAncestorLevel(0, 4); got != 1 {
		t.Fatalf("H(0,4) = %d want 1", got)
	}
}

// Property: Up produces a label valid at the next level, and Down with the
// dropped child digit recovers the original (for arbitrary specs).
func TestQuickUpDownRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Spec{L: 2 + rng.Intn(3), M: 2 + rng.Intn(4), W: 2 + rng.Intn(4)}
		h := rng.Intn(s.L - 1)
		lab := s.LabelOf(h, rng.Intn(s.SwitchesAt(h)))
		p := rng.Intn(s.W)
		parent := s.Up(h, lab, p)
		// Index must be in range at level h+1 (checkLabelShape panics otherwise).
		idx := s.Index(h+1, parent)
		if idx < 0 || idx >= s.SwitchesAt(h+1) {
			return false
		}
		child, upPort := s.Down(h, parent, lab[h])
		return child.Equal(lab) && upPort == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AncestorLevel is symmetric and zero iff labels are equal.
func TestQuickAncestorSymmetry(t *testing.T) {
	s := Spec{L: 4, M: 4, W: 4}
	n := s.SwitchesAt(0)
	f := func(ai, bi uint32) bool {
		a := s.LabelOf(0, int(ai)%n)
		b := s.LabelOf(0, int(bi)%n)
		ha := s.AncestorLevel(a, b)
		hb := s.AncestorLevel(b, a)
		if ha != hb {
			return false
		}
		return (ha == 0) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: climbing H levels from both endpoints with identical ports
// reaches the same switch (the digit-level core of Theorem 2).
func TestQuickTheorem2Convergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Spec{L: 2 + rng.Intn(3), M: 2 + rng.Intn(3), W: 2 + rng.Intn(3)}
		na := rng.Intn(s.Nodes())
		nb := rng.Intn(s.Nodes())
		a, _ := s.NodeSwitch(na)
		b, _ := s.NodeSwitch(nb)
		h := s.AncestorLevel(a, b)
		for lvl := 0; lvl < h; lvl++ {
			p := rng.Intn(s.W)
			a = s.Up(lvl, a, p)
			b = s.Up(lvl, b, p)
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelString(t *testing.T) {
	if got := (Label{3, 1, 1}).String(); got != "1.1.3" {
		t.Fatalf("String = %q", got)
	}
	if got := (Label{}).String(); got != "·" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestPanics(t *testing.T) {
	s := Spec{L: 3, M: 4, W: 4}
	cases := []func(){
		func() { s.SwitchesAt(3) },
		func() { s.SwitchesAt(-1) },
		func() { s.LabelOf(0, 16) },
		func() { s.LabelOf(0, -1) },
		func() { s.Index(0, Label{0}) },            // wrong length
		func() { s.Index(0, Label{4, 0}) },         // digit out of radix
		func() { s.Up(2, Label{0, 0}, 0) },         // up from top
		func() { s.Up(0, Label{0, 0}, 4) },         // bad port
		func() { s.Down(2, Label{0, 0}, 0) },       // down level out of range
		func() { s.Down(0, Label{0, 0}, 4) },       // bad child
		func() { s.NodeSwitch(64) },                // node out of range
		func() { s.NodeSwitch(-1) },                //
		func() { s.UpInPlace(0, Label{0, 0}, -1) }, // bad port
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPow(t *testing.T) {
	if Pow(2, 10) != 1024 || Pow(7, 0) != 1 || Pow(5, 3) != 125 {
		t.Fatal("Pow wrong")
	}
}
