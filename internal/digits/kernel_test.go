package digits

import "testing"

// kernelShapes exercises the pow-of-two fast paths (m, w ∈ {2,4,8}), the
// general paths (6, 3, 5), m != w, and degenerate radices.
var kernelShapes = []Spec{
	{L: 3, M: 8, W: 8},
	{L: 4, M: 4, W: 4},
	{L: 3, M: 6, W: 6},
	{L: 3, M: 4, W: 2},
	{L: 2, M: 6, W: 3},
	{L: 3, M: 5, W: 7},
	{L: 2, M: 1, W: 1},
	{L: 1, M: 4, W: 4},
}

func TestKernelNodeSwitchMatchesSpec(t *testing.T) {
	for _, s := range kernelShapes {
		k := MustKernel(s)
		if k.Nodes() != s.Nodes() {
			t.Fatalf("%+v: kernel nodes %d, spec %d", s, k.Nodes(), s.Nodes())
		}
		for n := 0; n < s.Nodes(); n++ {
			lab, wantPort := s.NodeSwitch(n)
			wantIdx := s.Index(0, lab)
			idx, port := k.NodeSwitch(n)
			if idx != wantIdx || port != wantPort {
				t.Fatalf("%+v node %d: kernel (%d,%d), spec (%d,%d)", s, n, idx, port, wantIdx, wantPort)
			}
		}
	}
}

func TestKernelNodeAncestorLevelMatchesSpec(t *testing.T) {
	for _, s := range kernelShapes {
		k := MustKernel(s)
		n := s.Nodes()
		step := 1
		if n > 512 {
			step = n / 512
		}
		for a := 0; a < n; a += step {
			for b := 0; b < n; b += step {
				if got, want := k.NodeAncestorLevel(a, b), s.NodeAncestorLevel(a, b); got != want {
					t.Fatalf("%+v LCA(%d,%d): kernel %d, spec %d", s, a, b, got, want)
				}
			}
		}
	}
}

func TestKernelUpParentArithMatchesLabels(t *testing.T) {
	for _, s := range kernelShapes {
		k := MustKernel(s)
		for h := 0; h < s.LinkLevels(); h++ {
			for idx := 0; idx < s.SwitchesAt(h); idx++ {
				lab := s.LabelOf(h, idx)
				for p := 0; p < s.W; p++ {
					want := s.Index(h+1, s.Up(h, lab, p))
					if got := k.UpParentArith(h, idx, p); got != want {
						t.Fatalf("%+v Up(h=%d, idx=%d, p=%d): arith %d, labels %d", s, h, idx, p, got, want)
					}
				}
			}
		}
	}
}

// TestKernelSubtreeAtMatchesAncestorLevel pins the disjointness fact the
// shard scheduler relies on: two nodes share a level-ℓ subtree exactly
// when their LCA level is at most ℓ, across pow2 and general radices.
func TestKernelSubtreeAtMatchesAncestorLevel(t *testing.T) {
	for _, s := range kernelShapes {
		k := MustKernel(s)
		n := s.Nodes()
		step := 1
		if n > 512 {
			step = n / 512
		}
		for lvl := 0; lvl < s.L; lvl++ {
			want := k.Subtrees(lvl)
			seen := make(map[int]bool)
			for a := 0; a < n; a++ {
				sa := k.SubtreeAt(a, lvl)
				if sa < 0 || sa >= want {
					t.Fatalf("%+v SubtreeAt(%d,%d) = %d out of [0,%d)", s, a, lvl, sa, want)
				}
				seen[sa] = true
			}
			if len(seen) != want {
				t.Fatalf("%+v level %d: %d distinct subtrees, Subtrees() = %d", s, lvl, len(seen), want)
			}
			for a := 0; a < n; a += step {
				for b := 0; b < n; b += step {
					same := k.SubtreeAt(a, lvl) == k.SubtreeAt(b, lvl)
					if want := k.NodeAncestorLevel(a, b) <= lvl; same != want {
						t.Fatalf("%+v level %d nodes (%d,%d): same-subtree %v, LCA<=%d %v",
							s, lvl, a, b, same, lvl, want)
					}
				}
			}
		}
	}
}

func TestKernelPanicsOutOfRange(t *testing.T) {
	k := MustKernel(Spec{L: 2, M: 4, W: 4})
	for _, f := range []func(){
		func() { k.NodeSwitch(-1) },
		func() { k.NodeSwitch(16) },
		func() { k.NodeAncestorLevel(0, 16) },
		func() { k.NodeAncestorLevel(-1, 0) },
		func() { k.SubtreeAt(0, 2) },
		func() { k.SubtreeAt(16, 0) },
		func() { k.Subtrees(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
