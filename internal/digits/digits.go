// Package digits implements the mixed-radix switch labeling used throughout
// the fat-tree reproduction.
//
// A level-h switch of FT(l, m, w) is labeled by l-1 digits, position 0
// least significant. Positions h..l-2 hold child digits in [0, m) and
// positions 0..h-1 hold port digits in [0, w). For the symmetric case
// m == w this is exactly the paper's base-w label τ = t_{l-2}…t_0.
//
// Theorem 1 of the paper is the Up operation: taking upward port p from a
// level-h switch drops the child digit at position h, shifts the port
// digits up one position, and writes p at position 0:
//
//	τ_{h+1} = Σ_{i≥h+1} t_i·w^i + Σ_{i=1..h} t_{i-1}·w^i + P_h.
package digits

import "fmt"

// Spec carries the radix parameters of a fat tree FT(l, m, w): l switch
// levels, m children and w parents per switch.
type Spec struct {
	L int // number of switch levels (>= 1)
	M int // children per switch (>= 1)
	W int // parents per switch (>= 1); top-level switches have none
}

// Validate reports an error if the spec parameters are out of range.
func (s Spec) Validate() error {
	if s.L < 1 {
		return fmt.Errorf("digits: levels L = %d, need >= 1", s.L)
	}
	if s.M < 1 {
		return fmt.Errorf("digits: children M = %d, need >= 1", s.M)
	}
	if s.W < 1 {
		return fmt.Errorf("digits: parents W = %d, need >= 1", s.W)
	}
	return nil
}

// Symmetric reports whether m == w (the FT(l, w) case the paper proves
// its theorems for).
func (s Spec) Symmetric() bool { return s.M == s.W }

// Nodes returns the number of processing nodes, m^l.
func (s Spec) Nodes() int { return ipow(s.M, s.L) }

// SwitchesAt returns the number of switches at the given level:
// m^(l-1-level) * w^level.
func (s Spec) SwitchesAt(level int) int {
	s.checkLevel(level)
	return ipow(s.M, s.L-1-level) * ipow(s.W, level)
}

// TotalSwitches returns the switch count summed over all levels.
func (s Spec) TotalSwitches() int {
	total := 0
	for h := 0; h < s.L; h++ {
		total += s.SwitchesAt(h)
	}
	return total
}

// LinkLevels returns the number of link levels (levels that have upward
// links), l-1. Link level h joins switch levels h and h+1.
func (s Spec) LinkLevels() int { return s.L - 1 }

func (s Spec) checkLevel(level int) {
	if level < 0 || level >= s.L {
		panic(fmt.Sprintf("digits: level %d out of range [0,%d)", level, s.L))
	}
}

// Radix returns the radix of digit position pos for a label at the given
// level: M for child-digit positions (pos >= level), W for port-digit
// positions.
func (s Spec) Radix(level, pos int) int {
	if pos >= level {
		return s.M
	}
	return s.W
}

// Label is a switch label: a digit slice of length L-1, position 0 least
// significant. Interpretation of each position depends on the switch level
// (see package comment).
type Label []int

// Clone returns an independent copy of the label.
func (d Label) Clone() Label {
	c := make(Label, len(d))
	copy(c, d)
	return c
}

// Equal reports whether two labels have identical digits.
func (d Label) Equal(other Label) bool {
	if len(d) != len(other) {
		return false
	}
	for i := range d {
		if d[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the label most-significant digit first, e.g. "1.1.3".
func (d Label) String() string {
	if len(d) == 0 {
		return "·"
	}
	out := ""
	for i := len(d) - 1; i >= 0; i-- {
		if out != "" {
			out += "."
		}
		out += fmt.Sprint(d[i])
	}
	return out
}

// Index packs a level-h label into a dense index in
// [0, SwitchesAt(level)), folding digits most-significant first with the
// mixed radix given by Spec.Radix. For m == w this equals the paper's
// integer τ.
func (s Spec) Index(level int, d Label) int {
	s.checkLabelShape(level, d)
	idx := 0
	for pos := s.L - 2; pos >= 0; pos-- {
		idx = idx*s.Radix(level, pos) + d[pos]
	}
	return idx
}

// LabelOf unpacks a dense index into a level-h label (inverse of Index).
func (s Spec) LabelOf(level, idx int) Label {
	s.checkLevel(level)
	n := s.SwitchesAt(level)
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("digits: index %d out of range [0,%d) at level %d", idx, n, level))
	}
	d := make(Label, s.L-1)
	for pos := 0; pos <= s.L-2; pos++ {
		r := s.Radix(level, pos)
		d[pos] = idx % r
		idx /= r
	}
	return d
}

func (s Spec) checkLabelShape(level int, d Label) {
	s.checkLevel(level)
	if len(d) != s.L-1 {
		panic(fmt.Sprintf("digits: label length %d, want %d", len(d), s.L-1))
	}
	for pos, v := range d {
		if r := s.Radix(level, pos); v < 0 || v >= r {
			panic(fmt.Sprintf("digits: digit %d at position %d out of range [0,%d)", v, pos, r))
		}
	}
}

// Up applies Theorem 1: it returns the label of the level-(level+1) switch
// reached by taking upward port p from the level-h switch labeled d. The
// child digit at position level is dropped, port digits shift up, and p is
// written at position 0. d is not modified.
func (s Spec) Up(level int, d Label, p int) Label {
	s.checkLabelShape(level, d)
	if level >= s.L-1 {
		panic(fmt.Sprintf("digits: Up from top level %d", level))
	}
	if p < 0 || p >= s.W {
		panic(fmt.Sprintf("digits: port %d out of range [0,%d)", p, s.W))
	}
	out := make(Label, s.L-1)
	copy(out[level+1:], d[level+1:]) // child digits above the dropped one
	copy(out[1:level+1], d[:level])  // port digits shift up
	out[0] = p
	return out
}

// UpInPlace is Up writing into d itself and returning the dropped child
// digit (the parent's downward port back to d's original switch).
func (s Spec) UpInPlace(level int, d Label, p int) (droppedChild int) {
	s.checkLabelShape(level, d)
	if level >= s.L-1 {
		panic(fmt.Sprintf("digits: UpInPlace from top level %d", level))
	}
	if p < 0 || p >= s.W {
		panic(fmt.Sprintf("digits: port %d out of range [0,%d)", p, s.W))
	}
	droppedChild = d[level]
	copy(d[1:level+1], d[:level])
	d[0] = p
	return droppedChild
}

// Down inverts Up: from a level-(level+1) switch labeled d, descending via
// child port c yields the level-h child switch label. The port digit at
// position 0 is removed (it names the child's upward port back to d),
// remaining port digits shift down, and c becomes the child digit at
// position level.
func (s Spec) Down(level int, d Label, c int) (child Label, childUpPort int) {
	s.checkLabelShape(level+1, d)
	if level < 0 || level >= s.L-1 {
		panic(fmt.Sprintf("digits: Down to level %d out of range", level))
	}
	if c < 0 || c >= s.M {
		panic(fmt.Sprintf("digits: child %d out of range [0,%d)", c, s.M))
	}
	out := make(Label, s.L-1)
	copy(out[level+1:], d[level+1:])
	copy(out[:level], d[1:level+1])
	out[level] = c
	return out, d[0]
}

// NodeSwitch returns the label of the level-0 switch that node n attaches
// to, and the child port it occupies. Nodes are numbered 0..m^l-1.
func (s Spec) NodeSwitch(n int) (Label, int) {
	if n < 0 || n >= s.Nodes() {
		panic(fmt.Sprintf("digits: node %d out of range [0,%d)", n, s.Nodes()))
	}
	port := n % s.M
	idx := n / s.M
	return s.LabelOf(0, idx), port
}

// AncestorLevel returns the level of the lowest common ancestor switch of
// two level-0 switch labels: 0 if they are the same switch, otherwise
// 1 + the highest position at which their child digits differ. The result
// is at most L-1 (the top level).
func (s Spec) AncestorLevel(src, dst Label) int {
	s.checkLabelShape(0, src)
	s.checkLabelShape(0, dst)
	for pos := s.L - 2; pos >= 0; pos-- {
		if src[pos] != dst[pos] {
			return pos + 1
		}
	}
	return 0
}

// NodeAncestorLevel returns AncestorLevel for the level-0 switches of two
// nodes. It unpacks the two dense switch indices digit by digit instead of
// materializing Labels, keeping schedulers' per-request hot path
// allocation-free.
func (s Spec) NodeAncestorLevel(a, b int) int {
	if a < 0 || a >= s.Nodes() || b < 0 || b >= s.Nodes() {
		panic(fmt.Sprintf("digits: nodes (%d,%d) out of range [0,%d)", a, b, s.Nodes()))
	}
	ia, ib := a/s.M, b/s.M
	level := 0
	for pos := 0; pos <= s.L-2; pos++ {
		r := s.Radix(0, pos)
		if ia%r != ib%r {
			level = pos + 1
		}
		ia /= r
		ib /= r
	}
	return level
}

func ipow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}

// Pow returns base**exp for small non-negative integer exponents.
func Pow(base, exp int) int { return ipow(base, exp) }
