package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 5)
	if got := g.Run(0, 1); got != 5 {
		t.Fatalf("flow = %d", got)
	}
	if g.Flow(e) != 5 {
		t.Fatalf("edge flow = %d", g.Flow(e))
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewGraph(1)
	if g.Run(0, 0) != 0 {
		t.Fatal("s == t flow != 0")
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 7)
	if g.Run(0, 2) != 0 {
		t.Fatal("disconnected flow != 0")
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example with max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.Run(0, 5); got != 23 {
		t.Fatalf("flow = %d want 23", got)
	}
}

func TestParallelEdges(t *testing.T) {
	g := NewGraph(2)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(0, 1, 1)
	if g.Run(0, 1) != 2 {
		t.Fatal("parallel edges not both used")
	}
	if g.Flow(a) != 1 || g.Flow(b) != 1 {
		t.Fatal("per-edge flows wrong")
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(0)
	s := g.AddNode()
	m := g.AddNode()
	tk := g.AddNode()
	g.AddEdge(s, m, 3)
	g.AddEdge(m, tk, 2)
	if g.Nodes() != 3 || g.Run(s, tk) != 2 {
		t.Fatal("bottleneck flow wrong")
	}
}

func TestPanics(t *testing.T) {
	g := NewGraph(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: max flow on bipartite unit graphs equals Hopcroft–Karp-style
// brute-force maximum matching.
func TestQuickBipartiteMatchingEquivalence(t *testing.T) {
	brute := func(nL, nR int, adj [][]int) int {
		best := 0
		usedR := make([]bool, nR)
		var rec func(l, count int)
		rec = func(l, count int) {
			if count > best {
				best = count
			}
			if l == nL {
				return
			}
			rec(l+1, count)
			for _, r := range adj[l] {
				if !usedR[r] {
					usedR[r] = true
					rec(l+1, count+1)
					usedR[r] = false
				}
			}
		}
		rec(0, 0)
		return best
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := rng.Intn(5) + 1
		nR := rng.Intn(5) + 1
		adj := make([][]int, nL)
		g := NewGraph(nL + nR + 2)
		s, tk := nL+nR, nL+nR+1
		for l := 0; l < nL; l++ {
			g.AddEdge(s, l, 1)
			for r := 0; r < nR; r++ {
				if rng.Intn(3) == 0 {
					adj[l] = append(adj[l], r)
					g.AddEdge(l, nL+r, 1)
				}
			}
		}
		for r := 0; r < nR; r++ {
			g.AddEdge(nL+r, tk, 1)
		}
		return g.Run(s, tk) == brute(nL, nR, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-edge flow respects capacity, and at every internal node
// inflow equals outflow (conservation).
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		g := NewGraph(n)
		type edge struct{ id, from, to, cap int }
		var all []edge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := rng.Intn(5)
			all = append(all, edge{g.AddEdge(u, v, c), u, v, c})
		}
		total := g.Run(0, n-1)
		net := make([]int, n) // outflow - inflow per node
		for _, e := range all {
			fl := g.Flow(e.id)
			if fl < 0 || fl > e.cap {
				return false
			}
			net[e.from] += fl
			net[e.to] -= fl
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				return false
			}
		}
		return net[0] == total && net[n-1] == -total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDinicBipartite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 64
	for i := 0; i < b.N; i++ {
		g := NewGraph(2*n + 2)
		s, tk := 2*n, 2*n+1
		for l := 0; l < n; l++ {
			g.AddEdge(s, l, 4)
			g.AddEdge(n+l, tk, 4)
		}
		for e := 0; e < 4*n; e++ {
			g.AddEdge(rng.Intn(n), n+rng.Intn(n), 1)
		}
		g.Run(s, tk)
	}
}
