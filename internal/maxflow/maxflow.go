// Package maxflow implements Dinic's maximum-flow algorithm. The optimal
// reference scheduler uses it for admission control: the largest subset
// of requests respecting the per-switch port capacities is a
// degree-constrained subgraph problem, i.e. a unit-capacity flow between
// source-switch and destination-switch capacity nodes. Greedy admission
// is not optimal there; max-flow is, which makes the optimal scheduler a
// true upper bound for every other scheduler on arbitrary batches.
package maxflow

// Graph is a flow network under construction. Nodes are dense integers;
// create them with AddNode or number them yourself and size the graph
// with NewGraph.
type Graph struct {
	adj [][]int // node -> edge indices
	to  []int
	cap []int
}

// NewGraph returns a flow network with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return len(g.adj) }

// AddEdge adds a directed edge with the given capacity and returns its
// index, usable with Flow after Run. The reverse (residual) edge is
// created automatically.
func (g *Graph) AddEdge(from, to, capacity int) int {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic("maxflow: edge endpoint out of range")
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.to)
	g.to = append(g.to, to)
	g.cap = append(g.cap, capacity)
	g.adj[from] = append(g.adj[from], id)
	g.to = append(g.to, from)
	g.cap = append(g.cap, 0)
	g.adj[to] = append(g.adj[to], id+1)
	return id
}

// Flow returns the flow pushed through edge id (after Run): the capacity
// accumulated on its residual twin.
func (g *Graph) Flow(id int) int { return g.cap[id^1] }

// Run computes the maximum flow from s to t (Dinic). It may be called
// once per graph.
func (g *Graph) Run(s, t int) int {
	if s == t {
		return 0
	}
	n := len(g.adj)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, id := range g.adj[u] {
				v := g.to[id]
				if g.cap[id] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u, f int) int
	dfs = func(u, f int) int {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			id := g.adj[u][iter[u]]
			v := g.to[id]
			if g.cap[id] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := f
			if g.cap[id] < pushed {
				pushed = g.cap[id]
			}
			if got := dfs(v, pushed); got > 0 {
				g.cap[id] -= got
				g.cap[id^1] += got
				return got
			}
		}
		return 0
	}

	const inf = int(^uint(0) >> 1)
	total := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}
