package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	matchL, size := Max(0, 0, nil)
	if len(matchL) != 0 || size != 0 {
		t.Fatalf("empty: %v %d", matchL, size)
	}
	matchL, size = Max(3, 3, [][]int{{}, {}, {}})
	if size != 0 || IsPerfect(matchL) {
		t.Fatalf("edgeless: %v %d", matchL, size)
	}
}

func TestPerfectMatchingSimple(t *testing.T) {
	// Identity-capable graph plus noise.
	adj := [][]int{{0, 1}, {1, 2}, {2, 0}}
	matchL, size := Max(3, 3, adj)
	if size != 3 || !IsPerfect(matchL) {
		t.Fatalf("size = %d, matchL = %v", size, matchL)
	}
	seen := map[int]bool{}
	for l, r := range matchL {
		if seen[r] {
			t.Fatalf("right vertex %d matched twice", r)
		}
		seen[r] = true
		ok := false
		for _, x := range adj[l] {
			if x == r {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
}

func TestKnownMaximum(t *testing.T) {
	// Classic: 4 left, 4 right, max matching 3.
	adj := [][]int{{0, 1}, {0}, {1}, {}}
	_, size := Max(4, 4, adj)
	if size != 2 {
		t.Fatalf("size = %d want 2", size)
	}
	adj = [][]int{{0}, {0, 1}, {1, 2}, {2, 3}}
	_, size = Max(4, 4, adj)
	if size != 4 {
		t.Fatalf("size = %d want 4", size)
	}
}

func TestParallelEdgesHarmless(t *testing.T) {
	adj := [][]int{{0, 0, 0}, {0, 1, 1}}
	matchL, size := Max(2, 2, adj)
	if size != 2 || !IsPerfect(matchL) {
		t.Fatalf("multigraph: %v %d", matchL, size)
	}
}

func TestRegularGraphHasPerfectMatching(t *testing.T) {
	// König: every d-regular bipartite graph has a perfect matching.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 8, 16} {
		for _, d := range []int{2, 3, 4} {
			adj := make([][]int, n)
			// Union of d random permutations is d-regular.
			for k := 0; k < d; k++ {
				perm := rng.Perm(n)
				for l, r := range perm {
					adj[l] = append(adj[l], r)
				}
			}
			matchL, size := Max(n, n, adj)
			if size != n || !IsPerfect(matchL) {
				t.Fatalf("n=%d d=%d: size %d", n, d, size)
			}
		}
	}
}

// Property: matching size equals a brute-force maximum on small graphs.
func TestQuickMatchesBruteForce(t *testing.T) {
	brute := func(nL, nR int, adj [][]int) int {
		best := 0
		usedR := make([]bool, nR)
		var rec func(l, count int)
		rec = func(l, count int) {
			if count > best {
				best = count
			}
			if l == nL {
				return
			}
			rec(l+1, count) // skip l
			for _, r := range adj[l] {
				if !usedR[r] {
					usedR[r] = true
					rec(l+1, count+1)
					usedR[r] = false
				}
			}
		}
		rec(0, 0)
		return best
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := rng.Intn(6) + 1
		nR := rng.Intn(6) + 1
		adj := make([][]int, nL)
		for l := range adj {
			for r := 0; r < nR; r++ {
				if rng.Intn(3) == 0 {
					adj[l] = append(adj[l], r)
				}
			}
		}
		_, size := Max(nL, nR, adj)
		return size == brute(nL, nR, adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: output is always a valid matching (edges exist, no vertex
// reused).
func TestQuickValidMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nL := rng.Intn(20) + 1
		nR := rng.Intn(20) + 1
		adj := make([][]int, nL)
		for l := range adj {
			deg := rng.Intn(4)
			for k := 0; k < deg; k++ {
				adj[l] = append(adj[l], rng.Intn(nR))
			}
		}
		matchL, size := Max(nL, nR, adj)
		count := 0
		usedR := map[int]bool{}
		for l, r := range matchL {
			if r == -1 {
				continue
			}
			count++
			if usedR[r] {
				return false
			}
			usedR[r] = true
			found := false
			for _, x := range adj[l] {
				if x == r {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return count == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHopcroftKarp64x64Regular(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, d := 64, 8
	adj := make([][]int, n)
	for k := 0; k < d; k++ {
		perm := rng.Perm(n)
		for l, r := range perm {
			adj[l] = append(adj[l], r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Max(n, n, adj)
	}
}
