// Package matching implements Hopcroft–Karp maximum bipartite matching.
// It is the substrate of the edge-coloring decomposition (package
// coloring) behind the optimal reference scheduler: every Δ-regular
// bipartite multigraph has a perfect matching (König), and peeling w of
// them yields a conflict-free port assignment.
package matching

// Hopcroft–Karp over a bipartite graph with nL left and nR right vertices.
// adj[l] lists the right neighbors of left vertex l (parallel entries are
// harmless).
//
// Max returns matchL (the matched right vertex per left vertex, -1 if
// unmatched) and the matching size.
func Max(nL, nR int, adj [][]int) (matchL []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, nL)
	matchR := make([]int, nR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nL)
	queue := make([]int, 0, nL)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < nL; l++ {
			if matchL[l] == -1 && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}

// IsPerfect reports whether a matching covers every left vertex.
func IsPerfect(matchL []int) bool {
	for _, r := range matchL {
		if r == -1 {
			return false
		}
	}
	return true
}
