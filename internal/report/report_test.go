package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 0.123456)
	tb.AddNote("seeded with %d", 42)
	out := tb.String()
	for _, want := range []string{"Demo", "====", "name", "alpha", "beta", "0.1235", "note: seeded with 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("x", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few lines: %v", lines)
	}
	// Columns align: "long-header" starts at the same offset in both rows.
	hdrIdx := strings.Index(lines[0], "long-header")
	rowIdx := strings.Index(lines[2], "y")
	if hdrIdx != rowIdx {
		t.Fatalf("misaligned: header col at %d, row col at %d\n%s", hdrIdx, rowIdx, tb.String())
	}
}

func TestRowsLongerThanHeader(t *testing.T) {
	tb := NewTable("t", "only")
	tb.AddRow("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "c") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Fatalf("short row missing:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("ignored", "col1", "col2")
	tb.AddRow("a", "1")
	tb.AddRow("b,comma", "2")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "col1,col2\n") {
		t.Fatalf("csv header wrong: %q", got)
	}
	if !strings.Contains(got, "\"b,comma\",2") {
		t.Fatalf("csv quoting wrong: %q", got)
	}
	if strings.Contains(got, "ignored") {
		t.Fatal("csv contains title")
	}
}

func TestAddRowfTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf(7, "s", 0.5)
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "s" || tb.Rows[0][2] != "0.5" {
		t.Fatalf("AddRowf = %v", tb.Rows[0])
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.931) != "93.1%" {
		t.Fatalf("Percent = %q", Percent(0.931))
	}
	if Percent(1) != "100.0%" {
		t.Fatalf("Percent(1) = %q", Percent(1))
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 4); got != "██░░" {
		t.Fatalf("Bar(0.5,4) = %q", got)
	}
	if got := Bar(-1, 3); got != "░░░" {
		t.Fatalf("Bar(-1,3) = %q", got)
	}
	if got := Bar(2, 3); got != "███" {
		t.Fatalf("Bar(2,3) = %q", got)
	}
	if Bar(0.5, 0) != "" {
		t.Fatal("zero-width bar not empty")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := &Table{}
	out := tb.String()
	if strings.Contains(out, "=") {
		t.Fatalf("untitled table has title rule: %q", out)
	}
}

func TestWriteJSON(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("1", "2")
	tb.AddNote("n")
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "T" || len(doc.Header) != 2 || len(doc.Rows) != 1 || doc.Rows[0][1] != "2" || doc.Notes[0] != "n" {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := (&Table{}).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"rows": []`) {
		t.Fatalf("empty rows not emitted: %s", sb.String())
	}
}
