// Package report renders experiment results as aligned ASCII tables (the
// rows/series the paper's figures and tables present) and as CSV for
// external plotting.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short rows
// are padded when rendered.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except float64, which uses %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// AddNote appends a footnote rendered below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(out io.Writer) error {
	w := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(out, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i := 0; i < len(w); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", w[i]-len(c)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if len(t.Header) > 0 {
		if _, err := fmt.Fprintln(out, line(t.Header)); err != nil {
			return err
		}
		total := len(w) - 1
		for _, x := range w {
			total += x + 1
		}
		if _, err := fmt.Fprintln(out, strings.Repeat("-", total)); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(out, line(r)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(out, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(out)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return sb.String()
}

// WriteJSON emits the full table (title, header, rows, notes) as a JSON
// object for programmatic consumers.
func (t *Table) WriteJSON(out io.Writer) error {
	type doc struct {
		Title  string     `json:"title,omitempty"`
		Header []string   `json:"header,omitempty"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc{Title: t.Title, Header: t.Header, Rows: rows, Notes: t.Notes})
}

// WriteCSV emits the header and rows as CSV (title and notes omitted).
func (t *Table) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	if len(t.Header) > 0 {
		if err := w.Write(t.Header); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Percent renders a ratio in [0,1] as "93.1%".
func Percent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Bar renders a ratio in [0,1] as a text bar of the given width, e.g.
// "████████░░" — used for quick visual comparison in CLI output.
func Bar(x float64, width int) string {
	if width <= 0 {
		return ""
	}
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	full := int(x*float64(width) + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("░", width-full)
}
