package hardware

import (
	"fmt"
	"math/bits"

	"repro/internal/topology"
)

// gateDelayNS is the modeled delay of one logic level on the paper's
// Stratix II target. With it, the published clock periods decompose into
// integer level counts (see CriticalPathLevels): 6·T(w) = 11 + 2·log2(w)
// gate delays.
const gateDelayNS = 1.0 / 6

// fixedPathLevels is the width-independent part of the compute stage's
// critical path: RAM clock-to-output, the Ulink AND Dlink gate, result
// multiplexing and register setup.
const fixedPathLevels = 11

// Resources estimates the FPGA footprint of the full scheduler (all l-1
// P-blocks) in technology-neutral units. It substitutes for the paper's
// Altera synthesis report: absolute LUT counts are estimates, but the
// memory size is exact and the critical-path model reproduces the
// published clock periods (asserted in tests).
type Resources struct {
	Blocks int // P-blocks (l-1)
	// MemoryBits is the exact total of the Ulink and Dlink RAMs:
	// 2 bits per physical link channel pair, i.e. 2·Σ_h switches(h)·w.
	MemoryBits int
	// ALUTs estimates combinational logic: per block, the w-bit AND
	// array, a priority encoder (~2w), the one-hot update masks (~2w),
	// and control (~w).
	ALUTs int
	// Registers estimates pipeline state: per block, two w-bit vector
	// registers per stage pair plus the request register (source and
	// destination switch labels and the accumulated ports).
	Registers int
	// CriticalPathLevels is the compute-stage depth in logic levels:
	// fixedPathLevels + 2·log2(w) for the priority encoder tree.
	CriticalPathLevels int
	// ClockNS is CriticalPathLevels · gateDelayNS — the cycle time the
	// structure supports. It equals ClockNS(w) for the synthesized
	// widths.
	ClockNS float64
}

// Estimate computes the resource model for a scheduler serving the tree.
func Estimate(tree *topology.Tree) Resources {
	w := tree.Parents()
	l := tree.Levels()
	r := Resources{Blocks: tree.LinkLevels()}
	for h := 0; h < tree.LinkLevels(); h++ {
		r.MemoryBits += 2 * tree.SwitchesAt(h) * w
	}
	logW := bits.Len(uint(w - 1)) // ceil(log2 w), 0 for w == 1
	if w == 1 {
		logW = 0
	}
	perBlockLUTs := w + 2*w + 2*w + w // AND + priority encoder + masks + control
	r.ALUTs = r.Blocks * perBlockLUTs
	// Request register: l-1 digits of logW bits for each of σ and δ,
	// plus up to l-1 selected ports; vector registers: 2 stages × 2
	// vectors × w bits.
	reqBits := 2*(l-1)*maxInt(logW, 1) + (l-1)*maxInt(logW, 1)
	r.Registers = r.Blocks * (4*w + reqBits)
	r.CriticalPathLevels = fixedPathLevels + 2*logW
	r.ClockNS = float64(r.CriticalPathLevels) * gateDelayNS
	return r
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String summarizes the estimate.
func (r Resources) String() string {
	return fmt.Sprintf("%d P-blocks: %d RAM bits, ~%d ALUTs, ~%d registers, %d-level critical path (%.3f ns clock)",
		r.Blocks, r.MemoryBits, r.ALUTs, r.Registers, r.CriticalPathLevels, r.ClockNS)
}
