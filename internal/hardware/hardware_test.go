package hardware

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestClockCalibration(t *testing.T) {
	// The paper's post-P&R synthesis: 15/17/19 ns single-request latency
	// for 4x4, 8x8, 16x16 switches at 6 cycles.
	for _, c := range []struct {
		w      int
		single float64
	}{{4, 15}, {8, 17}, {16, 19}} {
		if got := 6 * ClockNS(c.w); !approx(got, c.single, 1e-9) {
			t.Errorf("w=%d: 6T = %v ns, paper says %v", c.w, got, c.single)
		}
	}
	if ClockNS(0) != ClockNS(1) {
		t.Error("degenerate width not clamped")
	}
	if ClockNS(1) < 1 {
		t.Error("clock floor violated")
	}
}

func TestSingleRequestLatency(t *testing.T) {
	// Three-level tree: 2 P-blocks, 6-cycle latency.
	p := New(topology.MustNew(3, 4, 4))
	if p.Blocks() != 2 {
		t.Fatalf("blocks = %d", p.Blocks())
	}
	res, tm := p.Schedule([]core.Request{{Src: 0, Dst: 63}})
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	if tm.Cycles != 6 {
		t.Fatalf("cycles = %d want 6", tm.Cycles)
	}
	if !approx(tm.SingleRequestNS, 15, 1e-9) || !approx(tm.BatchNS, 15, 1e-9) {
		t.Fatalf("timing = %+v", tm)
	}
}

func TestPaperTable1(t *testing.T) {
	// Table 1: N = 64 (4x4), 512 (8x8), 4096 (16x16), all three-level.
	cases := []struct {
		w              int
		n              int
		singleNS       float64
		allPipelinedNS float64
	}{
		{4, 64, 15, 480},
		{8, 512, 17, 4352},
		{16, 4096, 19, 38912},
	}
	for _, c := range cases {
		tree := topology.MustNew(3, c.w, c.w)
		if tree.Nodes() != c.n {
			t.Fatalf("FT(3,%d) has %d nodes, want %d", c.w, tree.Nodes(), c.n)
		}
		p := New(tree)
		g := traffic.NewGenerator(c.n, 1)
		reqs := g.MustBatch(traffic.RandomPermutation)
		_, tm := p.Schedule(reqs)
		if !approx(tm.SingleRequestNS, c.singleNS, 1e-9) {
			t.Errorf("w=%d single = %v want %v", c.w, tm.SingleRequestNS, c.singleNS)
		}
		if !approx(tm.PipelinedBatchNS, c.allPipelinedNS, 1e-6) {
			t.Errorf("w=%d all = %v want %v", c.w, tm.PipelinedBatchNS, c.allPipelinedNS)
		}
		// The cycle-exact makespan includes pipeline fill: 3N+3 cycles,
		// within 5% of the paper's throughput accounting.
		if tm.Cycles != uint64(3*c.n+3) {
			t.Errorf("w=%d cycles = %d want %d", c.w, tm.Cycles, 3*c.n+3)
		}
		if rel := (tm.BatchNS - c.allPipelinedNS) / c.allPipelinedNS; rel > 0.05 || rel < 0 {
			t.Errorf("w=%d makespan %v deviates %.1f%% from paper %v", c.w, tm.BatchNS, 100*rel, c.allPipelinedNS)
		}
	}
}

func TestAllRequestsUnder40Microseconds(t *testing.T) {
	// "Using less than 40 µs, all 4096 communication requests can be
	// scheduled."
	tree := topology.MustNew(3, 16, 16)
	p := New(tree)
	g := traffic.NewGenerator(4096, 2)
	_, tm := p.Schedule(g.MustBatch(traffic.RandomPermutation))
	if tm.BatchNS >= 40000 {
		t.Fatalf("batch took %.0f ns, paper promises < 40 µs", tm.BatchNS)
	}
}

func TestMatchesSoftwareLevelWise(t *testing.T) {
	// The pipeline must produce the same grant set as the software
	// Level-wise scheduler (request-major, first-fit, no rollback).
	shapes := [][3]int{{2, 4, 4}, {3, 4, 4}, {4, 3, 3}, {3, 8, 8}}
	for _, sh := range shapes {
		tree := topology.MustNew(sh[0], sh[1], sh[2])
		g := traffic.NewGenerator(tree.Nodes(), 5)
		for trial := 0; trial < 5; trial++ {
			reqs := g.MustBatch(traffic.RandomPermutation)
			p := New(tree)
			hw, _ := p.Schedule(reqs)
			sw := core.NewLevelWise().Schedule(linkstate.New(tree), reqs)
			if hw.Granted != sw.Granted {
				t.Fatalf("FT(%v): hardware %d vs software %d", sh, hw.Granted, sw.Granted)
			}
			for i := range hw.Outcomes {
				ho, so := hw.Outcomes[i], sw.Outcomes[i]
				if ho.Granted != so.Granted {
					t.Fatalf("FT(%v) outcome %d: granted %v vs %v", sh, i, ho.Granted, so.Granted)
				}
				if ho.Granted {
					for k := range ho.Ports {
						if ho.Ports[k] != so.Ports[k] {
							t.Fatalf("FT(%v) outcome %d: ports %v vs %v", sh, i, ho.Ports, so.Ports)
						}
					}
				}
			}
			if err := core.Verify(tree, hw); err != nil {
				t.Fatalf("FT(%v): %v", sh, err)
			}
		}
	}
}

func TestResetClearsState(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	p := New(tree)
	g := traffic.NewGenerator(64, 7)
	reqs := g.MustBatch(traffic.RandomPermutation)
	first, _ := p.Schedule(reqs)
	p.Reset()
	second, _ := p.Schedule(reqs)
	if first.Granted != second.Granted {
		t.Fatalf("after Reset: %d vs %d", first.Granted, second.Granted)
	}
	// Without Reset, occupancy persists and fewer requests succeed.
	third, _ := p.Schedule(reqs)
	if third.Granted > second.Granted {
		t.Fatalf("stateful rerun granted more: %d > %d", third.Granted, second.Granted)
	}
}

func TestEmptyBatch(t *testing.T) {
	p := New(topology.MustNew(3, 4, 4))
	res, tm := p.Schedule(nil)
	if res.Total != 0 || tm.Cycles != 0 {
		t.Fatalf("empty batch: %+v %+v", res, tm)
	}
}

func TestSingleLevelTree(t *testing.T) {
	p := New(topology.MustNew(1, 4, 4))
	res, tm := p.Schedule([]core.Request{{Src: 0, Dst: 3}})
	if res.Granted != 1 {
		t.Fatalf("granted %d", res.Granted)
	}
	if tm.Cycles != 0 {
		t.Fatalf("single-level tree consumed %d cycles", tm.Cycles)
	}
}

func TestIIIsThreeCycles(t *testing.T) {
	// N requests: makespan = 3(N-1) + 3·blocks cycles.
	tree := topology.MustNew(3, 4, 4)
	g := traffic.NewGenerator(64, 9)
	for _, n := range []int{1, 2, 5, 64} {
		p := New(tree)
		reqs := g.MustBatch(traffic.RandomPermutation)[:n]
		_, tm := p.Schedule(reqs)
		want := uint64(3*(n-1) + 6)
		if tm.Cycles != want {
			t.Fatalf("n=%d: cycles %d want %d", n, tm.Cycles, want)
		}
	}
}

func TestString(t *testing.T) {
	got := New(topology.MustNew(3, 4, 4)).String()
	if got == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkPipeline4096(b *testing.B) {
	tree := topology.MustNew(3, 16, 16)
	g := traffic.NewGenerator(4096, 1)
	reqs := g.MustBatch(traffic.RandomPermutation)
	p := New(tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		p.Schedule(reqs)
	}
}

func TestEstimateReproducesClock(t *testing.T) {
	// The structural critical-path model must reproduce the calibrated
	// clock periods for the synthesized widths: 6T = 11 + 2·log2(w)
	// gate delays.
	for _, w := range []int{4, 8, 16} {
		tree := topology.MustNew(3, w, w)
		r := Estimate(tree)
		if !approx(r.ClockNS, ClockNS(w), 1e-9) {
			t.Errorf("w=%d: area-model clock %v != calibrated %v", w, r.ClockNS, ClockNS(w))
		}
	}
}

func TestEstimateMemoryExact(t *testing.T) {
	// Memory is 2 bits (one Ulink + one Dlink) per physical link.
	tree := topology.MustNew(3, 4, 4)
	r := Estimate(tree)
	if r.MemoryBits != 2*tree.TotalLinks() {
		t.Fatalf("memory bits %d want %d", r.MemoryBits, 2*tree.TotalLinks())
	}
	if r.Blocks != 2 {
		t.Fatalf("blocks = %d", r.Blocks)
	}
}

func TestEstimateScaling(t *testing.T) {
	small := Estimate(topology.MustNew(3, 4, 4))
	big := Estimate(topology.MustNew(3, 16, 16))
	if big.MemoryBits <= small.MemoryBits || big.ALUTs <= small.ALUTs ||
		big.Registers <= small.Registers || big.CriticalPathLevels <= small.CriticalPathLevels {
		t.Fatalf("resources did not grow with width:\n%v\n%v", small, big)
	}
	deeper := Estimate(topology.MustNew(4, 4, 4))
	if deeper.Blocks != 3 || deeper.ALUTs <= small.ALUTs {
		t.Fatalf("resources did not grow with depth: %v", deeper)
	}
}

func TestEstimateString(t *testing.T) {
	if Estimate(topology.MustNew(2, 4, 4)).String() == "" {
		t.Fatal("empty String")
	}
}
