// Package hardware is a cycle-accurate structural model of the paper's
// FPGA scheduler (Section 6): a chain of P-blocks, one per link level,
// each a three-stage pipeline.
//
//   - load:    compute σ_h and δ_h from the request and the ports chosen
//     so far, and read the Ulink and Dlink availability vectors
//     from the two link-state RAMs;
//   - compute: AND the vectors and run the priority selector (pure
//     combinational logic);
//   - update:  write the updated vectors back to the RAMs.
//
// A new request may enter a block's load stage only after the previous
// request's update has written back — the load-after-update RAM hazard —
// giving an initiation interval of three cycles. With l-1 chained blocks a
// single request takes 3·(l-1) cycles; for the paper's three-level tree
// that is 6 cycles, matching the published 15/17/19 ns at the calibrated
// clock periods (see ClockNS).
//
// The model schedules for real: its grant set is bit-identical to the
// Level-wise software scheduler's (request-major, first-fit), which the
// tests assert. Only the ns-per-cycle constant is taken from the paper's
// post-place-and-route synthesis, as our substitute for the Altera
// Stratix II toolchain (DESIGN.md §5).
package hardware

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/topology"
)

// ClockNS returns the calibrated clock period in nanoseconds for a given
// switch width w. The paper's synthesis gives 6-cycle latencies of 15, 17
// and 19 ns for w = 4, 8, 16, i.e. T = 2.5, 17/6, 19/6 ns: one third of a
// nanosecond per doubling of w (the priority selector and AND tree grow
// logarithmically). Widths outside the synthesized range extrapolate on
// the same line, with a floor at 1 ns.
func ClockNS(w int) float64 {
	if w < 1 {
		w = 1
	}
	t := 2.5 + (math.Log2(float64(w))-2)/3
	if t < 1 {
		t = 1
	}
	return t
}

// Timing reports the clock-level outcome of a batch.
type Timing struct {
	Cycles          uint64  // makespan of the batch in cycles
	ClockNS         float64 // calibrated cycle time
	SingleRequestNS float64 // latency of one request: 3·(l-1)·T
	ThroughputNS    float64 // steady-state per-request time: 3·T
	BatchNS         float64 // Cycles · ClockNS
	// PipelinedBatchNS is the paper's Table 1 accounting for "schedule
	// all requests": N · 3T (throughput times batch size).
	PipelinedBatchNS float64
}

// Pipeline is the hardware scheduler model for one fat tree.
type Pipeline struct {
	tree   *topology.Tree
	blocks []*pBlock
	clock  float64
}

// pBlock is one P-block: the level-h port resolver with its two RAMs.
type pBlock struct {
	h     int
	ulink *bitvec.Matrix // availability RAM, rows = switches at level h
	dlink *bitvec.Matrix
	flit  *flit // request occupying the block (nil when free)
	left  int   // cycles until the occupying flit completes its 3 stages
	avail bitvec.Vector
}

// flit is a request in flight through the block chain.
type flit struct {
	idx          int
	h            int // ancestor level of the request
	sigma, delta int
	ports        []int
	failed       bool
	failLevel    int
}

// New builds a Pipeline for the tree with every link available.
func New(tree *topology.Tree) *Pipeline {
	p := &Pipeline{tree: tree, clock: ClockNS(tree.Parents())}
	for h := 0; h < tree.LinkLevels(); h++ {
		b := &pBlock{
			h:     h,
			ulink: bitvec.NewMatrix(tree.SwitchesAt(h), tree.Parents()),
			dlink: bitvec.NewMatrix(tree.SwitchesAt(h), tree.Parents()),
			avail: bitvec.New(tree.Parents()),
		}
		b.ulink.SetAll()
		b.dlink.SetAll()
		p.blocks = append(p.blocks, b)
	}
	return p
}

// Reset clears all pipeline state and marks every link available.
func (p *Pipeline) Reset() {
	for _, b := range p.blocks {
		b.ulink.SetAll()
		b.dlink.SetAll()
		b.flit = nil
		b.left = 0
	}
}

// Blocks returns the number of P-blocks (l-1).
func (p *Pipeline) Blocks() int { return len(p.blocks) }

// process executes a block's three stages on its flit. The model is
// timing-accurate at cycle granularity (the stages occupy three cycles;
// the work is applied atomically at update time, which is sound because
// the initiation interval admits no intra-block overlap).
func (b *pBlock) process(tree *topology.Tree, f *flit) {
	if f.failed || b.h >= f.h {
		return // dead or pass-through: no RAM update
	}
	b.avail.And(b.ulink.Row(f.sigma), b.dlink.Row(f.delta))
	port, ok := b.avail.FirstSet() // the priority selector
	if !ok {
		f.failed = true
		f.failLevel = b.h
		return
	}
	b.ulink.Row(f.sigma).Clear(port)
	b.dlink.Row(f.delta).Clear(port)
	f.ports = append(f.ports, port)
	f.sigma = tree.UpParent(b.h, f.sigma, port)
	f.delta = tree.UpParent(b.h, f.delta, port)
}

// Schedule runs the batch through the pipeline, cycle by cycle, and
// returns the scheduling result and the timing. The pipeline retains link
// occupancy across calls (use Reset between independent batches).
func (p *Pipeline) Schedule(reqs []core.Request) (*core.Result, Timing) {
	tree := p.tree
	outs := make([]core.Outcome, len(reqs))
	flits := make([]*flit, len(reqs))
	for i, r := range reqs {
		outs[i] = core.Outcome{Request: r, H: tree.AncestorLevel(r.Src, r.Dst), FailLevel: -1}
		sigma, _ := tree.NodeSwitch(r.Src)
		delta, _ := tree.NodeSwitch(r.Dst)
		flits[i] = &flit{idx: i, h: outs[i].H, sigma: sigma, delta: delta, failLevel: -1}
	}

	var cycles uint64
	next := 0     // next request to inject
	inFlight := 0 // flits inside the pipeline
	retire := func(f *flit) {
		o := &outs[f.idx]
		o.Ports = f.ports
		if f.failed {
			o.FailLevel = f.failLevel
		} else {
			o.Granted = true
		}
		inFlight--
	}
	if len(p.blocks) == 0 {
		// Single-level tree: every request is same-switch.
		for i := range outs {
			outs[i].Granted = true
		}
		next = len(reqs)
	}
	for next < len(reqs) || inFlight > 0 {
		cycles++
		// Inject at the cycle start: the new flit's load stage runs this
		// cycle. The load-after-update hazard is respected structurally:
		// block 0 only frees once its occupant's update has written back.
		if next < len(reqs) && p.blocks[0].flit == nil {
			p.blocks[0].flit, p.blocks[0].left = flits[next], 3
			next++
			inFlight++
		}
		// Advance blocks downstream-first so hand-offs see freed blocks.
		for bi := len(p.blocks) - 1; bi >= 0; bi-- {
			b := p.blocks[bi]
			if b.flit == nil {
				continue
			}
			b.left--
			if b.left > 0 {
				continue
			}
			b.process(tree, b.flit)
			if bi+1 < len(p.blocks) {
				nb := p.blocks[bi+1]
				if nb.flit != nil {
					// Uniform 3-cycle blocks never collide; a collision
					// would be a model bug.
					panic("hardware: structural hazard between blocks")
				}
				nb.flit, nb.left = b.flit, 3
			} else {
				retire(b.flit)
			}
			b.flit = nil
		}
	}

	res := &core.Result{Scheduler: "hardware-pipeline", Outcomes: outs, Total: len(outs)}
	for i := range outs {
		if outs[i].Granted {
			res.Granted++
		}
	}
	t := Timing{
		Cycles:           cycles,
		ClockNS:          p.clock,
		SingleRequestNS:  float64(3*len(p.blocks)) * p.clock,
		ThroughputNS:     3 * p.clock,
		BatchNS:          float64(cycles) * p.clock,
		PipelinedBatchNS: float64(len(reqs)) * 3 * p.clock,
	}
	return res, t
}

// String describes the pipeline.
func (p *Pipeline) String() string {
	return fmt.Sprintf("hardware pipeline: %d P-blocks, clock %.3f ns", len(p.blocks), p.clock)
}
