package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestMakeScheduler(t *testing.T) {
	// Pre-registry names keep working through the spec aliases, and the
	// full grammar is available.
	for _, name := range []string{
		"level-wise", "local-random", "local-greedy", "optimal",
		"level-wise,policy=random,order=shuffle,rollback",
		"backtrack,depth=4", "stale,window=8", "parallel,mode=racy,workers=2",
	} {
		s, err := makeScheduler(name, false)
		if err != nil || s == nil {
			t.Errorf("makeScheduler(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := makeScheduler("nope", false); err == nil {
		t.Error("unknown scheduler accepted")
	}
	// Near-miss errors carry a suggestion from the registry.
	if _, err := makeScheduler("levle-wise", false); err == nil ||
		!strings.Contains(err.Error(), "did you mean level-wise") {
		t.Errorf("near-miss spec error = %v, want a level-wise suggestion", err)
	}
	s, err := makeScheduler("level-wise", true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "level-wise/rollback" {
		t.Errorf("rollback option not applied: %q", s.Name())
	}
	// -rollback must not duplicate a flag the spec already carries.
	if s, err = makeScheduler("level-wise,rollback", true); err != nil || s.Name() != "level-wise/rollback" {
		t.Errorf("rollback dedup: %v, %v", s, err)
	}
}

func TestListEngines(t *testing.T) {
	var buf bytes.Buffer
	listEngines(&buf)
	out := buf.String()
	for _, want := range []string{"level-wise", "local", "backtrack", "stale", "optimal", "parallel", "example:"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestFindPattern(t *testing.T) {
	p, err := findPattern("bit-reversal")
	if err != nil || p.String() != "bit-reversal" {
		t.Errorf("findPattern = %v, %v", p, err)
	}
	if _, err := findPattern("nope"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run(3, 4, 4, "level-wise", "random-permutation", 3, 1, false, true, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 16, 16, "optimal", "transpose", 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 4, 4, "level-wise", "random-permutation", 1, 1, false, false, false, false); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(3, 4, 4, "nope", "random-permutation", 1, 1, false, false, false, false); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := run(3, 4, 4, "level-wise", "nope", 1, 1, false, false, false, false); err == nil {
		t.Error("bad pattern accepted")
	}
	// Structural mismatch: transpose needs a square node count.
	if err := run(3, 2, 2, "level-wise", "transpose", 1, 1, false, false, false, false); err == nil {
		t.Error("transpose on 8 nodes accepted")
	}
}

// TestRunJSON captures stdout and checks -json emits one decodable
// object with the batch-vs-serving shared field vocabulary.
func TestRunJSON(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(3, 4, 4, "level-wise", "random-permutation", 2, 1, true, false, false, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var s summary
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		t.Fatalf("stdout is not one JSON object: %v", err)
	}
	if s.Scheduler != "level-wise/rollback" || s.Nodes != 64 || s.Trials != 2 {
		t.Errorf("summary %+v", s)
	}
	if s.Offered != s.Granted+s.Rejected {
		t.Errorf("offered %d != granted %d + rejected %d", s.Offered, s.Granted, s.Rejected)
	}
	if s.RatioMean <= 0 || s.RatioMean > 1 {
		t.Errorf("ratio mean %v", s.RatioMean)
	}
}

func TestRunTraceUnsupported(t *testing.T) {
	if err := run(2, 4, 4, "optimal", "random-permutation", 1, 1, false, false, true, false); err == nil {
		t.Error("trace on optimal accepted")
	}
	if err := run(2, 4, 4, "local-random", "random-permutation", 1, 1, false, false, true, false); err != nil {
		t.Errorf("trace on local failed: %v", err)
	}
}
