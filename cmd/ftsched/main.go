// Command ftsched schedules one workload on one fat tree and prints the
// outcome — a workbench for exploring the schedulers interactively.
//
// Usage:
//
//	ftsched [-levels 3] [-children 4] [-parents 4]
//	        [-scheduler level-wise|local-random|local-greedy|optimal]
//	        [-pattern random-permutation|uniform-random|hotspot|bit-reversal|
//	                  bit-complement|transpose|shuffle|tornado|neighbor]
//	        [-trials 1] [-seed 1] [-rollback] [-v] [-json]
//
// With -v every request's outcome (path or failure level) is listed.
// With -json the run summary is emitted as a single JSON object instead
// of the human-readable report — the same machine-readable style as
// ftserve's GET /stats, so batch and serving results can share tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/optimal"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	schedName := flag.String("scheduler", "level-wise", "level-wise | local-random | local-greedy | optimal")
	patName := flag.String("pattern", "random-permutation", "workload pattern")
	trials := flag.Int("trials", 1, "independent workloads to schedule")
	seed := flag.Int64("seed", 1, "workload seed")
	rollback := flag.Bool("rollback", false, "release a failed request's partial allocations")
	verbose := flag.Bool("v", false, "print per-request outcomes")
	trace := flag.Bool("trace", false, "print every denial with the availability vector that caused it")
	jsonOut := flag.Bool("json", false, "emit the run summary as one JSON object")
	flag.Parse()

	if err := run(*levels, *children, *parents, *schedName, *patName, *trials, *seed, *rollback, *verbose, *trace, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "ftsched: %v\n", err)
		os.Exit(1)
	}
}

// summary is the -json output: one object per run, aligned with the
// counter vocabulary of ftserve's /stats (granted/rejected/utilization).
type summary struct {
	Scheduler   string        `json:"scheduler"`
	Pattern     string        `json:"pattern"`
	Tree        string        `json:"tree"`
	Nodes       int           `json:"nodes"`
	Levels      int           `json:"levels"`
	Trials      int           `json:"trials"`
	Seed        int64         `json:"seed"`
	RatioMean   float64       `json:"ratio_mean"`
	RatioMin    float64       `json:"ratio_min"`
	RatioMax    float64       `json:"ratio_max"`
	Granted     int           `json:"granted"`  // last batch
	Rejected    int           `json:"rejected"` // last batch
	Offered     int           `json:"offered"`  // last batch
	Utilization float64       `json:"utilization"`
	Ops         core.Counters `json:"ops"` // last batch operation counts
}

func makeScheduler(name string, rollback bool) (core.Scheduler, error) {
	switch name {
	case "level-wise":
		return &core.LevelWise{Opts: core.Options{Rollback: rollback}}, nil
	case "local-random":
		return core.NewLocalRandom(), nil
	case "local-greedy":
		return core.NewLocalGreedy(), nil
	case "optimal":
		return optimal.New(), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func findPattern(name string) (traffic.Pattern, error) {
	for p := traffic.RandomPermutation; p <= traffic.Neighbor; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", name)
}

func run(levels, children, parents int, schedName, patName string, trials int, seed int64, rollback, verbose, trace, jsonOut bool) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	sched, err := makeScheduler(schedName, rollback)
	if err != nil {
		return err
	}
	if trace {
		traceOut := os.Stdout
		if jsonOut {
			traceOut = os.Stderr // keep stdout a single JSON object
		}
		onDenial := func(e core.TraceEvent) {
			if e.Port == -1 {
				fmt.Fprintf(traceOut, "  trace: %s\n", e)
			}
		}
		switch s := sched.(type) {
		case *core.LevelWise:
			s.Opts.Trace = onDenial
		case *core.Local:
			s.Opts.Trace = onDenial
		default:
			return fmt.Errorf("-trace is not supported by scheduler %q", schedName)
		}
	}
	pattern, err := findPattern(patName)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Println(tree)
	}

	gen := traffic.NewGenerator(tree.Nodes(), seed)
	st := linkstate.New(tree)
	ratios := make([]float64, 0, trials)
	var last *core.Result
	for trial := 0; trial < trials; trial++ {
		batch, err := gen.Batch(pattern)
		if err != nil {
			return err
		}
		st.Reset()
		res := sched.Schedule(st, batch)
		if err := core.Verify(tree, res); err != nil {
			return err
		}
		ratios = append(ratios, res.Ratio())
		last = res
	}

	s := stats.Summarize(ratios)
	if jsonOut {
		return json.NewEncoder(os.Stdout).Encode(summary{
			Scheduler:   last.Scheduler,
			Pattern:     pattern.String(),
			Tree:        tree.String(),
			Nodes:       tree.Nodes(),
			Levels:      tree.Levels(),
			Trials:      trials,
			Seed:        seed,
			RatioMean:   s.Mean,
			RatioMin:    s.Min,
			RatioMax:    s.Max,
			Granted:     last.Granted,
			Rejected:    last.Total - last.Granted,
			Offered:     last.Total,
			Utilization: st.Utilization(),
			Ops:         last.Ops,
		})
	}
	fmt.Printf("scheduler %s on %s x%d: schedulability %s (min %s, max %s)\n",
		last.Scheduler, pattern, trials,
		report.Percent(s.Mean), report.Percent(s.Min), report.Percent(s.Max))
	fmt.Printf("last batch: %d/%d granted, link utilization %s\n",
		last.Granted, last.Total, report.Percent(st.Utilization()))
	for h := 0; h < tree.LinkLevels(); h++ {
		up, down := st.LevelOccupancy(h)
		capacity := tree.LinksAt(h)
		fmt.Printf("  level %d  up %s %s   down %s %s\n", h,
			report.Bar(float64(up)/float64(capacity), 16), report.Percent(float64(up)/float64(capacity)),
			report.Bar(float64(down)/float64(capacity), 16), report.Percent(float64(down)/float64(capacity)))
	}

	if verbose {
		for i, o := range last.Outcomes {
			if o.Granted {
				ports := make([]string, len(o.Ports))
				for k, p := range o.Ports {
					ports[k] = fmt.Sprint(p)
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d granted ports=[%s]\n", i, o.Src, o.Dst, o.H, strings.Join(ports, " "))
			} else {
				where := "up"
				if o.FailDown {
					where = "down"
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d FAILED at level %d (%s)\n", i, o.Src, o.Dst, o.H, o.FailLevel, where)
			}
		}
	}
	return nil
}
