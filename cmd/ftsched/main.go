// Command ftsched schedules one workload on one fat tree and prints the
// outcome — a workbench for exploring the schedulers interactively.
//
// Usage:
//
//	ftsched [-levels 3] [-children 4] [-parents 4]
//	        [-scheduler level-wise|local-random|local-greedy|optimal]
//	        [-pattern random-permutation|uniform-random|hotspot|bit-reversal|
//	                  bit-complement|transpose|shuffle|tornado|neighbor]
//	        [-trials 1] [-seed 1] [-rollback] [-v]
//
// With -v every request's outcome (path or failure level) is listed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/optimal"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	schedName := flag.String("scheduler", "level-wise", "level-wise | local-random | local-greedy | optimal")
	patName := flag.String("pattern", "random-permutation", "workload pattern")
	trials := flag.Int("trials", 1, "independent workloads to schedule")
	seed := flag.Int64("seed", 1, "workload seed")
	rollback := flag.Bool("rollback", false, "release a failed request's partial allocations")
	verbose := flag.Bool("v", false, "print per-request outcomes")
	trace := flag.Bool("trace", false, "print every denial with the availability vector that caused it")
	flag.Parse()

	if err := run(*levels, *children, *parents, *schedName, *patName, *trials, *seed, *rollback, *verbose, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "ftsched: %v\n", err)
		os.Exit(1)
	}
}

func makeScheduler(name string, rollback bool) (core.Scheduler, error) {
	switch name {
	case "level-wise":
		return &core.LevelWise{Opts: core.Options{Rollback: rollback}}, nil
	case "local-random":
		return core.NewLocalRandom(), nil
	case "local-greedy":
		return core.NewLocalGreedy(), nil
	case "optimal":
		return optimal.New(), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func findPattern(name string) (traffic.Pattern, error) {
	for p := traffic.RandomPermutation; p <= traffic.Neighbor; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", name)
}

func run(levels, children, parents int, schedName, patName string, trials int, seed int64, rollback, verbose, trace bool) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	sched, err := makeScheduler(schedName, rollback)
	if err != nil {
		return err
	}
	if trace {
		onDenial := func(e core.TraceEvent) {
			if e.Port == -1 {
				fmt.Printf("  trace: %s\n", e)
			}
		}
		switch s := sched.(type) {
		case *core.LevelWise:
			s.Opts.Trace = onDenial
		case *core.Local:
			s.Opts.Trace = onDenial
		default:
			return fmt.Errorf("-trace is not supported by scheduler %q", schedName)
		}
	}
	pattern, err := findPattern(patName)
	if err != nil {
		return err
	}
	fmt.Println(tree)

	gen := traffic.NewGenerator(tree.Nodes(), seed)
	st := linkstate.New(tree)
	ratios := make([]float64, 0, trials)
	var last *core.Result
	for trial := 0; trial < trials; trial++ {
		batch, err := gen.Batch(pattern)
		if err != nil {
			return err
		}
		st.Reset()
		res := sched.Schedule(st, batch)
		if err := core.Verify(tree, res); err != nil {
			return err
		}
		ratios = append(ratios, res.Ratio())
		last = res
	}

	s := stats.Summarize(ratios)
	fmt.Printf("scheduler %s on %s x%d: schedulability %s (min %s, max %s)\n",
		last.Scheduler, pattern, trials,
		report.Percent(s.Mean), report.Percent(s.Min), report.Percent(s.Max))
	fmt.Printf("last batch: %d/%d granted, link utilization %s\n",
		last.Granted, last.Total, report.Percent(st.Utilization()))
	for h := 0; h < tree.LinkLevels(); h++ {
		up, down := st.LevelOccupancy(h)
		capacity := tree.LinksAt(h)
		fmt.Printf("  level %d  up %s %s   down %s %s\n", h,
			report.Bar(float64(up)/float64(capacity), 16), report.Percent(float64(up)/float64(capacity)),
			report.Bar(float64(down)/float64(capacity), 16), report.Percent(float64(down)/float64(capacity)))
	}

	if verbose {
		for i, o := range last.Outcomes {
			if o.Granted {
				ports := make([]string, len(o.Ports))
				for k, p := range o.Ports {
					ports[k] = fmt.Sprint(p)
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d granted ports=[%s]\n", i, o.Src, o.Dst, o.H, strings.Join(ports, " "))
			} else {
				where := "up"
				if o.FailDown {
					where = "down"
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d FAILED at level %d (%s)\n", i, o.Src, o.Dst, o.H, o.FailLevel, where)
			}
		}
	}
	return nil
}
