// Command ftsched schedules one workload on one fat tree and prints the
// outcome — a workbench for exploring the schedulers interactively.
//
// Usage:
//
//	ftsched [-levels 3] [-children 4] [-parents 4]
//	        [-scheduler <spec>] [-list]
//	        [-pattern random-permutation|uniform-random|hotspot|bit-reversal|
//	                  bit-complement|transpose|shuffle|tornado|neighbor]
//	        [-trials 1] [-seed 1] [-rollback] [-v] [-json]
//
// Scheduler specs follow internal/sched's grammar
// ("family,key=value,flag" — e.g. "level-wise,policy=random,rollback",
// "backtrack,depth=4", "parallel,mode=racy,workers=8"); -list prints
// every registered engine with its parameters and exits. With -v every
// request's outcome (path or failure level) is listed. With -json the
// run summary is emitted as a single JSON object instead of the
// human-readable report — the same machine-readable style as ftserve's
// GET /stats, so batch and serving results can share tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	schedSpec := flag.String("scheduler", "level-wise", "scheduler spec (see -list)")
	list := flag.Bool("list", false, "print the registered scheduler engines and exit")
	patName := flag.String("pattern", "random-permutation", "workload pattern")
	trials := flag.Int("trials", 1, "independent workloads to schedule")
	seed := flag.Int64("seed", 1, "workload seed")
	rollback := flag.Bool("rollback", false, "shorthand for appending ,rollback to the scheduler spec")
	verbose := flag.Bool("v", false, "print per-request outcomes")
	trace := flag.Bool("trace", false, "print every denial with the availability vector that caused it")
	jsonOut := flag.Bool("json", false, "emit the run summary as one JSON object")
	flag.Parse()

	if *list {
		listEngines(os.Stdout)
		return
	}
	if err := run(*levels, *children, *parents, *schedSpec, *patName, *trials, *seed, *rollback, *verbose, *trace, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "ftsched: %v\n", err)
		os.Exit(1)
	}
}

// listEngines prints the registry's menu: one line per family with its
// summary, then its parameters — sourced from internal/sched so this
// text can never drift from what Parse accepts.
func listEngines(w io.Writer) {
	fmt.Fprintln(w, "scheduler specs: family[,key=value|flag]...")
	for _, info := range sched.List() {
		name := info.Family
		if len(info.Aliases) > 0 {
			name += " (alias " + strings.Join(info.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "\n  %-14s %s\n", name, info.Summary)
		for _, p := range info.Params {
			fmt.Fprintf(w, "      %-10s %s\n", p.Key, p.Doc)
		}
		fmt.Fprintf(w, "      example: %s\n", info.Example)
	}
}

// summary is the -json output: one object per run, aligned with the
// counter vocabulary of ftserve's /stats (granted/rejected/utilization).
type summary struct {
	Scheduler   string        `json:"scheduler"`
	Pattern     string        `json:"pattern"`
	Tree        string        `json:"tree"`
	Nodes       int           `json:"nodes"`
	Levels      int           `json:"levels"`
	Trials      int           `json:"trials"`
	Seed        int64         `json:"seed"`
	RatioMean   float64       `json:"ratio_mean"`
	RatioMin    float64       `json:"ratio_min"`
	RatioMax    float64       `json:"ratio_max"`
	Granted     int           `json:"granted"`  // last batch
	Rejected    int           `json:"rejected"` // last batch
	Offered     int           `json:"offered"`  // last batch
	Utilization float64       `json:"utilization"`
	Ops         core.Counters `json:"ops"` // last batch operation counts
	// Host parallelism at run time, so throughput numbers carry the
	// hardware context they were measured under.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// makeScheduler resolves a spec through the registry. The -rollback
// shorthand appends the flag unless the spec already carries it.
func makeScheduler(spec string, rollback bool) (sched.Engine, error) {
	if rollback && !hasToken(spec, "rollback") {
		spec += ",rollback"
	}
	return sched.Parse(spec)
}

func hasToken(spec, want string) bool {
	for _, tok := range strings.Split(spec, ",") {
		if strings.TrimSpace(tok) == want {
			return true
		}
	}
	return false
}

func findPattern(name string) (traffic.Pattern, error) {
	for p := traffic.RandomPermutation; p <= traffic.Neighbor; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", name)
}

func run(levels, children, parents int, schedSpec, patName string, trials int, seed int64, rollback, verbose, trace, jsonOut bool) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	eng, err := makeScheduler(schedSpec, rollback)
	if err != nil {
		return err
	}
	if trace {
		traceOut := os.Stdout
		if jsonOut {
			traceOut = os.Stderr // keep stdout a single JSON object
		}
		onDenial := func(e core.TraceEvent) {
			if e.Port == -1 {
				fmt.Fprintf(traceOut, "  trace: %s\n", e)
			}
		}
		switch s := eng.Unwrap().(type) {
		case *core.LevelWise:
			s.Opts.Trace = onDenial
		case *core.Local:
			s.Opts.Trace = onDenial
		default:
			return fmt.Errorf("-trace is not supported by scheduler %q", schedSpec)
		}
	}
	pattern, err := findPattern(patName)
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Println(tree)
	}

	gen := traffic.NewGenerator(tree.Nodes(), seed)
	st := linkstate.New(tree)
	sc := core.NewScratch()
	ratios := make([]float64, 0, trials)
	var last *core.Result
	for trial := 0; trial < trials; trial++ {
		batch, err := gen.Batch(pattern)
		if err != nil {
			return err
		}
		st.Reset()
		res := eng.ScheduleInto(st, batch, sc)
		if err := core.Verify(tree, res); err != nil {
			return err
		}
		ratios = append(ratios, res.Ratio())
		last = res
	}

	s := stats.Summarize(ratios)
	if jsonOut {
		return json.NewEncoder(os.Stdout).Encode(summary{
			Scheduler:   last.Scheduler,
			Pattern:     pattern.String(),
			Tree:        tree.String(),
			Nodes:       tree.Nodes(),
			Levels:      tree.Levels(),
			Trials:      trials,
			Seed:        seed,
			RatioMean:   s.Mean,
			RatioMin:    s.Min,
			RatioMax:    s.Max,
			Granted:     last.Granted,
			Rejected:    last.Total - last.Granted,
			Offered:     last.Total,
			Utilization: st.Utilization(),
			Ops:         last.Ops,
			NumCPU:      runtime.NumCPU(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
		})
	}
	fmt.Printf("scheduler %s on %s x%d: schedulability %s (min %s, max %s)\n",
		last.Scheduler, pattern, trials,
		report.Percent(s.Mean), report.Percent(s.Min), report.Percent(s.Max))
	fmt.Printf("last batch: %d/%d granted, link utilization %s\n",
		last.Granted, last.Total, report.Percent(st.Utilization()))
	for h := 0; h < tree.LinkLevels(); h++ {
		up, down := st.LevelOccupancy(h)
		capacity := tree.LinksAt(h)
		fmt.Printf("  level %d  up %s %s   down %s %s\n", h,
			report.Bar(float64(up)/float64(capacity), 16), report.Percent(float64(up)/float64(capacity)),
			report.Bar(float64(down)/float64(capacity), 16), report.Percent(float64(down)/float64(capacity)))
	}

	if verbose {
		for i, o := range last.Outcomes {
			if o.Granted {
				ports := make([]string, len(o.Ports))
				for k, p := range o.Ports {
					ports[k] = fmt.Sprint(p)
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d granted ports=[%s]\n", i, o.Src, o.Dst, o.H, strings.Join(ports, " "))
			} else {
				where := "up"
				if o.FailDown {
					where = "down"
				}
				fmt.Printf("  #%-4d %4d → %-4d H=%d FAILED at level %d (%s)\n", i, o.Src, o.Dst, o.H, o.FailLevel, where)
			}
		}
	}
	return nil
}
