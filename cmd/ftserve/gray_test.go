package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/topology"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGrayFaultVerbs drives the gray-failure surface end to end over
// HTTP: flaky injection starts the stepper and shows up with duty-cycle
// state in /faults, damping quarantines the flapping channel, degrade
// installs a slow-plane process, and the whole-plane repair verb clears
// every gray artifact at once.
func TestGrayFaultVerbs(t *testing.T) {
	cfg := federation.Config{Planes: []federation.PlaneConfig{{
		Fabric: fabric.Config{
			Tree:          topology.MustNew(2, 4, 4),
			BatchSize:     1,
			MaxWait:       200 * time.Microsecond,
			RepairBackoff: 500 * time.Microsecond,
			// First flap quarantines, and the quarantine holds until the
			// repair verb below lifts it.
			FlapThreshold:       1,
			QuarantineProbation: time.Hour,
		},
	}}}
	router, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(router)
	sv.gray.step = time.Millisecond
	ts := httptest.NewServer(sv.routes())
	t.Cleanup(func() {
		ts.Close()
		sv.stopGray()
		router.Close(context.Background())
	})

	// Start one flaky process; at duty 0.5 it transitions within a few
	// steps, and the first down-transition quarantines the channel.
	var fr faultResponse
	code := postJSON(t, ts.URL+"/fault", faultRequest{Flaky: []faults.FlakyLink{{
		Link:      faults.LinkFault{Level: 0, Switch: 0, Port: 0, Direction: faults.Up},
		DutyCycle: 0.5,
		Seed:      7,
	}}}, &fr)
	if code != http.StatusOK || fr.Kind != "flaky" || fr.Flaky != 1 {
		t.Fatalf("flaky install: code %d, %+v", code, fr)
	}
	var fl faultsResponse
	waitUntil(t, "flaky process state in /faults", func() bool {
		fl = faultsResponse{}
		getJSON(t, ts.URL+"/faults", &fl)
		return len(fl.Planes) == 1 && len(fl.Planes[0].Flaky) == 1 && fl.Planes[0].Flaky[0].Step > 0
	})
	if p := fl.Planes[0].Flaky[0]; p.DutyCycle != 0.5 || p.Seed != 7 {
		t.Fatalf("flaky status lost the process parameters: %+v", p)
	}
	waitUntil(t, "quarantine", func() bool {
		fl = faultsResponse{}
		getJSON(t, ts.URL+"/faults", &fl)
		return len(fl.Planes[0].Quarantined) > 0
	})

	// The liveness probe reports the quarantine and the health fields.
	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || hz.Planes[0].Quarantined == 0 {
		t.Fatalf("healthz did not see the quarantine: %+v", hz)
	}
	if hz.Planes[0].Breaker == "" || hz.Planes[0].Health <= 0 || hz.Planes[0].Health > 1 {
		t.Fatalf("healthz health fields: %+v", hz.Planes[0])
	}

	// Install a slow-plane process; /faults reports it.
	code = postJSON(t, ts.URL+"/fault", faultRequest{Degrade: &faults.DegradedPlane{
		AdmitLatency: faults.Duration(2 * time.Millisecond),
		DutyCycle:    0.5,
	}}, &fr)
	if code != http.StatusOK || fr.Kind != "degraded" {
		t.Fatalf("degrade install: code %d, %+v", code, fr)
	}
	fl = faultsResponse{}
	getJSON(t, ts.URL+"/faults", &fl)
	if fl.Planes[0].Degraded == nil || fl.Planes[0].Degraded.DutyCycle != 0.5 {
		t.Fatalf("/faults does not report the degraded process: %+v", fl.Planes[0])
	}

	// Whole-plane repair: stops the process, heals, lifts quarantine,
	// clears the degraded process, re-admits.
	code = postJSON(t, ts.URL+"/fault", faultRequest{Repair: true}, &fr)
	if code != http.StatusOK || fr.Kind != "plane-repair" || fr.Flaky != 1 {
		t.Fatalf("plane repair: code %d, %+v", code, fr)
	}
	fl = faultsResponse{}
	getJSON(t, ts.URL+"/faults", &fl)
	if len(fl.Planes[0].Flaky) != 0 || len(fl.Planes[0].Quarantined) != 0 || fl.Planes[0].Degraded != nil {
		t.Fatalf("plane repair left gray state: %+v", fl.Planes[0])
	}
	waitUntil(t, "healthz ok after plane repair", func() bool {
		hz = healthzResponse{}
		getJSON(t, ts.URL+"/healthz", &hz)
		return hz.Status == "ok"
	})
}

// TestFaultKinds pins the response kind for every clean verb.
func TestFaultKinds(t *testing.T) {
	ts, _ := newTestServer(t, 1, 2, 4, 1)
	var fr faultResponse
	link := faults.LinkFault{Level: 0, Switch: 0, Port: 0}
	sw := faults.SwitchFault{Level: 1, Switch: 0}

	postJSON(t, ts.URL+"/fault", faultRequest{FaultSet: faults.FaultSet{Links: []faults.LinkFault{link}}}, &fr)
	if fr.Kind != "link" {
		t.Errorf("link injection kind %q", fr.Kind)
	}
	postJSON(t, ts.URL+"/fault", faultRequest{FaultSet: faults.FaultSet{Switches: []faults.SwitchFault{sw}}}, &fr)
	if fr.Kind != "switch" {
		t.Errorf("switch injection kind %q", fr.Kind)
	}
	postJSON(t, ts.URL+"/fault", faultRequest{FaultSet: faults.FaultSet{
		Links: []faults.LinkFault{{Level: 0, Switch: 1, Port: 0}}, Switches: []faults.SwitchFault{sw},
	}}, &fr)
	if fr.Kind != "mixed" {
		t.Errorf("mixed injection kind %q", fr.Kind)
	}
	postJSON(t, ts.URL+"/fault", faultRequest{Repair: true, FaultSet: faults.FaultSet{Links: []faults.LinkFault{link}}}, &fr)
	if fr.Kind != "repair" {
		t.Errorf("targeted repair kind %q", fr.Kind)
	}
	postJSON(t, ts.URL+"/fault", faultRequest{Repair: true}, &fr)
	if fr.Kind != "plane-repair" {
		t.Errorf("plane repair kind %q", fr.Kind)
	}
	postJSON(t, ts.URL+"/fault", faultRequest{Kill: true}, &fr)
	if fr.Kind != "kill" || !fr.Killed {
		t.Errorf("kill kind %q killed %v", fr.Kind, fr.Killed)
	}
	// Invalid gray bodies are rejected like invalid fault sets.
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Flaky: []faults.FlakyLink{{
		Link: faults.LinkFault{Level: 99}, DutyCycle: 0.5,
	}}}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid flaky link status %d", code)
	}
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Degrade: &faults.DegradedPlane{
		DutyCycle: 7,
	}}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid degrade status %d", code)
	}
}
