package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/topology"
)

func newTestServer(t *testing.T, levels, children int, batch int) (*httptest.Server, *fabric.Manager) {
	t.Helper()
	tree := topology.MustNew(levels, children, children)
	fab, err := fabric.New(fabric.Config{Tree: tree, BatchSize: batch, MaxWait: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(fab, tree).routes())
	t.Cleanup(func() {
		ts.Close()
		fab.Close(context.Background())
	})
	return ts, fab
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestConnectReleaseStats(t *testing.T) {
	ts, _ := newTestServer(t, 3, 4, 4)

	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: 33}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	if conn.ID == 0 || len(conn.Ports) == 0 {
		t.Fatalf("connect response %+v", conn)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Open != 1 || st.Granted != 1 || st.Active != 1 || st.Utilization <= 0 {
		t.Errorf("stats after connect: %+v", st)
	}

	var rel releaseResponse
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, &rel); code != http.StatusOK || !rel.Released {
		t.Fatalf("release status %d resp %+v", code, rel)
	}
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); code != http.StatusNotFound {
		t.Errorf("double release status %d, want 404", code)
	}
}

func TestConnectUnroutable(t *testing.T) {
	ts, _ := newTestServer(t, 2, 2, 1)

	// Saturate the two upward channels of level-0 switch 1 (nodes 2, 3).
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 2, Dst: 0}, nil); code != http.StatusOK {
			t.Fatalf("connect %d status %d", i, code)
		}
	}
	var er errorResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 2, Dst: 0}, &er); code != http.StatusConflict {
		t.Fatalf("saturated connect status %d, want 409", code)
	}
	if er.Error != "unroutable" || er.FailLevel == nil || *er.FailLevel != 0 {
		t.Errorf("unroutable body %+v", er)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 2, 4, 1)

	resp, err := http.Post(ts.URL+"/connect", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: -1, Dst: 2}, nil); code != http.StatusBadRequest {
		t.Errorf("bad endpoints status %d", code)
	}
	resp, err = http.Get(ts.URL + "/connect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /connect status %d", resp.StatusCode)
	}
}

func TestConcurrentHTTPClients(t *testing.T) {
	ts, fab := newTestServer(t, 3, 8, 16)

	const clients = 32
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(id int) {
			for i := 0; i < 5; i++ {
				var conn connectResponse
				code := postJSON0(ts.URL+"/connect", connectRequest{Src: (id*7 + i) % 512, Dst: (id*13 + 3*i) % 512}, &conn)
				if code == http.StatusOK {
					if rc := postJSON0(ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); rc != http.StatusOK {
						errs <- fmt.Errorf("client %d: release status %d", id, rc)
						return
					}
				} else if code != http.StatusConflict {
					errs <- fmt.Errorf("client %d: connect status %d", id, code)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	s := fab.Stats()
	if s.Offered != s.Granted+s.Rejected+s.Cancelled {
		t.Errorf("counter identity broken: %+v", s)
	}
	if s.Active != 0 {
		t.Errorf("active %d after all releases", s.Active)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 2, 4, 4)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Tree == "" {
		t.Errorf("healthz body %+v", hz)
	}
}

func TestPprofGated(t *testing.T) {
	tree := topology.MustNew(2, 2, 2)
	fab, err := fabric.New(fabric.Config{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close(context.Background())

	off := httptest.NewServer(newServer(fab, tree).routes())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	sv := newServer(fab, tree)
	sv.enablePprof = true
	on := httptest.NewServer(sv.routes())
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with -pprof: status %d", path, resp.StatusCode)
		}
	}
}

// TestStatsReportsEngine drives a parallel-enabled manager through the
// HTTP layer and checks the engine choice surfaces in GET /stats.
func TestStatsReportsEngine(t *testing.T) {
	tree := topology.MustNew(3, 4, 4)
	fab, err := fabric.New(fabric.Config{
		Tree:              tree,
		BatchSize:         1,
		ParallelThreshold: 1,
		ParallelWorkers:   2,
		ParallelRacy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(fab, tree).routes())
	t.Cleanup(func() {
		ts.Close()
		fab.Close(context.Background())
	})

	// A single-request epoch still falls below the parallel engine's
	// internal len(reqs) >= 2 bar, but threshold routing counts it.
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: tree.Nodes() - 1}, nil); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw["parallel_mode"] != "racy" {
		t.Errorf("parallel_mode = %v", raw["parallel_mode"])
	}
	if raw["parallel_threshold"] != float64(1) || raw["parallel_workers"] != float64(2) {
		t.Errorf("parallel config echo: threshold=%v workers=%v", raw["parallel_threshold"], raw["parallel_workers"])
	}
	if pe, _ := raw["parallel_epochs"].(float64); pe < 1 {
		t.Errorf("parallel_epochs = %v, want >= 1", raw["parallel_epochs"])
	}
	if le, _ := raw["last_epoch_engine"].(string); le == "" {
		t.Errorf("last_epoch_engine missing: %v", raw["last_epoch_engine"])
	}
}

// postJSON0 is postJSON without the testing.T, usable from goroutines.
func postJSON0(url string, body any, out any) int {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil {
		if json.NewDecoder(resp.Body).Decode(out) != nil {
			return 0
		}
	}
	return resp.StatusCode
}

// TestFaultEndpoints drives the fault-injection surface end to end:
// inject over HTTP, watch a held connection get revoked and repaired,
// read the degraded health, then heal and confirm recovery.
func TestFaultEndpoints(t *testing.T) {
	tree := topology.MustNew(2, 4, 4)
	fab, err := fabric.New(fabric.Config{
		Tree:          tree,
		BatchSize:     1,
		MaxWait:       200 * time.Microsecond,
		RepairBackoff: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(fab, tree).routes())
	t.Cleanup(func() {
		ts.Close()
		fab.Close(context.Background())
	})

	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: tree.Nodes() - 1}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}

	// Kill the link the connection climbs through.
	var fr faultResponse
	body := faultRequest{FaultSet: faults.FaultSet{Links: []faults.LinkFault{
		{Level: 0, Switch: 0, Port: conn.Ports[0]},
	}}}
	if code := postJSON(t, ts.URL+"/fault", body, &fr); code != http.StatusOK {
		t.Fatalf("fault status %d", code)
	}
	if fr.Failed != 2 || fr.Revoked != 1 {
		t.Fatalf("fault response %+v, want failed=2 revoked=1", fr)
	}

	// Degraded health while the faults stand.
	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || hz.FaultyChannels != 2 || hz.DegradedCapacity >= 1.0 {
		t.Fatalf("degraded healthz %+v", hz)
	}
	var fl faultsResponse
	getJSON(t, ts.URL+"/faults", &fl)
	if fl.FaultyChannels != 2 || len(fl.Links) != 1 || fl.Links[0].Port != conn.Ports[0] {
		t.Fatalf("faults body %+v", fl)
	}

	// The repair loop re-admits the revoked connection around the fault.
	deadline := time.Now().Add(5 * time.Second)
	for fab.Stats().Repaired < 1 {
		if time.Now().After(deadline) {
			t.Fatal("repair did not complete within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Revoked != 1 || st.Repaired != 1 || st.FaultyChannels != 2 {
		t.Fatalf("stats after repair %+v", st)
	}

	// Heal everything; health returns to ok and the handle releases.
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Repair: true}, &fr); code != http.StatusOK || fr.Repaired != 2 {
		t.Fatalf("repair-all status %d resp %+v", code, fr)
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.DegradedCapacity != 1.0 {
		t.Fatalf("healed healthz %+v", hz)
	}
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); code != http.StatusOK {
		t.Fatalf("release after repair status %d", code)
	}
}

// TestFaultEndpointValidation pins the error paths: malformed JSON,
// out-of-range components, and the empty injection body.
func TestFaultEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t, 2, 4, 4)

	resp, err := http.Post(ts.URL+"/fault", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fault body status %d", resp.StatusCode)
	}

	var er errorResponse
	bad := faultRequest{FaultSet: faults.FaultSet{Links: []faults.LinkFault{{Level: 9, Switch: 0, Port: 0}}}}
	if code := postJSON(t, ts.URL+"/fault", bad, &er); code != http.StatusBadRequest || er.Error == "" {
		t.Errorf("out-of-range fault: status %d body %+v", code, er)
	}
	if code := postJSON(t, ts.URL+"/fault", faultRequest{}, &er); code != http.StatusBadRequest {
		t.Errorf("empty injection: status %d", code)
	}
	// GET /faults on a healthy fabric renders an empty list, not null.
	resp, err = http.Get(ts.URL + "/faults")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if links, ok := raw["links"].([]any); !ok || len(links) != 0 {
		t.Errorf("healthy /faults links = %v, want []", raw["links"])
	}
}

// getJSON fetches and decodes a GET endpoint.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
